// Plugging your own knowledge sources into CDI.
//
// This example builds a small epidemiology-style domain from scratch —
// smoking -> tar deposits -> cancer, confounded by a genotype — and shows
// the three integration points a downstream user implements to run CDI on
// their own data:
//
//   1. a KnowledgeGraph populated with per-entity properties,
//   2. a DataLake with whatever CSV-shaped tables exist in the org, and
//   3. a TextCausalOracle seeded with the org's domain knowledge (in a
//      real deployment, an LLM endpoint; here a concept DAG).
//
// It then runs the pipeline and prints the recovered adjustment sets.

#include <cstdio>

#include "common/rng.h"
#include "core/pipeline.h"
#include "knowledge/data_lake.h"
#include "knowledge/knowledge_graph.h"
#include "knowledge/text_oracle.h"
#include "knowledge/topic_model.h"
#include "table/csv.h"
#include "table/table.h"

using cdi::Rng;
using cdi::table::Column;
using cdi::table::Table;
using cdi::table::Value;

int main() {
  constexpr std::size_t kPatients = 400;
  Rng rng(11);

  // Structural world: genotype -> smoking, genotype -> cancer,
  // smoking -> tar -> cancer (no other direct path).
  std::vector<std::string> ids;
  std::vector<double> genotype(kPatients), smoking(kPatients),
      tar(kPatients), cancer(kPatients);
  for (std::size_t i = 0; i < kPatients; ++i) {
    ids.push_back("patient_" + std::to_string(i));
    genotype[i] = rng.Normal();
    smoking[i] = 0.7 * genotype[i] + rng.Normal();
    tar[i] = 0.9 * smoking[i] + 0.5 * rng.Normal();
    cancer[i] = 0.6 * tar[i] + 0.5 * genotype[i] + rng.Normal();
  }

  // The analyst's table: exposure and outcome only.
  Table input("cohort");
  CDI_CHECK(input.AddColumn(Column::FromStrings("patient_id", ids)).ok());
  CDI_CHECK(
      input.AddColumn(Column::FromDoubles("smoking_score", smoking)).ok());
  CDI_CHECK(
      input.AddColumn(Column::FromDoubles("cancer_marker", cancer)).ok());

  // 1. Knowledge graph: the hospital's record system exposes tar deposits
  //    as a per-patient property.
  cdi::knowledge::KnowledgeGraph kg;
  for (std::size_t i = 0; i < kPatients; ++i) {
    kg.AddLiteral(ids[i], "tar_deposit", Value(tar[i]));
  }

  // 2. Data lake: a genomics CSV export keyed by patient id. Showing CSV
  //    round-trip on purpose — this is how real lake tables arrive.
  std::string csv = "patient_id,genotype_risk\n";
  for (std::size_t i = 0; i < kPatients; ++i) {
    csv += ids[i] + "," + std::to_string(genotype[i]) + "\n";
  }
  auto genomics = cdi::table::ReadCsvString(csv);
  CDI_CHECK(genomics.ok());
  genomics->set_name("genomics_export");
  cdi::knowledge::DataLake lake;
  lake.AddTable(std::move(*genomics));

  // 3. Oracle: the org's causal knowledge as a concept DAG.
  cdi::graph::Digraph concepts(
      {"genotype", "smoking", "tar", "cancer"});
  CDI_CHECK(concepts.AddEdge("genotype", "smoking").ok());
  CDI_CHECK(concepts.AddEdge("genotype", "cancer").ok());
  CDI_CHECK(concepts.AddEdge("smoking", "tar").ok());
  CDI_CHECK(concepts.AddEdge("tar", "cancer").ok());
  cdi::knowledge::OracleOptions oracle_options;
  oracle_options.seed = 5;
  cdi::knowledge::TextCausalOracle oracle(concepts, oracle_options);
  oracle.RegisterAlias("smoking_score", "smoking");
  oracle.RegisterAlias("cancer_marker", "cancer");
  oracle.RegisterAlias("tar_deposit", "tar");
  oracle.RegisterAlias("genotype_risk", "genotype");

  cdi::knowledge::TopicModel topics;
  topics.AddTopic("tar", {"tar"});
  topics.AddTopic("genotype", {"genotype", "risk"});
  topics.AddTopic("smoking", {"smoking"});
  topics.AddTopic("cancer", {"cancer", "marker"});

  cdi::core::PipelineOptions options;
  options.builder.varclus.min_clusters = 2;  // tar, genotype
  options.builder.varclus.max_clusters = 2;
  cdi::core::Pipeline pipeline(&kg, &lake, &oracle, &topics, options);
  auto run = pipeline.Run(input, "patient_id", "smoking_score",
                          "cancer_marker");
  if (!run.ok()) {
    std::fprintf(stderr, "pipeline failed: %s\n",
                 run.status().ToString().c_str());
    return 1;
  }

  std::printf("C-DAG edges:\n");
  for (const auto& [from, to] : run->build.claims) {
    std::printf("  %s -> %s\n", from.c_str(), to.c_str());
  }
  std::printf("mediators:");
  for (const auto& m : run->build.cdag.MediatorClusters()) {
    std::printf(" %s", m.c_str());
  }
  std::printf("\nconfounders:");
  for (const auto& c : run->build.cdag.ConfounderClusters()) {
    std::printf(" %s", c.c_str());
  }
  std::printf("\n\nEffect of smoking on the cancer marker:\n");
  std::printf("  total (backdoor on confounders):  %+.3f\n",
              run->total_effect.effect);
  std::printf("  direct (mediators adjusted too):  %+.3f  "
              "(truth: 0, all through tar)\n",
              run->direct_effect.effect);
  return 0;
}
