// Quickstart: the paper's running example (§1, Tables 1-2, Figures 1-2).
//
// Mary wants the effect of a state mask policy on the Covid-19 death rate.
// Her input table (Table 1) lacks the confounders — weather and population
// attributes live in external sources. This example builds that world
// synthetically (200 states so the statistics are non-degenerate), then
// walks the full CDI pipeline:
//
//   1. Knowledge Extractor mines attributes from a DBpedia-style knowledge
//      graph and a US-Open-Data-style lake (Table 2),
//   2. Data Organizer drops the governor FD column and diagnoses the MNAR
//      snow_inch column,
//   3. C-DAG Builder groups attributes and infers cluster-level edges
//      (Figure 2), and
//   4. the C-DAG's adjustment set corrects the naive effect estimate.
//
// Outputs: quickstart_full_dag.dot (Figure 1 analog) and
// quickstart_cdag.dot (Figure 2 analog).

#include <cstdio>
#include <fstream>

#include "common/rng.h"
#include "core/effect.h"
#include "core/pipeline.h"
#include "graph/dot.h"
#include "knowledge/data_lake.h"
#include "knowledge/knowledge_graph.h"
#include "knowledge/text_oracle.h"
#include "knowledge/topic_model.h"
#include "table/table.h"

namespace {

using cdi::Rng;
using cdi::table::Column;
using cdi::table::Table;
using cdi::table::Value;

constexpr std::size_t kStates = 200;

struct World {
  Table input;                         // Table 1: what Mary has
  cdi::knowledge::KnowledgeGraph kg;   // DBpedia stand-in
  cdi::knowledge::DataLake lake;       // US Open Data stand-in
  cdi::graph::Digraph concepts{std::vector<std::string>{}};
  std::vector<double> weather, population, mask, deaths;
};

/// Generates the structural world of Figure 1: weather and population
/// confound the mask policy; the policy has a (true) protective effect.
World MakeWorld() {
  World w;
  Rng rng(7);
  std::vector<std::string> states, governors;
  std::vector<double> temp, snow, pop_size, pop_density, confirmed, deaths,
      mask;
  for (std::size_t i = 0; i < kStates; ++i) {
    states.push_back("State_" + std::to_string(i));
    governors.push_back("Governor_of_State_" + std::to_string(i));
    const double weather_i = rng.Normal();       // latent climate severity
    const double population_i = rng.Normal();    // latent population scale
    // Harsh weather and dense population make a mask policy more likely.
    const double mask_i = 0.6 * weather_i + 0.5 * population_i + rng.Normal();
    const double confirmed_i = 0.8 * population_i + 0.5 * rng.Normal();
    // Deaths: confounded by weather/population, *reduced* by the policy.
    const double deaths_i = 0.5 * weather_i + 0.6 * confirmed_i -
                            0.4 * mask_i + 0.8 * rng.Normal();
    w.weather.push_back(weather_i);
    w.population.push_back(population_i);
    w.mask.push_back(mask_i);
    w.deaths.push_back(deaths_i);
    temp.push_back(48 - 10 * weather_i + rng.Normal());
    snow.push_back(30 + 15 * weather_i + 2 * rng.Normal());
    pop_size.push_back(8e6 + 3e6 * population_i);
    pop_density.push_back(400 + 180 * population_i + 20 * rng.Normal());
    confirmed.push_back(120000 + 60000 * confirmed_i);
    deaths.push_back(90 + 35 * deaths_i);
    mask.push_back(mask_i);
  }
  // Table 1: the analyst's input (policy, outcome, one spread attribute).
  CDI_CHECK(w.input.AddColumn(Column::FromStrings("state", states)).ok());
  CDI_CHECK(
      w.input.AddColumn(Column::FromDoubles("mask_policy", mask)).ok());
  CDI_CHECK(
      w.input.AddColumn(Column::FromDoubles("death_cases", deaths)).ok());
  CDI_CHECK(
      w.input.AddColumn(Column::FromDoubles("confirmed_cases", confirmed))
          .ok());

  // DBpedia stand-in: weather properties + the governor (an FD attribute),
  // with snow missing where it barely snows — the paper's Table 2.
  for (std::size_t i = 0; i < kStates; ++i) {
    w.kg.AddLiteral(states[i], "avg_temp", Value(temp[i]));
    if (snow[i] > 18) {
      w.kg.AddLiteral(states[i], "snow_inch", Value(snow[i]));
    }
    w.kg.AddLiteral(states[i], "governor", Value(governors[i]));
  }
  // US Open Data stand-in: population statistics table.
  Table pop("us_population");
  CDI_CHECK(pop.AddColumn(Column::FromStrings("state", states)).ok());
  CDI_CHECK(pop.AddColumn(Column::FromDoubles("pop_size", pop_size)).ok());
  CDI_CHECK(
      pop.AddColumn(Column::FromDoubles("pop_density", pop_density)).ok());
  w.lake.AddTable(std::move(pop));

  // Concept-level world knowledge for the simulated LLM (Figure 1's
  // cluster-level shape).
  w.concepts = cdi::graph::Digraph(
      {"weather", "population", "policy", "spread", "deaths"});
  CDI_CHECK(w.concepts.AddEdge("weather", "policy").ok());
  CDI_CHECK(w.concepts.AddEdge("weather", "deaths").ok());
  CDI_CHECK(w.concepts.AddEdge("population", "policy").ok());
  CDI_CHECK(w.concepts.AddEdge("population", "spread").ok());
  CDI_CHECK(w.concepts.AddEdge("spread", "deaths").ok());
  CDI_CHECK(w.concepts.AddEdge("policy", "deaths").ok());
  return w;
}

}  // namespace

int main() {
  World world = MakeWorld();

  std::printf("== Table 1: the analyst's input ==\n%s\n",
              world.input.ToString(4).c_str());

  cdi::knowledge::OracleOptions oracle_options;
  oracle_options.seed = 3;
  cdi::knowledge::TextCausalOracle oracle(world.concepts, oracle_options);
  oracle.RegisterAlias("mask_policy", "policy");
  oracle.RegisterAlias("death_cases", "deaths");
  oracle.RegisterAlias("avg_temp", "weather");
  oracle.RegisterAlias("snow_inch", "weather");
  oracle.RegisterAlias("pop_size", "population");
  oracle.RegisterAlias("pop_density", "population");
  oracle.RegisterAlias("confirmed_cases", "spread");

  cdi::knowledge::TopicModel topics;
  // Include full attribute names per topic so generic tokens ("cases")
  // cannot hijack a label — the scenario builders do the same.
  topics.AddTopic("weather", {"temp", "snow", "avg_temp", "snow_inch"});
  topics.AddTopic("population", {"pop", "density", "pop_size"});
  topics.AddTopic("spread", {"confirmed", "confirmed_cases"});
  topics.AddTopic("policy", {"mask", "mask_policy"});
  topics.AddTopic("deaths", {"death", "death_cases", "mortality"});

  cdi::core::PipelineOptions options;
  options.builder.varclus.min_clusters = 3;  // weather/population/spread
  options.builder.varclus.max_clusters = 3;
  cdi::core::Pipeline pipeline(&world.kg, &world.lake, &oracle, &topics,
                               options);
  auto run = pipeline.Run(world.input, "state", "mask_policy",
                          "death_cases");
  if (!run.ok()) {
    std::fprintf(stderr, "pipeline failed: %s\n",
                 run.status().ToString().c_str());
    return 1;
  }

  std::printf("== Table 2: extracted attributes ==\n");
  for (const auto& a : run->extraction.attributes) {
    std::printf("  %-12s from %-15s corr(T)=%.2f corr(O)=%.2f %s\n",
                a.name.c_str(), a.source.c_str(), a.corr_with_exposure,
                a.corr_with_outcome,
                a.kept ? "kept" : ("dropped: " + a.drop_reason).c_str());
  }

  std::printf("\n== Data Organizer ==\n");
  for (const auto& d : run->organization.dropped_fd_attributes) {
    std::printf("  dropped FD attribute: %s\n", d.c_str());
  }
  for (const auto& m : run->organization.missingness) {
    std::printf("  %s: %.0f%% missing, selection-bias risk: %s\n",
                m.attribute.c_str(), 100 * m.missing_fraction,
                m.selection_bias_risk ? "YES (IPW applied)" : "no");
  }

  std::printf("\n== C-DAG (Figure 2 analog) ==\n");
  for (const auto& [from, to] : run->build.claims) {
    std::printf("  %s -> %s\n", from.c_str(), to.c_str());
  }
  std::printf("  confounder clusters:");
  for (const auto& c : run->build.cdag.ConfounderClusters()) {
    std::printf(" %s", c.c_str());
  }
  std::printf("\n");

  // The punchline: naive vs adjusted estimate.
  auto naive = cdi::core::EstimateEffect(run->organization.organized,
                                         "mask_policy", "death_cases", {});
  std::printf("\n== Effect of the mask policy on deaths ==\n");
  std::printf("  naive (no adjustment):        %+.3f  <- confounded!\n",
              naive->effect);
  std::printf("  C-DAG backdoor adjustment:    %+.3f\n",
              run->total_effect.effect);
  std::printf("  (structural truth is negative: masks reduce deaths)\n");

  // Figure 1 analog: the full attribute-level DAG implied by the claims,
  // exposure/outcome highlighted.
  cdi::graph::DotOptions dot;
  dot.highlighted = {"mask_policy", "death_cases"};
  {
    cdi::graph::Digraph full(
        {"avg_temp", "snow_inch", "pop_size", "pop_density",
         "confirmed_cases", "mask_policy", "death_cases"});
    auto add = [&](const char* a, const char* b) {
      CDI_CHECK(full.AddEdge(a, b).ok());
    };
    add("avg_temp", "mask_policy");
    add("snow_inch", "mask_policy");
    add("avg_temp", "death_cases");
    add("snow_inch", "death_cases");
    add("pop_size", "mask_policy");
    add("pop_density", "mask_policy");
    add("pop_size", "confirmed_cases");
    add("pop_density", "confirmed_cases");
    add("confirmed_cases", "death_cases");
    add("mask_policy", "death_cases");
    std::ofstream("quickstart_full_dag.dot") << ToDot(full, dot);
  }
  {
    cdi::graph::DotOptions cdot;
    cdot.highlighted = {run->build.cdag.exposure_cluster(),
                        run->build.cdag.outcome_cluster()};
    std::ofstream("quickstart_cdag.dot")
        << ToDot(run->build.cdag.graph(), cdot);
  }
  std::printf("\nwrote quickstart_full_dag.dot, quickstart_cdag.dot\n");
  return 0;
}
