// FLIGHTS analysis walkthrough (§4): estimate the direct effect of the
// origin city on departure delays — fully mediated through weather,
// demand, carrier, congestion, distance, and aircraft. This example also
// contrasts CATER's C-DAG with a pure data-centric baseline (PC) to show
// why the hybrid matters: PC recovers a decent skeleton but cannot orient
// the origin's edges, so it identifies no mediators.
//
// Usage: flights_analysis [seed]
// Writes flights_cdag.dot.

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "core/evaluation.h"
#include "core/pipeline.h"
#include "datagen/flights.h"
#include "graph/dot.h"

namespace {

cdi::Result<cdi::core::PipelineResult> Run(
    const cdi::datagen::Scenario& s, cdi::core::EdgeInference inference) {
  auto options = cdi::core::DefaultEvaluationOptions(s);
  options.builder.inference = inference;
  cdi::core::Pipeline pipeline(&s.kg, &s.lake, s.oracle.get(), &s.topics,
                               options);
  return pipeline.Run(s.input_table, s.spec.entity_column,
                      s.exposure_attribute, s.outcome_attribute);
}

void PrintIdentification(const char* label,
                         const cdi::core::PipelineResult& run) {
  std::printf("%s\n", label);
  std::printf("  edges claimed: %zu\n", run.build.claims.size());
  std::printf("  mediators:");
  const auto meds = run.build.cdag.MediatorClusters();
  if (meds.empty()) std::printf(" (none found)");
  for (const auto& m : meds) std::printf(" %s", m.c_str());
  std::printf("\n  direct-effect estimate: %+.3f\n",
              run.direct_effect.effect);
}

}  // namespace

int main(int argc, char** argv) {
  auto spec = cdi::datagen::FlightsSpec();
  if (argc > 1) spec.seed = static_cast<uint64_t>(std::atoll(argv[1]));
  auto scenario = cdi::datagen::BuildScenario(spec);
  if (!scenario.ok()) {
    std::fprintf(stderr, "%s\n", scenario.status().ToString().c_str());
    return 1;
  }
  const auto& s = **scenario;

  std::printf("Input table (%zu cities):\n%s\n", s.input_table.num_rows(),
              s.input_table.ToString(5).c_str());

  auto cater = Run(s, cdi::core::EdgeInference::kHybrid);
  auto pc = Run(s, cdi::core::EdgeInference::kDataPc);
  if (!cater.ok() || !pc.ok()) {
    std::fprintf(stderr, "pipeline failed: %s %s\n",
                 cater.status().ToString().c_str(),
                 pc.status().ToString().c_str());
    return 1;
  }

  std::printf("C-DAG edges found by CATER:\n");
  for (const auto& [from, to] : cater->build.claims) {
    std::printf("  %s -> %s\n", from.c_str(), to.c_str());
  }
  std::printf("\n");
  PrintIdentification("CATER (hybrid text + data):", *cater);
  std::printf("\n");
  PrintIdentification("PC (data only, same clusters):", *pc);

  std::printf(
      "\nThe contrast above is the paper's point: both see similar\n"
      "skeletons, but only the hybrid can orient the origin's edges and\n"
      "recover the mediators, driving its direct-effect estimate to ~0.\n");

  std::printf("\nRuntime: %.2f s wall clock; %.0f s simulated external "
              "services (paper: 645 s end-to-end)\n",
              cater->timings.total_seconds,
              cater->external.TotalSeconds());

  cdi::graph::DotOptions dot;
  dot.highlighted = {cater->build.cdag.exposure_cluster(),
                     cater->build.cdag.outcome_cluster()};
  std::ofstream("flights_cdag.dot")
      << ToDot(cater->build.cdag.graph(), dot);
  std::printf("wrote flights_cdag.dot\n");
  return 0;
}
