// COVID-19 analysis walkthrough (the paper's §4 scenario): estimate the
// direct effect of a country on the Covid-19 death rate. The effect is
// fully mediated (ground truth 0); getting that answer requires mining the
// mediators from external sources and building the C-DAG.
//
// Usage: covid_analysis [seed]
// Writes covid_cdag.dot.

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "core/evaluation.h"
#include "core/pipeline.h"
#include "datagen/covid.h"
#include "graph/dot.h"

int main(int argc, char** argv) {
  auto spec = cdi::datagen::CovidSpec();
  if (argc > 1) spec.seed = static_cast<uint64_t>(std::atoll(argv[1]));
  auto scenario = cdi::datagen::BuildScenario(spec);
  if (!scenario.ok()) {
    std::fprintf(stderr, "%s\n", scenario.status().ToString().c_str());
    return 1;
  }
  const auto& s = **scenario;

  std::printf("Input table (%zu countries):\n%s\n", s.input_table.num_rows(),
              s.input_table.ToString(5).c_str());

  auto options = cdi::core::DefaultEvaluationOptions(s);
  cdi::core::Pipeline pipeline(&s.kg, &s.lake, s.oracle.get(), &s.topics,
                               options);
  auto run = pipeline.Run(s.input_table, spec.entity_column,
                          s.exposure_attribute, s.outcome_attribute);
  if (!run.ok()) {
    std::fprintf(stderr, "%s\n", run.status().ToString().c_str());
    return 1;
  }

  std::printf("Stage 1 - Knowledge Extractor:\n");
  std::printf("  %zu candidate columns from the knowledge graph, %zu from "
              "the data lake\n",
              run->extraction.kg_columns_found,
              run->extraction.lake_columns_found);
  std::size_t kept = 0;
  for (const auto& a : run->extraction.attributes) kept += a.kept ? 1 : 0;
  std::printf("  kept %zu attributes after the relevance filter\n", kept);

  std::printf("Stage 2 - Data Organizer:\n");
  std::printf("  dropped FD attributes:");
  for (const auto& d : run->organization.dropped_fd_attributes) {
    std::printf(" %s", d.c_str());
  }
  std::printf("\n  duplicate rows removed: %zu\n",
              run->organization.duplicate_rows_removed);
  for (const auto& [attr, cells] : run->organization.winsorized_cells) {
    std::printf("  winsorized %zu outlier cells in %s\n", cells,
                attr.c_str());
  }
  for (const auto& m : run->organization.missingness) {
    std::printf("  %-18s %.1f%% missing (p vs T=%.3f, p vs O=%.3f)%s\n",
                m.attribute.c_str(), 100 * m.missing_fraction,
                m.p_vs_exposure, m.p_vs_outcome,
                m.selection_bias_risk ? "  ** selection-bias risk" : "");
  }

  std::printf("Stage 3 - C-DAG Builder:\n");
  std::printf("  clusters:");
  for (const auto& t : run->build.cluster_topics) std::printf(" %s", t.c_str());
  std::printf("\n  %zu edges (%zu pruned by CI tests, %zu removed in cycle "
              "repair)\n",
              run->build.claims.size(), run->build.pruned_edges.size(),
              run->build.cycle_repaired_edges.size());

  std::printf("\nIdentification from the C-DAG:\n  mediators:");
  for (const auto& m : run->build.cdag.MediatorClusters()) {
    std::printf(" %s", m.c_str());
  }
  std::printf("\n  confounders:");
  for (const auto& c : run->build.cdag.ConfounderClusters()) {
    std::printf(" %s", c.c_str());
  }
  std::printf("\n\nEffect estimates (standardized):\n");
  std::printf("  direct effect of country on death rate: %+.3f "
              "(ground truth: 0)\n",
              run->direct_effect.effect);
  std::printf("  total effect (backdoor adjusted):       %+.3f\n",
              run->total_effect.effect);
  std::printf("  E-value of the direct estimate:         %.2f (an unobserved"
              " confounder would need\n    this association strength with"
              " both T and O to explain it away)\n",
              run->direct_effect_sensitivity.e_value);

  std::printf("\nRuntime: %.2f s wall clock; %.0f s simulated external "
              "services (paper: 304 s end-to-end)\n",
              run->timings.total_seconds, run->external.TotalSeconds());
  for (const auto& [service, entry] : run->external.entries()) {
    std::printf("  %-16s %5ld calls  %7.1f s\n", service.c_str(),
                static_cast<long>(entry.calls), entry.seconds);
  }

  cdi::graph::DotOptions dot;
  dot.highlighted = {run->build.cdag.exposure_cluster(),
                     run->build.cdag.outcome_cluster()};
  std::ofstream("covid_cdag.dot") << ToDot(run->build.cdag.graph(), dot);
  std::printf("\nwrote covid_cdag.dot\n");
  return 0;
}
