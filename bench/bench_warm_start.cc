// Warm-start discovery sweep for the streaming-ingest path (PR 7).
//
// Simulates an epoch rollover at several delta sizes: the "previous
// epoch" runs data-driven discovery (PC / GES on cluster
// representatives) over the first N - delta rows of a scenario, the
// rollover appends the remaining delta rows, and the next plan build
// runs either cold (complete-graph start) or warm (seeded with the
// previous epoch's discovery warm-seed — PC skeleton / GES DAG, exactly
// what QueryServer::UpdateScenario stashes as warm_start_edges). For
// each (scenario, method, delta) cell it reports the C-DAG-build stage
// time, the number of CI tests / search steps discovery actually ran,
// and the edge-presence F1 against the ground-truth cluster DAG — the
// acceptance bar is warm time < cold time with F1 no worse.
//
// Each cell is averaged over several scenario seeds (single draws are
// noisy: one decoy edge surviving or dying moves F1 by ~0.05).
//
// Regenerates the "Streaming-ingest sweep" table in EXPERIMENTS.md:
//   ./build/bench/bench_warm_start [entities] [repeats] [seeds]

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include "core/cdag_builder.h"
#include "core/evaluation.h"
#include "core/pipeline.h"
#include "datagen/covid.h"
#include "datagen/flights.h"
#include "graph/metrics.h"

namespace {

using cdi::core::EdgeInference;

/// Edge-presence F1 of topic-space claims against the ground-truth
/// cluster DAG (same mapping as core::EvaluateMethod: unknown topics get
/// fresh ids so they count as false positives).
double PresenceF1(
    const std::vector<std::pair<std::string, std::string>>& claims,
    const cdi::graph::Digraph& truth) {
  std::map<std::string, cdi::graph::NodeId> extra;
  auto id_of = [&](const std::string& name) {
    auto id = truth.NodeIdOf(name);
    if (id.ok()) return *id;
    auto [it, inserted] = extra.emplace(name, truth.num_nodes() + extra.size());
    return it->second;
  };
  std::vector<cdi::graph::Edge> mapped;
  for (const auto& [from, to] : claims) mapped.emplace_back(id_of(from), id_of(to));
  return cdi::graph::CompareEdgeSets(truth.num_nodes(), mapped, truth.Edges())
      .presence.f1;
}

struct Cell {
  double build_ms = 0.0;  // median C-DAG-build stage time
  std::size_t ci_tests = 0;
  double f1 = 0.0;
};

/// Runs the pipeline on `input` with the given discovery mode and warm
/// seed, `repeats` times; returns the median build-stage time plus the
/// (deterministic) CI-test count and presence F1.
Cell Measure(const cdi::datagen::Scenario& s, const cdi::table::Table& input,
             EdgeInference mode,
             const std::vector<std::pair<std::string, std::string>>& seed,
             int repeats) {
  auto options = cdi::core::DefaultEvaluationOptions(s);
  options.builder.inference = mode;
  options.builder.warm_start_edges = seed;
  cdi::core::Pipeline pipeline(&s.kg, &s.lake, s.oracle.get(), &s.topics,
                               options);
  Cell cell;
  std::vector<double> times;
  for (int r = 0; r < repeats; ++r) {
    auto run = pipeline.Run(input, s.spec.entity_column, s.exposure_attribute,
                            s.outcome_attribute);
    if (!run.ok()) {
      std::fprintf(stderr, "%s\n", run.status().ToString().c_str());
      std::exit(1);
    }
    times.push_back(run->timings.build_seconds * 1e3);
    cell.ci_tests = run->build.ci_tests;
    cell.f1 = PresenceF1(run->build.claims, s.cluster_dag);
  }
  std::sort(times.begin(), times.end());
  cell.build_ms = times[times.size() / 2];
  return cell;
}

int SweepScenario(const char* label, cdi::datagen::ScenarioSpec spec,
                  int repeats, int seeds) {
  std::printf("%s (%d seeds, median-of-%d build times)\n", label, seeds,
              repeats);
  std::printf(
      "  method  delta   cold ms /   CI / F1        warm ms /   CI / F1\n");
  const std::uint64_t base_seed = spec.seed;
  for (EdgeInference mode : {EdgeInference::kDataPc, EdgeInference::kDataGes}) {
    // delta = 0 is a plumbing self-check: seeding with the same data's
    // own discovery output must reproduce the cold run exactly.
    for (std::size_t delta : {std::size_t{0}, std::size_t{5}, std::size_t{25},
                              std::size_t{100}}) {
      Cell cold_sum, warm_sum;
      for (int trial = 0; trial < seeds; ++trial) {
        spec.seed = base_seed + static_cast<std::uint64_t>(trial);
        auto built = cdi::datagen::BuildScenario(spec);
        if (!built.ok()) {
          std::fprintf(stderr, "%s\n", built.status().ToString().c_str());
          return 1;
        }
        const auto& s = **built;
        const std::size_t n = s.input_table.num_rows();
        if (delta >= n) continue;

        // Previous epoch: discovery over the first n - delta rows; its
        // definite C-DAG edges are the rollover's warm seed.
        std::vector<std::size_t> base_rows(n - delta);
        std::iota(base_rows.begin(), base_rows.end(), 0);
        const cdi::table::Table base = s.input_table.TakeRows(base_rows);
        auto options = cdi::core::DefaultEvaluationOptions(s);
        options.builder.inference = mode;
        cdi::core::Pipeline p0(&s.kg, &s.lake, s.oracle.get(), &s.topics,
                               options);
        auto run0 = p0.Run(base, s.spec.entity_column, s.exposure_attribute,
                           s.outcome_attribute);
        if (!run0.ok()) {
          std::fprintf(stderr, "%s\n", run0.status().ToString().c_str());
          return 1;
        }

        // Rollover: the full table is the new epoch's input.
        const Cell cold = Measure(s, s.input_table, mode, {}, repeats);
        const Cell warm =
            Measure(s, s.input_table, mode, run0->build.warm_seed, repeats);
        cold_sum.build_ms += cold.build_ms;
        cold_sum.ci_tests += cold.ci_tests;
        cold_sum.f1 += cold.f1;
        warm_sum.build_ms += warm.build_ms;
        warm_sum.ci_tests += warm.ci_tests;
        warm_sum.f1 += warm.f1;
      }
      const double k = seeds;
      const bool is_pc = mode == EdgeInference::kDataPc;
      char cold_ci[16], warm_ci[16];
      if (is_pc) {
        std::snprintf(cold_ci, sizeof cold_ci, "%4.0f", cold_sum.ci_tests / k);
        std::snprintf(warm_ci, sizeof warm_ci, "%4.0f", warm_sum.ci_tests / k);
      } else {
        std::snprintf(cold_ci, sizeof cold_ci, "   -");
        std::snprintf(warm_ci, sizeof warm_ci, "   -");
      }
      std::printf(
          "  %-6s  %5zu   %7.2f / %s / %.3f     %7.2f / %s / %.3f%s\n",
          cdi::core::EdgeInferenceName(mode), delta, cold_sum.build_ms / k,
          cold_ci, cold_sum.f1 / k, warm_sum.build_ms / k, warm_ci,
          warm_sum.f1 / k,
          warm_sum.f1 + 1e-9 < cold_sum.f1 ? "   <-- F1 regressed" : "");
    }
  }
  std::printf("\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t entities =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 220;
  const int repeats = argc > 2 ? std::atoi(argv[2]) : 5;
  const int seeds = argc > 3 ? std::atoi(argv[3]) : 5;

  auto covid = cdi::datagen::CovidSpec();
  covid.num_entities = entities;
  auto flights = cdi::datagen::FlightsSpec();
  flights.num_entities = entities;

  int rc = SweepScenario("COVID-19", covid, repeats, seeds);
  if (rc == 0) rc = SweepScenario("FLIGHTS", flights, repeats, seeds);
  return rc;
}
