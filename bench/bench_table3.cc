// Regenerates the paper's Table 3 (Quality Evaluation): for FLIGHTS and
// COVID-19, runs CATER and the five baselines (GPT-3 Only, GES, LiNGAM,
// PC, FCI) with identical clusters/topics and reports |E|, directed-edge
// inclusion and absence precision/recall/F1, and the estimated direct
// effect (ground truth: 0). Metrics are averaged over several scenario
// seeds (pass the seed count as argv[1]; default 5) — the paper reports a
// single run, but seed-averaging makes the *shape* comparison robust.
//
// Absolute numbers will differ from the paper (our substrate is a seeded
// simulator, not Kaggle data + the OpenAI API); the reproduction target is
// the shape — CATER first on F1 and direct effect, GPT-3 Only inflated |E|
// but good mediators, data-centric methods unable to find mediators.
// See EXPERIMENTS.md.

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/evaluation.h"
#include "datagen/covid.h"
#include "datagen/flights.h"

namespace {

int RunDataset(const char* label, cdi::datagen::ScenarioSpec base_spec,
               int num_seeds) {
  std::vector<std::vector<cdi::core::Table3Row>> per_seed;
  const cdi::datagen::ScenarioSpec first_spec = base_spec;
  std::unique_ptr<cdi::datagen::Scenario> first_scenario;
  for (int s = 0; s < num_seeds; ++s) {
    cdi::datagen::ScenarioSpec spec = base_spec;
    spec.seed = base_spec.seed + static_cast<uint64_t>(s) * 1013;
    auto scenario = cdi::datagen::BuildScenario(spec);
    if (!scenario.ok()) {
      std::fprintf(stderr, "scenario build failed: %s\n",
                   scenario.status().ToString().c_str());
      return 1;
    }
    const auto options = cdi::core::DefaultEvaluationOptions(**scenario);
    auto rows = cdi::core::EvaluateAllMethods(**scenario, options);
    if (!rows.ok()) {
      std::fprintf(stderr, "evaluation failed (seed %d): %s\n", s,
                   rows.status().ToString().c_str());
      return 1;
    }
    per_seed.push_back(*rows);
    if (s == 0) first_scenario = std::move(*scenario);
  }

  // Average the per-method rows across seeds.
  std::vector<cdi::core::Table3Row> avg = per_seed[0];
  std::vector<double> mediator_hits(avg.size(), 0.0);
  for (std::size_t m = 0; m < avg.size(); ++m) {
    cdi::core::Table3Row acc = per_seed[0][m];
    acc.num_edges = 0;
    acc.presence = {};
    acc.absence = {};
    acc.direct_effect = 0;
    acc.external_seconds = 0;
    acc.wall_seconds = 0;
    double edges = 0;
    for (const auto& rows : per_seed) {
      const auto& r = rows[m];
      edges += static_cast<double>(r.num_edges);
      acc.presence.precision += r.presence.precision;
      acc.presence.recall += r.presence.recall;
      acc.presence.f1 += r.presence.f1;
      acc.absence.precision += r.absence.precision;
      acc.absence.recall += r.absence.recall;
      acc.absence.f1 += r.absence.f1;
      acc.direct_effect += r.direct_effect;
      acc.external_seconds += r.external_seconds;
      acc.wall_seconds += r.wall_seconds;
      mediator_hits[m] += r.mediators_match_truth ? 1.0 : 0.0;
    }
    const double k = static_cast<double>(per_seed.size());
    acc.num_edges = static_cast<std::size_t>(edges / k + 0.5);
    acc.presence.precision /= k;
    acc.presence.recall /= k;
    acc.presence.f1 /= k;
    acc.absence.precision /= k;
    acc.absence.recall /= k;
    acc.absence.f1 /= k;
    acc.direct_effect /= k;
    acc.external_seconds /= k;
    acc.wall_seconds /= k;
    avg[m] = acc;
  }

  std::printf("%s (|V|=%zu, |E|=%zu, %d seeds)\n", label,
              first_scenario->cluster_dag.num_nodes(),
              first_scenario->cluster_dag.num_edges(), num_seeds);
  std::printf(
      "  Method      |E|   Inclusion P/R/F1        Absence P/R/F1         "
      "DirectEff  Mediators-OK\n");
  for (std::size_t m = 0; m < avg.size(); ++m) {
    const auto& r = avg[m];
    std::printf(
        "  %-10s %4zu   %4.2f / %4.2f / %4.2f      %4.2f / %4.2f / %4.2f    "
        "  %6.3f     %.0f/%d\n",
        r.method.c_str(), r.num_edges, r.presence.precision,
        r.presence.recall, r.presence.f1, r.absence.precision,
        r.absence.recall, r.absence.f1, r.direct_effect, mediator_hits[m],
        num_seeds);
  }
  std::printf("\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const int num_seeds = argc > 1 ? std::atoi(argv[1]) : 5;
  std::printf("Table 3: Quality Evaluation (reproduction, %d-seed mean)\n",
              num_seeds);
  std::printf("========================================================\n\n");
  int rc = 0;
  rc |= RunDataset("FLIGHTS", cdi::datagen::FlightsSpec(), num_seeds);
  rc |= RunDataset("COVID-19", cdi::datagen::CovidSpec(), num_seeds);
  return rc;
}
