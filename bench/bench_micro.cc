// google-benchmark microbenchmarks for the CDI substrates: hash join,
// group-by, correlation matrix, Fisher-z CI tests, PC / GES / VARCLUS
// scaling, d-separation, and the end-to-end pipeline stages.

#include <benchmark/benchmark.h>

#include <cmath>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <utility>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/pipeline.h"
#include "core/evaluation.h"
#include "core/plan.h"
#include "core/varclus.h"
#include "datagen/covid.h"
#include "datagen/flights.h"
#include "datagen/grid.h"
#include "discovery/cached_ci.h"
#include "discovery/ci_test.h"
#include "discovery/ges.h"
#include "discovery/pc.h"
#include "graph/dsep.h"
#include "graph/random_graph.h"
#include "serve/query_server.h"
#include "serve/scenario_registry.h"
#include "summarize/summarize.h"
#include "stats/correlation.h"
#include "stats/gram_kernel.h"
#include "stats/linalg.h"
#include "stats/sufficient_stats.h"
#include "table/aggregate.h"
#include "table/join.h"

namespace {

using cdi::Rng;

cdi::table::Table RandomKeyedTable(std::size_t rows, std::size_t entities,
                                   uint64_t seed) {
  Rng rng(seed);
  std::vector<std::string> keys;
  std::vector<double> values;
  for (std::size_t r = 0; r < rows; ++r) {
    keys.push_back("entity_" + std::to_string(rng.UniformInt(entities)));
    values.push_back(rng.Normal());
  }
  cdi::table::Table t("bench");
  CDI_CHECK(
      t.AddColumn(cdi::table::Column::FromStrings("key", keys)).ok());
  CDI_CHECK(
      t.AddColumn(cdi::table::Column::FromDoubles("value", values)).ok());
  return t;
}

void BM_HashJoin(benchmark::State& state) {
  const auto rows = static_cast<std::size_t>(state.range(0));
  auto left = RandomKeyedTable(rows, rows / 4, 1);
  auto right = RandomKeyedTable(rows, rows / 4, 2);
  for (auto _ : state) {
    auto j = cdi::table::HashJoin(left, right, "key");
    benchmark::DoNotOptimize(j->num_rows());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(rows));
}
BENCHMARK(BM_HashJoin)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_GroupBy(benchmark::State& state) {
  const auto rows = static_cast<std::size_t>(state.range(0));
  auto t = RandomKeyedTable(rows, rows / 8, 3);
  for (auto _ : state) {
    auto g = cdi::table::GroupBy(
        t, {"key"}, {{"value", cdi::table::AggKind::kMean, "m"}});
    benchmark::DoNotOptimize(g->num_rows());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(rows));
}
BENCHMARK(BM_GroupBy)->Arg(1000)->Arg(10000)->Arg(50000);

std::vector<std::vector<double>> ChainData(std::size_t vars, std::size_t n,
                                           uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> cols(vars, std::vector<double>(n));
  for (std::size_t i = 0; i < n; ++i) {
    cols[0][i] = rng.Normal();
    for (std::size_t v = 1; v < vars; ++v) {
      cols[v][i] = 0.6 * cols[v - 1][i] + rng.Normal();
    }
  }
  return cols;
}

void BM_CorrelationMatrix(benchmark::State& state) {
  const auto vars = static_cast<std::size_t>(state.range(0));
  auto ds = cdi::stats::NumericDataset::Own(ChainData(vars, 1000, 5));
  for (auto _ : state) {
    auto corr = cdi::stats::CorrelationMatrix(ds);
    benchmark::DoNotOptimize(corr->rows());
  }
}
BENCHMARK(BM_CorrelationMatrix)->Arg(10)->Arg(30)->Arg(100)->Arg(200)->Arg(400);

// One full statistics pass (400 vars x 1000 rows) pinned to each SIMD
// backend compiled into this binary. Arg(0) indexes AvailableGramKernels()
// (0 = scalar, then avx2/neon, then avx512); unavailable indices report
// as skipped rather than silently re-measuring another backend. Results
// are bitwise identical across rows — only the speed may differ.
void BM_GramSimd(benchmark::State& state) {
  const auto kernels = cdi::stats::AvailableGramKernels();
  const auto idx = static_cast<std::size_t>(state.range(0));
  if (idx >= kernels.size()) {
    state.SkipWithError("backend not compiled in / not supported here");
    return;
  }
  cdi::stats::SetGramKernelForTesting(kernels[idx]);
  auto ds = cdi::stats::NumericDataset::Own(ChainData(400, 1000, 5));
  for (auto _ : state) {
    auto corr = cdi::stats::CorrelationMatrix(ds);
    benchmark::DoNotOptimize(corr->rows());
  }
  cdi::stats::SetGramKernelForTesting(nullptr);
  state.SetLabel(kernels[idx]->name);
}
BENCHMARK(BM_GramSimd)->Arg(0)->Arg(1)->Arg(2);

// ------------------------------------- sufficient-statistics sweep
// The blocked Gram kernel vs the retired scalar reference, a threads ×
// vars sweep, and incremental column append vs full recompute. See
// EXPERIMENTS.md "Sufficient-statistics sweep".

void BM_CovarianceReference(benchmark::State& state) {
  const auto vars = static_cast<std::size_t>(state.range(0));
  auto ds = cdi::stats::NumericDataset::Own(ChainData(vars, 2000, 5));
  for (auto _ : state) {
    auto cov = cdi::stats::ReferenceCovarianceMatrix(ds);
    benchmark::DoNotOptimize(cov->rows());
  }
}
BENCHMARK(BM_CovarianceReference)->Arg(100)->Arg(200)->Arg(400);

// Arg(0) = threads, Arg(1) = vars. The pool is created outside the timed
// region (long-lived in real use); results are bitwise identical across
// every thread count, so this sweep measures pure scheduling overhead /
// speedup.
void BM_CovarianceBlockedSweep(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const auto vars = static_cast<std::size_t>(state.range(1));
  auto ds = cdi::stats::NumericDataset::Own(ChainData(vars, 2000, 5));
  std::unique_ptr<cdi::ThreadPool> pool;
  if (threads > 1) {
    pool = std::make_unique<cdi::ThreadPool>(
        static_cast<std::size_t>(threads));
  }
  for (auto _ : state) {
    auto cov = cdi::stats::CovarianceMatrix(ds, pool.get());
    benchmark::DoNotOptimize(cov->rows());
  }
  state.SetLabel("t" + std::to_string(threads) + "/v" +
                 std::to_string(vars));
}
// UseRealTime: with a pool the work runs on worker threads, whose CPU the
// default (main-thread) cpu_time does not see — wall clock is the honest
// metric for the threaded rows.
BENCHMARK(BM_CovarianceBlockedSweep)
    ->UseRealTime()
    ->Args({1, 100})
    ->Args({1, 200})
    ->Args({1, 400})
    ->Args({2, 200})
    ->Args({4, 200})
    ->Args({8, 200})
    ->Args({8, 400});

// Extending a 200-attribute Gram with 10 new columns: the incremental
// cross-term path (O(n * k * (p + k))) vs recomputing all 210 columns
// from scratch. Same data, bitwise-identical results.
void BM_SufficientStatsAppendIncremental(benchmark::State& state) {
  auto data = ChainData(210, 2000, 5);
  cdi::stats::NumericDataset base;
  for (std::size_t v = 0; v < 200; ++v) base.columns.push_back(data[v]);
  std::vector<cdi::DoubleSpan> extra(data.begin() + 200, data.end());
  auto stats = cdi::stats::SufficientStats::Compute(base);
  CDI_CHECK(stats.ok());
  for (auto _ : state) {
    state.PauseTiming();
    auto s = *stats;
    state.ResumeTiming();
    CDI_CHECK(s.AppendColumns(extra).ok());
    CDI_CHECK(s.last_append_incremental());
    benchmark::DoNotOptimize(s.num_vars());
  }
}
BENCHMARK(BM_SufficientStatsAppendIncremental);

void BM_SufficientStatsAppendRecompute(benchmark::State& state) {
  auto data = ChainData(210, 2000, 5);
  auto ds = cdi::stats::NumericDataset();
  for (auto& col : data) ds.columns.push_back(col);
  for (auto _ : state) {
    auto s = cdi::stats::SufficientStats::Compute(ds);
    CDI_CHECK(s.ok());
    benchmark::DoNotOptimize(s->num_vars());
  }
}
BENCHMARK(BM_SufficientStatsAppendRecompute);

// Streaming row ingest: delta-refreshing a 200-column Gram after a
// k-row batch vs recomputing from scratch over the grown data. The delta
// path must re-sweep the Gram (the means move, so every centered
// accumulation changes — bitwise contract), but it skips the full-table
// NaN prescan and column-sum scans, so it wins by the scan cost.
void BM_AppendRows(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const std::size_t n0 = 2000;
  auto data = ChainData(200, n0 + k, 7);
  cdi::stats::NumericDataset base;
  for (const auto& col : data) {
    base.columns.push_back(cdi::DoubleSpan::Borrow(col.data(), n0));
  }
  std::vector<cdi::DoubleSpan> full;
  for (const auto& col : data) full.emplace_back(col);
  auto stats = cdi::stats::SufficientStats::Compute(base);
  CDI_CHECK(stats.ok());
  for (auto _ : state) {
    state.PauseTiming();
    auto s = *stats;
    state.ResumeTiming();
    CDI_CHECK(s.AppendRows(full, k).ok());
    benchmark::DoNotOptimize(s.num_rows());
  }
}
BENCHMARK(BM_AppendRows)->Arg(64)->Arg(512);

void BM_AppendRowsRecompute(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  auto data = ChainData(200, 2000 + k, 7);
  cdi::stats::NumericDataset ds;
  for (const auto& col : data) ds.columns.emplace_back(col);
  for (auto _ : state) {
    auto s = cdi::stats::SufficientStats::Compute(ds);
    CDI_CHECK(s.ok());
    benchmark::DoNotOptimize(s->num_rows());
  }
}
BENCHMARK(BM_AppendRowsRecompute)->Arg(64)->Arg(512);

void BM_FisherZPartialCorrelation(benchmark::State& state) {
  auto ds = cdi::stats::NumericDataset::Own(ChainData(20, 1000, 7));
  auto test = cdi::discovery::FisherZTest::Create(ds);
  const std::vector<std::size_t> cond = {2, 5, 9};
  for (auto _ : state) {
    benchmark::DoNotOptimize((*test)->PValue(0, 10, cond));
  }
}
BENCHMARK(BM_FisherZPartialCorrelation);

// PC's inner pattern — lexicographic subsets of one candidate pool as
// conditioning sets — with the factor cache on (Arg = 1) vs per-query
// from-scratch Cholesky (Arg = 0). Consecutive subsets share prefixes,
// which is exactly what the cache extends; answers are bitwise equal.
void BM_PartialCorrBatched(benchmark::State& state) {
  const bool batched = state.range(0) != 0;
  auto ds = cdi::stats::NumericDataset::Own(ChainData(20, 1000, 7));
  auto test = cdi::discovery::FisherZTest::Create(ds);
  CDI_CHECK(test.ok());
  (*test)->set_batched(batched);
  const std::vector<std::size_t> pool = {2, 4, 5, 8, 9, 11, 13, 16};
  std::vector<std::size_t> cond(4);
  for (auto _ : state) {
    double sum = 0.0;
    // All 70 4-subsets of the 8-candidate pool, in subset order.
    for (std::size_t a = 0; a < pool.size(); ++a) {
      for (std::size_t b = a + 1; b < pool.size(); ++b) {
        for (std::size_t c = b + 1; c < pool.size(); ++c) {
          for (std::size_t d = c + 1; d < pool.size(); ++d) {
            cond = {pool[a], pool[b], pool[c], pool[d]};
            sum += (*test)->PValue(0, 10, cond);
          }
        }
      }
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetLabel(batched ? "batched" : "scratch");
}
BENCHMARK(BM_PartialCorrBatched)->Arg(0)->Arg(1);

// Each variable loads on its three predecessors, so the skeleton keeps
// edges through the low levels and PC runs many size-2..4 conditioning
// sets — the regime the factor cache targets. A plain chain is useless
// here: PC separates almost every pair at level 0/1, where there is no
// factorization to reuse.
std::vector<std::vector<double>> DenseData(std::size_t vars, std::size_t n,
                                           uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> cols(vars, std::vector<double>(n));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t v = 0; v < vars; ++v) {
      double x = rng.Normal();
      for (std::size_t k = 1; k <= 3 && k <= v; ++k) {
        x += 0.45 * cols[v - k][i];
      }
      cols[v][i] = x;
    }
  }
  return cols;
}

// Full PC-stable skeleton with the batched CI engine on/off. The win
// grows with the variable count: higher levels mean larger conditioning
// sets, where re-factorizing from scratch is quadratically dearer than
// extending a cached prefix.
void BM_PcSkeletonBatched(benchmark::State& state) {
  const bool batched = state.range(0) != 0;
  const std::size_t vars = 30;
  auto ds = cdi::stats::NumericDataset::Own(DenseData(vars, 800, 9));
  std::vector<std::string> names;
  for (std::size_t v = 0; v < vars; ++v) {
    names.push_back("v" + std::to_string(v));
  }
  auto test = cdi::discovery::FisherZTest::Create(ds);
  CDI_CHECK(test.ok());
  (*test)->set_batched(batched);
  for (auto _ : state) {
    auto result = cdi::discovery::RunPc(**test, names);
    benchmark::DoNotOptimize(result->ci_tests);
  }
  state.SetLabel(batched ? "batched" : "scratch");
}
BENCHMARK(BM_PcSkeletonBatched)->Arg(0)->Arg(1);

void BM_PcScaling(benchmark::State& state) {
  const auto vars = static_cast<std::size_t>(state.range(0));
  auto ds = cdi::stats::NumericDataset::Own(ChainData(vars, 800, 9));
  std::vector<std::string> names;
  for (std::size_t v = 0; v < vars; ++v) {
    names.push_back("v" + std::to_string(v));
  }
  for (auto _ : state) {
    auto test = cdi::discovery::FisherZTest::Create(ds);
    auto result = cdi::discovery::RunPc(**test, names);
    benchmark::DoNotOptimize(result->ci_tests);
  }
}
BENCHMARK(BM_PcScaling)->Arg(5)->Arg(10)->Arg(20);

// Threads × cache sweep over the PC-stable skeleton. Arg(0) = threads,
// Arg(1) = cache on/off. The cached engine computes the correlation
// matrix once and memoizes every (x, y, S) query — after the first
// iteration the cache is warm, which is the steady state of the hybrid
// builder (pruning, augmentation and cycle repair revisit the same
// queries). Compare against BM_PcScaling, which rebuilds a plain
// FisherZTest (full correlation matrix) per run.
void BM_PcThreadsCacheSweep(benchmark::State& state) {
  const std::size_t vars = 20;
  const int threads = static_cast<int>(state.range(0));
  const bool cached = state.range(1) != 0;
  auto ds = cdi::stats::NumericDataset::Own(ChainData(vars, 800, 9));
  std::vector<std::string> names;
  for (std::size_t v = 0; v < vars; ++v) {
    names.push_back("v" + std::to_string(v));
  }
  cdi::discovery::PcOptions options;
  options.num_threads = threads;
  // The pool is long-lived in real use (one engine, many runs); spawning
  // threads inside the timed region would benchmark pthread_create.
  std::unique_ptr<cdi::ThreadPool> pool;
  if (threads > 1) {
    pool = std::make_unique<cdi::ThreadPool>(
        static_cast<std::size_t>(threads));
    options.pool = pool.get();
  }
  std::unique_ptr<cdi::discovery::CiTest> test;
  if (cached) {
    auto t = cdi::discovery::CachedCiTest::ForGaussian(ds);
    CDI_CHECK(t.ok());
    test = std::move(*t);
  } else {
    auto t = cdi::discovery::FisherZTest::Create(ds);
    CDI_CHECK(t.ok());
    test = std::move(*t);
  }
  for (auto _ : state) {
    auto result = cdi::discovery::RunPc(*test, names, options);
    benchmark::DoNotOptimize(result->ci_tests);
  }
  state.SetLabel((cached ? "cached" : "plain") + std::string("/t") +
                 std::to_string(threads));
}
BENCHMARK(BM_PcThreadsCacheSweep)
    ->Args({1, 0})
    ->Args({1, 1})
    ->Args({2, 1})
    ->Args({4, 1})
    ->Args({8, 1});

void BM_GesScaling(benchmark::State& state) {
  const auto vars = static_cast<std::size_t>(state.range(0));
  auto data = ChainData(vars, 800, 11);
  std::vector<std::string> names;
  for (std::size_t v = 0; v < vars; ++v) {
    names.push_back("v" + std::to_string(v));
  }
  for (auto _ : state) {
    auto result = cdi::discovery::RunGes(cdi::SpansOf(data), names);
    benchmark::DoNotOptimize(result->bic);
  }
}
BENCHMARK(BM_GesScaling)->Arg(5)->Arg(10)->Arg(20);

void BM_VarClus(benchmark::State& state) {
  const auto vars = static_cast<std::size_t>(state.range(0));
  auto data = ChainData(vars, 800, 13);
  std::vector<std::string> names;
  for (std::size_t v = 0; v < vars; ++v) {
    names.push_back("v" + std::to_string(v));
  }
  cdi::core::VarClusOptions options;
  options.min_clusters = static_cast<int>(vars / 3);
  options.max_clusters = static_cast<int>(vars / 3);
  for (auto _ : state) {
    auto result = cdi::core::RunVarClus(cdi::SpansOf(data), names, options);
    benchmark::DoNotOptimize(result->clusters.size());
  }
}
BENCHMARK(BM_VarClus)->Arg(9)->Arg(18)->Arg(36);

// ------------------------------------------------- storage sweep
// Copy path (ToDoubles per access) vs the zero-copy DoubleSpan view over
// the typed column buffer. See EXPERIMENTS.md "Typed storage sweep".

cdi::table::Table WideDoubleTable(std::size_t vars, std::size_t n,
                                  uint64_t seed) {
  Rng rng(seed);
  cdi::table::Table t("wide");
  for (std::size_t v = 0; v < vars; ++v) {
    std::vector<double> col(n);
    for (std::size_t i = 0; i < n; ++i) col[i] = rng.Normal();
    CDI_CHECK(t.AddColumn(cdi::table::Column::FromDoubles(
                              "v" + std::to_string(v), col))
                  .ok());
  }
  return t;
}

void BM_ColumnScanCopy(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto t = WideDoubleTable(1, n, 21);
  const auto& col = t.ColumnAt(0);
  for (auto _ : state) {
    const std::vector<double> vals = col.ToDoubles();
    double s = 0;
    for (double v : vals) s += v;
    benchmark::DoNotOptimize(s);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_ColumnScanCopy)->Arg(10000)->Arg(100000)->Arg(1000000)->Arg(4000000);

// Per-cell boxed access: what a scan cost when columns stored
// std::vector<Value> (each read re-boxes a Value). ToDoubles() on the
// typed buffer is a single memcpy, so Copy-vs-View isolates just the
// materialization overhead; Boxed-vs-View is the full storage win.
void BM_ColumnScanBoxed(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto t = WideDoubleTable(1, n, 21);
  const auto& col = t.ColumnAt(0);
  for (auto _ : state) {
    double s = 0;
    for (std::size_t r = 0; r < n; ++r) s += col.Get(r).ToNumeric();
    benchmark::DoNotOptimize(s);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_ColumnScanBoxed)->Arg(10000)->Arg(100000)->Arg(1000000)->Arg(4000000);

void BM_ColumnScanView(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto t = WideDoubleTable(1, n, 21);
  const auto& col = t.ColumnAt(0);
  for (auto _ : state) {
    const cdi::DoubleSpan vals = col.View();
    double s = 0;
    for (double v : vals) s += v;
    benchmark::DoNotOptimize(s);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_ColumnScanView)->Arg(10000)->Arg(100000)->Arg(1000000)->Arg(4000000);

void BM_CorrMatrixFromTableCopy(benchmark::State& state) {
  const auto vars = static_cast<std::size_t>(state.range(0));
  auto t = WideDoubleTable(vars, 2000, 23);
  for (auto _ : state) {
    std::vector<std::vector<double>> cols;
    cols.reserve(vars);
    for (std::size_t v = 0; v < vars; ++v) {
      cols.push_back(t.ColumnAt(v).ToDoubles());
    }
    auto ds = cdi::stats::NumericDataset::Own(std::move(cols));
    auto corr = cdi::stats::CorrelationMatrix(ds);
    benchmark::DoNotOptimize(corr->rows());
  }
}
BENCHMARK(BM_CorrMatrixFromTableCopy)->Arg(10)->Arg(30)->Arg(100);

void BM_CorrMatrixFromTableView(benchmark::State& state) {
  const auto vars = static_cast<std::size_t>(state.range(0));
  auto t = WideDoubleTable(vars, 2000, 23);
  for (auto _ : state) {
    cdi::stats::NumericDataset ds;
    ds.columns.reserve(vars);
    for (std::size_t v = 0; v < vars; ++v) {
      ds.columns.push_back(t.ColumnAt(v).View());
    }
    auto corr = cdi::stats::CorrelationMatrix(ds);
    benchmark::DoNotOptimize(corr->rows());
  }
}
BENCHMARK(BM_CorrMatrixFromTableView)->Arg(10)->Arg(30)->Arg(100);

void BM_PipelineEndToEnd(benchmark::State& state) {
  const bool covid = state.range(0) != 0;
  const cdi::datagen::ScenarioSpec spec =
      covid ? cdi::datagen::CovidSpec() : cdi::datagen::FlightsSpec();
  auto scenario = cdi::datagen::BuildScenario(spec);
  CDI_CHECK(scenario.ok());
  const auto& s = **scenario;
  const auto options = cdi::core::DefaultEvaluationOptions(s);
  for (auto _ : state) {
    cdi::core::Pipeline pipeline(&s.kg, &s.lake, s.oracle.get(), &s.topics,
                                 options);
    auto run = pipeline.Run(s.input_table, spec.entity_column,
                            s.exposure_attribute, s.outcome_attribute);
    CDI_CHECK(run.ok());
    benchmark::DoNotOptimize(run->direct_effect.effect);
  }
  state.SetLabel(covid ? "covid" : "flights");
}
BENCHMARK(BM_PipelineEndToEnd)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_DSeparation(benchmark::State& state) {
  Rng rng(17);
  auto g = cdi::graph::RandomDag(static_cast<std::size_t>(state.range(0)),
                                 0.15, &rng);
  const std::set<cdi::graph::NodeId> given = {2, 5};
  for (auto _ : state) {
    auto sep = cdi::graph::DSeparated(g, 0, 1, given);
    benchmark::DoNotOptimize(sep.ok());
  }
}
BENCHMARK(BM_DSeparation)->Arg(20)->Arg(100)->Arg(400);

void BM_JacobiEigen(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(19);
  cdi::stats::Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      a(i, j) = rng.Normal();
      a(j, i) = a(i, j);
    }
  }
  for (auto _ : state) {
    auto e = cdi::stats::JacobiEigen(a);
    benchmark::DoNotOptimize(e->values[0]);
  }
}
BENCHMARK(BM_JacobiEigen)->Arg(10)->Arg(30)->Arg(60);

// ----------------------------------------------------------Serving layer

/// Shared registry + server for the serving benches. Magic statics make
/// the one-time setup (scenario build, registration, warmup run) safe
/// under google-benchmark's ->Threads(N).
struct ServeFixture {
  cdi::serve::ScenarioRegistry registry;
  cdi::serve::QueryServer server;
  cdi::serve::CdiQuery query;

  ServeFixture()
      : server(&registry, [] {
          cdi::serve::QueryServerOptions options;
          options.num_workers = 4;
          return options;
        }()) {
    auto spec = cdi::datagen::CovidSpec();
    spec.num_entities = 120;
    auto built = cdi::datagen::BuildScenario(spec);
    CDI_CHECK(built.ok()) << built.status().ToString();
    auto bundle = registry.Register(
        "covid", std::unique_ptr<const cdi::datagen::Scenario>(
                     std::move(built).value()));
    CDI_CHECK(bundle.ok());
    const auto& attrs = (*bundle)->numeric_attributes;
    query.scenario = "covid";
    query.exposure = attrs[0];
    query.outcome = attrs[1];
    CDI_CHECK(server.Execute(query).status.ok());  // warm the cache
  }

  static ServeFixture& Get() {
    static ServeFixture fixture;
    return fixture;
  }
};

/// Warm-cache hit path: admission + cache lookup + response, no pipeline
/// work. ->Threads(8) measures lock contention on the hit path.
void BM_ServeCacheHit(benchmark::State& state) {
  auto& f = ServeFixture::Get();
  for (auto _ : state) {
    auto response = f.server.Execute(f.query);
    benchmark::DoNotOptimize(response.status.ok());
  }
}
BENCHMARK(BM_ServeCacheHit)->UseRealTime()->Threads(1)->Threads(8);

/// Cold path: every iteration invalidates the cache, so the request runs
/// the full pipeline on a worker (the serving-layer overhead rides on a
/// complete COVID run).
void BM_ServeCacheMiss(benchmark::State& state) {
  auto& f = ServeFixture::Get();
  for (auto _ : state) {
    f.server.InvalidateCache();
    auto response = f.server.Execute(f.query);
    benchmark::DoNotOptimize(response.status.ok());
  }
}
BENCHMARK(BM_ServeCacheMiss)->UseRealTime();

/// Single-flight under contention: 8 identical queries race on a cold
/// key; one executes, seven coalesce onto it.
void BM_ServeSingleFlight(benchmark::State& state) {
  auto& f = ServeFixture::Get();
  std::vector<std::future<cdi::serve::QueryResponse>> futures;
  for (auto _ : state) {
    f.server.InvalidateCache();
    futures.clear();
    for (int i = 0; i < 8; ++i) futures.push_back(f.server.Submit(f.query));
    for (auto& future : futures) {
      benchmark::DoNotOptimize(future.get().status.ok());
    }
  }
}
BENCHMARK(BM_ServeSingleFlight)->UseRealTime();

/// Planner steady state: C-DAG plan warm, result cache cold (invalidated
/// each iteration; InvalidateCache leaves the plan cache alone). Each
/// iteration is admission + queue + a worker answering the pair off the
/// cached plan — identification + sufficient-statistics linear algebra,
/// no pipeline run. Compare against BM_ServeCacheMiss: this is the
/// amortization the planner buys.
void BM_ServePlannedQuery(benchmark::State& state) {
  auto& f = ServeFixture::Get();
  cdi::serve::CdiQuery query = f.query;
  query.mode = cdi::serve::QueryMode::kPlanned;
  CDI_CHECK(f.server.Execute(query).status.ok());  // warm the plan
  for (auto _ : state) {
    f.server.InvalidateCache();
    auto response = f.server.Execute(query);
    benchmark::DoNotOptimize(response.status.ok());
  }
}
BENCHMARK(BM_ServePlannedQuery)->UseRealTime();

/// One-time cost the planner amortizes: a full canonical-pair pipeline
/// run plus CdagPlan construction (panel statistics) — what the first
/// planned query on a scenario epoch pays under single-flight.
void BM_CdagArtifactBuild(benchmark::State& state) {
  static const cdi::datagen::Scenario* scenario = [] {
    auto spec = cdi::datagen::CovidSpec();
    spec.num_entities = 120;
    auto built = cdi::datagen::BuildScenario(spec);
    CDI_CHECK(built.ok()) << built.status().ToString();
    return std::move(built).value().release();
  }();
  const auto& sc = *scenario;
  cdi::core::PipelineOptions options =
      cdi::core::DefaultEvaluationOptions(sc);
  cdi::core::Pipeline pipeline(&sc.kg, &sc.lake, sc.oracle.get(),
                               &sc.topics, options);
  for (auto _ : state) {
    auto run = pipeline.Run(sc.input_table, sc.spec.entity_column,
                            sc.exposure_attribute, sc.outcome_attribute);
    CDI_CHECK(run.ok());
    auto artifact = std::make_shared<const cdi::core::PipelineResult>(
        *std::move(run));
    auto plan = cdi::core::CdagPlan::Build(std::move(artifact));
    CDI_CHECK(plan.ok());
    benchmark::DoNotOptimize(plan->attributes().size());
  }
}
BENCHMARK(BM_CdagArtifactBuild)->UseRealTime();

/// Direct summarization cost: the greedy CaGreS-style merge pass on the
/// canonical COVID C-DAG, contracted to its safe floor (the deepest
/// budget that still succeeds, probed once downward). This is what a
/// cold `summarize` query pays on a worker once the plan is warm;
/// BM_ServeSummaryHit is the cached path that amortizes it.
void BM_SummarizeDag(benchmark::State& state) {
  struct Setup {
    cdi::core::ClusterDag cdag;
    cdi::summarize::SummarizeOptions options;
  };
  static const Setup* setup = [] {
    auto spec = cdi::datagen::CovidSpec();
    spec.num_entities = 120;
    auto built = cdi::datagen::BuildScenario(spec);
    CDI_CHECK(built.ok()) << built.status().ToString();
    const auto& sc = **built;
    cdi::core::PipelineOptions options =
        cdi::core::DefaultEvaluationOptions(sc);
    cdi::core::Pipeline pipeline(&sc.kg, &sc.lake, sc.oracle.get(),
                                 &sc.topics, options);
    auto run = pipeline.Run(sc.input_table, sc.spec.entity_column,
                            sc.exposure_attribute, sc.outcome_attribute);
    CDI_CHECK(run.ok()) << run.status().ToString();
    auto* s = new Setup{run->build.cdag, {}};
    const std::size_t n = s->cdag.num_clusters();
    std::size_t floor = n;  // budget == n is the identity summary
    for (std::size_t k = n; k >= 2; --k) {
      s->options.budget = k;
      if (!cdi::summarize::SummarizeClusterDag(s->cdag, s->options).ok()) {
        break;
      }
      floor = k;
    }
    s->options.budget = floor;
    return s;
  }();
  for (auto _ : state) {
    auto summary =
        cdi::summarize::SummarizeClusterDag(setup->cdag, setup->options);
    CDI_CHECK(summary.ok()) << summary.status().ToString();
    benchmark::DoNotOptimize(summary->Fingerprint());
  }
}
BENCHMARK(BM_SummarizeDag)->UseRealTime();

/// Warm summary-cache hit: admission + per-(scenario, epoch, budget)
/// summary-cache lookup + shared-artifact response, no merge pass. The
/// interactive-latency target for a cached summary rides on this path;
/// ->Threads(8) measures contention against readers of the same entry.
void BM_ServeSummaryHit(benchmark::State& state) {
  auto& f = ServeFixture::Get();
  static const cdi::serve::CdiQuery query = [&f] {
    cdi::serve::CdiQuery q = f.query;
    q.mode = cdi::serve::QueryMode::kSummarize;
    q.summarize_format = "dot";
    // Probe downward for the deepest achievable budget; each successful
    // probe also warms the summary cache for that budget.
    std::size_t deepest = 0;
    for (std::size_t k = 32; k >= 2; --k) {
      q.summarize_k = k;
      if (f.server.Execute(q).status.ok()) {
        deepest = k;
      } else if (deepest != 0) {
        break;  // below the safe floor
      }
    }
    CDI_CHECK(deepest >= 2);
    q.summarize_k = deepest;
    return q;
  }();
  for (auto _ : state) {
    auto response = f.server.Execute(query);
    benchmark::DoNotOptimize(response.summary != nullptr);
  }
}
BENCHMARK(BM_ServeSummaryHit)->UseRealTime()->Threads(1)->Threads(8);

/// Epoch rollover: one 25-row batch through ScenarioRegistry's
/// UpdateScenario — table copy + typed chunk splice + sufficient-stats
/// delta refresh + publish. Iteration count is pinned so the table grows
/// by a bounded, reproducible amount (256 * 25 rows) instead of drifting
/// with the benchmark runner's time budget.
void BM_UpdateScenario(benchmark::State& state) {
  static cdi::serve::ScenarioRegistry* registry = [] {
    auto* r = new cdi::serve::ScenarioRegistry();
    auto spec = cdi::datagen::CovidSpec();
    spec.num_entities = 300;
    auto built = cdi::datagen::BuildScenario(spec);
    CDI_CHECK(built.ok());
    CDI_CHECK(r->Register("covid",
                          std::unique_ptr<const cdi::datagen::Scenario>(
                              std::move(built).value()))
                  .ok());
    return r;
  }();
  auto bundle = registry->Snapshot("covid");
  CDI_CHECK(bundle.ok());
  std::vector<std::size_t> picks;
  for (std::size_t r = 0; r < 25; ++r) picks.push_back(r);
  const cdi::table::Table batch = (*bundle)->input->TakeRows(picks);
  for (auto _ : state) {
    auto updated = registry->UpdateScenario("covid", batch);
    CDI_CHECK(updated.ok()) << updated.status().ToString();
    benchmark::DoNotOptimize((*updated)->epoch);
  }
}
BENCHMARK(BM_UpdateScenario)->Iterations(256);

/// The alternative streaming ingest replaces: a full re-ingest of the
/// scenario (source rebuild + registration with cold sufficient
/// statistics) via Replace. UpdateScenario must beat this by orders of
/// magnitude — that is the point of the delta path.
void BM_UpdateScenarioFullReingest(benchmark::State& state) {
  static cdi::serve::ScenarioRegistry* registry = [] {
    auto* r = new cdi::serve::ScenarioRegistry();
    auto spec = cdi::datagen::CovidSpec();
    spec.num_entities = 300;
    auto built = cdi::datagen::BuildScenario(spec);
    CDI_CHECK(built.ok());
    CDI_CHECK(r->Register("covid",
                          std::unique_ptr<const cdi::datagen::Scenario>(
                              std::move(built).value()))
                  .ok());
    return r;
  }();
  auto spec = cdi::datagen::CovidSpec();
  spec.num_entities = 300;
  for (auto _ : state) {
    auto built = cdi::datagen::BuildScenario(spec);
    CDI_CHECK(built.ok());
    auto replaced = registry->Replace(
        "covid", std::unique_ptr<const cdi::datagen::Scenario>(
                     std::move(built).value()));
    CDI_CHECK(replaced.ok());
    benchmark::DoNotOptimize((*replaced)->epoch);
  }
}
BENCHMARK(BM_UpdateScenarioFullReingest);

/// Warm vs cold PC on the same 20-variable Gaussian chain: Arg(1) seeds
/// the skeleton with the previous run's edges (the epoch-rollover
/// pattern), Arg(0) starts from the complete graph. The warm run prunes
/// from a linear-size candidate set instead of a quadratic one.
void BM_WarmStartDiscovery(benchmark::State& state) {
  const bool warm = state.range(0) != 0;
  const std::size_t p = 20;
  auto ds = cdi::stats::NumericDataset::Own(ChainData(p, 1500, 11));
  std::vector<std::string> names;
  for (std::size_t v = 0; v < p; ++v) {
    names.push_back("v" + std::to_string(v));
  }
  auto test = cdi::discovery::FisherZTest::Create(ds);
  CDI_CHECK(test.ok());
  cdi::discovery::PcOptions options;
  if (warm) {
    auto prev = cdi::discovery::RunPc(**test, names);
    CDI_CHECK(prev.ok());
    options.warm_start = true;
    for (const auto& e : prev->graph.DirectedEdges()) {
      options.warm_edges.push_back(e);
    }
    for (const auto& e : prev->graph.UndirectedEdges()) {
      options.warm_edges.push_back(e);
    }
  }
  for (auto _ : state) {
    auto result = cdi::discovery::RunPc(**test, names, options);
    CDI_CHECK(result.ok());
    benchmark::DoNotOptimize(result->ci_tests);
  }
}
BENCHMARK(BM_WarmStartDiscovery)->Arg(0)->Arg(1);

// ------------------------------------------------------ Sharded registry

/// One built scenario shared across registry benches: registration cost
/// then isolates the serving-layer work (stats recompute, byte
/// accounting, LRU maintenance) from data generation.
std::shared_ptr<const cdi::datagen::Scenario> BenchScenario() {
  static const std::shared_ptr<const cdi::datagen::Scenario> scenario = [] {
    auto spec = cdi::datagen::CovidSpec();
    spec.num_entities = 120;
    auto built = cdi::datagen::BuildScenario(spec);
    CDI_CHECK(built.ok()) << built.status().ToString();
    return std::shared_ptr<const cdi::datagen::Scenario>(
        std::move(built).value());
  }();
  return scenario;
}

/// Runtime registration end to end: a deterministic grid-cell build plus
/// the Replace publish (bundle assembly, sufficient statistics, byte
/// accounting) — the cost a `generate` verb pays per scenario.
void BM_RegisterScenario(benchmark::State& state) {
  cdi::serve::ScenarioRegistry registry;
  for (auto _ : state) {
    auto built =
        cdi::datagen::BuildGridScenario("grid_c4_lin_cont_m0_p1_o0", 120);
    CDI_CHECK(built.ok()) << built.status().ToString();
    auto bundle = registry.Replace(
        "bench", std::shared_ptr<const cdi::datagen::Scenario>(
                     std::move(built).value()));
    CDI_CHECK(bundle.ok());
    benchmark::DoNotOptimize((*bundle)->memory_bytes);
  }
}
BENCHMARK(BM_RegisterScenario);

/// Registries for the lookup contention sweep, keyed by shard count.
/// Unbudgeted, so Snapshot is a pure map find under the shard mutex —
/// the comparison isolates lock spreading from LRU maintenance.
cdi::serve::ScenarioRegistry& LookupRegistry(std::size_t shards) {
  static constexpr std::size_t kNames = 64;
  static auto* registries =
      new std::map<std::size_t,
                   std::unique_ptr<cdi::serve::ScenarioRegistry>>();
  static std::mutex mu;
  std::lock_guard<std::mutex> lock(mu);
  auto& slot = (*registries)[shards];
  if (slot == nullptr) {
    cdi::serve::RegistryOptions options;
    options.num_shards = shards;
    slot = std::make_unique<cdi::serve::ScenarioRegistry>(options);
    for (std::size_t i = 0; i < kNames; ++i) {
      CDI_CHECK(
          slot->Register("s" + std::to_string(i), BenchScenario()).ok());
    }
  }
  return *slot;
}

/// Snapshot throughput over 64 names at 1..8 reader threads, single
/// mutex (Arg = 1 shard) vs sharded (Arg = 8). The scale-out acceptance
/// bar: 8 shards at 8 threads >= 2x the 1-shard throughput.
void BM_RegistryLookupSharded(benchmark::State& state) {
  auto& registry =
      LookupRegistry(static_cast<std::size_t>(state.range(0)));
  std::vector<std::string> names;
  for (std::size_t i = 0; i < 64; ++i) {
    names.push_back("s" + std::to_string(i));
  }
  // Per-thread stride keeps threads on different names (and shards).
  std::size_t i = static_cast<std::size_t>(state.thread_index()) * 7;
  for (auto _ : state) {
    auto bundle = registry.Snapshot(names[i++ & 63]);
    benchmark::DoNotOptimize(bundle.ok());
  }
}
BENCHMARK(BM_RegistryLookupSharded)
    ->UseRealTime()
    ->Arg(1)
    ->Arg(8)
    ->Threads(1)
    ->Threads(4)
    ->Threads(8);

/// Budget-forced churn: eight names round-robin through a budget that
/// holds four, so every Replace publishes one bundle and evicts another
/// (LRU pop, byte refund, eviction bookkeeping).
void BM_EvictionChurn(benchmark::State& state) {
  cdi::serve::ScenarioRegistry probe;
  const std::size_t per =
      (*probe.Register("probe", BenchScenario()))->memory_bytes;
  cdi::serve::RegistryOptions options;
  options.num_shards = 1;
  options.memory_budget_bytes = per * 4 + per / 2;
  cdi::serve::ScenarioRegistry registry(options);
  std::size_t i = 0;
  for (auto _ : state) {
    auto bundle =
        registry.Replace("c" + std::to_string(i++ & 7), BenchScenario());
    CDI_CHECK(bundle.ok());
    benchmark::DoNotOptimize((*bundle)->epoch);
  }
  state.counters["evicted"] = static_cast<double>(
      registry.Stats().scenarios_evicted);
}
BENCHMARK(BM_EvictionChurn);

}  // namespace

BENCHMARK_MAIN();
