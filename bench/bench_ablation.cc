// Ablation benches for the design choices DESIGN.md calls out. Each block
// sweeps one knob on the COVID-19 scenario (the harder of the two) and
// reports CATER's Table 3 metrics, isolating that component's
// contribution:
//
//   A. clustering granularity (the C-DAG "conciseness" knob, §3.3)
//   B. oracle noise (how robust is the hybrid to a worse LLM?)
//   C. pruning configuration (no pruning / plain alpha / confident
//      independence; the §4 "prunes redundant edges via PC" choice)
//   D. extractor relevance threshold (completeness vs dimensionality,
//      §3.1)
//   E. Data Organizer robustness features on/off (FD handling, outlier
//      winsorization, IPW; §3.2)

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "core/pipeline.h"

#include "core/effect.h"
#include "core/evaluation.h"
#include "datagen/covid.h"
#include "datagen/flights.h"
#include "datagen/grid.h"
#include "summarize/summarize.h"

namespace {

using cdi::core::EdgeInference;
using cdi::core::PipelineOptions;
using cdi::core::Table3Row;
using cdi::datagen::ScenarioSpec;

/// Runs CATER on `spec` with `options` and prints one result line.
void Report(const char* label, const ScenarioSpec& spec,
            const PipelineOptions& options) {
  auto scenario = cdi::datagen::BuildScenario(spec);
  if (!scenario.ok()) {
    std::printf("  %-34s BUILD FAILED: %s\n", label,
                scenario.status().ToString().c_str());
    return;
  }
  auto row = cdi::core::EvaluateMethod(**scenario, EdgeInference::kHybrid,
                                       options);
  if (!row.ok()) {
    std::printf("  %-34s FAILED: %s\n", label,
                row.status().ToString().c_str());
    return;
  }
  std::printf("  %-34s |E|=%3zu  P=%.2f R=%.2f F1=%.2f  direct=%.3f  "
              "mediators=%s\n",
              label, row->num_edges, row->presence.precision,
              row->presence.recall, row->presence.f1, row->direct_effect,
              row->mediators_match_truth ? "exact" : "wrong");
}

}  // namespace

int main() {
  const ScenarioSpec base_spec = cdi::datagen::CovidSpec();
  auto base_scenario = cdi::datagen::BuildScenario(base_spec);
  if (!base_scenario.ok()) return 1;
  const PipelineOptions base = cdi::core::DefaultEvaluationOptions(
      **base_scenario);

  std::printf("CATER ablations on COVID-19 (|V|=11, |E|=23; ground-truth "
              "granularity k=9+2)\n");
  std::printf("=======================================================\n\n");

  std::printf("A. clustering granularity (VARCLUS target clusters)\n");
  for (int k : {5, 7, 9, 11, 13}) {
    PipelineOptions o = base;
    o.builder.varclus.min_clusters = k;
    o.builder.varclus.max_clusters = k;
    char label[64];
    std::snprintf(label, sizeof(label), "k = %d (+2 singletons)", k);
    Report(label, base_spec, o);
  }

  std::printf("\nB. oracle quality (noise scale multiplies all error "
              "probabilities)\n");
  for (double noise : {0.0, 0.5, 1.0, 2.0}) {
    ScenarioSpec spec = base_spec;
    spec.oracle.transitive_claim_prob =
        std::min(1.0, base_spec.oracle.transitive_claim_prob * noise);
    spec.oracle.reverse_claim_prob =
        std::min(1.0, base_spec.oracle.reverse_claim_prob * noise);
    spec.oracle.unrelated_claim_prob =
        std::min(1.0, base_spec.oracle.unrelated_claim_prob * noise);
    spec.oracle.direct_recall =
        noise <= 1.0 ? base_spec.oracle.direct_recall
                     : std::max(0.5, 1.0 - 0.2 * noise);
    char label[64];
    std::snprintf(label, sizeof(label), "noise x%.1f", noise);
    Report(label, spec, base);
  }

  std::printf("\nC. pruning configuration\n");
  {
    PipelineOptions o = base;
    o.builder.max_cond_size = 0;
    o.builder.prune_requires_marginal_dependence = false;
    o.builder.prune_p_threshold = 1.1;  // never prunes
    o.builder.augment_from_data = false;
    Report("no pruning (oracle verbatim)", base_spec, o);
  }
  {
    PipelineOptions o = base;
    o.builder.prune_requires_marginal_dependence = false;
    o.builder.prune_p_threshold = o.builder.alpha;
    Report("plain alpha pruning", base_spec, o);
  }
  {
    PipelineOptions o = base;
    o.builder.augment_from_data = false;
    Report("confident pruning, no augmentation", base_spec, o);
  }
  Report("full hybrid (default)", base_spec, base);

  std::printf("\nD. extractor relevance threshold (completeness vs "
              "dimensionality)\n");
  for (double alpha : {0.2, 0.05, 0.01, 0.001}) {
    PipelineOptions o = base;
    o.extractor.relevance_alpha = alpha;
    char label[64];
    std::snprintf(label, sizeof(label), "relevance alpha = %.3f", alpha);
    Report(label, base_spec, o);
  }

  std::printf("\nE. Data Organizer robustness features\n");
  {
    PipelineOptions o = base;
    o.organizer.fd_correlation_threshold = 2.0;  // disables numeric FD drop
    o.organizer.drop_string_fds = false;
    Report("FD handling OFF", base_spec, o);
  }
  {
    PipelineOptions o = base;
    o.organizer.outlier_robust_z = 0.0;
    Report("outlier winsorization OFF", base_spec, o);
  }
  {
    PipelineOptions o = base;
    o.organizer.enable_ipw = false;
    Report("IPW OFF", base_spec, o);
  }
  Report("all robustness features ON", base_spec, base);

  // G-prep: source-completeness ablation uses a Report variant with
  // sources withheld, so it lives before F for shared setup simplicity.
  // F. multi-query identification: one C-DAG, several causal questions
  // (§3.3 asks "whether a single C-DAG is sufficient to identify the
  // adjustment sets for multiple cause-effect estimations"). We build
  // CATER's C-DAG once, then answer secondary questions between other
  // cluster pairs, comparing the estimate adjusted by CATER's C-DAG with
  // the estimate adjusted by the ground-truth C-DAG on the same data.
  std::printf("\nF. multi-query identification from a single C-DAG\n");
  {
    auto scenario = cdi::datagen::BuildScenario(base_spec);
    if (!scenario.ok()) return 1;
    const auto& s = **scenario;
    cdi::core::PipelineOptions o = base;
    cdi::core::Pipeline pipeline(&s.kg, &s.lake, s.oracle.get(), &s.topics,
                                 o);
    auto run = pipeline.Run(s.input_table, base_spec.entity_column,
                            s.exposure_attribute, s.outcome_attribute);
    if (!run.ok()) return 1;

    // Ground-truth C-DAG for reference adjustment sets.
    auto truth_cdag = cdi::core::ClusterDag::Create(
        s.cluster_members, base_spec.exposure_cluster,
        base_spec.outcome_cluster);
    if (!truth_cdag.ok()) return 1;
    for (const auto& [u, v] : s.cluster_dag.Edges()) {
      CDI_CHECK(truth_cdag->mutable_graph()
                    .AddEdge(s.cluster_dag.NodeName(u),
                             s.cluster_dag.NodeName(v))
                    .ok());
    }

    const std::pair<const char*, const char*> queries[] = {
        {"policy", "death_rate"},
        {"population", "death_rate"},
        {"mobility", "death_rate"},
        {"healthcare", "recovery"},
    };
    for (const auto& [from, to] : queries) {
      // Exposure attribute for the query = the cluster's driver.
      const std::string t_attr = s.cluster_members.at(from)[0];
      const std::string o_attr = s.cluster_members.at(to)[0];
      auto cater_adj =
          run->build.cdag.TotalEffectAdjustmentFor(from, to);
      auto truth_adj = truth_cdag->TotalEffectAdjustmentFor(from, to);
      if (!cater_adj.ok() || !truth_adj.ok()) {
        std::printf("  %-12s -> %-12s  (cluster missing from C-DAG)\n",
                    from, to);
        continue;
      }
      auto est_cater = cdi::core::EstimateEffect(
          run->organization.organized, t_attr, o_attr, *cater_adj,
          run->organization.row_weights);
      auto est_truth = cdi::core::EstimateEffect(
          run->organization.organized, t_attr, o_attr, *truth_adj,
          run->organization.row_weights);
      if (!est_cater.ok() || !est_truth.ok()) continue;
      std::printf("  %-12s -> %-12s  CATER-adjusted %+0.3f | "
                  "truth-adjusted %+0.3f | delta %0.3f\n",
                  from, to, est_cater->effect, est_truth->effect,
                  std::fabs(est_cater->effect - est_truth->effect));
    }
  }

  // G. source completeness (§3.1): withhold one knowledge source at a time
  // and measure what CATER can still recover. With fewer sources, fewer
  // confounders/mediators are extractable at all — the paper's
  // "completeness cannot be guaranteed" caveat quantified.
  std::printf("\nG. source completeness (withholding knowledge sources)\n");
  {
    auto scenario = cdi::datagen::BuildScenario(base_spec);
    if (!scenario.ok()) return 1;
    const auto& s = **scenario;
    struct SourceConfig {
      const char* label;
      const cdi::knowledge::KnowledgeGraph* kg;
      const cdi::knowledge::DataLake* lake;
    };
    const SourceConfig configs[] = {
        {"KG + lake (full)", &s.kg, &s.lake},
        {"KG only", &s.kg, nullptr},
        {"lake only", nullptr, &s.lake},
        {"no external sources", nullptr, nullptr},
    };
    for (const auto& config : configs) {
      cdi::core::PipelineOptions o = base;
      // With sources withheld the exact GT granularity is unreachable;
      // let VARCLUS's eigenvalue criterion decide instead.
      o.builder.varclus.min_clusters = -1;
      o.builder.varclus.max_clusters = -1;
      cdi::core::Pipeline pipeline(config.kg, config.lake, s.oracle.get(),
                                   &s.topics, o);
      auto run = pipeline.Run(s.input_table, base_spec.entity_column,
                              s.exposure_attribute, s.outcome_attribute);
      if (!run.ok()) {
        std::printf("  %-22s pipeline failed: %s\n", config.label,
                    run.status().ToString().c_str());
        continue;
      }
      std::printf("  %-22s attrs=%2zu clusters=%2zu edges=%2zu "
                  "direct=%+0.3f\n",
                  config.label,
                  run->organization.organized.num_cols() -
                      s.input_table.num_cols(),
                  run->build.cdag.num_clusters(), run->build.claims.size(),
                  run->direct_effect.effect);
    }
  }

  // H. C-DAG summarization sweep (CaGreS-style node budget k): build each
  // scenario's C-DAG once, then summarize it at every achievable budget
  // down to the safe floor. Per budget: size, compression, flipped
  // marginal d-separation verdicts on the canonical pair sample, the
  // direct-effect adjustment set read off the summary (member attributes
  // of its mediator + confounder super-nodes — CATER's estimator set),
  // and the direct-effect estimate adjusted by that set vs the one
  // adjusted by the full C-DAG's set — the compression-vs-bias trade the
  // summary cache serves. Ground truth for both scenarios: direct ~ 0.
  std::printf("\nH. C-DAG summarization sweep (node budget k)\n");
  {
    // Member attributes of the summary's mediator + confounder
    // super-nodes, sorted — the summary-derived analogue of
    // ClusterDag::DirectEffectAdjustmentAttributes.
    auto summary_adjustment = [](const cdi::summarize::SummaryDag& sd) {
      std::set<std::string> picked = sd.MediatorNodes();
      for (const auto& name : sd.ConfounderNodes()) picked.insert(name);
      std::vector<std::string> attrs;
      for (const auto& node : sd.nodes()) {
        if (picked.count(node.name) == 0) continue;
        attrs.insert(attrs.end(), node.attributes.begin(),
                     node.attributes.end());
      }
      std::sort(attrs.begin(), attrs.end());
      return attrs;
    };
    auto sweep = [&summary_adjustment](const char* label,
                                       const cdi::datagen::Scenario& s) {
      cdi::core::PipelineOptions o = cdi::core::DefaultEvaluationOptions(s);
      cdi::core::Pipeline pipeline(&s.kg, &s.lake, s.oracle.get(),
                                   &s.topics, o);
      auto run = pipeline.Run(s.input_table, s.spec.entity_column,
                              s.exposure_attribute, s.outcome_attribute);
      if (!run.ok()) {
        std::printf("  %-28s pipeline failed: %s\n", label,
                    run.status().ToString().c_str());
        return;
      }
      const auto& cdag = run->build.cdag;
      const std::size_t n = cdag.num_clusters();
      const auto full_adj = cdag.DirectEffectAdjustmentAttributes();
      auto full_est = cdi::core::EstimateEffect(
          run->organization.organized, s.exposure_attribute,
          s.outcome_attribute, full_adj, run->organization.row_weights);
      std::printf("  %-28s clusters=%2zu edges=%2zu |adj|=%2zu "
                  "direct=%+0.3f\n",
                  label, n, cdag.graph().num_edges(), full_adj.size(),
                  full_est.ok() ? full_est->effect : 0.0);
      cdi::summarize::SummarizeOptions sopts;
      sopts.max_pairs = n * (n - 1) / 2;  // exhaustive: C-DAGs are small
      for (std::size_t k = n - 1; k >= 2; --k) {
        sopts.budget = k;
        auto summary = cdi::summarize::SummarizeClusterDag(cdag, sopts);
        if (!summary.ok()) {
          std::printf("    k=%2zu  below the safe floor\n", k);
          break;
        }
        const auto adj = summary_adjustment(*summary);
        auto est = cdi::core::EstimateEffect(
            run->organization.organized, s.exposure_attribute,
            s.outcome_attribute, adj, run->organization.row_weights);
        const double bias = (est.ok() && full_est.ok())
                                ? std::fabs(est->effect - full_est->effect)
                                : std::nan("");
        std::printf("    k=%2zu  edges=%2zu  compression=%.2fx  "
                    "pairs-flipped=%2zu/%2zu  |adj|=%2zu  "
                    "direct=%+0.3f  bias=%0.3f\n",
                    k, summary->num_edges(), summary->CompressionRatio(),
                    summary->pairs_changed(), summary->pairs_scored(),
                    adj.size(), est.ok() ? est->effect : 0.0, bias);
      }
    };
    if (auto covid = cdi::datagen::BuildScenario(base_spec); covid.ok()) {
      sweep("COVID-19", **covid);
    }
    if (auto flights = cdi::datagen::BuildScenario(
            cdi::datagen::FlightsSpec());
        flights.ok()) {
      sweep("FLIGHTS", **flights);
    }
    if (auto cell = cdi::datagen::BuildGridScenario(
            "grid_c6_quad_bin_m1_p2_o1", 120, 9001);
        cell.ok()) {
      sweep("grid_c6_quad_bin_m1_p2_o1", **cell);
    }
  }
  return 0;
}
