// Regenerates the paper's §4 runtime result: "Our pipeline was executed
// end-to-end in 645 and 304 seconds for FLIGHTS and COVID-19, resp."
//
// Those times were dominated by remote GPT-3 / DBpedia / data-lake calls.
// Our substitutes run in-process, so this harness reports both the actual
// wall clock (milliseconds) and the *simulated external-service time* each
// call would have cost against real endpoints (GPT-3 completion ~1.5 s,
// KG lookup ~0.15 s, lake catalog scan ~0.4 s). The reproduction target is
// the shape: external time dwarfs compute, and FLIGHTS > COVID-19.
//
// `--json` switches the report to machine-readable JSON (one object with a
// "scenarios" array) so the perf trajectory can be tracked across PRs; see
// tools/perf_smoke.py and BENCH_PR4.json.

#include <cstdio>
#include <cstring>
#include <string>

#include "core/evaluation.h"
#include "core/pipeline.h"
#include "datagen/covid.h"
#include "datagen/flights.h"

namespace {

int RunOne(const char* label, const cdi::datagen::ScenarioSpec& spec,
           double paper_seconds, bool json, bool first) {
  auto scenario = cdi::datagen::BuildScenario(spec);
  if (!scenario.ok()) {
    std::fprintf(stderr, "%s\n", scenario.status().ToString().c_str());
    return 1;
  }
  const auto& s = **scenario;
  auto options = cdi::core::DefaultEvaluationOptions(s);
  cdi::core::Pipeline pipeline(&s.kg, &s.lake, s.oracle.get(), &s.topics,
                               options);
  auto run = pipeline.Run(s.input_table, spec.entity_column,
                          s.exposure_attribute, s.outcome_attribute);
  if (!run.ok()) {
    std::fprintf(stderr, "%s\n", run.status().ToString().c_str());
    return 1;
  }
  if (json) {
    std::printf("%s    {\"name\": \"%s\", \"entities\": %zu,\n",
                first ? "" : ",\n", label, spec.num_entities);
    std::printf("     \"wall_ms\": {\"extract\": %.3f, \"organize\": %.3f, "
                "\"build\": %.3f, \"total\": %.3f},\n",
                1e3 * run->timings.extract_seconds,
                1e3 * run->timings.organize_seconds,
                1e3 * run->timings.build_seconds,
                1e3 * run->timings.total_seconds);
    std::printf("     \"external\": [");
    bool first_entry = true;
    for (const auto& [service, entry] : run->external.entries()) {
      std::printf("%s{\"service\": \"%s\", \"calls\": %ld, "
                  "\"seconds\": %.1f}",
                  first_entry ? "" : ", ", service.c_str(),
                  static_cast<long>(entry.calls), entry.seconds);
      first_entry = false;
    }
    std::printf("],\n");
    std::printf("     \"simulated_end_to_end_seconds\": %.1f, "
                "\"paper_seconds\": %.0f}",
                run->external.TotalSeconds() + run->timings.total_seconds,
                paper_seconds);
    return 0;
  }
  std::printf("%s (%zu entities)\n", label, spec.num_entities);
  std::printf("  wall clock:  extract %6.1f ms | organize %6.1f ms | "
              "build %6.1f ms | total %6.1f ms\n",
              1e3 * run->timings.extract_seconds,
              1e3 * run->timings.organize_seconds,
              1e3 * run->timings.build_seconds,
              1e3 * run->timings.total_seconds);
  std::printf("  simulated external services:\n");
  for (const auto& [service, entry] : run->external.entries()) {
    std::printf("    %-16s %6ld calls  %8.1f s\n", service.c_str(),
                static_cast<long>(entry.calls), entry.seconds);
  }
  std::printf("  simulated end-to-end: %8.1f s   (paper: %.0f s)\n\n",
              run->external.TotalSeconds() + run->timings.total_seconds,
              paper_seconds);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json = true;
  }
  if (json) {
    std::printf("{\n  \"benchmark\": \"bench_runtime\",\n"
                "  \"scenarios\": [\n");
  } else {
    std::printf("End-to-end runtime reproduction (see EXPERIMENTS.md)\n");
    std::printf("====================================================\n\n");
  }
  int rc = 0;
  rc |= RunOne("FLIGHTS", cdi::datagen::FlightsSpec(), 645.0, json, true);
  rc |= RunOne("COVID-19", cdi::datagen::CovidSpec(), 304.0, json, false);
  if (json) std::printf("\n  ]\n}\n");
  return rc;
}
