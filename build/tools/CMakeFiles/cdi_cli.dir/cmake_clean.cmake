file(REMOVE_RECURSE
  "CMakeFiles/cdi_cli.dir/cdi_cli.cc.o"
  "CMakeFiles/cdi_cli.dir/cdi_cli.cc.o.d"
  "cdi_cli"
  "cdi_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdi_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
