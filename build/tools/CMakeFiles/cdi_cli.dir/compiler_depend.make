# Empty compiler generated dependencies file for cdi_cli.
# This may be replaced when dependencies are built.
