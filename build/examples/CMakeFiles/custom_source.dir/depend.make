# Empty dependencies file for custom_source.
# This may be replaced when dependencies are built.
