file(REMOVE_RECURSE
  "CMakeFiles/custom_source.dir/custom_source.cpp.o"
  "CMakeFiles/custom_source.dir/custom_source.cpp.o.d"
  "custom_source"
  "custom_source.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_source.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
