# Empty dependencies file for flights_analysis.
# This may be replaced when dependencies are built.
