file(REMOVE_RECURSE
  "CMakeFiles/covid_analysis.dir/covid_analysis.cpp.o"
  "CMakeFiles/covid_analysis.dir/covid_analysis.cpp.o.d"
  "covid_analysis"
  "covid_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/covid_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
