
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/discovery/binned_ci.cc" "src/discovery/CMakeFiles/cdi_discovery.dir/binned_ci.cc.o" "gcc" "src/discovery/CMakeFiles/cdi_discovery.dir/binned_ci.cc.o.d"
  "/root/repo/src/discovery/ci_test.cc" "src/discovery/CMakeFiles/cdi_discovery.dir/ci_test.cc.o" "gcc" "src/discovery/CMakeFiles/cdi_discovery.dir/ci_test.cc.o.d"
  "/root/repo/src/discovery/discovery.cc" "src/discovery/CMakeFiles/cdi_discovery.dir/discovery.cc.o" "gcc" "src/discovery/CMakeFiles/cdi_discovery.dir/discovery.cc.o.d"
  "/root/repo/src/discovery/fci.cc" "src/discovery/CMakeFiles/cdi_discovery.dir/fci.cc.o" "gcc" "src/discovery/CMakeFiles/cdi_discovery.dir/fci.cc.o.d"
  "/root/repo/src/discovery/ges.cc" "src/discovery/CMakeFiles/cdi_discovery.dir/ges.cc.o" "gcc" "src/discovery/CMakeFiles/cdi_discovery.dir/ges.cc.o.d"
  "/root/repo/src/discovery/lingam.cc" "src/discovery/CMakeFiles/cdi_discovery.dir/lingam.cc.o" "gcc" "src/discovery/CMakeFiles/cdi_discovery.dir/lingam.cc.o.d"
  "/root/repo/src/discovery/pc.cc" "src/discovery/CMakeFiles/cdi_discovery.dir/pc.cc.o" "gcc" "src/discovery/CMakeFiles/cdi_discovery.dir/pc.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cdi_common.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/cdi_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/cdi_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
