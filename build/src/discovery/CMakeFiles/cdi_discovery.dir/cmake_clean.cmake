file(REMOVE_RECURSE
  "CMakeFiles/cdi_discovery.dir/binned_ci.cc.o"
  "CMakeFiles/cdi_discovery.dir/binned_ci.cc.o.d"
  "CMakeFiles/cdi_discovery.dir/ci_test.cc.o"
  "CMakeFiles/cdi_discovery.dir/ci_test.cc.o.d"
  "CMakeFiles/cdi_discovery.dir/discovery.cc.o"
  "CMakeFiles/cdi_discovery.dir/discovery.cc.o.d"
  "CMakeFiles/cdi_discovery.dir/fci.cc.o"
  "CMakeFiles/cdi_discovery.dir/fci.cc.o.d"
  "CMakeFiles/cdi_discovery.dir/ges.cc.o"
  "CMakeFiles/cdi_discovery.dir/ges.cc.o.d"
  "CMakeFiles/cdi_discovery.dir/lingam.cc.o"
  "CMakeFiles/cdi_discovery.dir/lingam.cc.o.d"
  "CMakeFiles/cdi_discovery.dir/pc.cc.o"
  "CMakeFiles/cdi_discovery.dir/pc.cc.o.d"
  "libcdi_discovery.a"
  "libcdi_discovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdi_discovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
