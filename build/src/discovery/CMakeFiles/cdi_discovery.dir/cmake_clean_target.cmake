file(REMOVE_RECURSE
  "libcdi_discovery.a"
)
