# Empty dependencies file for cdi_discovery.
# This may be replaced when dependencies are built.
