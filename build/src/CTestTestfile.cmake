# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("table")
subdirs("stats")
subdirs("graph")
subdirs("discovery")
subdirs("knowledge")
subdirs("datagen")
subdirs("core")
