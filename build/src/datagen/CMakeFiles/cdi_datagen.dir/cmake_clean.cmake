file(REMOVE_RECURSE
  "CMakeFiles/cdi_datagen.dir/covid.cc.o"
  "CMakeFiles/cdi_datagen.dir/covid.cc.o.d"
  "CMakeFiles/cdi_datagen.dir/flights.cc.o"
  "CMakeFiles/cdi_datagen.dir/flights.cc.o.d"
  "CMakeFiles/cdi_datagen.dir/scenario.cc.o"
  "CMakeFiles/cdi_datagen.dir/scenario.cc.o.d"
  "CMakeFiles/cdi_datagen.dir/scm.cc.o"
  "CMakeFiles/cdi_datagen.dir/scm.cc.o.d"
  "libcdi_datagen.a"
  "libcdi_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdi_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
