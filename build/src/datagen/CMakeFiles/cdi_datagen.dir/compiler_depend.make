# Empty compiler generated dependencies file for cdi_datagen.
# This may be replaced when dependencies are built.
