file(REMOVE_RECURSE
  "libcdi_datagen.a"
)
