file(REMOVE_RECURSE
  "CMakeFiles/cdi_common.dir/logging.cc.o"
  "CMakeFiles/cdi_common.dir/logging.cc.o.d"
  "CMakeFiles/cdi_common.dir/rng.cc.o"
  "CMakeFiles/cdi_common.dir/rng.cc.o.d"
  "CMakeFiles/cdi_common.dir/status.cc.o"
  "CMakeFiles/cdi_common.dir/status.cc.o.d"
  "CMakeFiles/cdi_common.dir/string_util.cc.o"
  "CMakeFiles/cdi_common.dir/string_util.cc.o.d"
  "libcdi_common.a"
  "libcdi_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdi_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
