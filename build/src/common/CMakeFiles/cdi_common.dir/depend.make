# Empty dependencies file for cdi_common.
# This may be replaced when dependencies are built.
