file(REMOVE_RECURSE
  "libcdi_common.a"
)
