file(REMOVE_RECURSE
  "libcdi_knowledge.a"
)
