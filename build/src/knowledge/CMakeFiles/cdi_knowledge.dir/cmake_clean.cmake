file(REMOVE_RECURSE
  "CMakeFiles/cdi_knowledge.dir/data_lake.cc.o"
  "CMakeFiles/cdi_knowledge.dir/data_lake.cc.o.d"
  "CMakeFiles/cdi_knowledge.dir/entity_linker.cc.o"
  "CMakeFiles/cdi_knowledge.dir/entity_linker.cc.o.d"
  "CMakeFiles/cdi_knowledge.dir/knowledge_graph.cc.o"
  "CMakeFiles/cdi_knowledge.dir/knowledge_graph.cc.o.d"
  "CMakeFiles/cdi_knowledge.dir/text_oracle.cc.o"
  "CMakeFiles/cdi_knowledge.dir/text_oracle.cc.o.d"
  "CMakeFiles/cdi_knowledge.dir/topic_model.cc.o"
  "CMakeFiles/cdi_knowledge.dir/topic_model.cc.o.d"
  "libcdi_knowledge.a"
  "libcdi_knowledge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdi_knowledge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
