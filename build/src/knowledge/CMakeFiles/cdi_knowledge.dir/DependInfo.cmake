
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/knowledge/data_lake.cc" "src/knowledge/CMakeFiles/cdi_knowledge.dir/data_lake.cc.o" "gcc" "src/knowledge/CMakeFiles/cdi_knowledge.dir/data_lake.cc.o.d"
  "/root/repo/src/knowledge/entity_linker.cc" "src/knowledge/CMakeFiles/cdi_knowledge.dir/entity_linker.cc.o" "gcc" "src/knowledge/CMakeFiles/cdi_knowledge.dir/entity_linker.cc.o.d"
  "/root/repo/src/knowledge/knowledge_graph.cc" "src/knowledge/CMakeFiles/cdi_knowledge.dir/knowledge_graph.cc.o" "gcc" "src/knowledge/CMakeFiles/cdi_knowledge.dir/knowledge_graph.cc.o.d"
  "/root/repo/src/knowledge/text_oracle.cc" "src/knowledge/CMakeFiles/cdi_knowledge.dir/text_oracle.cc.o" "gcc" "src/knowledge/CMakeFiles/cdi_knowledge.dir/text_oracle.cc.o.d"
  "/root/repo/src/knowledge/topic_model.cc" "src/knowledge/CMakeFiles/cdi_knowledge.dir/topic_model.cc.o" "gcc" "src/knowledge/CMakeFiles/cdi_knowledge.dir/topic_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cdi_common.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/cdi_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/cdi_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/table/CMakeFiles/cdi_table.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
