# Empty compiler generated dependencies file for cdi_knowledge.
# This may be replaced when dependencies are built.
