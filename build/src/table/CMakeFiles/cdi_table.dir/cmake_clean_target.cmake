file(REMOVE_RECURSE
  "libcdi_table.a"
)
