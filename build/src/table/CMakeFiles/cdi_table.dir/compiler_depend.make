# Empty compiler generated dependencies file for cdi_table.
# This may be replaced when dependencies are built.
