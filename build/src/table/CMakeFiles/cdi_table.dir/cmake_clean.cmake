file(REMOVE_RECURSE
  "CMakeFiles/cdi_table.dir/aggregate.cc.o"
  "CMakeFiles/cdi_table.dir/aggregate.cc.o.d"
  "CMakeFiles/cdi_table.dir/column.cc.o"
  "CMakeFiles/cdi_table.dir/column.cc.o.d"
  "CMakeFiles/cdi_table.dir/csv.cc.o"
  "CMakeFiles/cdi_table.dir/csv.cc.o.d"
  "CMakeFiles/cdi_table.dir/join.cc.o"
  "CMakeFiles/cdi_table.dir/join.cc.o.d"
  "CMakeFiles/cdi_table.dir/table.cc.o"
  "CMakeFiles/cdi_table.dir/table.cc.o.d"
  "CMakeFiles/cdi_table.dir/value.cc.o"
  "CMakeFiles/cdi_table.dir/value.cc.o.d"
  "libcdi_table.a"
  "libcdi_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdi_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
