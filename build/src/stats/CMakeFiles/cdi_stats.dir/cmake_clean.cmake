file(REMOVE_RECURSE
  "CMakeFiles/cdi_stats.dir/correlation.cc.o"
  "CMakeFiles/cdi_stats.dir/correlation.cc.o.d"
  "CMakeFiles/cdi_stats.dir/descriptive.cc.o"
  "CMakeFiles/cdi_stats.dir/descriptive.cc.o.d"
  "CMakeFiles/cdi_stats.dir/distributions.cc.o"
  "CMakeFiles/cdi_stats.dir/distributions.cc.o.d"
  "CMakeFiles/cdi_stats.dir/independence.cc.o"
  "CMakeFiles/cdi_stats.dir/independence.cc.o.d"
  "CMakeFiles/cdi_stats.dir/linalg.cc.o"
  "CMakeFiles/cdi_stats.dir/linalg.cc.o.d"
  "CMakeFiles/cdi_stats.dir/logistic.cc.o"
  "CMakeFiles/cdi_stats.dir/logistic.cc.o.d"
  "CMakeFiles/cdi_stats.dir/matrix.cc.o"
  "CMakeFiles/cdi_stats.dir/matrix.cc.o.d"
  "CMakeFiles/cdi_stats.dir/regression.cc.o"
  "CMakeFiles/cdi_stats.dir/regression.cc.o.d"
  "libcdi_stats.a"
  "libcdi_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdi_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
