file(REMOVE_RECURSE
  "libcdi_stats.a"
)
