# Empty dependencies file for cdi_stats.
# This may be replaced when dependencies are built.
