# Empty compiler generated dependencies file for cdi_graph.
# This may be replaced when dependencies are built.
