file(REMOVE_RECURSE
  "libcdi_graph.a"
)
