
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/adjustment.cc" "src/graph/CMakeFiles/cdi_graph.dir/adjustment.cc.o" "gcc" "src/graph/CMakeFiles/cdi_graph.dir/adjustment.cc.o.d"
  "/root/repo/src/graph/digraph.cc" "src/graph/CMakeFiles/cdi_graph.dir/digraph.cc.o" "gcc" "src/graph/CMakeFiles/cdi_graph.dir/digraph.cc.o.d"
  "/root/repo/src/graph/dot.cc" "src/graph/CMakeFiles/cdi_graph.dir/dot.cc.o" "gcc" "src/graph/CMakeFiles/cdi_graph.dir/dot.cc.o.d"
  "/root/repo/src/graph/dsep.cc" "src/graph/CMakeFiles/cdi_graph.dir/dsep.cc.o" "gcc" "src/graph/CMakeFiles/cdi_graph.dir/dsep.cc.o.d"
  "/root/repo/src/graph/metrics.cc" "src/graph/CMakeFiles/cdi_graph.dir/metrics.cc.o" "gcc" "src/graph/CMakeFiles/cdi_graph.dir/metrics.cc.o.d"
  "/root/repo/src/graph/pag.cc" "src/graph/CMakeFiles/cdi_graph.dir/pag.cc.o" "gcc" "src/graph/CMakeFiles/cdi_graph.dir/pag.cc.o.d"
  "/root/repo/src/graph/pdag.cc" "src/graph/CMakeFiles/cdi_graph.dir/pdag.cc.o" "gcc" "src/graph/CMakeFiles/cdi_graph.dir/pdag.cc.o.d"
  "/root/repo/src/graph/random_graph.cc" "src/graph/CMakeFiles/cdi_graph.dir/random_graph.cc.o" "gcc" "src/graph/CMakeFiles/cdi_graph.dir/random_graph.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cdi_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
