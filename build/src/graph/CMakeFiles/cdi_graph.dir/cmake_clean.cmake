file(REMOVE_RECURSE
  "CMakeFiles/cdi_graph.dir/adjustment.cc.o"
  "CMakeFiles/cdi_graph.dir/adjustment.cc.o.d"
  "CMakeFiles/cdi_graph.dir/digraph.cc.o"
  "CMakeFiles/cdi_graph.dir/digraph.cc.o.d"
  "CMakeFiles/cdi_graph.dir/dot.cc.o"
  "CMakeFiles/cdi_graph.dir/dot.cc.o.d"
  "CMakeFiles/cdi_graph.dir/dsep.cc.o"
  "CMakeFiles/cdi_graph.dir/dsep.cc.o.d"
  "CMakeFiles/cdi_graph.dir/metrics.cc.o"
  "CMakeFiles/cdi_graph.dir/metrics.cc.o.d"
  "CMakeFiles/cdi_graph.dir/pag.cc.o"
  "CMakeFiles/cdi_graph.dir/pag.cc.o.d"
  "CMakeFiles/cdi_graph.dir/pdag.cc.o"
  "CMakeFiles/cdi_graph.dir/pdag.cc.o.d"
  "CMakeFiles/cdi_graph.dir/random_graph.cc.o"
  "CMakeFiles/cdi_graph.dir/random_graph.cc.o.d"
  "libcdi_graph.a"
  "libcdi_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdi_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
