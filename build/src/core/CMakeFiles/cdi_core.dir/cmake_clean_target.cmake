file(REMOVE_RECURSE
  "libcdi_core.a"
)
