
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cdag.cc" "src/core/CMakeFiles/cdi_core.dir/cdag.cc.o" "gcc" "src/core/CMakeFiles/cdi_core.dir/cdag.cc.o.d"
  "/root/repo/src/core/cdag_builder.cc" "src/core/CMakeFiles/cdi_core.dir/cdag_builder.cc.o" "gcc" "src/core/CMakeFiles/cdi_core.dir/cdag_builder.cc.o.d"
  "/root/repo/src/core/data_organizer.cc" "src/core/CMakeFiles/cdi_core.dir/data_organizer.cc.o" "gcc" "src/core/CMakeFiles/cdi_core.dir/data_organizer.cc.o.d"
  "/root/repo/src/core/effect.cc" "src/core/CMakeFiles/cdi_core.dir/effect.cc.o" "gcc" "src/core/CMakeFiles/cdi_core.dir/effect.cc.o.d"
  "/root/repo/src/core/evaluation.cc" "src/core/CMakeFiles/cdi_core.dir/evaluation.cc.o" "gcc" "src/core/CMakeFiles/cdi_core.dir/evaluation.cc.o.d"
  "/root/repo/src/core/fd.cc" "src/core/CMakeFiles/cdi_core.dir/fd.cc.o" "gcc" "src/core/CMakeFiles/cdi_core.dir/fd.cc.o.d"
  "/root/repo/src/core/identifiability.cc" "src/core/CMakeFiles/cdi_core.dir/identifiability.cc.o" "gcc" "src/core/CMakeFiles/cdi_core.dir/identifiability.cc.o.d"
  "/root/repo/src/core/knowledge_extractor.cc" "src/core/CMakeFiles/cdi_core.dir/knowledge_extractor.cc.o" "gcc" "src/core/CMakeFiles/cdi_core.dir/knowledge_extractor.cc.o.d"
  "/root/repo/src/core/pipeline.cc" "src/core/CMakeFiles/cdi_core.dir/pipeline.cc.o" "gcc" "src/core/CMakeFiles/cdi_core.dir/pipeline.cc.o.d"
  "/root/repo/src/core/sensitivity.cc" "src/core/CMakeFiles/cdi_core.dir/sensitivity.cc.o" "gcc" "src/core/CMakeFiles/cdi_core.dir/sensitivity.cc.o.d"
  "/root/repo/src/core/varclus.cc" "src/core/CMakeFiles/cdi_core.dir/varclus.cc.o" "gcc" "src/core/CMakeFiles/cdi_core.dir/varclus.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cdi_common.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/cdi_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/discovery/CMakeFiles/cdi_discovery.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/cdi_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/knowledge/CMakeFiles/cdi_knowledge.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/cdi_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/table/CMakeFiles/cdi_table.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
