file(REMOVE_RECURSE
  "CMakeFiles/cdi_core.dir/cdag.cc.o"
  "CMakeFiles/cdi_core.dir/cdag.cc.o.d"
  "CMakeFiles/cdi_core.dir/cdag_builder.cc.o"
  "CMakeFiles/cdi_core.dir/cdag_builder.cc.o.d"
  "CMakeFiles/cdi_core.dir/data_organizer.cc.o"
  "CMakeFiles/cdi_core.dir/data_organizer.cc.o.d"
  "CMakeFiles/cdi_core.dir/effect.cc.o"
  "CMakeFiles/cdi_core.dir/effect.cc.o.d"
  "CMakeFiles/cdi_core.dir/evaluation.cc.o"
  "CMakeFiles/cdi_core.dir/evaluation.cc.o.d"
  "CMakeFiles/cdi_core.dir/fd.cc.o"
  "CMakeFiles/cdi_core.dir/fd.cc.o.d"
  "CMakeFiles/cdi_core.dir/identifiability.cc.o"
  "CMakeFiles/cdi_core.dir/identifiability.cc.o.d"
  "CMakeFiles/cdi_core.dir/knowledge_extractor.cc.o"
  "CMakeFiles/cdi_core.dir/knowledge_extractor.cc.o.d"
  "CMakeFiles/cdi_core.dir/pipeline.cc.o"
  "CMakeFiles/cdi_core.dir/pipeline.cc.o.d"
  "CMakeFiles/cdi_core.dir/sensitivity.cc.o"
  "CMakeFiles/cdi_core.dir/sensitivity.cc.o.d"
  "CMakeFiles/cdi_core.dir/varclus.cc.o"
  "CMakeFiles/cdi_core.dir/varclus.cc.o.d"
  "libcdi_core.a"
  "libcdi_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdi_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
