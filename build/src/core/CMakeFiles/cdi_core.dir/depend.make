# Empty dependencies file for cdi_core.
# This may be replaced when dependencies are built.
