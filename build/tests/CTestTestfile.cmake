# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(common_test "/root/repo/build/tests/common_test")
set_tests_properties(common_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;9;cdi_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(stats_test "/root/repo/build/tests/stats_test")
set_tests_properties(stats_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;10;cdi_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(table_test "/root/repo/build/tests/table_test")
set_tests_properties(table_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;11;cdi_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(graph_test "/root/repo/build/tests/graph_test")
set_tests_properties(graph_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;12;cdi_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(discovery_test "/root/repo/build/tests/discovery_test")
set_tests_properties(discovery_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;13;cdi_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(knowledge_test "/root/repo/build/tests/knowledge_test")
set_tests_properties(knowledge_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;14;cdi_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(datagen_test "/root/repo/build/tests/datagen_test")
set_tests_properties(datagen_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;15;cdi_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(core_test "/root/repo/build/tests/core_test")
set_tests_properties(core_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;16;cdi_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(integration_test "/root/repo/build/tests/integration_test")
set_tests_properties(integration_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;17;cdi_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(property_test "/root/repo/build/tests/property_test")
set_tests_properties(property_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;18;cdi_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(extensions_test "/root/repo/build/tests/extensions_test")
set_tests_properties(extensions_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;19;cdi_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(harness_test "/root/repo/build/tests/harness_test")
set_tests_properties(harness_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;20;cdi_add_test;/root/repo/tests/CMakeLists.txt;0;")
