// cdi_loadgen — seeded closed-loop load generator for the query server.
//
// Usage:
//   cdi_loadgen [--scenario covid|flights] [--entities N] [--clients C]
//               [--requests R] [--workers W] [--queue-depth D]
//               [--distinct K] [--seed S] [--min-hit-rate F] [--no-verify]
//               [--no-warmup] [--sweep] [--summarize-mix]
//               [--churn-rows N [--churn-batches B]]
//               [--scenarios N [--skew zipf|uniform] [--zipf-s S]
//                [--registry-shards N] [--memory-budget-kb K]]
//
// Spawns an in-process QueryServer over one registered scenario, derives a
// seeded mix of K distinct (exposure, outcome) queries from the
// scenario's numeric attributes, warms the cache with one pass over the
// mix, then runs C closed-loop client threads issuing R requests each
// (submit -> wait -> next), replaying the mix under a seeded schedule.
//
// Verification (default on): every served response's payload line —
// effects at full %.17g precision plus a 64-bit fingerprint over the
// entire result — is compared byte-for-byte against a direct
// Pipeline::Run of the same query computed before the server starts. Any
// mismatch is a "torn response" and fails the run; so does a warm-phase
// cache hit rate below --min-hit-rate (default 0.9). Exit code 0 = clean.
//
// --sweep switches to the planner acceptance mode: the mix becomes EVERY
// ordered (exposure, outcome) pair of the scenario's numeric attributes,
// issued as QueryMode::kPlanned queries, and each served pair answer is
// compared byte-for-byte against a freshly computed baseline — a fresh
// full Pipeline::Run of the scenario's canonical pair plus a fresh
// CdagPlan built from it, answering the same pair. Pairs the planner
// rejects (same cluster, attribute dropped during organization) must be
// rejected by the server with the same status code.
//
// --summarize-mix interleaves summarize-mode queries into the closed-loop
// mix: every budget from 2 to the scenario C-DAG's node count becomes one
// extra mix entry (formats alternating dot/json), and every served
// summary payload — whose fingerprint covers both renderings — is
// compared byte-for-byte against a summary built directly from a fresh
// canonical pipeline run + CdagPlan + SummarizeClusterDag. Budgets the
// merge pass rejects (below the safe floor) must be rejected by the
// server with the same status code. Composes with --churn-rows: each
// epoch's summaries are verified against that epoch's freshly built
// C-DAG (budgets not achievable in every phase are left out of the mix).
// Requires verification (incompatible with --no-verify, --sweep and
// --scenarios).
//
// --churn-rows N switches to the streaming-ingest acceptance mode: the
// scenario is registered with its last N*B rows held back, and an updater
// thread interleaves B row-batch updates (QueryServer::UpdateScenario —
// epoch rollover with delta-refreshed statistics) with the client
// queries. Every served answer carries its scenario epoch, and is
// compared byte-for-byte against a fresh direct Pipeline::Run over
// exactly that epoch's table (head + the batches applied so far),
// computed up front — zero torn and zero stale answers required. The
// warm-hit-rate gate is skipped (rollovers legitimately cool the cache).
//
// --scenarios N switches to the scale-out acceptance mode: the first N
// cells of the default scenario-family grid (datagen/grid.h) are
// registered at runtime through QueryServer::RegisterScenario, and the
// clients replay a skewed closed-loop mix — each request picks a
// scenario by Zipf(--zipf-s) or uniform draw and queries its canonical
// (exposure, outcome) pair. With --memory-budget-kb the sharded registry
// evicts cold scenarios under the churn; a client that draws an evicted
// scenario re-registers it (the grid rebuild is bit-identical) and
// replays the request. Every served answer is compared byte-for-byte
// against a direct Pipeline::Run captured at first registration — one
// payload per scenario covers every epoch, precisely because rebuilds
// are deterministic. Gates: zero torn, zero errors, and (when a budget
// is set) at least one eviction. The hit-rate gate is skipped.
//
// Prints the warm-phase MetricsSnapshot and a verification summary. Run
// under TSan (-DCDI_TSAN=ON) in CI as the serving layer's race gate.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/cdag.h"
#include "core/pipeline.h"
#include "core/plan.h"
#include "datagen/covid.h"
#include "datagen/flights.h"
#include "datagen/grid.h"
#include "datagen/scenario.h"
#include "serve/line_protocol.h"
#include "serve/query_server.h"
#include "serve/scenario_registry.h"
#include "summarize/summarize.h"
#include "table/table.h"

namespace {

struct Args {
  std::string scenario = "covid";
  std::size_t entities = 200;
  int clients = 8;
  int requests = 50;  // per client
  int workers = 4;
  std::size_t queue_depth = 64;
  int distinct = 6;
  std::uint64_t seed = 1;
  double min_hit_rate = 0.9;
  bool verify = true;
  bool warmup = true;
  bool sweep = false;
  bool summarize_mix = false;
  std::size_t churn_rows = 0;  // >0 enables streaming-ingest churn mode
  int churn_batches = 3;
  std::size_t grid_scenarios = 0;  // >0 enables grid scale-out mode
  std::string skew = "zipf";
  double zipf_s = 1.1;
  std::size_t registry_shards = 8;
  std::size_t memory_budget_kb = 0;  // 0 = unlimited
};

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--scenario covid|flights] [--entities N] [--clients C] "
      "[--requests R] [--workers W] [--queue-depth D] [--distinct K] "
      "[--seed S] [--min-hit-rate F] [--no-verify] [--no-warmup] "
      "[--sweep] [--summarize-mix] [--churn-rows N [--churn-batches B]] "
      "[--scenarios N [--skew zipf|uniform] [--zipf-s S] "
      "[--registry-shards N] [--memory-budget-kb K]]\n",
      argv0);
  return 2;
}

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (flag == "--scenario" && (v = next())) {
      args->scenario = v;
    } else if (flag == "--entities" && (v = next())) {
      args->entities = static_cast<std::size_t>(std::atoll(v));
    } else if (flag == "--clients" && (v = next())) {
      args->clients = std::atoi(v);
    } else if (flag == "--requests" && (v = next())) {
      args->requests = std::atoi(v);
    } else if (flag == "--workers" && (v = next())) {
      args->workers = std::atoi(v);
    } else if (flag == "--queue-depth" && (v = next())) {
      args->queue_depth = static_cast<std::size_t>(std::atoll(v));
    } else if (flag == "--distinct" && (v = next())) {
      args->distinct = std::atoi(v);
    } else if (flag == "--seed" && (v = next())) {
      args->seed = static_cast<std::uint64_t>(std::atoll(v));
    } else if (flag == "--min-hit-rate" && (v = next())) {
      args->min_hit_rate = std::atof(v);
    } else if (flag == "--no-verify") {
      args->verify = false;
    } else if (flag == "--no-warmup") {
      args->warmup = false;
    } else if (flag == "--sweep") {
      args->sweep = true;
    } else if (flag == "--summarize-mix") {
      args->summarize_mix = true;
    } else if (flag == "--churn-rows" && (v = next())) {
      args->churn_rows = static_cast<std::size_t>(std::atoll(v));
    } else if (flag == "--churn-batches" && (v = next())) {
      args->churn_batches = std::atoi(v);
    } else if (flag == "--scenarios" && (v = next())) {
      args->grid_scenarios = static_cast<std::size_t>(std::atoll(v));
    } else if (flag == "--skew" && (v = next())) {
      args->skew = v;
    } else if (flag == "--zipf-s" && (v = next())) {
      args->zipf_s = std::atof(v);
    } else if (flag == "--registry-shards" && (v = next())) {
      args->registry_shards = static_cast<std::size_t>(std::atoll(v));
    } else if (flag == "--memory-budget-kb" && (v = next())) {
      args->memory_budget_kb = static_cast<std::size_t>(std::atoll(v));
    } else {
      std::fprintf(stderr, "unknown or incomplete flag: %s\n", flag.c_str());
      return false;
    }
  }
  if (args->sweep && args->churn_rows > 0) {
    std::fprintf(stderr, "--sweep and --churn-rows are mutually exclusive\n");
    return false;
  }
  if (args->grid_scenarios > 0 && (args->sweep || args->churn_rows > 0)) {
    std::fprintf(stderr,
                 "--scenarios (grid mode) excludes --sweep/--churn-rows\n");
    return false;
  }
  if (args->skew != "zipf" && args->skew != "uniform") {
    std::fprintf(stderr, "--skew must be zipf or uniform\n");
    return false;
  }
  if (args->churn_rows > 0 && args->churn_batches < 1) {
    std::fprintf(stderr, "--churn-batches must be >= 1\n");
    return false;
  }
  if (args->summarize_mix &&
      (args->sweep || args->grid_scenarios > 0 || !args->verify)) {
    std::fprintf(stderr,
                 "--summarize-mix needs verification and excludes "
                 "--sweep/--scenarios\n");
    return false;
  }
  return args->clients > 0 && args->requests > 0;
}

/// The byte-comparable form of a served response: the payload line for OK
/// answers, "error code=<code>" otherwise. `summary_format` selects the
/// rendering embedded in summary payloads (the fingerprint covers both
/// renderings either way, so a single format still proves byte equality
/// of DOT and JSON).
std::string ServedLine(const cdi::serve::QueryResponse& response,
                       const std::string& summary_format = "dot") {
  if (!response.status.ok()) {
    return std::string("error code=") +
           cdi::StatusCodeName(response.status.code());
  }
  if (response.summary != nullptr) {
    return cdi::serve::FormatSummaryPayload(*response.summary,
                                            summary_format);
  }
  return response.planned != nullptr
             ? cdi::serve::FormatPairAnswerPayload(*response.planned)
             : cdi::serve::FormatResultPayload(*response.result);
}

/// A summarize-mode mix entry: budget k against `scenario`, formats
/// alternating so both renderings ride the wire.
cdi::serve::CdiQuery SummarizeEntry(const std::string& scenario,
                                    std::size_t k) {
  cdi::serve::CdiQuery q;
  q.scenario = scenario;
  q.mode = cdi::serve::QueryMode::kSummarize;
  q.summarize_k = k;
  q.summarize_format = (k % 2 == 0) ? "dot" : "json";
  return q;
}

/// The expected byte-comparable line for budget `k` against a freshly
/// built C-DAG: the summary payload when the merge pass succeeds, the
/// matching error line when it rejects the budget.
std::string ExpectedSummaryLine(const cdi::core::ClusterDag& cdag,
                                std::size_t k, const std::string& format) {
  cdi::summarize::SummarizeOptions sopts;
  sopts.budget = k;
  auto summary = cdi::summarize::SummarizeClusterDag(cdag, sopts);
  if (!summary.ok()) {
    return std::string("error code=") +
           cdi::StatusCodeName(summary.status().code());
  }
  cdi::serve::SummaryArtifact artifact;
  artifact.dot = summary->ToDot();
  artifact.json = summary->ToJson();
  artifact.summary = std::make_shared<const cdi::summarize::SummaryDag>(
      *std::move(summary));
  return cdi::serve::FormatSummaryPayload(artifact, format);
}

/// --scenarios N: grid scale-out acceptance. Registers the first N cells
/// of the default grid through the server's single-flight registration,
/// then drives a skewed closed-loop mix over them; evicted scenarios are
/// re-registered on demand and every answer is verified byte-for-byte
/// against the direct pipeline run captured at first registration.
int RunGridMode(const Args& args) {
  const auto cells =
      cdi::datagen::EnumerateGrid(cdi::datagen::ScenarioGridSpec{});
  if (args.grid_scenarios > cells.size()) {
    std::fprintf(stderr, "--scenarios %zu exceeds the %zu-cell grid\n",
                 args.grid_scenarios, cells.size());
    return 1;
  }
  const std::size_t n = args.grid_scenarios;
  const std::size_t entities = args.entities > 0 ? args.entities : 120;

  std::vector<std::string> names(n);
  for (std::size_t i = 0; i < n; ++i) {
    names[i] = cdi::datagen::GridCellName(cells[i]);
  }
  // A scenario's builder: the bit-stable grid rebuild. Used both for the
  // initial registration and for on-demand re-registration after an
  // eviction — determinism is what makes one expected payload per
  // scenario cover every epoch.
  const auto builder_for = [entities](const std::string& cell) {
    return [cell, entities]()
               -> cdi::Result<std::shared_ptr<const cdi::datagen::Scenario>> {
      auto scenario = cdi::datagen::BuildGridScenario(cell, entities);
      if (!scenario.ok()) return scenario.status();
      return std::shared_ptr<const cdi::datagen::Scenario>(
          std::move(scenario).value());
    };
  };

  cdi::serve::RegistryOptions registry_options;
  registry_options.num_shards = args.registry_shards;
  registry_options.memory_budget_bytes = args.memory_budget_kb * 1024;
  cdi::serve::ScenarioRegistry registry(registry_options);

  cdi::serve::QueryServerOptions options;
  options.num_workers = args.workers;
  options.max_queue_depth = args.queue_depth;
  cdi::serve::QueryServer server(&registry, options);

  // Register the slice and capture per-scenario ground truth from the
  // exact bundle just published (its snapshot stays valid even if the
  // budget evicts the name while later cells register).
  std::vector<cdi::serve::CdiQuery> mix(n);
  std::vector<std::string> expected(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto bundle = server.RegisterScenario(names[i], builder_for(names[i]));
    if (!bundle.ok()) {
      std::fprintf(stderr, "register %s: %s\n", names[i].c_str(),
                   bundle.status().ToString().c_str());
      return 1;
    }
    const cdi::datagen::Scenario& sc = *(*bundle)->scenario;
    mix[i].scenario = names[i];
    mix[i].exposure = sc.exposure_attribute;
    mix[i].outcome = sc.outcome_attribute;
    if (args.verify) {
      // Cells the pipeline deterministically rejects (e.g. severe MNAR at
      // tiny entity counts drops every extracted attribute) stay in the
      // mix: the server must reproduce the exact same error.
      cdi::core::Pipeline pipeline(&sc.kg, &sc.lake, sc.oracle.get(),
                                   &sc.topics, (*bundle)->default_options);
      auto run = pipeline.Run(sc.input_table, sc.spec.entity_column,
                              mix[i].exposure, mix[i].outcome);
      expected[i] = run.ok() ? cdi::serve::FormatResultPayload(*run)
                             : std::string("error code=") +
                                   cdi::StatusCodeName(run.status().code());
    }
  }

  // Skewed scenario-pick weights: Zipf over registration order (cell 0
  // hottest), or uniform.
  std::vector<double> weights(n, 1.0);
  if (args.skew == "zipf") {
    for (std::size_t i = 0; i < n; ++i) {
      weights[i] = 1.0 / std::pow(static_cast<double>(i + 1), args.zipf_s);
    }
  }

  std::atomic<std::uint64_t> torn{0};
  std::atomic<std::uint64_t> errors{0};
  std::atomic<std::uint64_t> retried{0};       // queue-full replays
  std::atomic<std::uint64_t> reregistered{0};  // eviction recoveries
  std::atomic<std::uint64_t> completed{0};

  const std::uint64_t total = static_cast<std::uint64_t>(args.clients) *
                              static_cast<std::uint64_t>(args.requests);
  std::vector<std::thread> clients;
  clients.reserve(static_cast<std::size_t>(args.clients));
  for (int c = 0; c < args.clients; ++c) {
    clients.emplace_back([&, c] {
      cdi::Rng rng(args.seed + 0xA11CE5 + static_cast<std::uint64_t>(c));
      for (int r = 0; r < args.requests; ++r) {
        const std::size_t pick = rng.Categorical(weights);
        bool done = false;
        // Bounded replay loop: queue-full shed and eviction recovery both
        // retry the same request; anything else resolves it.
        for (int attempt = 0; attempt < 200 && !done; ++attempt) {
          const auto response = server.Execute(mix[pick]);
          if (response.status.code() ==
              cdi::StatusCode::kResourceExhausted) {
            retried.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          if (response.status.code() == cdi::StatusCode::kNotFound) {
            // Evicted by the memory budget: re-register the deterministic
            // rebuild and replay. Concurrent recoveries of the same name
            // coalesce under the server's single-flight registration.
            auto again = server.RegisterScenario(
                names[pick], builder_for(names[pick]), /*replace=*/true);
            if (!again.ok()) {
              errors.fetch_add(1, std::memory_order_relaxed);
              done = true;
              break;
            }
            reregistered.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          if (args.verify) {
            // A served error that byte-matches the direct run's error is a
            // verified answer; any payload/error mismatch is torn.
            if (ServedLine(response) != expected[pick]) {
              torn.fetch_add(1, std::memory_order_relaxed);
            }
          } else if (!response.status.ok()) {
            errors.fetch_add(1, std::memory_order_relaxed);
          }
          done = true;
        }
        if (!done) errors.fetch_add(1, std::memory_order_relaxed);
        completed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : clients) t.join();

  const auto metrics = server.Metrics();
  server.Shutdown();

  std::printf("loadgen grid scenarios=%zu entities=%zu clients=%d "
              "requests=%llu skew=%s zipf_s=%.2f shards=%zu budget_kb=%zu "
              "seed=%llu\n",
              n, entities, args.clients,
              static_cast<unsigned long long>(total), args.skew.c_str(),
              args.zipf_s, args.registry_shards, args.memory_budget_kb,
              static_cast<unsigned long long>(args.seed));
  std::printf("metrics %s\n", metrics.ToLine().c_str());
  std::printf("verify torn=%llu errors=%llu retried=%llu reregistered=%llu "
              "evicted=%llu\n",
              static_cast<unsigned long long>(torn.load()),
              static_cast<unsigned long long>(errors.load()),
              static_cast<unsigned long long>(retried.load()),
              static_cast<unsigned long long>(reregistered.load()),
              static_cast<unsigned long long>(metrics.scenarios_evicted));

  bool ok = torn.load() == 0 && errors.load() == 0;
  if (torn.load() != 0) {
    std::fprintf(stderr, "FAIL: %llu torn responses (served != direct run)\n",
                 static_cast<unsigned long long>(torn.load()));
  }
  if (errors.load() != 0) {
    std::fprintf(stderr, "FAIL: %llu error responses\n",
                 static_cast<unsigned long long>(errors.load()));
  }
  if (args.memory_budget_kb > 0 && metrics.scenarios_evicted == 0) {
    std::fprintf(stderr,
                 "FAIL: a memory budget was set but nothing was evicted "
                 "(raise --scenarios or lower --memory-budget-kb)\n");
    ok = false;
  }
  std::printf("%s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) return Usage(argv[0]);
  if (args.grid_scenarios > 0) return RunGridMode(args);

  // ---- Scenario ingest (amortized across every request). -----------------
  cdi::datagen::ScenarioSpec spec;
  if (args.scenario == "covid") {
    spec = cdi::datagen::CovidSpec();
  } else if (args.scenario == "flights") {
    spec = cdi::datagen::FlightsSpec();
  } else {
    std::fprintf(stderr, "unknown scenario '%s'\n", args.scenario.c_str());
    return 1;
  }
  if (args.entities > 0) spec.num_entities = args.entities;
  auto built = cdi::datagen::BuildScenario(spec);
  if (!built.ok()) {
    std::fprintf(stderr, "%s\n", built.status().ToString().c_str());
    return 1;
  }

  // ---- Churn setup: hold back the last B*N rows as update batches, so
  // every appended row is a genuinely new entity the knowledge sources
  // already cover. phase e's table = head + batches[0..e). -----------------
  const bool churn = args.churn_rows > 0;
  const int num_batches = churn ? args.churn_batches : 0;
  std::vector<cdi::table::Table> batches;
  if (churn) {
    cdi::table::Table& full = built.value()->input_table;
    const std::size_t held =
        args.churn_rows * static_cast<std::size_t>(num_batches);
    if (full.num_rows() < held + 20) {
      std::fprintf(stderr,
                   "churn needs %zu held-back rows but the scenario has "
                   "only %zu (raise --entities)\n",
                   held, full.num_rows());
      return 1;
    }
    const std::size_t head = full.num_rows() - held;
    for (int k = 0; k < num_batches; ++k) {
      std::vector<std::size_t> rows(args.churn_rows);
      for (std::size_t i = 0; i < args.churn_rows; ++i) {
        rows[i] = head + static_cast<std::size_t>(k) * args.churn_rows + i;
      }
      batches.push_back(full.TakeRows(rows));
    }
    full = full.Head(head);
  }

  cdi::serve::ScenarioRegistry registry;
  auto registered = registry.Register(
      args.scenario, std::unique_ptr<const cdi::datagen::Scenario>(
                         std::move(built).value()));
  if (!registered.ok()) {
    std::fprintf(stderr, "%s\n", registered.status().ToString().c_str());
    return 1;
  }
  const auto bundle = *registered;

  // ---- Seeded query mix: K distinct (T, O) pairs, or the full ordered
  // pair sweep in --sweep mode (planned queries). --------------------------
  std::vector<cdi::serve::CdiQuery> mix;
  {
    const auto& attrs = bundle->numeric_attributes;
    std::vector<std::pair<std::string, std::string>> pairs;
    for (const auto& t : attrs) {
      for (const auto& o : attrs) {
        if (t != o) pairs.emplace_back(t, o);
      }
    }
    if (pairs.empty()) {
      std::fprintf(stderr,
                   "scenario '%s' has fewer than two numeric attributes\n",
                   args.scenario.c_str());
      return 1;
    }
    std::size_t k = pairs.size();
    if (!args.sweep) {
      cdi::Rng rng(args.seed * 0x9E3779B97F4A7C15ULL + 7);
      rng.Shuffle(&pairs);
      k = std::min<std::size_t>(pairs.size(),
                                args.distinct > 0 ? args.distinct : 1);
    }
    for (std::size_t i = 0; i < k; ++i) {
      cdi::serve::CdiQuery q;
      q.scenario = args.scenario;
      q.exposure = pairs[i].first;
      q.outcome = pairs[i].second;
      if (args.sweep) q.mode = cdi::serve::QueryMode::kPlanned;
      mix.push_back(std::move(q));
    }
  }

  // ---- Ground truth per distinct query: a direct Pipeline::Run of the
  // exact pair (default), or — in sweep mode — a fresh full-pipeline run
  // of the scenario's canonical pair plus a fresh CdagPlan answering the
  // pair (the planner's determinism contract: cached == freshly built).
  // Planner-rejected pairs record the expected error line instead.
  std::vector<std::string> expected(mix.size());
  /// Churn mode: ground truth per phase e (the table after e batches) per
  /// mix entry — a fresh direct Pipeline::Run over exactly the data the
  /// server serves at that epoch.
  std::vector<std::vector<std::string>> expected_phase;
  if (args.verify && churn) {
    const cdi::datagen::Scenario& sc = *bundle->scenario;
    cdi::core::Pipeline pipeline(&sc.kg, &sc.lake, sc.oracle.get(),
                                 &sc.topics, bundle->default_options);
    expected_phase.resize(static_cast<std::size_t>(num_batches) + 1);
    // Each phase's C-DAG (from a fresh canonical run + plan build, the
    // exact artifact the server summarizes from) — only when summaries
    // join the mix.
    std::vector<cdi::core::ClusterDag> phase_cdags;
    cdi::table::Table phase_table = sc.input_table;  // the head
    for (int e = 0; e <= num_batches; ++e) {
      if (e > 0) {
        if (auto s = phase_table.AppendRows(batches[static_cast<std::size_t>(
                e - 1)]);
            !s.ok()) {
          std::fprintf(stderr, "phase %d append: %s\n", e,
                       s.ToString().c_str());
          return 1;
        }
      }
      auto& exp = expected_phase[static_cast<std::size_t>(e)];
      exp.resize(mix.size());
      for (std::size_t i = 0; i < mix.size(); ++i) {
        auto run = pipeline.Run(phase_table, sc.spec.entity_column,
                                mix[i].exposure, mix[i].outcome);
        if (!run.ok()) {
          std::fprintf(stderr, "phase %d direct run %s->%s: %s\n", e,
                       mix[i].exposure.c_str(), mix[i].outcome.c_str(),
                       run.status().ToString().c_str());
          return 1;
        }
        exp[i] = cdi::serve::FormatResultPayload(*run);
      }
      if (args.summarize_mix) {
        auto run = pipeline.Run(phase_table, sc.spec.entity_column,
                                sc.exposure_attribute, sc.outcome_attribute);
        if (!run.ok()) {
          std::fprintf(stderr, "phase %d canonical run: %s\n", e,
                       run.status().ToString().c_str());
          return 1;
        }
        phase_cdags.push_back(run->build.cdag);
      }
    }
    // Summaries ride the churn too: one mix entry per budget achievable
    // in EVERY phase (a budget below some phase's safe floor would need
    // error responses mapped back to epochs, which error lines cannot
    // do). Each phase's expected line is the summary of that phase's
    // C-DAG — stale-epoch summaries are torn responses like any other.
    if (args.summarize_mix) {
      const std::size_t n0 = phase_cdags[0].num_clusters();
      std::size_t added = 0;
      for (std::size_t k = 2; k <= n0; ++k) {
        const auto q = SummarizeEntry(args.scenario, k);
        std::vector<std::string> lines;
        bool all_ok = true;
        for (const auto& cdag : phase_cdags) {
          lines.push_back(ExpectedSummaryLine(cdag, k, q.summarize_format));
          all_ok = all_ok && lines.back().rfind("error ", 0) != 0;
        }
        if (!all_ok) continue;
        mix.push_back(q);
        for (int e = 0; e <= num_batches; ++e) {
          expected_phase[static_cast<std::size_t>(e)].push_back(
              lines[static_cast<std::size_t>(e)]);
        }
        ++added;
      }
      if (added == 0) {
        std::fprintf(stderr,
                     "no summary budget is achievable in every churn "
                     "phase\n");
        return 1;
      }
    }
  } else if (args.verify) {
    const cdi::datagen::Scenario& sc = *bundle->scenario;
    cdi::core::Pipeline pipeline(&sc.kg, &sc.lake, sc.oracle.get(),
                                 &sc.topics, bundle->default_options);
    if (args.sweep) {
      auto run = pipeline.Run(sc.input_table, sc.spec.entity_column,
                              sc.exposure_attribute, sc.outcome_attribute);
      if (!run.ok()) {
        std::fprintf(stderr, "canonical run: %s\n",
                     run.status().ToString().c_str());
        return 1;
      }
      auto artifact = std::make_shared<const cdi::core::PipelineResult>(
          *std::move(run));
      auto plan = cdi::core::CdagPlan::Build(std::move(artifact));
      if (!plan.ok()) {
        std::fprintf(stderr, "plan build: %s\n",
                     plan.status().ToString().c_str());
        return 1;
      }
      for (std::size_t i = 0; i < mix.size(); ++i) {
        auto answer = plan->AnswerPair(mix[i].exposure, mix[i].outcome);
        expected[i] =
            answer.ok()
                ? cdi::serve::FormatPairAnswerPayload(*answer)
                : std::string("error code=") +
                      cdi::StatusCodeName(answer.status().code());
      }
    } else {
      for (std::size_t i = 0; i < mix.size(); ++i) {
        auto run = pipeline.Run(sc.input_table, sc.spec.entity_column,
                                mix[i].exposure, mix[i].outcome);
        if (!run.ok()) {
          std::fprintf(stderr, "direct run %s->%s: %s\n",
                       mix[i].exposure.c_str(), mix[i].outcome.c_str(),
                       run.status().ToString().c_str());
          return 1;
        }
        expected[i] = cdi::serve::FormatResultPayload(*run);
      }
      // Summarize mix: one extra entry per budget from 2 to the C-DAG's
      // node count, expected lines built from a fresh canonical run +
      // plan + merge pass — below-floor budgets stay in the mix, the
      // server must reproduce the exact error.
      if (args.summarize_mix) {
        auto run = pipeline.Run(sc.input_table, sc.spec.entity_column,
                                sc.exposure_attribute, sc.outcome_attribute);
        if (!run.ok()) {
          std::fprintf(stderr, "canonical run: %s\n",
                       run.status().ToString().c_str());
          return 1;
        }
        const cdi::core::ClusterDag& cdag = run->build.cdag;
        for (std::size_t k = 2; k <= cdag.num_clusters(); ++k) {
          const auto q = SummarizeEntry(args.scenario, k);
          expected.push_back(
              ExpectedSummaryLine(cdag, k, q.summarize_format));
          mix.push_back(q);
        }
      }
    }
  }

  // ---- Server + warmup. --------------------------------------------------
  cdi::serve::QueryServerOptions options;
  options.num_workers = args.workers;
  options.max_queue_depth = args.queue_depth;
  cdi::serve::QueryServer server(&registry, options);

  std::atomic<std::uint64_t> torn{0};     // payload mismatch vs direct run
  std::atomic<std::uint64_t> errors{0};   // non-OK responses
  std::atomic<std::uint64_t> retried{0};  // queue-full rejections retried
  std::atomic<std::uint64_t> completed{0};  // finished client requests
  std::atomic<int> updates_done{0};
  std::atomic<bool> update_failed{false};

  // Epoch of each churn phase: [0] = the registered bundle, [k] = the
  // bundle published by the k-th update. A served response maps back to
  // its phase (and its expected payload) through its scenario_epoch.
  std::vector<std::atomic<std::uint64_t>> phase_epoch(
      static_cast<std::size_t>(num_batches) + 1);
  for (auto& p : phase_epoch) p.store(0, std::memory_order_relaxed);
  phase_epoch[0].store(bundle->epoch, std::memory_order_release);

  const auto phase_of_epoch = [&](std::uint64_t epoch) -> int {
    for (int spin = 0; spin < 2000; ++spin) {
      for (int e = 0; e <= num_batches; ++e) {
        if (phase_epoch[static_cast<std::size_t>(e)].load(
                std::memory_order_acquire) == epoch) {
          return e;
        }
      }
      // The updater publishes the fresh epoch right after UpdateScenario
      // returns; a racing client can observe it a beat earlier.
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return -1;
  };

  // In sweep mode the planner legitimately rejects some pairs (same
  // cluster, attribute dropped during organization), and a summarize mix
  // carries below-floor budgets; those must match the expected error
  // instead of failing the warmup.
  if (args.warmup) {
    for (std::size_t i = 0; i < mix.size(); ++i) {
      const auto response = server.Execute(mix[i]);
      if (!response.status.ok() &&
          !((args.sweep || args.summarize_mix) && args.verify &&
            ServedLine(response, mix[i].summarize_format) == expected[i])) {
        std::fprintf(stderr, "warmup %s->%s: %s\n", mix[i].exposure.c_str(),
                     mix[i].outcome.c_str(),
                     response.status.ToString().c_str());
        return 1;
      }
    }
  }
  const auto warm_start = server.Metrics();

  const std::uint64_t total = static_cast<std::uint64_t>(args.clients) *
                              static_cast<std::uint64_t>(args.requests);

  // ---- Closed-loop clients. ----------------------------------------------
  std::vector<std::thread> clients;
  clients.reserve(static_cast<std::size_t>(args.clients));
  for (int c = 0; c < args.clients; ++c) {
    clients.emplace_back([&, c] {
      // Per-client seeded schedule: which mix entry each request replays.
      cdi::Rng rng(args.seed + 0x51ED2700 + static_cast<std::uint64_t>(c));
      for (int r = 0; r < args.requests; ++r) {
        if (churn) {
          // Pace the run against the updater: once the fleet's progress
          // crosses an update threshold, wait for that rollover to be
          // published before issuing more queries — otherwise cache-hit
          // traffic (microseconds per request) outruns the updater and
          // every answer would be served from epoch 0.
          const std::uint64_t done =
              completed.load(std::memory_order_relaxed);
          int crossed = 0;
          for (int k = 1; k <= num_batches; ++k) {
            if (done >= total * static_cast<std::uint64_t>(k) /
                            static_cast<std::uint64_t>(num_batches + 1)) {
              ++crossed;
            }
          }
          while (updates_done.load(std::memory_order_acquire) < crossed &&
                 !update_failed.load(std::memory_order_relaxed)) {
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
          }
        }
        const std::size_t pick = rng.UniformInt(mix.size());
        const auto response = server.Execute(mix[pick]);
        if (!response.status.ok()) {
          // Closed-loop clients normally cannot overflow the queue, but a
          // tiny --queue-depth can shed load; retry once then count.
          if (response.status.code() ==
              cdi::StatusCode::kResourceExhausted) {
            retried.fetch_add(1, std::memory_order_relaxed);
            --r;
            continue;
          }
          // Expected planner/summarizer rejections verify like any other
          // response.
          if (args.verify && !churn &&
              ServedLine(response, mix[pick].summarize_format) ==
                  expected[pick]) {
            completed.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          errors.fetch_add(1, std::memory_order_relaxed);
          completed.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        if (args.verify) {
          // Map the answer to its ground truth: in churn mode the served
          // epoch selects which phase's table the answer must match — a
          // stale answer (old data under a new epoch, or vice versa) is
          // exactly a torn response here.
          const std::string* want = nullptr;
          if (churn) {
            const int phase = phase_of_epoch(response.scenario_epoch);
            if (phase >= 0) {
              want = &expected_phase[static_cast<std::size_t>(phase)][pick];
            }
          } else {
            want = &expected[pick];
          }
          if (want == nullptr ||
              ServedLine(response, mix[pick].summarize_format) != *want) {
            torn.fetch_add(1, std::memory_order_relaxed);
          }
        }
        completed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // ---- Churn updater: interleaves B row-batch epoch rollovers with the
  // client traffic, spaced across the run by completed-request count. -----
  std::thread updater;
  if (churn) {
    updater = std::thread([&] {
      for (int k = 0; k < num_batches; ++k) {
        const std::uint64_t threshold =
            total * static_cast<std::uint64_t>(k + 1) /
            static_cast<std::uint64_t>(num_batches + 1);
        while (completed.load(std::memory_order_relaxed) < threshold) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        auto updated = server.UpdateScenario(
            args.scenario, batches[static_cast<std::size_t>(k)]);
        if (!updated.ok()) {
          std::fprintf(stderr, "update %d: %s\n", k + 1,
                       updated.status().ToString().c_str());
          update_failed.store(true, std::memory_order_relaxed);
          return;
        }
        phase_epoch[static_cast<std::size_t>(k) + 1].store(
            (*updated)->epoch, std::memory_order_release);
        updates_done.fetch_add(1, std::memory_order_release);
      }
    });
  }

  for (auto& t : clients) t.join();
  if (updater.joinable()) updater.join();

  const auto warm = server.Metrics().Since(warm_start);
  server.Shutdown();

  // ---- Report. -----------------------------------------------------------
  std::printf("loadgen scenario=%s entities=%zu clients=%d requests=%llu "
              "distinct=%zu workers=%d seed=%llu sweep=%d summarize_mix=%d "
              "churn_rows=%zu churn_batches=%d\n",
              args.scenario.c_str(), spec.num_entities, args.clients,
              static_cast<unsigned long long>(total), mix.size(),
              args.workers, static_cast<unsigned long long>(args.seed),
              args.sweep ? 1 : 0, args.summarize_mix ? 1 : 0,
              args.churn_rows, num_batches);
  std::printf("metrics %s\n", warm.ToLine().c_str());
  std::printf("verify torn=%llu errors=%llu retried=%llu hit_rate=%.4f\n",
              static_cast<unsigned long long>(torn.load()),
              static_cast<unsigned long long>(errors.load()),
              static_cast<unsigned long long>(retried.load()),
              warm.CacheHitRate());

  bool ok = torn.load() == 0 && errors.load() == 0;
  // Epoch rollovers legitimately cool the cache, so the churn mode trades
  // the hit-rate gate for the per-epoch byte-for-byte answer check.
  if (args.warmup && !churn && warm.CacheHitRate() < args.min_hit_rate) {
    std::fprintf(stderr, "FAIL: warm cache hit rate %.4f < %.4f\n",
                 warm.CacheHitRate(), args.min_hit_rate);
    ok = false;
  }
  if (update_failed.load()) {
    std::fprintf(stderr, "FAIL: a row-batch update failed\n");
    ok = false;
  }
  if (churn && warm.epoch_rollovers !=
                   static_cast<std::uint64_t>(num_batches)) {
    std::fprintf(stderr, "FAIL: %llu epoch rollovers, expected %d\n",
                 static_cast<unsigned long long>(warm.epoch_rollovers),
                 num_batches);
    ok = false;
  }
  if (torn.load() != 0) {
    std::fprintf(stderr, "FAIL: %llu torn responses (served != direct run)\n",
                 static_cast<unsigned long long>(torn.load()));
  }
  if (errors.load() != 0) {
    std::fprintf(stderr, "FAIL: %llu error responses\n",
                 static_cast<unsigned long long>(errors.load()));
  }
  std::printf("%s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
