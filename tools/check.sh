#!/usr/bin/env bash
# Pre-PR gate: build + test Release, then AddressSanitizer +
# UndefinedBehaviorSanitizer, and run the full ctest suite on both.
#
#   tools/check.sh            # both configurations
#   tools/check.sh --fast     # Release only (skip the sanitizer build)
#
# The sanitizer configuration matters here: the typed column storage
# works over raw buffers, bit casts and a packed null bitmap, which is
# exactly the kind of code ASan/UBSan catch regressions in.
set -euo pipefail
cd "$(dirname "$0")/.."

FAST=0
[[ "${1:-}" == "--fast" ]] && FAST=1

run_suite() {
  local dir="$1"; shift
  cmake -B "$dir" -S . "$@" >/dev/null
  cmake --build "$dir" -j
  (cd "$dir" && ctest --output-on-failure -j)
}

echo "== Release build + ctest =="
run_suite build -DCMAKE_BUILD_TYPE=Release

if [[ "$FAST" == "0" ]]; then
  echo "== ASan/UBSan build + ctest =="
  run_suite build-asan -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCDI_ASAN=ON -DCDI_UBSAN=ON
fi

echo "== check.sh: all green =="
