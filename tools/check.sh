#!/usr/bin/env bash
# Pre-PR gate: build + test Release, then AddressSanitizer +
# UndefinedBehaviorSanitizer.
#
#   tools/check.sh            # tier1 suites, both configurations
#   tools/check.sh --fast     # tier1 suites, Release only
#   tools/check.sh --slow     # tier1 + slow suites (full fuzz sweeps)
#
# Tests carry ctest labels: `tier1` is the fast always-on gate, `slow`
# holds the long randomized fuzz sweeps (see tests/CMakeLists.txt and
# tools/CMakeLists.txt). The sanitizer configuration matters here: the
# typed column storage works over raw buffers, bit casts and a packed
# null bitmap, which is exactly the kind of code ASan/UBSan catch
# regressions in.
set -euo pipefail
cd "$(dirname "$0")/.."

FAST=0
SLOW=0
for arg in "$@"; do
  case "$arg" in
    --fast) FAST=1 ;;
    --slow) SLOW=1 ;;
    *) echo "usage: tools/check.sh [--fast] [--slow]" >&2; exit 2 ;;
  esac
done

# Report which build flavor was running when a command failed, so a red
# gate pinpoints "Release" vs "ASan/UBSan" without scrolling.
FLAVOR="setup"
trap 'status=$?; [[ $status -ne 0 ]] &&
  echo "== check.sh: FAILED in flavor: $FLAVOR (exit $status) ==" >&2 ||
  true' EXIT

run_suite() {
  local dir="$1"; shift
  cmake -B "$dir" -S . "$@" >/dev/null
  cmake --build "$dir" -j
  # Keep -L before the bare -j: ctest's optional-valued -j would
  # otherwise swallow "-L" and silently drop the label filter.
  (cd "$dir" && ctest --output-on-failure -L tier1 -j)
  if [[ "$SLOW" == "1" ]]; then
    (cd "$dir" && ctest --output-on-failure -L slow -j)
  fi
}

FLAVOR="Release"
echo "== Release build + ctest (tier1) =="
run_suite build -DCMAKE_BUILD_TYPE=Release

if [[ "$FAST" == "0" ]]; then
  FLAVOR="ASan/UBSan"
  echo "== ASan/UBSan build + ctest (tier1) =="
  run_suite build-asan -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCDI_ASAN=ON -DCDI_UBSAN=ON
fi

FLAVOR="done"
echo "== check.sh: all green =="
