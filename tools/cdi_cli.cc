// cdi_cli — run the Causal Data Integration pipeline on CSV inputs.
//
// Usage:
//   cdi_cli --input cohort.csv --entity-col id --exposure t --outcome o \
//           [--kg triples.csv] [--lake table.csv]... \
//           [--knowledge domain.txt] [--clusters K] [--num-threads N] \
//           [--out-prefix cdi]
//
// Inputs:
//   --input      the analyst's table (must contain the entity, exposure
//                and outcome columns)
//   --kg         optional knowledge-graph triples CSV with columns
//                entity,property,value (repeatable)
//   --lake       optional data-lake table CSV (repeatable; any string
//                column can serve as a join key)
//   --knowledge  optional domain-knowledge file for the causal oracle and
//                topic lexicon; line formats:
//                    edge <concept_a> <concept_b>     # a causes b
//                    alias <attribute> <concept>
//                    topic <name> <keyword> [keyword...]
//   --clusters   target number of (non-exposure/outcome) clusters;
//                default: VARCLUS's eigenvalue criterion decides
//   --num-threads  worker threads for the CI-test stages; the result is
//                bitwise-identical at any thread count (default 1)
//
// Outputs: <prefix>_augmented.csv (the organized, augmented dataset),
// <prefix>_cdag.dot (the C-DAG), and a report on stdout.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "core/pipeline.h"
#include "graph/dot.h"
#include "knowledge/data_lake.h"
#include "knowledge/knowledge_graph.h"
#include "knowledge/loaders.h"
#include "knowledge/text_oracle.h"
#include "knowledge/topic_model.h"
#include "table/csv.h"

namespace {

struct Args {
  std::string input;
  std::string entity_col;
  std::string exposure;
  std::string outcome;
  std::vector<std::string> kg_files;
  std::vector<std::string> lake_files;
  std::string knowledge_file;
  int clusters = -1;
  int num_threads = 1;
  std::string out_prefix = "cdi";
};

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --input T.csv --entity-col C --exposure T "
               "--outcome O [--kg triples.csv]... [--lake table.csv]... "
               "[--knowledge domain.txt] [--clusters K] [--num-threads N] "
               "[--out-prefix P]\n",
               argv0);
  return 2;
}

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (flag == "--input" && (v = next())) {
      args->input = v;
    } else if (flag == "--entity-col" && (v = next())) {
      args->entity_col = v;
    } else if (flag == "--exposure" && (v = next())) {
      args->exposure = v;
    } else if (flag == "--outcome" && (v = next())) {
      args->outcome = v;
    } else if (flag == "--kg" && (v = next())) {
      args->kg_files.push_back(v);
    } else if (flag == "--lake" && (v = next())) {
      args->lake_files.push_back(v);
    } else if (flag == "--knowledge" && (v = next())) {
      args->knowledge_file = v;
    } else if (flag == "--clusters" && (v = next())) {
      args->clusters = std::atoi(v);
    } else if (flag == "--num-threads" && (v = next())) {
      args->num_threads = std::atoi(v);
    } else if (flag == "--out-prefix" && (v = next())) {
      args->out_prefix = v;
    } else {
      std::fprintf(stderr, "unknown or incomplete flag: %s\n", flag.c_str());
      return false;
    }
  }
  return !args->input.empty() && !args->entity_col.empty() &&
         !args->exposure.empty() && !args->outcome.empty();
}

int Run(const Args& args) {
  auto input = cdi::table::ReadCsvFile(args.input);
  if (!input.ok()) {
    std::fprintf(stderr, "reading %s: %s\n", args.input.c_str(),
                 input.status().ToString().c_str());
    return 1;
  }

  cdi::knowledge::KnowledgeGraph kg;
  for (const auto& f : args.kg_files) {
    auto s = cdi::knowledge::LoadKgTriplesCsv(f, &kg);
    if (!s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
  }
  cdi::knowledge::DataLake lake;
  for (const auto& f : args.lake_files) {
    auto t = cdi::table::ReadCsvFile(f);
    if (!t.ok()) {
      std::fprintf(stderr, "reading %s: %s\n", f.c_str(),
                   t.status().ToString().c_str());
      return 1;
    }
    t->set_name(f);
    lake.AddTable(std::move(*t));
  }

  // Domain knowledge -> oracle + topics. With no file, the oracle knows
  // nothing and the build degrades to data-only augmentation + naming.
  cdi::knowledge::DomainKnowledge dk;
  if (!args.knowledge_file.empty()) {
    auto loaded = cdi::knowledge::LoadDomainKnowledge(args.knowledge_file);
    if (!loaded.ok()) {
      std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
      return 1;
    }
    dk = std::move(*loaded);
  }
  auto concepts = cdi::knowledge::ConceptGraph(dk);
  if (!concepts.ok()) {
    std::fprintf(stderr, "%s\n", concepts.status().ToString().c_str());
    return 1;
  }
  cdi::knowledge::OracleOptions oracle_options;
  cdi::knowledge::TextCausalOracle oracle(*concepts, oracle_options);
  for (const auto& [attr, concept_name] : dk.aliases) {
    oracle.RegisterAlias(attr, concept_name);
  }
  cdi::knowledge::TopicModel topics;
  for (const auto& [name, keywords] : dk.topics) {
    topics.AddTopic(name, keywords);
  }

  cdi::core::PipelineOptions options;
  if (args.clusters > 0) {
    options.builder.varclus.min_clusters = args.clusters;
    options.builder.varclus.max_clusters = args.clusters;
  }
  options.num_threads = args.num_threads;
  cdi::core::Pipeline pipeline(&kg, &lake, &oracle, &topics, options);
  auto run = pipeline.Run(*input, args.entity_col, args.exposure,
                          args.outcome);
  if (!run.ok()) {
    std::fprintf(stderr, "pipeline: %s\n", run.status().ToString().c_str());
    return 1;
  }

  // ---- Report. ------------------------------------------------------------
  std::printf("extracted %zu candidate attributes (%zu kept)\n",
              run->extraction.attributes.size(),
              run->organization.organized.num_cols() - input->num_cols());
  for (const auto& a : run->extraction.attributes) {
    std::printf("  %-24s %-18s corrT=%.2f corrO=%.2f %s%s\n", a.name.c_str(),
                a.source.c_str(), a.corr_with_exposure, a.corr_with_outcome,
                a.kept ? "kept" : "dropped:", a.kept ? "" : a.drop_reason.c_str());
  }
  if (!run->organization.dropped_fd_attributes.empty()) {
    std::printf("dropped for functional dependencies:");
    for (const auto& d : run->organization.dropped_fd_attributes) {
      std::printf(" %s", d.c_str());
    }
    std::printf("\n");
  }
  for (const auto& m : run->organization.missingness) {
    std::printf("missingness %-20s %.1f%%%s\n", m.attribute.c_str(),
                100 * m.missing_fraction,
                m.selection_bias_risk ? "  (selection-bias risk, IPW on)"
                                      : "");
  }
  std::printf("\nC-DAG (%zu clusters, %zu edges):\n",
              run->build.cdag.num_clusters(), run->build.claims.size());
  for (const auto& [from, to] : run->build.claims) {
    std::printf("  %s -> %s\n", from.c_str(), to.c_str());
  }
  std::printf("mediators:");
  for (const auto& m : run->build.cdag.MediatorClusters()) {
    std::printf(" %s", m.c_str());
  }
  std::printf("\nconfounders:");
  for (const auto& c : run->build.cdag.ConfounderClusters()) {
    std::printf(" %s", c.c_str());
  }
  std::printf("\n\neffect of %s on %s (standardized):\n",
              args.exposure.c_str(), args.outcome.c_str());
  std::printf("  total  (backdoor adjusted): %+.4f (p=%.3g)\n",
              run->total_effect.effect, run->total_effect.p_value);
  std::printf("  direct (mediators adjusted): %+.4f (p=%.3g)\n",
              run->direct_effect.effect, run->direct_effect.p_value);

  // ---- Artifacts. ----------------------------------------------------------
  const std::string csv_path = args.out_prefix + "_augmented.csv";
  auto ws = cdi::table::WriteCsvFile(run->organization.organized, csv_path);
  if (!ws.ok()) {
    std::fprintf(stderr, "%s\n", ws.ToString().c_str());
    return 1;
  }
  cdi::graph::DotOptions dot;
  dot.highlighted = {run->build.cdag.exposure_cluster(),
                     run->build.cdag.outcome_cluster()};
  const std::string dot_path = args.out_prefix + "_cdag.dot";
  std::ofstream(dot_path) << ToDot(run->build.cdag.graph(), dot);
  std::printf("\nwrote %s and %s\n", csv_path.c_str(), dot_path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) return Usage(argv[0]);
  return Run(args);
}
