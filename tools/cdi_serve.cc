// cdi_serve — interactive line-protocol server over registered scenarios.
//
// Usage:
//   cdi_serve [--workers N] [--queue-depth D] [--pipeline-threads N]
//             [--entities N] [--scenarios covid,flights]
//             [--registry-shards N] [--memory-budget-kb K]
//
// Preloads the named benchmark scenarios (input table, knowledge graph,
// data lake, oracle, topics, shared sufficient statistics) into a
// ScenarioRegistry, then answers causal queries from stdin, one command
// per line:
//
//   query <scenario> <exposure> <outcome> [timeout=<seconds>]
//                  [mode=planned|full]
//   summarize <scenario> k=<n> [format=dot|json] [timeout=<seconds>]
//                  # k-node C-DAG summary (CaGreS-style greedy merge),
//                  # rendered as DOT or JSON in a one-line payload
//   update <scenario> rows=<csv-path>   # streaming row-batch ingest
//   register <name> input=<csv> entity=<col> [kg=<csv>]... [lake=<csv>]...
//            [knowledge=<file>] [exposure=<attr>] [outcome=<attr>]
//            [replace]                  # runtime registration from files
//   generate <name> grid=<cell> [entities=<n>] [seed=<s>] [replace]
//                                       # fast path: materialize a named
//                                       # generator-grid cell in process
//   unregister <name>                   # runtime removal
//   metrics        # one-line MetricsSnapshot
//   scenarios      # registered scenarios and their numeric attributes
//   quit
//
// --registry-shards / --memory-budget-kb configure the sharded registry:
// with a budget, least-recently-used scenarios are evicted when the
// byte-accounted charge exceeds it; evicted names answer queries with a
// descriptive NotFound until re-registered (a `generate ... replace` of
// the same cell rebuilds bit-identical data).
//
// `update` appends the CSV's rows (header must match the scenario's
// input schema) under a fresh epoch: sufficient statistics are
// delta-refreshed rather than recomputed, in-flight queries finish
// against the old snapshot, and superseded cache entries are evicted on
// the next touch. The response line reports the new epoch and row count:
//   updated scenario=covid epoch=3 rows_appended=25 rows=175 latency_us=...
//
// mode=planned answers from the scenario's cached C-DAG plan (built once
// per scenario epoch under single-flight): adjustment sets read off the
// one C-DAG, effects from shared sufficient statistics — microsecond
// steady-state latency instead of a full pipeline run per cache miss.
//
// Every response is exactly one '\n'-terminated line, emitted with a
// single write, so responses never interleave or tear. Identical queries
// are answered from the single-flight result cache (source=hit /
// source=coalesced in the response line).
//
// Example session:
//   $ build/tools/cdi_serve --entities 200
//   ready scenarios=covid,flights workers=4 queue_depth=64
//   query covid country_code covid_death_rate
//   ok scenario=covid T=country_code O=covid_death_rate source=executed \
//      direct=... fingerprint=... latency_us=...
//   query covid country_code covid_death_rate
//   ok ... source=hit ... latency_us=...

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "common/timer.h"
#include "core/pipeline.h"
#include "datagen/covid.h"
#include "datagen/flights.h"
#include "datagen/grid.h"
#include "datagen/scenario.h"
#include "serve/bundle_loader.h"
#include "serve/line_protocol.h"
#include "serve/query_server.h"
#include "serve/scenario_registry.h"
#include "table/csv.h"

namespace {

struct Args {
  int workers = 4;
  std::size_t queue_depth = 64;
  int pipeline_threads = 1;
  std::size_t entities = 0;  // 0 = scenario default
  std::vector<std::string> scenarios = {"covid", "flights"};
  std::size_t registry_shards = 8;
  std::size_t memory_budget_kb = 0;  // 0 = unlimited
};

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--workers N] [--queue-depth D] "
               "[--pipeline-threads N] [--entities N] "
               "[--scenarios covid,flights] "
               "[--registry-shards N] [--memory-budget-kb K]\n",
               argv0);
  return 2;
}

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (flag == "--workers" && (v = next())) {
      args->workers = std::atoi(v);
    } else if (flag == "--queue-depth" && (v = next())) {
      args->queue_depth = static_cast<std::size_t>(std::atoll(v));
    } else if (flag == "--pipeline-threads" && (v = next())) {
      args->pipeline_threads = std::atoi(v);
    } else if (flag == "--entities" && (v = next())) {
      args->entities = static_cast<std::size_t>(std::atoll(v));
    } else if (flag == "--scenarios" && (v = next())) {
      args->scenarios = cdi::Split(v, ',');
    } else if (flag == "--registry-shards" && (v = next())) {
      args->registry_shards = static_cast<std::size_t>(std::atoll(v));
    } else if (flag == "--memory-budget-kb" && (v = next())) {
      args->memory_budget_kb = static_cast<std::size_t>(std::atoll(v));
    } else {
      std::fprintf(stderr, "unknown or incomplete flag: %s\n", flag.c_str());
      return false;
    }
  }
  return !args->scenarios.empty();
}

/// Single-write line emission: one fwrite + flush per response, so
/// concurrent stderr logging can never shear a protocol line.
void EmitLine(std::string line) {
  line.push_back('\n');
  std::fwrite(line.data(), 1, line.size(), stdout);
  std::fflush(stdout);
}

cdi::Result<std::unique_ptr<const cdi::datagen::Scenario>> BuildNamed(
    const std::string& name, std::size_t entities) {
  cdi::datagen::ScenarioSpec spec;
  if (name == "covid") {
    spec = cdi::datagen::CovidSpec();
  } else if (name == "flights") {
    spec = cdi::datagen::FlightsSpec();
  } else {
    return cdi::Status::InvalidArgument(
        "unknown scenario '" + name + "' (available: covid, flights)");
  }
  if (entities > 0) spec.num_entities = entities;
  CDI_ASSIGN_OR_RETURN(auto scenario, cdi::datagen::BuildScenario(spec));
  return std::unique_ptr<const cdi::datagen::Scenario>(std::move(scenario));
}

/// "error scenario=<name> code=<code> message=\"...\"" for a failed
/// register/generate/unregister/update.
void EmitError(const std::string& scenario, const cdi::Status& status) {
  EmitLine("error scenario=" + scenario + " code=" +
           std::string(cdi::StatusCodeName(status.code())) + " message=\"" +
           status.message() + "\"");
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) return Usage(argv[0]);

  cdi::serve::RegistryOptions registry_options;
  registry_options.num_shards = args.registry_shards;
  registry_options.memory_budget_bytes = args.memory_budget_kb * 1024;
  cdi::serve::ScenarioRegistry registry(registry_options);
  for (const auto& name : args.scenarios) {
    auto scenario = BuildNamed(name, args.entities);
    if (!scenario.ok()) {
      std::fprintf(stderr, "%s\n", scenario.status().ToString().c_str());
      return 1;
    }
    auto registered =
        registry.Register(name, std::move(scenario).value());
    if (!registered.ok()) {
      std::fprintf(stderr, "%s\n", registered.status().ToString().c_str());
      return 1;
    }
  }

  cdi::serve::QueryServerOptions options;
  options.num_workers = args.workers;
  options.max_queue_depth = args.queue_depth;
  options.pipeline_threads = args.pipeline_threads;
  cdi::serve::QueryServer server(&registry, options);

  {
    std::string ready = "ready scenarios=";
    const auto names = registry.Names();
    for (std::size_t i = 0; i < names.size(); ++i) {
      if (i > 0) ready += ",";
      ready += names[i];
    }
    ready += " workers=" + std::to_string(args.workers) +
             " queue_depth=" + std::to_string(args.queue_depth);
    EmitLine(ready);
  }

  std::string line;
  while (std::getline(std::cin, line)) {
    auto cmd = cdi::serve::ParseCommandLine(line);
    if (!cmd.ok()) {
      if (!cmd.status().message().empty()) {
        EmitLine("error code=" +
                 std::string(cdi::StatusCodeName(cmd.status().code())) +
                 " message=\"" + cmd.status().message() + "\"");
      }
      continue;  // blank line / comment
    }
    switch (cmd->kind) {
      case cdi::serve::ServerCommand::Kind::kQuery:
      case cdi::serve::ServerCommand::Kind::kSummarize: {
        const auto response = server.Execute(cmd->query);
        EmitLine(cdi::serve::FormatResponseLine(cmd->query, response));
        break;
      }
      case cdi::serve::ServerCommand::Kind::kMetrics:
        EmitLine("metrics " + server.Metrics().ToLine());
        break;
      case cdi::serve::ServerCommand::Kind::kScenarios: {
        for (const auto& name : registry.Names()) {
          auto bundle = registry.Snapshot(name);
          if (!bundle.ok()) continue;
          std::string out = "scenario name=" + name +
                            " epoch=" + std::to_string((*bundle)->epoch) +
                            " rows=" +
                            std::to_string((*bundle)->input->num_rows()) +
                            " attributes=";
          const auto& attrs = (*bundle)->numeric_attributes;
          for (std::size_t i = 0; i < attrs.size(); ++i) {
            if (i > 0) out += ",";
            out += attrs[i];
          }
          EmitLine(out);
        }
        break;
      }
      case cdi::serve::ServerCommand::Kind::kUpdate: {
        cdi::Stopwatch sw;
        auto batch = cdi::table::ReadCsvFile(cmd->update_rows_path);
        if (!batch.ok()) {
          EmitError(cmd->update_scenario, batch.status());
          break;
        }
        auto updated = server.UpdateScenario(cmd->update_scenario, *batch);
        if (!updated.ok()) {
          EmitError(cmd->update_scenario, updated.status());
          break;
        }
        char tail[64];
        std::snprintf(tail, sizeof(tail), " latency_us=%.1f",
                      sw.ElapsedSeconds() * 1e6);
        EmitLine("updated scenario=" + cmd->update_scenario + " epoch=" +
                 std::to_string((*updated)->epoch) + " rows_appended=" +
                 std::to_string((*updated)->rows_appended) + " rows=" +
                 std::to_string((*updated)->input->num_rows()) + tail);
        break;
      }
      case cdi::serve::ServerCommand::Kind::kRegister: {
        cdi::Stopwatch sw;
        cdi::serve::ScenarioFileInputs inputs;
        inputs.input_csv = cmd->register_input;
        inputs.entity_column = cmd->register_entity;
        inputs.kg_csvs = cmd->register_kg;
        inputs.lake_csvs = cmd->register_lake;
        inputs.knowledge_file = cmd->register_knowledge;
        inputs.exposure = cmd->register_exposure;
        inputs.outcome = cmd->register_outcome;
        // File-loaded scenarios have no ground-truth cluster DAG, so the
        // evaluation defaults don't apply: pass plain pipeline options.
        auto bundle = server.RegisterScenario(
            cmd->target,
            [&]() -> cdi::Result<
                      std::shared_ptr<const cdi::datagen::Scenario>> {
              CDI_ASSIGN_OR_RETURN(
                  auto scenario,
                  cdi::serve::LoadScenarioFromFiles(cmd->target, inputs));
              return std::shared_ptr<const cdi::datagen::Scenario>(
                  std::move(scenario));
            },
            cmd->replace, cdi::core::PipelineOptions{});
        if (!bundle.ok()) {
          EmitError(cmd->target, bundle.status());
          break;
        }
        char tail[64];
        std::snprintf(tail, sizeof(tail), " latency_us=%.1f",
                      sw.ElapsedSeconds() * 1e6);
        EmitLine("registered scenario=" + cmd->target + " epoch=" +
                 std::to_string((*bundle)->epoch) + " rows=" +
                 std::to_string((*bundle)->input->num_rows()) + " bytes=" +
                 std::to_string((*bundle)->memory_bytes) + tail);
        break;
      }
      case cdi::serve::ServerCommand::Kind::kGenerate: {
        cdi::Stopwatch sw;
        // Grid scenarios carry ground truth, so the evaluation defaults
        // (cluster-count bracket from the true C-DAG) apply unchanged.
        auto bundle = server.RegisterScenario(
            cmd->target,
            [&]() -> cdi::Result<
                      std::shared_ptr<const cdi::datagen::Scenario>> {
              CDI_ASSIGN_OR_RETURN(
                  auto scenario,
                  cdi::datagen::BuildGridScenario(cmd->grid_cell,
                                                  cmd->generate_entities,
                                                  cmd->generate_seed));
              return std::shared_ptr<const cdi::datagen::Scenario>(
                  std::move(scenario));
            },
            cmd->replace);
        if (!bundle.ok()) {
          EmitError(cmd->target, bundle.status());
          break;
        }
        char tail[64];
        std::snprintf(tail, sizeof(tail), " latency_us=%.1f",
                      sw.ElapsedSeconds() * 1e6);
        EmitLine("generated scenario=" + cmd->target + " grid=" +
                 cmd->grid_cell + " epoch=" +
                 std::to_string((*bundle)->epoch) + " rows=" +
                 std::to_string((*bundle)->input->num_rows()) + " bytes=" +
                 std::to_string((*bundle)->memory_bytes) + tail);
        break;
      }
      case cdi::serve::ServerCommand::Kind::kUnregister: {
        const auto status = server.UnregisterScenario(cmd->target);
        if (!status.ok()) {
          EmitError(cmd->target, status);
          break;
        }
        EmitLine("unregistered scenario=" + cmd->target);
        break;
      }
      case cdi::serve::ServerCommand::Kind::kQuit:
        server.Shutdown();
        EmitLine("bye " + server.Metrics().ToLine());
        return 0;
    }
  }
  server.Shutdown();
  return 0;
}
