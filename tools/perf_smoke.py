#!/usr/bin/env python3
"""Perf smoke gate for the kernel and serving-layer benchmarks.

Runs the bench_micro kernel benchmarks (blocked covariance, reference
kernel, incremental append) plus the query-serving paths (cache hit,
cache miss, single-flight coalescing, planned-query steady state, C-DAG
artifact build, summarization build and cached-summary hit) with a short
--benchmark_min_time, then compares per-benchmark cpu_time against the
checked-in baseline
(BENCH_PR10.json at the repo root). Exits non-zero when the benchmark
binary crashes or any benchmark regresses by more than --max-regression
(default 3x) — a deliberately loose bound that tolerates runner-to-runner
variance while still catching algorithmic regressions (e.g. the blocked
kernel silently falling back to a quadratic path).

Usage:
  perf_smoke.py --bench build/bench/bench_micro [--baseline BENCH_PR10.json]
  perf_smoke.py --bench build/bench/bench_micro --write-baseline BENCH_PR10.json
"""

import argparse
import json
import subprocess
import sys

# The benchmarks guarded by this gate: the statistics kernels plus the
# serving-layer paths. Unrelated benches (joins, pipeline end-to-end)
# stay out so they don't add noise.
BENCH_FILTER = (
    "BM_CorrelationMatrix|BM_CovarianceReference|BM_CovarianceBlockedSweep|"
    "BM_SufficientStatsAppend|BM_AppendRows|BM_ServeCacheHit|"
    "BM_ServeCacheMiss|BM_ServeSingleFlight|BM_ServePlannedQuery|"
    "BM_CdagArtifactBuild|BM_UpdateScenario|BM_WarmStartDiscovery|"
    "BM_RegisterScenario|BM_RegistryLookupSharded|BM_EvictionChurn|"
    "BM_GramSimd|BM_PartialCorrBatched|BM_PcSkeletonBatched|"
    "BM_SummarizeDag|BM_ServeSummaryHit"
)

TIME_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def run_benchmarks(bench, min_time):
    cmd = [
        bench,
        f"--benchmark_filter={BENCH_FILTER}",
        f"--benchmark_min_time={min_time}",
        "--benchmark_format=json",
    ]
    try:
        proc = subprocess.run(cmd, capture_output=True, text=True, timeout=1800)
    except (OSError, subprocess.TimeoutExpired) as e:
        print(f"FAIL: could not run {bench}: {e}", file=sys.stderr)
        sys.exit(1)
    if proc.returncode != 0:
        print(f"FAIL: {bench} exited with {proc.returncode}", file=sys.stderr)
        sys.stderr.write(proc.stderr)
        sys.exit(1)
    try:
        report = json.loads(proc.stdout)
    except json.JSONDecodeError as e:
        print(f"FAIL: benchmark output is not JSON: {e}", file=sys.stderr)
        sys.exit(1)
    results = {}
    for b in report.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        unit = TIME_UNIT_NS.get(b.get("time_unit", "ns"), 1.0)
        # UseRealTime benchmarks (threaded kernels) are compared on wall
        # clock; the default main-thread cpu_time would not see pool work.
        key = "real_time" if b["name"].endswith("/real_time") else "cpu_time"
        results[b["name"]] = b[key] * unit
    if not results:
        print("FAIL: no benchmarks matched the filter", file=sys.stderr)
        sys.exit(1)
    return results


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--bench", required=True, help="path to bench_micro")
    ap.add_argument("--baseline", default="BENCH_PR10.json")
    ap.add_argument("--write-baseline", metavar="PATH",
                    help="write the current run as the new baseline and exit")
    ap.add_argument("--max-regression", type=float, default=3.0)
    ap.add_argument("--min-time", default="0.05")
    args = ap.parse_args()

    results = run_benchmarks(args.bench, args.min_time)

    if args.write_baseline:
        payload = {
            "note": "cpu_time in nanoseconds; written by tools/perf_smoke.py",
            "benchmarks": {k: round(v, 1) for k, v in sorted(results.items())},
        }
        with open(args.write_baseline, "w") as f:
            json.dump(payload, f, indent=2)
            f.write("\n")
        print(f"wrote baseline with {len(results)} entries to "
              f"{args.write_baseline}")
        return 0

    try:
        with open(args.baseline) as f:
            baseline = json.load(f)["benchmarks"]
    except (OSError, KeyError, json.JSONDecodeError) as e:
        print(f"FAIL: cannot read baseline {args.baseline}: {e}",
              file=sys.stderr)
        return 1

    failed = []
    for name, base_ns in sorted(baseline.items()):
        now_ns = results.get(name)
        if now_ns is None:
            failed.append(f"{name}: missing from current run")
            continue
        ratio = now_ns / base_ns if base_ns > 0 else float("inf")
        status = "OK" if ratio <= args.max_regression else "REGRESSION"
        print(f"  {status:10s} {name:55s} {base_ns:14.1f} -> {now_ns:14.1f} ns"
              f"  ({ratio:.2f}x)")
        if ratio > args.max_regression:
            failed.append(f"{name}: {ratio:.2f}x (limit "
                          f"{args.max_regression:.1f}x)")
    for name in sorted(set(results) - set(baseline)):
        print(f"  NEW        {name:55s} {'':>14s}    {results[name]:14.1f} ns")

    if failed:
        print(f"\nFAIL: {len(failed)} benchmark(s) regressed:",
              file=sys.stderr)
        for f_ in failed:
            print(f"  {f_}", file=sys.stderr)
        return 1
    print(f"\nperf smoke OK: {len(baseline)} benchmarks within "
          f"{args.max_regression:.1f}x of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
