// cdi_fuzz — randomized-scenario fuzzing of the CDI pipeline against its
// own ground-truth generator.
//
// Usage:
//   cdi_fuzz --trials 200 --seed 1 [--num-threads N] [--no-metamorphic]
//            [--no-summarize]
//            [--inject-bug none|flip-outcome-edges|flip-true-edge]
//            [--min-entities N] [--max-entities N] [--max-clusters K]
//            [--direct-effect-tol X] [--quiet]
//
// Each trial derives a random scenario from its seed (random cluster DAG
// -> SCM -> input table + knowledge sources), runs the full CATER
// pipeline, and verifies oracle checks (adjustment-set d-separation,
// near-zero direct effect, edge P/R/F1 floors) plus metamorphic and
// differential relations (permutation/affine invariance, cached-vs-
// uncached and 1-vs-N-thread bitwise identity, seed stability).
//
// On failure it prints a minimized single-seed reproducer command line and
// exits 1. --inject-bug plants an intentional discovery bug to prove the
// checks can catch one.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "testing/harness.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--trials N] [--seed S] [--num-threads N] "
               "[--no-metamorphic] [--no-summarize] [--inject-bug KIND] "
               "[--min-entities N] "
               "[--max-entities N] [--max-clusters K] "
               "[--direct-effect-tol X] [--max-failed-trials N] [--quiet]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t trials = 50;
  uint64_t seed = 1;
  bool quiet = false;
  cdi::testing::FuzzOptions options;

  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (flag == "--trials" && (v = next())) {
      trials = static_cast<std::size_t>(std::atoll(v));
    } else if (flag == "--seed" && (v = next())) {
      seed = static_cast<uint64_t>(std::atoll(v));
    } else if (flag == "--num-threads" && (v = next())) {
      options.num_threads = std::atoi(v);
    } else if (flag == "--no-metamorphic") {
      options.run_metamorphic = false;
    } else if (flag == "--no-summarize") {
      options.run_summarization = false;
    } else if (flag == "--inject-bug" && (v = next())) {
      auto kind = cdi::testing::ParseFaultKind(v);
      if (!kind.ok()) {
        std::fprintf(stderr, "%s\n", kind.status().ToString().c_str());
        return 2;
      }
      options.fault = *kind;
    } else if (flag == "--min-entities" && (v = next())) {
      options.scenario.min_entities =
          static_cast<std::size_t>(std::atoll(v));
    } else if (flag == "--max-entities" && (v = next())) {
      options.scenario.max_entities =
          static_cast<std::size_t>(std::atoll(v));
    } else if (flag == "--max-clusters" && (v = next())) {
      options.scenario.max_clusters =
          static_cast<std::size_t>(std::atoll(v));
    } else if (flag == "--direct-effect-tol" && (v = next())) {
      options.checks.direct_effect_tolerance = std::atof(v);
    } else if (flag == "--max-failed-trials" && (v = next())) {
      options.max_failed_trials = static_cast<std::size_t>(std::atoll(v));
    } else if (flag == "--quiet") {
      quiet = true;
    } else {
      return Usage(argv[0]);
    }
  }
  if (options.scenario.max_entities < options.scenario.min_entities) {
    options.scenario.max_entities = options.scenario.min_entities;
  }

  const auto summary = cdi::testing::RunFuzz(
      seed, trials, options, quiet ? nullptr : &std::cout);
  if (!summary.within_budget(options.max_failed_trials)) {
    std::fprintf(stderr, "cdi_fuzz: %zu/%zu trials FAILED (budget %zu)\n",
                 summary.failed_trials, summary.trials,
                 options.max_failed_trials);
    return 1;
  }
  return 0;
}
