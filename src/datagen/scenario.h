#ifndef CDI_DATAGEN_SCENARIO_H_
#define CDI_DATAGEN_SCENARIO_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "datagen/scm.h"
#include "graph/digraph.h"
#include "knowledge/data_lake.h"
#include "knowledge/knowledge_graph.h"
#include "knowledge/text_oracle.h"
#include "knowledge/topic_model.h"
#include "table/table.h"

namespace cdi::datagen {

/// Where a generated attribute is observable from.
enum class Placement {
  kInputTable,      ///< the analyst already has it
  kKnowledgeGraph,  ///< a per-entity property in the simulated DBpedia
  kLakeTable,       ///< a column of some simulated open-data table
};

/// One low-level attribute inside a cluster. The first attribute of each
/// cluster is its *driver*: cross-cluster causal influence flows through it
/// (parent attributes -> driver -> sibling members), which yields a
/// well-defined full attribute-level DAG.
struct AttributeSpec {
  std::string name;
  /// Loading of a member on its cluster driver (ignored for the driver).
  double loading = 1.0;
  Placement placement = Placement::kKnowledgeGraph;
  /// Target table name when placement == kLakeTable.
  std::string lake_table;
  /// Base missing-completely-at-random rate.
  double missing_rate = 0.0;
  /// Extra missingness for high values (missing-not-at-random): rows with
  /// positive z-score go missing with additional probability
  /// mnar_strength * min(z, 2)/2 — the paper's selection-bias failure mode.
  double mnar_strength = 0.0;
  /// Fraction of cells corrupted into gross outliers (x50 scale).
  double outlier_rate = 0.0;
  /// Binarize the observed column through a logistic draw: each non-missing
  /// cell becomes 1 with probability sigmoid(1.7 * z) of its *clean* value's
  /// z-score, else 0 (the grid's binary-logistic outcome family). Applied
  /// after quality injection, so MNAR selection still acts on the latent
  /// continuous value; missing cells stay missing. clean_data keeps the
  /// latent continuous column.
  bool binary_logistic = false;
};

struct ClusterSpec {
  std::string name;
  /// Attributes; attributes[0] is the driver.
  std::vector<AttributeSpec> attributes;
  /// Structural-noise scale of the driver equation.
  double driver_noise = 1.0;
  /// Force Gaussian noise on this cluster's driver even when the scenario
  /// noise is non-Gaussian (mixed-noise scenarios degrade LiNGAM).
  bool gaussian_driver = false;
  /// Noise scale of member equations.
  double member_noise = 0.5;
  /// Keywords for topic assignment (attribute names are added
  /// automatically).
  std::vector<std::string> topic_keywords;
};

/// Cluster-level causal edge with its structural coefficient (applied to
/// the standardized mean of the parent cluster's attributes).
struct ClusterEdgeSpec {
  std::string from;
  std::string to;
  double coef = 0.5;
  /// Quadratic component (on parent^2 - 1): invisible to linear methods
  /// and Pearson CI tests. Edges whose signal is mostly quadratic are
  /// "relations not present in the data" — the text oracle still knows
  /// them, the data-centric baselines do not.
  double quad = 0.0;
};

/// An attribute functionally determined by the entity itself (e.g.
/// governor, international calling code). These violate strict positivity
/// w.r.t. the exposure and must be discarded by the Data Organizer.
struct FdAttributeSpec {
  std::string name;
  bool numeric = false;
  Placement placement = Placement::kKnowledgeGraph;
  std::string lake_table;
};

struct ScenarioSpec {
  std::string name;
  std::size_t num_entities = 500;
  /// Entity naming: "<prefix>_<index>"; e.g. "Country_042".
  std::string entity_prefix = "Entity";
  /// Name of the entity key column in the input table.
  std::string entity_column = "entity";
  std::string exposure_cluster;
  std::string outcome_cluster;
  /// Clusters in topological order of `edges`.
  std::vector<ClusterSpec> clusters;
  std::vector<ClusterEdgeSpec> edges;
  std::vector<FdAttributeSpec> fd_attributes;
  NoiseKind noise = NoiseKind::kGaussian;
  /// Member equations use Gaussian noise even when `noise` is
  /// non-Gaussian (dilutes LiNGAM's advantage, as real aggregates do).
  bool gaussian_members = false;
  /// Exposure codes follow Gaussian quantiles instead of uniform spacing
  /// (with Gaussian structural noise this makes the SEM unidentifiable
  /// for LiNGAM — the paper's COVID-19 regime).
  bool gaussian_exposure_code = false;
  knowledge::OracleOptions oracle;
  uint64_t seed = 7;
  /// Fraction of duplicated rows injected into every lake table.
  double duplicate_row_rate = 0.04;
  /// Fraction of input-table entity cells written as an alias spelling
  /// ("C042" instead of "Country_042") — exercises entity linking.
  double alias_fraction = 0.25;
  /// Lake tables listed here are emitted in one-to-many form (three noisy
  /// observation rows per entity) — exercises aggregation in the join.
  std::set<std::string> one_to_many_tables;
};

/// A fully materialized benchmark scenario.
struct Scenario {
  ScenarioSpec spec;
  /// Ground-truth cluster-level causal DAG (the paper's C-DAG).
  graph::Digraph cluster_dag;
  /// Ground-truth full attribute-level DAG.
  graph::Digraph attribute_dag;
  /// Cluster name -> member attribute names (driver first).
  std::map<std::string, std::vector<std::string>> cluster_members;
  /// Attribute name -> owning cluster.
  std::map<std::string, std::string> attr_to_cluster;
  /// Exposure / outcome *attributes* (each a singleton cluster's driver).
  std::string exposure_attribute;
  std::string outcome_attribute;
  /// What the analyst starts with.
  table::Table input_table;
  knowledge::KnowledgeGraph kg;
  knowledge::DataLake lake;
  std::unique_ptr<knowledge::TextCausalOracle> oracle;
  knowledge::TopicModel topics;
  /// Clean generated data (pre quality-injection), for tests.
  std::map<std::string, std::vector<double>> clean_data;
  std::vector<std::string> entity_names;
};

/// Materializes a scenario: runs the SCM, splits attributes across the
/// input table / knowledge graph / data lake, injects the specified data
/// quality problems, and wires up the oracle and topic lexicon.
/// Fully deterministic given spec.seed.
Result<std::unique_ptr<Scenario>> BuildScenario(const ScenarioSpec& spec);

}  // namespace cdi::datagen

#endif  // CDI_DATAGEN_SCENARIO_H_
