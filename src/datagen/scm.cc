#include "datagen/scm.h"

#include <cmath>

#include "stats/distributions.h"

namespace cdi::datagen {

Status Scm::AddNode(ScmNodeSpec spec) {
  if (index_.count(spec.name) > 0) {
    return Status::AlreadyExists("attribute '" + spec.name + "' exists");
  }
  for (const auto& [p, coef] : spec.parents) {
    if (index_.count(p) == 0) {
      return Status::InvalidArgument("parent '" + p +
                                     "' undeclared (order must be "
                                     "topological)");
    }
  }
  for (const auto& [p, coef] : spec.quad_parents) {
    if (index_.count(p) == 0) {
      return Status::InvalidArgument("quad parent '" + p + "' undeclared");
    }
  }
  CDI_ASSIGN_OR_RETURN(graph::NodeId id, dag_.AddNode(spec.name));
  (void)id;
  for (const auto& [p, coef] : spec.parents) {
    CDI_RETURN_IF_ERROR(dag_.AddEdge(p, spec.name));
  }
  for (const auto& [p, coef] : spec.quad_parents) {
    CDI_RETURN_IF_ERROR(dag_.AddEdge(p, spec.name));
  }
  index_[spec.name] = nodes_.size();
  nodes_.push_back(std::move(spec));
  return Status::OK();
}

Result<std::map<std::string, std::vector<double>>> Scm::Generate(
    std::size_t n, Rng* rng) const {
  if (n == 0) return Status::InvalidArgument("n must be positive");
  std::map<std::string, std::vector<double>> data;
  for (const auto& node : nodes_) {
    std::vector<double> col(n, 0.0);
    if (node.is_exposure_code) {
      // Evenly spaced codes in [-sqrt(3), sqrt(3)] (unit variance, like
      // the standardized structural noise); deterministic in the row
      // index so the code doubles as the entity identifier.
      if (node.gaussian_code) {
        for (std::size_t r = 0; r < n; ++r) {
          col[r] = stats::NormalQuantile(
              (static_cast<double>(r) + 0.5) / static_cast<double>(n));
        }
      } else {
        const double half_range = std::sqrt(3.0);
        for (std::size_t r = 0; r < n; ++r) {
          col[r] = n == 1 ? 0.0
                          : half_range *
                                (-1.0 + 2.0 * static_cast<double>(r) /
                                            static_cast<double>(n - 1));
        }
      }
    } else {
      for (std::size_t r = 0; r < n; ++r) {
        double v = 0;
        for (const auto& [p, coef] : node.parents) {
          v += coef * data.at(p)[r];
        }
        for (const auto& [p, coef] : node.quad_parents) {
          const double x = data.at(p)[r];
          v += coef * (x * x - 1.0);
        }
        switch (node.noise) {
          case NoiseKind::kGaussian:
            v += rng->Normal(0.0, node.noise_scale);
            break;
          case NoiseKind::kLaplace:
            v += rng->Laplace(node.noise_scale / std::sqrt(2.0));
            break;
          case NoiseKind::kUniform:
            v += rng->UniformNoise(node.noise_scale * std::sqrt(3.0));
            break;
        }
        col[r] = v;
      }
    }
    data[node.name] = std::move(col);
  }
  return data;
}

}  // namespace cdi::datagen
