#ifndef CDI_DATAGEN_COVID_H_
#define CDI_DATAGEN_COVID_H_

#include "datagen/scenario.h"

namespace cdi::datagen {

/// The COVID-19 scenario of §4: 11 clusters, 23 cluster-level edges
/// (matching the paper's |V| = 11, |E| = 23). Exposure = country, outcome =
/// covid death rate; the true direct effect is zero (fully mediated).
/// Gaussian noise and weak structural coefficients make the data-centric
/// baselines struggle — matching their poor Table 3 scores on this dataset.
ScenarioSpec CovidSpec();

/// Sample count etc. may be overridden on the returned spec before calling
/// BuildScenario.

}  // namespace cdi::datagen

#endif  // CDI_DATAGEN_COVID_H_
