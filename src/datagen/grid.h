#ifndef CDI_DATAGEN_GRID_H_
#define CDI_DATAGEN_GRID_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "datagen/scenario.h"

namespace cdi::datagen {

/// One cell of the scenario-family grid — the six axes the serving layer
/// scales out over. A cell fully determines a ScenarioSpec (given an
/// entity count and base seed), and its canonical name round-trips
/// through GridCellName / ParseGridCellName, so a cell can be named over
/// the wire (`generate <name> grid=<cell>`) and rebuilt bit-identically
/// anywhere.
struct GridCell {
  /// Total cluster count including the exposure and outcome clusters
  /// (>= 3: exposure, at least one mediator chain cluster, outcome).
  std::size_t clusters = 4;
  /// Quadratic cross-cluster components on every other edge ("relations
  /// not present in the data"); linear cells use Laplace structural noise
  /// (LiNGAM-identifiable), nonlinear cells Gaussian.
  bool nonlinear = false;
  /// Binary-logistic outcome: the outcome driver is binarized through a
  /// seeded logistic draw (AttributeSpec::binary_logistic).
  bool binary_outcome = false;
  /// MNAR-missingness severity on mediator members: 0 = clean,
  /// 1 = moderate (3% MCAR + 0.15 MNAR), 2 = severe (6% + 0.35).
  int mnar_level = 0;
  /// Attributes per mediator cluster (the "large-p" split axis): the
  /// driver plus attrs_per_cluster - 1 noisy indicator members, spread
  /// across the knowledge graph and two lake tables.
  int attrs_per_cluster = 1;
  /// Causal-oracle noise level: 0 = near-perfect recall, 1 = noisy,
  /// 2 = adversarial (frequent reverse + unrelated claims).
  int oracle_noise = 0;
};

/// The grid itself: the axis values to enumerate (cross product). The
/// defaults span 2 x 2 x 2 x 3 x 3 x 3 = 216 distinct named scenarios.
struct ScenarioGridSpec {
  std::vector<std::size_t> cluster_counts = {4, 6};
  std::vector<int> mechanisms = {0, 1};        // 0 linear, 1 nonlinear
  std::vector<int> outcome_kinds = {0, 1};     // 0 continuous, 1 binary
  std::vector<int> mnar_levels = {0, 1, 2};
  std::vector<int> attribute_splits = {1, 2, 3};
  std::vector<int> oracle_noise_levels = {0, 1, 2};
};

/// Canonical cell name, e.g. "grid_c4_quad_bin_m1_p2_o0".
std::string GridCellName(const GridCell& cell);

/// Inverse of GridCellName; kInvalidArgument (with the expected shape in
/// the message) on anything that is not a canonical cell name.
Result<GridCell> ParseGridCellName(const std::string& name);

/// Enumerates every cell of the grid, in deterministic row-major axis
/// order (clusters outermost, oracle noise innermost). Invalid axis
/// values (clusters < 3, splits < 1, levels outside 0..2) are skipped.
std::vector<GridCell> EnumerateGrid(const ScenarioGridSpec& grid);

/// Deterministic ScenarioSpec for a cell: a mediator-chain family
/// (exposure -> mediator chain -> outcome, plus a direct edge) whose
/// structure, placements, quality injection and oracle behavior follow
/// the cell's axes. spec.seed is derived by hashing the cell name with
/// `seed`, so distinct cells — and distinct base seeds — generate
/// distinct data, while the same (cell, entities, seed) is bit-stable
/// across processes and platforms.
ScenarioSpec GridScenarioSpec(const GridCell& cell,
                              std::size_t num_entities = 120,
                              std::uint64_t seed = 9001);

/// ParseGridCellName + GridScenarioSpec + BuildScenario in one step —
/// the `generate grid=...` fast path.
Result<std::unique_ptr<Scenario>> BuildGridScenario(
    const std::string& cell_name, std::size_t num_entities = 120,
    std::uint64_t seed = 9001);

}  // namespace cdi::datagen

#endif  // CDI_DATAGEN_GRID_H_
