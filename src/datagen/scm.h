#ifndef CDI_DATAGEN_SCM_H_
#define CDI_DATAGEN_SCM_H_

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "graph/digraph.h"

namespace cdi::datagen {

/// Noise family of a structural equation. FLIGHTS uses non-Gaussian noise
/// (LiNGAM's assumption holds there), COVID-19 Gaussian (LiNGAM degrades,
/// matching Table 3).
enum class NoiseKind { kGaussian, kLaplace, kUniform };

/// One structural equation: value = sum_i coef_i * parent_i + noise.
struct ScmNodeSpec {
  std::string name;
  /// (parent attribute name, coefficient) pairs; parents must be declared
  /// before children.
  std::vector<std::pair<std::string, double>> parents;
  double noise_scale = 1.0;
  NoiseKind noise = NoiseKind::kGaussian;
  /// When true, the node ignores parents/noise and takes deterministic,
  /// evenly spread unit-variance values over the entities (the exposure
  /// code).
  bool is_exposure_code = false;
  /// Distribution shape of the exposure code: uniform spacing (default,
  /// sub-Gaussian) or Gaussian quantiles. An all-Gaussian SEM (Gaussian
  /// code + Gaussian noise) is unidentifiable for LiNGAM.
  bool gaussian_code = false;
  /// Quadratic terms: value += coef * (parent^2 - 1). Linear methods (and
  /// Pearson-based CI tests) are blind to these — used to make relations
  /// "not present in the data" for the data-centric baselines while the
  /// text oracle still knows them.
  std::vector<std::pair<std::string, double>> quad_parents;
};

/// A linear(-ish) structural causal model over named attributes. The node
/// order given to AddNode must be topological; Generate produces n i.i.d.
/// samples (one per entity).
class Scm {
 public:
  /// Declares a node; all parents must already exist.
  Status AddNode(ScmNodeSpec spec);

  /// Ground-truth DAG over the attributes.
  const graph::Digraph& dag() const { return dag_; }

  const std::vector<ScmNodeSpec>& nodes() const { return nodes_; }

  /// Samples n rows; returns column vectors keyed by attribute name.
  /// Deterministic given `rng`'s state.
  Result<std::map<std::string, std::vector<double>>> Generate(
      std::size_t n, Rng* rng) const;

 private:
  std::vector<ScmNodeSpec> nodes_;
  std::map<std::string, std::size_t> index_;
  graph::Digraph dag_;
};

}  // namespace cdi::datagen

#endif  // CDI_DATAGEN_SCM_H_
