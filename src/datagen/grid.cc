#include "datagen/grid.h"

#include <cstdio>
#include <cstdlib>

#include "common/hash.h"
#include "common/string_util.h"

namespace cdi::datagen {
namespace {

bool ValidCell(const GridCell& cell) {
  return cell.clusters >= 3 && cell.attrs_per_cluster >= 1 &&
         cell.mnar_level >= 0 && cell.mnar_level <= 2 &&
         cell.oracle_noise >= 0 && cell.oracle_noise <= 2;
}

/// Parses a decimal token with a one-letter prefix ("c4" -> 4); returns
/// false on anything else (empty digits, trailing garbage, overflow).
bool ParseAxisToken(const std::string& token, char prefix, long* out) {
  if (token.size() < 2 || token[0] != prefix) return false;
  char* end = nullptr;
  const long v = std::strtol(token.c_str() + 1, &end, 10);
  if (end == nullptr || *end != '\0' || v < 0) return false;
  *out = v;
  return true;
}

}  // namespace

std::string GridCellName(const GridCell& cell) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "grid_c%zu_%s_%s_m%d_p%d_o%d", cell.clusters,
                cell.nonlinear ? "quad" : "lin",
                cell.binary_outcome ? "bin" : "cont", cell.mnar_level,
                cell.attrs_per_cluster, cell.oracle_noise);
  return buf;
}

Result<GridCell> ParseGridCellName(const std::string& name) {
  const auto fail = [&name]() {
    return Status::InvalidArgument(
        "'" + name +
        "' is not a grid cell name; expected "
        "grid_c<clusters>_<lin|quad>_<cont|bin>_m<0-2>_p<split>_o<0-2>");
  };
  const std::vector<std::string> tokens = Split(name, '_');
  if (tokens.size() != 7 || tokens[0] != "grid") return fail();
  GridCell cell;
  long clusters = 0, mnar = 0, split = 0, oracle = 0;
  if (!ParseAxisToken(tokens[1], 'c', &clusters)) return fail();
  if (tokens[2] == "lin") {
    cell.nonlinear = false;
  } else if (tokens[2] == "quad") {
    cell.nonlinear = true;
  } else {
    return fail();
  }
  if (tokens[3] == "cont") {
    cell.binary_outcome = false;
  } else if (tokens[3] == "bin") {
    cell.binary_outcome = true;
  } else {
    return fail();
  }
  if (!ParseAxisToken(tokens[4], 'm', &mnar)) return fail();
  if (!ParseAxisToken(tokens[5], 'p', &split)) return fail();
  if (!ParseAxisToken(tokens[6], 'o', &oracle)) return fail();
  cell.clusters = static_cast<std::size_t>(clusters);
  cell.mnar_level = static_cast<int>(mnar);
  cell.attrs_per_cluster = static_cast<int>(split);
  cell.oracle_noise = static_cast<int>(oracle);
  if (!ValidCell(cell)) return fail();
  // Canonical form only: "grid_c04_..." must not alias "grid_c4_...".
  if (GridCellName(cell) != name) return fail();
  return cell;
}

std::vector<GridCell> EnumerateGrid(const ScenarioGridSpec& grid) {
  std::vector<GridCell> cells;
  for (std::size_t clusters : grid.cluster_counts) {
    for (int mech : grid.mechanisms) {
      for (int outcome : grid.outcome_kinds) {
        for (int mnar : grid.mnar_levels) {
          for (int split : grid.attribute_splits) {
            for (int oracle : grid.oracle_noise_levels) {
              GridCell cell;
              cell.clusters = clusters;
              cell.nonlinear = mech != 0;
              cell.binary_outcome = outcome != 0;
              cell.mnar_level = mnar;
              cell.attrs_per_cluster = split;
              cell.oracle_noise = oracle;
              if (ValidCell(cell)) cells.push_back(cell);
            }
          }
        }
      }
    }
  }
  return cells;
}

ScenarioSpec GridScenarioSpec(const GridCell& cell, std::size_t num_entities,
                              std::uint64_t seed) {
  ScenarioSpec spec;
  spec.name = GridCellName(cell);
  spec.num_entities = num_entities;
  spec.entity_prefix = "Unit";
  spec.entity_column = "unit";
  spec.exposure_cluster = "treat";
  spec.outcome_cluster = "result";
  spec.noise = cell.nonlinear ? NoiseKind::kGaussian : NoiseKind::kLaplace;
  // Seed the SCM from the cell name so distinct cells differ even when the
  // base seed is shared, and distinct base seeds shift the whole family.
  Fnv1a hasher("cdi.grid.seed");
  hasher.Mix(spec.name);
  hasher.Mix(seed);
  spec.seed = hasher.Digest();

  auto attr = [](std::string name, Placement placement,
                 std::string lake_table = "") {
    AttributeSpec a;
    a.name = std::move(name);
    a.placement = placement;
    a.lake_table = std::move(lake_table);
    return a;
  };

  // Exposure cluster: the analyst's treatment code in the input table.
  {
    ClusterSpec c;
    c.name = "treat";
    c.attributes = {attr("treatment_code", Placement::kInputTable)};
    c.topic_keywords = {"treat", "treatment", "exposure"};
    spec.clusters.push_back(c);
  }

  // Mediator chain: factor1 -> factor2 -> ... -> factor{k}. Drivers cycle
  // across the knowledge graph and two lake tables; extra members (the
  // large-p split axis) land in the same source as their driver.
  const std::size_t num_mids = cell.clusters - 2;
  const char* lake_tables[2] = {"grid_panel_a", "grid_panel_b"};
  for (std::size_t i = 1; i <= num_mids; ++i) {
    ClusterSpec c;
    char name[32];
    std::snprintf(name, sizeof(name), "factor%zu", i);
    c.name = name;
    Placement placement;
    std::string lake_table;
    switch (i % 3) {
      case 1:
        placement = Placement::kKnowledgeGraph;
        break;
      case 2:
        placement = Placement::kLakeTable;
        lake_table = lake_tables[0];
        break;
      default:
        placement = Placement::kLakeTable;
        lake_table = lake_tables[1];
        break;
    }
    char driver[48];
    std::snprintf(driver, sizeof(driver), "factor%zu_score", i);
    c.attributes = {attr(driver, placement, lake_table)};
    for (int j = 1; j < cell.attrs_per_cluster; ++j) {
      char member[48];
      std::snprintf(member, sizeof(member), "factor%zu_ind%d", i, j);
      AttributeSpec a = attr(member, placement, lake_table);
      a.loading = (j % 2 ? 0.9 : -0.85);
      c.attributes.push_back(a);
    }
    // MNAR severity applies to mediator members (driver included): the
    // paper's selection-bias failure mode, dialed by the m-axis.
    if (cell.mnar_level == 1) {
      for (auto& a : c.attributes) {
        a.missing_rate = 0.03;
        a.mnar_strength = 0.15;
      }
    } else if (cell.mnar_level == 2) {
      for (auto& a : c.attributes) {
        a.missing_rate = 0.06;
        a.mnar_strength = 0.35;
      }
    }
    c.driver_noise = 1.0;
    c.member_noise = 0.35;
    c.topic_keywords = {c.name, "factor", "indicator"};
    spec.clusters.push_back(c);
  }

  // Outcome cluster: the analyst's score column; the b-axis binarizes it
  // through a logistic draw while clean_data keeps the latent score.
  {
    ClusterSpec c;
    c.name = "result";
    AttributeSpec outcome = attr("outcome_score", Placement::kInputTable);
    outcome.binary_logistic = cell.binary_outcome;
    c.attributes = {outcome};
    c.topic_keywords = {"result", "outcome", "score"};
    spec.clusters.push_back(c);
  }

  // Edges: treat -> factor1 -> ... -> factor{k} -> result, plus a direct
  // treat -> result path. Signs alternate along the chain; nonlinear cells
  // shift every other chain edge's signal into the quadratic component
  // ("relations not present in the data" — the oracle still claims them).
  auto edge = [&cell](std::string from, std::string to, double coef,
                      bool quad_eligible) {
    ClusterEdgeSpec e;
    e.from = std::move(from);
    e.to = std::move(to);
    if (cell.nonlinear && quad_eligible) {
      e.coef = coef * 0.15;
      e.quad = 0.35 * (coef < 0 ? -1.0 : 1.0);
    } else {
      e.coef = coef;
    }
    return e;
  };
  std::string prev = "treat";
  for (std::size_t i = 1; i <= num_mids; ++i) {
    char to[32];
    std::snprintf(to, sizeof(to), "factor%zu", i);
    const double coef = (i % 2 ? 0.55 : -0.5);
    spec.edges.push_back(edge(prev, to, coef, /*quad_eligible=*/i % 2 == 0));
    prev = to;
  }
  spec.edges.push_back(edge(prev, "result", 0.5, /*quad_eligible=*/true));
  spec.edges.push_back(
      edge("treat", "result", 0.2, /*quad_eligible=*/false));

  // A functionally determined attribute per source kind, so the Data
  // Organizer's positivity filter stays exercised at every grid point.
  spec.fd_attributes = {
      {"unit_registry_id", /*numeric=*/true, Placement::kKnowledgeGraph, ""},
  };

  // Oracle noise presets for the o-axis.
  switch (cell.oracle_noise) {
    case 0:
      spec.oracle.direct_recall = 0.99;
      spec.oracle.transitive_claim_prob = 0.90;
      spec.oracle.reverse_claim_prob = 0.05;
      spec.oracle.unrelated_claim_prob = 0.02;
      break;
    case 1:
      spec.oracle.direct_recall = 0.92;
      spec.oracle.transitive_claim_prob = 0.80;
      spec.oracle.reverse_claim_prob = 0.20;
      spec.oracle.unrelated_claim_prob = 0.08;
      break;
    default:
      spec.oracle.direct_recall = 0.80;
      spec.oracle.transitive_claim_prob = 0.70;
      spec.oracle.reverse_claim_prob = 0.40;
      spec.oracle.unrelated_claim_prob = 0.18;
      break;
  }
  spec.oracle.seed = 77;

  spec.one_to_many_tables = {"grid_panel_b"};
  return spec;
}

Result<std::unique_ptr<Scenario>> BuildGridScenario(
    const std::string& cell_name, std::size_t num_entities,
    std::uint64_t seed) {
  CDI_ASSIGN_OR_RETURN(GridCell cell, ParseGridCellName(cell_name));
  return BuildScenario(GridScenarioSpec(cell, num_entities, seed));
}

}  // namespace cdi::datagen
