#include "datagen/flights.h"

namespace cdi::datagen {

ScenarioSpec FlightsSpec() {
  ScenarioSpec spec;
  spec.name = "flights";
  spec.num_entities = 900;
  spec.entity_prefix = "City";
  spec.entity_column = "origin_city";
  spec.exposure_cluster = "origin";
  spec.outcome_cluster = "delay";
  spec.noise = NoiseKind::kLaplace;
  spec.gaussian_members = true;  // aggregates dilute non-Gaussianity
  spec.seed = 2020;
  spec.one_to_many_tables = {"carrier_stats"};

  auto attr = [](std::string name, Placement placement,
                 std::string lake_table = "") {
    AttributeSpec a;
    a.name = std::move(name);
    a.placement = placement;
    a.lake_table = std::move(lake_table);
    return a;
  };

  {
    ClusterSpec c;
    c.name = "origin";
    c.attributes = {attr("origin_code", Placement::kInputTable)};
    c.topic_keywords = {"origin", "city", "airport"};
    spec.clusters.push_back(c);
  }
  {
    ClusterSpec c;
    c.name = "season";
    c.attributes = {attr("month_index", Placement::kInputTable)};
    c.driver_noise = 1.0;
    c.topic_keywords = {"season", "month", "time"};
    spec.clusters.push_back(c);
  }
  {
    ClusterSpec c;
    c.name = "weather";
    c.attributes = {attr("avg_temp", Placement::kKnowledgeGraph),
                    attr("snow_inch", Placement::kKnowledgeGraph),
                    attr("wind_speed", Placement::kKnowledgeGraph)};
    c.attributes[1].loading = -0.9;  // colder -> more snow
    c.attributes[2].loading = 0.6;
    // Snowfall is recorded only where it snows (the paper's Table 2 shows
    // "-" for FL/CA) — MNAR missingness.
    c.attributes[1].missing_rate = 0.04;
    c.attributes[1].mnar_strength = 0.25;
    c.driver_noise = 0.9;
    c.member_noise = 0.4;
    c.gaussian_driver = true;  // mixed-noise scenario: weather is Gaussian
    c.topic_keywords = {"weather", "temp", "snow", "wind", "climate"};
    spec.clusters.push_back(c);
  }
  {
    ClusterSpec c;
    c.name = "demand";
    c.attributes = {
        attr("passenger_volume", Placement::kLakeTable, "airport_traffic")};
    c.driver_noise = 0.9;
    c.gaussian_driver = true;
    c.topic_keywords = {"demand", "passenger", "volume"};
    spec.clusters.push_back(c);
  }
  {
    ClusterSpec c;
    c.name = "carrier";
    c.attributes = {
        attr("carrier_on_time_rate", Placement::kLakeTable, "carrier_stats"),
        attr("carrier_fleet_score", Placement::kLakeTable, "carrier_stats")};
    c.attributes[1].loading = 0.9;
    c.driver_noise = 0.9;
    c.member_noise = 0.4;
    c.topic_keywords = {"carrier", "airline", "fleet"};
    spec.clusters.push_back(c);
  }
  {
    ClusterSpec c;
    c.name = "distance";
    c.attributes = {
        attr("avg_route_distance", Placement::kLakeTable, "route_stats")};
    c.driver_noise = 1.0;
    c.gaussian_driver = true;
    c.topic_keywords = {"distance", "route", "miles"};
    spec.clusters.push_back(c);
  }
  {
    ClusterSpec c;
    c.name = "congestion";
    c.attributes = {
        attr("airport_traffic_index", Placement::kLakeTable,
             "airport_traffic"),
        attr("runway_utilization", Placement::kLakeTable, "airport_traffic")};
    c.attributes[1].loading = 0.9;
    c.attributes[0].outlier_rate = 0.008;  // sensor glitches
    c.driver_noise = 0.8;
    c.member_noise = 0.4;
    c.gaussian_driver = true;
    c.topic_keywords = {"congestion", "traffic", "runway", "capacity"};
    spec.clusters.push_back(c);
  }
  {
    ClusterSpec c;
    c.name = "aircraft";
    c.attributes = {attr("aircraft_age", Placement::kKnowledgeGraph)};
    c.driver_noise = 0.9;
    c.gaussian_driver = true;
    c.topic_keywords = {"aircraft", "fleet", "plane"};
    spec.clusters.push_back(c);
  }
  {
    ClusterSpec c;
    c.name = "delay";
    c.attributes = {attr("departure_delay", Placement::kInputTable)};
    c.driver_noise = 0.8;
    c.gaussian_driver = true;
    c.topic_keywords = {"delay", "departure", "late"};
    spec.clusters.push_back(c);
  }

  // 17 cluster-level edges, stronger than COVID-19's. The season ->
  // weather/demand edges are quadratic-only ("not present in the data" for
  // linear methods), which removes the v-structures that would otherwise
  // let the data-centric baselines orient the exposure's outgoing edges —
  // reproducing the paper's finding that even with high F1 on FLIGHTS,
  // none of them identifies a single mediator.
  spec.edges = {
      {"origin", "weather", 0.50, 0.0},
      {"origin", "demand", 0.50, 0.0},
      {"origin", "carrier", -0.50, 0.0},
      {"distance", "congestion", 0.35, 0.0},
      {"origin", "distance", 0.50, 0.0},
      {"season", "weather", 0.0, 0.40},
      {"season", "demand", 0.0, 0.35},
      {"season", "delay", 0.22, 0.0},
      {"weather", "congestion", 0.40, 0.0},
      {"weather", "delay", 0.45, 0.0},
      {"demand", "congestion", 0.40, 0.0},
      {"demand", "delay", 0.22, 0.0},
      {"carrier", "aircraft", -0.55, 0.0},
      {"carrier", "delay", -0.40, 0.0},
      {"congestion", "delay", 0.45, 0.0},
      {"distance", "delay", 0.20, 0.0},
      {"aircraft", "delay", 0.25, 0.0},
  };

  spec.fd_attributes = {
      {"mayor", /*numeric=*/false, Placement::kKnowledgeGraph, ""},
      {"airport_iata_rank", /*numeric=*/true, Placement::kLakeTable,
       "airport_traffic"},
  };

  spec.oracle.seed = 55;
  spec.oracle.direct_recall = 0.99;
  spec.oracle.transitive_claim_prob = 0.90;
  spec.oracle.reverse_claim_prob = 0.30;
  spec.oracle.unrelated_claim_prob = 0.12;
  return spec;
}

}  // namespace cdi::datagen
