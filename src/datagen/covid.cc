#include "datagen/covid.h"

namespace cdi::datagen {

ScenarioSpec CovidSpec() {
  ScenarioSpec spec;
  spec.name = "covid19";
  spec.num_entities = 500;
  spec.entity_prefix = "Country";
  spec.entity_column = "country";
  spec.exposure_cluster = "country";
  spec.outcome_cluster = "death_rate";
  spec.noise = NoiseKind::kGaussian;
  spec.gaussian_exposure_code = true;
  spec.seed = 2023;
  spec.one_to_many_tables = {"mobility_report"};

  auto attr = [](std::string name, Placement placement,
                 std::string lake_table = "") {
    AttributeSpec a;
    a.name = std::move(name);
    a.placement = placement;
    a.lake_table = std::move(lake_table);
    return a;
  };

  // Clusters in topological order; first attribute is the driver.
  {
    ClusterSpec c;
    c.name = "country";
    c.attributes = {attr("country_code", Placement::kInputTable)};
    c.topic_keywords = {"country", "nation", "state"};
    spec.clusters.push_back(c);
  }
  {
    ClusterSpec c;
    c.name = "population";
    c.attributes = {
        attr("pop_size", Placement::kLakeTable, "world_population"),
        attr("pop_density", Placement::kLakeTable, "world_population")};
    c.attributes[1].loading = 0.95;
    c.driver_noise = 1.0;
    c.member_noise = 0.35;
    c.topic_keywords = {"population", "pop", "people", "density"};
    spec.clusters.push_back(c);
  }
  {
    ClusterSpec c;
    c.name = "economy";
    c.attributes = {
        attr("gdp_per_capita", Placement::kLakeTable, "economy_indicators"),
        attr("poverty_rate", Placement::kLakeTable, "economy_indicators")};
    c.attributes[0].outlier_rate = 0.01;  // corrupted GDP entries
    c.attributes[1].loading = -0.9;       // poverty falls with GDP
    c.driver_noise = 1.0;
    c.member_noise = 0.35;
    c.topic_keywords = {"economy", "gdp", "income", "poverty"};
    spec.clusters.push_back(c);
  }
  {
    ClusterSpec c;
    c.name = "climate";
    c.attributes = {attr("avg_temp", Placement::kKnowledgeGraph),
                    attr("humidity", Placement::kKnowledgeGraph),
                    attr("precipitation", Placement::kKnowledgeGraph)};
    c.attributes[1].loading = 0.9;
    c.attributes[2].loading = 0.85;
    // The paper's DBpedia example: weather properties are missing for some
    // states, not at random (snow_inch missing exactly where it is low).
    c.attributes[2].missing_rate = 0.05;
    c.attributes[2].mnar_strength = 0.30;
    c.driver_noise = 1.0;
    c.member_noise = 0.35;
    c.topic_keywords = {"climate", "weather", "temp", "humidity", "rain"};
    spec.clusters.push_back(c);
  }
  {
    ClusterSpec c;
    c.name = "age";
    c.attributes = {attr("median_age", Placement::kKnowledgeGraph),
                    attr("elderly_share", Placement::kKnowledgeGraph)};
    c.attributes[1].loading = 0.95;
    c.driver_noise = 1.0;
    c.member_noise = 0.35;
    c.topic_keywords = {"age", "elderly", "demographic"};
    spec.clusters.push_back(c);
  }
  {
    ClusterSpec c;
    c.name = "healthcare";
    c.attributes = {
        attr("hospital_beds", Placement::kLakeTable, "hospital_stats"),
        attr("health_expenditure", Placement::kLakeTable, "hospital_stats")};
    c.attributes[1].loading = 0.9;
    c.driver_noise = 1.0;
    c.member_noise = 0.35;
    c.topic_keywords = {"health", "hospital", "care", "beds"};
    spec.clusters.push_back(c);
  }
  {
    ClusterSpec c;
    c.name = "policy";
    c.attributes = {
        attr("stringency_index", Placement::kLakeTable, "policy_tracker"),
        attr("mask_policy", Placement::kLakeTable, "policy_tracker")};
    c.attributes[1].loading = 0.9;
    c.driver_noise = 1.0;
    c.member_noise = 0.35;
    c.topic_keywords = {"policy", "mask", "lockdown", "stringency"};
    spec.clusters.push_back(c);
  }
  {
    ClusterSpec c;
    c.name = "mobility";
    c.attributes = {
        attr("mobility_index", Placement::kLakeTable, "mobility_report"),
        attr("transit_use", Placement::kLakeTable, "mobility_report")};
    c.attributes[1].loading = 0.9;
    c.driver_noise = 1.0;
    c.member_noise = 0.35;
    c.topic_keywords = {"mobility", "transit", "movement", "travel"};
    spec.clusters.push_back(c);
  }
  {
    ClusterSpec c;
    c.name = "spread";
    c.attributes = {attr("confirmed_cases", Placement::kInputTable),
                    attr("new_cases", Placement::kLakeTable, "covid_stats")};
    c.attributes[1].loading = 0.95;
    c.driver_noise = 1.0;
    c.member_noise = 0.35;
    c.topic_keywords = {"spread", "cases", "infection", "confirmed"};
    spec.clusters.push_back(c);
  }
  {
    ClusterSpec c;
    c.name = "recovery";
    c.attributes = {
        attr("recovered_cases", Placement::kLakeTable, "covid_stats")};
    c.driver_noise = 1.0;
    c.topic_keywords = {"recovery", "recovered"};
    spec.clusters.push_back(c);
  }
  {
    ClusterSpec c;
    c.name = "death_rate";
    c.attributes = {attr("covid_death_rate", Placement::kInputTable)};
    c.driver_noise = 1.0;
    c.topic_keywords = {"death", "mortality", "fatality"};
    spec.clusters.push_back(c);
  }

  // 23 cluster-level edges. Coefficients are deliberately weak (plus
  // Gaussian noise): the relations exist but are hard to recover from data
  // alone, reproducing the paper's COVID-19 column where every data-centric
  // baseline scores poorly and finds no mediators.
  spec.edges = {
      {"country", "population", 0.40, 0.0},
      {"country", "economy", 0.40, 0.0},
      {"country", "climate", 0.30, 0.15},
      {"country", "healthcare", -0.25, 0.0},
      {"country", "mobility", 0.35, 0.0},
      {"country", "policy", -0.35, 0.0},
      {"country", "age", 0.45, 0.0},
      {"population", "spread", 0.05, 0.30},
      {"population", "mobility", 0.35, 0.0},
      {"economy", "healthcare", 0.40, 0.0},
      {"economy", "mobility", 0.05, 0.28},
      {"economy", "policy", -0.35, 0.0},
      // Climate -> spread is mostly nonlinear: GPT-3 (and the ground
      // truth) know it; the data-centric baselines cannot see it.
      {"climate", "spread", 0.02, 0.40},
      {"climate", "mobility", 0.20, 0.0},
      {"policy", "spread", -0.40, 0.0},
      {"policy", "mobility", -0.05, 0.28},
      {"mobility", "spread", 0.35, 0.0},
      {"age", "death_rate", 0.35, 0.0},
      {"spread", "death_rate", 0.40, 0.0},
      {"spread", "recovery", 0.50, 0.0},
      {"healthcare", "death_rate", -0.30, 0.0},
      {"healthcare", "recovery", 0.40, 0.0},
      {"recovery", "death_rate", -0.35, 0.0},
  };

  // Functionally determined attributes the Data Organizer must discard.
  spec.fd_attributes = {
      {"head_of_government", /*numeric=*/false, Placement::kKnowledgeGraph,
       ""},
      {"calling_code", /*numeric=*/true, Placement::kLakeTable,
       "world_population"},
  };

  spec.oracle.seed = 77;
  spec.oracle.direct_recall = 0.99;
  spec.oracle.transitive_claim_prob = 0.90;
  spec.oracle.reverse_claim_prob = 0.30;
  spec.oracle.unrelated_claim_prob = 0.12;
  return spec;
}

}  // namespace cdi::datagen
