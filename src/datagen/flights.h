#ifndef CDI_DATAGEN_FLIGHTS_H_
#define CDI_DATAGEN_FLIGHTS_H_

#include "datagen/scenario.h"

namespace cdi::datagen {

/// The FLIGHTS scenario of §4: 9 clusters, 17 cluster-level edges
/// (matching the paper's |V| = 9, |E| = 17). Exposure = origin city,
/// outcome = departure delay; true direct effect zero (mediated through
/// weather, congestion, carrier, ...). Laplace (non-Gaussian) noise and
/// stronger coefficients give the data-centric baselines decent skeletons
/// — but they still cannot orient the exposure's edges, so they find no
/// mediators (the paper's observation).
ScenarioSpec FlightsSpec();

}  // namespace cdi::datagen

#endif  // CDI_DATAGEN_FLIGHTS_H_
