#include "datagen/scenario.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>

#include "common/string_util.h"
#include "stats/descriptive.h"

namespace cdi::datagen {

namespace {

/// "Country_042"-style canonical entity name.
std::string EntityName(const std::string& prefix, std::size_t i) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%s_%04zu", prefix.c_str(), i);
  return std::string(buf);
}

/// Short alias, e.g. "C0042".
std::string ShortAlias(const std::string& prefix, std::size_t i) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%c%04zu", prefix.empty() ? 'E' : prefix[0],
                i);
  return std::string(buf);
}

/// Shouty alias with a space, e.g. "COUNTRY 0042".
std::string SpacedAlias(const std::string& prefix, std::size_t i) {
  std::string up;
  for (char c : prefix) up += static_cast<char>(std::toupper(c));
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%s %04zu", up.c_str(), i);
  return std::string(buf);
}

Status ValidateSpec(const ScenarioSpec& spec) {
  if (spec.clusters.empty()) return Status::InvalidArgument("no clusters");
  if (spec.num_entities < 20) {
    return Status::InvalidArgument("need at least 20 entities");
  }
  std::map<std::string, std::size_t> order;
  for (std::size_t i = 0; i < spec.clusters.size(); ++i) {
    const auto& c = spec.clusters[i];
    if (c.attributes.empty()) {
      return Status::InvalidArgument("cluster '" + c.name +
                                     "' has no attributes");
    }
    if (!order.emplace(c.name, i).second) {
      return Status::InvalidArgument("duplicate cluster '" + c.name + "'");
    }
  }
  if (order.count(spec.exposure_cluster) == 0 ||
      order.count(spec.outcome_cluster) == 0) {
    return Status::InvalidArgument("exposure/outcome cluster missing");
  }
  for (const auto& e : spec.edges) {
    auto f = order.find(e.from);
    auto t = order.find(e.to);
    if (f == order.end() || t == order.end()) {
      return Status::InvalidArgument("edge endpoint missing: " + e.from +
                                     " -> " + e.to);
    }
    if (f->second >= t->second) {
      return Status::InvalidArgument(
          "clusters must be listed in topological order (" + e.from +
          " -> " + e.to + ")");
    }
  }
  return Status::OK();
}

}  // namespace

Result<std::unique_ptr<Scenario>> BuildScenario(const ScenarioSpec& spec) {
  CDI_RETURN_IF_ERROR(ValidateSpec(spec));
  auto scenario = std::make_unique<Scenario>();
  scenario->spec = spec;
  const std::size_t n = spec.num_entities;

  // ---- 1. Structural causal model over all attributes. ------------------
  Scm scm;
  for (const auto& cluster : spec.clusters) {
    // Driver equation.
    ScmNodeSpec driver;
    driver.name = cluster.attributes[0].name;
    driver.noise =
        cluster.gaussian_driver ? NoiseKind::kGaussian : spec.noise;
    driver.noise_scale = cluster.driver_noise;
    if (cluster.name == spec.exposure_cluster) {
      driver.is_exposure_code = true;
      driver.gaussian_code = spec.gaussian_exposure_code;
    } else {
      for (const auto& e : spec.edges) {
        if (e.to != cluster.name) continue;
        // Cluster-level influence flows through the parent cluster's
        // driver attribute (members are noisy indicators of the driver,
        // so routing through them would attenuate — or, with mixed-sign
        // loadings, cancel — the designed effect).
        const ClusterSpec* parent = nullptr;
        for (const auto& c : spec.clusters) {
          if (c.name == e.from) parent = &c;
        }
        CDI_CHECK(parent != nullptr);
        const std::string& parent_driver = parent->attributes[0].name;
        driver.parents.emplace_back(parent_driver, e.coef);
        if (e.quad != 0.0) {
          driver.quad_parents.emplace_back(parent_driver, e.quad);
        }
      }
    }
    CDI_RETURN_IF_ERROR(scm.AddNode(std::move(driver)));
    // Member equations: member = loading * driver + noise.
    for (std::size_t m = 1; m < cluster.attributes.size(); ++m) {
      ScmNodeSpec member;
      member.name = cluster.attributes[m].name;
      member.parents.emplace_back(cluster.attributes[0].name,
                                  cluster.attributes[m].loading);
      member.noise = spec.gaussian_members ? NoiseKind::kGaussian : spec.noise;
      member.noise_scale = cluster.member_noise;
      CDI_RETURN_IF_ERROR(scm.AddNode(std::move(member)));
    }
  }

  Rng rng(spec.seed);
  CDI_ASSIGN_OR_RETURN(scenario->clean_data, scm.Generate(n, &rng));
  scenario->attribute_dag = scm.dag();

  // ---- 2. Ground-truth cluster DAG & bookkeeping. ------------------------
  {
    std::vector<std::string> cluster_names;
    for (const auto& c : spec.clusters) cluster_names.push_back(c.name);
    scenario->cluster_dag = graph::Digraph(cluster_names);
    for (const auto& e : spec.edges) {
      CDI_RETURN_IF_ERROR(scenario->cluster_dag.AddEdge(e.from, e.to));
    }
  }
  for (const auto& c : spec.clusters) {
    for (const auto& a : c.attributes) {
      scenario->cluster_members[c.name].push_back(a.name);
      scenario->attr_to_cluster[a.name] = c.name;
    }
  }
  scenario->exposure_attribute =
      scenario->cluster_members.at(spec.exposure_cluster)[0];
  scenario->outcome_attribute =
      scenario->cluster_members.at(spec.outcome_cluster)[0];

  // ---- 3. Entity names + aliases. ----------------------------------------
  for (std::size_t i = 0; i < n; ++i) {
    scenario->entity_names.push_back(EntityName(spec.entity_prefix, i));
  }

  // ---- 4. Quality injection (observed copies of each column). ------------
  Rng quality_rng = rng.Fork(101);
  std::map<std::string, std::vector<double>> observed = scenario->clean_data;
  for (const auto& cluster : spec.clusters) {
    for (const auto& attr : cluster.attributes) {
      auto& col = observed.at(attr.name);
      const double mean = stats::Mean(col);
      const double sd = stats::StdDev(col);
      for (std::size_t r = 0; r < n; ++r) {
        if (attr.outlier_rate > 0 &&
            quality_rng.Bernoulli(attr.outlier_rate)) {
          col[r] = mean + (col[r] - mean) * 50.0;
          continue;
        }
        double p_missing = attr.missing_rate;
        if (attr.mnar_strength > 0 && sd > 0) {
          const double z = (scenario->clean_data.at(attr.name)[r] - mean) / sd;
          p_missing += attr.mnar_strength * std::clamp(z, 0.0, 2.0) / 2.0;
        }
        if (p_missing > 0 && quality_rng.Bernoulli(std::min(0.9, p_missing))) {
          col[r] = std::nan("");
        }
      }
    }
  }

  // ---- 4b. Logistic binarization (after quality injection, so MNAR acts
  // on the latent continuous value; the dedicated fork keeps the streams
  // of steps 4/5/6/7 bit-identical whether or not any attribute opts in).
  {
    Rng logistic_rng = rng.Fork(505);
    for (const auto& cluster : spec.clusters) {
      for (const auto& attr : cluster.attributes) {
        if (!attr.binary_logistic) continue;
        const auto& clean = scenario->clean_data.at(attr.name);
        auto& col = observed.at(attr.name);
        const double mean = stats::Mean(clean);
        const double sd = stats::StdDev(clean);
        for (std::size_t r = 0; r < n; ++r) {
          if (std::isnan(col[r])) continue;
          const double z = sd > 0 ? (clean[r] - mean) / sd : 0.0;
          const double p = 1.0 / (1.0 + std::exp(-1.7 * z));
          col[r] = logistic_rng.Bernoulli(p) ? 1.0 : 0.0;
        }
      }
    }
  }

  // ---- 5. Input table. ----------------------------------------------------
  {
    Rng alias_rng = rng.Fork(202);
    std::vector<std::string> entity_cells;
    for (std::size_t i = 0; i < n; ++i) {
      if (alias_rng.Bernoulli(spec.alias_fraction)) {
        entity_cells.push_back(alias_rng.Bernoulli(0.5)
                                   ? ShortAlias(spec.entity_prefix, i)
                                   : SpacedAlias(spec.entity_prefix, i));
      } else {
        entity_cells.push_back(scenario->entity_names[i]);
      }
    }
    table::Table t(spec.name + "_input");
    CDI_RETURN_IF_ERROR(t.AddColumn(
        table::Column::FromStrings(spec.entity_column, entity_cells)));
    CDI_RETURN_IF_ERROR(t.AddColumn(table::Column::FromDoubles(
        scenario->exposure_attribute,
        observed.at(scenario->exposure_attribute))));
    CDI_RETURN_IF_ERROR(t.AddColumn(table::Column::FromDoubles(
        scenario->outcome_attribute,
        observed.at(scenario->outcome_attribute))));
    for (const auto& cluster : spec.clusters) {
      for (const auto& attr : cluster.attributes) {
        if (attr.placement != Placement::kInputTable) continue;
        if (attr.name == scenario->exposure_attribute ||
            attr.name == scenario->outcome_attribute) {
          continue;
        }
        CDI_RETURN_IF_ERROR(t.AddColumn(table::Column::FromDoubles(
            attr.name, observed.at(attr.name))));
      }
    }
    scenario->input_table = std::move(t);
  }

  // ---- 6. Knowledge graph. -------------------------------------------------
  {
    Rng kg_rng = rng.Fork(303);
    for (std::size_t i = 0; i < n; ++i) {
      const std::string& e = scenario->entity_names[i];
      for (const auto& cluster : spec.clusters) {
        for (const auto& attr : cluster.attributes) {
          if (attr.placement != Placement::kKnowledgeGraph) continue;
          const double v = observed.at(attr.name)[i];
          if (std::isnan(v)) continue;  // missing extraction
          scenario->kg.AddLiteral(e, attr.name, table::Value(v));
        }
      }
      // Functionally determined attributes.
      for (const auto& fd : spec.fd_attributes) {
        if (fd.placement != Placement::kKnowledgeGraph) continue;
        if (fd.numeric) {
          scenario->kg.AddLiteral(
              e, fd.name, table::Value(7.0 * static_cast<double>(i) + 3.0));
        } else {
          scenario->kg.AddLiteral(
              e, fd.name, table::Value(fd.name + "_of_" + e));
        }
      }
      // A followable link to an entity with an irrelevant property — the
      // extractor's relevance filter must discard it.
      const std::string capital = "Capital_of_" + e;
      scenario->kg.AddLiteral(capital, "capital_elevation",
                              table::Value(kg_rng.Normal(300.0, 120.0)));
      scenario->kg.AddLink(e, "capital", capital);
      // Aliases for disambiguation.
      scenario->kg.AddAlias(e, ShortAlias(spec.entity_prefix, i));
      scenario->kg.AddAlias(e, SpacedAlias(spec.entity_prefix, i));
    }
  }

  // ---- 7. Data lake. --------------------------------------------------------
  {
    Rng lake_rng = rng.Fork(404);
    // Group lake-placed attributes by table.
    std::map<std::string, std::vector<const AttributeSpec*>> by_table;
    for (const auto& cluster : spec.clusters) {
      for (const auto& attr : cluster.attributes) {
        if (attr.placement == Placement::kLakeTable) {
          by_table[attr.lake_table.empty() ? "lake_misc" : attr.lake_table]
              .push_back(&attr);
        }
      }
    }
    std::map<std::string, std::vector<const FdAttributeSpec*>> fd_by_table;
    for (const auto& fd : spec.fd_attributes) {
      if (fd.placement == Placement::kLakeTable) {
        fd_by_table[fd.lake_table.empty() ? "lake_misc" : fd.lake_table]
            .push_back(&fd);
      }
    }
    std::set<std::string> table_names;
    for (const auto& [name, v] : by_table) table_names.insert(name);
    for (const auto& [name, v] : fd_by_table) table_names.insert(name);

    for (const auto& tname : table_names) {
      const bool one_to_many = spec.one_to_many_tables.count(tname) > 0;
      const std::size_t copies = one_to_many ? 3 : 1;
      std::vector<std::string> keys;
      std::map<std::string, std::vector<double>> cols;
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t k = 0; k < copies; ++k) {
          // Lake tables spell keys in their own style.
          keys.push_back(SpacedAlias(spec.entity_prefix, i));
          auto bt = by_table.find(tname);
          if (bt != by_table.end()) {
            for (const AttributeSpec* attr : bt->second) {
              double v = observed.at(attr->name)[i];
              if (!std::isnan(v) && one_to_many) {
                v += lake_rng.Normal(0.0, 0.05 * (std::fabs(v) + 1.0));
              }
              cols[attr->name].push_back(v);
            }
          }
          auto ft = fd_by_table.find(tname);
          if (ft != fd_by_table.end()) {
            for (const FdAttributeSpec* fd : ft->second) {
              cols[fd->name].push_back(7.0 * static_cast<double>(i) + 3.0);
            }
          }
        }
      }
      table::Table t(tname);
      CDI_RETURN_IF_ERROR(
          t.AddColumn(table::Column::FromStrings("name", keys)));
      auto bt = by_table.find(tname);
      if (bt != by_table.end()) {
        for (const AttributeSpec* attr : bt->second) {
          CDI_RETURN_IF_ERROR(t.AddColumn(
              table::Column::FromDoubles(attr->name, cols.at(attr->name))));
        }
      }
      auto ft = fd_by_table.find(tname);
      if (ft != fd_by_table.end()) {
        for (const FdAttributeSpec* fd : ft->second) {
          CDI_RETURN_IF_ERROR(t.AddColumn(
              table::Column::FromDoubles(fd->name, cols.at(fd->name))));
        }
      }
      // Duplicate-row injection.
      if (spec.duplicate_row_rate > 0) {
        std::vector<std::size_t> rows;
        for (std::size_t r = 0; r < t.num_rows(); ++r) {
          rows.push_back(r);
          if (lake_rng.Bernoulli(spec.duplicate_row_rate)) rows.push_back(r);
        }
        t = t.TakeRows(rows);
        t.set_name(tname);
      }
      scenario->lake.AddTable(std::move(t));
    }
    // A decoy table with no relationship to the scenario at all — the
    // joinability search must skip it.
    {
      std::vector<std::string> keys;
      std::vector<double> vals;
      for (std::size_t i = 0; i < 50; ++i) {
        keys.push_back("Product_" + std::to_string(i));
        vals.push_back(lake_rng.Normal(10.0, 2.0));
      }
      table::Table decoy("unrelated_products");
      CDI_RETURN_IF_ERROR(
          decoy.AddColumn(table::Column::FromStrings("product", keys)));
      CDI_RETURN_IF_ERROR(
          decoy.AddColumn(table::Column::FromDoubles("price", vals)));
      scenario->lake.AddTable(std::move(decoy));
    }
  }

  // ---- 8. Oracle + topics. ---------------------------------------------------
  {
    knowledge::OracleOptions oracle_options = spec.oracle;
    oracle_options.seed ^= spec.seed * 0x9E3779B97F4A7C15ULL;
    scenario->oracle = std::make_unique<knowledge::TextCausalOracle>(
        scenario->cluster_dag, oracle_options);
    for (const auto& [attr, cluster] : scenario->attr_to_cluster) {
      scenario->oracle->RegisterAlias(attr, cluster);
    }
    scenario->oracle->RegisterAlias(spec.entity_column, spec.exposure_cluster);

    for (const auto& cluster : spec.clusters) {
      std::vector<std::string> keywords = cluster.topic_keywords;
      keywords.push_back(cluster.name);
      for (const auto& attr : cluster.attributes) {
        keywords.push_back(attr.name);
      }
      scenario->topics.AddTopic(cluster.name, keywords);
    }
  }

  return scenario;
}

}  // namespace cdi::datagen
