#include "testing/metamorphic.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>
#include <utility>

#include "common/rng.h"
#include "common/span.h"

namespace cdi::testing {

namespace {

using NamedEdge = std::pair<std::string, std::string>;

/// Claims as a canonical sorted set of (from, to) name pairs — the
/// representation that survives column relabeling.
std::set<NamedEdge> NamedClaims(const discovery::DiscoverySummary& summary,
                                const std::vector<std::string>& names) {
  std::set<NamedEdge> out;
  for (const auto& [from, to] : summary.claims) {
    out.insert({names[from], names[to]});
  }
  return out;
}

/// Unordered adjacency pairs (the skeleton). PC-stable's skeleton is
/// invariant under variable relabeling, but its *orientation* phase (like
/// every PC implementation's) is order-dependent, so the
/// column-permutation relation compares skeletons only.
std::set<NamedEdge> SkeletonOf(const std::set<NamedEdge>& claims) {
  std::set<NamedEdge> out;
  for (const auto& [a, b] : claims) {
    out.insert(a < b ? NamedEdge{a, b} : NamedEdge{b, a});
  }
  return out;
}

std::string DescribeDiff(const std::set<NamedEdge>& base,
                         const std::set<NamedEdge>& variant) {
  std::ostringstream os;
  for (const auto& e : base) {
    if (!variant.count(e)) os << " -" << e.first << "->" << e.second;
  }
  for (const auto& e : variant) {
    if (!base.count(e)) os << " +" << e.first << "->" << e.second;
  }
  return os.str();
}

}  // namespace

std::vector<CheckFailure> CheckDiscoveryInvariances(
    const std::vector<std::vector<double>>& columns,
    const std::vector<std::string>& names, uint64_t seed,
    const MetamorphicOptions& options) {
  std::vector<CheckFailure> failures;
  CDI_CHECK(columns.size() == names.size());
  Rng rng(seed ^ 0xC0FFEEULL);

  auto run = [&](const std::vector<std::vector<double>>& cols,
                 const std::vector<std::string>& col_names,
                 const discovery::DiscoveryOptions& d)
      -> Result<discovery::DiscoverySummary> {
    return discovery::RunDiscovery(SpansOf(cols), col_names,
                                   options.algorithm, d);
  };

  auto base = run(columns, names, options.discovery);
  if (!base.ok()) {
    failures.push_back(
        {"metamorphic-base", base.status().ToString()});
    return failures;
  }
  const std::set<NamedEdge> base_claims = NamedClaims(*base, names);

  // ---- rerun identity (seed/state stability). -----------------------------
  {
    auto again = run(columns, names, options.discovery);
    if (!again.ok() || again->claims != base->claims) {
      failures.push_back({"metamorphic-rerun",
                          "identical rerun produced different claims"});
    }
  }

  // ---- column-permutation invariance. -------------------------------------
  {
    std::vector<std::size_t> perm(columns.size());
    for (std::size_t i = 0; i < perm.size(); ++i) perm[i] = i;
    rng.Shuffle(&perm);
    std::vector<std::vector<double>> cols;
    std::vector<std::string> col_names;
    for (std::size_t i : perm) {
      cols.push_back(columns[i]);
      col_names.push_back(names[i]);
    }
    auto variant = run(cols, col_names, options.discovery);
    if (!variant.ok()) {
      failures.push_back(
          {"metamorphic-column-permutation", variant.status().ToString()});
    } else if (auto skeleton =
                   SkeletonOf(NamedClaims(*variant, col_names));
               skeleton != SkeletonOf(base_claims)) {
      failures.push_back(
          {"metamorphic-column-permutation",
           "skeleton changed under column relabeling:" +
               DescribeDiff(SkeletonOf(base_claims), skeleton)});
    }
  }

  // ---- row-permutation invariance. ----------------------------------------
  {
    const std::size_t n = columns.empty() ? 0 : columns[0].size();
    std::vector<std::size_t> perm(n);
    for (std::size_t i = 0; i < n; ++i) perm[i] = i;
    rng.Shuffle(&perm);
    std::vector<std::vector<double>> cols(columns.size());
    for (std::size_t c = 0; c < columns.size(); ++c) {
      cols[c].reserve(n);
      for (std::size_t i : perm) cols[c].push_back(columns[c][i]);
    }
    auto variant = run(cols, names, options.discovery);
    if (!variant.ok()) {
      failures.push_back(
          {"metamorphic-row-permutation", variant.status().ToString()});
    } else if (auto claims = NamedClaims(*variant, names);
               claims != base_claims) {
      failures.push_back({"metamorphic-row-permutation",
                          "claims changed under row reordering:" +
                              DescribeDiff(base_claims, claims)});
    }
  }

  // ---- affine-rescaling invariance. ---------------------------------------
  {
    std::vector<std::vector<double>> cols = columns;
    for (auto& col : cols) {
      const double scale = rng.Uniform(options.scale_lo, options.scale_hi);
      const double shift = rng.Uniform(options.shift_lo, options.shift_hi);
      for (double& v : col) {
        if (!std::isnan(v)) v = scale * v + shift;
      }
    }
    auto variant = run(cols, names, options.discovery);
    if (!variant.ok()) {
      failures.push_back(
          {"metamorphic-affine", variant.status().ToString()});
    } else if (auto claims = NamedClaims(*variant, names);
               claims != base_claims) {
      failures.push_back({"metamorphic-affine",
                          "claims changed under positive affine rescaling:" +
                              DescribeDiff(base_claims, claims)});
    }
  }

  // ---- cached vs uncached CI: bitwise-identical claim list. ---------------
  {
    discovery::DiscoveryOptions d = options.discovery;
    d.use_ci_cache = !d.use_ci_cache;
    auto variant = run(columns, names, d);
    if (!variant.ok() || variant->claims != base->claims ||
        variant->definite != base->definite) {
      failures.push_back({"differential-ci-cache",
                          "cached and uncached CI runs disagree"});
    }
  }

  // ---- 1 vs N threads: bitwise-identical claim list. ----------------------
  {
    discovery::DiscoveryOptions d = options.discovery;
    d.num_threads = options.alt_threads;
    auto variant = run(columns, names, d);
    if (!variant.ok() || variant->claims != base->claims ||
        variant->definite != base->definite) {
      std::ostringstream os;
      os << options.discovery.num_threads << "-thread and "
         << options.alt_threads << "-thread runs disagree";
      failures.push_back({"differential-threads", os.str()});
    }
  }

  return failures;
}

}  // namespace cdi::testing
