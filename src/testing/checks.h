#ifndef CDI_TESTING_CHECKS_H_
#define CDI_TESTING_CHECKS_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/pipeline.h"
#include "datagen/scenario.h"
#include "graph/metrics.h"

namespace cdi::testing {

/// One failed check: which invariant broke and a human-readable detail
/// (values, edges, thresholds) for the failure report.
struct CheckFailure {
  std::string check;
  std::string detail;
};

/// Thresholds of the oracle checks. The floors are deliberately loose —
/// they must pass on *every* seeded draw of the scenario family — while
/// staying tight enough to catch structural bugs (a flipped edge, a broken
/// CI decision) that wreck the recovered graph.
struct CheckOptions {
  /// |standardized direct effect| ceiling; ground truth is exactly 0
  /// (scenarios are fully mediated by construction).
  double direct_effect_tolerance = 0.20;
  /// Per-size floors for the recovered edge set: small graphs (few
  /// clusters) must score higher than large ones.
  double presence_f1_floor_small = 0.55;   ///< <= 6 truth clusters
  double presence_f1_floor_large = 0.45;   ///< > 6 truth clusters
  double absence_f1_floor = 0.60;
  std::size_t small_graph_clusters = 6;
};

/// Ground-truth self-checks on a materialized scenario: the cluster DAG is
/// acyclic with no direct exposure -> outcome edge but at least one
/// mediated path, the attribute DAG is acyclic and induces exactly the
/// cluster DAG, and the input table is row-aligned with the entities.
std::vector<CheckFailure> CheckScenarioGroundTruth(
    const datagen::Scenario& scenario);

/// Oracle checks of a pipeline run against the scenario's ground truth:
///
///  * adjustment-separation — the adjustment set read off the *recovered*
///    C-DAG must d-separate exposure and outcome in the ground-truth
///    cluster DAG whenever the truth-derived adjustment set does (a
///    differential oracle: scenarios where even the true mediator set
///    fails — mediator-outcome confounding — are not charged to CATER);
///  * direct-effect — re-estimating the direct effect with the recovered
///    adjustment set must give |effect| <= direct_effect_tolerance
///    (ground truth: 0, fully mediated);
///  * edge-metrics — presence/absence F1 of the recovered claims against
///    the truth DAG must clear the per-size floors.
std::vector<CheckFailure> CheckPipelineAgainstTruth(
    const datagen::Scenario& scenario, const core::PipelineResult& run,
    const CheckOptions& options = {});

/// Summarization oracle: runs the greedy CaGreS-style merge pass over the
/// ground-truth cluster DAG at every node budget from n-1 down to the
/// safe floor (the largest k below which no legal contraction exists —
/// exposure/outcome are unmergeable and contractions must stay acyclic).
/// Every achievable summary must:
///
///  * stay acyclic and hit its budget exactly (num_nodes == k);
///  * keep exposure and outcome as unmerged singleton super-nodes;
///  * partition the original clusters (members disjoint, union complete,
///    NodeOf provenance agreeing with the member lists);
///  * adjustment-separation — the summary's adjustment set (mediator and
///    confounder super-node members, projected back onto truth clusters)
///    must still d-separate exposure and outcome in the ground-truth DAG
///    whenever the truth-derived adjustment set does (the same
///    differential oracle CheckPipelineAgainstTruth applies to the
///    recovered C-DAG).
std::vector<CheckFailure> CheckSummarizationAgainstTruth(
    const datagen::Scenario& scenario);

/// Scores recovered claims (topic-name pairs) against the ground-truth
/// cluster DAG; topics unknown to the truth count as presence false
/// positives (the evaluation harness's convention).
graph::EdgeSetMetrics ScoreClaims(
    const datagen::Scenario& scenario,
    const std::vector<std::pair<std::string, std::string>>& claims);

}  // namespace cdi::testing

#endif  // CDI_TESTING_CHECKS_H_
