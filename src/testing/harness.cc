#include "testing/harness.h"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <utility>

#include "core/evaluation.h"
#include "core/pipeline.h"
#include "table/csv.h"

namespace cdi::testing {

namespace {

/// Reverses edge (from -> to) in the recovered build result: the claim
/// graph, the claim list, and the definite list all flip consistently, as
/// a real orientation bug in discovery would.
void FlipEdge(core::CdagBuildResult* build, const std::string& from,
              const std::string& to) {
  auto& g = build->cdag.mutable_graph();
  auto f = g.NodeIdOf(from);
  auto t = g.NodeIdOf(to);
  if (f.ok() && t.ok()) {
    g.RemoveEdge(*f, *t);
    CDI_CHECK(g.AddEdge(*t, *f).ok() || g.HasEdge(*t, *f));
  }
  for (auto* list : {&build->claims, &build->definite}) {
    for (auto& [a, b] : *list) {
      if (a == from && b == to) std::swap(a, b);
    }
  }
}

void InjectFault(FaultKind kind, const datagen::Scenario& scenario,
                 core::PipelineResult* run) {
  if (kind == FaultKind::kNone) return;
  auto& build = run->build;
  if (kind == FaultKind::kFlipOutcomeEdges) {
    const std::string outcome = build.cdag.outcome_cluster();
    const auto& g = build.cdag.graph();
    auto o = g.NodeIdOf(outcome);
    if (!o.ok()) return;
    std::vector<std::string> parents;
    for (graph::NodeId p : g.Parents(*o)) parents.push_back(g.NodeName(p));
    for (const auto& p : parents) FlipEdge(&build, p, outcome);
    return;
  }
  // kFlipTrueEdge: reverse the first recovered claim that matches a
  // ground-truth edge.
  for (const auto& [a, b] : build.claims) {
    if (scenario.cluster_dag.HasNode(a) && scenario.cluster_dag.HasNode(b) &&
        scenario.cluster_dag.HasEdge(a, b)) {
      FlipEdge(&build, a, b);
      return;
    }
  }
}

/// Deterministic flat rendering of all scenario tables for the bitwise
/// seed-stability differential.
std::string FlattenScenario(const datagen::Scenario& s) {
  std::string out = table::WriteCsvString(s.input_table);
  for (const auto& t : s.lake.tables()) {
    out += "\n--" + t.name() + "\n" + table::WriteCsvString(t);
  }
  return out;
}

std::string ClaimsToString(
    const std::vector<std::pair<std::string, std::string>>& claims) {
  std::string out;
  for (const auto& [a, b] : claims) out += a + "->" + b + ";";
  return out;
}

}  // namespace

Result<FaultKind> ParseFaultKind(const std::string& name) {
  if (name == "none") return FaultKind::kNone;
  if (name == "flip-outcome-edges") return FaultKind::kFlipOutcomeEdges;
  if (name == "flip-true-edge") return FaultKind::kFlipTrueEdge;
  return Status::InvalidArgument("unknown fault kind: " + name);
}

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone:
      return "none";
    case FaultKind::kFlipOutcomeEdges:
      return "flip-outcome-edges";
    case FaultKind::kFlipTrueEdge:
      return "flip-true-edge";
  }
  return "none";
}

Result<TrialResult> RunFuzzTrial(uint64_t seed, const FuzzOptions& options) {
  TrialResult result;
  result.seed = seed;

  CDI_ASSIGN_OR_RETURN(datagen::ScenarioSpec spec,
                       RandomScenarioSpec(seed, options.scenario));
  CDI_ASSIGN_OR_RETURN(std::unique_ptr<datagen::Scenario> scenario,
                       datagen::BuildScenario(spec));
  result.num_clusters = scenario->cluster_dag.num_nodes();
  result.num_entities = spec.num_entities;

  // ---- ground-truth self-checks + seed stability. -------------------------
  for (auto& f : CheckScenarioGroundTruth(*scenario)) {
    result.failures.push_back(std::move(f));
  }
  {
    auto again = datagen::BuildScenario(spec);
    if (!again.ok()) {
      result.failures.push_back(
          {"seed-stability", "rebuild failed: " + again.status().ToString()});
    } else if (FlattenScenario(*scenario) != FlattenScenario(**again) ||
               !(scenario->cluster_dag == (*again)->cluster_dag) ||
               !(scenario->attribute_dag == (*again)->attribute_dag)) {
      result.failures.push_back(
          {"seed-stability",
           "same spec materialized to different tables or ground truth"});
    }
  }

  // ---- summarization oracle over the ground-truth DAG. --------------------
  if (options.run_summarization) {
    for (auto& f : CheckSummarizationAgainstTruth(*scenario)) {
      result.failures.push_back(std::move(f));
    }
  }

  // ---- pipeline: serial reference + parallel bitwise differential. --------
  core::PipelineOptions pipe_options =
      core::DefaultEvaluationOptions(*scenario);
  pipe_options.num_threads = 1;
  // The scenarios plant KG decoy columns the extractor should — but, with
  // the oracle's unknown-concept noise, occasionally does not — discard. A
  // surviving decoy must not steal a VarClus slot from a true cluster, so
  // leave headroom above the pinned granularity and let splitting continue
  // past it: an all-noise column splits off into its own singleton instead
  // of forcing two true clusters to merge. The generator's member loadings
  // (|0.80..0.95|) keep every true cluster's second eigenvalue below
  // ~0.40, so a 0.5 split threshold cannot shatter a real cluster but does
  // break up a decoy-induced merge.
  pipe_options.builder.varclus.max_clusters += 2;
  pipe_options.builder.varclus.second_eigenvalue_threshold = 0.5;
  core::Pipeline pipeline(&scenario->kg, &scenario->lake,
                          scenario->oracle.get(), &scenario->topics,
                          pipe_options);
  auto run = pipeline.Run(scenario->input_table, spec.entity_column,
                          scenario->exposure_attribute,
                          scenario->outcome_attribute);
  if (!run.ok()) {
    result.failures.push_back({"pipeline", run.status().ToString()});
    return result;
  }
  if (options.num_threads > 1) {
    core::PipelineOptions parallel_options = pipe_options;
    parallel_options.num_threads = options.num_threads;
    core::Pipeline parallel(&scenario->kg, &scenario->lake,
                            scenario->oracle.get(), &scenario->topics,
                            parallel_options);
    auto prun = parallel.Run(scenario->input_table, spec.entity_column,
                             scenario->exposure_attribute,
                             scenario->outcome_attribute);
    if (!prun.ok()) {
      result.failures.push_back(
          {"differential-pipeline-threads", prun.status().ToString()});
    } else if (prun->build.claims != run->build.claims ||
               prun->build.definite != run->build.definite ||
               table::WriteCsvString(prun->organization.organized) !=
                   table::WriteCsvString(run->organization.organized)) {
      std::ostringstream os;
      os << "1-thread vs " << options.num_threads
         << "-thread pipeline runs differ (serial: "
         << ClaimsToString(run->build.claims) << ")";
      result.failures.push_back(
          {"differential-pipeline-threads", os.str()});
    }
  }

  // ---- fault injection + oracle checks. -----------------------------------
  InjectFault(options.fault, *scenario, &*run);
  for (auto& f :
       CheckPipelineAgainstTruth(*scenario, *run, options.checks)) {
    result.failures.push_back(std::move(f));
  }
  {
    const auto metrics = ScoreClaims(*scenario, run->build.claims);
    result.presence_f1 = metrics.presence.f1;
    result.absence_f1 = metrics.absence.f1;
    auto est = core::EstimateEffect(
        run->organization.organized, scenario->exposure_attribute,
        scenario->outcome_attribute,
        run->build.cdag.DirectEffectAdjustmentAttributes(),
        run->organization.row_weights);
    if (est.ok()) result.direct_effect = est->abs_effect;
  }

  // ---- discovery-layer metamorphic relations. -----------------------------
  if (options.run_metamorphic) {
    std::vector<std::vector<double>> columns;
    std::vector<std::string> names;
    for (const auto& [name, col] : scenario->clean_data) {
      names.push_back(name);
      columns.push_back(col);
    }
    for (auto& f : CheckDiscoveryInvariances(columns, names, seed,
                                             options.metamorphic)) {
      result.failures.push_back(std::move(f));
    }
  }
  return result;
}

std::string ReproducerCommand(uint64_t seed, const FuzzOptions& options) {
  std::ostringstream os;
  os << "cdi_fuzz --trials 1 --seed " << seed << " --num-threads "
     << options.num_threads;
  if (!options.run_metamorphic) os << " --no-metamorphic";
  if (!options.run_summarization) os << " --no-summarize";
  if (options.fault != FaultKind::kNone) {
    os << " --inject-bug " << FaultKindName(options.fault);
  }
  return os.str();
}

FuzzSummary RunFuzz(uint64_t base_seed, std::size_t trials,
                    const FuzzOptions& options, std::ostream* log) {
  FuzzSummary summary;
  double presence_sum = 0.0;
  for (std::size_t i = 0; i < trials; ++i) {
    const uint64_t seed = base_seed + i;
    auto trial = RunFuzzTrial(seed, options);
    TrialResult r;
    if (trial.ok()) {
      r = std::move(*trial);
    } else {
      r.seed = seed;
      r.failures.push_back({"harness", trial.status().ToString()});
    }
    ++summary.trials;
    presence_sum += r.presence_f1;
    summary.min_presence_f1 = std::min(summary.min_presence_f1,
                                       r.presence_f1);
    summary.min_absence_f1 = std::min(summary.min_absence_f1, r.absence_f1);
    summary.max_direct_effect =
        std::max(summary.max_direct_effect, r.direct_effect);
    if (!r.passed()) {
      ++summary.failed_trials;
      if (log != nullptr) {
        for (const auto& f : r.failures) {
          *log << "FAIL seed=" << r.seed << " [" << f.check << "] "
               << f.detail << "\n";
        }
        *log << "  reproduce: " << ReproducerCommand(r.seed, options)
             << "\n";
      }
      summary.failures.push_back(std::move(r));
    }
  }
  if (summary.trials > 0) {
    summary.mean_presence_f1 = presence_sum / summary.trials;
  }
  if (log != nullptr) {
    *log << "cdi_fuzz: " << summary.trials - summary.failed_trials << "/"
         << summary.trials << " trials passed"
         << " (presence F1 min " << summary.min_presence_f1 << " mean "
         << summary.mean_presence_f1 << ", absence F1 min "
         << summary.min_absence_f1 << ", max |direct effect| "
         << summary.max_direct_effect << ")\n";
  }
  return summary;
}

}  // namespace cdi::testing
