#ifndef CDI_TESTING_HARNESS_H_
#define CDI_TESTING_HARNESS_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/status.h"
#include "testing/checks.h"
#include "testing/metamorphic.h"
#include "testing/random_scenario.h"

namespace cdi::testing {

/// Intentional bugs the harness can inject into a pipeline result to prove
/// the oracle checks have teeth (they must be *caught*, with a reproducer).
enum class FaultKind {
  kNone,
  /// Reverse every recovered C-DAG edge into the outcome cluster — the
  /// "flipped edge" discovery bug. Destroys the recovered mediator set, so
  /// the adjustment-separation and direct-effect oracles must fire.
  kFlipOutcomeEdges,
  /// Reverse the first recovered claim that matches a ground-truth edge —
  /// a subtler single-edge orientation bug caught by the metric floors /
  /// separation oracle on most seeds.
  kFlipTrueEdge,
};

/// Parses "none" / "flip-outcome-edges" / "flip-true-edge".
Result<FaultKind> ParseFaultKind(const std::string& name);
const char* FaultKindName(FaultKind kind);

struct FuzzOptions {
  RandomScenarioOptions scenario;
  CheckOptions checks;
  MetamorphicOptions metamorphic;
  /// Thread count of the parallel pipeline run compared bitwise against
  /// the serial reference run (<= 1 skips the comparison).
  int num_threads = 8;
  /// Run the discovery-layer metamorphic relations each trial.
  bool run_metamorphic = true;
  /// Run the summarization oracle (CheckSummarizationAgainstTruth: merge
  /// pass over the truth DAG at every reachable budget) each trial.
  bool run_summarization = true;
  FaultKind fault = FaultKind::kNone;
  /// Failure budget for a sweep: the pipeline is statistical end to end,
  /// so arbitrary seed ranges carry an irreducible flake floor (~0.5% of
  /// trials draw a scenario whose sample happens to defeat the relevance
  /// filter or clustering; see DESIGN.md). Sweeps over fixed, vetted seed
  /// ranges keep the strict default of 0; broad exploratory sweeps may
  /// budget 1-2%. Injected faults fail 80-100% of trials, far above any
  /// sane budget.
  std::size_t max_failed_trials = 0;
};

/// Outcome of one seeded trial.
struct TrialResult {
  uint64_t seed = 0;
  std::vector<CheckFailure> failures;
  /// Scenario / run statistics for the sweep summary.
  std::size_t num_clusters = 0;
  std::size_t num_entities = 0;
  double presence_f1 = 0.0;
  double absence_f1 = 0.0;
  double direct_effect = 0.0;

  bool passed() const { return failures.empty(); }
};

/// Runs one seeded trial: generate scenario -> materialize (twice, for the
/// seed-stability differential) -> run the pipeline serial and parallel
/// (bitwise compare) -> inject the configured fault -> oracle checks ->
/// metamorphic relations. Returns an error only on harness-level failures
/// (e.g. the generator emitted an invalid spec); check failures land in
/// TrialResult::failures.
Result<TrialResult> RunFuzzTrial(uint64_t seed, const FuzzOptions& options);

struct FuzzSummary {
  std::size_t trials = 0;
  std::size_t failed_trials = 0;
  /// Failing trials only (with their failures).
  std::vector<TrialResult> failures;
  double min_presence_f1 = 1.0;
  double mean_presence_f1 = 0.0;
  double min_absence_f1 = 1.0;
  double max_direct_effect = 0.0;

  bool all_passed() const { return failed_trials == 0; }
  bool within_budget(std::size_t max_failed) const {
    return failed_trials <= max_failed;
  }
};

/// Runs `trials` seeded trials (seeds base_seed, base_seed+1, ...). When
/// `log` is non-null, every failing trial is reported immediately with a
/// minimized single-seed reproducer command line, and a summary is printed
/// at the end.
FuzzSummary RunFuzz(uint64_t base_seed, std::size_t trials,
                    const FuzzOptions& options, std::ostream* log = nullptr);

/// The minimized reproducer: a cdi_fuzz invocation that replays exactly
/// one failing seed with the given configuration.
std::string ReproducerCommand(uint64_t seed, const FuzzOptions& options);

}  // namespace cdi::testing

#endif  // CDI_TESTING_HARNESS_H_
