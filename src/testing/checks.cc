#include "testing/checks.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <sstream>

#include "core/effect.h"
#include "core/identifiability.h"
#include "graph/dsep.h"
#include "summarize/summarize.h"

namespace cdi::testing {

namespace {

std::string Fmt(const char* format, double a, double b) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), format, a, b);
  return buf;
}

void Fail(std::vector<CheckFailure>* out, std::string check,
          std::string detail) {
  out->push_back({std::move(check), std::move(detail)});
}

/// Truth-DAG node ids of the named clusters, skipping names the truth does
/// not know (unknown topics) and the endpoints themselves.
std::set<graph::NodeId> TruthIds(const graph::Digraph& truth,
                                 const std::vector<std::string>& names,
                                 graph::NodeId t, graph::NodeId o) {
  std::set<graph::NodeId> ids;
  for (const auto& name : names) {
    auto id = truth.NodeIdOf(name);
    if (id.ok() && *id != t && *id != o) ids.insert(*id);
  }
  return ids;
}

std::string JoinNames(const graph::Digraph& g,
                      const std::set<graph::NodeId>& ids) {
  std::string out = "{";
  for (graph::NodeId id : ids) {
    if (out.size() > 1) out += ", ";
    out += g.NodeName(id);
  }
  return out + "}";
}

}  // namespace

std::vector<CheckFailure> CheckScenarioGroundTruth(
    const datagen::Scenario& scenario) {
  std::vector<CheckFailure> failures;
  const auto& dag = scenario.cluster_dag;
  if (!dag.IsAcyclic()) {
    Fail(&failures, "truth-acyclic", "ground-truth cluster DAG has a cycle");
  }
  if (!scenario.attribute_dag.IsAcyclic()) {
    Fail(&failures, "truth-acyclic", "attribute DAG has a cycle");
  }
  const auto& spec = scenario.spec;
  if (dag.HasEdge(spec.exposure_cluster, spec.outcome_cluster)) {
    Fail(&failures, "truth-fully-mediated",
         "direct exposure -> outcome edge present");
  }
  auto t = dag.NodeIdOf(spec.exposure_cluster);
  auto o = dag.NodeIdOf(spec.outcome_cluster);
  if (!t.ok() || !o.ok()) {
    Fail(&failures, "truth-endpoints", "exposure/outcome cluster missing");
    return failures;
  }
  if (!dag.HasDirectedPath(*t, *o)) {
    Fail(&failures, "truth-fully-mediated",
         "no mediated exposure -> outcome path");
  }
  // The attribute DAG must induce exactly the cluster DAG (the C-DAG an
  // omniscient builder would output).
  auto induced = core::InduceClusterGraph(scenario.attribute_dag,
                                          scenario.cluster_members);
  if (!induced.ok()) {
    Fail(&failures, "truth-induced", induced.status().ToString());
  } else if (!(*induced == dag)) {
    Fail(&failures, "truth-induced",
         "induced cluster graph differs from ground-truth cluster DAG");
  }
  if (scenario.input_table.num_rows() != scenario.entity_names.size()) {
    Fail(&failures, "truth-table-shape",
         "input table rows != entity count");
  }
  return failures;
}

std::vector<CheckFailure> CheckSummarizationAgainstTruth(
    const datagen::Scenario& scenario) {
  std::vector<CheckFailure> failures;
  const graph::Digraph& truth = scenario.cluster_dag;
  const auto& spec = scenario.spec;
  const std::size_t n = truth.num_nodes();
  if (n < 3) return failures;  // nothing to contract around the endpoints
  auto t = truth.NodeIdOf(spec.exposure_cluster);
  auto o = truth.NodeIdOf(spec.outcome_cluster);
  CDI_CHECK(t.ok() && o.ok());

  // Truth-derived adjustment set and its separation verdict — the left side
  // of the differential oracle (identical to CheckPipelineAgainstTruth).
  std::set<graph::NodeId> truth_set;
  for (graph::NodeId v : truth.NodesOnDirectedPaths(*t, *o)) {
    truth_set.insert(v);
  }
  const std::set<graph::NodeId> anc_t = truth.Ancestors(*t);
  const std::set<graph::NodeId> anc_o = truth.Ancestors(*o);
  for (graph::NodeId v = 0; v < n; ++v) {
    if (v == *t || v == *o) continue;
    if (anc_t.count(v) && anc_o.count(v)) truth_set.insert(v);
  }
  auto truth_sep = graph::DSeparated(truth, *t, *o, truth_set);
  if (!truth_sep.ok()) {
    Fail(&failures, "summary-separation", "truth d-separation query failed");
    return failures;
  }

  summarize::SummarizeOptions sopts;
  sopts.max_pairs = n * (n - 1) / 2;  // score every pair: DAGs are small here
  for (std::size_t k = n - 1; k >= 2; --k) {
    char tag[64];
    std::snprintf(tag, sizeof(tag), " (k=%zu, n=%zu)", k, n);
    sopts.budget = k;
    auto summary = summarize::Summarize(truth, scenario.cluster_members,
                                        spec.exposure_cluster,
                                        spec.outcome_cluster, sopts);
    if (!summary.ok()) {
      // The safe floor: endpoint protection + acyclicity can make budgets
      // below some k unreachable. That is a legal outcome, not a failure.
      if (summary.status().code() == StatusCode::kFailedPrecondition) break;
      Fail(&failures, "summary-build",
           summary.status().ToString() + tag);
      continue;
    }
    if (!summary->graph().IsAcyclic()) {
      Fail(&failures, "summary-acyclic", std::string("summary has a cycle") + tag);
    }
    if (summary->num_nodes() != k) {
      Fail(&failures, "summary-budget",
           Fmt("summary has %.0f nodes, budget %.0f",
               static_cast<double>(summary->num_nodes()),
               static_cast<double>(k)));
    }
    // Exposure/outcome survive as unmerged singletons.
    for (const char* which : {"exposure", "outcome"}) {
      const std::string& name = which[0] == 'e' ? spec.exposure_cluster
                                                : spec.outcome_cluster;
      auto node = summary->NodeOf(name);
      if (!node.ok() || *node != name) {
        Fail(&failures, "summary-endpoints",
             std::string(which) + " cluster merged or lost" + tag);
      }
    }
    // Members partition the original clusters, and NodeOf agrees.
    std::set<std::string> seen;
    for (const auto& node : summary->nodes()) {
      for (const auto& member : node.members) {
        if (!seen.insert(member).second) {
          Fail(&failures, "summary-partition",
               "cluster " + member + " in two super-nodes" + tag);
        }
        auto owner = summary->NodeOf(member);
        if (!owner.ok() || *owner != node.name) {
          Fail(&failures, "summary-partition",
               "NodeOf(" + member + ") disagrees with member list" + tag);
        }
      }
    }
    if (seen.size() != n) {
      Fail(&failures, "summary-partition",
           Fmt("members cover %.0f of %.0f clusters",
               static_cast<double>(seen.size()), static_cast<double>(n)));
    }
    // Differential adjustment-separation on the summary's adjustment set.
    if (*truth_sep) {
      std::vector<std::string> adjustment;
      std::set<std::string> adj_nodes;
      for (const auto& name : summary->MediatorNodes()) adj_nodes.insert(name);
      for (const auto& name : summary->ConfounderNodes()) {
        adj_nodes.insert(name);
      }
      for (const auto& node : summary->nodes()) {
        if (!adj_nodes.count(node.name)) continue;
        for (const auto& member : node.members) adjustment.push_back(member);
      }
      const std::set<graph::NodeId> rec_set =
          TruthIds(truth, adjustment, *t, *o);
      auto rec_sep = graph::DSeparated(truth, *t, *o, rec_set);
      if (!rec_sep.ok()) {
        Fail(&failures, "summary-separation",
             std::string("summary d-separation query failed") + tag);
      } else if (!*rec_sep) {
        Fail(&failures, "summary-separation",
             "summary adjustment set " + JoinNames(truth, rec_set) +
                 " leaves exposure and outcome d-connected in the truth "
                 "DAG (truth-derived set " + JoinNames(truth, truth_set) +
                 " separates them)" + tag);
      }
    }
  }
  return failures;
}

graph::EdgeSetMetrics ScoreClaims(
    const datagen::Scenario& scenario,
    const std::vector<std::pair<std::string, std::string>>& claims) {
  const graph::Digraph& truth = scenario.cluster_dag;
  std::map<std::string, graph::NodeId> extra;
  auto id_of = [&](const std::string& name) -> graph::NodeId {
    auto id = truth.NodeIdOf(name);
    if (id.ok()) return *id;
    auto [it, inserted] =
        extra.emplace(name, truth.num_nodes() + extra.size());
    return it->second;
  };
  std::vector<graph::Edge> mapped;
  for (const auto& [from, to] : claims) {
    mapped.emplace_back(id_of(from), id_of(to));
  }
  return graph::CompareEdgeSets(truth.num_nodes(), mapped, truth.Edges());
}

std::vector<CheckFailure> CheckPipelineAgainstTruth(
    const datagen::Scenario& scenario, const core::PipelineResult& run,
    const CheckOptions& options) {
  std::vector<CheckFailure> failures;
  const graph::Digraph& truth = scenario.cluster_dag;
  const auto& spec = scenario.spec;
  auto t = truth.NodeIdOf(spec.exposure_cluster);
  auto o = truth.NodeIdOf(spec.outcome_cluster);
  CDI_CHECK(t.ok() && o.ok());

  // ---- adjustment-separation (differential d-separation oracle). ----------
  {
    std::set<graph::NodeId> truth_set;
    for (graph::NodeId v : truth.NodesOnDirectedPaths(*t, *o)) {
      truth_set.insert(v);
    }
    const std::set<graph::NodeId> anc_t = truth.Ancestors(*t);
    const std::set<graph::NodeId> anc_o = truth.Ancestors(*o);
    for (graph::NodeId v = 0; v < truth.num_nodes(); ++v) {
      if (v == *t || v == *o) continue;
      if (anc_t.count(v) && anc_o.count(v)) truth_set.insert(v);
    }
    auto truth_sep = graph::DSeparated(truth, *t, *o, truth_set);
    // Recovered adjustment set, projected onto clusters the truth knows.
    std::vector<std::string> recovered;
    for (const auto& m : run.build.cdag.MediatorClusters()) {
      recovered.push_back(m);
    }
    for (const auto& c : run.build.cdag.ConfounderClusters()) {
      recovered.push_back(c);
    }
    const std::set<graph::NodeId> rec_set =
        TruthIds(truth, recovered, *t, *o);
    auto rec_sep = graph::DSeparated(truth, *t, *o, rec_set);
    if (!truth_sep.ok() || !rec_sep.ok()) {
      Fail(&failures, "adjustment-separation", "d-separation query failed");
    } else if (*truth_sep && !*rec_sep) {
      Fail(&failures, "adjustment-separation",
           "recovered adjustment set " + JoinNames(truth, rec_set) +
               " leaves exposure and outcome d-connected in the truth DAG "
               "(truth-derived set " + JoinNames(truth, truth_set) +
               " separates them)");
    }
  }

  // ---- direct-effect (fully mediated => ~0). ------------------------------
  {
    auto est = core::EstimateEffect(
        run.organization.organized, scenario.exposure_attribute,
        scenario.outcome_attribute,
        run.build.cdag.DirectEffectAdjustmentAttributes(),
        run.organization.row_weights);
    if (!est.ok()) {
      Fail(&failures, "direct-effect", est.status().ToString());
    } else if (est->abs_effect > options.direct_effect_tolerance) {
      Fail(&failures, "direct-effect",
           Fmt("|direct effect| = %.3f exceeds tolerance %.3f",
               est->abs_effect, options.direct_effect_tolerance));
    }
  }

  // ---- edge-metrics (per-size P/R/F1 floors). -----------------------------
  {
    const auto metrics = ScoreClaims(scenario, run.build.claims);
    const double presence_floor =
        truth.num_nodes() <= options.small_graph_clusters
            ? options.presence_f1_floor_small
            : options.presence_f1_floor_large;
    if (metrics.presence.f1 < presence_floor) {
      Fail(&failures, "edge-metrics",
           Fmt("presence F1 = %.3f below floor %.3f", metrics.presence.f1,
               presence_floor));
    }
    if (metrics.absence.f1 < options.absence_f1_floor) {
      Fail(&failures, "edge-metrics",
           Fmt("absence F1 = %.3f below floor %.3f", metrics.absence.f1,
               options.absence_f1_floor));
    }
  }
  return failures;
}

}  // namespace cdi::testing
