#ifndef CDI_TESTING_RANDOM_SCENARIO_H_
#define CDI_TESTING_RANDOM_SCENARIO_H_

#include <cstdint>

#include "common/status.h"
#include "datagen/scenario.h"

namespace cdi::testing {

/// Knobs of the randomized scenario family. The defaults are tuned so the
/// CATER pipeline *should* succeed on every draw: edges are linear with
/// coefficients bounded away from both zero (relevance filter) and one
/// (FD filter), the oracle is given high recall, and data-quality
/// injection stays mild. Oracle checks then treat any failure as a bug,
/// not as an unlucky scenario.
struct RandomScenarioOptions {
  /// Total cluster count range, *including* the exposure and outcome
  /// singletons (so num_clusters - 2 intermediate clusters).
  std::size_t min_clusters = 5;
  std::size_t max_clusters = 8;
  /// Attributes per intermediate cluster (first is the driver).
  std::size_t max_members = 3;
  /// Entity count range.
  std::size_t min_entities = 280;
  std::size_t max_entities = 480;
  /// Probability of a causal edge between an ordered intermediate pair.
  double edge_prob = 0.30;
  /// Probability of exposure -> intermediate / intermediate -> outcome
  /// edges (one mediated exposure -> m -> outcome chain is always forced).
  double exposure_edge_prob = 0.55;
  double outcome_edge_prob = 0.35;
  /// Structural coefficient magnitude range for cluster edges.
  double coef_lo = 0.45;
  double coef_hi = 0.70;
  /// Kept low: mixed-sign coefficients let direct and indirect paths
  /// cancel (a faithfulness violation), making true edges statistically
  /// invisible to any CI-based pruner — not a pipeline bug.
  double negative_coef_prob = 0.10;
  /// Strong-faithfulness margin: every true cluster edge must keep
  /// |partial corr| >= this under every conditioning set of size <= 2
  /// (computed analytically from the linear SCM). Draws violating it are
  /// rejected and redrawn from a derived stream — near-cancellations make
  /// true edges statistically invisible to any CI-based method, so
  /// scenarios breaking the margin cannot serve as oracles. Set to 0 to
  /// disable the screen.
  double min_edge_partial_corr = 0.20;
  /// Attribute placement mix: lake vs knowledge graph (input table is
  /// reserved for the exposure/outcome attributes, as in COVID/FLIGHTS).
  double lake_placement_prob = 0.45;
  /// Number of distinct lake tables to spread lake attributes over.
  std::size_t max_lake_tables = 3;
  double one_to_many_prob = 0.25;
  /// Mild data-quality injection.
  double missing_attr_prob = 0.25;
  double missing_rate = 0.05;
  double mnar_attr_prob = 0.10;
  double mnar_strength = 0.20;
  double outlier_attr_prob = 0.10;
  double outlier_rate = 0.01;
  /// Probability of including a functionally-determined decoy attribute
  /// (the Data Organizer must drop it).
  double fd_attribute_prob = 0.50;
  /// Allow non-Gaussian structural noise (Laplace / uniform) draws.
  bool allow_non_gaussian = true;
};

/// Deterministically derives a scenario spec from `seed`: a random cluster
/// DAG (exposure first, outcome last, no direct exposure -> outcome edge,
/// at least one forced mediated chain, every intermediate cluster reachable
/// from the exposure), random member attributes split across the knowledge
/// graph and data lake, and mild data-quality injection. The result is a
/// parameterized generalization of datagen/covid.cc and flights.cc; feed
/// it to datagen::BuildScenario to materialize tables + ground truth.
Result<datagen::ScenarioSpec> RandomScenarioSpec(
    uint64_t seed, const RandomScenarioOptions& options = {});

}  // namespace cdi::testing

#endif  // CDI_TESTING_RANDOM_SCENARIO_H_
