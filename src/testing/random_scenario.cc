#include "testing/random_scenario.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <string>
#include <vector>

#include "common/rng.h"

namespace cdi::testing {

namespace {

/// Globally unique, single-token attribute name: cluster i, member j ->
/// "c3x0". Single tokens keep the topic model's keyword containment
/// unambiguous across clusters (with <= 9 clusters no name is a prefix of
/// another cluster's names).
std::string MemberName(std::size_t cluster, std::size_t member) {
  return "c" + std::to_string(cluster) + "x" + std::to_string(member);
}

double SignedCoef(Rng* rng, const RandomScenarioOptions& o) {
  const double magnitude = rng->Uniform(o.coef_lo, o.coef_hi);
  return rng->Bernoulli(o.negative_coef_prob) ? -magnitude : magnitude;
}

/// Gauss-Jordan inverse of a small SPD matrix (conditioning sets are <= 2,
/// so m is at most 4x4).
std::vector<std::vector<double>> Inverse(std::vector<std::vector<double>> m) {
  const std::size_t n = m.size();
  std::vector<std::vector<double>> inv(n, std::vector<double>(n, 0.0));
  for (std::size_t i = 0; i < n; ++i) inv[i][i] = 1.0;
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::abs(m[r][col]) > std::abs(m[pivot][col])) pivot = r;
    }
    std::swap(m[col], m[pivot]);
    std::swap(inv[col], inv[pivot]);
    const double d = m[col][col];
    for (std::size_t c = 0; c < n; ++c) {
      m[col][c] /= d;
      inv[col][c] /= d;
    }
    for (std::size_t r = 0; r < n; ++r) {
      if (r == col) continue;
      const double f = m[r][col];
      for (std::size_t c = 0; c < n; ++c) {
        m[r][c] -= f * m[col][c];
        inv[r][c] -= f * inv[col][c];
      }
    }
  }
  return inv;
}

/// Partial correlation of variables i, j given `cond`, from a covariance
/// matrix: invert the submatrix over {i, j} ∪ cond and normalize the
/// off-diagonal precision entry.
double PartialCorr(const std::vector<std::vector<double>>& sigma,
                   std::size_t i, std::size_t j,
                   const std::vector<std::size_t>& cond) {
  std::vector<std::size_t> idx = {i, j};
  idx.insert(idx.end(), cond.begin(), cond.end());
  std::vector<std::vector<double>> sub(idx.size(),
                                       std::vector<double>(idx.size()));
  for (std::size_t a = 0; a < idx.size(); ++a) {
    for (std::size_t b = 0; b < idx.size(); ++b) {
      sub[a][b] = sigma[idx[a]][idx[b]];
    }
  }
  const auto prec = Inverse(std::move(sub));
  return -prec[0][1] / std::sqrt(prec[0][0] * prec[1][1]);
}

/// Minimum |partial correlation| over all true cluster edges and all
/// conditioning sets of size <= 2 drawn from the remaining clusters,
/// computed analytically from the spec's linear SCM over cluster drivers
/// (X = B^T X + e, Sigma = A D A^T with A = (I - B^T)^{-1}). A small value
/// means some conditioning set renders a true edge statistically
/// invisible — a (near-)faithfulness violation no CI-based pruner can see
/// through, so such specs are rejected by the generator.
double MinTrueEdgePartialCorr(const datagen::ScenarioSpec& spec) {
  const std::size_t n = spec.clusters.size();
  std::map<std::string, std::size_t> index;
  for (std::size_t i = 0; i < n; ++i) index[spec.clusters[i].name] = i;

  // A = (I - B^T)^{-1} by forward substitution (clusters are topological,
  // so B^T is strictly lower triangular). Row i of A expresses driver i in
  // the noise basis: X_i = sum_k A[i][k] e_k.
  std::vector<std::vector<double>> coef(n, std::vector<double>(n, 0.0));
  for (const auto& e : spec.edges) {
    coef[index.at(e.to)][index.at(e.from)] = e.coef;
  }
  std::vector<std::vector<double>> a(n, std::vector<double>(n, 0.0));
  for (std::size_t i = 0; i < n; ++i) {
    a[i][i] = 1.0;
    for (std::size_t p = 0; p < i; ++p) {
      if (coef[i][p] == 0.0) continue;
      for (std::size_t k = 0; k <= p; ++k) a[i][k] += coef[i][p] * a[p][k];
    }
  }
  // Noise variances: the exposure code is unit variance; every other
  // driver's noise is variance-normalized to driver_noise^2 (scm.cc).
  std::vector<double> var(n, 1.0);
  for (std::size_t i = 1; i < n; ++i) {
    var[i] = spec.clusters[i].driver_noise * spec.clusters[i].driver_noise;
  }
  std::vector<std::vector<double>> sigma(n, std::vector<double>(n, 0.0));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      double s = 0.0;
      for (std::size_t k = 0; k <= std::min(i, j); ++k) {
        s += a[i][k] * var[k] * a[j][k];
      }
      sigma[i][j] = sigma[j][i] = s;
    }
  }

  double min_abs = 1.0;
  for (const auto& e : spec.edges) {
    const std::size_t i = index.at(e.from);
    const std::size_t j = index.at(e.to);
    std::vector<std::size_t> others;
    for (std::size_t k = 0; k < n; ++k) {
      if (k != i && k != j) others.push_back(k);
    }
    min_abs = std::min(min_abs, std::abs(PartialCorr(sigma, i, j, {})));
    for (std::size_t s = 0; s < others.size(); ++s) {
      min_abs = std::min(
          min_abs, std::abs(PartialCorr(sigma, i, j, {others[s]})));
      for (std::size_t t = s + 1; t < others.size(); ++t) {
        min_abs = std::min(
            min_abs,
            std::abs(PartialCorr(sigma, i, j, {others[s], others[t]})));
      }
    }
  }
  return min_abs;
}

Status Validate(const RandomScenarioOptions& o) {
  if (o.min_clusters < 4 || o.max_clusters < o.min_clusters) {
    return Status::InvalidArgument(
        "need min_clusters >= 4 (exposure + outcome + 2 intermediates) "
        "and max_clusters >= min_clusters");
  }
  if (o.min_entities < 20 || o.max_entities < o.min_entities) {
    return Status::InvalidArgument("bad entity range");
  }
  if (o.max_members == 0) {
    return Status::InvalidArgument("max_members must be >= 1");
  }
  if (o.coef_lo <= 0.0 || o.coef_hi < o.coef_lo) {
    return Status::InvalidArgument("bad coefficient range");
  }
  return Status::OK();
}

/// One unconstrained draw from the scenario distribution; RandomScenarioSpec
/// wraps this in the strong-faithfulness rejection loop.
datagen::ScenarioSpec GenerateOnce(Rng& rng, uint64_t seed,
                                   const RandomScenarioOptions& options) {
  using datagen::AttributeSpec;
  using datagen::ClusterSpec;
  using datagen::NoiseKind;
  using datagen::Placement;

  datagen::ScenarioSpec spec;
  spec.name = "fuzz_" + std::to_string(seed);
  spec.seed = seed;
  spec.num_entities = options.min_entities +
                      rng.UniformInt(static_cast<uint64_t>(
                          options.max_entities - options.min_entities + 1));
  spec.entity_prefix = "Ent";
  spec.entity_column = "entity_key";

  const std::size_t num_clusters =
      options.min_clusters +
      rng.UniformInt(static_cast<uint64_t>(options.max_clusters -
                                           options.min_clusters + 1));
  const std::size_t outcome = num_clusters - 1;  // cluster indices

  // Noise regime: like COVID (all-Gaussian) or FLIGHTS (non-Gaussian).
  if (options.allow_non_gaussian && rng.Bernoulli(0.5)) {
    spec.noise = rng.Bernoulli(0.5) ? NoiseKind::kLaplace
                                    : NoiseKind::kUniform;
    spec.gaussian_members = rng.Bernoulli(0.5);
  } else {
    spec.noise = NoiseKind::kGaussian;
    spec.gaussian_exposure_code = rng.Bernoulli(0.5);
  }

  // ---- Clusters (index 0 = exposure, last = outcome). ---------------------
  std::size_t num_lake_tables =
      1 + rng.UniformInt(static_cast<uint64_t>(options.max_lake_tables));
  std::vector<std::string> lake_names;
  for (std::size_t t = 0; t < num_lake_tables; ++t) {
    lake_names.push_back("lake_t" + std::to_string(t));
  }

  for (std::size_t i = 0; i < num_clusters; ++i) {
    ClusterSpec c;
    c.name = "c" + std::to_string(i);
    const bool singleton = (i == 0 || i == outcome);
    const std::size_t members =
        singleton ? 1
                  : 1 + rng.UniformInt(
                            static_cast<uint64_t>(options.max_members));
    for (std::size_t m = 0; m < members; ++m) {
      AttributeSpec a;
      a.name = MemberName(i, m);
      if (singleton) {
        // The analyst observes the exposure and outcome directly.
        a.placement = Placement::kInputTable;
      } else if (rng.Bernoulli(options.lake_placement_prob)) {
        a.placement = Placement::kLakeTable;
        a.lake_table = lake_names[rng.UniformInt(
            static_cast<uint64_t>(lake_names.size()))];
      } else {
        a.placement = Placement::kKnowledgeGraph;
      }
      if (m > 0) {
        // Loadings >= 0.80 (with member noise <= 0.45 below) keep every
        // true cluster's second eigenvalue under ~0.40, so the harness's
        // VarClus split threshold can sit at 0.5 without shattering a
        // real cluster while still separating decoy-induced merges.
        a.loading = rng.Uniform(0.80, 0.95) *
                    (rng.Bernoulli(0.25) ? -1.0 : 1.0);
      }
      // Mild data-quality injection (never on the exposure/outcome, whose
      // rows anchor the analysis like COVID's input columns do).
      if (!singleton) {
        if (rng.Bernoulli(options.missing_attr_prob)) {
          a.missing_rate = options.missing_rate;
        }
        if (rng.Bernoulli(options.mnar_attr_prob)) {
          a.mnar_strength = options.mnar_strength;
        }
        if (rng.Bernoulli(options.outlier_attr_prob)) {
          a.outlier_rate = options.outlier_rate;
        }
      }
      c.attributes.push_back(std::move(a));
    }
    c.driver_noise = rng.Uniform(0.8, 1.2);
    c.member_noise = rng.Uniform(0.30, 0.45);
    c.topic_keywords = {};  // cluster + attribute names suffice as keywords
    spec.clusters.push_back(std::move(c));
  }
  spec.exposure_cluster = spec.clusters.front().name;
  spec.outcome_cluster = spec.clusters.back().name;

  // ---- Random cluster DAG (indices are already topological). --------------
  // No direct exposure -> outcome edge: the effect must be fully mediated,
  // which is the invariant the direct-effect oracle check keys on.
  std::vector<std::vector<bool>> has_edge(
      num_clusters, std::vector<bool>(num_clusters, false));
  for (std::size_t i = 0; i < num_clusters; ++i) {
    for (std::size_t j = i + 1; j < num_clusters; ++j) {
      if (i == 0 && j == outcome) continue;
      double p = options.edge_prob;
      if (i == 0) p = options.exposure_edge_prob;
      if (j == outcome) p = options.outcome_edge_prob;
      has_edge[i][j] = rng.Bernoulli(p);
    }
  }
  // Force one strong mediated chain exposure -> m -> outcome.
  const std::size_t forced =
      1 + rng.UniformInt(static_cast<uint64_t>(outcome - 1));
  has_edge[0][forced] = true;
  has_edge[forced][outcome] = true;
  // Every intermediate cluster must be downstream of the exposure, so its
  // attributes pass the extractor's relevance filter (COVID/FLIGHTS have
  // the same shape: the entity code drives every cluster).
  std::vector<bool> reached(num_clusters, false);
  reached[0] = true;
  for (std::size_t j = 1; j < num_clusters; ++j) {
    for (std::size_t i = 0; i < j; ++i) {
      if (reached[i] && has_edge[i][j]) reached[j] = true;
    }
    if (!reached[j] && j != outcome) {
      has_edge[0][j] = true;
      reached[j] = true;
    }
  }

  for (std::size_t i = 0; i < num_clusters; ++i) {
    for (std::size_t j = i + 1; j < num_clusters; ++j) {
      if (!has_edge[i][j]) continue;
      datagen::ClusterEdgeSpec e;
      e.from = spec.clusters[i].name;
      e.to = spec.clusters[j].name;
      e.coef = SignedCoef(&rng, options);
      if (i == 0 && j == forced) e.coef = rng.Uniform(0.5, 0.7);
      if (i == forced && j == outcome) e.coef = rng.Uniform(0.5, 0.7);
      e.quad = 0.0;  // keep relations visible to the data side
      spec.edges.push_back(std::move(e));
    }
  }

  // ---- FD decoy + scenario-wide knobs. ------------------------------------
  if (rng.Bernoulli(options.fd_attribute_prob)) {
    datagen::FdAttributeSpec fd;
    fd.name = "fdtag";
    fd.numeric = rng.Bernoulli(0.5);
    if (rng.Bernoulli(0.5) && fd.numeric) {
      fd.placement = datagen::Placement::kLakeTable;
      fd.lake_table = lake_names[0];
    } else {
      fd.placement = datagen::Placement::kKnowledgeGraph;
    }
    spec.fd_attributes.push_back(std::move(fd));
  }
  for (const auto& name : lake_names) {
    if (rng.Bernoulli(options.one_to_many_prob)) {
      spec.one_to_many_tables.insert(name);
    }
  }
  spec.duplicate_row_rate = 0.03;
  spec.alias_fraction = rng.Uniform(0.0, 0.3);

  // High-recall oracle: the checks test CATER's machinery, not how it
  // degrades under an unreliable LLM (COVID/FLIGHTS cover that regime).
  spec.oracle.seed = seed ^ 0xA5A5A5A5ULL;
  spec.oracle.direct_recall = 0.99;
  spec.oracle.transitive_claim_prob = 0.60;
  spec.oracle.reverse_claim_prob = 0.10;
  spec.oracle.unrelated_claim_prob = 0.04;
  return spec;
}

}  // namespace

Result<datagen::ScenarioSpec> RandomScenarioSpec(
    uint64_t seed, const RandomScenarioOptions& options) {
  CDI_RETURN_IF_ERROR(Validate(options));
  // Derived stream, decorrelated from the materialization stream that
  // BuildScenario seeds with spec.seed. Rejection sampling keeps the
  // result a pure function of (seed, options): each rejected draw simply
  // consumes more of the same stream.
  Rng rng(seed * 0x9E3779B97F4A7C15ULL + 0xD1B54A32D192ED03ULL);
  constexpr int kMaxAttempts = 64;
  datagen::ScenarioSpec best;
  double best_margin = -1.0;
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    datagen::ScenarioSpec spec = GenerateOnce(rng, seed, options);
    const double margin = MinTrueEdgePartialCorr(spec);
    if (margin >= options.min_edge_partial_corr) return spec;
    if (margin > best_margin) {
      best_margin = margin;
      best = std::move(spec);
    }
  }
  // Every draw violated the margin (only plausible with an extreme
  // options combination); fall back to the most faithful one seen.
  return best;
}

}  // namespace cdi::testing
