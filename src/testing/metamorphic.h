#ifndef CDI_TESTING_METAMORPHIC_H_
#define CDI_TESTING_METAMORPHIC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "discovery/discovery.h"
#include "testing/checks.h"

namespace cdi::testing {

/// Knobs for the discovery-layer metamorphic relations.
struct MetamorphicOptions {
  discovery::Algorithm algorithm = discovery::Algorithm::kPc;
  /// Base discovery configuration (threads = 1, cache on).
  discovery::DiscoveryOptions discovery;
  /// Thread count of the parallel run compared against the serial one.
  int alt_threads = 8;
  /// Affine transform ranges: x -> scale * x + shift, scale > 0.
  double scale_lo = 0.5;
  double scale_hi = 3.0;
  double shift_lo = -2.0;
  double shift_hi = 2.0;

  MetamorphicOptions() {
    discovery.num_threads = 1;
    discovery.use_ci_cache = true;
    discovery.max_cond_size = 2;
  }
};

/// Runs the discovery algorithm on `columns` and verifies the metamorphic
/// and differential relations the engine documents:
///
///  * column-permutation invariance — relabeled inputs give the same
///    *skeleton* (adjacency set mapped back through the permutation; the
///    orientation phase of PC is order-dependent by design, so directed
///    claims are not compared here);
///  * row-permutation invariance — reordered samples give the same claim
///    set (sufficient statistics are permutation-invariant up to FP
///    summation order, far below any decision threshold);
///  * affine-rescaling invariance — x -> a*x + b (a > 0) per column leaves
///    the discovered structure unchanged (correlation is scale-free);
///  * cached-vs-uncached identity — disabling the CI cache yields a
///    bitwise-identical claim list;
///  * thread-count identity — 1-thread and alt_threads runs yield bitwise
///    identical claim lists (the engine's determinism guarantee);
///  * rerun identity — running twice on the same data is bitwise stable.
///
/// `seed` drives the permutations/transforms. Returns all violated
/// relations (empty = all hold).
std::vector<CheckFailure> CheckDiscoveryInvariances(
    const std::vector<std::vector<double>>& columns,
    const std::vector<std::string>& names, uint64_t seed,
    const MetamorphicOptions& options = {});

}  // namespace cdi::testing

#endif  // CDI_TESTING_METAMORPHIC_H_
