#ifndef CDI_STATS_FACTOR_CACHE_H_
#define CDI_STATS_FACTOR_CACHE_H_

#include <atomic>
#include <cstddef>
#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "stats/matrix.h"

namespace cdi::stats {

/// Shared Cholesky factorizations for the batched CI engine.
///
/// A PC skeleton level issues thousands of CI queries (x, y | S) whose
/// conditioning sets overlap heavily — lexicographic subset enumeration
/// walks S = {c0,c1,c2}, {c0,c1,c3}, ... — and GES rescoring grows a
/// sorted parent set one variable at a time. Every such query factors
/// base[S, S] + ridge·I. Because Cholesky is computed row by row, the
/// factor of any *prefix* of S is exactly the leading principal block of
/// S's factor, so a cached factor for a prefix extends to S by computing
/// only the new rows — and the extension is bitwise identical to
/// factoring from scratch (same subtractions, same order, same
/// operands). This cache keys factors by the exact ordered index
/// sequence S, probes progressively shorter prefixes on a miss, and
/// extends the longest hit.
///
/// Failed factorizations are cached too: a pivot failure at row t is a
/// deterministic property of the leading (t+1)-block, so any sequence
/// extending that prefix fails identically, and callers take the same
/// fallback they would have taken from scratch.
///
/// Thread-safe (shared_mutex around the map; counters are relaxed
/// atomics). Cache *content* is a pure function of the key — no entry is
/// ever derived via downdating or any arithmetic that depends on cache
/// history — so concurrent interleavings and evictions can only change
/// speed, never a value. (CholeskyDowndate / CholeskyRemoveVariable
/// exist for callers with tolerance contracts; they are deliberately
/// never used to populate this cache.)
class FactorCache {
 public:
  /// A cached lower-triangular factor of base[s, s] + ridge·I, stored
  /// packed (row i starts at i(i+1)/2 and has i+1 entries) so that a
  /// prefix factor is a *prefix of the array* and extension is a pure
  /// append. When `failed` is set the factorization hit a non-positive
  /// pivot at row `l.size()` rows in; `l` holds the valid prefix.
  struct Factor {
    std::size_t n = 0;  // number of variables the key covers
    bool failed = false;
    std::vector<double> l;  // packed lower triangle, n(n+1)/2 when !failed
  };

  /// Borrows `base` (typically a correlation or cross-product matrix),
  /// which must outlive the cache and stay at a stable address — hold it
  /// behind a unique_ptr/shared_ptr in movable owners. `ridge` is the
  /// diagonal regularizer the mirrored from-scratch path adds (1e-10 for
  /// PartialCorrelation, 1e-9 for SolveNormalEquations-style solves).
  FactorCache(const Matrix* base, double ridge);

  FactorCache(const FactorCache&) = delete;
  FactorCache& operator=(const FactorCache&) = delete;

  /// Factor of base[s, s] + ridge·I for |s| >= 2, reusing the longest
  /// cached prefix of `s`. Never returns null; inspect `failed`.
  std::shared_ptr<const Factor> FactorFor(const std::vector<std::size_t>& s);

  /// Partial correlation rho(i, j | given) — bitwise identical to
  /// stats::PartialCorrelation(*base, i, j, given) when the cache ridge
  /// is the 1e-10 that function applies — but the conditioning-set
  /// factor comes from the cache and only the two query rows are
  /// computed (on the stack, never cached). Small conditioning sets
  /// (|given| <= 3) skip the map and factor inline into a thread-local
  /// buffer: the map round trip costs more than redoing a factor that
  /// small, and the inline factor replays the same row arithmetic, so
  /// the answer is unchanged bit for bit.
  Result<double> PartialCorrelation(std::size_t i, std::size_t j,
                                    const std::vector<std::size_t>& given);

  /// Solves (base[s, s] + ridge·I) x = rhs with the cached factor;
  /// bitwise identical to CholeskySolve on the ridged submatrix. Fails
  /// when the factorization is degenerate — callers then run their own
  /// retry policy (e.g. the +1e-6 re-ridge of SolveNormalEquations).
  Result<std::vector<double>> Solve(const std::vector<std::size_t>& s,
                                    const std::vector<double>& rhs);

  /// Drops every factor covering fewer than `min_vars` variables. PC
  /// calls this as its level advances: level ℓ only extends prefixes of
  /// size ℓ-1 and up, so smaller factors are dead weight. Purely a
  /// memory/speed knob — a dropped factor is recomputed to the same bits.
  void EvictSmallerThan(std::size_t min_vars);

  std::size_t size() const;
  /// Monotonic counters (relaxed; for benchmarks and EXPERIMENTS.md).
  std::size_t hits() const { return hits_.load(std::memory_order_relaxed); }
  std::size_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }
  /// Rows computed via prefix extension (vs. `rows_from_scratch()` for
  /// rows computed with no usable prefix) — the factor-reuse win is
  /// roughly quadratic in the rows *not* recomputed.
  std::size_t rows_extended() const {
    return rows_extended_.load(std::memory_order_relaxed);
  }
  std::size_t rows_from_scratch() const {
    return rows_from_scratch_.load(std::memory_order_relaxed);
  }
  /// PartialCorrelation queries answered by the inline small-set path
  /// (no map access; not counted in hits/misses).
  std::size_t inline_factors() const {
    return inline_factors_.load(std::memory_order_relaxed);
  }

  double ridge() const { return ridge_; }

 private:
  std::shared_ptr<const Factor> Lookup(const std::string& key) const;

  const Matrix* base_;
  const double ridge_;
  mutable std::shared_mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<const Factor>> map_;
  std::atomic<std::size_t> hits_{0};
  std::atomic<std::size_t> misses_{0};
  std::atomic<std::size_t> rows_extended_{0};
  std::atomic<std::size_t> rows_from_scratch_{0};
  std::atomic<std::size_t> inline_factors_{0};
};

}  // namespace cdi::stats

#endif  // CDI_STATS_FACTOR_CACHE_H_
