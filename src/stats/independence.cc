#include "stats/independence.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_map>

#include "stats/descriptive.h"
#include "stats/distributions.h"

namespace cdi::stats {

namespace {

/// Maps arbitrary codes to a dense 0..k-1 range; -1 stays -1.
std::vector<int> Densify(const std::vector<int>& x, int* cardinality) {
  std::map<int, int> remap;
  std::vector<int> out(x.size(), -1);
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (x[i] < 0) continue;
    auto [it, _] = remap.emplace(x[i], static_cast<int>(remap.size()));
    out[i] = it->second;
  }
  *cardinality = static_cast<int>(remap.size());
  return out;
}

/// Chi-square statistic and dof of an r x c contingency table.
void TableChiSquare(const std::vector<std::vector<double>>& counts,
                    double* stat, double* dof, double* cramers_v) {
  const std::size_t r = counts.size();
  const std::size_t c = r == 0 ? 0 : counts[0].size();
  std::vector<double> row_sum(r, 0.0), col_sum(c, 0.0);
  double total = 0;
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < c; ++j) {
      row_sum[i] += counts[i][j];
      col_sum[j] += counts[i][j];
      total += counts[i][j];
    }
  }
  *stat = 0;
  if (total <= 0) {
    *dof = 0;
    *cramers_v = 0;
    return;
  }
  std::size_t nonzero_rows = 0, nonzero_cols = 0;
  for (double s : row_sum) nonzero_rows += s > 0 ? 1 : 0;
  for (double s : col_sum) nonzero_cols += s > 0 ? 1 : 0;
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < c; ++j) {
      const double expected = row_sum[i] * col_sum[j] / total;
      if (expected > 0) {
        const double d = counts[i][j] - expected;
        *stat += d * d / expected;
      }
    }
  }
  *dof = nonzero_rows >= 1 && nonzero_cols >= 1
             ? static_cast<double>((nonzero_rows - 1) * (nonzero_cols - 1))
             : 0.0;
  const double k = static_cast<double>(
      std::min(nonzero_rows, nonzero_cols));
  *cramers_v = (k > 1 && total > 0)
                   ? std::sqrt(*stat / (total * (k - 1.0)))
                   : 0.0;
}

}  // namespace

Result<IndependenceResult> ChiSquareIndependence(const std::vector<int>& x,
                                                 const std::vector<int>& y) {
  if (x.size() != y.size()) return Status::InvalidArgument("size mismatch");
  int kx = 0, ky = 0;
  // Keep only pairwise-complete entries.
  std::vector<int> xv, yv;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (x[i] < 0 || y[i] < 0) continue;
    xv.push_back(x[i]);
    yv.push_back(y[i]);
  }
  if (xv.size() < 2) return Status::FailedPrecondition("too few rows");
  xv = Densify(xv, &kx);
  yv = Densify(yv, &ky);
  if (kx < 2 || ky < 2) {
    // A constant variable is trivially independent of anything.
    IndependenceResult r;
    r.p_value = 1.0;
    return r;
  }
  std::vector<std::vector<double>> counts(
      kx, std::vector<double>(ky, 0.0));
  for (std::size_t i = 0; i < xv.size(); ++i) counts[xv[i]][yv[i]] += 1.0;
  IndependenceResult r;
  double dof = 0;
  TableChiSquare(counts, &r.statistic, &dof, &r.strength);
  r.p_value = dof > 0 ? ChiSquareSf(r.statistic, dof) : 1.0;
  return r;
}

Result<IndependenceResult> ConditionalChiSquare(
    const std::vector<int>& x, const std::vector<int>& y,
    const std::vector<std::vector<int>>& z, std::size_t min_stratum) {
  if (z.empty()) return ChiSquareIndependence(x, y);
  if (x.size() != y.size()) return Status::InvalidArgument("size mismatch");
  for (const auto& zc : z) {
    if (zc.size() != x.size()) {
      return Status::InvalidArgument("conditioning size mismatch");
    }
  }
  // Stratify by the joint code of z.
  std::unordered_map<std::string, std::vector<std::size_t>> strata;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (x[i] < 0 || y[i] < 0) continue;
    bool missing = false;
    std::string key;
    for (const auto& zc : z) {
      if (zc[i] < 0) {
        missing = true;
        break;
      }
      key += std::to_string(zc[i]) + ",";
    }
    if (!missing) strata[key].push_back(i);
  }
  double total_stat = 0, total_dof = 0;
  double strength_num = 0, strength_den = 0;
  for (const auto& [key, rows] : strata) {
    if (rows.size() < min_stratum) continue;
    std::vector<int> xs, ys;
    for (std::size_t i : rows) {
      xs.push_back(x[i]);
      ys.push_back(y[i]);
    }
    int kx = 0, ky = 0;
    xs = Densify(xs, &kx);
    ys = Densify(ys, &ky);
    if (kx < 2 || ky < 2) continue;
    std::vector<std::vector<double>> counts(kx,
                                            std::vector<double>(ky, 0.0));
    for (std::size_t i = 0; i < xs.size(); ++i) counts[xs[i]][ys[i]] += 1.0;
    double stat = 0, dof = 0, v = 0;
    TableChiSquare(counts, &stat, &dof, &v);
    total_stat += stat;
    total_dof += dof;
    strength_num += v * static_cast<double>(rows.size());
    strength_den += static_cast<double>(rows.size());
  }
  IndependenceResult r;
  r.statistic = total_stat;
  r.p_value = total_dof > 0 ? ChiSquareSf(total_stat, total_dof) : 1.0;
  r.strength = strength_den > 0 ? strength_num / strength_den : 0.0;
  return r;
}

double DiscreteMutualInformation(const std::vector<int>& x,
                                 const std::vector<int>& y) {
  std::map<std::pair<int, int>, double> joint;
  std::map<int, double> px, py;
  double n = 0;
  for (std::size_t i = 0; i < std::min(x.size(), y.size()); ++i) {
    if (x[i] < 0 || y[i] < 0) continue;
    joint[{x[i], y[i]}] += 1;
    px[x[i]] += 1;
    py[y[i]] += 1;
    n += 1;
  }
  if (n <= 0) return 0.0;
  double mi = 0;
  for (const auto& [xy, c] : joint) {
    const double pxy = c / n;
    const double p1 = px[xy.first] / n;
    const double p2 = py[xy.second] / n;
    mi += pxy * std::log(pxy / (p1 * p2));
  }
  return std::max(0.0, mi);
}

std::vector<int> QuantileBin(DoubleSpan x, int bins) {
  std::vector<double> edges;
  for (int b = 1; b < bins; ++b) {
    edges.push_back(Quantile(x, static_cast<double>(b) / bins));
  }
  std::vector<int> out(x.size(), -1);
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (std::isnan(x[i])) continue;
    int code = 0;
    for (double e : edges) {
      if (x[i] > e) ++code;
    }
    out[i] = code;
  }
  return out;
}

}  // namespace cdi::stats
