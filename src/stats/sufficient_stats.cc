#include "stats/sufficient_stats.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <utility>

#include "common/thread_pool.h"
#include "stats/linalg.h"

namespace cdi::stats {

namespace {

/// Microkernel tile width: each parallel task owns a kTile x kTile block
/// of the Gram matrix. 8 doubles = one cache line per packed tile row,
/// and the inner y-loop vectorizes with one independent accumulator per
/// entry (lanewise identical to scalar evaluation — no reduction
/// reassociation).
constexpr std::size_t kTile = 8;

/// Rows per blocked sweep. The sweep re-reads the packed chunk once per
/// tile pair, so the chunk (kRowBlock x padded-p doubles) should sit in
/// cache: 256 rows x 400 attrs x 8 B ~ 820 KB.
constexpr std::size_t kRowBlock = 256;

/// Row-unroll depth of the microkernel: deep enough to amortize the
/// accumulator loads/stores over several rows (the difference between a
/// spill-bound and a near-peak kernel), shallow enough not to blow the
/// register file. The unrolled adds feed one accumulator sequentially in
/// row order, so the depth never changes results.
constexpr std::size_t kRowUnroll = 4;

/// Accumulates a kTile x kTile Gram tile over `count` packed rows:
/// local[x][y] += sum_i ablk[i][x] * bblk[i][y], each entry summed in
/// ascending row order. `ablk`/`bblk` are tile-contiguous panels (row i
/// of a tile is kTile adjacent doubles — one cache line).
void GramTile(const double* ablk, const double* bblk, std::size_t count,
              double* local) {
  std::size_t i = 0;
  for (; i + kRowUnroll <= count; i += kRowUnroll) {
    for (std::size_t x = 0; x < kTile; ++x) {
      for (std::size_t y = 0; y < kTile; ++y) {
        double t = local[x * kTile + y];
        for (std::size_t u = 0; u < kRowUnroll; ++u) {
          t += ablk[(i + u) * kTile + x] * bblk[(i + u) * kTile + y];
        }
        local[x * kTile + y] = t;
      }
    }
  }
  for (; i < count; ++i) {
    for (std::size_t x = 0; x < kTile; ++x) {
      const double ax = ablk[i * kTile + x];
      for (std::size_t y = 0; y < kTile; ++y) {
        local[x * kTile + y] += ax * bblk[i * kTile + y];
      }
    }
  }
}

std::size_t WordCount(std::size_t n) { return (n + 63) / 64; }

/// Present (not-NaN) bits of col[0..count) packed LSB-first, branchlessly.
inline std::uint64_t PresentBitsWord(const double* col, std::size_t count) {
  std::uint64_t bits = 0;
  for (std::size_t i = 0; i < count; ++i) {
    bits |= static_cast<std::uint64_t>(col[i] == col[i]) << i;
  }
  return bits;
}

/// mask &= present bits of `col` (n rows). Words already dead are skipped.
void AndColumnMask(const double* col, std::size_t n, std::uint64_t* mask) {
  std::size_t w = 0;
  std::size_t r = 0;
  for (; r + 64 <= n; r += 64, ++w) {
    if (mask[w] != 0) mask[w] &= PresentBitsWord(col + r, 64);
  }
  if (r < n && mask[w] != 0) mask[w] &= PresentBitsWord(col + r, n - r);
}

/// Complete-row mask of `data`: all-ones (tail-clipped), AND'ed with each
/// column's present bits — from its null bitmap when the caller opted in
/// via NumericDataset::null_words, else from a NaN scan.
std::vector<std::uint64_t> BuildMask(const NumericDataset& data) {
  const std::size_t n = data.num_rows();
  const std::size_t words = WordCount(n);
  std::vector<std::uint64_t> mask(words, ~std::uint64_t{0});
  if (n % 64 != 0 && words > 0) {
    mask[words - 1] = (std::uint64_t{1} << (n % 64)) - 1;
  }
  for (std::size_t v = 0; v < data.columns.size(); ++v) {
    const std::uint64_t* nulls =
        v < data.null_words.size() ? data.null_words[v] : nullptr;
    if (nulls != nullptr) {
      for (std::size_t w = 0; w < words; ++w) mask[w] &= ~nulls[w];
    } else {
      AndColumnMask(data.columns[v].data(), n, mask.data());
    }
  }
  return mask;
}

std::size_t PopCount(const std::vector<std::uint64_t>& mask) {
  std::size_t c = 0;
  for (std::uint64_t w : mask) c += static_cast<std::size_t>(std::popcount(w));
  return c;
}

/// Ascending indices of the set bits of `mask`.
std::vector<std::size_t> SetBitIndices(const std::vector<std::uint64_t>& mask,
                                       std::size_t count) {
  std::vector<std::size_t> rows;
  rows.reserve(count);
  for (std::size_t w = 0; w < mask.size(); ++w) {
    std::uint64_t bits = mask[w];
    while (bits != 0) {
      rows.push_back(w * 64 + static_cast<std::size_t>(std::countr_zero(bits)));
      bits &= bits - 1;
    }
  }
  return rows;
}

/// Centered weighted cross-product matrix over the complete rows, blocked
/// and parallel. Every (a, b) entry is accumulated by exactly one task
/// slot, over rows in ascending order, as ((w * da) * db) — the exact
/// expression shape of the straight-line reference kernel — so the result
/// is bitwise identical to the reference and to any thread count.
Matrix BlockedGram(const std::vector<DoubleSpan>& cols,
                   const std::vector<double>& weights,
                   const std::vector<std::size_t>& rows,
                   const std::vector<double>& means, ThreadPool* pool) {
  const std::size_t p = cols.size();
  const std::size_t m = rows.size();
  const bool weighted = !weights.empty();
  const std::size_t padded = (p + kTile - 1) / kTile * kTile;
  const std::size_t tiles = padded / kTile;

  // Upper-triangle tile pairs; each is one task owning its kTile x kTile
  // accumulator slab across all row chunks.
  std::vector<std::pair<std::size_t, std::size_t>> pairs;
  pairs.reserve(tiles * (tiles + 1) / 2);
  for (std::size_t ta = 0; ta < tiles; ++ta) {
    for (std::size_t tb = ta; tb < tiles; ++tb) pairs.emplace_back(ta, tb);
  }
  std::vector<double> acc(pairs.size() * kTile * kTile, 0.0);

  // Chunk panels, packed tile-contiguous with zero padding: tile t's rows
  // occupy a dense count x kTile block, so the microkernel streams both
  // operands with unit stride. B holds centered values (x - mean), A
  // additionally scales by the row weight. Unweighted runs alias A to B
  // ((1.0 * da) == da bitwise).
  std::vector<double> bpanel(kRowBlock * padded);
  std::vector<double> apanel(weighted ? kRowBlock * padded : 0);

  for (std::size_t start = 0; start < m; start += kRowBlock) {
    const std::size_t count = std::min(kRowBlock, m - start);
    const std::size_t tile_stride = count * kTile;
    // One pack task per tile: contiguous column reads, one strided write
    // stream per column, disjoint destination slots.
    ParallelFor(pool, tiles, [&](std::size_t t) {
      for (std::size_t lane = 0; lane < kTile; ++lane) {
        const std::size_t v = t * kTile + lane;
        double* dst = bpanel.data() + t * tile_stride + lane;
        if (v >= p) {
          for (std::size_t i = 0; i < count; ++i) dst[i * kTile] = 0.0;
          if (weighted) {
            double* wdst = apanel.data() + t * tile_stride + lane;
            for (std::size_t i = 0; i < count; ++i) wdst[i * kTile] = 0.0;
          }
          continue;
        }
        const DoubleSpan& col = cols[v];
        const double mv = means[v];
        for (std::size_t i = 0; i < count; ++i) {
          dst[i * kTile] = col[rows[start + i]] - mv;
        }
        if (weighted) {
          double* wdst = apanel.data() + t * tile_stride + lane;
          for (std::size_t i = 0; i < count; ++i) {
            wdst[i * kTile] = weights[rows[start + i]] * dst[i * kTile];
          }
        }
      }
    });
    const double* a_base = weighted ? apanel.data() : bpanel.data();
    const double* b_base = bpanel.data();
    ParallelFor(pool, pairs.size(), [&](std::size_t q) {
      double local[kTile * kTile];
      std::memcpy(local, acc.data() + q * kTile * kTile, sizeof(local));
      GramTile(a_base + pairs[q].first * tile_stride,
               b_base + pairs[q].second * tile_stride, count, local);
      std::memcpy(acc.data() + q * kTile * kTile, local, sizeof(local));
    });
  }

  // Scatter the tile slabs into the symmetric matrix; padded lanes and the
  // sub-diagonal halves of diagonal tiles are discarded.
  Matrix sxx(p, p);
  for (std::size_t q = 0; q < pairs.size(); ++q) {
    const std::size_t a0 = pairs[q].first * kTile;
    const std::size_t b0 = pairs[q].second * kTile;
    const double* slab = acc.data() + q * kTile * kTile;
    for (std::size_t x = 0; x < kTile; ++x) {
      const std::size_t a = a0 + x;
      if (a >= p) break;
      for (std::size_t y = 0; y < kTile; ++y) {
        const std::size_t b = b0 + y;
        if (b >= p) break;
        if (b < a) continue;
        sxx(a, b) = slab[x * kTile + y];
        sxx(b, a) = slab[x * kTile + y];
      }
    }
  }
  return sxx;
}

/// Normal-equations solve with the LeastSquares ridge policy: tiny ridge,
/// then a stronger retry for collinear systems.
Result<std::vector<double>> SolveRidged(Matrix a,
                                        const std::vector<double>& b) {
  for (std::size_t d = 0; d < a.rows(); ++d) a(d, d) += 1e-9;
  auto sol = CholeskySolve(a, b);
  if (sol.ok()) return sol;
  for (std::size_t d = 0; d < a.rows(); ++d) a(d, d) += 1e-6;
  return CholeskySolve(a, b);
}

}  // namespace

Result<SufficientStats> SufficientStats::Compute(const NumericDataset& data,
                                                 ThreadPool* pool) {
  const std::size_t p = data.num_vars();
  if (p == 0) return Status::InvalidArgument("no variables");
  for (const auto& col : data.columns) {
    if (col.size() != data.num_rows()) {
      return Status::InvalidArgument("ragged dataset");
    }
  }
  if (!data.weights.empty() && data.weights.size() != data.num_rows()) {
    return Status::InvalidArgument("weights size mismatch");
  }

  SufficientStats s;
  s.columns_ = data.columns;
  s.weights_ = data.weights;
  s.num_rows_ = data.num_rows();
  s.mask_ = BuildMask(data);
  s.complete_rows_ = PopCount(s.mask_);
  if (s.complete_rows_ < 2) {
    return Status::FailedPrecondition("fewer than 2 complete rows");
  }
  const auto rows = SetBitIndices(s.mask_, s.complete_rows_);
  if (s.weights_.empty()) {
    // Sequential += 1.0 is exact for any realistic row count, so the
    // popcount equals the reference kernel's accumulated weight sum.
    s.wsum_ = static_cast<double>(s.complete_rows_);
  } else {
    double w = 0.0;
    for (std::size_t r : rows) w += s.weights_[r];
    s.wsum_ = w;
  }
  if (s.wsum_ <= 0) return Status::InvalidArgument("weights sum to zero");

  s.col_sums_.assign(p, 0.0);
  s.means_.assign(p, 0.0);
  ParallelFor(pool, p, [&](std::size_t v) {
    const DoubleSpan& col = s.columns_[v];
    double mv = 0.0;
    if (s.weights_.empty()) {
      for (std::size_t r : rows) mv += col[r];
    } else {
      for (std::size_t r : rows) mv += s.weights_[r] * col[r];
    }
    s.col_sums_[v] = mv;
    s.means_[v] = mv / s.wsum_;
  });

  s.sxx_ = BlockedGram(s.columns_, s.weights_, rows, s.means_, pool);
  return s;
}

Matrix SufficientStats::Covariance() const {
  const std::size_t p = num_vars();
  const double denom = std::max(1.0, wsum_ - 1.0);
  Matrix cov(p, p);
  for (std::size_t a = 0; a < p; ++a) {
    for (std::size_t b = a; b < p; ++b) {
      cov(a, b) = sxx_(a, b) / denom;
      cov(b, a) = cov(a, b);
    }
  }
  return cov;
}

Matrix SufficientStats::Correlation() const {
  const Matrix cov = Covariance();
  const std::size_t p = cov.rows();
  Matrix corr(p, p);
  for (std::size_t a = 0; a < p; ++a) {
    corr(a, a) = 1.0;
    for (std::size_t b = a + 1; b < p; ++b) {
      const double va = cov(a, a);
      const double vb = cov(b, b);
      double r = 0.0;
      if (va > 0 && vb > 0) {
        r = std::clamp(cov(a, b) / std::sqrt(va * vb), -1.0, 1.0);
      }
      corr(a, b) = r;
      corr(b, a) = r;
    }
  }
  return corr;
}

Status SufficientStats::AppendColumns(const std::vector<DoubleSpan>& cols,
                                      ThreadPool* pool) {
  if (columns_.empty()) {
    return Status::FailedPrecondition("append to empty SufficientStats");
  }
  if (cols.empty()) {
    last_append_incremental_ = true;
    return Status::OK();
  }
  for (const auto& col : cols) {
    if (col.size() != num_rows_) {
      return Status::InvalidArgument("ragged dataset");
    }
  }

  // If the new columns are missing on any currently-complete row, every
  // entry's row set changes: recompute from scratch (still blocked).
  std::vector<std::uint64_t> merged = mask_;
  for (const auto& col : cols) {
    AndColumnMask(col.data(), num_rows_, merged.data());
  }
  if (merged != mask_) {
    NumericDataset all;
    all.columns = columns_;
    all.columns.insert(all.columns.end(), cols.begin(), cols.end());
    all.weights = weights_;
    CDI_ASSIGN_OR_RETURN(SufficientStats fresh, Compute(all, pool));
    *this = std::move(fresh);
    last_append_incremental_ = false;
    return Status::OK();
  }

  // Incremental path: the complete-row set (hence mask, weight sum, and
  // every existing mean and S entry) is unchanged; only the k new columns'
  // means, the p x k cross block, and the k x k tail are computed —
  // O(n * k * (p + k)) instead of O(n * (p + k)^2). Expression shapes and
  // per-entry row order match BlockedGram, so the extended S is bitwise
  // identical to a full recompute.
  const std::size_t p = columns_.size();
  const std::size_t k = cols.size();
  const bool weighted = !weights_.empty();
  const auto rows = SetBitIndices(mask_, complete_rows_);
  const std::size_t m = rows.size();

  std::vector<double> nsums(k, 0.0);
  std::vector<double> nmeans(k, 0.0);
  ParallelFor(pool, k, [&](std::size_t j) {
    const DoubleSpan& col = cols[j];
    double mv = 0.0;
    if (weighted) {
      for (std::size_t r : rows) mv += weights_[r] * col[r];
    } else {
      for (std::size_t r : rows) mv += col[r];
    }
    nsums[j] = mv;
    nmeans[j] = mv / wsum_;
  });

  // Centered new-column panel (m x k row-major) + its w-scaled A-side.
  std::vector<double> npanel(m * k);
  std::vector<double> wnpanel(weighted ? m * k : 0);
  ParallelFor(pool, m, [&](std::size_t i) {
    const std::size_t r = rows[i];
    double* row = npanel.data() + i * k;
    for (std::size_t j = 0; j < k; ++j) row[j] = cols[j][r] - nmeans[j];
    if (weighted) {
      const double w = weights_[r];
      double* wrow = wnpanel.data() + i * k;
      for (std::size_t j = 0; j < k; ++j) wrow[j] = w * row[j];
    }
  });

  Matrix ns(p + k, p + k);
  for (std::size_t a = 0; a < p; ++a) {
    for (std::size_t b = 0; b < p; ++b) ns(a, b) = sxx_(a, b);
  }

  // Cross block: entry (a, p + j) accumulates ((w * da) * dnew_j) over
  // rows ascending — the lower index a supplies the weighted side, as in
  // the full kernel. One task per existing column. Rows are unrolled by 4
  // with each entry still accumulated in ascending row order into a single
  // scalar, so the result stays bitwise identical to a full recompute
  // while the local[j] load/store is amortized (same trick as GramTile).
  ParallelFor(pool, p, [&](std::size_t a) {
    const DoubleSpan& col = columns_[a];
    const double ma = means_[a];
    std::vector<double> local(k, 0.0);
    const auto wda_at = [&](std::size_t i) {
      const std::size_t r = rows[i];
      const double da = col[r] - ma;
      return weighted ? weights_[r] * da : da;
    };
    std::size_t i = 0;
    for (; i + 4 <= m; i += 4) {
      const double w0 = wda_at(i), w1 = wda_at(i + 1);
      const double w2 = wda_at(i + 2), w3 = wda_at(i + 3);
      const double* r0 = npanel.data() + i * k;
      for (std::size_t j = 0; j < k; ++j) {
        double t = local[j];
        t += w0 * r0[j];
        t += w1 * r0[k + j];
        t += w2 * r0[2 * k + j];
        t += w3 * r0[3 * k + j];
        local[j] = t;
      }
    }
    for (; i < m; ++i) {
      const double wda = wda_at(i);
      const double* row = npanel.data() + i * k;
      for (std::size_t j = 0; j < k; ++j) local[j] += wda * row[j];
    }
    for (std::size_t j = 0; j < k; ++j) {
      ns(a, p + j) = local[j];
      ns(p + j, a) = local[j];
    }
  });

  // New x new tail.
  ParallelFor(pool, k, [&](std::size_t x) {
    const double* aside = weighted ? wnpanel.data() : npanel.data();
    for (std::size_t y = x; y < k; ++y) {
      double s = 0.0;
      for (std::size_t i = 0; i < m; ++i) {
        s += aside[i * k + x] * npanel[i * k + y];
      }
      ns(p + x, p + y) = s;
      ns(p + y, p + x) = s;
    }
  });

  columns_.insert(columns_.end(), cols.begin(), cols.end());
  col_sums_.insert(col_sums_.end(), nsums.begin(), nsums.end());
  means_.insert(means_.end(), nmeans.begin(), nmeans.end());
  sxx_ = std::move(ns);
  last_append_incremental_ = true;
  return Status::OK();
}

Status SufficientStats::AppendRows(const std::vector<DoubleSpan>& cols,
                                   std::size_t new_rows,
                                   const std::vector<double>& weights,
                                   ThreadPool* pool) {
  if (columns_.empty()) {
    return Status::FailedPrecondition("append to empty SufficientStats");
  }
  if (cols.size() != columns_.size()) {
    return Status::InvalidArgument(
        "AppendRows got " + std::to_string(cols.size()) +
        " columns, statistics have " + std::to_string(columns_.size()));
  }
  const std::size_t total = num_rows_ + new_rows;
  for (const auto& col : cols) {
    if (col.size() != total) return Status::InvalidArgument("ragged dataset");
  }
  if (weighted() != !weights.empty()) {
    return Status::InvalidArgument(
        weighted() ? "weighted statistics need the full weight vector"
                   : "unweighted statistics got weights");
  }
  if (!weights.empty() && weights.size() != total) {
    return Status::InvalidArgument("weights size mismatch");
  }

  // Extend the complete-row mask: words before the one containing row
  // num_rows_ are untouched; the boundary word's low (old) bits recompute
  // to their existing values because the prefix is value-identical, so
  // rebuilding tail words from the full columns splices exactly what
  // BuildMask over the concatenated dataset would produce.
  std::vector<std::uint64_t> mask = mask_;
  const std::size_t words = WordCount(total);
  mask.resize(words, 0);
  for (std::size_t w = num_rows_ / 64; w < words; ++w) {
    const std::size_t base = w * 64;
    const std::size_t len = std::min<std::size_t>(64, total - base);
    std::uint64_t bits =
        len == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << len) - 1;
    for (const auto& col : cols) {
      if (bits == 0) break;
      bits &= PresentBitsWord(col.data() + base, len);
    }
    mask[w] = bits;
  }

  // Complete rows in the appended region only (ascending) — the rows
  // Compute's sequential scans would visit after the old prefix.
  std::vector<std::size_t> fresh;
  for (std::size_t w = num_rows_ / 64; w < words; ++w) {
    std::uint64_t bits = mask[w];
    while (bits != 0) {
      const std::size_t r =
          w * 64 + static_cast<std::size_t>(std::countr_zero(bits));
      bits &= bits - 1;
      if (r >= num_rows_) fresh.push_back(r);
    }
  }

  const std::size_t complete = complete_rows_ + fresh.size();
  double wsum = wsum_;
  if (weights.empty()) {
    wsum = static_cast<double>(complete);
  } else {
    for (std::size_t r : fresh) wsum += weights[r];
    if (wsum <= 0) return Status::InvalidArgument("weights sum to zero");
  }

  if (fresh.empty()) {
    // No new complete row: means and S cannot move. Adopt the re-borrowed
    // spans and the extended mask; skip the Gram sweep.
    columns_ = cols;
    weights_ = weights;
    mask_ = std::move(mask);
    num_rows_ = total;
    last_append_incremental_ = true;
    return Status::OK();
  }

  // Continue the pre-division column sums over the fresh rows, then
  // re-derive every mean with the new weight sum — the same sequential
  // accumulation and single division Compute performs over the full data.
  const std::size_t p = columns_.size();
  std::vector<double> sums = col_sums_;
  std::vector<double> means(p);
  ParallelFor(pool, p, [&](std::size_t v) {
    const DoubleSpan& col = cols[v];
    double mv = sums[v];
    if (weights.empty()) {
      for (std::size_t r : fresh) mv += col[r];
    } else {
      for (std::size_t r : fresh) mv += weights[r] * col[r];
    }
    sums[v] = mv;
    means[v] = mv / wsum;
  });

  // The means moved, so every centered entry's accumulation sequence
  // changed: re-sweep the Gram over the full complete-row set. Bitwise
  // identical to Compute by the kernel's determinism.
  const auto rows = SetBitIndices(mask, complete);
  Matrix sxx = BlockedGram(cols, weights, rows, means, pool);

  columns_ = cols;
  weights_ = weights;
  mask_ = std::move(mask);
  num_rows_ = total;
  complete_rows_ = complete;
  wsum_ = wsum;
  col_sums_ = std::move(sums);
  means_ = std::move(means);
  sxx_ = std::move(sxx);
  last_append_incremental_ = false;
  return Status::OK();
}

Result<double> SufficientStats::GaussianBicLocal(
    std::size_t target, const std::vector<std::size_t>& parents) const {
  const std::size_t p = num_vars();
  if (target >= p) return Status::InvalidArgument("bad target index");
  for (std::size_t pa : parents) {
    if (pa >= p || pa == target) {
      return Status::InvalidArgument("bad parent index");
    }
  }
  if (complete_rows_ < parents.size() + 3) {
    return Status::FailedPrecondition("too few rows for BIC");
  }
  double rss;
  if (parents.empty()) {
    // S(t, t) accumulates (v - m)^2 over complete rows in ascending order
    // — bitwise the legacy GaussianBicLocalScore residual sum.
    rss = sxx_(target, target);
  } else {
    Matrix spp = sxx_.Submatrix(parents);
    std::vector<double> spy(parents.size());
    for (std::size_t j = 0; j < parents.size(); ++j) {
      spy[j] = sxx_(parents[j], target);
    }
    CDI_ASSIGN_OR_RETURN(std::vector<double> beta, SolveRidged(spp, spy));
    double fitted = 0.0;
    for (std::size_t j = 0; j < beta.size(); ++j) fitted += beta[j] * spy[j];
    rss = sxx_(target, target) - fitted;
    // Cancellation near a perfect fit can leave a tiny negative residual.
    if (!(rss > 0.0)) rss = 0.0;
  }
  const double nn = static_cast<double>(complete_rows_);
  const double sigma2 = std::max(rss / nn, 1e-12);
  const double neg2_loglik = nn * std::log(2.0 * M_PI * sigma2) + nn;
  return neg2_loglik +
         std::log(nn) * (static_cast<double>(parents.size()) + 2.0);
}

Result<std::vector<double>> SufficientStats::OlsCoefficients(
    std::size_t y, const std::vector<std::size_t>& xs) const {
  const std::size_t p = num_vars();
  if (y >= p) return Status::InvalidArgument("bad target index");
  for (std::size_t x : xs) {
    if (x >= p) return Status::InvalidArgument("bad predictor index");
  }
  std::vector<double> out;
  out.reserve(xs.size() + 1);
  if (xs.empty()) {
    out.push_back(means_[y]);
    return out;
  }
  Matrix sxs = sxx_.Submatrix(xs);
  std::vector<double> sxy(xs.size());
  for (std::size_t j = 0; j < xs.size(); ++j) sxy[j] = sxx_(xs[j], y);
  CDI_ASSIGN_OR_RETURN(std::vector<double> beta, SolveRidged(sxs, sxy));
  double intercept = means_[y];
  for (std::size_t j = 0; j < xs.size(); ++j) {
    intercept -= beta[j] * means_[xs[j]];
  }
  out.push_back(intercept);
  out.insert(out.end(), beta.begin(), beta.end());
  return out;
}

Result<Matrix> ReferenceCovarianceMatrix(const NumericDataset& data) {
  const std::size_t p = data.num_vars();
  if (p == 0) return Status::InvalidArgument("no variables");
  for (const auto& col : data.columns) {
    if (col.size() != data.num_rows()) {
      return Status::InvalidArgument("ragged dataset");
    }
  }
  if (!data.weights.empty() && data.weights.size() != data.num_rows()) {
    return Status::InvalidArgument("weights size mismatch");
  }
  std::vector<std::size_t> rows;
  const std::size_t n = data.num_rows();
  for (std::size_t r = 0; r < n; ++r) {
    bool ok = true;
    for (const auto& col : data.columns) {
      if (std::isnan(col[r])) {
        ok = false;
        break;
      }
    }
    if (ok) rows.push_back(r);
  }
  if (rows.size() < 2) {
    return Status::FailedPrecondition("fewer than 2 complete rows");
  }
  std::vector<double> mean(p, 0.0);
  double wsum = 0;
  for (std::size_t r : rows) {
    const double w = data.weights.empty() ? 1.0 : data.weights[r];
    wsum += w;
    for (std::size_t v = 0; v < p; ++v) mean[v] += w * data.columns[v][r];
  }
  if (wsum <= 0) return Status::InvalidArgument("weights sum to zero");
  for (double& m : mean) m /= wsum;

  Matrix cov(p, p);
  for (std::size_t r : rows) {
    const double w = data.weights.empty() ? 1.0 : data.weights[r];
    for (std::size_t a = 0; a < p; ++a) {
      const double da = data.columns[a][r] - mean[a];
      for (std::size_t b = a; b < p; ++b) {
        cov(a, b) += w * da * (data.columns[b][r] - mean[b]);
      }
    }
  }
  const double denom = std::max(1.0, wsum - 1.0);
  for (std::size_t a = 0; a < p; ++a) {
    for (std::size_t b = a; b < p; ++b) {
      cov(a, b) /= denom;
      cov(b, a) = cov(a, b);
    }
  }
  return cov;
}

std::size_t CompleteRowCount(const NumericDataset& data) {
  // Word-at-a-time AND over the columns' present bits, counting as we go —
  // no index vector, no mask buffer. Rows past a short (ragged) column are
  // treated as incomplete.
  std::size_t n = data.num_rows();
  for (const auto& col : data.columns) n = std::min(n, col.size());
  std::size_t count = 0;
  for (std::size_t base = 0; base < n; base += 64) {
    const std::size_t len = std::min<std::size_t>(64, n - base);
    std::uint64_t bits =
        len == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << len) - 1;
    for (std::size_t v = 0; v < data.columns.size() && bits != 0; ++v) {
      const std::uint64_t* nulls =
          v < data.null_words.size() ? data.null_words[v] : nullptr;
      if (nulls != nullptr) {
        bits &= ~nulls[base / 64];
      } else {
        bits &= PresentBitsWord(data.columns[v].data() + base, len);
      }
    }
    count += static_cast<std::size_t>(std::popcount(bits));
  }
  return count;
}

}  // namespace cdi::stats
