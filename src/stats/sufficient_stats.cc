#include "stats/sufficient_stats.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <utility>

#include "common/thread_pool.h"
#include "stats/factor_cache.h"
#include "stats/gram_kernel.h"
#include "stats/linalg.h"

namespace cdi::stats {

namespace {

/// Microkernel tile width (one cache line of doubles per packed tile
/// row). The kernel bodies live in stats/gram_kernel_*.cc — a scalar
/// std::fma fallback plus SIMD backends selected at runtime — all
/// bitwise interchangeable: every Gram entry is accumulated with one
/// fused multiply-add per row, rows ascending, one accumulator per
/// entry, so neither the backend, the thread count, nor the task
/// chunking can change a single bit of the result.
constexpr std::size_t kTile = kGramTile;

/// Rows per blocked sweep. The sweep re-reads the packed chunk once per
/// tile pair, so the chunk (kRowBlock x padded-p doubles) should sit in
/// cache: 256 rows x 400 attrs x 8 B ~ 820 KB.
constexpr std::size_t kRowBlock = 256;

/// Panel bytes under which the whole row range runs as one block. Each
/// extra block costs a full accumulator reload/flush, so when the packed
/// panel fits in L2 next to the accumulators we skip the blocking
/// entirely; past that, keeping the per-block panel L2-resident wins
/// (measured: a single 3.3 MB panel at 400 vars is ~35% slower than
/// 256-row blocks). Store/reload of a double is exact, so the block size
/// never changes a bit of the result — it only moves memory traffic.
constexpr std::size_t kOneBlockPanelBytes = std::size_t{1} << 20;

std::size_t WordCount(std::size_t n) { return (n + 63) / 64; }

/// Present (not-NaN) bits of col[0..count) packed LSB-first — dispatched
/// to the active Gram kernel backend. The comparisons are exact, so every
/// backend returns identical bits.
inline std::uint64_t PresentBitsWord(const double* col, std::size_t count) {
  return ActiveGramKernel().present_bits(col, count);
}

/// mask &= present bits of `col` (n rows). Words already dead are skipped.
void AndColumnMask(const double* col, std::size_t n, std::uint64_t* mask) {
  std::size_t w = 0;
  std::size_t r = 0;
  for (; r + 64 <= n; r += 64, ++w) {
    if (mask[w] != 0) mask[w] &= PresentBitsWord(col + r, 64);
  }
  if (r < n && mask[w] != 0) mask[w] &= PresentBitsWord(col + r, n - r);
}

/// Complete-row mask of `data`: all-ones (tail-clipped), AND'ed with each
/// column's present bits — from its null bitmap when the caller opted in
/// via NumericDataset::null_words, else from a NaN scan.
///
/// NaN-scanned columns also get a speculative full-column sum (ascending
/// plain adds, the exact sequence the per-column sums pass runs when
/// every row is complete) while the column is still cache-hot from the
/// scan: if the final mask comes out all-ones, the caller skips its own
/// pass over the data entirely. `spec_sums[v]` is meaningful only where
/// `spec_ok[v]` is set.
std::vector<std::uint64_t> BuildMask(const NumericDataset& data,
                                     std::vector<double>* spec_sums,
                                     std::vector<char>* spec_ok) {
  const std::size_t n = data.num_rows();
  const std::size_t words = WordCount(n);
  std::vector<std::uint64_t> mask(words, ~std::uint64_t{0});
  if (n % 64 != 0 && words > 0) {
    mask[words - 1] = (std::uint64_t{1} << (n % 64)) - 1;
  }
  // Bitmap-backed columns first (no data read), then the NaN-scanned
  // columns in groups of eight. AND-ing words is commutative, so the
  // reordering cannot change the mask.
  std::vector<std::size_t> scanned;
  scanned.reserve(data.columns.size());
  for (std::size_t v = 0; v < data.columns.size(); ++v) {
    const std::uint64_t* nulls =
        v < data.null_words.size() ? data.null_words[v] : nullptr;
    if (nulls != nullptr) {
      for (std::size_t w = 0; w < words; ++w) mask[w] &= ~nulls[w];
    } else {
      scanned.push_back(v);
    }
  }
  // Per group: the NaN scan, then the speculative sums while the group's
  // ~64 KB is still cache-resident — one DRAM pass instead of two. Each
  // column keeps its own strictly ascending scalar add chain (the exact
  // reference sequence); the eight independent chains cover the FP-add
  // latency x throughput product that made a one-column sum
  // serialization-bound.
  std::size_t g = 0;
  for (; g + 8 <= scanned.size(); g += 8) {
    const double* c[8];
    for (std::size_t u = 0; u < 8; ++u) {
      c[u] = data.columns[scanned[g + u]].data();
    }
    for (std::size_t u = 0; u < 8; ++u) AndColumnMask(c[u], n, mask.data());
    if (spec_sums != nullptr) {
      double s[8] = {0, 0, 0, 0, 0, 0, 0, 0};
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t u = 0; u < 8; ++u) s[u] += c[u][i];
      }
      for (std::size_t u = 0; u < 8; ++u) {
        (*spec_sums)[scanned[g + u]] = s[u];
        (*spec_ok)[scanned[g + u]] = 1;
      }
    }
  }
  for (; g < scanned.size(); ++g) {
    const double* col = data.columns[scanned[g]].data();
    AndColumnMask(col, n, mask.data());
    if (spec_sums != nullptr) {
      double sum = 0.0;
      for (std::size_t i = 0; i < n; ++i) sum += col[i];
      (*spec_sums)[scanned[g]] = sum;
      (*spec_ok)[scanned[g]] = 1;
    }
  }
  return mask;
}

std::size_t PopCount(const std::vector<std::uint64_t>& mask) {
  std::size_t c = 0;
  for (std::uint64_t w : mask) c += static_cast<std::size_t>(std::popcount(w));
  return c;
}

/// Ascending indices of the set bits of `mask`.
std::vector<std::size_t> SetBitIndices(const std::vector<std::uint64_t>& mask,
                                       std::size_t count) {
  std::vector<std::size_t> rows;
  rows.reserve(count);
  for (std::size_t w = 0; w < mask.size(); ++w) {
    std::uint64_t bits = mask[w];
    while (bits != 0) {
      rows.push_back(w * 64 + static_cast<std::size_t>(std::countr_zero(bits)));
      bits &= bits - 1;
    }
  }
  return rows;
}

/// Centered weighted cross-product matrix over the complete rows, blocked
/// and parallel. Every (a, b) entry is accumulated by exactly one
/// accumulator slab, over rows in ascending order, as
/// fma(w * da, db, acc) — the exact per-entry operation sequence of the
/// straight-line reference kernel and of every SIMD backend — so the
/// result is bitwise identical to the reference, to every backend, and
/// to any thread count.
///
/// Parallel structure (per row chunk): the centered panel is packed once
/// — in parallel, shared by every sweep task — then the upper-triangle
/// tile pairs are swept in contiguous *chunks* of pairs, so each pool
/// task amortizes its dispatch over dozens of microkernel calls instead
/// of one. Within a chunk, consecutive pairs sharing an A tile run
/// through the fused two-B-tile kernel, halving the broadcast traffic.
/// Neither chunking nor fusion touches per-entry accumulation order.
Matrix BlockedGram(const std::vector<DoubleSpan>& cols,
                   const std::vector<double>& weights,
                   const std::vector<std::size_t>& rows,
                   const std::vector<double>& means, ThreadPool* pool) {
  const std::size_t p = cols.size();
  const std::size_t m = rows.size();
  const bool weighted = !weights.empty();
  const std::size_t padded = (p + kTile - 1) / kTile * kTile;
  const std::size_t tiles = padded / kTile;
  const GramKernelFns& kernel = ActiveGramKernel();
  // All rows complete → the row list is the identity permutation and the
  // pack can stream columns contiguously instead of gathering.
  const bool dense_rows = !rows.empty() && rows.back() == m - 1;

  // Upper-triangle tile pairs; each owns its kTile x kTile accumulator
  // slab across all row chunks.
  std::vector<std::pair<std::size_t, std::size_t>> pairs;
  pairs.reserve(tiles * (tiles + 1) / 2);
  for (std::size_t ta = 0; ta < tiles; ++ta) {
    for (std::size_t tb = ta; tb < tiles; ++tb) pairs.emplace_back(ta, tb);
  }
  // Scratch is thread_local and reused across calls: a fresh ~2 MB of
  // vectors per call costs more in page faults than the arithmetic they
  // hold (the serving layer recomputes stats per scenario epoch, PC
  // fuzz sweeps call Compute thousands of times). The accumulator must
  // be re-zeroed; the panels are fully overwritten by the pack.
  thread_local std::vector<double> acc_scratch;
  thread_local std::vector<double> bpanel_scratch;
  thread_local std::vector<double> apanel_scratch;
  std::vector<double>& acc = acc_scratch;
  acc.assign(pairs.size() * kTile * kTile, 0.0);

  // Chunk panels, packed tile-contiguous with zero padding: tile t's rows
  // occupy a dense count x kTile block, so the microkernel streams both
  // operands with unit stride. B holds centered values (x - mean), A
  // additionally scales by the row weight. Unweighted runs alias A to B
  // ((1.0 * da) == da bitwise).
  const std::size_t row_block =
      m * padded * sizeof(double) <= kOneBlockPanelBytes ? m : kRowBlock;
  std::vector<double>& bpanel = bpanel_scratch;
  bpanel.resize(row_block * padded);
  std::vector<double>& apanel = apanel_scratch;
  if (weighted) apanel.resize(row_block * padded);

  for (std::size_t start = 0; start < m; start += row_block) {
    const std::size_t count = std::min(row_block, m - start);
    const std::size_t tile_stride = count * kTile;
    // Parallel pack: contiguous column reads, one strided write stream
    // per column, disjoint destination slots. Grain 2 because a whole
    // tile is only ~2 us of work — ParallelFor's per-index pull heuristic
    // would run all 50 tiles on one worker.
    ParallelForRanges(pool, tiles, 2, [&](std::size_t t0, std::size_t t1) {
      for (std::size_t t = t0; t < t1; ++t) {
        if (dense_rows && !weighted) {
          // Hot path: hand the whole tile to the kernel's transpose-pack
          // (an in-register 8x8 on the vector backends). Padded lanes read
          // a shared zero column with mean 0 — 0.0 - 0.0 packs the same
          // 0.0 the guarded loop writes.
          thread_local std::vector<double> zeros;
          if (zeros.size() < count) zeros.assign(count, 0.0);
          const double* colptr[kTile];
          double mean8[kTile];
          for (std::size_t lane = 0; lane < kTile; ++lane) {
            const std::size_t v = t * kTile + lane;
            if (v < p) {
              colptr[lane] = cols[v].data() + start;
              mean8[lane] = means[v];
            } else {
              colptr[lane] = zeros.data();
              mean8[lane] = 0.0;
            }
          }
          kernel.pack_tile(colptr, mean8, count,
                           bpanel.data() + t * tile_stride);
          continue;
        }
        for (std::size_t lane = 0; lane < kTile; ++lane) {
          const std::size_t v = t * kTile + lane;
          double* dst = bpanel.data() + t * tile_stride + lane;
          if (v >= p) {
            for (std::size_t i = 0; i < count; ++i) dst[i * kTile] = 0.0;
            if (weighted) {
              double* wdst = apanel.data() + t * tile_stride + lane;
              for (std::size_t i = 0; i < count; ++i) wdst[i * kTile] = 0.0;
            }
            continue;
          }
          const DoubleSpan& col = cols[v];
          const double mv = means[v];
          if (dense_rows) {
            const double* src = col.data() + start;
            for (std::size_t i = 0; i < count; ++i) {
              dst[i * kTile] = src[i] - mv;
            }
          } else {
            for (std::size_t i = 0; i < count; ++i) {
              dst[i * kTile] = col[rows[start + i]] - mv;
            }
          }
          if (weighted) {
            double* wdst = apanel.data() + t * tile_stride + lane;
            if (dense_rows) {
              const double* wsrc = weights.data() + start;
              for (std::size_t i = 0; i < count; ++i) {
                wdst[i * kTile] = wsrc[i] * dst[i * kTile];
              }
            } else {
              for (std::size_t i = 0; i < count; ++i) {
                wdst[i * kTile] = weights[rows[start + i]] * dst[i * kTile];
              }
            }
          }
        }
      }
    });
    const double* a_base = weighted ? apanel.data() : bpanel.data();
    const double* b_base = bpanel.data();
    ParallelForRanges(
        pool, pairs.size(), 16, [&](std::size_t q0, std::size_t q1) {
          std::size_t q = q0;
          while (q < q1) {
            const double* a_tile = a_base + pairs[q].first * tile_stride;
            if (q + 1 < q1 && pairs[q + 1].first == pairs[q].first) {
              kernel.tile2(a_tile,
                           b_base + pairs[q].second * tile_stride,
                           b_base + pairs[q + 1].second * tile_stride, count,
                           acc.data() + q * kTile * kTile,
                           acc.data() + (q + 1) * kTile * kTile);
              q += 2;
            } else {
              kernel.tile(a_tile, b_base + pairs[q].second * tile_stride,
                          count, acc.data() + q * kTile * kTile);
              q += 1;
            }
          }
        });
  }

  // Scatter the tile slabs into the symmetric matrix; padded lanes and
  // the sub-diagonal halves of diagonal tiles are discarded. Pairs
  // (ta, ta..tiles-1) sit contiguously in `acc`, so each global row `a`
  // streams its upper-triangle entries left to right in one contiguous
  // write run; the lower triangle is mirrored afterwards in cache-blocked
  // bands (pure copies — order is irrelevant to the bits).
  Matrix sxx = Matrix::Uninitialized(p, p);  // every entry written below
  std::vector<std::size_t> row_q0(tiles);
  for (std::size_t ta = 0, q0 = 0; ta < tiles; ++ta) {
    row_q0[ta] = q0;
    q0 += tiles - ta;
  }
  ParallelForRanges(pool, tiles, 8, [&](std::size_t t0, std::size_t t1) {
    for (std::size_t ta = t0; ta < t1; ++ta) {
      const std::size_t nb = tiles - ta;
      const std::size_t xmax = std::min(kTile, p - ta * kTile);
      for (std::size_t x = 0; x < xmax; ++x) {
        const std::size_t a = ta * kTile + x;
        double* row = sxx.Row(a);
        const double* slab_x =
            acc.data() + row_q0[ta] * kTile * kTile + x * kTile;
        for (std::size_t j = 0; j < nb; ++j) {
          const double* sx = slab_x + j * kTile * kTile;
          const std::size_t b0 = (ta + j) * kTile;
          const std::size_t ylo = j == 0 ? x : 0;
          const std::size_t yhi = std::min(kTile, p - b0);
          for (std::size_t y = ylo; y < yhi; ++y) row[b0 + y] = sx[y];
        }
      }
    }
  });
  // Mirror the lower triangle: strided reads over a 64-row band stay
  // cache-resident while the writes run contiguous. Bands write disjoint
  // column ranges, so they parallelize cleanly.
  constexpr std::size_t kMirrorBlock = 64;
  const std::size_t bands = (p + kMirrorBlock - 1) / kMirrorBlock;
  ParallelForRanges(pool, bands, 2, [&](std::size_t g0, std::size_t g1) {
    for (std::size_t g = g0; g < g1; ++g) {
      const std::size_t i0 = g * kMirrorBlock;
      const std::size_t i1 = std::min(i0 + kMirrorBlock, p);
      for (std::size_t j = i0 + 1; j < p; ++j) {
        double* rj = sxx.Row(j);
        const std::size_t end = std::min(i1, j);
        for (std::size_t i = i0; i < end; ++i) rj[i] = sxx.Row(i)[j];
      }
    }
  });
  return sxx;
}

/// Normal-equations solve with the LeastSquares ridge policy: tiny ridge,
/// then a stronger retry for collinear systems.
Result<std::vector<double>> SolveRidged(Matrix a,
                                        const std::vector<double>& b) {
  for (std::size_t d = 0; d < a.rows(); ++d) a(d, d) += 1e-9;
  auto sol = CholeskySolve(a, b);
  if (sol.ok()) return sol;
  for (std::size_t d = 0; d < a.rows(); ++d) a(d, d) += 1e-6;
  return CholeskySolve(a, b);
}

}  // namespace

Result<SufficientStats> SufficientStats::Compute(const NumericDataset& data,
                                                 ThreadPool* pool) {
  const std::size_t p = data.num_vars();
  if (p == 0) return Status::InvalidArgument("no variables");
  for (const auto& col : data.columns) {
    if (col.size() != data.num_rows()) {
      return Status::InvalidArgument("ragged dataset");
    }
  }
  if (!data.weights.empty() && data.weights.size() != data.num_rows()) {
    return Status::InvalidArgument("weights size mismatch");
  }

  SufficientStats s;
  s.columns_ = data.columns;
  s.weights_ = data.weights;
  s.num_rows_ = data.num_rows();

  std::vector<double> spec_sums(p, 0.0);
  std::vector<char> spec_ok(p, 0);
  const bool want_spec = data.weights.empty();
  s.mask_ = BuildMask(data, want_spec ? &spec_sums : nullptr,
                      want_spec ? &spec_ok : nullptr);
  s.complete_rows_ = PopCount(s.mask_);
  if (s.complete_rows_ < 2) {
    return Status::FailedPrecondition("fewer than 2 complete rows");
  }
  const auto rows = SetBitIndices(s.mask_, s.complete_rows_);

  if (s.weights_.empty()) {
    // Sequential += 1.0 is exact for any realistic row count, so the
    // popcount equals the reference kernel's accumulated weight sum.
    s.wsum_ = static_cast<double>(s.complete_rows_);
  } else {
    double w = 0.0;
    for (std::size_t r : rows) w += s.weights_[r];
    s.wsum_ = w;
  }
  if (s.wsum_ <= 0) return Status::InvalidArgument("weights sum to zero");

  s.col_sums_.assign(p, 0.0);
  s.means_.assign(p, 0.0);
  // When every row is complete, the speculative full-column sums from the
  // mask scan ARE the complete-row sums (same ascending adds) — the whole
  // pass below degenerates to a division per column.
  const bool all_complete = s.complete_rows_ == s.num_rows_;

  ParallelFor(pool, p, [&](std::size_t v) {
    const DoubleSpan& col = s.columns_[v];
    double mv = 0.0;
    if (all_complete && spec_ok[v]) {
      mv = spec_sums[v];
    } else if (s.weights_.empty()) {
      for (std::size_t r : rows) mv += col[r];
    } else {
      for (std::size_t r : rows) mv += s.weights_[r] * col[r];
    }
    s.col_sums_[v] = mv;
    s.means_[v] = mv / s.wsum_;
  });

  s.sxx_ = BlockedGram(s.columns_, s.weights_, rows, s.means_, pool);
  return s;
}

Matrix SufficientStats::Covariance() const {
  const std::size_t p = num_vars();
  const double denom = std::max(1.0, wsum_ - 1.0);

  // S is bitwise symmetric (the mirror is a copy), so dividing full rows
  // yields the same bits as divide-upper-then-mirror — and each row is
  // one contiguous vector divide with no strided writes.
  const GramKernelFns& kernel = ActiveGramKernel();
  Matrix cov = Matrix::Uninitialized(p, p);  // div_row writes full rows
  for (std::size_t a = 0; a < p; ++a) {
    kernel.div_row(sxx_.Row(a), denom, p, cov.Row(a));
  }
  return cov;
}

Matrix SufficientStats::Correlation() const {
  const std::size_t p = num_vars();

  // Derived straight from S without materializing Covariance(): var[a] is
  // exactly Covariance()'s diagonal (sxx/denom) and each entry evaluates
  // the identical expression (sxx(a,b)/denom) / sqrt(va*vb) on identical
  // operands, so the result is bitwise unchanged — this only skips a
  // p x p allocation and a full extra pass.
  const double denom = std::max(1.0, wsum_ - 1.0);
  std::vector<double> var(p);
  for (std::size_t a = 0; a < p; ++a) var[a] = sxx_.Row(a)[a] / denom;
  const GramKernelFns& kernel = ActiveGramKernel();
  Matrix corr = Matrix::Uninitialized(p, p);  // diag + upper + mirror cover all
  for (std::size_t a = 0; a < p; ++a) {
    double* ra = corr.Row(a);
    ra[a] = 1.0;
    if (a + 1 < p) {
      kernel.corr_row(sxx_.Row(a) + a + 1, var.data() + a + 1, var[a], denom,
                      p - a - 1, ra + a + 1);
    }
  }
  // Mirror the lower triangle in cache-blocked passes: strided reads over
  // a 64-row band stay resident while the writes run contiguous.
  constexpr std::size_t kMirrorBlock = 64;
  for (std::size_t i0 = 0; i0 < p; i0 += kMirrorBlock) {
    const std::size_t i1 = std::min(i0 + kMirrorBlock, p);
    for (std::size_t j = i0 + 1; j < p; ++j) {
      double* rj = corr.Row(j);
      const std::size_t end = std::min(i1, j);
      for (std::size_t i = i0; i < end; ++i) rj[i] = corr.Row(i)[j];
    }
  }
  return corr;
}

Status SufficientStats::AppendColumns(const std::vector<DoubleSpan>& cols,
                                      ThreadPool* pool) {
  if (columns_.empty()) {
    return Status::FailedPrecondition("append to empty SufficientStats");
  }
  if (cols.empty()) {
    last_append_incremental_ = true;
    return Status::OK();
  }
  for (const auto& col : cols) {
    if (col.size() != num_rows_) {
      return Status::InvalidArgument("ragged dataset");
    }
  }

  // If the new columns are missing on any currently-complete row, every
  // entry's row set changes: recompute from scratch (still blocked).
  std::vector<std::uint64_t> merged = mask_;
  for (const auto& col : cols) {
    AndColumnMask(col.data(), num_rows_, merged.data());
  }
  if (merged != mask_) {
    NumericDataset all;
    all.columns = columns_;
    all.columns.insert(all.columns.end(), cols.begin(), cols.end());
    all.weights = weights_;
    CDI_ASSIGN_OR_RETURN(SufficientStats fresh, Compute(all, pool));
    *this = std::move(fresh);
    last_append_incremental_ = false;
    return Status::OK();
  }

  // Incremental path: the complete-row set (hence mask, weight sum, and
  // every existing mean and S entry) is unchanged; only the k new columns'
  // means, the p x k cross block, and the k x k tail are computed —
  // O(n * k * (p + k)) instead of O(n * (p + k)^2). Expression shapes and
  // per-entry row order match BlockedGram, so the extended S is bitwise
  // identical to a full recompute.
  const std::size_t p = columns_.size();
  const std::size_t k = cols.size();
  const bool weighted = !weights_.empty();
  const auto rows = SetBitIndices(mask_, complete_rows_);
  const std::size_t m = rows.size();

  std::vector<double> nsums(k, 0.0);
  std::vector<double> nmeans(k, 0.0);
  ParallelFor(pool, k, [&](std::size_t j) {
    const DoubleSpan& col = cols[j];
    double mv = 0.0;
    if (weighted) {
      for (std::size_t r : rows) mv += weights_[r] * col[r];
    } else {
      for (std::size_t r : rows) mv += col[r];
    }
    nsums[j] = mv;
    nmeans[j] = mv / wsum_;
  });

  // Centered new-column panel (m x k4 row-major, zero-padded to a
  // multiple of 4 columns for the cross kernel) + its w-scaled A-side.
  const std::size_t k4 = (k + 3) / 4 * 4;
  std::vector<double> npanel(m * k4, 0.0);
  std::vector<double> wnpanel(weighted ? m * k4 : 0, 0.0);
  ParallelFor(pool, m, [&](std::size_t i) {
    const std::size_t r = rows[i];
    double* row = npanel.data() + i * k4;
    for (std::size_t j = 0; j < k; ++j) row[j] = cols[j][r] - nmeans[j];
    if (weighted) {
      const double w = weights_[r];
      double* wrow = wnpanel.data() + i * k4;
      for (std::size_t j = 0; j < k; ++j) wrow[j] = w * row[j];
    }
  });

  Matrix ns(p + k, p + k);
  for (std::size_t a = 0; a < p; ++a) {
    for (std::size_t b = 0; b < p; ++b) ns(a, b) = sxx_(a, b);
  }

  // Cross block: entry (a, p + j) accumulates fma(w * da, dnew_j, acc)
  // over rows ascending — the lower index a supplies the weighted side,
  // as in the full kernel — via the dispatched cross kernel (one fused
  // multiply-add per entry per row, vectorized over j), so the result
  // stays bitwise identical to a full recompute. One task per existing
  // column; the padded columns accumulate zeros and are dropped.
  const GramKernelFns& kernel = ActiveGramKernel();
  ParallelFor(pool, p, [&](std::size_t a) {
    const DoubleSpan& col = columns_[a];
    const double ma = means_[a];
    thread_local std::vector<double> wda;
    wda.resize(m);
    if (weighted) {
      for (std::size_t i = 0; i < m; ++i) {
        const std::size_t r = rows[i];
        wda[i] = weights_[r] * (col[r] - ma);
      }
    } else {
      for (std::size_t i = 0; i < m; ++i) wda[i] = col[rows[i]] - ma;
    }
    std::vector<double> local(k4, 0.0);
    kernel.cross(wda.data(), npanel.data(), m, k4, local.data());
    for (std::size_t j = 0; j < k; ++j) {
      ns(a, p + j) = local[j];
      ns(p + j, a) = local[j];
    }
  });

  // New x new tail: same kernel, with the (weighted) new column x as the
  // shared left operand; entries below the diagonal are recomputed
  // transposes and dropped.
  ParallelFor(pool, k, [&](std::size_t x) {
    const double* aside = weighted ? wnpanel.data() : npanel.data();
    thread_local std::vector<double> ax;
    ax.resize(m);
    for (std::size_t i = 0; i < m; ++i) ax[i] = aside[i * k4 + x];
    std::vector<double> local(k4, 0.0);
    kernel.cross(ax.data(), npanel.data(), m, k4, local.data());
    for (std::size_t y = x; y < k; ++y) {
      ns(p + x, p + y) = local[y];
      ns(p + y, p + x) = local[y];
    }
  });

  columns_.insert(columns_.end(), cols.begin(), cols.end());
  col_sums_.insert(col_sums_.end(), nsums.begin(), nsums.end());
  means_.insert(means_.end(), nmeans.begin(), nmeans.end());
  sxx_ = std::move(ns);
  last_append_incremental_ = true;
  return Status::OK();
}

Status SufficientStats::AppendRows(const std::vector<DoubleSpan>& cols,
                                   std::size_t new_rows,
                                   const std::vector<double>& weights,
                                   ThreadPool* pool) {
  if (columns_.empty()) {
    return Status::FailedPrecondition("append to empty SufficientStats");
  }
  if (cols.size() != columns_.size()) {
    return Status::InvalidArgument(
        "AppendRows got " + std::to_string(cols.size()) +
        " columns, statistics have " + std::to_string(columns_.size()));
  }
  const std::size_t total = num_rows_ + new_rows;
  for (const auto& col : cols) {
    if (col.size() != total) return Status::InvalidArgument("ragged dataset");
  }
  if (weighted() != !weights.empty()) {
    return Status::InvalidArgument(
        weighted() ? "weighted statistics need the full weight vector"
                   : "unweighted statistics got weights");
  }
  if (!weights.empty() && weights.size() != total) {
    return Status::InvalidArgument("weights size mismatch");
  }

  // Extend the complete-row mask: words before the one containing row
  // num_rows_ are untouched; the boundary word's low (old) bits recompute
  // to their existing values because the prefix is value-identical, so
  // rebuilding tail words from the full columns splices exactly what
  // BuildMask over the concatenated dataset would produce.
  std::vector<std::uint64_t> mask = mask_;
  const std::size_t words = WordCount(total);
  mask.resize(words, 0);
  for (std::size_t w = num_rows_ / 64; w < words; ++w) {
    const std::size_t base = w * 64;
    const std::size_t len = std::min<std::size_t>(64, total - base);
    std::uint64_t bits =
        len == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << len) - 1;
    for (const auto& col : cols) {
      if (bits == 0) break;
      bits &= PresentBitsWord(col.data() + base, len);
    }
    mask[w] = bits;
  }

  // Complete rows in the appended region only (ascending) — the rows
  // Compute's sequential scans would visit after the old prefix.
  std::vector<std::size_t> fresh;
  for (std::size_t w = num_rows_ / 64; w < words; ++w) {
    std::uint64_t bits = mask[w];
    while (bits != 0) {
      const std::size_t r =
          w * 64 + static_cast<std::size_t>(std::countr_zero(bits));
      bits &= bits - 1;
      if (r >= num_rows_) fresh.push_back(r);
    }
  }

  const std::size_t complete = complete_rows_ + fresh.size();
  double wsum = wsum_;
  if (weights.empty()) {
    wsum = static_cast<double>(complete);
  } else {
    for (std::size_t r : fresh) wsum += weights[r];
    if (wsum <= 0) return Status::InvalidArgument("weights sum to zero");
  }

  if (fresh.empty()) {
    // No new complete row: means and S cannot move. Adopt the re-borrowed
    // spans and the extended mask; skip the Gram sweep.
    columns_ = cols;
    weights_ = weights;
    mask_ = std::move(mask);
    num_rows_ = total;
    last_append_incremental_ = true;
    return Status::OK();
  }

  // Continue the pre-division column sums over the fresh rows, then
  // re-derive every mean with the new weight sum — the same sequential
  // accumulation and single division Compute performs over the full data.
  const std::size_t p = columns_.size();
  std::vector<double> sums = col_sums_;
  std::vector<double> means(p);
  ParallelFor(pool, p, [&](std::size_t v) {
    const DoubleSpan& col = cols[v];
    double mv = sums[v];
    if (weights.empty()) {
      for (std::size_t r : fresh) mv += col[r];
    } else {
      for (std::size_t r : fresh) mv += weights[r] * col[r];
    }
    sums[v] = mv;
    means[v] = mv / wsum;
  });

  // The means moved, so every centered entry's accumulation sequence
  // changed: re-sweep the Gram over the full complete-row set. Bitwise
  // identical to Compute by the kernel's determinism.
  const auto rows = SetBitIndices(mask, complete);
  Matrix sxx = BlockedGram(cols, weights, rows, means, pool);

  columns_ = cols;
  weights_ = weights;
  mask_ = std::move(mask);
  num_rows_ = total;
  complete_rows_ = complete;
  wsum_ = wsum;
  col_sums_ = std::move(sums);
  means_ = std::move(means);
  sxx_ = std::move(sxx);
  last_append_incremental_ = false;
  return Status::OK();
}

Result<double> SufficientStats::GaussianBicLocal(
    std::size_t target, const std::vector<std::size_t>& parents) const {
  return GaussianBicLocal(target, parents, nullptr);
}

Result<double> SufficientStats::GaussianBicLocal(
    std::size_t target, const std::vector<std::size_t>& parents,
    FactorCache* fcache) const {
  const std::size_t p = num_vars();
  if (target >= p) return Status::InvalidArgument("bad target index");
  for (std::size_t pa : parents) {
    if (pa >= p || pa == target) {
      return Status::InvalidArgument("bad parent index");
    }
  }
  if (complete_rows_ < parents.size() + 3) {
    return Status::FailedPrecondition("too few rows for BIC");
  }
  double rss;
  if (parents.empty()) {
    // S(t, t) accumulates (v - m)^2 over complete rows in ascending order
    // — bitwise the legacy GaussianBicLocalScore residual sum.
    rss = sxx_(target, target);
  } else {
    std::vector<double> spy(parents.size());
    for (std::size_t j = 0; j < parents.size(); ++j) {
      spy[j] = sxx_(parents[j], target);
    }
    std::vector<double> beta;
    // The cache solve is CholeskySolve on sxx_[parents, parents] + 1e-9 I
    // to the bit — SolveRidged's first attempt. If it reports degenerate,
    // that attempt would have failed identically, so fall through to the
    // stronger-ridge retry exactly as SolveRidged stages it (two separate
    // diagonal adds, not one fused 1.001e-6).
    if (fcache != nullptr && fcache->ridge() == 1e-9) {
      auto cached = fcache->Solve(parents, spy);
      if (cached.ok()) {
        beta = *std::move(cached);
      } else {
        Matrix spp = sxx_.Submatrix(parents);
        for (std::size_t d = 0; d < spp.rows(); ++d) spp(d, d) += 1e-9;
        for (std::size_t d = 0; d < spp.rows(); ++d) spp(d, d) += 1e-6;
        CDI_ASSIGN_OR_RETURN(beta, CholeskySolve(spp, spy));
      }
    } else {
      Matrix spp = sxx_.Submatrix(parents);
      CDI_ASSIGN_OR_RETURN(beta, SolveRidged(spp, spy));
    }
    double fitted = 0.0;
    for (std::size_t j = 0; j < beta.size(); ++j) fitted += beta[j] * spy[j];
    rss = sxx_(target, target) - fitted;
    // Cancellation near a perfect fit can leave a tiny negative residual.
    if (!(rss > 0.0)) rss = 0.0;
  }
  const double nn = static_cast<double>(complete_rows_);
  const double sigma2 = std::max(rss / nn, 1e-12);
  const double neg2_loglik = nn * std::log(2.0 * M_PI * sigma2) + nn;
  return neg2_loglik +
         std::log(nn) * (static_cast<double>(parents.size()) + 2.0);
}

Result<std::vector<double>> SufficientStats::OlsCoefficients(
    std::size_t y, const std::vector<std::size_t>& xs) const {
  const std::size_t p = num_vars();
  if (y >= p) return Status::InvalidArgument("bad target index");
  for (std::size_t x : xs) {
    if (x >= p) return Status::InvalidArgument("bad predictor index");
  }
  std::vector<double> out;
  out.reserve(xs.size() + 1);
  if (xs.empty()) {
    out.push_back(means_[y]);
    return out;
  }
  Matrix sxs = sxx_.Submatrix(xs);
  std::vector<double> sxy(xs.size());
  for (std::size_t j = 0; j < xs.size(); ++j) sxy[j] = sxx_(xs[j], y);
  CDI_ASSIGN_OR_RETURN(std::vector<double> beta, SolveRidged(sxs, sxy));
  double intercept = means_[y];
  for (std::size_t j = 0; j < xs.size(); ++j) {
    intercept -= beta[j] * means_[xs[j]];
  }
  out.push_back(intercept);
  out.insert(out.end(), beta.begin(), beta.end());
  return out;
}

Result<Matrix> ReferenceCovarianceMatrix(const NumericDataset& data) {
  const std::size_t p = data.num_vars();
  if (p == 0) return Status::InvalidArgument("no variables");
  for (const auto& col : data.columns) {
    if (col.size() != data.num_rows()) {
      return Status::InvalidArgument("ragged dataset");
    }
  }
  if (!data.weights.empty() && data.weights.size() != data.num_rows()) {
    return Status::InvalidArgument("weights size mismatch");
  }
  std::vector<std::size_t> rows;
  const std::size_t n = data.num_rows();
  for (std::size_t r = 0; r < n; ++r) {
    bool ok = true;
    for (const auto& col : data.columns) {
      if (std::isnan(col[r])) {
        ok = false;
        break;
      }
    }
    if (ok) rows.push_back(r);
  }
  if (rows.size() < 2) {
    return Status::FailedPrecondition("fewer than 2 complete rows");
  }
  std::vector<double> mean(p, 0.0);
  double wsum = 0;
  for (std::size_t r : rows) {
    const double w = data.weights.empty() ? 1.0 : data.weights[r];
    wsum += w;
    for (std::size_t v = 0; v < p; ++v) mean[v] += w * data.columns[v][r];
  }
  if (wsum <= 0) return Status::InvalidArgument("weights sum to zero");
  for (double& m : mean) m /= wsum;

  Matrix cov(p, p);
  for (std::size_t r : rows) {
    for (std::size_t a = 0; a < p; ++a) {
      const double da = data.columns[a][r] - mean[a];
      // Weighted side pre-scaled, then one *fused* multiply-add per
      // entry — the per-entry operation sequence the blocked kernel's
      // backends implement, making this the bitwise reference for all
      // of them. Unweighted data skips the scale entirely, matching the
      // kernel's panel aliasing.
      const double wda =
          data.weights.empty() ? da : data.weights[r] * da;
      for (std::size_t b = a; b < p; ++b) {
        cov(a, b) =
            std::fma(wda, data.columns[b][r] - mean[b], cov(a, b));
      }
    }
  }
  const double denom = std::max(1.0, wsum - 1.0);
  for (std::size_t a = 0; a < p; ++a) {
    for (std::size_t b = a; b < p; ++b) {
      cov(a, b) /= denom;
      cov(b, a) = cov(a, b);
    }
  }
  return cov;
}

std::size_t CompleteRowCount(const NumericDataset& data) {
  // Word-at-a-time AND over the columns' present bits, counting as we go —
  // no index vector, no mask buffer. Rows past a short (ragged) column are
  // treated as incomplete.
  std::size_t n = data.num_rows();
  for (const auto& col : data.columns) n = std::min(n, col.size());
  std::size_t count = 0;
  for (std::size_t base = 0; base < n; base += 64) {
    const std::size_t len = std::min<std::size_t>(64, n - base);
    std::uint64_t bits =
        len == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << len) - 1;
    for (std::size_t v = 0; v < data.columns.size() && bits != 0; ++v) {
      const std::uint64_t* nulls =
          v < data.null_words.size() ? data.null_words[v] : nullptr;
      if (nulls != nullptr) {
        bits &= ~nulls[base / 64];
      } else {
        bits &= PresentBitsWord(data.columns[v].data() + base, len);
      }
    }
    count += static_cast<std::size_t>(std::popcount(bits));
  }
  return count;
}

}  // namespace cdi::stats
