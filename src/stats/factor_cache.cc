#include "stats/factor_cache.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <mutex>
#include <utility>

#include "stats/correlation.h"

namespace cdi::stats {
namespace {

// Keys are the raw ordered index sequence, 4 bytes per index — so the key
// of any prefix of S is a byte prefix of S's key and prefix probing is a
// substring + hash lookup.
std::string EncodeKey(const std::vector<std::size_t>& s, std::size_t len) {
  std::string key(len * 4, '\0');
  for (std::size_t i = 0; i < len; ++i) {
    const std::uint32_t v = static_cast<std::uint32_t>(s[i]);
    std::memcpy(&key[i * 4], &v, 4);
  }
  return key;
}

// Appends row t of the packed factor of base[s, s] + ridge·I. The loop
// body replays Cholesky() row t exactly — same reads, same subtraction
// order (k ascending), same pivot test — so an extended factor is bitwise
// identical to a from-scratch one. Returns false on a non-positive pivot
// (leaving *l at its valid t-row prefix).
bool AppendFactorRow(const Matrix& a, double ridge,
                     const std::vector<std::size_t>& s, std::size_t t,
                     std::vector<double>* l) {
  const std::size_t off = t * (t + 1) / 2;
  l->resize(off + t + 1);
  double* row = l->data() + off;
  for (std::size_t j = 0; j < t; ++j) {
    double sum = a(s[t], s[j]);
    const double* rj = l->data() + j * (j + 1) / 2;
    for (std::size_t k = 0; k < j; ++k) sum -= row[k] * rj[k];
    row[j] = sum / rj[j];
  }
  double sum = a(s[t], s[t]) + ridge;
  for (std::size_t k = 0; k < t; ++k) sum -= row[k] * row[k];
  if (sum <= 0.0) {
    l->resize(off);
    return false;
  }
  row[t] = std::sqrt(sum);
  return true;
}

// Conditioning sets up to this many variables are factored inline into a
// thread-local buffer instead of going through the cache map: the map
// round trip (key encode, shared lock, hash probe, shared_ptr refcount)
// costs more than redoing a factor this small, and PC workloads are
// dominated by k=2..3 queries. Inline factors replay AppendFactorRow, so
// the answer is bitwise identical either way.
constexpr std::size_t kInlineFactorOrder = 3;

// Extends the packed factor `l` of base[given, given] + ridge·I by the
// two query rows — positions k and k+1 of the ordering (given..., i, j)
// that the from-scratch path uses — on the stack, and reads the partial
// correlation off the trailing 2x2 block. Returns true with *rho set on
// success; false on a non-positive pivot (callers then take the same
// pivoted precision-matrix fallback the uncached path takes).
bool ExtendByQueryRows(const Matrix& corr, double ridge,
                       const std::vector<double>& l, std::size_t k,
                       std::size_t i, std::size_t j,
                       const std::vector<std::size_t>& given, double* rho) {
  thread_local std::vector<double> li, lj;
  li.resize(k + 1);
  lj.resize(k + 2);
  for (std::size_t j2 = 0; j2 < k; ++j2) {
    double sum = corr(i, given[j2]);
    const double* rj = l.data() + j2 * (j2 + 1) / 2;
    for (std::size_t t = 0; t < j2; ++t) sum -= li[t] * rj[t];
    li[j2] = sum / rj[j2];
  }
  {
    double sum = corr(i, i) + ridge;
    for (std::size_t t = 0; t < k; ++t) sum -= li[t] * li[t];
    if (sum <= 0.0) return false;
    li[k] = std::sqrt(sum);
  }
  for (std::size_t j2 = 0; j2 < k; ++j2) {
    double sum = corr(j, given[j2]);
    const double* rj = l.data() + j2 * (j2 + 1) / 2;
    for (std::size_t t = 0; t < j2; ++t) sum -= lj[t] * rj[t];
    lj[j2] = sum / rj[j2];
  }
  {
    double sum = corr(j, i);
    for (std::size_t t = 0; t < k; ++t) sum -= lj[t] * li[t];
    lj[k] = sum / li[k];
    double d = corr(j, j) + ridge;
    for (std::size_t t = 0; t < k + 1; ++t) d -= lj[t] * lj[t];
    if (d <= 0.0) return false;
    lj[k + 1] = std::sqrt(d);
  }
  const double b = lj[k];
  const double c = lj[k + 1];
  const double den = std::sqrt(b * b + c * c);
  if (den <= 1e-12 || !std::isfinite(den)) {
    *rho = 0.0;
    return true;
  }
  *rho = std::clamp(b / den, -1.0, 1.0);
  return true;
}

}  // namespace

FactorCache::FactorCache(const Matrix* base, double ridge)
    : base_(base), ridge_(ridge) {}

std::shared_ptr<const FactorCache::Factor> FactorCache::Lookup(
    const std::string& key) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = map_.find(key);
  return it == map_.end() ? nullptr : it->second;
}

std::shared_ptr<const FactorCache::Factor> FactorCache::FactorFor(
    const std::vector<std::size_t>& s) {
  const std::size_t k = s.size();
  const std::string key = EncodeKey(s, k);
  if (auto f = Lookup(key)) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    return f;
  }
  misses_.fetch_add(1, std::memory_order_relaxed);

  // Longest cached prefix (>= 2 variables; smaller factors are cheaper to
  // recompute than to look up).
  std::shared_ptr<const Factor> prefix;
  std::size_t plen = 0;
  for (std::size_t len = k - 1; len >= 2; --len) {
    if (auto f = Lookup(std::string(key.data(), len * 4))) {
      prefix = std::move(f);
      plen = len;
      break;
    }
  }

  auto f = std::make_shared<Factor>();
  f->n = k;
  std::size_t start = 0;
  if (prefix) {
    f->failed = prefix->failed;
    f->l = prefix->l;
    start = plen;
  }
  if (!f->failed) {
    for (std::size_t t = start; t < k; ++t) {
      if (!AppendFactorRow(*base_, ridge_, s, t, &f->l)) {
        f->failed = true;
        break;
      }
    }
    if (prefix) {
      rows_extended_.fetch_add(k - plen, std::memory_order_relaxed);
    } else {
      rows_from_scratch_.fetch_add(k, std::memory_order_relaxed);
    }
  }

  std::unique_lock<std::shared_mutex> lock(mu_);
  auto [it, inserted] = map_.emplace(key, std::move(f));
  // On a race the first insert wins; both computed identical bits anyway.
  return it->second;
}

Result<double> FactorCache::PartialCorrelation(
    std::size_t i, std::size_t j, const std::vector<std::size_t>& given) {
  const Matrix& corr = *base_;
  if (i >= corr.rows() || j >= corr.rows() || i == j) {
    return Status::InvalidArgument("bad variable indices");
  }
  // Unconditioned / single-variable cases have closed forms that never
  // factor anything — share them verbatim.
  if (given.size() < 2) return stats::PartialCorrelation(corr, i, j, given);

  const std::size_t k = given.size();
  double rho;
  if (k <= kInlineFactorOrder) {
    // Hot path: rebuild the tiny conditioning factor in place — cheaper
    // than fetching it, and no lock or allocation after warmup.
    inline_factors_.fetch_add(1, std::memory_order_relaxed);
    thread_local std::vector<double> small;
    small.clear();
    bool ok = true;
    for (std::size_t t = 0; t < k; ++t) {
      if (!AppendFactorRow(corr, ridge_, given, t, &small)) {
        ok = false;
        break;
      }
    }
    if (ok && ExtendByQueryRows(corr, ridge_, small, k, i, j, given, &rho)) {
      return rho;
    }
  } else {
    auto f = FactorFor(given);
    if (!f->failed &&
        ExtendByQueryRows(corr, ridge_, f->l, k, i, j, given, &rho)) {
      return rho;
    }
  }
  // Degenerate factorization: same pivoted precision-matrix fallback the
  // uncached path takes — and it fails there iff it fails here, because a
  // pivot failure is a pure function of the submatrix.
  return PartialCorrelationPrecisionFallback(corr, i, j, given);
}

Result<std::vector<double>> FactorCache::Solve(
    const std::vector<std::size_t>& s, const std::vector<double>& rhs) {
  const std::size_t n = s.size();
  if (rhs.size() != n) return Status::InvalidArgument("rhs size mismatch");
  for (std::size_t idx : s) {
    if (idx >= base_->rows()) {
      return Status::InvalidArgument("bad variable indices");
    }
  }
  if (n < 2) {
    // Below the caching threshold: solve the 1x1 system directly with the
    // same arithmetic CholeskySolve would use.
    if (n == 0) return std::vector<double>{};
    const double a = (*base_)(s[0], s[0]) + ridge_;
    if (a <= 0.0) {
      return Status::FailedPrecondition(
          "matrix is not positive definite (pivot " + std::to_string(a) +
          " at 0)");
    }
    const double l00 = std::sqrt(a);
    return std::vector<double>{rhs[0] / l00 / l00};
  }
  auto f = FactorFor(s);
  if (f->failed) {
    return Status::FailedPrecondition("matrix is not positive definite");
  }
  const std::vector<double>& l = f->l;
  // Forward solve L y = rhs, then back solve L^T x = y — the exact loops
  // of CholeskySolve, re-indexed for the packed layout.
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = rhs[i];
    const double* ri = l.data() + i * (i + 1) / 2;
    for (std::size_t t = 0; t < i; ++t) acc -= ri[t] * y[t];
    y[i] = acc / ri[i];
  }
  std::vector<double> x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = y[ii];
    for (std::size_t t = ii + 1; t < n; ++t) {
      acc -= l[t * (t + 1) / 2 + ii] * x[t];
    }
    x[ii] = acc / l[ii * (ii + 1) / 2 + ii];
  }
  return x;
}

void FactorCache::EvictSmallerThan(std::size_t min_vars) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  for (auto it = map_.begin(); it != map_.end();) {
    if (it->second->n < min_vars) {
      it = map_.erase(it);
    } else {
      ++it;
    }
  }
}

std::size_t FactorCache::size() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return map_.size();
}

}  // namespace cdi::stats
