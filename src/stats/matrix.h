#ifndef CDI_STATS_MATRIX_H_
#define CDI_STATS_MATRIX_H_

#include <cstddef>
#include <memory>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/logging.h"

namespace cdi::stats {

namespace detail {
/// Thread-local cache of large matrix storage blocks. glibc serves
/// multi-MB allocations with fresh mmaps and returns them on free, so a
/// loop that builds a few-hundred-variable matrix per iteration (PC
/// sweeps, serving epochs, benchmarks) pays ~300 soft page faults per
/// matrix. Recycling the handful of hot block sizes through a bounded
/// per-thread freelist keeps the pages warm. Blocks are keyed by exact
/// byte size; both functions only ever see blocks that came from
/// `::operator new`.
void* AcquireMatrixBlock(std::size_t bytes);          // nullptr on miss
bool TryReleaseMatrixBlock(void* p, std::size_t bytes);  // false when full
}  // namespace detail

/// std::allocator that (a) default-initializes on no-argument construct,
/// so `resize(n)` leaves doubles uninitialized instead of zero-filling,
/// and (b) recycles large blocks through the thread-local cache above.
/// Explicit fills (`vector(n, v)`) are unaffected. Exists so producers
/// that overwrite every entry (Matrix::Uninitialized) can skip a full
/// write pass over the storage, and so matrix-per-iteration loops do not
/// churn mmapped pages.
template <class T>
struct DefaultInitAlloc : std::allocator<T> {
  static_assert(std::is_trivially_destructible_v<T>,
                "block recycling skips destructors");
  template <class U>
  struct rebind {
    using other = DefaultInitAlloc<U>;
  };
  T* allocate(std::size_t n) {
    if (void* p = detail::AcquireMatrixBlock(n * sizeof(T))) {
      return static_cast<T*>(p);
    }
    return std::allocator<T>::allocate(n);
  }
  void deallocate(T* p, std::size_t n) {
    if (detail::TryReleaseMatrixBlock(p, n * sizeof(T))) return;
    std::allocator<T>::deallocate(p, n);
  }
  template <class U, class... Args>
  void construct(U* p, Args&&... args) {
    if constexpr (sizeof...(Args) == 0) {
      ::new (static_cast<void*>(p)) U;
    } else {
      ::new (static_cast<void*>(p)) U(std::forward<Args>(args)...);
    }
  }
};

/// Dense row-major matrix of doubles.
///
/// Sized for CDI's workloads (correlation matrices over at most a few
/// hundred attributes); all algorithms that use it are O(n^3) or better.
class Matrix {
 public:
  using Storage = std::vector<double, DefaultInitAlloc<double>>;

  Matrix() : rows_(0), cols_(0) {}
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Matrix whose storage is left uninitialized — for producers that
  /// overwrite every entry, skipping the zero-fill pass the normal
  /// constructor pays. Reading an entry before writing it is UB.
  static Matrix Uninitialized(std::size_t rows, std::size_t cols) {
    Matrix m;
    m.rows_ = rows;
    m.cols_ = cols;
    m.data_.resize(rows * cols);
    return m;
  }

  /// Identity matrix of order n.
  static Matrix Identity(std::size_t n);

  /// Builds a matrix from nested initializer-style data (rows of equal
  /// length).
  static Matrix FromRows(const std::vector<std::vector<double>>& rows);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& operator()(std::size_t r, std::size_t c) {
    CDI_CHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    CDI_CHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  /// Raw storage (row-major).
  const Storage& data() const { return data_; }

  /// Unchecked raw row access (row-major; caller guarantees r < rows()).
  /// For hot kernels where the per-access CDI_CHECK of operator() costs
  /// real time or blocks vectorization; everything else should keep the
  /// checked operator().
  double* Row(std::size_t r) { return data_.data() + r * cols_; }
  const double* Row(std::size_t r) const {
    return data_.data() + r * cols_;
  }

  Matrix Transpose() const;

  /// Matrix product; inner dimensions must agree.
  Matrix Multiply(const Matrix& other) const;

  /// Matrix-vector product; v.size() must equal cols().
  std::vector<double> MultiplyVector(const std::vector<double>& v) const;

  /// Elementwise sum/difference; shapes must agree.
  Matrix Add(const Matrix& other) const;
  Matrix Subtract(const Matrix& other) const;

  /// Scales every element.
  Matrix Scale(double s) const;

  /// Rows/columns restricted to `idx` (square selection), preserving order.
  Matrix Submatrix(const std::vector<std::size_t>& idx) const;

  /// Maximum |a_ij - b_ij|; shapes must agree.
  double MaxAbsDiff(const Matrix& other) const;

  /// True if the matrix is square and symmetric within `tol`.
  bool IsSymmetric(double tol = 1e-9) const;

  /// Debug rendering.
  std::string ToString(int precision = 4) const;

 private:
  std::size_t rows_;
  std::size_t cols_;
  Storage data_;
};

}  // namespace cdi::stats

#endif  // CDI_STATS_MATRIX_H_
