#ifndef CDI_STATS_MATRIX_H_
#define CDI_STATS_MATRIX_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/logging.h"

namespace cdi::stats {

/// Dense row-major matrix of doubles.
///
/// Sized for CDI's workloads (correlation matrices over at most a few
/// hundred attributes); all algorithms that use it are O(n^3) or better.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Identity matrix of order n.
  static Matrix Identity(std::size_t n);

  /// Builds a matrix from nested initializer-style data (rows of equal
  /// length).
  static Matrix FromRows(const std::vector<std::vector<double>>& rows);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& operator()(std::size_t r, std::size_t c) {
    CDI_CHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    CDI_CHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  /// Raw storage (row-major).
  const std::vector<double>& data() const { return data_; }

  Matrix Transpose() const;

  /// Matrix product; inner dimensions must agree.
  Matrix Multiply(const Matrix& other) const;

  /// Matrix-vector product; v.size() must equal cols().
  std::vector<double> MultiplyVector(const std::vector<double>& v) const;

  /// Elementwise sum/difference; shapes must agree.
  Matrix Add(const Matrix& other) const;
  Matrix Subtract(const Matrix& other) const;

  /// Scales every element.
  Matrix Scale(double s) const;

  /// Rows/columns restricted to `idx` (square selection), preserving order.
  Matrix Submatrix(const std::vector<std::size_t>& idx) const;

  /// Maximum |a_ij - b_ij|; shapes must agree.
  double MaxAbsDiff(const Matrix& other) const;

  /// True if the matrix is square and symmetric within `tol`.
  bool IsSymmetric(double tol = 1e-9) const;

  /// Debug rendering.
  std::string ToString(int precision = 4) const;

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<double> data_;
};

}  // namespace cdi::stats

#endif  // CDI_STATS_MATRIX_H_
