#include "stats/linalg.h"

#include <algorithm>
#include <cmath>

namespace cdi::stats {

Result<Matrix> Cholesky(const Matrix& a) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("Cholesky needs a square matrix");
  }
  const std::size_t n = a.rows();
  Matrix l(n, n);
  // Raw-row access: this is the per-CI-query hot loop of the discovery
  // stack; the arithmetic (operands, order) is untouched.
  for (std::size_t i = 0; i < n; ++i) {
    const double* ai = a.Row(i);
    double* li = l.Row(i);
    for (std::size_t j = 0; j <= i; ++j) {
      const double* lj = l.Row(j);
      double s = ai[j];
      for (std::size_t k = 0; k < j; ++k) s -= li[k] * lj[k];
      if (i == j) {
        if (s <= 0.0) {
          return Status::FailedPrecondition(
              "matrix is not positive definite (pivot " + std::to_string(s) +
              " at " + std::to_string(i) + ")");
        }
        li[j] = std::sqrt(s);
      } else {
        li[j] = s / lj[j];
      }
    }
  }
  return l;
}

Result<std::vector<double>> CholeskySolve(const Matrix& a,
                                          const std::vector<double>& b) {
  CDI_ASSIGN_OR_RETURN(Matrix l, Cholesky(a));
  const std::size_t n = a.rows();
  if (b.size() != n) return Status::InvalidArgument("rhs size mismatch");
  // Forward solve L y = b.
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (std::size_t k = 0; k < i; ++k) s -= l(i, k) * y[k];
    y[i] = s / l(i, i);
  }
  // Back solve L^T x = y.
  std::vector<double> x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double s = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) s -= l(k, ii) * x[k];
    x[ii] = s / l(ii, ii);
  }
  return x;
}

Status CholeskyUpdate(Matrix* l, std::vector<double> v) {
  if (l == nullptr || l->rows() != l->cols()) {
    return Status::InvalidArgument("CholeskyUpdate needs a square factor");
  }
  const std::size_t n = l->rows();
  if (v.size() != n) return Status::InvalidArgument("vector size mismatch");
  for (std::size_t k = 0; k < n; ++k) {
    const double lkk = (*l)(k, k);
    if (lkk <= 0.0) {
      return Status::FailedPrecondition("invalid Cholesky factor");
    }
    const double r = std::sqrt(lkk * lkk + v[k] * v[k]);
    const double c = r / lkk;
    const double s = v[k] / lkk;
    (*l)(k, k) = r;
    for (std::size_t i = k + 1; i < n; ++i) {
      (*l)(i, k) = ((*l)(i, k) + s * v[i]) / c;
      v[i] = c * v[i] - s * (*l)(i, k);
    }
  }
  return Status::OK();
}

Status CholeskyDowndate(Matrix* l, std::vector<double> v) {
  if (l == nullptr || l->rows() != l->cols()) {
    return Status::InvalidArgument("CholeskyDowndate needs a square factor");
  }
  const std::size_t n = l->rows();
  if (v.size() != n) return Status::InvalidArgument("vector size mismatch");
  for (std::size_t k = 0; k < n; ++k) {
    const double lkk = (*l)(k, k);
    if (lkk <= 0.0) {
      return Status::FailedPrecondition("invalid Cholesky factor");
    }
    const double r2 = lkk * lkk - v[k] * v[k];
    if (r2 <= 0.0) {
      return Status::FailedPrecondition(
          "downdated matrix is not positive definite (pivot " +
          std::to_string(r2) + " at " + std::to_string(k) + ")");
    }
    const double r = std::sqrt(r2);
    const double c = r / lkk;
    const double s = v[k] / lkk;
    (*l)(k, k) = r;
    for (std::size_t i = k + 1; i < n; ++i) {
      (*l)(i, k) = ((*l)(i, k) - s * v[i]) / c;
      v[i] = c * v[i] - s * (*l)(i, k);
    }
  }
  return Status::OK();
}

Result<Matrix> CholeskyRemoveVariable(const Matrix& l, std::size_t q) {
  if (l.rows() != l.cols()) {
    return Status::InvalidArgument("CholeskyRemoveVariable needs a square factor");
  }
  const std::size_t n = l.rows();
  if (q >= n) return Status::InvalidArgument("variable index out of range");
  if (n == 1) return Status::InvalidArgument("cannot remove the only variable");
  // Rows before q factor the leading principal block, which deleting q
  // leaves untouched. The trailing block's factor T satisfies
  // T T^T = L33 L33^T + l32 l32^T, where l32 is the dropped column below
  // the diagonal — a rank-1 update.
  const std::size_t t = n - 1 - q;
  Matrix out(n - 1, n - 1);
  for (std::size_t i = 0; i < q; ++i) {
    for (std::size_t j = 0; j <= i; ++j) out(i, j) = l(i, j);
  }
  for (std::size_t i = q + 1; i < n; ++i) {
    for (std::size_t j = 0; j < q; ++j) out(i - 1, j) = l(i, j);
  }
  if (t > 0) {
    Matrix trail(t, t);
    std::vector<double> dropped(t);
    for (std::size_t i = 0; i < t; ++i) {
      dropped[i] = l(q + 1 + i, q);
      for (std::size_t j = 0; j <= i; ++j) trail(i, j) = l(q + 1 + i, q + 1 + j);
    }
    CDI_RETURN_IF_ERROR(CholeskyUpdate(&trail, std::move(dropped)));
    for (std::size_t i = 0; i < t; ++i) {
      for (std::size_t j = 0; j <= i; ++j) out(q + i, q + j) = trail(i, j);
    }
  }
  return out;
}

Result<std::vector<double>> SolveLinear(const Matrix& a,
                                        const std::vector<double>& b) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("SolveLinear needs a square matrix");
  }
  const std::size_t n = a.rows();
  if (b.size() != n) return Status::InvalidArgument("rhs size mismatch");
  Matrix m = a;
  std::vector<double> rhs = b;
  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot.
    std::size_t piv = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::fabs(m(r, col)) > std::fabs(m(piv, col))) piv = r;
    }
    if (std::fabs(m(piv, col)) < 1e-12) {
      return Status::FailedPrecondition("singular matrix in SolveLinear");
    }
    if (piv != col) {
      for (std::size_t c = 0; c < n; ++c) std::swap(m(piv, c), m(col, c));
      std::swap(rhs[piv], rhs[col]);
    }
    for (std::size_t r = col + 1; r < n; ++r) {
      const double f = m(r, col) / m(col, col);
      if (f == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) m(r, c) -= f * m(col, c);
      rhs[r] -= f * rhs[col];
    }
  }
  std::vector<double> x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double s = rhs[ii];
    for (std::size_t c = ii + 1; c < n; ++c) s -= m(ii, c) * x[c];
    x[ii] = s / m(ii, ii);
  }
  return x;
}

Result<Matrix> Inverse(const Matrix& a) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("Inverse needs a square matrix");
  }
  const std::size_t n = a.rows();
  Matrix m = a;
  Matrix inv = Matrix::Identity(n);
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t piv = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::fabs(m(r, col)) > std::fabs(m(piv, col))) piv = r;
    }
    if (std::fabs(m(piv, col)) < 1e-12) {
      return Status::FailedPrecondition("singular matrix in Inverse");
    }
    if (piv != col) {
      for (std::size_t c = 0; c < n; ++c) {
        std::swap(m(piv, c), m(col, c));
        std::swap(inv(piv, c), inv(col, c));
      }
    }
    const double d = m(col, col);
    for (std::size_t c = 0; c < n; ++c) {
      m(col, c) /= d;
      inv(col, c) /= d;
    }
    for (std::size_t r = 0; r < n; ++r) {
      if (r == col) continue;
      const double f = m(r, col);
      if (f == 0.0) continue;
      for (std::size_t c = 0; c < n; ++c) {
        m(r, c) -= f * m(col, c);
        inv(r, c) -= f * inv(col, c);
      }
    }
  }
  return inv;
}

Result<EigenDecomposition> JacobiEigen(const Matrix& a, int max_sweeps,
                                       double tol) {
  if (!a.IsSymmetric(1e-8)) {
    return Status::InvalidArgument("JacobiEigen needs a symmetric matrix");
  }
  const std::size_t n = a.rows();
  Matrix d = a;
  Matrix v = Matrix::Identity(n);
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0;
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) off += d(p, q) * d(p, q);
    }
    if (off < tol) break;
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        if (std::fabs(d(p, q)) < 1e-300) continue;
        const double theta = (d(q, q) - d(p, p)) / (2.0 * d(p, q));
        const double t = std::copysign(
            1.0 / (std::fabs(theta) + std::sqrt(theta * theta + 1.0)), theta);
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        // Apply rotation G(p,q): D = G^T D G; V = V G.
        for (std::size_t k = 0; k < n; ++k) {
          const double dkp = d(k, p);
          const double dkq = d(k, q);
          d(k, p) = c * dkp - s * dkq;
          d(k, q) = s * dkp + c * dkq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double dpk = d(p, k);
          const double dqk = d(q, k);
          d(p, k) = c * dpk - s * dqk;
          d(q, k) = s * dpk + c * dqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v(k, p);
          const double vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }
  EigenDecomposition out;
  out.values.resize(n);
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.values[i] = d(i, i);
    order[i] = i;
  }
  std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    return d(x, x) > d(y, y);
  });
  EigenDecomposition sorted;
  sorted.values.resize(n);
  sorted.vectors = Matrix(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    sorted.values[i] = out.values[order[i]];
    for (std::size_t k = 0; k < n; ++k) sorted.vectors(k, i) = v(k, order[i]);
  }
  return sorted;
}

Result<std::vector<double>> SolveNormalEquations(
    Matrix xtx, const std::vector<double>& xty, double ridge) {
  const std::size_t p = xtx.rows();
  for (std::size_t a = 0; a < p; ++a) {
    xtx(a, a) += ridge;
    for (std::size_t b = a + 1; b < p; ++b) xtx(b, a) = xtx(a, b);
  }
  auto sol = CholeskySolve(xtx, xty);
  if (sol.ok()) return sol;
  // Collinear design: retry with a stronger ridge before giving up.
  for (std::size_t a = 0; a < p; ++a) xtx(a, a) += 1e-6;
  return CholeskySolve(xtx, xty);
}

Result<std::vector<double>> LeastSquares(const Matrix& x,
                                         const std::vector<double>& y,
                                         double ridge) {
  if (x.rows() != y.size()) {
    return Status::InvalidArgument("X rows must equal y size");
  }
  const std::size_t p = x.cols();
  Matrix xtx(p, p);
  std::vector<double> xty(p, 0.0);
  for (std::size_t i = 0; i < x.rows(); ++i) {
    for (std::size_t a = 0; a < p; ++a) {
      const double xa = x(i, a);
      xty[a] += xa * y[i];
      for (std::size_t b = a; b < p; ++b) {
        xtx(a, b) += xa * x(i, b);
      }
    }
  }
  return SolveNormalEquations(std::move(xtx), xty, ridge);
}

Result<std::vector<double>> WeightedLeastSquares(const Matrix& x,
                                                 const std::vector<double>& y,
                                                 const std::vector<double>& w,
                                                 double ridge) {
  if (x.rows() != y.size() || w.size() != y.size()) {
    return Status::InvalidArgument("X/y/w size mismatch");
  }
  double wsum = 0;
  for (double wi : w) {
    if (wi < 0) return Status::InvalidArgument("negative weight");
    wsum += wi;
  }
  if (wsum <= 0) return Status::InvalidArgument("weights sum to zero");
  const std::size_t p = x.cols();
  Matrix xtx(p, p);
  std::vector<double> xty(p, 0.0);
  for (std::size_t i = 0; i < x.rows(); ++i) {
    const double wi = w[i];
    if (wi == 0) continue;
    for (std::size_t a = 0; a < p; ++a) {
      const double xa = x(i, a);
      xty[a] += wi * xa * y[i];
      for (std::size_t b = a; b < p; ++b) xtx(a, b) += wi * xa * x(i, b);
    }
  }
  return SolveNormalEquations(std::move(xtx), xty, ridge);
}

Result<double> LogDetSpd(const Matrix& a) {
  CDI_ASSIGN_OR_RETURN(Matrix l, Cholesky(a));
  double s = 0;
  for (std::size_t i = 0; i < a.rows(); ++i) s += std::log(l(i, i));
  return 2.0 * s;
}

}  // namespace cdi::stats
