#include "stats/matrix.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <new>
#include <sstream>

namespace cdi::stats {

namespace detail {
namespace {

/// Only blocks worth a fresh mmap are cached, and at most ~16 MB per
/// thread; everything else goes straight to operator new/delete. The
/// freelist is a flat array scanned linearly — it holds a handful of
/// entries, all different sizes of the same few matrix shapes.
constexpr std::size_t kMinCachedBytes = std::size_t{128} << 10;
constexpr std::size_t kMaxCachedBytes = std::size_t{16} << 20;
constexpr std::size_t kMaxCachedBlocks = 16;

struct CachedBlock {
  void* ptr;
  std::size_t bytes;
};

struct BlockCache {
  CachedBlock blocks[kMaxCachedBlocks];
  std::size_t count = 0;
  std::size_t total_bytes = 0;
  ~BlockCache() {
    for (std::size_t i = 0; i < count; ++i) ::operator delete(blocks[i].ptr);
  }
};

BlockCache& Cache() {
  static thread_local BlockCache cache;
  return cache;
}

}  // namespace

void* AcquireMatrixBlock(std::size_t bytes) {
  if (bytes < kMinCachedBytes) return nullptr;
  BlockCache& c = Cache();
  for (std::size_t i = 0; i < c.count; ++i) {
    if (c.blocks[i].bytes == bytes) {
      void* p = c.blocks[i].ptr;
      c.total_bytes -= bytes;
      c.blocks[i] = c.blocks[--c.count];
      return p;
    }
  }
  return nullptr;
}

bool TryReleaseMatrixBlock(void* p, std::size_t bytes) {
  if (bytes < kMinCachedBytes) return false;
  BlockCache& c = Cache();
  if (c.count == kMaxCachedBlocks || c.total_bytes + bytes > kMaxCachedBytes) {
    return false;
  }
  c.blocks[c.count++] = {p, bytes};
  c.total_bytes += bytes;
  return true;
}

}  // namespace detail

Matrix Matrix::Identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::FromRows(const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) return Matrix();
  Matrix m(rows.size(), rows[0].size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    CDI_CHECK(rows[r].size() == m.cols_) << "ragged rows";
    for (std::size_t c = 0; c < m.cols_; ++c) m(r, c) = rows[r][c];
  }
  return m;
}

Matrix Matrix::Transpose() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  }
  return t;
}

Matrix Matrix::Multiply(const Matrix& other) const {
  CDI_CHECK(cols_ == other.rows_) << "shape mismatch in Multiply";
  Matrix out(rows_, other.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(i, k);
      if (a == 0.0) continue;
      for (std::size_t j = 0; j < other.cols_; ++j) {
        out(i, j) += a * other(k, j);
      }
    }
  }
  return out;
}

std::vector<double> Matrix::MultiplyVector(const std::vector<double>& v) const {
  CDI_CHECK(v.size() == cols_);
  std::vector<double> out(rows_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i) {
    double s = 0;
    for (std::size_t j = 0; j < cols_; ++j) s += (*this)(i, j) * v[j];
    out[i] = s;
  }
  return out;
}

Matrix Matrix::Add(const Matrix& other) const {
  CDI_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] += other.data_[i];
  return out;
}

Matrix Matrix::Subtract(const Matrix& other) const {
  CDI_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] -= other.data_[i];
  return out;
}

Matrix Matrix::Scale(double s) const {
  Matrix out = *this;
  for (double& v : out.data_) v *= s;
  return out;
}

Matrix Matrix::Submatrix(const std::vector<std::size_t>& idx) const {
  Matrix out(idx.size(), idx.size());
  for (std::size_t i = 0; i < idx.size(); ++i) {
    CDI_CHECK(idx[i] < rows_ && idx[i] < cols_);
    const double* src = Row(idx[i]);
    double* dst = out.Row(i);
    for (std::size_t j = 0; j < idx.size(); ++j) {
      dst[j] = src[idx[j]];
    }
  }
  return out;
}

double Matrix::MaxAbsDiff(const Matrix& other) const {
  CDI_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  double m = 0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    m = std::max(m, std::fabs(data_[i] - other.data_[i]));
  }
  return m;
}

bool Matrix::IsSymmetric(double tol) const {
  if (rows_ != cols_) return false;
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t j = i + 1; j < cols_; ++j) {
      if (std::fabs((*this)(i, j) - (*this)(j, i)) > tol) return false;
    }
  }
  return true;
}

std::string Matrix::ToString(int precision) const {
  std::ostringstream os;
  char buf[64];
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      std::snprintf(buf, sizeof(buf), "%10.*f", precision, (*this)(r, c));
      os << buf << (c + 1 < cols_ ? " " : "");
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace cdi::stats
