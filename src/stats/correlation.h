#ifndef CDI_STATS_CORRELATION_H_
#define CDI_STATS_CORRELATION_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/span.h"
#include "common/status.h"
#include "stats/matrix.h"

namespace cdi {
class ThreadPool;
}  // namespace cdi

namespace cdi::stats {

/// A dataset view for multivariate statistics: column-major numeric data
/// (one span per variable; NaN = missing) with optional row weights.
///
/// The columns are `DoubleSpan`s, so a dataset built over table columns or
/// caller-held vectors copies nothing — it is constructed once per
/// pipeline run and passed by view through the estimators. Use Own() to
/// make the dataset keep materialized columns alive, or assign borrowing
/// spans (e.g. `cdi::SpansOf(vectors)`, `Column::View()`) when the
/// backing buffers outlive the dataset.
struct NumericDataset {
  std::vector<DoubleSpan> columns;
  /// Optional per-row weights (e.g. IPW weights). Empty means all 1.
  std::vector<double> weights;
  /// Optional per-column null bitmaps (bit r set = row r null; see
  /// Column::NullWords), LSB-first, (num_rows + 63) / 64 words each. When
  /// a column's pointer is non-null, the listwise-deletion mask reads it
  /// instead of scanning the column for NaN — an opt-in that is only
  /// valid when null <=> NaN holds for that column. It always holds for
  /// int64/bool column views; a *double* column may carry non-null NaN
  /// cells (a CSV literal "nan", AppendDouble(NaN)) and must then not opt
  /// in. Empty (the default) or null entries mean: NaN scan. Shorter than
  /// `columns` is fine; missing tail entries are NaN-scanned.
  std::vector<const std::uint64_t*> null_words;

  std::size_t num_vars() const { return columns.size(); }
  std::size_t num_rows() const {
    return columns.empty() ? 0 : columns[0].size();
  }

  /// Dataset that owns `cols` (each span shares its vector's lifetime).
  static NumericDataset Own(std::vector<std::vector<double>> cols) {
    NumericDataset ds;
    ds.columns.reserve(cols.size());
    for (auto& c : cols) ds.columns.emplace_back(std::move(c));
    return ds;
  }
};

/// Sample covariance matrix over complete rows (listwise deletion of rows
/// with any NaN among the variables; weighted when weights are given).
/// Runs the blocked SufficientStats kernel; `pool` parallelizes it with a
/// bitwise-deterministic reduction (null = serial, same bits).
Result<Matrix> CovarianceMatrix(const NumericDataset& data,
                                ThreadPool* pool = nullptr);

/// Sample correlation matrix over complete rows. Variables with zero
/// variance get correlation 0 with everything (1 on the diagonal).
Result<Matrix> CorrelationMatrix(const NumericDataset& data,
                                 ThreadPool* pool = nullptr);

/// Number of complete rows used by the listwise-deletion estimators.
/// Word-at-a-time over the columns (null bitmaps when opted in, NaN scans
/// otherwise); allocates nothing.
std::size_t CompleteRowCount(const NumericDataset& data);

/// Partial correlation rho(i, j | given) computed from a correlation
/// matrix by inverting the submatrix over {i, j} ∪ given.
Result<double> PartialCorrelation(const Matrix& corr, std::size_t i,
                                  std::size_t j,
                                  const std::vector<std::size_t>& given);

/// The non-SPD escape hatch of PartialCorrelation: the pivoted
/// precision-matrix route taken when Cholesky of the ridged submatrix
/// fails (severely collinear conditioning set). Exposed so FactorCache's
/// batched path lands on the *same* fallback arithmetic — bitwise — when
/// a cached factorization is degenerate. Requires |given| >= 2 and valid
/// distinct indices.
double PartialCorrelationPrecisionFallback(
    const Matrix& corr, std::size_t i, std::size_t j,
    const std::vector<std::size_t>& given);

/// Fisher-z two-sided p-value for testing rho = 0, where `r` is the
/// (partial) correlation, `n` the sample size and `k` the size of the
/// conditioning set. Returns 1 when n - k - 3 <= 0.
double FisherZPValue(double r, std::size_t n, std::size_t k);

}  // namespace cdi::stats

#endif  // CDI_STATS_CORRELATION_H_
