#ifndef CDI_STATS_INDEPENDENCE_H_
#define CDI_STATS_INDEPENDENCE_H_

#include <cstdint>
#include <vector>

#include "common/span.h"
#include "common/status.h"

namespace cdi::stats {

/// Result of an (un)conditional independence test.
struct IndependenceResult {
  double statistic = 0.0;
  double p_value = 1.0;
  /// Effect-size proxy (|partial correlation| or Cramer's V).
  double strength = 0.0;
};

/// Chi-square test of independence between two discrete variables encoded
/// as small non-negative integer codes (-1 = missing, skipped pairwise).
Result<IndependenceResult> ChiSquareIndependence(
    const std::vector<int>& x, const std::vector<int>& y);

/// Conditional chi-square test of X ⟂ Y | Z: statistic and degrees of
/// freedom sum over the strata of the (joint) conditioning codes. Strata
/// with fewer than `min_stratum` rows are skipped.
Result<IndependenceResult> ConditionalChiSquare(
    const std::vector<int>& x, const std::vector<int>& y,
    const std::vector<std::vector<int>>& z, std::size_t min_stratum = 5);

/// Plug-in discrete mutual information I(X; Y) in nats (missing codes
/// skipped pairwise).
double DiscreteMutualInformation(const std::vector<int>& x,
                                 const std::vector<int>& y);

/// Quantile-bins a numeric vector into `bins` integer codes (NaN -> -1).
/// Used to compute mutual information of continuous attributes.
std::vector<int> QuantileBin(DoubleSpan x, int bins);

}  // namespace cdi::stats

#endif  // CDI_STATS_INDEPENDENCE_H_
