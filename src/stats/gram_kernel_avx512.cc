// AVX-512 Gram kernel: one 8-wide zmm register covers a full tile row,
// so a kGramTile x kGramTile tile needs just 8 accumulator registers and
// the fused two-B-tile variant (16 accumulators + operands) still fits
// the 32-register file with room to spare — the per-row broadcast cost
// is amortized over twice the FMAs, which is what pushes the kernel from
// load-port-bound to FMA-bound. Compiled with -mavx512f -mavx2 -mfma;
// dispatch checks the CPU at runtime before selecting it.
//
// Determinism: identical to the V4 backends — one fused multiply-add per
// (entry, row), rows ascending, one accumulator lane per entry.
#include <immintrin.h>

#include <cmath>

#include "stats/gram_kernel.h"

namespace cdi::stats {

namespace {

void Avx512Tile(const double* a, const double* b, std::size_t count,
                double* local) {
  __m512d acc[kGramTile];
  for (std::size_t x = 0; x < kGramTile; ++x) {
    acc[x] = _mm512_loadu_pd(local + x * kGramTile);
  }
  for (std::size_t i = 0; i < count; ++i) {
    _mm_prefetch(reinterpret_cast<const char*>(b + (i + 16) * kGramTile),
                 _MM_HINT_T0);
    _mm_prefetch(reinterpret_cast<const char*>(a + (i + 16) * kGramTile),
                 _MM_HINT_T0);
    const __m512d bv = _mm512_loadu_pd(b + i * kGramTile);
    for (std::size_t x = 0; x < kGramTile; ++x) {
      const __m512d av = _mm512_set1_pd(a[i * kGramTile + x]);
      acc[x] = _mm512_fmadd_pd(av, bv, acc[x]);
    }
  }
  for (std::size_t x = 0; x < kGramTile; ++x) {
    _mm512_storeu_pd(local + x * kGramTile, acc[x]);
  }
}

void Avx512Tile2(const double* a, const double* b0, const double* b1,
                 std::size_t count, double* local0, double* local1) {
  __m512d acc0[kGramTile];
  __m512d acc1[kGramTile];
  for (std::size_t x = 0; x < kGramTile; ++x) {
    acc0[x] = _mm512_loadu_pd(local0 + x * kGramTile);
    acc1[x] = _mm512_loadu_pd(local1 + x * kGramTile);
  }
  for (std::size_t i = 0; i < count; ++i) {
    _mm_prefetch(reinterpret_cast<const char*>(b0 + (i + 16) * kGramTile),
                 _MM_HINT_T0);
    _mm_prefetch(reinterpret_cast<const char*>(b1 + (i + 16) * kGramTile),
                 _MM_HINT_T0);
    _mm_prefetch(reinterpret_cast<const char*>(a + (i + 16) * kGramTile),
                 _MM_HINT_T0);
    const __m512d bv0 = _mm512_loadu_pd(b0 + i * kGramTile);
    const __m512d bv1 = _mm512_loadu_pd(b1 + i * kGramTile);
    for (std::size_t x = 0; x < kGramTile; ++x) {
      const __m512d av = _mm512_set1_pd(a[i * kGramTile + x]);
      acc0[x] = _mm512_fmadd_pd(av, bv0, acc0[x]);
      acc1[x] = _mm512_fmadd_pd(av, bv1, acc1[x]);
    }
  }
  for (std::size_t x = 0; x < kGramTile; ++x) {
    _mm512_storeu_pd(local0 + x * kGramTile, acc0[x]);
    _mm512_storeu_pd(local1 + x * kGramTile, acc1[x]);
  }
}

void Avx512Cross(const double* a, const double* b, std::size_t count,
                 std::size_t k4, double* local) {
  // 8-wide zmm column blocks, with a 4-wide ymm block when k4 % 8 == 4.
  // Blocking only groups independent columns — results are unaffected.
  std::size_t j0 = 0;
  for (; j0 + 32 <= k4; j0 += 32) {
    __m512d acc[4];
    for (std::size_t v = 0; v < 4; ++v) {
      acc[v] = _mm512_loadu_pd(local + j0 + v * 8);
    }
    for (std::size_t i = 0; i < count; ++i) {
      const __m512d av = _mm512_set1_pd(a[i]);
      const double* row = b + i * k4 + j0;
      for (std::size_t v = 0; v < 4; ++v) {
        acc[v] = _mm512_fmadd_pd(av, _mm512_loadu_pd(row + v * 8), acc[v]);
      }
    }
    for (std::size_t v = 0; v < 4; ++v) {
      _mm512_storeu_pd(local + j0 + v * 8, acc[v]);
    }
  }
  for (; j0 + 8 <= k4; j0 += 8) {
    __m512d acc = _mm512_loadu_pd(local + j0);
    for (std::size_t i = 0; i < count; ++i) {
      acc = _mm512_fmadd_pd(_mm512_set1_pd(a[i]),
                            _mm512_loadu_pd(b + i * k4 + j0), acc);
    }
    _mm512_storeu_pd(local + j0, acc);
  }
  if (j0 < k4) {
    __m256d acc = _mm256_loadu_pd(local + j0);
    for (std::size_t i = 0; i < count; ++i) {
      acc = _mm256_fmadd_pd(_mm256_set1_pd(a[i]),
                            _mm256_loadu_pd(b + i * k4 + j0), acc);
    }
    _mm256_storeu_pd(local + j0, acc);
  }
}

// Centered 8x8 in-register transpose pack: load 8 rows of each of the 8
// columns, subtract the column means (one IEEE op per element — bitwise
// identical to the scalar pack), transpose with the classic
// unpack/shuffle ladder, store 8 contiguous tile rows. count % 8 rows
// fall back to the scalar loop.
void Avx512PackTile(const double* const* cols, const double* means,
                    std::size_t count, double* dst) {
  const std::size_t main = count & ~std::size_t{7};
  for (std::size_t i = 0; i < main; i += 8) {
    __m512d z[8];
    for (std::size_t c = 0; c < 8; ++c) {
      z[c] = _mm512_sub_pd(_mm512_loadu_pd(cols[c] + i),
                           _mm512_set1_pd(means[c]));
    }
    const __m512d t0 = _mm512_unpacklo_pd(z[0], z[1]);
    const __m512d t1 = _mm512_unpackhi_pd(z[0], z[1]);
    const __m512d t2 = _mm512_unpacklo_pd(z[2], z[3]);
    const __m512d t3 = _mm512_unpackhi_pd(z[2], z[3]);
    const __m512d t4 = _mm512_unpacklo_pd(z[4], z[5]);
    const __m512d t5 = _mm512_unpackhi_pd(z[4], z[5]);
    const __m512d t6 = _mm512_unpacklo_pd(z[6], z[7]);
    const __m512d t7 = _mm512_unpackhi_pd(z[6], z[7]);
    const __m512d u0 = _mm512_shuffle_f64x2(t0, t2, 0x88);
    const __m512d u1 = _mm512_shuffle_f64x2(t1, t3, 0x88);
    const __m512d u2 = _mm512_shuffle_f64x2(t0, t2, 0xdd);
    const __m512d u3 = _mm512_shuffle_f64x2(t1, t3, 0xdd);
    const __m512d u4 = _mm512_shuffle_f64x2(t4, t6, 0x88);
    const __m512d u5 = _mm512_shuffle_f64x2(t5, t7, 0x88);
    const __m512d u6 = _mm512_shuffle_f64x2(t4, t6, 0xdd);
    const __m512d u7 = _mm512_shuffle_f64x2(t5, t7, 0xdd);
    double* out = dst + i * kGramTile;
    _mm512_storeu_pd(out + 0 * kGramTile, _mm512_shuffle_f64x2(u0, u4, 0x88));
    _mm512_storeu_pd(out + 1 * kGramTile, _mm512_shuffle_f64x2(u1, u5, 0x88));
    _mm512_storeu_pd(out + 2 * kGramTile, _mm512_shuffle_f64x2(u2, u6, 0x88));
    _mm512_storeu_pd(out + 3 * kGramTile, _mm512_shuffle_f64x2(u3, u7, 0x88));
    _mm512_storeu_pd(out + 4 * kGramTile, _mm512_shuffle_f64x2(u0, u4, 0xdd));
    _mm512_storeu_pd(out + 5 * kGramTile, _mm512_shuffle_f64x2(u1, u5, 0xdd));
    _mm512_storeu_pd(out + 6 * kGramTile, _mm512_shuffle_f64x2(u2, u6, 0xdd));
    _mm512_storeu_pd(out + 7 * kGramTile, _mm512_shuffle_f64x2(u3, u7, 0xdd));
  }
  for (std::size_t i = main; i < count; ++i) {
    for (std::size_t c = 0; c < kGramTile; ++c) {
      dst[i * kGramTile + c] = cols[c][i] - means[c];
    }
  }
}

/// 8-wide correlation row: vdivpd/vsqrtpd are correctly-rounded IEEE
/// ops and the clamp/guard are exact mask selections, so the bits match
/// the scalar loop; only the divide/sqrt throughput improves (~5x).
void Avx512CorrRow(const double* s, const double* var, double va,
                   double denom, std::size_t n, double* out) {
  if (!(va > 0)) {
    for (std::size_t j = 0; j < n; ++j) out[j] = 0.0;
    return;
  }
  const __m512d vden = _mm512_set1_pd(denom);
  const __m512d vva = _mm512_set1_pd(va);
  const __m512d lo = _mm512_set1_pd(-1.0);
  const __m512d hi = _mm512_set1_pd(1.0);
  const __m512d zero = _mm512_setzero_pd();
  std::size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    const __m512d vv = _mm512_loadu_pd(var + j);
    __m512d r = _mm512_div_pd(_mm512_div_pd(_mm512_loadu_pd(s + j), vden),
                              _mm512_sqrt_pd(_mm512_mul_pd(vva, vv)));
    r = _mm512_mask_blend_pd(_mm512_cmp_pd_mask(r, lo, _CMP_LT_OQ), r, lo);
    r = _mm512_mask_blend_pd(_mm512_cmp_pd_mask(hi, r, _CMP_LT_OQ), r, hi);
    r = _mm512_maskz_mov_pd(_mm512_cmp_pd_mask(vv, zero, _CMP_GT_OQ), r);
    _mm512_storeu_pd(out + j, r);
  }
  for (; j < n; ++j) {
    const double vb = var[j];
    double r = 0.0;
    if (vb > 0) {
      r = (s[j] / denom) / std::sqrt(va * vb);
      r = r < -1.0 ? -1.0 : (1.0 < r ? 1.0 : r);
    }
    out[j] = r;
  }
}

void Avx512DivRow(const double* s, double denom, std::size_t n,
                  double* out) {
  const __m512d vden = _mm512_set1_pd(denom);
  std::size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    _mm512_storeu_pd(out + j, _mm512_div_pd(_mm512_loadu_pd(s + j), vden));
  }
  for (; j < n; ++j) out[j] = s[j] / denom;
}

std::uint64_t Avx512PresentBits(const double* col, std::size_t count) {
  std::uint64_t bits = 0;
  std::size_t i = 0;
  for (; i + 8 <= count; i += 8) {
    const __m512d v = _mm512_loadu_pd(col + i);
    bits |= static_cast<std::uint64_t>(
                _mm512_cmp_pd_mask(v, v, _CMP_EQ_OQ))
            << i;
  }
  for (; i < count; ++i) {
    bits |= static_cast<std::uint64_t>(col[i] == col[i]) << i;
  }
  return bits;
}

}  // namespace

const GramKernelFns* CdiGramKernelAvx512() {
  static const GramKernelFns fns = {
      &Avx512Tile,    &Avx512Tile2,      &Avx512Cross, &Avx512PackTile,
      &Avx512PresentBits, &Avx512CorrRow, &Avx512DivRow, "avx512"};
  return &fns;
}

}  // namespace cdi::stats
