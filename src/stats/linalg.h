#ifndef CDI_STATS_LINALG_H_
#define CDI_STATS_LINALG_H_

#include <vector>

#include "common/status.h"
#include "stats/matrix.h"

namespace cdi::stats {

/// Result of a symmetric eigendecomposition: A = V diag(values) V^T.
/// Eigenpairs are sorted by descending eigenvalue; eigenvector i is the
/// i-th *column* of `vectors`.
struct EigenDecomposition {
  std::vector<double> values;
  Matrix vectors;
};

/// Cholesky factor L (lower triangular, A = L L^T) of a symmetric
/// positive-definite matrix. Fails on non-SPD input.
Result<Matrix> Cholesky(const Matrix& a);

/// Solves A x = b for symmetric positive-definite A via Cholesky.
Result<std::vector<double>> CholeskySolve(const Matrix& a,
                                          const std::vector<double>& b);

/// Rank-1 Cholesky update: given the lower-triangular factor L of A,
/// overwrites it with the factor of A + v v^T in O(n^2) (LINPACK dchud
/// Givens sweep). Consumes `v` as scratch. Fails (leaving *l partially
/// updated) only when L has a non-positive diagonal, i.e. was not a
/// valid factor.
Status CholeskyUpdate(Matrix* l, std::vector<double> v);

/// Rank-1 Cholesky downdate: factor of A - v v^T in O(n^2) (LINPACK
/// dchdd hyperbolic sweep). Fails — leaving *l partially updated — when
/// the downdated matrix is not positive definite. Unlike the
/// prefix-extension path in FactorCache, a downdate reorganizes the
/// arithmetic, so the result matches a from-scratch factorization only
/// to rounding (tests pin ~1e-10 relative); callers with a bitwise
/// contract must refactor instead.
Status CholeskyDowndate(Matrix* l, std::vector<double> v);

/// Factor of A with variable `q` deleted, computed from A's factor `l`
/// without touching A: rows above/left of q are reused verbatim and the
/// trailing block is rank-1-updated with the dropped column (the classic
/// "remove a variable from a Cholesky" identity) — O((n-q)^2) instead of
/// O((n-q)^3). Same rounding caveat as CholeskyDowndate. This is the
/// edge-removal path of the batched CI engine: shrinking a conditioning
/// set or parent set by one variable.
Result<Matrix> CholeskyRemoveVariable(const Matrix& l, std::size_t q);

/// Solves A x = b by Gaussian elimination with partial pivoting
/// (general square A). Fails on (numerically) singular input.
Result<std::vector<double>> SolveLinear(const Matrix& a,
                                        const std::vector<double>& b);

/// Inverse of a square matrix (Gauss-Jordan with partial pivoting).
Result<Matrix> Inverse(const Matrix& a);

/// Eigendecomposition of a symmetric matrix by the cyclic Jacobi method.
Result<EigenDecomposition> JacobiEigen(const Matrix& a,
                                       int max_sweeps = 64,
                                       double tol = 1e-12);

/// Solves the normal equations xtx beta = xty, where `xtx` carries the
/// accumulated Gram in its upper triangle (the lower triangle is ignored
/// and overwritten by mirroring). Adds `ridge` to the diagonal, solves by
/// Cholesky, and retries once with a stronger 1e-6 ridge for collinear
/// systems — the shared tail of LeastSquares / WeightedLeastSquares /
/// FitOls and of every sufficient-statistics consumer that regresses on a
/// covariance submatrix.
Result<std::vector<double>> SolveNormalEquations(Matrix xtx,
                                                 const std::vector<double>& xty,
                                                 double ridge);

/// Minimum-norm least squares: minimizes ||X beta - y||^2 via the normal
/// equations with a tiny ridge (`ridge`) added to the diagonal for
/// numerical robustness against collinear columns.
Result<std::vector<double>> LeastSquares(const Matrix& x,
                                         const std::vector<double>& y,
                                         double ridge = 1e-9);

/// Weighted least squares: minimizes sum_i w_i (x_i beta - y_i)^2.
/// Weights must be non-negative with a positive sum.
Result<std::vector<double>> WeightedLeastSquares(
    const Matrix& x, const std::vector<double>& y,
    const std::vector<double>& w, double ridge = 1e-9);

/// log(det(A)) for symmetric positive-definite A (via Cholesky).
Result<double> LogDetSpd(const Matrix& a);

}  // namespace cdi::stats

#endif  // CDI_STATS_LINALG_H_
