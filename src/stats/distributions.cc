#include "stats/distributions.h"

#include <cmath>
#include <limits>

#include "common/logging.h"

namespace cdi::stats {

double NormalCdf(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

double NormalSf(double z) { return 0.5 * std::erfc(z / std::sqrt(2.0)); }

double NormalQuantile(double p) {
  CDI_CHECK(p > 0.0 && p < 1.0) << "NormalQuantile needs 0 < p < 1";
  // Acklam's algorithm.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double plow = 0.02425;
  double q, r, x;
  if (p < plow) {
    q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - plow) {
    q = p - 0.5;
    r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
        q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    q = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
          c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  return x;
}

double LogGamma(double x) {
  CDI_CHECK(x > 0.0);
  // Lanczos approximation (g = 7, n = 9).
  static const double coef[] = {
      0.99999999999980993,  676.5203681218851,   -1259.1392167224028,
      771.32342877765313,   -176.61502916214059, 12.507343278686905,
      -0.13857109526572012, 9.9843695780195716e-6, 1.5056327351493116e-7};
  if (x < 0.5) {
    // Reflection formula.
    return std::log(M_PI / std::sin(M_PI * x)) - LogGamma(1.0 - x);
  }
  x -= 1.0;
  double a = coef[0];
  const double t = x + 7.5;
  for (int i = 1; i < 9; ++i) a += coef[i] / (x + i);
  return 0.5 * std::log(2.0 * M_PI) + (x + 0.5) * std::log(t) - t +
         std::log(a);
}

namespace {

/// Series expansion for P(a, x), best for x < a + 1.
double GammaPSeries(double a, double x) {
  double sum = 1.0 / a;
  double term = sum;
  for (int n = 1; n < 500; ++n) {
    term *= x / (a + n);
    sum += term;
    if (std::fabs(term) < std::fabs(sum) * 1e-15) break;
  }
  return sum * std::exp(-x + a * std::log(x) - LogGamma(a));
}

/// Continued fraction for Q(a, x), best for x >= a + 1 (Lentz).
double GammaQContinuedFraction(double a, double x) {
  const double kTiny = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i < 500; ++i) {
    const double an = -i * (i - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = b + an / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::fabs(delta - 1.0) < 1e-15) break;
  }
  return std::exp(-x + a * std::log(x) - LogGamma(a)) * h;
}

}  // namespace

double RegularizedGammaP(double a, double x) {
  CDI_CHECK(a > 0.0 && x >= 0.0);
  if (x == 0.0) return 0.0;
  if (x < a + 1.0) return GammaPSeries(a, x);
  return 1.0 - GammaQContinuedFraction(a, x);
}

double RegularizedGammaQ(double a, double x) {
  CDI_CHECK(a > 0.0 && x >= 0.0);
  if (x == 0.0) return 1.0;
  if (x < a + 1.0) return 1.0 - GammaPSeries(a, x);
  return GammaQContinuedFraction(a, x);
}

double ChiSquareCdf(double x, double k) {
  if (x <= 0.0) return 0.0;
  return RegularizedGammaP(k / 2.0, x / 2.0);
}

double ChiSquareSf(double x, double k) {
  if (x <= 0.0) return 1.0;
  return RegularizedGammaQ(k / 2.0, x / 2.0);
}

namespace {

double BetaContinuedFraction(double a, double b, double x) {
  const double kTiny = 1e-300;
  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kTiny) d = kTiny;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m < 500; ++m) {
    const int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::fabs(delta - 1.0) < 1e-15) break;
  }
  return h;
}

}  // namespace

double RegularizedIncompleteBeta(double a, double b, double x) {
  CDI_CHECK(a > 0.0 && b > 0.0);
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  const double ln_front = LogGamma(a + b) - LogGamma(a) - LogGamma(b) +
                          a * std::log(x) + b * std::log(1.0 - x);
  const double front = std::exp(ln_front);
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * BetaContinuedFraction(a, b, x) / a;
  }
  return 1.0 - front * BetaContinuedFraction(b, a, 1.0 - x) / b;
}

double StudentTCdf(double t, double dof) {
  CDI_CHECK(dof > 0.0);
  const double x = dof / (dof + t * t);
  const double p = 0.5 * RegularizedIncompleteBeta(dof / 2.0, 0.5, x);
  return t >= 0.0 ? 1.0 - p : p;
}

double StudentTTwoSidedPValue(double t, double dof) {
  const double x = dof / (dof + t * t);
  return RegularizedIncompleteBeta(dof / 2.0, 0.5, x);
}

double FSf(double f, double d1, double d2) {
  if (f <= 0.0) return 1.0;
  const double x = d2 / (d2 + d1 * f);
  return RegularizedIncompleteBeta(d2 / 2.0, d1 / 2.0, x);
}

}  // namespace cdi::stats
