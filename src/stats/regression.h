#ifndef CDI_STATS_REGRESSION_H_
#define CDI_STATS_REGRESSION_H_

#include <string>
#include <vector>

#include "common/span.h"
#include "common/status.h"
#include "stats/matrix.h"

namespace cdi::stats {

/// Fitted ordinary (or weighted) least-squares model.
struct OlsFit {
  /// Intercept followed by one coefficient per predictor, in input order.
  std::vector<double> coefficients;
  /// Standard error per coefficient (same indexing).
  std::vector<double> std_errors;
  /// t statistic per coefficient.
  std::vector<double> t_values;
  /// Two-sided p-value per coefficient.
  std::vector<double> p_values;
  double r_squared = 0.0;
  double adjusted_r_squared = 0.0;
  /// Residual sum of squares.
  double rss = 0.0;
  /// Rows actually used (complete cases).
  std::size_t n_used = 0;
  std::vector<double> residuals;

  /// Coefficient of predictor `i` (0-based, excludes intercept).
  double beta(std::size_t i) const { return coefficients.at(i + 1); }
  double intercept() const { return coefficients.at(0); }
};

/// Ordinary least squares of `y` on `xs` (one span per predictor) with an
/// intercept. Rows containing NaN in y or any predictor are dropped
/// (listwise); optional non-negative row `weights` turn this into WLS
/// (weights of dropped rows are ignored). Requires more complete rows than
/// predictors.
Result<OlsFit> FitOls(const std::vector<DoubleSpan>& xs, DoubleSpan y,
                      const std::vector<double>& weights = {});

/// OLS on standardized variables (y and every predictor z-scored first).
/// The returned coefficients are then comparable across predictors; this is
/// what the paper's "direct effect" column reports.
Result<OlsFit> FitStandardizedOls(const std::vector<DoubleSpan>& xs,
                                  DoubleSpan y,
                                  const std::vector<double>& weights = {});

/// Gaussian BIC of regressing `target` on `parents` (columns of `data`),
/// the local score used by GES: -2 log L + log(n) * (|parents| + 2).
/// Lower is better.
Result<double> GaussianBicLocalScore(
    const std::vector<DoubleSpan>& data, std::size_t target,
    const std::vector<std::size_t>& parents);

}  // namespace cdi::stats

#endif  // CDI_STATS_REGRESSION_H_
