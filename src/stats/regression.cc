#include "stats/regression.h"

#include <cmath>

#include "stats/descriptive.h"
#include "stats/distributions.h"
#include "stats/linalg.h"

namespace cdi::stats {

Result<OlsFit> FitOls(const std::vector<DoubleSpan>& xs, DoubleSpan y,
                      const std::vector<double>& weights) {
  const std::size_t n = y.size();
  for (const auto& x : xs) {
    if (x.size() != n) return Status::InvalidArgument("ragged predictors");
  }
  if (!weights.empty() && weights.size() != n) {
    return Status::InvalidArgument("weights size mismatch");
  }
  // Complete cases.
  std::vector<std::size_t> rows;
  for (std::size_t r = 0; r < n; ++r) {
    if (std::isnan(y[r])) continue;
    bool ok = true;
    for (const auto& x : xs) {
      if (std::isnan(x[r])) {
        ok = false;
        break;
      }
    }
    if (ok) rows.push_back(r);
  }
  const std::size_t m = rows.size();
  const std::size_t p = xs.size() + 1;  // + intercept
  if (m <= p) {
    return Status::FailedPrecondition(
        "need more complete rows (" + std::to_string(m) +
        ") than parameters (" + std::to_string(p) + ")");
  }

  std::vector<double> yy(m);
  std::vector<double> ww(m, 1.0);
  for (std::size_t i = 0; i < m; ++i) {
    const std::size_t r = rows[i];
    yy[i] = y[r];
    if (!weights.empty()) ww[i] = weights[r];
  }
  double wsum = 0;
  for (double wi : ww) {
    if (wi < 0) return Status::InvalidArgument("negative weight");
    wsum += wi;
  }
  if (wsum <= 0) return Status::InvalidArgument("weights sum to zero");

  // Normal equations accumulated straight from the spans — no m-by-p
  // design matrix is ever materialized. Column 0 is the intercept.
  const auto xval = [&xs](std::size_t r, std::size_t a) {
    return a == 0 ? 1.0 : xs[a - 1][r];
  };
  Matrix xtx(p, p);
  std::vector<double> xty(p, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    const double wi = ww[i];
    if (wi == 0) continue;
    const std::size_t r = rows[i];
    for (std::size_t a = 0; a < p; ++a) {
      const double xa = xval(r, a);
      xty[a] += wi * xa * yy[i];
      for (std::size_t b = a; b < p; ++b) xtx(a, b) += wi * xa * xval(r, b);
    }
  }
  CDI_ASSIGN_OR_RETURN(std::vector<double> beta,
                       SolveNormalEquations(std::move(xtx), xty, 1e-9));

  OlsFit fit;
  fit.coefficients = beta;
  fit.n_used = m;
  fit.residuals.assign(n, std::nan(""));

  double rss = 0, tss = 0;
  const double ymean = [&] {
    double s = 0, wsum = 0;
    for (std::size_t i = 0; i < m; ++i) {
      s += ww[i] * yy[i];
      wsum += ww[i];
    }
    return s / wsum;
  }();
  for (std::size_t i = 0; i < m; ++i) {
    double pred = beta[0];
    for (std::size_t j = 0; j < xs.size(); ++j) {
      pred += beta[j + 1] * xs[j][rows[i]];
    }
    const double e = yy[i] - pred;
    fit.residuals[rows[i]] = e;
    rss += ww[i] * e * e;
    tss += ww[i] * (yy[i] - ymean) * (yy[i] - ymean);
  }
  fit.rss = rss;
  fit.r_squared = tss > 0 ? 1.0 - rss / tss : 0.0;
  const double dof = static_cast<double>(m - p);
  fit.adjusted_r_squared =
      tss > 0 ? 1.0 - (rss / dof) / (tss / static_cast<double>(m - 1)) : 0.0;

  // Standard errors from sigma^2 (X^T W X)^-1.
  const double sigma2 = rss / dof;
  Matrix xtwx(p, p);
  for (std::size_t i = 0; i < m; ++i) {
    const std::size_t r = rows[i];
    for (std::size_t a = 0; a < p; ++a) {
      for (std::size_t b = a; b < p; ++b) {
        xtwx(a, b) += ww[i] * xval(r, a) * xval(r, b);
      }
    }
  }
  for (std::size_t a = 0; a < p; ++a) {
    for (std::size_t b = a + 1; b < p; ++b) xtwx(b, a) = xtwx(a, b);
    xtwx(a, a) += 1e-10;
  }
  fit.std_errors.assign(p, std::nan(""));
  fit.t_values.assign(p, std::nan(""));
  fit.p_values.assign(p, std::nan(""));
  auto inv = Inverse(xtwx);
  if (inv.ok()) {
    for (std::size_t a = 0; a < p; ++a) {
      const double var = sigma2 * (*inv)(a, a);
      if (var >= 0) {
        fit.std_errors[a] = std::sqrt(var);
        if (fit.std_errors[a] > 0) {
          fit.t_values[a] = beta[a] / fit.std_errors[a];
          fit.p_values[a] = StudentTTwoSidedPValue(fit.t_values[a], dof);
        }
      }
    }
  }
  return fit;
}

Result<OlsFit> FitStandardizedOls(const std::vector<DoubleSpan>& xs,
                                  DoubleSpan y,
                                  const std::vector<double>& weights) {
  std::vector<DoubleSpan> zx;
  zx.reserve(xs.size());
  for (const auto& x : xs) zx.emplace_back(Standardize(x));
  return FitOls(zx, Standardize(y), weights);
}

Result<double> GaussianBicLocalScore(
    const std::vector<DoubleSpan>& data, std::size_t target,
    const std::vector<std::size_t>& parents) {
  if (target >= data.size()) {
    return Status::InvalidArgument("bad target index");
  }
  const std::size_t n = data[target].size();
  if (n < parents.size() + 3) {
    return Status::FailedPrecondition("too few rows for BIC");
  }
  double rss;
  if (parents.empty()) {
    const double m = Mean(data[target]);
    rss = 0;
    // One fused multiply-add per row, rows ascending — the same per-entry
    // operation sequence as the blocked Gram kernel, so the empty-parents
    // score stays bitwise equal to SufficientStats::GaussianBicLocal.
    for (double v : data[target]) rss = std::fma(v - m, v - m, rss);
  } else {
    std::vector<DoubleSpan> xs;
    for (std::size_t pidx : parents) xs.push_back(data[pidx]);
    CDI_ASSIGN_OR_RETURN(OlsFit fit, FitOls(xs, data[target]));
    rss = fit.rss;
  }
  const double nn = static_cast<double>(n);
  const double sigma2 = std::max(rss / nn, 1e-12);
  // -2 log L = n log(2*pi*sigma^2) + n; BIC penalty: (|pa| + 2) params
  // (coefficients + intercept + variance).
  const double neg2_loglik = nn * std::log(2.0 * M_PI * sigma2) + nn;
  return neg2_loglik +
         std::log(nn) * (static_cast<double>(parents.size()) + 2.0);
}

}  // namespace cdi::stats
