#include "stats/descriptive.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

namespace cdi::stats {

namespace {

const double kNaN = std::numeric_limits<double>::quiet_NaN();

std::vector<double> ValidValues(cdi::DoubleSpan x) {
  std::vector<double> out;
  out.reserve(x.size());
  for (double v : x) {
    if (!std::isnan(v)) out.push_back(v);
  }
  return out;
}

}  // namespace

std::size_t ValidCount(DoubleSpan x) {
  std::size_t n = 0;
  for (double v : x) n += std::isnan(v) ? 0 : 1;
  return n;
}

double Mean(DoubleSpan x) {
  double s = 0;
  std::size_t n = 0;
  for (double v : x) {
    if (std::isnan(v)) continue;
    s += v;
    ++n;
  }
  return n == 0 ? kNaN : s / static_cast<double>(n);
}

double Variance(DoubleSpan x) {
  const double m = Mean(x);
  if (std::isnan(m)) return kNaN;
  double ss = 0;
  std::size_t n = 0;
  for (double v : x) {
    if (std::isnan(v)) continue;
    ss += (v - m) * (v - m);
    ++n;
  }
  return n < 2 ? kNaN : ss / static_cast<double>(n - 1);
}

double StdDev(DoubleSpan x) {
  const double v = Variance(x);
  return std::isnan(v) ? kNaN : std::sqrt(v);
}

double Min(DoubleSpan x) {
  auto v = ValidValues(x);
  return v.empty() ? kNaN : *std::min_element(v.begin(), v.end());
}

double Max(DoubleSpan x) {
  auto v = ValidValues(x);
  return v.empty() ? kNaN : *std::max_element(v.begin(), v.end());
}

double Median(DoubleSpan x) { return Quantile(x, 0.5); }

double Quantile(DoubleSpan x, double q) {
  auto v = ValidValues(x);
  if (v.empty()) return kNaN;
  q = std::clamp(q, 0.0, 1.0);
  std::sort(v.begin(), v.end());
  const double pos = q * static_cast<double>(v.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(std::floor(pos));
  const std::size_t hi = static_cast<std::size_t>(std::ceil(pos));
  const double frac = pos - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

double Skewness(DoubleSpan x) {
  auto v = ValidValues(x);
  if (v.size() < 3) return kNaN;
  const double m = Mean(v);
  double m2 = 0, m3 = 0;
  for (double xi : v) {
    const double d = xi - m;
    m2 += d * d;
    m3 += d * d * d;
  }
  m2 /= static_cast<double>(v.size());
  m3 /= static_cast<double>(v.size());
  if (m2 <= 0) return 0.0;
  return m3 / std::pow(m2, 1.5);
}

double ExcessKurtosis(DoubleSpan x) {
  auto v = ValidValues(x);
  if (v.size() < 4) return kNaN;
  const double m = Mean(v);
  double m2 = 0, m4 = 0;
  for (double xi : v) {
    const double d = xi - m;
    m2 += d * d;
    m4 += d * d * d * d;
  }
  m2 /= static_cast<double>(v.size());
  m4 /= static_cast<double>(v.size());
  if (m2 <= 0) return 0.0;
  return m4 / (m2 * m2) - 3.0;
}

double WeightedMean(DoubleSpan x,
                    DoubleSpan w) {
  if (x.size() != w.size()) return kNaN;
  double num = 0, den = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (std::isnan(x[i]) || std::isnan(w[i])) continue;
    num += w[i] * x[i];
    den += w[i];
  }
  return den == 0 ? kNaN : num / den;
}

double PearsonCorrelation(DoubleSpan x,
                          DoubleSpan y) {
  if (x.size() != y.size()) return kNaN;
  double sx = 0, sy = 0, sxx = 0, syy = 0, sxy = 0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (std::isnan(x[i]) || std::isnan(y[i])) continue;
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    syy += y[i] * y[i];
    sxy += x[i] * y[i];
    ++n;
  }
  if (n < 2) return kNaN;
  const double nn = static_cast<double>(n);
  const double cov = sxy - sx * sy / nn;
  const double vx = sxx - sx * sx / nn;
  const double vy = syy - sy * sy / nn;
  if (vx <= 0 || vy <= 0) return kNaN;
  return std::clamp(cov / std::sqrt(vx * vy), -1.0, 1.0);
}

namespace {

std::vector<double> AverageRanks(const std::vector<double>& v) {
  const std::size_t n = v.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return v[a] < v[b]; });
  std::vector<double> ranks(n);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && v[order[j + 1]] == v[order[i]]) ++j;
    const double avg = 0.5 * (static_cast<double>(i) + static_cast<double>(j)) + 1.0;
    for (std::size_t k = i; k <= j; ++k) ranks[order[k]] = avg;
    i = j + 1;
  }
  return ranks;
}

}  // namespace

double SpearmanCorrelation(DoubleSpan x,
                           DoubleSpan y) {
  if (x.size() != y.size()) return kNaN;
  std::vector<double> xv, yv;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (std::isnan(x[i]) || std::isnan(y[i])) continue;
    xv.push_back(x[i]);
    yv.push_back(y[i]);
  }
  if (xv.size() < 2) return kNaN;
  return PearsonCorrelation(AverageRanks(xv), AverageRanks(yv));
}

std::vector<double> Standardize(DoubleSpan x) {
  const double m = Mean(x);
  const double s = StdDev(x);
  std::vector<double> out(x.size(), kNaN);
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (std::isnan(x[i])) continue;
    out[i] = (std::isnan(s) || s <= 0) ? 0.0 : (x[i] - m) / s;
  }
  return out;
}

std::vector<double> ZScores(DoubleSpan x) {
  return Standardize(x);
}

}  // namespace cdi::stats
