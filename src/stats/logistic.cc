#include "stats/logistic.h"

#include <algorithm>
#include <cmath>

#include "stats/linalg.h"
#include "stats/matrix.h"

namespace cdi::stats {

namespace {
double Sigmoid(double z) {
  if (z >= 0) {
    const double e = std::exp(-z);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(z);
  return e / (1.0 + e);
}
}  // namespace

double LogisticFit::Predict(const std::vector<double>& x) const {
  CDI_CHECK(x.size() + 1 == coefficients.size());
  double z = coefficients[0];
  for (std::size_t i = 0; i < x.size(); ++i) z += coefficients[i + 1] * x[i];
  return Sigmoid(z);
}

Result<LogisticFit> FitLogistic(const std::vector<DoubleSpan>& xs,
                                DoubleSpan y,
                                int max_iterations, double ridge) {
  const std::size_t n = y.size();
  for (const auto& x : xs) {
    if (x.size() != n) return Status::InvalidArgument("ragged predictors");
  }
  std::vector<std::size_t> rows;
  for (std::size_t r = 0; r < n; ++r) {
    if (std::isnan(y[r])) continue;
    if (y[r] != 0.0 && y[r] != 1.0) {
      return Status::InvalidArgument("y must be 0/1");
    }
    bool ok = true;
    for (const auto& x : xs) {
      if (std::isnan(x[r])) {
        ok = false;
        break;
      }
    }
    if (ok) rows.push_back(r);
  }
  const std::size_t m = rows.size();
  const std::size_t p = xs.size() + 1;
  if (m <= p) return Status::FailedPrecondition("too few complete rows");

  Matrix design(m, p);
  std::vector<double> yy(m);
  for (std::size_t i = 0; i < m; ++i) {
    design(i, 0) = 1.0;
    for (std::size_t j = 0; j < xs.size(); ++j) {
      design(i, j + 1) = xs[j][rows[i]];
    }
    yy[i] = y[rows[i]];
  }

  LogisticFit fit;
  std::vector<double> beta(p, 0.0);
  for (int iter = 0; iter < max_iterations; ++iter) {
    // IRLS step: solve (X^T W X + ridge I) d = X^T (y - mu).
    Matrix h(p, p);
    std::vector<double> g(p, 0.0);
    for (std::size_t i = 0; i < m; ++i) {
      double z = 0;
      for (std::size_t a = 0; a < p; ++a) z += design(i, a) * beta[a];
      const double mu = Sigmoid(z);
      const double w = std::max(mu * (1.0 - mu), 1e-10);
      const double resid = yy[i] - mu;
      for (std::size_t a = 0; a < p; ++a) {
        g[a] += design(i, a) * resid;
        for (std::size_t b = a; b < p; ++b) {
          h(a, b) += w * design(i, a) * design(i, b);
        }
      }
    }
    for (std::size_t a = 0; a < p; ++a) {
      h(a, a) += ridge;
      for (std::size_t b = a + 1; b < p; ++b) h(b, a) = h(a, b);
      g[a] -= ridge * beta[a];
    }
    CDI_ASSIGN_OR_RETURN(std::vector<double> step, CholeskySolve(h, g));
    double max_step = 0;
    for (std::size_t a = 0; a < p; ++a) {
      beta[a] += step[a];
      max_step = std::max(max_step, std::fabs(step[a]));
    }
    fit.iterations = iter + 1;
    if (max_step < 1e-8) {
      fit.converged = true;
      break;
    }
  }
  fit.coefficients = beta;
  fit.log_likelihood = 0;
  for (std::size_t i = 0; i < m; ++i) {
    double z = 0;
    for (std::size_t a = 0; a < p; ++a) z += design(i, a) * beta[a];
    const double mu = std::clamp(Sigmoid(z), 1e-12, 1.0 - 1e-12);
    fit.log_likelihood +=
        yy[i] > 0.5 ? std::log(mu) : std::log(1.0 - mu);
  }
  return fit;
}

}  // namespace cdi::stats
