#ifndef CDI_STATS_GRAM_KERNEL_H_
#define CDI_STATS_GRAM_KERNEL_H_

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

namespace cdi::stats {

/// Tile width of the blocked Gram kernel (see sufficient_stats.cc).
inline constexpr std::size_t kGramTile = 8;

/// One Gram microkernel implementation. All entry points share the same
/// determinism contract: each output entry is accumulated with one fused
/// multiply-add per row, over rows in ascending order, into a single
/// accumulator. Because FMA is correctly rounded, every backend (scalar
/// std::fma, AVX2, AVX-512, NEON) produces bitwise-identical results —
/// the backends differ only in how many independent entries they carry
/// per instruction.
struct GramKernelFns {
  /// local[x * kGramTile + y] += sum_i a[i * kGramTile + x] *
  /// b[i * kGramTile + y] (fused, rows ascending). `a` and `b` are
  /// tile-contiguous panels: row i of a tile is kGramTile adjacent
  /// doubles.
  void (*tile)(const double* a, const double* b, std::size_t count,
               double* local);

  /// Two B-tiles against one A-tile — exactly tile(a, b0, ..., local0)
  /// followed by tile(a, b1, ..., local1), fused so the A broadcasts are
  /// shared. Bitwise identical to the two separate calls.
  void (*tile2)(const double* a, const double* b0, const double* b1,
                std::size_t count, double* local0, double* local1);

  /// k4 independent dot products sharing the left operand:
  /// local[j] += sum_i a[i] * b[i * k4 + j] (fused, rows ascending).
  /// k4 must be a multiple of 4; b is row-major count x k4. Used by the
  /// incremental column-append cross block.
  void (*cross)(const double* a, const double* b, std::size_t count,
                std::size_t k4, double* local);

  /// Centered transpose-pack of one tile: dst[i * kGramTile + c] =
  /// cols[c][i] - means[c] for i < count, c < kGramTile. Vector backends
  /// run it as an in-register 8x8 (or 4x4) transpose; subtraction is a
  /// single IEEE op per element, so every backend packs identical bits.
  void (*pack_tile)(const double* const* cols, const double* means,
                    std::size_t count, double* dst);

  /// Present (non-NaN) bits of col[0..count), count <= 64, packed
  /// LSB-first: bit i set iff col[i] == col[i]. Exact comparisons — the
  /// backends agree bit for bit.
  std::uint64_t (*present_bits)(const double* col, std::size_t count);

  /// One strict-upper correlation row from sufficient statistics:
  /// out[j] = (va > 0 && var[j] > 0)
  ///            ? clamp((s[j] / denom) / sqrt(va * var[j]), -1, 1) : 0
  /// for j < n, with std::clamp's NaN-passthrough semantics. Division,
  /// sqrt and multiply are correctly-rounded IEEE ops on every backend,
  /// so vector and scalar kernels emit identical bits; only the
  /// divide/sqrt throughput differs.
  void (*corr_row)(const double* s, const double* var, double va,
                   double denom, std::size_t n, double* out);

  /// out[j] = s[j] / denom for j < n — the covariance scaling. IEEE
  /// division is correctly rounded on every backend: identical bits.
  void (*div_row)(const double* s, double denom, std::size_t n, double* out);

  const char* name;
};

/// The best kernel for this machine: AVX-512 when compiled in and the
/// CPU supports it, else AVX2 (or NEON on aarch64), else the scalar
/// fallback. The choice is made once (thread-safe); builds configured
/// with -DCDI_DISABLE_SIMD=ON compile only the scalar kernel, and the
/// runtime CPU check downgrades transparently on older x86-64 parts.
/// The environment variable CDI_SIMD ("scalar", "simd", "avx512") caps
/// the selection — handy for A/B runs without a rebuild; results are
/// bitwise identical either way.
const GramKernelFns& ActiveGramKernel();

/// Kernel registered under `name` ("scalar", plus "avx2"/"neon" and
/// "avx512" when compiled in and supported by this CPU), or null.
const GramKernelFns* GramKernelByName(std::string_view name);

/// Every kernel usable on this machine (scalar first). Test seam: the
/// identity battery runs the full SufficientStats suite under each.
std::vector<const GramKernelFns*> AvailableGramKernels();

/// Overrides ActiveGramKernel() until reset with null. Not synchronized
/// with concurrent kernel users — tests only.
void SetGramKernelForTesting(const GramKernelFns* kernel);

}  // namespace cdi::stats

#endif  // CDI_STATS_GRAM_KERNEL_H_
