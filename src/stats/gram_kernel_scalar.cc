// Scalar Gram kernel: the V4 wrapper pinned to its std::fma backend.
// Always compiled, with baseline flags, so every build has a kernel that
// runs anywhere — and one whose results the SIMD backends must (and do)
// match bit for bit. On hardware with FMA, libm's fma resolves to the
// fused instruction; without it, the correctly-rounded software path
// keeps the bitwise contract at reduced speed.
#define CDI_SIMD_FORCE_SCALAR 1

#include "stats/gram_kernel_impl.h"

namespace cdi::stats {

const GramKernelFns* CdiGramKernelScalar() {
  static const GramKernelFns fns = {
      &GramTileImpl,        &GramTile2Impl,  &GramCrossImpl,
      &GramPackTileImpl,    &GramPresentBitsImpl,
      &GramCorrRowImpl,     &GramDivRowImpl, "scalar"};
  return &fns;
}

}  // namespace cdi::stats
