// Generic Gram microkernel bodies over the cdi::simd::V4 wrapper —
// included by exactly one translation unit per backend (the scalar TU
// defines CDI_SIMD_FORCE_SCALAR first; the SIMD TU is compiled with
// -mavx2 -mfma on x86-64 and picks up the NEON backend on aarch64).
// Everything here has internal linkage; the including TU wraps the
// functions in an exported GramKernelFns.
//
// Determinism: each output entry owns one accumulator lane, fed one
// fused multiply-add per row in ascending row order. The unroll depth
// and vector grouping only decide how many *independent* entries advance
// per instruction, so they never change results.
#ifndef CDI_STATS_GRAM_KERNEL_IMPL_H_
#define CDI_STATS_GRAM_KERNEL_IMPL_H_

#include <cstddef>

#include "common/simd.h"
#include "stats/gram_kernel.h"

namespace cdi::stats {
namespace {

namespace sv = cdi::simd;

/// local[x][y] += sum_i a[i][x] * b[i][y] over tile-contiguous panels.
/// x is unrolled by 4; y rides in two V4 halves.
void GramTileImpl(const double* a, const double* b, std::size_t count,
                  double* local) {
  for (std::size_t xg = 0; xg < kGramTile; xg += 4) {
    sv::V4 acc[4][2];
    for (std::size_t u = 0; u < 4; ++u) {
      acc[u][0] = sv::Load(local + (xg + u) * kGramTile);
      acc[u][1] = sv::Load(local + (xg + u) * kGramTile + 4);
    }
    for (std::size_t i = 0; i < count; ++i) {
      sv::Prefetch(b + (i + 16) * kGramTile);
      sv::Prefetch(a + (i + 16) * kGramTile);
      const sv::V4 b0 = sv::Load(b + i * kGramTile);
      const sv::V4 b1 = sv::Load(b + i * kGramTile + 4);
      for (std::size_t u = 0; u < 4; ++u) {
        const sv::V4 av = sv::Broadcast(a[i * kGramTile + xg + u]);
        acc[u][0] = sv::MulAdd(av, b0, acc[u][0]);
        acc[u][1] = sv::MulAdd(av, b1, acc[u][1]);
      }
    }
    for (std::size_t u = 0; u < 4; ++u) {
      sv::Store(local + (xg + u) * kGramTile, acc[u][0]);
      sv::Store(local + (xg + u) * kGramTile + 4, acc[u][1]);
    }
  }
}

/// Two B tiles against one A tile, sharing the A broadcasts. x is
/// unrolled by 2 so the 8 accumulators + 4 B rows + 1 broadcast fit a
/// 16-register file.
void GramTile2Impl(const double* a, const double* b0, const double* b1,
                   std::size_t count, double* local0, double* local1) {
  for (std::size_t xg = 0; xg < kGramTile; xg += 2) {
    sv::V4 acc[2][2][2];  // [x-unroll][which B tile][y half]
    for (std::size_t u = 0; u < 2; ++u) {
      acc[u][0][0] = sv::Load(local0 + (xg + u) * kGramTile);
      acc[u][0][1] = sv::Load(local0 + (xg + u) * kGramTile + 4);
      acc[u][1][0] = sv::Load(local1 + (xg + u) * kGramTile);
      acc[u][1][1] = sv::Load(local1 + (xg + u) * kGramTile + 4);
    }
    for (std::size_t i = 0; i < count; ++i) {
      sv::Prefetch(b0 + (i + 16) * kGramTile);
      sv::Prefetch(b1 + (i + 16) * kGramTile);
      sv::Prefetch(a + (i + 16) * kGramTile);
      const sv::V4 p0 = sv::Load(b0 + i * kGramTile);
      const sv::V4 p1 = sv::Load(b0 + i * kGramTile + 4);
      const sv::V4 q0 = sv::Load(b1 + i * kGramTile);
      const sv::V4 q1 = sv::Load(b1 + i * kGramTile + 4);
      for (std::size_t u = 0; u < 2; ++u) {
        const sv::V4 av = sv::Broadcast(a[i * kGramTile + xg + u]);
        acc[u][0][0] = sv::MulAdd(av, p0, acc[u][0][0]);
        acc[u][0][1] = sv::MulAdd(av, p1, acc[u][0][1]);
        acc[u][1][0] = sv::MulAdd(av, q0, acc[u][1][0]);
        acc[u][1][1] = sv::MulAdd(av, q1, acc[u][1][1]);
      }
    }
    for (std::size_t u = 0; u < 2; ++u) {
      sv::Store(local0 + (xg + u) * kGramTile, acc[u][0][0]);
      sv::Store(local0 + (xg + u) * kGramTile + 4, acc[u][0][1]);
      sv::Store(local1 + (xg + u) * kGramTile, acc[u][1][0]);
      sv::Store(local1 + (xg + u) * kGramTile + 4, acc[u][1][1]);
    }
  }
}

/// local[j] += sum_i a[i] * b[i][j] for j < k4 (k4 % 4 == 0), processed
/// in column blocks of up to 32 so the accumulators stay in registers.
void GramCrossImpl(const double* a, const double* b, std::size_t count,
                   std::size_t k4, double* local) {
  for (std::size_t j0 = 0; j0 < k4; j0 += 32) {
    const std::size_t vecs = (k4 - j0 < 32 ? k4 - j0 : 32) / 4;
    sv::V4 acc[8];
    for (std::size_t v = 0; v < vecs; ++v) {
      acc[v] = sv::Load(local + j0 + v * 4);
    }
    for (std::size_t i = 0; i < count; ++i) {
      const sv::V4 av = sv::Broadcast(a[i]);
      const double* row = b + i * k4 + j0;
      for (std::size_t v = 0; v < vecs; ++v) {
        acc[v] = sv::MulAdd(av, sv::Load(row + v * 4), acc[v]);
      }
    }
    for (std::size_t v = 0; v < vecs; ++v) {
      sv::Store(local + j0 + v * 4, acc[v]);
    }
  }
}

/// dst[i * kGramTile + c] = cols[c][i] - means[c]: the scalar pack. The
/// per-element subtraction is the only arithmetic, so any traversal
/// order packs the same bits; vector backends override this with
/// in-register transposes.
void GramPackTileImpl(const double* const* cols, const double* means,
                      std::size_t count, double* dst) {
  for (std::size_t c = 0; c < kGramTile; ++c) {
    const double* col = cols[c];
    const double m = means[c];
    double* out = dst + c;
    for (std::size_t i = 0; i < count; ++i) {
      out[i * kGramTile] = col[i] - m;
    }
  }
}

/// Present (non-NaN) bits, LSB-first, count <= 64. Four independent
/// partial words break the OR dependency chain; the merge order is
/// irrelevant because the bit positions are disjoint.
std::uint64_t GramPresentBitsImpl(const double* col, std::size_t count) {
  std::uint64_t b0 = 0, b1 = 0, b2 = 0, b3 = 0;
  std::size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    b0 |= static_cast<std::uint64_t>(col[i] == col[i]) << i;
    b1 |= static_cast<std::uint64_t>(col[i + 1] == col[i + 1]) << (i + 1);
    b2 |= static_cast<std::uint64_t>(col[i + 2] == col[i + 2]) << (i + 2);
    b3 |= static_cast<std::uint64_t>(col[i + 3] == col[i + 3]) << (i + 3);
  }
  for (; i < count; ++i) {
    b0 |= static_cast<std::uint64_t>(col[i] == col[i]) << i;
  }
  return (b0 | b1) | (b2 | b3);
}

/// One strict-upper correlation row (see GramKernelFns::corr_row). Every
/// arithmetic op is correctly-rounded IEEE and the clamp/guard are exact
/// lane selections, so vector lanes and the scalar tail emit the same
/// bits the plain scalar loop does.
void GramCorrRowImpl(const double* s, const double* var, double va,
                     double denom, std::size_t n, double* out) {
  if (!(va > 0)) {
    for (std::size_t j = 0; j < n; ++j) out[j] = 0.0;
    return;
  }
  const sv::V4 vden = sv::Broadcast(denom);
  const sv::V4 vva = sv::Broadcast(va);
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const sv::V4 vv = sv::Load(var + j);
    sv::V4 r = sv::Div(sv::Div(sv::Load(s + j), vden),
                       sv::Sqrt(sv::Mul(vva, vv)));
    sv::Store(out + j, sv::ZeroUnlessPos(vv, sv::ClampPm1(r)));
  }
  for (; j < n; ++j) {
    const double vb = var[j];
    double r = 0.0;
    if (vb > 0) {
      r = (s[j] / denom) / std::sqrt(va * vb);
      r = r < -1.0 ? -1.0 : (1.0 < r ? 1.0 : r);
    }
    out[j] = r;
  }
}

/// out[j] = s[j] / denom (see GramKernelFns::div_row).
void GramDivRowImpl(const double* s, double denom, std::size_t n,
                    double* out) {
  const sv::V4 vden = sv::Broadcast(denom);
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    sv::Store(out + j, sv::Div(sv::Load(s + j), vden));
  }
  for (; j < n; ++j) out[j] = s[j] / denom;
}

}  // namespace
}  // namespace cdi::stats

#endif  // CDI_STATS_GRAM_KERNEL_IMPL_H_
