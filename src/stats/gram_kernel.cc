// Gram kernel dispatch. Kernel bodies live in per-backend translation
// units so each can be compiled with its own ISA flags while this TU —
// and everything else — stays at the baseline target; selection happens
// once at first use from (a) what was compiled in, (b) what the CPU
// reports, (c) an optional CDI_SIMD env cap for A/B runs. All kernels
// are bitwise interchangeable (see gram_kernel.h), so the choice is
// purely about speed.
#include "stats/gram_kernel.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace cdi::stats {

const GramKernelFns* CdiGramKernelScalar();
#if defined(CDI_HAVE_SIMD_KERNEL)
const GramKernelFns* CdiGramKernelSimd();
#endif
#if defined(CDI_HAVE_AVX512_KERNEL)
const GramKernelFns* CdiGramKernelAvx512();
#endif

namespace {

bool CpuHasSimd() {
#if defined(__aarch64__)
  return true;  // NEON + FMA are architectural
#elif defined(__x86_64__) && defined(__GNUC__)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

bool CpuHasAvx512() {
#if defined(__x86_64__) && defined(__GNUC__)
  return __builtin_cpu_supports("avx512f");
#else
  return false;
#endif
}

const GramKernelFns* SimdKernelOrNull() {
#if defined(CDI_HAVE_SIMD_KERNEL)
  if (CpuHasSimd()) return CdiGramKernelSimd();
#endif
  return nullptr;
}

const GramKernelFns* Avx512KernelOrNull() {
#if defined(CDI_HAVE_AVX512_KERNEL)
  if (CpuHasAvx512()) return CdiGramKernelAvx512();
#endif
  return nullptr;
}

const GramKernelFns* Choose() {
  if (const char* env = std::getenv("CDI_SIMD")) {
    if (const GramKernelFns* k = GramKernelByName(env)) return k;
    // Unknown or unavailable name: fall through to auto-selection.
  }
  if (const GramKernelFns* k = Avx512KernelOrNull()) return k;
  if (const GramKernelFns* k = SimdKernelOrNull()) return k;
  return CdiGramKernelScalar();
}

std::atomic<const GramKernelFns*> g_override{nullptr};

}  // namespace

const GramKernelFns& ActiveGramKernel() {
  if (const GramKernelFns* k = g_override.load(std::memory_order_acquire)) {
    return *k;
  }
  static const GramKernelFns* const chosen = Choose();
  return *chosen;
}

const GramKernelFns* GramKernelByName(std::string_view name) {
  if (name == "scalar") return CdiGramKernelScalar();
  if (const GramKernelFns* k = SimdKernelOrNull()) {
    if (name == k->name || name == "simd") return k;
  }
  if (name == "avx512") return Avx512KernelOrNull();
  return nullptr;
}

std::vector<const GramKernelFns*> AvailableGramKernels() {
  std::vector<const GramKernelFns*> out{CdiGramKernelScalar()};
  if (const GramKernelFns* k = SimdKernelOrNull()) out.push_back(k);
  if (const GramKernelFns* k = Avx512KernelOrNull()) out.push_back(k);
  return out;
}

void SetGramKernelForTesting(const GramKernelFns* kernel) {
  g_override.store(kernel, std::memory_order_release);
}

}  // namespace cdi::stats
