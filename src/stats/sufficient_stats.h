#ifndef CDI_STATS_SUFFICIENT_STATS_H_
#define CDI_STATS_SUFFICIENT_STATS_H_

#include <cstdint>
#include <vector>

#include "common/span.h"
#include "common/status.h"
#include "stats/correlation.h"
#include "stats/matrix.h"

namespace cdi {
class ThreadPool;
}  // namespace cdi

namespace cdi::stats {

class FactorCache;

/// Shared sufficient statistics of a numeric dataset: the complete-row
/// mask, per-column weighted means and the centered weighted
/// cross-product matrix S(a, b) = sum_r w_r (x_a - m_a)(x_b - m_b) over
/// listwise-complete rows. Once S is known, every Gaussian stage of the
/// pipeline — Fisher-z CI tests, VARCLUS correlations, GES BIC local
/// scores, OLS effect estimates — is small linear algebra on submatrices
/// of S; nothing downstream re-reads the raw rows.
///
/// The kernel is cache-blocked (tiled syrk-style over column pairs),
/// parallelized in chunked tile-pair tasks, and vectorized through the
/// runtime-dispatched Gram microkernels (stats/gram_kernel.h: scalar
/// std::fma, AVX2/NEON, AVX-512), with a *deterministic reduction*: each
/// matrix entry is accumulated by exactly one slab, with one fused
/// multiply-add per complete row in ascending row order. Results are
/// therefore bitwise identical for any thread count, for any SIMD
/// backend (FMA is correctly rounded on all of them), and to the scalar
/// reference kernel — only the memory access order and the number of
/// independent entries advanced per instruction change.
///
/// The complete-row mask is built word-level: each column's NaN positions
/// are packed into 64-bit words (branchlessly, or taken from a
/// caller-provided null bitmap — see NumericDataset::null_words) and
/// combined with bitwise AND, replacing the branchy per-row
/// isnan-over-all-columns prescan.
///
/// AppendColumns extends the statistics with `k` new columns in
/// O(n * k * (p + k)) when the new columns do not shrink the
/// complete-row set (the common case: the knowledge extractor joins
/// fully-aligned attributes); the result is bitwise identical to a full
/// recompute, because per-entry accumulation order does not depend on
/// which other entries are computed. When a new column introduces NaNs in
/// previously-complete rows, every entry's row set changes and the
/// statistics are recomputed in full (still through the blocked kernel).
class SufficientStats {
 public:
  SufficientStats() = default;

  /// Builds the statistics over `data`. NaN cells mark missing values;
  /// rows with any missing value are excluded (listwise deletion).
  /// `pool` parallelizes the kernel (null = serial); the result is
  /// bitwise independent of the pool.
  ///
  /// Fails like the legacy CovarianceMatrix: no variables, ragged
  /// columns, weight size mismatch, fewer than 2 complete rows, or
  /// weights summing to zero.
  static Result<SufficientStats> Compute(const NumericDataset& data,
                                         ThreadPool* pool = nullptr);

  std::size_t num_vars() const { return columns_.size(); }
  /// Raw row count (before listwise deletion).
  std::size_t num_rows() const { return num_rows_; }
  /// Complete (listwise-retained) row count — popcount of the mask.
  std::size_t complete_rows() const { return complete_rows_; }
  /// Sum of weights over complete rows (= complete_rows() unweighted).
  double weight_sum() const { return wsum_; }
  bool weighted() const { return !weights_.empty(); }

  /// Weighted column means over complete rows.
  const std::vector<double>& means() const { return means_; }

  /// Complete-row bitmap (bit r set = row r complete), LSB-first within
  /// each 64-bit word.
  const std::vector<std::uint64_t>& complete_mask() const { return mask_; }

  /// Centered weighted cross-product matrix S (p x p, symmetric).
  const Matrix& cross_products() const { return sxx_; }

  /// Sample covariance: S / max(1, weight_sum() - 1). Entrywise equal to
  /// the legacy CovarianceMatrix.
  Matrix Covariance() const;

  /// Sample correlation derived from Covariance(); zero-variance columns
  /// correlate 0 with everything (1 on the diagonal).
  Matrix Correlation() const;

  /// Extends the statistics with `cols` (each of num_rows() rows).
  /// Incremental — O(n * k * (p + k)) — when the new columns leave the
  /// complete-row set unchanged, full recompute otherwise; either way the
  /// result is bitwise identical to Compute() over all p + k columns.
  /// On error the object is unchanged.
  Status AppendColumns(const std::vector<DoubleSpan>& cols,
                       ThreadPool* pool = nullptr);

  /// Extends the statistics with `new_rows` rows appended to every
  /// column. `cols` are full-length spans over the *concatenated*
  /// columns (old rows first, then the new ones); the old prefix must
  /// hold exactly the values the statistics were computed over. Passing
  /// fresh spans is deliberate: appending to a table reallocates its
  /// buffers, so the caller re-borrows views over the grown storage and
  /// this object drops its now-dangling spans. For weighted statistics
  /// `weights` must likewise be the full concatenated weight vector;
  /// pass empty for unweighted statistics.
  ///
  /// Contract, mirroring AppendColumns: the result is bitwise identical
  /// to Compute() over the concatenated dataset, at any thread count. A
  /// true rank-k update of the *centered* Gram cannot meet that bar —
  /// appended rows shift every column mean, which changes every entry's
  /// floating-point accumulation sequence — so the per-column
  /// accumulators (complete-row mask, weight sum, pre-division column
  /// sums, hence means) are continued in O(new_rows * p) exactly where
  /// Compute's sequential scans would resume, and the Gram is re-swept
  /// through the blocked kernel over the full row set. When the appended
  /// rows contain no complete row the means cannot move and the sweep is
  /// skipped: the whole append is O(new_rows * p). On error the object
  /// is unchanged.
  Status AppendRows(const std::vector<DoubleSpan>& cols, std::size_t new_rows,
                    const std::vector<double>& weights = {},
                    ThreadPool* pool = nullptr);

  /// Whether the last AppendColumns/AppendRows took the incremental path
  /// (for AppendRows: the Gram sweep was skipped — no new complete rows).
  /// Benchmark/test introspection.
  bool last_append_incremental() const { return last_append_incremental_; }

  /// Gaussian BIC of regressing `target` on `parents`, computed from S by
  /// Cholesky on the parents' submatrix (no pass over raw rows):
  /// n log(2 pi sigma^2) + n + log(n) (|parents| + 2), sigma^2 = rss / n
  /// with n = complete_rows(). Matches GaussianBicLocalScore semantics;
  /// for empty parent sets the value is bitwise identical.
  Result<double> GaussianBicLocal(
      std::size_t target, const std::vector<std::size_t>& parents) const;

  /// Batched variant: the parents' Cholesky factor comes from `fcache`
  /// (which must be built over this object's cross_products() with ridge
  /// 1e-9 — anything else falls back to the unbatched path), so GES
  /// rescoring target/parent combinations that share or extend parent
  /// sets skips the re-factorization. Values are bitwise identical to the
  /// two-argument overload, including the stronger-ridge retry on
  /// degenerate parent sets.
  Result<double> GaussianBicLocal(std::size_t target,
                                  const std::vector<std::size_t>& parents,
                                  FactorCache* fcache) const;

  /// OLS coefficients (intercept first, then one slope per entry of `xs`,
  /// in order) of column `y` on columns `xs`, solved from the normal
  /// equations in centered form: slopes from S[xs, xs] beta = S[xs, y]
  /// (tiny ridge, as LeastSquares), intercept from the means.
  Result<std::vector<double>> OlsCoefficients(
      std::size_t y, const std::vector<std::size_t>& xs) const;

 private:
  std::vector<DoubleSpan> columns_;
  std::vector<double> weights_;
  std::vector<std::uint64_t> mask_;
  std::size_t num_rows_ = 0;
  std::size_t complete_rows_ = 0;
  double wsum_ = 0.0;
  /// Pre-division weighted column sums over complete rows — the running
  /// accumulators AppendRows continues; means_ = col_sums_ / wsum_.
  std::vector<double> col_sums_;
  std::vector<double> means_;
  Matrix sxx_;
  bool last_append_incremental_ = false;
};

/// Straight-line scalar covariance kernel (the pre-blocking
/// implementation): listwise deletion via a per-row isnan scan, then a
/// row-interleaved O(n p^2) accumulation using one std::fma per entry
/// per row — the same per-entry operation sequence as every blocked
/// backend. Kept as the bitwise reference for the blocked kernel's
/// tests and as the "before" side of the benchmark sweep; production
/// callers use SufficientStats.
Result<Matrix> ReferenceCovarianceMatrix(const NumericDataset& data);

}  // namespace cdi::stats

#endif  // CDI_STATS_SUFFICIENT_STATS_H_
