#include "stats/correlation.h"

#include <algorithm>
#include <cmath>

#include "stats/distributions.h"
#include "stats/linalg.h"
#include "stats/sufficient_stats.h"

namespace cdi::stats {

// CompleteRowCount is defined in sufficient_stats.cc alongside the mask
// machinery it shares with the blocked kernel.

Result<Matrix> CovarianceMatrix(const NumericDataset& data,
                                ThreadPool* pool) {
  CDI_ASSIGN_OR_RETURN(SufficientStats s, SufficientStats::Compute(data, pool));
  return s.Covariance();
}

Result<Matrix> CorrelationMatrix(const NumericDataset& data,
                                 ThreadPool* pool) {
  CDI_ASSIGN_OR_RETURN(SufficientStats s, SufficientStats::Compute(data, pool));
  return s.Correlation();
}

Result<double> PartialCorrelation(const Matrix& corr, std::size_t i,
                                  std::size_t j,
                                  const std::vector<std::size_t>& given) {
  if (i >= corr.rows() || j >= corr.rows() || i == j) {
    return Status::InvalidArgument("bad variable indices");
  }
  if (given.empty()) return corr(i, j);
  if (given.size() == 1) {
    // Closed form for a single conditioning variable.
    const std::size_t k = given[0];
    const double rij = corr(i, j);
    const double rik = corr(i, k);
    const double rjk = corr(j, k);
    const double den = std::sqrt((1 - rik * rik) * (1 - rjk * rjk));
    if (den <= 1e-12) return 0.0;
    return std::clamp((rij - rik * rjk) / den, -1.0, 1.0);
  }
  // General case via Cholesky of the submatrix ordered (given..., i, j):
  // with L the factor, the trailing 2x2 block [[a, 0], [b, c]] satisfies
  // Cov(i, j | given) = [[a^2, ab], [ab, b^2 + c^2]], so the partial
  // correlation is b / sqrt(b^2 + c^2). One factorization, no pivoting —
  // this is the per-query hot path of the cached CI engine.
  std::vector<std::size_t> idx(given);
  idx.push_back(i);
  idx.push_back(j);
  Matrix sub = corr.Submatrix(idx);
  // Tiny ridge guards against singular submatrices from deterministic
  // relationships.
  for (std::size_t d = 0; d < sub.rows(); ++d) sub(d, d) += 1e-10;
  auto chol = Cholesky(sub);
  if (chol.ok()) {
    const std::size_t m = sub.rows();
    const double b = (*chol)(m - 1, m - 2);
    const double c = (*chol)(m - 1, m - 1);
    const double den = std::sqrt(b * b + c * c);
    if (den <= 1e-12 || !std::isfinite(den)) return 0.0;
    return std::clamp(b / den, -1.0, 1.0);
  }
  // Non-SPD even with the ridge (severely collinear conditioning set):
  // fall back to the precision-matrix route, whose pivoting tolerates it.
  return PartialCorrelationPrecisionFallback(corr, i, j, given);
}

double PartialCorrelationPrecisionFallback(
    const Matrix& corr, std::size_t i, std::size_t j,
    const std::vector<std::size_t>& given) {
  std::vector<std::size_t> pidx = {i, j};
  pidx.insert(pidx.end(), given.begin(), given.end());
  Matrix psub = corr.Submatrix(pidx);
  for (std::size_t d = 0; d < psub.rows(); ++d) psub(d, d) += 1e-10;
  auto inv = Inverse(psub);
  if (!inv.ok()) return 0.0;  // treat a degenerate system as uncorrelated
  const Matrix& p = *inv;
  const double den = std::sqrt(p(0, 0) * p(1, 1));
  if (den <= 1e-12 || !std::isfinite(den)) return 0.0;
  return std::clamp(-p(0, 1) / den, -1.0, 1.0);
}

double FisherZPValue(double r, std::size_t n, std::size_t k) {
  if (n <= k + 3) return 1.0;
  // A degenerate estimate (NaN partial correlation from a zero-variance or
  // otherwise broken column) carries no evidence against independence.
  if (std::isnan(r)) return 1.0;
  // atanh diverges as |r| -> 1; clamp so exactly/near-collinear columns
  // yield a huge finite statistic (p ~ 0) instead of inf/NaN.
  constexpr double kMaxAbsR = 1.0 - 1e-12;
  r = std::clamp(r, -kMaxAbsR, kMaxAbsR);
  const double z = std::atanh(r);
  const double stat =
      std::sqrt(static_cast<double>(n - k) - 3.0) * std::fabs(z);
  return 2.0 * NormalSf(stat);
}

}  // namespace cdi::stats
