#ifndef CDI_STATS_DISTRIBUTIONS_H_
#define CDI_STATS_DISTRIBUTIONS_H_

namespace cdi::stats {

/// P(Z <= z) for standard normal Z.
double NormalCdf(double z);

/// P(Z > z) = 1 - NormalCdf(z), computed accurately in the tail.
double NormalSf(double z);

/// Inverse of NormalCdf (Acklam's rational approximation, |err| < 1.2e-9).
/// Requires 0 < p < 1.
double NormalQuantile(double p);

/// ln Gamma(x) for x > 0 (Lanczos).
double LogGamma(double x);

/// Regularized lower incomplete gamma P(a, x), a > 0, x >= 0.
double RegularizedGammaP(double a, double x);

/// Regularized upper incomplete gamma Q(a, x) = 1 - P(a, x).
double RegularizedGammaQ(double a, double x);

/// Chi-square CDF with k degrees of freedom.
double ChiSquareCdf(double x, double k);

/// Chi-square survival function (p-value of a chi-square statistic).
double ChiSquareSf(double x, double k);

/// Regularized incomplete beta I_x(a, b) via continued fraction.
double RegularizedIncompleteBeta(double a, double b, double x);

/// Student-t CDF with `dof` degrees of freedom.
double StudentTCdf(double t, double dof);

/// Two-sided Student-t p-value: P(|T| >= |t|).
double StudentTTwoSidedPValue(double t, double dof);

/// F-distribution survival function with d1, d2 degrees of freedom.
double FSf(double f, double d1, double d2);

}  // namespace cdi::stats

#endif  // CDI_STATS_DISTRIBUTIONS_H_
