// Vector Gram kernel: the V4 wrapper on its native backend. On x86-64
// this TU is compiled with -mavx2 -mfma (dispatch checks the CPU at
// runtime before selecting it); on aarch64 the NEON backend is
// architectural and needs no extra flags.
#include "stats/gram_kernel_impl.h"

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace cdi::stats {

#if defined(__AVX2__)
namespace {

// Centered 4x4 in-register transposes: subtraction is one IEEE op per
// element, identical to the scalar pack bit for bit; only the store
// pattern changes. The scalar tail handles count % 4.
void Avx2PackTile(const double* const* cols, const double* means,
                  std::size_t count, double* dst) {
  const std::size_t main = count & ~std::size_t{3};
  for (std::size_t cg = 0; cg < kGramTile; cg += 4) {
    const __m256d mm = _mm256_setr_pd(means[cg], means[cg + 1], means[cg + 2],
                                      means[cg + 3]);
    for (std::size_t i = 0; i < main; i += 4) {
      const __m256d c0 = _mm256_loadu_pd(cols[cg] + i);
      const __m256d c1 = _mm256_loadu_pd(cols[cg + 1] + i);
      const __m256d c2 = _mm256_loadu_pd(cols[cg + 2] + i);
      const __m256d c3 = _mm256_loadu_pd(cols[cg + 3] + i);
      const __m256d t0 = _mm256_unpacklo_pd(c0, c1);  // rows 0,2 of (c0,c1)
      const __m256d t1 = _mm256_unpackhi_pd(c0, c1);  // rows 1,3
      const __m256d t2 = _mm256_unpacklo_pd(c2, c3);
      const __m256d t3 = _mm256_unpackhi_pd(c2, c3);
      const __m256d r0 =
          _mm256_sub_pd(_mm256_permute2f128_pd(t0, t2, 0x20), mm);
      const __m256d r1 =
          _mm256_sub_pd(_mm256_permute2f128_pd(t1, t3, 0x20), mm);
      const __m256d r2 =
          _mm256_sub_pd(_mm256_permute2f128_pd(t0, t2, 0x31), mm);
      const __m256d r3 =
          _mm256_sub_pd(_mm256_permute2f128_pd(t1, t3, 0x31), mm);
      double* out = dst + i * kGramTile + cg;
      _mm256_storeu_pd(out, r0);
      _mm256_storeu_pd(out + kGramTile, r1);
      _mm256_storeu_pd(out + 2 * kGramTile, r2);
      _mm256_storeu_pd(out + 3 * kGramTile, r3);
    }
  }
  for (std::size_t i = main; i < count; ++i) {
    for (std::size_t c = 0; c < kGramTile; ++c) {
      dst[i * kGramTile + c] = cols[c][i] - means[c];
    }
  }
}

std::uint64_t Avx2PresentBits(const double* col, std::size_t count) {
  std::uint64_t bits = 0;
  std::size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const __m256d v = _mm256_loadu_pd(col + i);
    const int m =
        _mm256_movemask_pd(_mm256_cmp_pd(v, v, _CMP_EQ_OQ));
    bits |= static_cast<std::uint64_t>(m) << i;
  }
  for (; i < count; ++i) {
    bits |= static_cast<std::uint64_t>(col[i] == col[i]) << i;
  }
  return bits;
}

}  // namespace
#endif  // __AVX2__

const GramKernelFns* CdiGramKernelSimd() {
#if defined(__AVX2__)
  static const GramKernelFns fns = {
      &GramTileImpl,    &GramTile2Impl,  &GramCrossImpl,
      &Avx2PackTile,    &Avx2PresentBits,
      &GramCorrRowImpl, &GramDivRowImpl, cdi::simd::BackendName()};
#else
  static const GramKernelFns fns = {
      &GramTileImpl,        &GramTile2Impl,  &GramCrossImpl,
      &GramPackTileImpl,    &GramPresentBitsImpl,
      &GramCorrRowImpl,     &GramDivRowImpl, cdi::simd::BackendName()};
#endif
  return &fns;
}

}  // namespace cdi::stats
