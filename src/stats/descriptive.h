#ifndef CDI_STATS_DESCRIPTIVE_H_
#define CDI_STATS_DESCRIPTIVE_H_

#include <cstddef>
#include <vector>

#include "common/span.h"

namespace cdi::stats {

/// Descriptive statistics over numeric spans. Every function skips NaN
/// entries (the table layer encodes nulls as NaN), so callers can pass
/// Column::View() output directly — zero-copy for double columns — or any
/// std::vector<double> (which converts implicitly). Functions return NaN
/// when fewer valid values remain than the statistic needs.

double Mean(DoubleSpan x);

/// Unbiased (n-1) sample variance.
double Variance(DoubleSpan x);

double StdDev(DoubleSpan x);

double Min(DoubleSpan x);
double Max(DoubleSpan x);

double Median(DoubleSpan x);

/// Linear-interpolated quantile, q in [0, 1].
double Quantile(DoubleSpan x, double q);

/// Sample skewness (Fisher-Pearson, bias-unadjusted).
double Skewness(DoubleSpan x);

/// Excess kurtosis.
double ExcessKurtosis(DoubleSpan x);

/// Weighted mean; entries with NaN value or weight are skipped.
double WeightedMean(DoubleSpan x,
                    DoubleSpan w);

/// Number of non-NaN entries.
std::size_t ValidCount(DoubleSpan x);

/// Pearson correlation over pairwise-complete entries.
double PearsonCorrelation(DoubleSpan x,
                          DoubleSpan y);

/// Spearman rank correlation over pairwise-complete entries
/// (average ranks for ties).
double SpearmanCorrelation(DoubleSpan x,
                           DoubleSpan y);

/// (x - mean) / stddev; NaN entries stay NaN. A constant vector maps to all
/// zeros.
std::vector<double> Standardize(DoubleSpan x);

/// Z-score of each entry against the vector's own mean/stddev (NaN for NaN).
std::vector<double> ZScores(DoubleSpan x);

}  // namespace cdi::stats

#endif  // CDI_STATS_DESCRIPTIVE_H_
