#ifndef CDI_STATS_DESCRIPTIVE_H_
#define CDI_STATS_DESCRIPTIVE_H_

#include <cstddef>
#include <vector>

namespace cdi::stats {

/// Descriptive statistics over vectors of doubles. Every function skips NaN
/// entries (the table layer encodes nulls as NaN), so callers can pass
/// Column::ToDoubles() output directly. Functions return NaN when fewer
/// valid values remain than the statistic needs.

double Mean(const std::vector<double>& x);

/// Unbiased (n-1) sample variance.
double Variance(const std::vector<double>& x);

double StdDev(const std::vector<double>& x);

double Min(const std::vector<double>& x);
double Max(const std::vector<double>& x);

double Median(const std::vector<double>& x);

/// Linear-interpolated quantile, q in [0, 1].
double Quantile(const std::vector<double>& x, double q);

/// Sample skewness (Fisher-Pearson, bias-unadjusted).
double Skewness(const std::vector<double>& x);

/// Excess kurtosis.
double ExcessKurtosis(const std::vector<double>& x);

/// Weighted mean; entries with NaN value or weight are skipped.
double WeightedMean(const std::vector<double>& x,
                    const std::vector<double>& w);

/// Number of non-NaN entries.
std::size_t ValidCount(const std::vector<double>& x);

/// Pearson correlation over pairwise-complete entries.
double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y);

/// Spearman rank correlation over pairwise-complete entries
/// (average ranks for ties).
double SpearmanCorrelation(const std::vector<double>& x,
                           const std::vector<double>& y);

/// (x - mean) / stddev; NaN entries stay NaN. A constant vector maps to all
/// zeros.
std::vector<double> Standardize(const std::vector<double>& x);

/// Z-score of each entry against the vector's own mean/stddev (NaN for NaN).
std::vector<double> ZScores(const std::vector<double>& x);

}  // namespace cdi::stats

#endif  // CDI_STATS_DESCRIPTIVE_H_
