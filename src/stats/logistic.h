#ifndef CDI_STATS_LOGISTIC_H_
#define CDI_STATS_LOGISTIC_H_

#include <vector>

#include "common/span.h"
#include "common/status.h"

namespace cdi::stats {

/// Fitted logistic-regression model.
struct LogisticFit {
  /// Intercept followed by one coefficient per predictor.
  std::vector<double> coefficients;
  bool converged = false;
  int iterations = 0;
  /// In-sample log-likelihood.
  double log_likelihood = 0.0;

  /// Predicted probability for one feature vector (without intercept term).
  double Predict(const std::vector<double>& x) const;
};

/// Fits P(y=1 | x) = sigmoid(b0 + b.x) via iteratively reweighted least
/// squares with an L2 ridge for separation robustness. `y` entries must be
/// 0 or 1; rows with NaN anywhere are dropped. This powers the Data
/// Organizer's missingness propensity model (IPW).
Result<LogisticFit> FitLogistic(const std::vector<DoubleSpan>& xs,
                                DoubleSpan y,
                                int max_iterations = 50, double ridge = 1e-6);

}  // namespace cdi::stats

#endif  // CDI_STATS_LOGISTIC_H_
