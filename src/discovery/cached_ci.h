#ifndef CDI_DISCOVERY_CACHED_CI_H_
#define CDI_DISCOVERY_CACHED_CI_H_

#include <array>
#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "discovery/ci_test.h"
#include "stats/correlation.h"

namespace cdi::discovery {

/// Memoizing decorator around any CiTest.
///
/// Every (x, y, S) query is canonicalized — the pair ordered, the
/// conditioning set sorted — before lookup, which is sound because
/// "X ⟂ Y | S" is symmetric in X and Y and invariant to the order of S.
/// Both the p-value and the strength are cached under the same key, so a
/// PValue query warms the Strength cache's key slot and vice versa.
///
/// Thread safety: the cache is sharded, each shard behind its own mutex,
/// and the wrapped test is only required to be safe for concurrent reads
/// (every CiTest is). Two threads racing on the same uncached key may
/// both evaluate the base test; they compute the same deterministic value,
/// so the cache content — and therefore every answer — is independent of
/// thread count and interleaving.
///
/// `calls` counts *queries* (hits and misses alike), matching the serial
/// uncached accounting that PC/FCI report as `ci_tests`; the wrapped
/// test's own `calls` counts actual evaluations (misses).
class CachedCiTest : public CiTest {
 public:
  /// Borrows `base`, which must outlive this object.
  explicit CachedCiTest(const CiTest* base) : base_(base) {}

  /// Takes ownership of `base`.
  explicit CachedCiTest(std::unique_ptr<CiTest> base)
      : owned_(std::move(base)), base_(owned_.get()) {}

  /// Convenience: a Fisher-z test over `data` (the correlation matrix is
  /// the shared sufficient statistic, computed once here) wrapped in a
  /// cache. `pool` parallelizes the statistics pass
  /// (bitwise-deterministic; null = serial).
  static Result<std::unique_ptr<CachedCiTest>> ForGaussian(
      const stats::NumericDataset& data, ThreadPool* pool = nullptr);

  /// Same, from an already-computed sufficient-statistics instance — no
  /// pass over the raw rows.
  static Result<std::unique_ptr<CachedCiTest>> ForGaussian(
      const stats::SufficientStats& stats);

  std::size_t num_vars() const override { return base_->num_vars(); }
  double PValue(std::size_t x, std::size_t y,
                const std::vector<std::size_t>& s) const override;
  double Strength(std::size_t x, std::size_t y,
                  const std::vector<std::size_t>& s) const override;

  /// Forwarded so the wrapped test's per-level hygiene still runs when PC
  /// talks to the cache instead of the test directly.
  void OnSkeletonLevel(std::size_t level) const override {
    base_->OnSkeletonLevel(level);
  }

  const CiTest& base() const { return *base_; }
  std::size_t cache_hits() const { return hits_.load(); }
  std::size_t cache_misses() const { return misses_.load(); }

 private:
  struct Entry {
    double p = 0.0;
    double strength = 0.0;
    bool has_p = false;
    bool has_strength = false;
  };
  struct Shard {
    std::mutex mu;
    std::unordered_map<std::string, Entry> map;
  };

  /// Writes the canonical byte key — (min, max, sorted S) as raw 32-bit
  /// values — into `key`. Takes a caller-owned buffer (in practice a
  /// thread-local one) so the hit path performs no heap allocation: keys
  /// with |S| >= 2 exceed std::string's small-buffer capacity, and the
  /// query rate makes a fresh string per lookup measurable.
  static void EncodeKey(std::size_t x, std::size_t y,
                        const std::vector<std::size_t>& s, std::string* key);
  Shard& ShardFor(const std::string& key) const;

  static constexpr std::size_t kNumShards = 16;
  std::unique_ptr<CiTest> owned_;
  const CiTest* base_;
  mutable std::array<Shard, kNumShards> shards_;
  mutable std::atomic<std::size_t> hits_{0};
  mutable std::atomic<std::size_t> misses_{0};
};

}  // namespace cdi::discovery

#endif  // CDI_DISCOVERY_CACHED_CI_H_
