#ifndef CDI_DISCOVERY_BINNED_CI_H_
#define CDI_DISCOVERY_BINNED_CI_H_

#include <memory>
#include <vector>

#include "common/span.h"
#include "discovery/ci_test.h"

namespace cdi::discovery {

/// Nonparametric conditional-independence test: quantile-bins every
/// variable into `bins` levels and runs a (stratified) chi-square test.
/// Unlike Fisher-z it detects non-monotone relations (e.g. y = x^2) — the
/// paper's "relations not present in the data" for linear methods — at the
/// cost of statistical power and conditioning-set capacity (each
/// conditioning variable multiplies the stratum count by `bins`).
///
/// Plugging this into PC gives a nonlinear-capable constraint-based
/// discovery algorithm, one of the hybrid extensions §3.3 anticipates.
class BinnedChiSquareTest : public CiTest {
 public:
  /// Bins each column of `data` (NaN -> missing). `bins` in [2, 8].
  static Result<std::unique_ptr<BinnedChiSquareTest>> Create(
      const std::vector<DoubleSpan>& data, int bins = 3);

  std::size_t num_vars() const override { return codes_.size(); }

  double PValue(std::size_t x, std::size_t y,
                const std::vector<std::size_t>& s) const override;

  /// Cramer's V (stratified average when conditioning).
  double Strength(std::size_t x, std::size_t y,
                  const std::vector<std::size_t>& s) const override;

 private:
  explicit BinnedChiSquareTest(std::vector<std::vector<int>> codes)
      : codes_(std::move(codes)) {}

  std::vector<std::vector<int>> codes_;
};

}  // namespace cdi::discovery

#endif  // CDI_DISCOVERY_BINNED_CI_H_
