#include "discovery/discovery.h"

#include "common/thread_pool.h"
#include "discovery/cached_ci.h"
#include "discovery/ci_test.h"
#include "discovery/fci.h"
#include "discovery/pc.h"

namespace cdi::discovery {

namespace {

/// Gaussian CI test for the constraint-based baselines, optionally behind
/// the memoizing cache. The sufficient-statistics pass runs on a transient
/// pool sized by options.num_threads (deterministic: same bits at any
/// thread count).
Result<std::unique_ptr<CiTest>> MakeGaussianTest(
    const std::vector<DoubleSpan>& data,
    const DiscoveryOptions& options) {
  stats::NumericDataset ds;
  ds.columns = data;
  std::unique_ptr<ThreadPool> pool;
  if (options.num_threads > 1) {
    pool = std::make_unique<ThreadPool>(options.num_threads);
  }
  if (options.use_ci_cache) {
    CDI_ASSIGN_OR_RETURN(auto cached,
                         CachedCiTest::ForGaussian(ds, pool.get()));
    return std::unique_ptr<CiTest>(std::move(cached));
  }
  CDI_ASSIGN_OR_RETURN(auto fisher, FisherZTest::Create(ds, pool.get()));
  return std::unique_ptr<CiTest>(std::move(fisher));
}

}  // namespace

const char* AlgorithmName(Algorithm a) {
  switch (a) {
    case Algorithm::kPc:
      return "PC";
    case Algorithm::kFci:
      return "FCI";
    case Algorithm::kGes:
      return "GES";
    case Algorithm::kLingam:
      return "LiNGAM";
  }
  return "?";
}

Result<DiscoverySummary> RunDiscovery(
    const std::vector<DoubleSpan>& data,
    const std::vector<std::string>& names, Algorithm algorithm,
    const DiscoveryOptions& options) {
  DiscoverySummary out;
  out.algorithm = algorithm;
  switch (algorithm) {
    case Algorithm::kPc: {
      CDI_ASSIGN_OR_RETURN(auto test, MakeGaussianTest(data, options));
      PcOptions pc;
      pc.alpha = options.alpha;
      pc.max_cond_size = options.max_cond_size;
      pc.num_threads = options.num_threads;
      if (options.warm_start) {
        pc.warm_start = true;
        pc.warm_edges.assign(options.warm_edges.begin(),
                             options.warm_edges.end());
      }
      CDI_ASSIGN_OR_RETURN(PcResult r, RunPc(*test, names, pc));
      out.claims = r.graph.ToDirectedClaims();
      out.definite = r.graph.DirectedEdges();
      out.warm_seed = out.claims;  // skeleton adjacencies, both directions
      out.ci_tests = r.ci_tests;
      return out;
    }
    case Algorithm::kFci: {
      CDI_ASSIGN_OR_RETURN(auto test, MakeGaussianTest(data, options));
      FciOptions fci;
      fci.alpha = options.alpha;
      fci.max_cond_size = options.max_cond_size;
      fci.num_threads = options.num_threads;
      CDI_ASSIGN_OR_RETURN(FciResult r, RunFci(*test, names, fci));
      out.claims = r.graph.ToDirectedClaims();
      for (const auto& [u, v] : r.graph.EdgePairs()) {
        auto mu = r.graph.MarkAt(u, v, u);
        auto mv = r.graph.MarkAt(u, v, v);
        if (mu.ok() && mv.ok() && *mu == graph::EndMark::kTail &&
            *mv == graph::EndMark::kArrow) {
          out.definite.emplace_back(u, v);
        }
        if (mu.ok() && mv.ok() && *mv == graph::EndMark::kTail &&
            *mu == graph::EndMark::kArrow) {
          out.definite.emplace_back(v, u);
        }
      }
      out.ci_tests = r.ci_tests;
      return out;
    }
    case Algorithm::kGes: {
      GesOptions ges = options.ges;
      ges.num_threads = options.num_threads;
      if (options.warm_start) ges.seed_edges = options.warm_edges;
      CDI_ASSIGN_OR_RETURN(GesResult r, RunGes(data, names, ges));
      out.claims = r.cpdag.ToDirectedClaims();
      out.definite = r.cpdag.DirectedEdges();
      out.warm_seed = r.dag.Edges();  // the search-state DAG, not the CPDAG
      return out;
    }
    case Algorithm::kLingam: {
      CDI_ASSIGN_OR_RETURN(LingamResult r,
                           RunDirectLingam(data, names, options.lingam));
      out.claims = r.dag.Edges();
      out.definite = r.dag.Edges();
      return out;
    }
  }
  return Status::InvalidArgument("unknown algorithm");
}

}  // namespace cdi::discovery
