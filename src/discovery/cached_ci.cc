#include "discovery/cached_ci.h"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <functional>
#include <utility>

namespace cdi::discovery {

Result<std::unique_ptr<CachedCiTest>> CachedCiTest::ForGaussian(
    const stats::NumericDataset& data, ThreadPool* pool) {
  CDI_ASSIGN_OR_RETURN(std::unique_ptr<FisherZTest> base,
                       FisherZTest::Create(data, pool));
  return std::make_unique<CachedCiTest>(std::unique_ptr<CiTest>(
      std::move(base)));
}

Result<std::unique_ptr<CachedCiTest>> CachedCiTest::ForGaussian(
    const stats::SufficientStats& stats) {
  CDI_ASSIGN_OR_RETURN(std::unique_ptr<FisherZTest> base,
                       FisherZTest::Create(stats));
  return std::make_unique<CachedCiTest>(std::unique_ptr<CiTest>(
      std::move(base)));
}

void CachedCiTest::EncodeKey(std::size_t x, std::size_t y,
                             const std::vector<std::size_t>& s,
                             std::string* key) {
  if (x > y) std::swap(x, y);
  // Encode on the stack for typical conditioning-set sizes: this runs once
  // per CI query, and a heap-backed scratch vector would dominate the cost
  // of a cache hit.
  constexpr std::size_t kStackIds = 32;
  std::uint32_t stack_ids[kStackIds];
  std::vector<std::uint32_t> heap_ids;
  const std::size_t count = s.size() + 2;
  std::uint32_t* ids = stack_ids;
  if (count > kStackIds) {
    heap_ids.resize(count);
    ids = heap_ids.data();
  }
  ids[0] = static_cast<std::uint32_t>(x);
  ids[1] = static_cast<std::uint32_t>(y);
  for (std::size_t i = 0; i < s.size(); ++i) {
    ids[2 + i] = static_cast<std::uint32_t>(s[i]);
  }
  std::sort(ids + 2, ids + count);
  key->assign(reinterpret_cast<const char*>(ids),
              count * sizeof(std::uint32_t));
}

CachedCiTest::Shard& CachedCiTest::ShardFor(const std::string& key) const {
  return shards_[std::hash<std::string>{}(key) % kNumShards];
}

double CachedCiTest::PValue(std::size_t x, std::size_t y,
                            const std::vector<std::size_t>& s) const {
  ++calls;
  thread_local std::string key;  // reused buffer: hit path stays alloc-free
  EncodeKey(x, y, s, &key);
  Shard& shard = ShardFor(key);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end() && it->second.has_p) {
      ++hits_;
      return it->second.p;
    }
  }
  ++misses_;
  // Evaluate outside the lock so concurrent misses don't serialize. The
  // base test may itself be a CachedCiTest and clobber the thread-local
  // buffer, so re-encode before the insert.
  const double p = base_->PValue(x, y, s);
  EncodeKey(x, y, s, &key);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    Entry& e = shard.map[key];
    e.p = p;
    e.has_p = true;
  }
  return p;
}

double CachedCiTest::Strength(std::size_t x, std::size_t y,
                              const std::vector<std::size_t>& s) const {
  thread_local std::string key;  // reused buffer: hit path stays alloc-free
  EncodeKey(x, y, s, &key);
  Shard& shard = ShardFor(key);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end() && it->second.has_strength) {
      ++hits_;
      return it->second.strength;
    }
  }
  ++misses_;
  const double strength = base_->Strength(x, y, s);
  EncodeKey(x, y, s, &key);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    Entry& e = shard.map[key];
    e.strength = strength;
    e.has_strength = true;
  }
  return strength;
}

}  // namespace cdi::discovery
