#ifndef CDI_DISCOVERY_LINGAM_H_
#define CDI_DISCOVERY_LINGAM_H_

#include <string>
#include <vector>

#include "common/span.h"
#include "common/status.h"
#include "graph/digraph.h"

namespace cdi::discovery {

struct LingamOptions {
  /// Edges with a coefficient t-test p-value above this are pruned.
  double prune_alpha = 0.01;
  /// Additionally prune standardized coefficients smaller than this.
  double min_abs_coefficient = 0.05;
};

struct LingamResult {
  graph::Digraph dag;
  /// Estimated causal order (variable indices, exogenous first).
  std::vector<std::size_t> causal_order;
  /// b[i][j] = estimated weight of edge j -> i (0 if pruned).
  std::vector<std::vector<double>> weights;
};

/// DirectLiNGAM (Shimizu et al. 2011): assumes a linear SEM with
/// non-Gaussian noise. Iteratively identifies the most exogenous variable
/// by the pairwise likelihood-ratio measure (differential entropy
/// approximated with Hyvarinen's maxentropy formula), regresses it out,
/// and finally prunes edges by OLS coefficient significance along the
/// recovered order. With Gaussian data the pairwise measures carry no
/// signal and the output degrades towards an empty graph — exactly the
/// failure mode Table 3 reports for LiNGAM on COVID-19.
Result<LingamResult> RunDirectLingam(
    const std::vector<DoubleSpan>& data,
    const std::vector<std::string>& names,
    const LingamOptions& options = LingamOptions());

}  // namespace cdi::discovery

#endif  // CDI_DISCOVERY_LINGAM_H_
