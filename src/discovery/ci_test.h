#ifndef CDI_DISCOVERY_CI_TEST_H_
#define CDI_DISCOVERY_CI_TEST_H_

#include <atomic>
#include <memory>
#include <set>
#include <vector>

#include "common/status.h"
#include "graph/digraph.h"
#include "stats/correlation.h"
#include "stats/factor_cache.h"
#include "stats/matrix.h"
#include "stats/sufficient_stats.h"

namespace cdi::discovery {

/// Interface for conditional-independence tests used by the constraint-based
/// discovery algorithms (PC, FCI) and CATER's pruning stage. Implementations
/// are deterministic, and PValue/Strength must be safe to call from several
/// threads at once (the parallel skeleton phases do exactly that).
class CiTest {
 public:
  virtual ~CiTest() = default;

  /// Number of variables the test knows about.
  virtual std::size_t num_vars() const = 0;

  /// Two-sided p-value of H0: X ⟂ Y | S.
  virtual double PValue(std::size_t x, std::size_t y,
                        const std::vector<std::size_t>& s) const = 0;

  /// Effect-size proxy for the dependence (|partial correlation| or
  /// equivalent); used for tie-breaking and cycle repair.
  virtual double Strength(std::size_t x, std::size_t y,
                          const std::vector<std::size_t>& s) const = 0;

  /// Decision at significance level `alpha`: independent iff p >= alpha.
  bool Independent(std::size_t x, std::size_t y,
                   const std::vector<std::size_t>& s, double alpha) const {
    return PValue(x, y, s) >= alpha;
  }

  /// Skeleton-phase hint: PC announces each conditioning-set level before
  /// issuing that level's queries. Purely an optimization hook — tests
  /// with per-level internal state (e.g. FisherZTest's factor cache)
  /// use it for hygiene; answers must not depend on whether it's called.
  virtual void OnSkeletonLevel(std::size_t level) const { (void)level; }

  /// Number of PValue evaluations performed (statistics/benchmarks).
  /// Atomic: evaluations may run concurrently.
  mutable std::atomic<std::size_t> calls{0};
};

/// Gaussian (Fisher-z) partial-correlation test. Precomputes the
/// correlation matrix over complete rows once. Queries run through the
/// batched CI engine by default: a FactorCache shares the Cholesky
/// factorization of each conditioning set across every query that uses
/// it (or extends it by a prefix), which is where PC's per-level subset
/// enumeration spends its time. Batched and unbatched answers are
/// bitwise identical — the cache replays the exact from-scratch
/// arithmetic, only skipping rows it has already computed.
class FisherZTest : public CiTest {
 public:
  /// Fails when fewer than 5 complete rows exist. `pool` parallelizes the
  /// sufficient-statistics pass (bitwise-deterministic; null = serial).
  static Result<std::unique_ptr<FisherZTest>> Create(
      const stats::NumericDataset& data, ThreadPool* pool = nullptr);

  /// Builds the test from an already-computed sufficient-statistics
  /// instance — no pass over the raw rows.
  static Result<std::unique_ptr<FisherZTest>> Create(
      const stats::SufficientStats& stats);

  std::size_t num_vars() const override { return corr_.rows(); }
  double PValue(std::size_t x, std::size_t y,
                const std::vector<std::size_t>& s) const override;
  double Strength(std::size_t x, std::size_t y,
                  const std::vector<std::size_t>& s) const override;

  /// Evicts factors that level `level` can no longer extend: level ℓ
  /// conditions on sets of size ℓ, whose longest useful cached prefixes
  /// have size ℓ-1.
  void OnSkeletonLevel(std::size_t level) const override;

  /// A/B seam for the identity tests and benchmarks: `false` routes every
  /// query through stats::PartialCorrelation from scratch. Answers are
  /// bitwise identical either way. Not thread-safe; flip before querying.
  void set_batched(bool batched) { batched_ = batched; }
  bool batched() const { return batched_; }

  const stats::FactorCache& factor_cache() const { return fcache_; }
  const stats::Matrix& correlation() const { return corr_; }
  std::size_t sample_size() const { return n_; }

 private:
  FisherZTest(stats::Matrix corr, std::size_t n)
      : corr_(std::move(corr)), n_(n), fcache_(&corr_, 1e-10) {}

  stats::Matrix corr_;
  std::size_t n_;
  /// Ridge 1e-10 mirrors the regularizer stats::PartialCorrelation applies
  /// to its conditioning submatrix — the precondition for bitwise parity.
  mutable stats::FactorCache fcache_;
  bool batched_ = true;
};

/// Exact d-separation oracle over a known DAG. Property tests use it to
/// check that PC/FCI recover the right equivalence class when the test is
/// perfect.
class DSeparationOracle : public CiTest {
 public:
  /// `dag` must be acyclic.
  static Result<std::unique_ptr<DSeparationOracle>> Create(
      const graph::Digraph& dag);

  std::size_t num_vars() const override { return dag_.num_nodes(); }

  /// 1.0 when d-separated (independent), 0.0 otherwise.
  double PValue(std::size_t x, std::size_t y,
                const std::vector<std::size_t>& s) const override;
  double Strength(std::size_t x, std::size_t y,
                  const std::vector<std::size_t>& s) const override;

 private:
  explicit DSeparationOracle(graph::Digraph dag) : dag_(std::move(dag)) {}
  graph::Digraph dag_;
};

}  // namespace cdi::discovery

#endif  // CDI_DISCOVERY_CI_TEST_H_
