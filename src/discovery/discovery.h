#ifndef CDI_DISCOVERY_DISCOVERY_H_
#define CDI_DISCOVERY_DISCOVERY_H_

#include <string>
#include <vector>

#include "common/span.h"
#include "common/status.h"
#include "discovery/ges.h"
#include "discovery/lingam.h"
#include "graph/digraph.h"

namespace cdi::discovery {

/// The data-centric causal discovery baselines evaluated in the paper.
enum class Algorithm { kPc, kFci, kGes, kLingam };

/// Stable display name ("PC", "FCI", "GES", "LiNGAM").
const char* AlgorithmName(Algorithm a);

struct DiscoveryOptions {
  /// CI significance level (PC / FCI).
  double alpha = 0.05;
  /// Largest conditioning set (PC / FCI); -1 = unbounded.
  int max_cond_size = -1;
  /// Worker threads for the parallel phases (PC/FCI skeleton edge tests,
  /// GES candidate scoring). Results are bitwise-identical at any count.
  int num_threads = 1;
  /// Memoize CI queries behind a CachedCiTest (PC / FCI).
  bool use_ci_cache = true;
  GesOptions ges;
  LingamOptions lingam;
};

/// Uniform output: a set of directed-edge claims in the variable index
/// space, suitable for the Table 3 metrics. PDAG/PAG outputs count
/// undirected/circle endpoints in both directions (see
/// Pdag::ToDirectedClaims / Pag::ToDirectedClaims).
struct DiscoverySummary {
  Algorithm algorithm;
  std::vector<graph::Edge> claims;
  /// Definitely directed edges only (no undirected/circle expansion);
  /// downstream mediator identification uses these.
  std::vector<graph::Edge> definite;
  std::size_t ci_tests = 0;
};

/// Runs one baseline on column-major numeric spans (NaN = missing; each
/// algorithm applies listwise deletion internally).
Result<DiscoverySummary> RunDiscovery(
    const std::vector<DoubleSpan>& data,
    const std::vector<std::string>& names, Algorithm algorithm,
    const DiscoveryOptions& options = DiscoveryOptions());

}  // namespace cdi::discovery

#endif  // CDI_DISCOVERY_DISCOVERY_H_
