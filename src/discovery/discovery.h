#ifndef CDI_DISCOVERY_DISCOVERY_H_
#define CDI_DISCOVERY_DISCOVERY_H_

#include <string>
#include <vector>

#include "common/span.h"
#include "common/status.h"
#include "discovery/ges.h"
#include "discovery/lingam.h"
#include "graph/digraph.h"

namespace cdi::discovery {

/// The data-centric causal discovery baselines evaluated in the paper.
enum class Algorithm { kPc, kFci, kGes, kLingam };

/// Stable display name ("PC", "FCI", "GES", "LiNGAM").
const char* AlgorithmName(Algorithm a);

struct DiscoveryOptions {
  /// CI significance level (PC / FCI).
  double alpha = 0.05;
  /// Largest conditioning set (PC / FCI); -1 = unbounded.
  int max_cond_size = -1;
  /// Worker threads for the parallel phases (PC/FCI skeleton edge tests,
  /// GES candidate scoring). Results are bitwise-identical at any count.
  int num_threads = 1;
  /// Memoize CI queries behind a CachedCiTest (PC / FCI).
  bool use_ci_cache = true;
  /// Warm start from a previous run's graph over the same variables:
  /// PC seeds its skeleton with these edges (treated as undirected — the
  /// CI sweep only prunes from there), GES installs them as its initial
  /// DAG (the greedy search can still add or delete from the seed). FCI
  /// and LiNGAM ignore the seed. Only consulted when `warm_start` is
  /// true; an empty edge list with warm_start set means "start from the
  /// empty graph" for PC, which is almost never what you want.
  bool warm_start = false;
  std::vector<graph::Edge> warm_edges;
  GesOptions ges;
  LingamOptions lingam;
};

/// Uniform output: a set of directed-edge claims in the variable index
/// space, suitable for the Table 3 metrics. PDAG/PAG outputs count
/// undirected/circle endpoints in both directions (see
/// Pdag::ToDirectedClaims / Pag::ToDirectedClaims).
struct DiscoverySummary {
  Algorithm algorithm;
  std::vector<graph::Edge> claims;
  /// Definitely directed edges only (no undirected/circle expansion);
  /// downstream mediator identification uses these.
  std::vector<graph::Edge> definite;
  /// The edge set best suited to warm-start the next run of the same
  /// algorithm on slightly-changed data (DiscoveryOptions::warm_edges).
  /// PC: the full skeleton adjacencies (undirected edges both ways —
  /// seeding with definite edges only would drop adjacencies the next
  /// skeleton should keep). GES: the learned DAG itself (seeding with
  /// CPDAG claims would force arbitrary orientations of undirected
  /// edges and steer the search into a different local optimum).
  std::vector<graph::Edge> warm_seed;
  std::size_t ci_tests = 0;
};

/// Runs one baseline on column-major numeric spans (NaN = missing; each
/// algorithm applies listwise deletion internally).
Result<DiscoverySummary> RunDiscovery(
    const std::vector<DoubleSpan>& data,
    const std::vector<std::string>& names, Algorithm algorithm,
    const DiscoveryOptions& options = DiscoveryOptions());

}  // namespace cdi::discovery

#endif  // CDI_DISCOVERY_DISCOVERY_H_
