#include "discovery/binned_ci.h"

#include "stats/independence.h"

namespace cdi::discovery {

Result<std::unique_ptr<BinnedChiSquareTest>> BinnedChiSquareTest::Create(
    const std::vector<DoubleSpan>& data, int bins) {
  if (data.empty()) return Status::InvalidArgument("no variables");
  if (bins < 2 || bins > 8) {
    return Status::InvalidArgument("bins must be in [2, 8]");
  }
  std::vector<std::vector<int>> codes;
  codes.reserve(data.size());
  for (const auto& col : data) {
    if (col.size() != data[0].size()) {
      return Status::InvalidArgument("ragged data");
    }
    codes.push_back(stats::QuantileBin(col, bins));
  }
  return std::unique_ptr<BinnedChiSquareTest>(
      new BinnedChiSquareTest(std::move(codes)));
}

double BinnedChiSquareTest::PValue(std::size_t x, std::size_t y,
                                   const std::vector<std::size_t>& s) const {
  ++calls;
  if (x >= codes_.size() || y >= codes_.size()) return 1.0;
  std::vector<std::vector<int>> z;
  for (std::size_t idx : s) {
    if (idx >= codes_.size()) return 1.0;
    z.push_back(codes_[idx]);
  }
  auto r = stats::ConditionalChiSquare(codes_[x], codes_[y], z);
  return r.ok() ? r->p_value : 1.0;
}

double BinnedChiSquareTest::Strength(
    std::size_t x, std::size_t y, const std::vector<std::size_t>& s) const {
  if (x >= codes_.size() || y >= codes_.size()) return 0.0;
  std::vector<std::vector<int>> z;
  for (std::size_t idx : s) z.push_back(codes_[idx]);
  auto r = stats::ConditionalChiSquare(codes_[x], codes_[y], z);
  return r.ok() ? r->strength : 0.0;
}

}  // namespace cdi::discovery
