#include "discovery/pc.h"

#include <algorithm>

#include "discovery/subsets.h"

namespace cdi::discovery {

namespace {

std::pair<std::size_t, std::size_t> Key(std::size_t a, std::size_t b) {
  return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
}

}  // namespace

Status PcSkeleton(const CiTest& test, const PcOptions& options,
                  std::vector<std::set<std::size_t>>* adjacency,
                  SepsetMap* sepsets) {
  const std::size_t p = test.num_vars();
  if (p < 2) return Status::InvalidArgument("need at least 2 variables");
  adjacency->assign(p, {});
  sepsets->clear();
  for (std::size_t i = 0; i < p; ++i) {
    for (std::size_t j = 0; j < p; ++j) {
      if (i != j) (*adjacency)[i].insert(j);
    }
  }

  const std::size_t max_level =
      options.max_cond_size < 0
          ? p
          : static_cast<std::size_t>(options.max_cond_size);

  for (std::size_t level = 0; level <= max_level; ++level) {
    // Stop when no node has enough neighbours to condition on.
    bool any_candidate = false;
    for (std::size_t i = 0; i < p; ++i) {
      if ((*adjacency)[i].size() > level) {
        any_candidate = true;
        break;
      }
    }
    if (!any_candidate) break;

    // PC-stable: test against a snapshot of the adjacencies so the result
    // does not depend on edge-removal order within the level.
    const std::vector<std::set<std::size_t>> snapshot =
        options.stable ? *adjacency : std::vector<std::set<std::size_t>>();
    const auto& adj_view = options.stable ? snapshot : *adjacency;

    for (std::size_t x = 0; x < p; ++x) {
      // Copy: we mutate adjacency during iteration.
      const std::set<std::size_t> neighbours = (*adjacency)[x];
      for (std::size_t y : neighbours) {
        if ((*adjacency)[x].count(y) == 0) continue;  // already removed
        // Candidate conditioning variables: adj(x) \ {y}.
        std::vector<std::size_t> candidates;
        for (std::size_t z : adj_view[x]) {
          if (z != y) candidates.push_back(z);
        }
        if (candidates.size() < level) continue;
        const bool removed = ForEachSubset<std::size_t>(
            candidates, level, [&](const std::vector<std::size_t>& s) {
              if (test.Independent(x, y, s, options.alpha)) {
                (*adjacency)[x].erase(y);
                (*adjacency)[y].erase(x);
                (*sepsets)[Key(x, y)] = s;
                return true;
              }
              return false;
            });
        (void)removed;
      }
    }
  }
  return Status::OK();
}

Result<PcResult> RunPc(const CiTest& test,
                       const std::vector<std::string>& names,
                       const PcOptions& options) {
  if (names.size() != test.num_vars()) {
    return Status::InvalidArgument("names/test size mismatch");
  }
  PcResult result;
  std::vector<std::set<std::size_t>> adjacency;
  const std::size_t calls_before = test.calls;
  CDI_RETURN_IF_ERROR(PcSkeleton(test, options, &adjacency, &result.sepsets));

  graph::Pdag g(names);
  for (std::size_t i = 0; i < adjacency.size(); ++i) {
    for (std::size_t j : adjacency[i]) {
      if (i < j) CDI_RETURN_IF_ERROR(g.AddUndirected(i, j));
    }
  }

  // Orient v-structures x -> z <- y for nonadjacent x, y with common
  // neighbour z not in sepset(x, y).
  const std::size_t p = test.num_vars();
  for (std::size_t z = 0; z < p; ++z) {
    for (std::size_t x = 0; x < p; ++x) {
      if (x == z || !g.Adjacent(x, z)) continue;
      for (std::size_t y = x + 1; y < p; ++y) {
        if (y == z || y == x || !g.Adjacent(y, z)) continue;
        if (g.Adjacent(x, y)) continue;
        const auto it = result.sepsets.find(Key(x, y));
        const bool z_in_sepset =
            it != result.sepsets.end() &&
            std::find(it->second.begin(), it->second.end(), z) !=
                it->second.end();
        if (!z_in_sepset) {
          // Only orient if both edges are still (at least partly)
          // undirected; conflicting v-structures resolve first-wins.
          if (g.HasUndirected(x, z)) CDI_RETURN_IF_ERROR(g.Orient(x, z));
          if (g.HasUndirected(y, z)) CDI_RETURN_IF_ERROR(g.Orient(y, z));
        }
      }
    }
  }
  g.ApplyMeekRules();
  result.graph = std::move(g);
  result.ci_tests = test.calls - calls_before;
  return result;
}

}  // namespace cdi::discovery
