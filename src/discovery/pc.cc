#include "discovery/pc.h"

#include <algorithm>
#include <memory>

#include "common/thread_pool.h"
#include "discovery/subsets.h"

namespace cdi::discovery {

namespace {

std::pair<std::size_t, std::size_t> Key(std::size_t a, std::size_t b) {
  return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
}

/// Outcome of testing one skeleton edge at one level.
struct EdgeDecision {
  bool removed = false;
  std::vector<std::size_t> sepset;
};

/// Removes `x` from the sorted neighbour vector, if present.
void EraseSorted(std::vector<std::size_t>* v, std::size_t x) {
  auto it = std::lower_bound(v->begin(), v->end(), x);
  if (it != v->end() && *it == x) v->erase(it);
}

/// Tests edge {a, b} at `level` against the snapshot adjacencies, first
/// from a's side then from b's — exactly the order the serial loop visits
/// the two orientations of an edge. Pure function of the snapshot, so
/// edges can be tested concurrently.
EdgeDecision TestEdgeAtLevel(
    const CiTest& test, const PcOptions& options,
    const std::vector<std::vector<std::size_t>>& adj_view, std::size_t a,
    std::size_t b, std::size_t level) {
  EdgeDecision decision;
  // Per-worker scratch: TestEdgeAtLevel runs once per edge orientation per
  // level, and a fresh vector each time would spend more on allocation than
  // on the (cached) CI tests themselves.
  thread_local std::vector<std::size_t> candidates;
  for (const auto& [x, y] : {std::make_pair(a, b), std::make_pair(b, a)}) {
    candidates.clear();
    for (std::size_t z : adj_view[x]) {
      if (z != y) candidates.push_back(z);
    }
    if (candidates.size() < level) continue;
    const bool removed = ForEachSubset<std::size_t>(
        candidates, level, [&](const std::vector<std::size_t>& s) {
          if (test.Independent(x, y, s, options.alpha)) {
            decision.removed = true;
            decision.sepset = s;
            return true;
          }
          return false;
        });
    if (removed) break;
  }
  return decision;
}

}  // namespace

Status PcSkeleton(const CiTest& test, const PcOptions& options,
                  std::vector<std::set<std::size_t>>* adjacency,
                  SepsetMap* sepsets) {
  const std::size_t p = test.num_vars();
  if (p < 2) return Status::InvalidArgument("need at least 2 variables");
  sepsets->clear();
  // Adjacency is kept as sorted neighbour vectors while the skeleton runs:
  // the per-level snapshot of the stable variant is then a handful of
  // contiguous copies instead of p red-black trees, which dominates the
  // runtime once the CI tests themselves are cached. Converted to the
  // API's set form at the end.
  std::vector<std::vector<std::size_t>> adj(p);
  if (options.warm_start) {
    // Seeded skeleton: only the warm edges are candidates; everything the
    // previous run separated stays separated without a single CI test.
    for (const auto& [a, b] : options.warm_edges) {
      if (a >= p || b >= p || a == b) {
        return Status::InvalidArgument("warm-start edge index out of range");
      }
      adj[a].push_back(b);
      adj[b].push_back(a);
    }
    for (auto& nbrs : adj) {
      std::sort(nbrs.begin(), nbrs.end());
      nbrs.erase(std::unique(nbrs.begin(), nbrs.end()), nbrs.end());
    }
  } else {
    for (std::size_t i = 0; i < p; ++i) {
      adj[i].reserve(p - 1);
      for (std::size_t j = 0; j < p; ++j) {
        if (i != j) adj[i].push_back(j);
      }
    }
  }

  const std::size_t max_level =
      options.max_cond_size < 0
          ? p
          : static_cast<std::size_t>(options.max_cond_size);

  // Parallelism is only sound for the stable variant: every edge decision
  // at a level is a pure function of the level-start snapshot.
  ThreadPool* pool = options.stable ? options.pool : nullptr;
  std::unique_ptr<ThreadPool> owned_pool;
  if (pool == nullptr && options.stable && options.num_threads > 1) {
    owned_pool = std::make_unique<ThreadPool>(
        static_cast<std::size_t>(options.num_threads));
    pool = owned_pool.get();
  }

  for (std::size_t level = 0; level <= max_level; ++level) {
    // Stop when no node has enough neighbours to condition on.
    bool any_candidate = false;
    for (std::size_t i = 0; i < p; ++i) {
      if (adj[i].size() > level) {
        any_candidate = true;
        break;
      }
    }
    if (!any_candidate) break;

    // Let the test prepare for this level's conditioning-set size (e.g.
    // FisherZTest evicts factor-cache entries no level-`level` query can
    // extend). Purely advisory — answers are identical without it.
    test.OnSkeletonLevel(level);

    if (options.stable) {
      // PC-stable: every edge present at level start is tested against a
      // snapshot of the adjacencies, so decisions are independent of each
      // other and of thread count; removals apply afterwards.
      const std::vector<std::vector<std::size_t>> snapshot = adj;
      std::vector<std::pair<std::size_t, std::size_t>> edges;
      for (std::size_t a = 0; a < p; ++a) {
        for (std::size_t b : snapshot[a]) {
          if (a < b) edges.emplace_back(a, b);
        }
      }
      std::vector<EdgeDecision> decisions(edges.size());
      ParallelFor(pool, edges.size(), [&](std::size_t e) {
        decisions[e] = TestEdgeAtLevel(test, options, snapshot,
                                       edges[e].first, edges[e].second,
                                       level);
      });
      for (std::size_t e = 0; e < edges.size(); ++e) {
        if (!decisions[e].removed) continue;
        const auto [a, b] = edges[e];
        EraseSorted(&adj[a], b);
        EraseSorted(&adj[b], a);
        (*sepsets)[Key(a, b)] = decisions[e].sepset;
      }
      continue;
    }

    // Order-dependent classic PC: removals take effect immediately.
    for (std::size_t x = 0; x < p; ++x) {
      // Copy: we mutate adjacency during iteration.
      const std::vector<std::size_t> neighbours = adj[x];
      for (std::size_t y : neighbours) {
        if (!std::binary_search(adj[x].begin(), adj[x].end(), y)) {
          continue;  // already removed
        }
        // Candidate conditioning variables: adj(x) \ {y}.
        std::vector<std::size_t> candidates;
        for (std::size_t z : adj[x]) {
          if (z != y) candidates.push_back(z);
        }
        if (candidates.size() < level) continue;
        const bool removed = ForEachSubset<std::size_t>(
            candidates, level, [&](const std::vector<std::size_t>& s) {
              if (test.Independent(x, y, s, options.alpha)) {
                EraseSorted(&adj[x], y);
                EraseSorted(&adj[y], x);
                (*sepsets)[Key(x, y)] = s;
                return true;
              }
              return false;
            });
        (void)removed;
      }
    }
  }

  adjacency->assign(p, {});
  for (std::size_t i = 0; i < p; ++i) {
    (*adjacency)[i].insert(adj[i].begin(), adj[i].end());
  }
  return Status::OK();
}

Result<PcResult> RunPc(const CiTest& test,
                       const std::vector<std::string>& names,
                       const PcOptions& options) {
  if (names.size() != test.num_vars()) {
    return Status::InvalidArgument("names/test size mismatch");
  }
  PcResult result;
  std::vector<std::set<std::size_t>> adjacency;
  const std::size_t calls_before = test.calls;
  CDI_RETURN_IF_ERROR(PcSkeleton(test, options, &adjacency, &result.sepsets));

  graph::Pdag g(names);
  for (std::size_t i = 0; i < adjacency.size(); ++i) {
    for (std::size_t j : adjacency[i]) {
      if (i < j) CDI_RETURN_IF_ERROR(g.AddUndirected(i, j));
    }
  }

  // Orient v-structures x -> z <- y for nonadjacent x, y with common
  // neighbour z not in sepset(x, y).
  const std::size_t p = test.num_vars();
  for (std::size_t z = 0; z < p; ++z) {
    for (std::size_t x = 0; x < p; ++x) {
      if (x == z || !g.Adjacent(x, z)) continue;
      for (std::size_t y = x + 1; y < p; ++y) {
        if (y == z || y == x || !g.Adjacent(y, z)) continue;
        if (g.Adjacent(x, y)) continue;
        const auto it = result.sepsets.find(Key(x, y));
        // A pair separated by the warm seed (no sepset recorded this run)
        // carries no orientation evidence — skip it instead of treating
        // the unknown sepset as empty.
        if (options.warm_start && it == result.sepsets.end()) continue;
        const bool z_in_sepset =
            it != result.sepsets.end() &&
            std::find(it->second.begin(), it->second.end(), z) !=
                it->second.end();
        if (!z_in_sepset) {
          // Only orient if both edges are still (at least partly)
          // undirected; conflicting v-structures resolve first-wins.
          if (g.HasUndirected(x, z)) CDI_RETURN_IF_ERROR(g.Orient(x, z));
          if (g.HasUndirected(y, z)) CDI_RETURN_IF_ERROR(g.Orient(y, z));
        }
      }
    }
  }
  g.ApplyMeekRules();
  result.graph = std::move(g);
  result.ci_tests = test.calls - calls_before;
  return result;
}

}  // namespace cdi::discovery
