#include "discovery/lingam.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "stats/descriptive.h"
#include "stats/regression.h"

namespace cdi::discovery {

namespace {

/// Hyvarinen's maximum-entropy approximation of the differential entropy of
/// a standardized variable. For a Gaussian this equals H(nu); deviations
/// lower it.
double ApproxEntropy(const std::vector<double>& u) {
  const double k1 = 79.047;
  const double k2 = 7.4129;
  const double gamma = 0.37457;
  double mean_logcosh = 0, mean_uexp = 0;
  std::size_t n = 0;
  for (double v : u) {
    if (std::isnan(v)) continue;
    mean_logcosh += std::log(std::cosh(v));
    mean_uexp += v * std::exp(-0.5 * v * v);
    ++n;
  }
  if (n == 0) return 0;
  mean_logcosh /= static_cast<double>(n);
  mean_uexp /= static_cast<double>(n);
  const double h_nu = 0.5 * (1.0 + std::log(2.0 * M_PI));
  return h_nu - k1 * (mean_logcosh - gamma) * (mean_logcosh - gamma) -
         k2 * mean_uexp * mean_uexp;
}

/// Residual of standardized y regressed on standardized x, re-standardized.
std::vector<double> StdResidual(const std::vector<double>& y,
                                const std::vector<double>& x) {
  const double r = stats::PearsonCorrelation(x, y);
  std::vector<double> res(y.size(), std::nan(""));
  for (std::size_t i = 0; i < y.size(); ++i) {
    if (std::isnan(y[i]) || std::isnan(x[i])) continue;
    res[i] = y[i] - r * x[i];
  }
  const double denom = std::sqrt(std::max(1e-12, 1.0 - r * r));
  for (double& v : res) v /= denom;
  return res;
}

}  // namespace

Result<LingamResult> RunDirectLingam(
    const std::vector<DoubleSpan>& data,
    const std::vector<std::string>& names, const LingamOptions& options) {
  const std::size_t p = data.size();
  if (p != names.size() || p < 2) {
    return Status::InvalidArgument("bad data/names");
  }
  const std::size_t n = data[0].size();
  for (const auto& col : data) {
    if (col.size() != n) return Status::InvalidArgument("ragged data");
  }
  if (n < p + 3) {
    return Status::FailedPrecondition("too few rows for DirectLiNGAM");
  }

  // Working copies, standardized; updated in place as variables are
  // regressed out.
  std::vector<std::vector<double>> x(p);
  for (std::size_t v = 0; v < p; ++v) x[v] = stats::Standardize(data[v]);

  LingamResult result;
  std::vector<std::size_t> remaining(p);
  for (std::size_t v = 0; v < p; ++v) remaining[v] = v;

  while (remaining.size() > 1) {
    // Pick the most exogenous variable by the pairwise LR measure:
    // M(i, j) > 0 suggests i -> j. The root minimizes
    // T(i) = sum_j min(0, M(i, j))^2.
    double best_t = std::numeric_limits<double>::infinity();
    std::size_t best_pos = 0;
    for (std::size_t a = 0; a < remaining.size(); ++a) {
      const std::size_t i = remaining[a];
      double t_i = 0;
      for (std::size_t b = 0; b < remaining.size(); ++b) {
        if (a == b) continue;
        const std::size_t j = remaining[b];
        const auto res_j_on_i = StdResidual(x[j], x[i]);
        const auto res_i_on_j = StdResidual(x[i], x[j]);
        const double m = (ApproxEntropy(x[j]) + ApproxEntropy(res_i_on_j)) -
                         (ApproxEntropy(x[i]) + ApproxEntropy(res_j_on_i));
        const double neg = std::min(0.0, m);
        t_i += neg * neg;
      }
      if (t_i < best_t) {
        best_t = t_i;
        best_pos = a;
      }
    }
    const std::size_t root = remaining[best_pos];
    result.causal_order.push_back(root);
    remaining.erase(remaining.begin() +
                    static_cast<std::ptrdiff_t>(best_pos));
    // Regress the root out of the remaining variables.
    for (std::size_t j : remaining) {
      x[j] = StdResidual(x[j], x[root]);
    }
  }
  result.causal_order.push_back(remaining[0]);

  // Prune: regress each variable on all its predecessors in the order and
  // keep significant coefficients.
  result.weights.assign(p, std::vector<double>(p, 0.0));
  graph::Digraph g(names);
  for (std::size_t pos = 1; pos < result.causal_order.size(); ++pos) {
    const std::size_t target = result.causal_order[pos];
    std::vector<std::size_t> preds(result.causal_order.begin(),
                                   result.causal_order.begin() +
                                       static_cast<std::ptrdiff_t>(pos));
    std::vector<cdi::DoubleSpan> xs;
    for (std::size_t q : preds) xs.emplace_back(stats::Standardize(data[q]));
    auto fit = stats::FitStandardizedOls(xs, data[target]);
    if (!fit.ok()) continue;
    for (std::size_t k = 0; k < preds.size(); ++k) {
      const double beta = fit->beta(k);
      const double pv = fit->p_values[k + 1];
      if (std::fabs(beta) >= options.min_abs_coefficient &&
          (!std::isnan(pv) && pv < options.prune_alpha)) {
        result.weights[target][preds[k]] = beta;
        CDI_RETURN_IF_ERROR(g.AddEdge(preds[k], target));
      }
    }
  }
  result.dag = std::move(g);
  return result;
}

}  // namespace cdi::discovery
