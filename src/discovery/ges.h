#ifndef CDI_DISCOVERY_GES_H_
#define CDI_DISCOVERY_GES_H_

#include <string>
#include <vector>

#include "common/span.h"
#include "common/status.h"
#include "graph/digraph.h"
#include "graph/pdag.h"

namespace cdi::discovery {

struct GesOptions {
  /// Multiplies the BIC complexity penalty (1.0 = standard BIC).
  double penalty_discount = 1.0;
  /// Hard cap on parents per node (guards the O(2^p) regime); -1 = none.
  int max_parents = -1;
  /// Worker threads for candidate local-score evaluation. Each greedy step
  /// scores all candidates (a pure function of data + current DAG) in
  /// parallel, then picks the winner in the serial iteration order, so the
  /// search trajectory is bitwise-identical at any thread count.
  int num_threads = 1;
};

struct GesResult {
  /// The DAG found by the greedy search.
  graph::Digraph dag;
  /// Its Markov equivalence class (CPDAG).
  graph::Pdag cpdag;
  /// Final total BIC score (lower is better).
  double bic = 0.0;
  std::size_t forward_steps = 0;
  std::size_t backward_steps = 0;
};

/// Greedy equivalence search in the two-phase Chickering (2002) style with
/// a Gaussian BIC score: a forward phase greedily adds the single-edge
/// insertion with the best score improvement, a backward phase greedily
/// deletes. The search state is a DAG (the standard simplification of
/// full equivalence-class search); the result is reported as a CPDAG.
/// `data` is column-major (one span per variable); rows with NaN anywhere
/// are dropped up front.
Result<GesResult> RunGes(const std::vector<DoubleSpan>& data,
                         const std::vector<std::string>& names,
                         const GesOptions& options = GesOptions());

}  // namespace cdi::discovery

#endif  // CDI_DISCOVERY_GES_H_
