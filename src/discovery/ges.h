#ifndef CDI_DISCOVERY_GES_H_
#define CDI_DISCOVERY_GES_H_

#include <string>
#include <vector>

#include "common/span.h"
#include "common/status.h"
#include "graph/digraph.h"
#include "graph/pdag.h"

namespace cdi::discovery {

struct GesOptions {
  /// Multiplies the BIC complexity penalty (1.0 = standard BIC).
  double penalty_discount = 1.0;
  /// Hard cap on parents per node (guards the O(2^p) regime); -1 = none.
  int max_parents = -1;
  /// Worker threads for candidate local-score evaluation. Each greedy step
  /// scores all candidates (a pure function of data + current DAG) in
  /// parallel, then picks the winner in the serial iteration order, so the
  /// search trajectory is bitwise-identical at any thread count.
  int num_threads = 1;
  /// Warm start: directed edges (variable-index pairs, typically a
  /// previous epoch's DAG over the same variables) installed as the
  /// initial search state before the forward phase. Seed edges that would
  /// be illegal now (cycle, max_parents, out-of-range index) are silently
  /// skipped. The search stays complete in both directions from the seed:
  /// the forward phase can still add any edge and the backward phase
  /// deletes seeded edges the new data no longer supports — the seed only
  /// moves the starting point close to the optimum, which is what makes a
  /// post-delta re-run converge in a handful of steps instead of
  /// rebuilding the graph edge by edge.
  std::vector<graph::Edge> seed_edges;
};

struct GesResult {
  /// The DAG found by the greedy search.
  graph::Digraph dag;
  /// Its Markov equivalence class (CPDAG).
  graph::Pdag cpdag;
  /// Final total BIC score (lower is better).
  double bic = 0.0;
  std::size_t forward_steps = 0;
  std::size_t backward_steps = 0;
};

/// Greedy equivalence search in the two-phase Chickering (2002) style with
/// a Gaussian BIC score: a forward phase greedily adds the single-edge
/// insertion with the best score improvement, a backward phase greedily
/// deletes. The search state is a DAG (the standard simplification of
/// full equivalence-class search); the result is reported as a CPDAG.
/// `data` is column-major (one span per variable); rows with NaN anywhere
/// are dropped up front.
Result<GesResult> RunGes(const std::vector<DoubleSpan>& data,
                         const std::vector<std::string>& names,
                         const GesOptions& options = GesOptions());

}  // namespace cdi::discovery

#endif  // CDI_DISCOVERY_GES_H_
