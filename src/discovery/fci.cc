#include "discovery/fci.h"

#include <algorithm>
#include <set>

namespace cdi::discovery {

namespace {

std::pair<std::size_t, std::size_t> Key(std::size_t a, std::size_t b) {
  return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
}

bool InSepset(const SepsetMap& sepsets, std::size_t x, std::size_t y,
              std::size_t z) {
  const auto it = sepsets.find(Key(x, y));
  if (it == sepsets.end()) return false;
  return std::find(it->second.begin(), it->second.end(), z) !=
         it->second.end();
}

}  // namespace

Result<FciResult> RunFci(const CiTest& test,
                         const std::vector<std::string>& names,
                         const FciOptions& options) {
  if (names.size() != test.num_vars()) {
    return Status::InvalidArgument("names/test size mismatch");
  }
  const std::size_t calls_before = test.calls;

  PcOptions pc_options;
  pc_options.alpha = options.alpha;
  pc_options.max_cond_size = options.max_cond_size;
  pc_options.num_threads = options.num_threads;
  std::vector<std::set<std::size_t>> adjacency;
  SepsetMap sepsets;
  CDI_RETURN_IF_ERROR(PcSkeleton(test, pc_options, &adjacency, &sepsets));

  const std::size_t p = test.num_vars();
  graph::Pag g(names);
  for (std::size_t i = 0; i < p; ++i) {
    for (std::size_t j : adjacency[i]) {
      if (i < j) CDI_RETURN_IF_ERROR(g.AddEdge(i, j));
    }
  }

  // Collider orientation: for unshielded x *-* z *-* y with z not in
  // sepset(x, y), put arrowheads at z.
  for (std::size_t z = 0; z < p; ++z) {
    for (std::size_t x = 0; x < p; ++x) {
      if (x == z || !g.Adjacent(x, z)) continue;
      for (std::size_t y = x + 1; y < p; ++y) {
        if (y == z || !g.Adjacent(y, z) || g.Adjacent(x, y)) continue;
        if (!InSepset(sepsets, x, y, z)) {
          CDI_RETURN_IF_ERROR(g.SetMark(x, z, z, graph::EndMark::kArrow));
          CDI_RETURN_IF_ERROR(g.SetMark(y, z, z, graph::EndMark::kArrow));
        }
      }
    }
  }

  // Zhang's rules R1-R3 to a fixed point.
  auto mark = [&](std::size_t a, std::size_t b,
                  std::size_t at) -> graph::EndMark {
    auto m = g.MarkAt(a, b, at);
    CDI_CHECK(m.ok());
    return *m;
  };
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t b = 0; b < p; ++b) {
      for (std::size_t c : g.AdjacentNodes(b)) {
        // R1: a *-> b o-* c, a and c nonadjacent  =>  b -> c
        // (tail at b, arrow at c).
        for (std::size_t a : g.AdjacentNodes(b)) {
          if (a == c || g.Adjacent(a, c) || a == b) continue;
          if (mark(a, b, b) == graph::EndMark::kArrow &&
              mark(b, c, b) == graph::EndMark::kCircle) {
            CDI_RETURN_IF_ERROR(g.SetMark(b, c, b, graph::EndMark::kTail));
            CDI_RETURN_IF_ERROR(g.SetMark(b, c, c, graph::EndMark::kArrow));
            changed = true;
          }
        }
        // R2: (a -> b *-> c or a *-> b -> c) and a *-o c  =>  a *-> c.
        for (std::size_t a : g.AdjacentNodes(c)) {
          if (a == b || !g.Adjacent(a, b)) continue;
          if (mark(a, c, c) != graph::EndMark::kCircle) continue;
          const bool chain1 = mark(a, b, b) == graph::EndMark::kArrow &&
                              mark(a, b, a) == graph::EndMark::kTail &&
                              mark(b, c, c) == graph::EndMark::kArrow;
          const bool chain2 = mark(a, b, b) == graph::EndMark::kArrow &&
                              mark(b, c, c) == graph::EndMark::kArrow &&
                              mark(b, c, b) == graph::EndMark::kTail;
          if (chain1 || chain2) {
            CDI_RETURN_IF_ERROR(g.SetMark(a, c, c, graph::EndMark::kArrow));
            changed = true;
          }
        }
      }
    }
    // R3: a *-> b <-* c, a *-o d o-* c, a and c nonadjacent, d *-o b
    //   =>  d *-> b.
    for (std::size_t b = 0; b < p; ++b) {
      for (std::size_t d : g.AdjacentNodes(b)) {
        if (mark(d, b, b) != graph::EndMark::kCircle) continue;
        const auto nbrs = g.AdjacentNodes(b);
        bool done = false;
        for (std::size_t a : nbrs) {
          if (done) break;
          if (a == d || !g.Adjacent(a, d)) continue;
          if (mark(a, b, b) != graph::EndMark::kArrow) continue;
          if (mark(a, d, d) != graph::EndMark::kCircle) continue;
          for (std::size_t c : nbrs) {
            if (c == a || c == d || g.Adjacent(a, c) || !g.Adjacent(c, d)) {
              continue;
            }
            if (mark(c, b, b) != graph::EndMark::kArrow) continue;
            if (mark(c, d, d) != graph::EndMark::kCircle) continue;
            CDI_RETURN_IF_ERROR(g.SetMark(d, b, b, graph::EndMark::kArrow));
            changed = true;
            done = true;
            break;
          }
        }
      }
    }
  }

  FciResult result;
  result.graph = std::move(g);
  result.ci_tests = test.calls - calls_before;
  return result;
}

}  // namespace cdi::discovery
