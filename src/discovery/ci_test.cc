#include "discovery/ci_test.h"

#include <cmath>

#include "graph/dsep.h"

namespace cdi::discovery {

Result<std::unique_ptr<FisherZTest>> FisherZTest::Create(
    const stats::NumericDataset& data, ThreadPool* pool) {
  const std::size_t n = stats::CompleteRowCount(data);
  if (n < 5) {
    return Status::FailedPrecondition(
        "FisherZTest needs at least 5 complete rows, got " +
        std::to_string(n));
  }
  CDI_ASSIGN_OR_RETURN(stats::Matrix corr,
                       stats::CorrelationMatrix(data, pool));
  return std::unique_ptr<FisherZTest>(new FisherZTest(std::move(corr), n));
}

Result<std::unique_ptr<FisherZTest>> FisherZTest::Create(
    const stats::SufficientStats& stats) {
  const std::size_t n = stats.complete_rows();
  if (n < 5) {
    return Status::FailedPrecondition(
        "FisherZTest needs at least 5 complete rows, got " +
        std::to_string(n));
  }
  return std::unique_ptr<FisherZTest>(new FisherZTest(stats.Correlation(), n));
}

double FisherZTest::PValue(std::size_t x, std::size_t y,
                           const std::vector<std::size_t>& s) const {
  ++calls;
  auto r = batched_ ? fcache_.PartialCorrelation(x, y, s)
                    : stats::PartialCorrelation(corr_, x, y, s);
  if (!r.ok()) return 1.0;
  return stats::FisherZPValue(*r, n_, s.size());
}

double FisherZTest::Strength(std::size_t x, std::size_t y,
                             const std::vector<std::size_t>& s) const {
  auto r = batched_ ? fcache_.PartialCorrelation(x, y, s)
                    : stats::PartialCorrelation(corr_, x, y, s);
  return r.ok() ? std::fabs(*r) : 0.0;
}

void FisherZTest::OnSkeletonLevel(std::size_t level) const {
  // Factors below level-1 variables can never be the longest prefix of a
  // level-`level` conditioning set again (and sets of up to 3 variables
  // are factored inline, so the map only ever holds size >= 4 — eviction
  // first bites at level 6). Dropped factors would be recomputed to
  // identical bits if ever needed — this is purely memory hygiene for
  // wide skeletons.
  if (level >= 3) fcache_.EvictSmallerThan(level - 1);
}

Result<std::unique_ptr<DSeparationOracle>> DSeparationOracle::Create(
    const graph::Digraph& dag) {
  if (!dag.IsAcyclic()) {
    return Status::InvalidArgument("oracle requires a DAG");
  }
  return std::unique_ptr<DSeparationOracle>(new DSeparationOracle(dag));
}

double DSeparationOracle::PValue(std::size_t x, std::size_t y,
                                 const std::vector<std::size_t>& s) const {
  ++calls;
  std::set<graph::NodeId> given(s.begin(), s.end());
  auto sep = graph::DSeparated(dag_, x, y, given);
  if (!sep.ok()) return 1.0;
  return *sep ? 1.0 : 0.0;
}

double DSeparationOracle::Strength(std::size_t x, std::size_t y,
                                   const std::vector<std::size_t>& s) const {
  return 1.0 - PValue(x, y, s);
}

}  // namespace cdi::discovery
