#ifndef CDI_DISCOVERY_PC_H_
#define CDI_DISCOVERY_PC_H_

#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "discovery/ci_test.h"
#include "graph/pdag.h"

namespace cdi {
class ThreadPool;
}

namespace cdi::discovery {

struct PcOptions {
  /// Significance level of the CI tests.
  double alpha = 0.05;
  /// Largest conditioning-set size tried; -1 = unbounded.
  int max_cond_size = -1;
  /// Order-independent ("PC-stable") skeleton phase.
  bool stable = true;
  /// Worker threads for the per-level edge tests. The stable skeleton is
  /// order-independent by construction, so the result is bitwise-identical
  /// at any thread count. Ignored (serial) when `stable` is false, whose
  /// semantics are inherently order-dependent.
  int num_threads = 1;
  /// Optional externally owned worker pool, reused across runs (spawning
  /// threads per call would dominate small problems). When null and
  /// `num_threads` > 1, a private pool is created for the call.
  ThreadPool* pool = nullptr;
  /// Warm start: when true, the skeleton starts from `warm_edges`
  /// (undirected variable-index pairs — typically the previous epoch's
  /// graph over the same variables) instead of the complete graph, and the
  /// CI sweep only *prunes* from there. Pairs absent from the seed are
  /// treated as already separated; their separating sets are unknown, so
  /// v-structure orientation skips them (conservative: fewer spurious
  /// orientations, at the cost of not re-adding an edge the seed lacks).
  bool warm_start = false;
  std::vector<std::pair<std::size_t, std::size_t>> warm_edges;
};

/// Separating sets found during skeleton construction, keyed by the
/// unordered pair (min, max).
using SepsetMap =
    std::map<std::pair<std::size_t, std::size_t>, std::vector<std::size_t>>;

struct PcResult {
  graph::Pdag graph;
  SepsetMap sepsets;
  /// Total CI tests performed.
  std::size_t ci_tests = 0;
};

/// The PC algorithm (Spirtes et al. 2000): skeleton by iterative-deepening
/// CI tests, v-structure orientation from separating sets, Meek closure.
/// Returns a CPDAG estimate.
Result<PcResult> RunPc(const CiTest& test,
                       const std::vector<std::string>& names,
                       const PcOptions& options = PcOptions());

/// Skeleton phase only (shared with FCI): starts from the complete
/// undirected graph, removes edges whose endpoints test independent given
/// some neighbour subset, and records that subset in `sepsets`.
/// `adjacency->at(i)` receives the final neighbour set of variable i.
Status PcSkeleton(const CiTest& test, const PcOptions& options,
                  std::vector<std::set<std::size_t>>* adjacency,
                  SepsetMap* sepsets);

}  // namespace cdi::discovery

#endif  // CDI_DISCOVERY_PC_H_
