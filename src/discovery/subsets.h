#ifndef CDI_DISCOVERY_SUBSETS_H_
#define CDI_DISCOVERY_SUBSETS_H_

#include <functional>
#include <vector>

namespace cdi::discovery {

/// Calls `visit` with every k-subset of `items` (in lexicographic index
/// order); stops early when `visit` returns true. Returns whether a visit
/// returned true.
template <typename T>
bool ForEachSubset(const std::vector<T>& items, std::size_t k,
                   const std::function<bool(const std::vector<T>&)>& visit) {
  if (k > items.size()) return false;
  std::vector<std::size_t> idx(k);
  for (std::size_t i = 0; i < k; ++i) idx[i] = i;
  std::vector<T> subset(k);
  for (;;) {
    for (std::size_t i = 0; i < k; ++i) subset[i] = items[idx[i]];
    if (visit(subset)) return true;
    if (k == 0) return false;
    // Advance to the next combination.
    std::size_t i = k;
    while (i-- > 0) {
      if (idx[i] != i + items.size() - k) {
        ++idx[i];
        for (std::size_t j = i + 1; j < k; ++j) idx[j] = idx[j - 1] + 1;
        break;
      }
      if (i == 0) return false;
    }
  }
}

}  // namespace cdi::discovery

#endif  // CDI_DISCOVERY_SUBSETS_H_
