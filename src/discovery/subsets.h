#ifndef CDI_DISCOVERY_SUBSETS_H_
#define CDI_DISCOVERY_SUBSETS_H_

#include <vector>

namespace cdi::discovery {

/// Calls `visit` with every k-subset of `items` (in lexicographic index
/// order); stops early when `visit` returns true. Returns whether a visit
/// returned true. The visitor is a template parameter (not std::function):
/// the skeleton calls this once per edge orientation per level, and a
/// type-erased callback would heap-allocate its capture every time. The
/// index and subset scratch buffers are thread-local for the same reason —
/// which makes this non-reentrant: `visit` must not itself call
/// ForEachSubset with the same element type.
template <typename T, typename Visit>
bool ForEachSubset(const std::vector<T>& items, std::size_t k,
                   Visit&& visit) {
  if (k > items.size()) return false;
  thread_local std::vector<std::size_t> idx;
  thread_local std::vector<T> subset;
  idx.resize(k);
  for (std::size_t i = 0; i < k; ++i) idx[i] = i;
  subset.resize(k);
  for (;;) {
    for (std::size_t i = 0; i < k; ++i) subset[i] = items[idx[i]];
    if (visit(subset)) return true;
    if (k == 0) return false;
    // Advance to the next combination.
    std::size_t i = k;
    while (i-- > 0) {
      if (idx[i] != i + items.size() - k) {
        ++idx[i];
        for (std::size_t j = i + 1; j < k; ++j) idx[j] = idx[j - 1] + 1;
        break;
      }
      if (i == 0) return false;
    }
  }
}

}  // namespace cdi::discovery

#endif  // CDI_DISCOVERY_SUBSETS_H_
