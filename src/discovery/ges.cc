#include "discovery/ges.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <string>

#include "stats/regression.h"

namespace cdi::discovery {

namespace {

/// Memoizing wrapper around the Gaussian BIC local score.
class ScoreCache {
 public:
  ScoreCache(const std::vector<std::vector<double>>& data, double penalty)
      : data_(data), penalty_(penalty) {}

  /// BIC contribution of `target` with the given parent set (lower is
  /// better). Returns +inf when the regression is degenerate.
  double Local(std::size_t target, const std::vector<std::size_t>& parents) {
    std::string key = std::to_string(target) + ":";
    std::vector<std::size_t> sorted = parents;
    std::sort(sorted.begin(), sorted.end());
    for (auto p : sorted) key += std::to_string(p) + ",";
    auto it = cache_.find(key);
    if (it != cache_.end()) return it->second;
    auto s = stats::GaussianBicLocalScore(data_, target, sorted);
    double value;
    if (!s.ok()) {
      value = std::numeric_limits<double>::infinity();
    } else {
      // Re-weight just the penalty part.
      const double n = static_cast<double>(data_[target].size());
      const double base_penalty =
          std::log(n) * (static_cast<double>(sorted.size()) + 2.0);
      value = *s - base_penalty + penalty_ * base_penalty;
    }
    cache_.emplace(key, value);
    return value;
  }

 private:
  const std::vector<std::vector<double>>& data_;
  double penalty_;
  std::map<std::string, double> cache_;
};

std::vector<std::size_t> ParentsOf(const graph::Digraph& g,
                                   std::size_t node) {
  const auto& p = g.Parents(node);
  return std::vector<std::size_t>(p.begin(), p.end());
}

}  // namespace

Result<GesResult> RunGes(const std::vector<std::vector<double>>& data,
                         const std::vector<std::string>& names,
                         const GesOptions& options) {
  const std::size_t p = data.size();
  if (p != names.size()) {
    return Status::InvalidArgument("data/names size mismatch");
  }
  if (p < 2) return Status::InvalidArgument("need at least 2 variables");

  // Listwise-complete rows.
  std::vector<std::vector<double>> cc(p);
  const std::size_t n = data[0].size();
  for (std::size_t r = 0; r < n; ++r) {
    bool ok = true;
    for (const auto& col : data) {
      if (col.size() != n) return Status::InvalidArgument("ragged data");
      if (std::isnan(col[r])) {
        ok = false;
        break;
      }
    }
    if (ok) {
      for (std::size_t v = 0; v < p; ++v) cc[v].push_back(data[v][r]);
    }
  }
  if (cc[0].size() < p + 3) {
    return Status::FailedPrecondition("too few complete rows for GES");
  }

  ScoreCache score(cc, options.penalty_discount);
  graph::Digraph g(names);
  GesResult result;

  // Current local score per node.
  std::vector<double> local(p);
  for (std::size_t v = 0; v < p; ++v) local[v] = score.Local(v, {});

  const std::size_t max_parents =
      options.max_parents < 0 ? p : static_cast<std::size_t>(
                                        options.max_parents);

  // Forward phase: best single-edge addition while it improves BIC.
  for (;;) {
    double best_delta = -1e-9;
    std::size_t best_u = 0, best_v = 0;
    bool found = false;
    for (std::size_t u = 0; u < p; ++u) {
      for (std::size_t v = 0; v < p; ++v) {
        if (u == v || g.Adjacent(u, v)) continue;
        if (g.Parents(v).size() >= max_parents) continue;
        if (g.HasDirectedPath(v, u)) continue;  // would create a cycle
        auto parents = ParentsOf(g, v);
        parents.push_back(u);
        const double delta = score.Local(v, parents) - local[v];
        if (delta < best_delta) {
          best_delta = delta;
          best_u = u;
          best_v = v;
          found = true;
        }
      }
    }
    if (!found) break;
    CDI_RETURN_IF_ERROR(g.AddEdge(best_u, best_v));
    local[best_v] = score.Local(best_v, ParentsOf(g, best_v));
    ++result.forward_steps;
  }

  // Backward phase: best single-edge deletion while it improves BIC.
  for (;;) {
    double best_delta = -1e-9;
    graph::Edge best_edge{0, 0};
    bool found = false;
    for (const auto& [u, v] : g.Edges()) {
      std::vector<std::size_t> parents;
      for (auto q : g.Parents(v)) {
        if (q != u) parents.push_back(q);
      }
      const double delta = score.Local(v, parents) - local[v];
      if (delta < best_delta) {
        best_delta = delta;
        best_edge = {u, v};
        found = true;
      }
    }
    if (!found) break;
    g.RemoveEdge(best_edge.first, best_edge.second);
    local[best_edge.second] =
        score.Local(best_edge.second, ParentsOf(g, best_edge.second));
    ++result.backward_steps;
  }

  result.bic = 0;
  for (std::size_t v = 0; v < p; ++v) result.bic += local[v];
  CDI_ASSIGN_OR_RETURN(result.cpdag, graph::Pdag::CpdagOf(g));
  result.dag = std::move(g);
  return result;
}

}  // namespace cdi::discovery
