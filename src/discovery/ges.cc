#include "discovery/ges.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/span.h"
#include "common/thread_pool.h"
#include "stats/factor_cache.h"
#include "stats/sufficient_stats.h"

namespace cdi::discovery {

namespace {

/// Memoizing wrapper around the Gaussian BIC local score, computed from
/// the dataset's shared sufficient statistics (Cholesky on a covariance
/// submatrix — no pass over raw rows per score). Thread-safe: concurrent
/// misses on the same key both compute the same deterministic value, so
/// cache content is independent of interleaving.
class ScoreCache {
 public:
  /// Borrows `stats`, which must outlive the cache (the factor cache
  /// keeps a pointer into its cross-product matrix).
  ScoreCache(const stats::SufficientStats& stats, double penalty)
      : stats_(stats),
        penalty_(penalty),
        fcache_(&stats.cross_products(), 1e-9) {}

  /// BIC contribution of `target` with the given parent set (lower is
  /// better). Returns +inf when the regression is degenerate.
  double Local(std::size_t target, const std::vector<std::size_t>& parents) {
    std::string key = std::to_string(target) + ":";
    std::vector<std::size_t> sorted = parents;
    std::sort(sorted.begin(), sorted.end());
    for (auto p : sorted) key += std::to_string(p) + ",";
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = cache_.find(key);
      if (it != cache_.end()) return it->second;
    }
    // Batched: parent sets across GES's insert/delete candidate moves
    // overlap heavily, so their Cholesky factors come from a shared
    // prefix-extending cache. Scores are bitwise identical to the
    // unbatched overload.
    auto s = stats_.GaussianBicLocal(target, sorted, &fcache_);
    double value;
    if (!s.ok()) {
      value = std::numeric_limits<double>::infinity();
    } else {
      // Re-weight just the penalty part.
      const double n = static_cast<double>(stats_.complete_rows());
      const double base_penalty =
          std::log(n) * (static_cast<double>(sorted.size()) + 2.0);
      value = *s - base_penalty + penalty_ * base_penalty;
    }
    std::lock_guard<std::mutex> lock(mu_);
    cache_.emplace(key, value);
    return value;
  }

 private:
  const stats::SufficientStats& stats_;
  double penalty_;
  mutable stats::FactorCache fcache_;
  std::mutex mu_;
  std::map<std::string, double> cache_;
};

/// A candidate move: score `target` with `parents`, delta vs. its current
/// local score.
struct Move {
  std::size_t u = 0;
  std::size_t v = 0;
  std::vector<std::size_t> parents;
  double delta = 0.0;
};

std::vector<std::size_t> ParentsOf(const graph::Digraph& g,
                                   std::size_t node) {
  const auto& p = g.Parents(node);
  return std::vector<std::size_t>(p.begin(), p.end());
}

}  // namespace

Result<GesResult> RunGes(const std::vector<DoubleSpan>& data,
                         const std::vector<std::string>& names,
                         const GesOptions& options) {
  const std::size_t p = data.size();
  if (p != names.size()) {
    return Status::InvalidArgument("data/names size mismatch");
  }
  if (p < 2) return Status::InvalidArgument("need at least 2 variables");

  const std::size_t n = data[0].size();
  for (const auto& col : data) {
    if (col.size() != n) return Status::InvalidArgument("ragged data");
  }

  std::unique_ptr<ThreadPool> pool;
  if (options.num_threads > 1) {
    pool = std::make_unique<ThreadPool>(
        static_cast<std::size_t>(options.num_threads));
  }

  // One blocked sufficient-statistics pass replaces the listwise-complete
  // copy; every local score below is linear algebra on its covariance
  // submatrices. A dataset with under 2 complete rows fails inside
  // Compute, which the p + 3 floor below subsumes.
  stats::NumericDataset ds;
  ds.columns = data;
  auto stats = stats::SufficientStats::Compute(ds, pool.get());
  if (!stats.ok() && stats.status().code() == StatusCode::kFailedPrecondition) {
    return Status::FailedPrecondition("too few complete rows for GES");
  }
  CDI_RETURN_IF_ERROR(stats.status());
  if (stats->complete_rows() < p + 3) {
    return Status::FailedPrecondition("too few complete rows for GES");
  }

  ScoreCache score(*stats, options.penalty_discount);
  graph::Digraph g(names);
  GesResult result;

  const std::size_t max_parents =
      options.max_parents < 0 ? p : static_cast<std::size_t>(
                                        options.max_parents);

  // Warm start: install the seed DAG before scoring, skipping any edge
  // that is illegal under the current constraints. Installation order is
  // the caller's edge order, so the accepted subset is deterministic.
  for (const auto& [u, v] : options.seed_edges) {
    if (u >= p || v >= p || u == v || g.Adjacent(u, v)) continue;
    if (g.Parents(v).size() >= max_parents) continue;
    if (g.HasDirectedPath(v, u)) continue;
    CDI_RETURN_IF_ERROR(g.AddEdge(u, v));
  }

  // Current local score per node (seeded parents included).
  std::vector<double> local(p);
  for (std::size_t v = 0; v < p; ++v) {
    local[v] = score.Local(v, ParentsOf(g, v));
  }

  // Each greedy step first collects the legal moves (cheap graph checks,
  // serial), scores them in parallel (each score is a pure function of the
  // data and the proposed parent set), then picks the winner by scanning in
  // the original candidate order with the original strict-< tie-break — so
  // the trajectory matches the serial search exactly.
  auto best_move = [&](std::vector<Move>& moves) -> const Move* {
    ParallelFor(pool.get(), moves.size(), [&](std::size_t i) {
      moves[i].delta =
          score.Local(moves[i].v, moves[i].parents) - local[moves[i].v];
    });
    // Moves whose deltas are equal in exact arithmetic (e.g. the two
    // directions of the first edge into an empty graph) can differ in the
    // last bits depending on how the score kernel rounded; resolve such
    // ties toward the earliest candidate so the greedy trajectory does not
    // hinge on floating-point noise.
    const Move* best = nullptr;
    for (const Move& m : moves) {
      if (m.delta >= -1e-9) continue;  // not an improvement
      if (best == nullptr || m.delta < best->delta - 1e-6) best = &m;
    }
    return best;
  };

  // Forward phase: best single-edge addition while it improves BIC.
  for (;;) {
    std::vector<Move> moves;
    for (std::size_t u = 0; u < p; ++u) {
      for (std::size_t v = 0; v < p; ++v) {
        if (u == v || g.Adjacent(u, v)) continue;
        if (g.Parents(v).size() >= max_parents) continue;
        if (g.HasDirectedPath(v, u)) continue;  // would create a cycle
        auto parents = ParentsOf(g, v);
        parents.push_back(u);
        moves.push_back({u, v, std::move(parents), 0.0});
      }
    }
    const Move* best = best_move(moves);
    if (best == nullptr) break;
    CDI_RETURN_IF_ERROR(g.AddEdge(best->u, best->v));
    local[best->v] = score.Local(best->v, ParentsOf(g, best->v));
    ++result.forward_steps;
  }

  // Backward phase: best single-edge deletion while it improves BIC.
  for (;;) {
    std::vector<Move> moves;
    for (const auto& [u, v] : g.Edges()) {
      std::vector<std::size_t> parents;
      for (auto q : g.Parents(v)) {
        if (q != u) parents.push_back(q);
      }
      moves.push_back({u, v, std::move(parents), 0.0});
    }
    const Move* best = best_move(moves);
    if (best == nullptr) break;
    g.RemoveEdge(best->u, best->v);
    local[best->v] = score.Local(best->v, ParentsOf(g, best->v));
    ++result.backward_steps;
  }

  result.bic = 0;
  for (std::size_t v = 0; v < p; ++v) result.bic += local[v];
  CDI_ASSIGN_OR_RETURN(result.cpdag, graph::Pdag::CpdagOf(g));
  result.dag = std::move(g);
  return result;
}

}  // namespace cdi::discovery
