#ifndef CDI_DISCOVERY_FCI_H_
#define CDI_DISCOVERY_FCI_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "discovery/ci_test.h"
#include "discovery/pc.h"
#include "graph/pag.h"

namespace cdi::discovery {

struct FciOptions {
  double alpha = 0.05;
  int max_cond_size = -1;
  /// Worker threads for the skeleton phase (see PcOptions::num_threads).
  int num_threads = 1;
};

struct FciResult {
  graph::Pag graph;
  std::size_t ci_tests = 0;
};

/// The FCI algorithm (Spirtes et al. 2000) in its commonly used simplified
/// form (as in RFCI): PC skeleton + sepsets, collider orientation with
/// circle endpoints elsewhere, then Zhang's orientation rules R1-R3 to a
/// fixed point. The Possible-D-SEP pruning pass and discriminating-path
/// rule R4 are omitted — on the latent-free scenarios CDI evaluates they
/// change nothing, and this matches the behaviour the paper reports
/// (FCI being the most conservative baseline with many circle endpoints).
Result<FciResult> RunFci(const CiTest& test,
                         const std::vector<std::string>& names,
                         const FciOptions& options = FciOptions());

}  // namespace cdi::discovery

#endif  // CDI_DISCOVERY_FCI_H_
