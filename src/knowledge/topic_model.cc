#include "knowledge/topic_model.h"

#include "common/string_util.h"

namespace cdi::knowledge {

void TopicModel::AddTopic(const std::string& topic,
                          const std::vector<std::string>& keywords) {
  std::vector<std::string> normalized;
  normalized.reserve(keywords.size());
  for (const auto& k : keywords) normalized.push_back(NormalizeEntityName(k));
  topics_.emplace_back(topic, std::move(normalized));
}

std::string TopicModel::AssignTopic(
    const std::vector<std::string>& attribute_names,
    LatencyMeter* meter) const {
  if (meter != nullptr) meter->Charge(kServiceName, kSecondsPerQuery);
  if (attribute_names.empty()) return "unknown";
  std::size_t best_hits = 0;
  const std::string* best_topic = nullptr;
  for (const auto& [topic, keywords] : topics_) {
    // Score = number of (keyword, attribute) containment pairs, so a topic
    // with several matching keywords beats one with a single generic hit
    // (e.g. "recovery" beats "spread" for {recovered_cases} even though
    // both share the token "cases").
    std::size_t hits = 0;
    for (const auto& attr : attribute_names) {
      const std::string norm = NormalizeEntityName(attr);
      for (const auto& kw : keywords) {
        if (norm.find(kw) != std::string::npos) ++hits;
      }
    }
    if (hits > best_hits) {
      best_hits = hits;
      best_topic = &topic;
    }
  }
  if (best_topic != nullptr) return *best_topic;
  return attribute_names[0];
}

}  // namespace cdi::knowledge
