#ifndef CDI_KNOWLEDGE_TEXT_ORACLE_H_
#define CDI_KNOWLEDGE_TEXT_ORACLE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/timer.h"
#include "graph/digraph.h"

namespace cdi::knowledge {

/// Behavioural knobs of the simulated LLM.
struct OracleOptions {
  /// Probability of correctly affirming a *direct* causal edge.
  double direct_recall = 0.97;
  /// Probability of (incorrectly) affirming an *indirect* causal relation
  /// as a direct edge — the paper's key GPT-3 failure mode ("unable to
  /// distinguish between direct and indirect effect").
  double transitive_claim_prob = 0.85;
  /// Probability of claiming the reverse of a true causal relation
  /// (produces the 2-cycles the paper observed, e.g. economy <-> pop size).
  double reverse_claim_prob = 0.12;
  /// Probability of affirming a causally unrelated pair.
  double unrelated_claim_prob = 0.03;
  /// Probability of affirming when either concept is unknown to the oracle
  /// ("sensitive to the quality of attribute names").
  double unknown_concept_claim_prob = 0.02;
  /// Deterministic seed: answers are a pure function of (a, b, seed).
  uint64_t seed = 17;
  /// Nominal per-query latency (one GPT-3 completion round-trip).
  double seconds_per_query = 1.5;
};

/// Simulated GPT-3 answering the paper's templated causal queries
/// ("Does <a> cause <b>? Answer yes or no."). Substitution for the real
/// API: the oracle's latent world knowledge is the *transitive closure* of
/// a concept-level ground-truth DAG plus seeded noise, reproducing the
/// failure modes §4 reports — extra edges, direct/indirect confusion,
/// 2-cycles, and name sensitivity. Every answer is deterministic given
/// (concept pair, seed), like a temperature-0 completion.
class TextCausalOracle {
 public:
  static constexpr char kServiceName[] = "text_oracle";

  TextCausalOracle(const graph::Digraph& world, OracleOptions options);

  /// Registers an alternative surface name for a world concept, e.g.
  /// attribute "avg_temp" -> concept "weather".
  void RegisterAlias(const std::string& alias, const std::string& concept_name);

  /// Templated query: does `a` cause `b`? Charges `meter` when non-null.
  bool DoesCause(const std::string& a, const std::string& b,
                 LatencyMeter* meter = nullptr) const;

  /// Follow-up disambiguation prompt ("Which is more likely: <a> causes
  /// <b>, or <b> causes <a>?"). Returns +1 when the oracle prefers a -> b,
  /// -1 for b -> a, 0 when it cannot tell. CATER's cycle repair asks this
  /// to break 2-cycles in the claimed edges.
  int PreferredDirection(const std::string& a, const std::string& b,
                         LatencyMeter* meter = nullptr) const;

  /// Queries every ordered concept pair and returns the claimed edge list
  /// as a Digraph over `concepts` (may be cyclic!).
  graph::Digraph QueryAllPairs(const std::vector<std::string>& concepts,
                               LatencyMeter* meter = nullptr) const;

  std::size_t query_count() const {
    return query_count_.load(std::memory_order_relaxed);
  }

 private:
  /// Resolves a surface name to a world node id (or npos).
  std::size_t Resolve(const std::string& name) const;

  /// Deterministic uniform in [0,1) keyed by the query.
  double HashUniform(const std::string& a, const std::string& b,
                     uint64_t salt) const;

  graph::Digraph world_;
  OracleOptions options_;
  std::vector<std::vector<bool>> reachable_;  // transitive closure
  std::map<std::string, std::string> aliases_;
  /// Relaxed atomic: the serving layer runs concurrent pipelines against
  /// one shared scenario, so const query methods bump this from multiple
  /// threads. A plain counter here was the one data race TSan found in
  /// the whole serving stack.
  mutable std::atomic<std::size_t> query_count_{0};
};

}  // namespace cdi::knowledge

#endif  // CDI_KNOWLEDGE_TEXT_ORACLE_H_
