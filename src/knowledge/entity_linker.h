#ifndef CDI_KNOWLEDGE_ENTITY_LINKER_H_
#define CDI_KNOWLEDGE_ENTITY_LINKER_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace cdi::knowledge {

/// How a surface form was resolved to a canonical entity.
enum class LinkMethod {
  kExact,       ///< canonical name matched verbatim
  kAlias,       ///< a registered alias matched
  kNormalized,  ///< match after case/punctuation normalization
  kFuzzy,       ///< Jaro-Winkler similarity above threshold
};

struct LinkResult {
  std::string canonical;
  LinkMethod method = LinkMethod::kExact;
  /// 1.0 for exact/alias/normalized, the similarity score for fuzzy.
  double confidence = 1.0;
};

/// Named-entity disambiguation for the Knowledge Extractor: maps cell
/// values from the input table ("MA", "Massachusetts ", "massachusetts")
/// onto canonical knowledge-graph entities. Resolution order: exact →
/// alias → normalized → fuzzy.
class EntityLinker {
 public:
  /// Registers a canonical entity and optional aliases. Re-registering the
  /// same canonical adds aliases.
  void AddEntity(const std::string& canonical,
                 const std::vector<std::string>& aliases = {});

  /// Adds one alias to an existing or future canonical entity.
  void AddAlias(const std::string& canonical, const std::string& alias);

  /// Resolves a surface form; NotFound when nothing clears
  /// `fuzzy_threshold`.
  Result<LinkResult> Link(const std::string& surface) const;

  /// All canonical entities, in registration order.
  const std::vector<std::string>& entities() const { return canonicals_; }

  /// Minimum Jaro-Winkler similarity for a fuzzy match (default 0.90).
  void set_fuzzy_threshold(double t) { fuzzy_threshold_ = t; }
  double fuzzy_threshold() const { return fuzzy_threshold_; }

 private:
  std::vector<std::string> canonicals_;
  std::unordered_map<std::string, std::string> exact_;       // surface -> canonical
  std::unordered_map<std::string, std::string> normalized_;  // norm -> canonical
  double fuzzy_threshold_ = 0.90;
};

}  // namespace cdi::knowledge

#endif  // CDI_KNOWLEDGE_ENTITY_LINKER_H_
