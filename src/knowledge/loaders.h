#ifndef CDI_KNOWLEDGE_LOADERS_H_
#define CDI_KNOWLEDGE_LOADERS_H_

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "graph/digraph.h"
#include "knowledge/knowledge_graph.h"

namespace cdi::knowledge {

/// Parsed contents of a domain-knowledge file (the `--knowledge` input of
/// cdi_cli and the `knowledge=` argument of the serve-layer `register`
/// verb). Line formats:
///     edge <concept_a> <concept_b>     # a causes b
///     alias <attribute> <concept>
///     topic <name> <keyword> [keyword...]
/// '#' starts a comment; blank lines are ignored.
struct DomainKnowledge {
  std::vector<std::pair<std::string, std::string>> edges;
  std::vector<std::pair<std::string, std::string>> aliases;
  std::map<std::string, std::vector<std::string>> topics;
};

/// Loads entity,property,value triples from a CSV file into the KG. The
/// file must have at least three columns (entity, property, value, in
/// that order); rows with a null in any of the three are skipped.
Status LoadKgTriplesCsv(const std::string& path, KnowledgeGraph* kg);

/// Parses a domain-knowledge file; parse errors cite path:lineno.
Result<DomainKnowledge> LoadDomainKnowledge(const std::string& path);

/// Concept digraph over the edge list (nodes = every concept mentioned),
/// ready to back a TextCausalOracle. Fails on self-loops/duplicates the
/// same way Digraph::AddEdge does, citing the offending edge.
Result<graph::Digraph> ConceptGraph(const DomainKnowledge& knowledge);

}  // namespace cdi::knowledge

#endif  // CDI_KNOWLEDGE_LOADERS_H_
