#include "knowledge/text_oracle.h"

#include <map>

#include "common/string_util.h"

namespace cdi::knowledge {

TextCausalOracle::TextCausalOracle(const graph::Digraph& world,
                                   OracleOptions options)
    : world_(world), options_(options) {
  const std::size_t n = world_.num_nodes();
  reachable_.assign(n, std::vector<bool>(n, false));
  for (std::size_t u = 0; u < n; ++u) {
    for (graph::NodeId v : world_.Descendants(u)) reachable_[u][v] = true;
  }
}

void TextCausalOracle::RegisterAlias(const std::string& alias,
                                     const std::string& concept_name) {
  aliases_[NormalizeEntityName(alias)] = concept_name;
}

std::size_t TextCausalOracle::Resolve(const std::string& name) const {
  auto direct = world_.NodeIdOf(name);
  if (direct.ok()) return *direct;
  const std::string norm = NormalizeEntityName(name);
  auto it = aliases_.find(norm);
  if (it != aliases_.end()) {
    auto id = world_.NodeIdOf(it->second);
    if (id.ok()) return *id;
  }
  // Normalized name match against world concepts.
  for (std::size_t i = 0; i < world_.num_nodes(); ++i) {
    if (NormalizeEntityName(world_.NodeName(i)) == norm) return i;
  }
  return static_cast<std::size_t>(-1);
}

double TextCausalOracle::HashUniform(const std::string& a,
                                     const std::string& b,
                                     uint64_t salt) const {
  // FNV-1a over the templated query string, mixed with seed + salt.
  const std::string q = "does " + a + " cause " + b + "?";
  uint64_t h = 1469598103934665603ULL ^ (options_.seed * 0x9E3779B97F4A7C15ULL)
               ^ (salt * 0xBF58476D1CE4E5B9ULL);
  for (char c : q) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  // splitmix-style finalizer.
  h ^= h >> 30;
  h *= 0xBF58476D1CE4E5B9ULL;
  h ^= h >> 27;
  h *= 0x94D049BB133111EBULL;
  h ^= h >> 31;
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

bool TextCausalOracle::DoesCause(const std::string& a, const std::string& b,
                                 LatencyMeter* meter) const {
  query_count_.fetch_add(1, std::memory_order_relaxed);
  if (meter != nullptr) {
    meter->Charge(kServiceName, options_.seconds_per_query);
  }
  const std::size_t ia = Resolve(a);
  const std::size_t ib = Resolve(b);
  const double u = HashUniform(a, b, 0);
  if (ia == static_cast<std::size_t>(-1) ||
      ib == static_cast<std::size_t>(-1) || ia == ib) {
    return u < options_.unknown_concept_claim_prob;
  }
  if (world_.HasEdge(ia, ib)) {
    return u < options_.direct_recall;
  }
  if (reachable_[ia][ib]) {
    return u < options_.transitive_claim_prob;
  }
  if (reachable_[ib][ia] || world_.HasEdge(ib, ia)) {
    return u < options_.reverse_claim_prob;
  }
  return u < options_.unrelated_claim_prob;
}

int TextCausalOracle::PreferredDirection(const std::string& a,
                                         const std::string& b,
                                         LatencyMeter* meter) const {
  query_count_.fetch_add(1, std::memory_order_relaxed);
  if (meter != nullptr) {
    meter->Charge(kServiceName, options_.seconds_per_query);
  }
  const std::size_t ia = Resolve(a);
  const std::size_t ib = Resolve(b);
  if (ia == static_cast<std::size_t>(-1) ||
      ib == static_cast<std::size_t>(-1) || ia == ib) {
    return 0;
  }
  auto score = [&](std::size_t from, std::size_t to) {
    if (world_.HasEdge(from, to)) return 3;
    if (reachable_[from][to]) return 2;
    return 0;
  };
  const int forward = score(ia, ib);
  const int backward = score(ib, ia);
  if (forward == backward) {
    // No structural preference; like a real LLM the oracle still commits
    // to an answer occasionally, deterministically per pair.
    if (forward == 0) return 0;
    return HashUniform(a, b, 7) < 0.5 ? 1 : -1;
  }
  return forward > backward ? 1 : -1;
}

graph::Digraph TextCausalOracle::QueryAllPairs(
    const std::vector<std::string>& concepts, LatencyMeter* meter) const {
  graph::Digraph g(concepts);
  for (std::size_t i = 0; i < concepts.size(); ++i) {
    for (std::size_t j = 0; j < concepts.size(); ++j) {
      if (i == j) continue;
      if (DoesCause(concepts[i], concepts[j], meter)) {
        CDI_CHECK(g.AddEdge(i, j).ok());
      }
    }
  }
  return g;
}

}  // namespace cdi::knowledge
