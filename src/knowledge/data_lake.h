#ifndef CDI_KNOWLEDGE_DATA_LAKE_H_
#define CDI_KNOWLEDGE_DATA_LAKE_H_

#include <string>
#include <vector>

#include "common/span.h"
#include "common/status.h"
#include "common/timer.h"
#include "table/table.h"

namespace cdi::knowledge {

/// A corpus of tables standing in for an open-data lake (data.gov, FRED).
/// Provides the two discovery primitives the paper cites: joinability
/// search by key containment (JOSIE-style) and correlation-aware column
/// selection against a target column (COCOA-style).
class DataLake {
 public:
  /// Nominal latency charged per table scanned (a catalog/API request).
  static constexpr double kSecondsPerTableScan = 0.4;
  static constexpr char kServiceName[] = "data_lake";

  /// Adds a table to the lake (tables should carry distinct names).
  void AddTable(table::Table t) { tables_.push_back(std::move(t)); }

  const std::vector<table::Table>& tables() const { return tables_; }
  std::size_t num_tables() const { return tables_.size(); }

  /// A column in a lake table that can be equi-joined with the input keys.
  struct JoinCandidate {
    std::size_t table_index = 0;
    std::string key_column;
    /// Fraction of distinct input key values present in the column.
    double containment = 0.0;
  };

  /// Finds lake columns whose value set contains at least
  /// `min_containment` of the distinct values of `keys` (string rendering,
  /// case-normalized). Results sorted by descending containment.
  std::vector<JoinCandidate> FindJoinable(
      const std::vector<std::string>& keys, double min_containment,
      LatencyMeter* meter = nullptr) const;

  /// A joinable numeric column ranked by association with a target.
  struct AugmentationCandidate {
    std::size_t table_index = 0;
    std::string key_column;
    std::string value_column;
    double containment = 0.0;
    /// |Pearson correlation| with the target after the join.
    double abs_correlation = 0.0;
  };

  /// COCOA-style search: for every joinable table, joins it (aggregating
  /// duplicates by mean) against (keys, target) and ranks each numeric
  /// column by absolute correlation with `target`. Candidates under
  /// `min_containment` are skipped. Sorted by descending |correlation|.
  Result<std::vector<AugmentationCandidate>> FindCorrelatedColumns(
      const std::vector<std::string>& keys, DoubleSpan target,
      double min_containment, LatencyMeter* meter = nullptr) const;

 private:
  std::vector<table::Table> tables_;
};

}  // namespace cdi::knowledge

#endif  // CDI_KNOWLEDGE_DATA_LAKE_H_
