#ifndef CDI_KNOWLEDGE_TOPIC_MODEL_H_
#define CDI_KNOWLEDGE_TOPIC_MODEL_H_

#include <map>
#include <string>
#include <vector>

#include "common/timer.h"

namespace cdi::knowledge {

/// Zero-shot topic assignment for attribute clusters — the C-DAG Builder
/// asks it to name each cluster ("avg_temp, snow_inch" -> "weather").
/// Substitution for the paper's GPT-3 topic labelling: a keyword lexicon
/// scored by token overlap; deterministic.
class TopicModel {
 public:
  static constexpr char kServiceName[] = "topic_model";
  static constexpr double kSecondsPerQuery = 1.0;

  /// Registers a topic and the keywords that indicate it. Keyword matching
  /// is by normalized-token containment, so "temp" matches "avg_temp".
  void AddTopic(const std::string& topic,
                const std::vector<std::string>& keywords);

  /// Names a cluster from its attribute names: the topic with the highest
  /// keyword-hit count wins (ties break by registration order). With no
  /// hits the cluster is named after its first attribute.
  std::string AssignTopic(const std::vector<std::string>& attribute_names,
                          LatencyMeter* meter = nullptr) const;

  std::size_t num_topics() const { return topics_.size(); }

 private:
  std::vector<std::pair<std::string, std::vector<std::string>>> topics_;
};

}  // namespace cdi::knowledge

#endif  // CDI_KNOWLEDGE_TOPIC_MODEL_H_
