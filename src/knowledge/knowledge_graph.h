#ifndef CDI_KNOWLEDGE_KNOWLEDGE_GRAPH_H_
#define CDI_KNOWLEDGE_KNOWLEDGE_GRAPH_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/timer.h"
#include "knowledge/entity_linker.h"
#include "table/table.h"

namespace cdi::knowledge {

/// In-memory RDF-style triple store standing in for DBpedia. Entities have
/// literal-valued properties ("avg_temp" -> 61.17) and entity-valued
/// properties ("governor" -> another entity), which the extractor can
/// follow one level deep — the paper's "follow links in the KG" idea.
class KnowledgeGraph {
 public:
  /// Nominal per-lookup latency charged to a LatencyMeter (a remote SPARQL
  /// endpoint round-trip).
  static constexpr double kSecondsPerLookup = 0.15;
  static constexpr char kServiceName[] = "knowledge_graph";

  /// Adds entity if missing and sets a literal property value.
  void AddLiteral(const std::string& entity, const std::string& property,
                  table::Value value);

  /// Adds an entity-valued property (a link).
  void AddLink(const std::string& entity, const std::string& property,
               const std::string& target_entity);

  /// Registers an alias for entity disambiguation.
  void AddAlias(const std::string& entity, const std::string& alias) {
    linker_.AddAlias(entity, alias);
  }

  bool HasEntity(const std::string& entity) const;

  /// Literal property names of `entity` (sorted).
  std::vector<std::string> LiteralProperties(const std::string& entity) const;

  /// Link property names of `entity` (sorted).
  std::vector<std::string> LinkProperties(const std::string& entity) const;

  Result<table::Value> GetLiteral(const std::string& entity,
                                  const std::string& property) const;

  Result<std::string> GetLink(const std::string& entity,
                              const std::string& property) const;

  const EntityLinker& linker() const { return linker_; }
  EntityLinker& mutable_linker() { return linker_; }

  std::size_t num_entities() const { return literals_.size(); }

  /// Extracts a property table for `surface_keys` (one row each, in
  /// order): links each key via the entity linker, emits one column per
  /// literal property observed on any linked entity (null where absent),
  /// and — when `follow_links` is true — additionally pulls the literal
  /// properties of link targets as "<link>_<property>" columns.
  /// Keys that fail to link produce all-null rows. Each entity lookup is
  /// charged to `meter` (may be null). Column `key_name` holds the
  /// original surface keys so the result joins back to the input table.
  Result<table::Table> ExtractProperties(
      const std::vector<std::string>& surface_keys,
      const std::string& key_name, bool follow_links,
      LatencyMeter* meter) const;

 private:
  // entity -> property -> value
  std::map<std::string, std::map<std::string, table::Value>> literals_;
  std::map<std::string, std::map<std::string, std::string>> links_;
  EntityLinker linker_;
};

}  // namespace cdi::knowledge

#endif  // CDI_KNOWLEDGE_KNOWLEDGE_GRAPH_H_
