#include "knowledge/knowledge_graph.h"

#include <set>

namespace cdi::knowledge {

void KnowledgeGraph::AddLiteral(const std::string& entity,
                                const std::string& property,
                                table::Value value) {
  if (literals_.count(entity) == 0 && links_.count(entity) == 0) {
    linker_.AddEntity(entity);
  }
  literals_[entity][property] = std::move(value);
}

void KnowledgeGraph::AddLink(const std::string& entity,
                             const std::string& property,
                             const std::string& target_entity) {
  if (literals_.count(entity) == 0 && links_.count(entity) == 0) {
    linker_.AddEntity(entity);
  }
  links_[entity][property] = target_entity;
}

bool KnowledgeGraph::HasEntity(const std::string& entity) const {
  return literals_.count(entity) > 0 || links_.count(entity) > 0;
}

std::vector<std::string> KnowledgeGraph::LiteralProperties(
    const std::string& entity) const {
  std::vector<std::string> out;
  auto it = literals_.find(entity);
  if (it == literals_.end()) return out;
  for (const auto& [p, v] : it->second) out.push_back(p);
  return out;
}

std::vector<std::string> KnowledgeGraph::LinkProperties(
    const std::string& entity) const {
  std::vector<std::string> out;
  auto it = links_.find(entity);
  if (it == links_.end()) return out;
  for (const auto& [p, v] : it->second) out.push_back(p);
  return out;
}

Result<table::Value> KnowledgeGraph::GetLiteral(
    const std::string& entity, const std::string& property) const {
  auto it = literals_.find(entity);
  if (it == literals_.end()) return Status::NotFound("no entity " + entity);
  auto pit = it->second.find(property);
  if (pit == it->second.end()) {
    return Status::NotFound("entity " + entity + " has no " + property);
  }
  return pit->second;
}

Result<std::string> KnowledgeGraph::GetLink(const std::string& entity,
                                            const std::string& property) const {
  auto it = links_.find(entity);
  if (it == links_.end()) return Status::NotFound("no entity " + entity);
  auto pit = it->second.find(property);
  if (pit == it->second.end()) {
    return Status::NotFound("entity " + entity + " has no link " + property);
  }
  return pit->second;
}

Result<table::Table> KnowledgeGraph::ExtractProperties(
    const std::vector<std::string>& surface_keys, const std::string& key_name,
    bool follow_links, LatencyMeter* meter) const {
  // Resolve every key (null on failure).
  std::vector<std::string> resolved(surface_keys.size());
  std::vector<bool> linked(surface_keys.size(), false);
  for (std::size_t i = 0; i < surface_keys.size(); ++i) {
    if (meter != nullptr) meter->Charge(kServiceName, kSecondsPerLookup);
    auto link = linker_.Link(surface_keys[i]);
    if (link.ok()) {
      resolved[i] = link->canonical;
      linked[i] = true;
    }
  }

  // Collect the union of property columns in deterministic order.
  std::set<std::string> literal_cols;
  // link property -> set of sub-properties
  std::map<std::string, std::set<std::string>> link_cols;
  for (std::size_t i = 0; i < surface_keys.size(); ++i) {
    if (!linked[i]) continue;
    for (const auto& p : LiteralProperties(resolved[i])) {
      literal_cols.insert(p);
    }
    if (follow_links) {
      for (const auto& lp : LinkProperties(resolved[i])) {
        auto target = GetLink(resolved[i], lp);
        if (!target.ok()) continue;
        if (meter != nullptr) meter->Charge(kServiceName, kSecondsPerLookup);
        for (const auto& sp : LiteralProperties(*target)) {
          link_cols[lp].insert(sp);
        }
      }
    }
  }

  // Assemble per-column value vectors.
  struct PendingColumn {
    std::string name;
    std::vector<table::Value> values;
  };
  std::vector<PendingColumn> pending;
  for (const auto& p : literal_cols) pending.push_back({p, {}});
  for (const auto& [lp, subs] : link_cols) {
    for (const auto& sp : subs) pending.push_back({lp + "_" + sp, {}});
  }

  for (std::size_t i = 0; i < surface_keys.size(); ++i) {
    std::size_t c = 0;
    for (const auto& p : literal_cols) {
      table::Value v;
      if (linked[i]) {
        auto got = GetLiteral(resolved[i], p);
        if (got.ok()) v = *got;
      }
      pending[c++].values.push_back(std::move(v));
    }
    for (const auto& [lp, subs] : link_cols) {
      std::string target;
      if (linked[i]) {
        auto t = GetLink(resolved[i], lp);
        if (t.ok()) target = *t;
      }
      for (const auto& sp : subs) {
        table::Value v;
        if (!target.empty()) {
          auto got = GetLiteral(target, sp);
          if (got.ok()) v = *got;
        }
        pending[c++].values.push_back(std::move(v));
      }
    }
  }

  // Materialize, inferring each column's type from its values.
  table::Table out("kg_extraction");
  CDI_RETURN_IF_ERROR(out.AddColumn(
      table::Column::FromStrings(key_name, surface_keys)));
  for (auto& pc : pending) {
    bool any_string = false, any_double = false, any_int = false,
         any_bool = false;
    for (const auto& v : pc.values) {
      any_string |= v.is_string();
      any_double |= v.is_double();
      any_int |= v.is_int64();
      any_bool |= v.is_bool();
    }
    table::DataType type = table::DataType::kString;
    if (any_string) {
      type = table::DataType::kString;
    } else if (any_double) {
      type = table::DataType::kDouble;
    } else if (any_int) {
      type = table::DataType::kInt64;
    } else if (any_bool) {
      type = table::DataType::kBool;
    }
    table::Column col(pc.name, type);
    for (auto& v : pc.values) {
      // Coerce mixed numeric/bool into the column type's domain.
      if (type == table::DataType::kString && !v.is_null() &&
          !v.is_string()) {
        v = table::Value(v.ToString());
      } else if (type == table::DataType::kDouble && v.is_bool()) {
        v = table::Value(v.ToNumeric());
      } else if (type == table::DataType::kInt64 && v.is_bool()) {
        v = table::Value(static_cast<int64_t>(v.as_bool() ? 1 : 0));
      }
      CDI_RETURN_IF_ERROR(col.Append(std::move(v)));
    }
    CDI_RETURN_IF_ERROR(out.AddColumn(std::move(col)));
  }
  return out;
}

}  // namespace cdi::knowledge
