#include "knowledge/data_lake.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <unordered_map>

#include "common/string_util.h"
#include "stats/descriptive.h"

namespace cdi::knowledge {

namespace {

std::set<std::string> NormalizedValueSet(const table::Column& col) {
  std::set<std::string> out;
  for (std::size_t r = 0; r < col.size(); ++r) {
    if (!col.IsNull(r)) out.insert(NormalizeEntityName(col.Get(r).ToString()));
  }
  return out;
}

}  // namespace

std::vector<DataLake::JoinCandidate> DataLake::FindJoinable(
    const std::vector<std::string>& keys, double min_containment,
    LatencyMeter* meter) const {
  std::set<std::string> key_set;
  for (const auto& k : keys) key_set.insert(NormalizeEntityName(k));
  std::vector<JoinCandidate> out;
  if (key_set.empty()) return out;
  for (std::size_t t = 0; t < tables_.size(); ++t) {
    if (meter != nullptr) meter->Charge(kServiceName, kSecondsPerTableScan);
    for (std::size_t c = 0; c < tables_[t].num_cols(); ++c) {
      const table::Column& col = tables_[t].ColumnAt(c);
      if (col.type() != table::DataType::kString) continue;
      const auto values = NormalizedValueSet(col);
      std::size_t hits = 0;
      for (const auto& k : key_set) hits += values.count(k);
      const double containment =
          static_cast<double>(hits) / static_cast<double>(key_set.size());
      if (containment >= min_containment) {
        out.push_back({t, col.name(), containment});
      }
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const JoinCandidate& a, const JoinCandidate& b) {
                     return a.containment > b.containment;
                   });
  return out;
}

Result<std::vector<DataLake::AugmentationCandidate>>
DataLake::FindCorrelatedColumns(const std::vector<std::string>& keys,
                                DoubleSpan target,
                                double min_containment,
                                LatencyMeter* meter) const {
  if (keys.size() != target.size()) {
    return Status::InvalidArgument("keys/target size mismatch");
  }
  const auto joinable = FindJoinable(keys, min_containment, meter);
  std::vector<AugmentationCandidate> out;
  for (const auto& jc : joinable) {
    const table::Table& t = tables_[jc.table_index];
    CDI_ASSIGN_OR_RETURN(const table::Column* key_col,
                         t.GetColumn(jc.key_column));
    // Mean of each numeric column per normalized key value.
    for (std::size_t c = 0; c < t.num_cols(); ++c) {
      const table::Column& col = t.ColumnAt(c);
      if (!table::IsNumeric(col.type())) continue;
      std::unordered_map<std::string, std::pair<double, double>> agg;
      for (std::size_t r = 0; r < t.num_rows(); ++r) {
        if (key_col->IsNull(r) || col.IsNull(r)) continue;
        auto& [sum, count] =
            agg[NormalizeEntityName(key_col->Get(r).ToString())];
        sum += col.NumericAt(r);
        count += 1;
      }
      // Align with the input keys.
      std::vector<double> aligned(keys.size(), std::nan(""));
      for (std::size_t i = 0; i < keys.size(); ++i) {
        auto it = agg.find(NormalizeEntityName(keys[i]));
        if (it != agg.end() && it->second.second > 0) {
          aligned[i] = it->second.first / it->second.second;
        }
      }
      const double r = stats::PearsonCorrelation(aligned, target);
      if (std::isnan(r)) continue;
      AugmentationCandidate ac;
      ac.table_index = jc.table_index;
      ac.key_column = jc.key_column;
      ac.value_column = col.name();
      ac.containment = jc.containment;
      ac.abs_correlation = std::fabs(r);
      out.push_back(ac);
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const AugmentationCandidate& a,
                      const AugmentationCandidate& b) {
                     return a.abs_correlation > b.abs_correlation;
                   });
  return out;
}

}  // namespace cdi::knowledge
