#include "knowledge/entity_linker.h"

#include <algorithm>

#include "common/string_util.h"

namespace cdi::knowledge {

void EntityLinker::AddEntity(const std::string& canonical,
                             const std::vector<std::string>& aliases) {
  if (exact_.emplace(canonical, canonical).second) {
    canonicals_.push_back(canonical);
  }
  normalized_.emplace(NormalizeEntityName(canonical), canonical);
  for (const auto& a : aliases) AddAlias(canonical, a);
}

void EntityLinker::AddAlias(const std::string& canonical,
                            const std::string& alias) {
  exact_.emplace(alias, canonical);
  normalized_.emplace(NormalizeEntityName(alias), canonical);
}

Result<LinkResult> EntityLinker::Link(const std::string& surface) const {
  LinkResult out;
  // 1. Exact (canonical or alias).
  auto it = exact_.find(surface);
  if (it != exact_.end()) {
    out.canonical = it->second;
    out.method = it->second == surface ? LinkMethod::kExact
                                       : LinkMethod::kAlias;
    return out;
  }
  // 2. Normalized.
  const std::string norm = NormalizeEntityName(surface);
  auto nit = normalized_.find(norm);
  if (nit != normalized_.end()) {
    out.canonical = nit->second;
    out.method = LinkMethod::kNormalized;
    return out;
  }
  // 3. Fuzzy over canonical names and registered surfaces.
  double best = 0;
  const std::string* best_canonical = nullptr;
  for (const auto& [surf, canon] : exact_) {
    const double sim = JaroWinkler(NormalizeEntityName(surf), norm);
    if (sim > best) {
      best = sim;
      best_canonical = &canon;
    }
  }
  if (best_canonical != nullptr && best >= fuzzy_threshold_) {
    out.canonical = *best_canonical;
    out.method = LinkMethod::kFuzzy;
    out.confidence = best;
    return out;
  }
  return Status::NotFound("cannot link entity '" + surface + "'");
}

}  // namespace cdi::knowledge
