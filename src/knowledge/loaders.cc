#include "knowledge/loaders.h"

#include <fstream>
#include <set>
#include <sstream>

#include "common/string_util.h"
#include "table/csv.h"
#include "table/table.h"

namespace cdi::knowledge {

Status LoadKgTriplesCsv(const std::string& path, KnowledgeGraph* kg) {
  CDI_ASSIGN_OR_RETURN(table::Table t, table::ReadCsvFile(path));
  if (t.num_cols() < 3) {
    return Status::InvalidArgument(path +
                                   ": expected entity,property,value columns");
  }
  const auto& ec = t.ColumnAt(0);
  const auto& pc = t.ColumnAt(1);
  const auto& vc = t.ColumnAt(2);
  for (std::size_t r = 0; r < t.num_rows(); ++r) {
    if (ec.IsNull(r) || pc.IsNull(r) || vc.IsNull(r)) continue;
    kg->AddLiteral(ec.Get(r).ToString(), pc.Get(r).ToString(), vc.Get(r));
  }
  return Status::OK();
}

Result<DomainKnowledge> LoadDomainKnowledge(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  DomainKnowledge out;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    line = Trim(line);
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ss(line);
    std::string kind;
    ss >> kind;
    if (kind == "edge") {
      std::string a, b;
      ss >> a >> b;
      if (a.empty() || b.empty()) {
        return Status::InvalidArgument(path + ":" + std::to_string(lineno) +
                                       ": edge needs two concepts");
      }
      out.edges.emplace_back(a, b);
    } else if (kind == "alias") {
      std::string attr, concept_name;
      ss >> attr >> concept_name;
      if (attr.empty() || concept_name.empty()) {
        return Status::InvalidArgument(path + ":" + std::to_string(lineno) +
                                       ": alias needs attribute and concept");
      }
      out.aliases.emplace_back(attr, concept_name);
    } else if (kind == "topic") {
      std::string name, kw;
      ss >> name;
      if (name.empty()) {
        return Status::InvalidArgument(path + ":" + std::to_string(lineno) +
                                       ": topic needs a name");
      }
      while (ss >> kw) out.topics[name].push_back(kw);
    } else {
      return Status::InvalidArgument(path + ":" + std::to_string(lineno) +
                                     ": unknown directive " + kind);
    }
  }
  return out;
}

Result<graph::Digraph> ConceptGraph(const DomainKnowledge& knowledge) {
  std::set<std::string> names;
  for (const auto& [a, b] : knowledge.edges) {
    names.insert(a);
    names.insert(b);
  }
  graph::Digraph concepts(std::vector<std::string>(names.begin(), names.end()));
  for (const auto& [a, b] : knowledge.edges) {
    Status s = concepts.AddEdge(a, b);
    if (!s.ok()) {
      return Status::InvalidArgument("knowledge edge " + a + " -> " + b + ": " +
                                     s.message());
    }
  }
  return concepts;
}

}  // namespace cdi::knowledge
