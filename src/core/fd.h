#ifndef CDI_CORE_FD_H_
#define CDI_CORE_FD_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "table/table.h"

namespace cdi::core {

/// A discovered (approximate) functional dependency lhs -> rhs.
struct FdCandidate {
  std::string lhs;
  std::string rhs;
  /// g3 error: the minimum fraction of rows that must be removed for the
  /// FD to hold exactly (0 = exact FD).
  double g3_error = 0.0;
};

/// The g3 approximation error of lhs -> rhs: for each lhs value, all but
/// the most frequent rhs value are violations. Nulls on the lhs are
/// ignored; a null rhs counts as its own value.
Result<double> ApproximateFdError(const table::Table& t,
                                  const std::string& lhs,
                                  const std::string& rhs);

/// Enumerates single-attribute FDs lhs -> rhs with g3 error at most
/// `max_error`, over column pairs where the lhs has at most
/// `max_lhs_distinct_fraction * num_rows` distinct values (FDs from an
/// all-distinct column are trivial and meaningless). Sorted by error.
///
/// This is the "approximate single-LHS" discovery the Data Organizer's
/// §3.2 failure-mode analysis calls for; exact checks use HoldsFd.
Result<std::vector<FdCandidate>> FindApproximateFds(
    const table::Table& t, double max_error = 0.02,
    double max_lhs_distinct_fraction = 0.9);

}  // namespace cdi::core

#endif  // CDI_CORE_FD_H_
