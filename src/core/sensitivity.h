#ifndef CDI_CORE_SENSITIVITY_H_
#define CDI_CORE_SENSITIVITY_H_

#include "common/status.h"
#include "core/effect.h"

namespace cdi::core {

/// §5 names unobserved confounding as CDI's central residual risk ("the
/// generated C-DAG may not be complete ... the unconfoundedness assumption
/// is violated"). This module quantifies that risk for an effect estimate
/// in the VanderWeele & Ding E-value framework.

struct SensitivityReport {
  /// Approximate risk-ratio scale of the estimate (standardized
  /// coefficients are mapped via the d-to-RR heuristic
  /// RR ≈ exp(0.91 * d)).
  double risk_ratio = 1.0;
  /// E-value of the point estimate: the minimum strength of association
  /// (risk-ratio scale) an unobserved confounder would need with *both*
  /// the exposure and the outcome to fully explain the estimate away.
  double e_value = 1.0;
  /// Bias factor of a hypothetical unobserved confounder with the given
  /// association strengths (Ding & VanderWeele bound).
  double bias_bound_at_2x = 1.0;
};

/// Sensitivity of `estimate` (a standardized-coefficient effect) to
/// unobserved confounding. The `bias_bound_at_2x` field reports the
/// maximum multiplicative bias a confounder with RR_exposure = RR_outcome
/// = 2 could induce.
SensitivityReport AnalyzeSensitivity(const EffectEstimate& estimate);

/// The E-value for a risk ratio (>= 1; pass 1/rr for protective effects):
/// rr + sqrt(rr * (rr - 1)).
double EValueForRiskRatio(double rr);

/// Ding & VanderWeele joint bias bound: the largest bias factor an
/// unobserved confounder with exposure-association `rr_eu` and
/// outcome-association `rr_uo` can produce:
/// (rr_eu * rr_uo) / (rr_eu + rr_uo - 1).
double ConfoundingBiasBound(double rr_eu, double rr_uo);

}  // namespace cdi::core

#endif  // CDI_CORE_SENSITIVITY_H_
