#ifndef CDI_CORE_EVALUATION_H_
#define CDI_CORE_EVALUATION_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/pipeline.h"
#include "datagen/scenario.h"
#include "graph/metrics.h"

namespace cdi::core {

/// One row of the paper's Table 3.
struct Table3Row {
  std::string method;
  /// Number of directed-edge claims (the paper's |E| column).
  std::size_t num_edges = 0;
  graph::Prf presence;
  graph::Prf absence;
  /// |standardized coefficient| of the exposure after adjusting for the
  /// mediators/confounders identified by the method's graph. Ground truth
  /// is 0 (the effect is fully mediated).
  double direct_effect = 0.0;
  /// Mediator clusters the method identified.
  std::vector<std::string> mediators;
  /// Did the method identify exactly the ground-truth mediator set?
  bool mediators_match_truth = false;
  /// Simulated external latency + wall clock, for the runtime experiment.
  double external_seconds = 0.0;
  double wall_seconds = 0.0;
};

/// Runs the CDI pipeline on `scenario` with the given edge-inference mode
/// and scores the resulting C-DAG against the scenario's ground truth.
/// All methods share the same clustering/topic configuration (the paper's
/// protocol).
Result<Table3Row> EvaluateMethod(const datagen::Scenario& scenario,
                                 EdgeInference mode,
                                 const PipelineOptions& base_options);

/// Evaluates the six Table 3 methods (CATER, GPT-3 Only, GES, LiNGAM, PC,
/// FCI) on one scenario.
Result<std::vector<Table3Row>> EvaluateAllMethods(
    const datagen::Scenario& scenario, const PipelineOptions& base_options);

/// Default pipeline options used for a scenario's Table 3 runs: the
/// clustering granularity is pinned to the ground-truth cluster count
/// (the paper "picked our current best configurations").
PipelineOptions DefaultEvaluationOptions(const datagen::Scenario& scenario);

/// Renders rows in the paper's Table 3 layout.
std::string FormatTable3(const std::string& dataset_label,
                         const datagen::Scenario& scenario,
                         const std::vector<Table3Row>& rows);

}  // namespace cdi::core

#endif  // CDI_CORE_EVALUATION_H_
