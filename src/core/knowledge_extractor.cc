#include "core/knowledge_extractor.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <unordered_map>

#include "common/span.h"
#include "common/string_util.h"
#include "stats/correlation.h"
#include "stats/independence.h"
#include "stats/descriptive.h"

namespace cdi::core {

namespace {

/// |corr| treating NaN results as 0.
double AbsCorr(cdi::DoubleSpan a, cdi::DoubleSpan b) {
  const double r = stats::PearsonCorrelation(a, b);
  return std::isnan(r) ? 0.0 : std::fabs(r);
}

/// Outlier-robust association: max of |Pearson| and |Spearman|.
double RobustAbsCorr(cdi::DoubleSpan a, cdi::DoubleSpan b) {
  const double s = stats::SpearmanCorrelation(a, b);
  return std::max(AbsCorr(a, b), std::isnan(s) ? 0.0 : std::fabs(s));
}

std::size_t PairwiseCount(cdi::DoubleSpan a, cdi::DoubleSpan b) {
  std::size_t n = 0;
  for (std::size_t i = 0; i < std::min(a.size(), b.size()); ++i) {
    if (!std::isnan(a[i]) && !std::isnan(b[i])) ++n;
  }
  return n;
}

}  // namespace

Result<ExtractionResult> KnowledgeExtractor::Extract(
    const table::Table& input, const std::string& entity_column,
    const std::string& exposure, const std::string& outcome,
    LatencyMeter* meter) const {
  CDI_ASSIGN_OR_RETURN(const table::Column* key_col,
                       input.GetColumn(entity_column));
  if (key_col->type() != table::DataType::kString) {
    return Status::InvalidArgument("entity column must be a string column");
  }
  CDI_ASSIGN_OR_RETURN(const table::Column* tcol, input.GetColumn(exposure));
  CDI_ASSIGN_OR_RETURN(const table::Column* ocol, input.GetColumn(outcome));
  // Zero-copy views over `input`, which outlives every use below (the
  // augmented copy is assembled separately).
  const DoubleSpan t_vals = tcol->View();
  const DoubleSpan o_vals = ocol->View();
  // Relevance references: the exposure, the outcome, and every observed
  // numeric input attribute — an extracted attribute associated with any
  // variable already in the analysis is a candidate parent/child of it and
  // therefore relevant for the causal DAG.
  std::vector<DoubleSpan> reference_vals = {t_vals, o_vals};
  for (const auto& name : input.ColumnNames()) {
    if (name == entity_column || name == exposure || name == outcome) continue;
    auto col = input.GetColumn(name);
    if (col.ok() && table::IsNumeric((*col)->type())) {
      reference_vals.push_back((*col)->View());
    }
  }
  // Relevance of a numeric column: strongest robust association with any
  // reference, with its significance.
  auto score_relevance = [&](DoubleSpan vals,
                             double* corr_t, double* corr_o,
                             double* relevance, bool* significant) {
    *corr_t = RobustAbsCorr(vals, t_vals);
    *corr_o = RobustAbsCorr(vals, o_vals);
    *relevance = 0.0;
    double best_p = 1.0;
    for (const auto& ref : reference_vals) {
      const double r = RobustAbsCorr(vals, ref);
      const std::size_t n = PairwiseCount(vals, ref);
      best_p = std::min(best_p, stats::FisherZPValue(r, n, 0));
      *relevance = std::max(*relevance, r);
    }
    if (options_.nonlinear_relevance) {
      // Binned chi-square catches non-monotone associations Pearson and
      // Spearman both miss (e.g. a U-shaped confounder). Cramer's V serves
      // as its effect size for the magnitude floor.
      const auto bv = stats::QuantileBin(vals, 3);
      for (const auto& ref : reference_vals) {
        auto r = stats::ChiSquareIndependence(bv, stats::QuantileBin(ref, 3));
        if (r.ok()) {
          best_p = std::min(best_p, r->p_value);
          if (r->p_value < options_.relevance_alpha) {
            *relevance = std::max(*relevance, r->strength);
          }
        }
      }
    }
    // Bonferroni across the reference columns, so pure-noise attributes do
    // not slip in just because many references were tried.
    *significant =
        best_p < options_.relevance_alpha /
                     static_cast<double>(reference_vals.size());
  };

  std::vector<std::string> keys;
  keys.reserve(input.num_rows());
  for (std::size_t r = 0; r < input.num_rows(); ++r) {
    keys.push_back(key_col->IsNull(r) ? "" : key_col->StringAt(r));
  }

  ExtractionResult result;
  result.augmented = input;

  struct Candidate {
    table::Column column;
    ExtractedAttribute info;
    double relevance = 0.0;
    bool significant = true;
  };
  std::vector<Candidate> candidates;

  // ---- Knowledge-graph extraction. ---------------------------------------
  if (kg_ != nullptr) {
    CDI_ASSIGN_OR_RETURN(
        table::Table kg_table,
        kg_->ExtractProperties(keys, entity_column, options_.follow_kg_links,
                               meter));
    for (std::size_t c = 0; c < kg_table.num_cols(); ++c) {
      const table::Column& col = kg_table.ColumnAt(c);
      if (col.name() == entity_column) continue;
      ++result.kg_columns_found;
      Candidate cand{col, {}, 0.0};
      cand.info.name = col.name();
      cand.info.source = "knowledge_graph";
      if (table::IsNumeric(col.type()) ||
          col.type() == table::DataType::kBool) {
        score_relevance(col.View(), &cand.info.corr_with_exposure,
                        &cand.info.corr_with_outcome, &cand.relevance,
                        &cand.significant);
      } else {
        cand.relevance = 1.0;  // strings judged later by the organizer
        cand.significant = true;
      }
      candidates.push_back(std::move(cand));
    }
  }

  // ---- Data-lake extraction. ----------------------------------------------
  if (lake_ != nullptr) {
    // Rank joinable numeric columns by association with the outcome, then
    // with the exposure, merging the two searches.
    CDI_ASSIGN_OR_RETURN(
        auto by_outcome,
        lake_->FindCorrelatedColumns(keys, o_vals, options_.min_containment,
                                     meter));
    CDI_ASSIGN_OR_RETURN(
        auto by_exposure,
        lake_->FindCorrelatedColumns(keys, t_vals, options_.min_containment,
                                     nullptr));  // second pass reuses scans
    std::map<std::pair<std::size_t, std::string>, double> corr_o, corr_t;
    for (const auto& c : by_outcome) {
      corr_o[{c.table_index, c.value_column}] = c.abs_correlation;
    }
    for (const auto& c : by_exposure) {
      corr_t[{c.table_index, c.value_column}] = c.abs_correlation;
    }
    // Materialize each candidate column aligned to the input rows.
    std::set<std::pair<std::size_t, std::string>> seen;
    auto add_lake_candidates =
        [&](const std::vector<knowledge::DataLake::AugmentationCandidate>&
                list) -> Status {
      for (const auto& c : list) {
        if (!seen.insert({c.table_index, c.value_column}).second) continue;
        ++result.lake_columns_found;
        const table::Table& src = lake_->tables()[c.table_index];
        CDI_ASSIGN_OR_RETURN(const table::Column* kcol,
                             src.GetColumn(c.key_column));
        CDI_ASSIGN_OR_RETURN(const table::Column* vcol,
                             src.GetColumn(c.value_column));
        // Mean per normalized key (handles duplicates and 1:N tables).
        std::unordered_map<std::string, std::pair<double, double>> agg;
        for (std::size_t r = 0; r < src.num_rows(); ++r) {
          if (kcol->IsNull(r) || vcol->IsNull(r)) continue;
          auto& [sum, count] =
              agg[NormalizeEntityName(kcol->Get(r).ToString())];
          sum += vcol->NumericAt(r);
          count += 1;
        }
        std::vector<double> aligned(keys.size(), std::nan(""));
        for (std::size_t i = 0; i < keys.size(); ++i) {
          auto it = agg.find(NormalizeEntityName(keys[i]));
          if (it != agg.end() && it->second.second > 0) {
            aligned[i] = it->second.first / it->second.second;
          }
        }
        Candidate cand{table::Column::FromDoubles(c.value_column, aligned),
                       {},
                       0.0};
        cand.info.name = c.value_column;
        cand.info.source = src.name();
        score_relevance(aligned, &cand.info.corr_with_exposure,
                        &cand.info.corr_with_outcome, &cand.relevance,
                        &cand.significant);
        candidates.push_back(std::move(cand));
      }
      return Status::OK();
    };
    CDI_RETURN_IF_ERROR(add_lake_candidates(by_outcome));
    CDI_RETURN_IF_ERROR(add_lake_candidates(by_exposure));
  }

  // ---- Relevance filter + assembly. ----------------------------------------
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const Candidate& a, const Candidate& b) {
                     return a.relevance > b.relevance;
                   });
  int kept = 0;
  for (auto& cand : candidates) {
    if (cand.relevance < options_.min_relevance || !cand.significant) {
      cand.info.kept = false;
      cand.info.drop_reason = "irrelevant";
    } else if (options_.max_attributes >= 0 &&
               kept >= options_.max_attributes) {
      cand.info.kept = false;
      cand.info.drop_reason = "attribute-budget";
    } else if (result.augmented.HasColumn(cand.info.name)) {
      cand.info.kept = false;
      cand.info.drop_reason = "duplicate-name";
    } else {
      CDI_RETURN_IF_ERROR(result.augmented.AddColumn(std::move(cand.column)));
      ++kept;
    }
    result.attributes.push_back(std::move(cand.info));
  }
  return result;
}

}  // namespace cdi::core
