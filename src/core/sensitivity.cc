#include "core/sensitivity.h"

#include <algorithm>
#include <cmath>

namespace cdi::core {

double EValueForRiskRatio(double rr) {
  if (rr < 1.0) rr = rr > 0 ? 1.0 / rr : 1.0;
  if (rr <= 1.0) return 1.0;
  return rr + std::sqrt(rr * (rr - 1.0));
}

double ConfoundingBiasBound(double rr_eu, double rr_uo) {
  rr_eu = std::max(rr_eu, 1.0);
  rr_uo = std::max(rr_uo, 1.0);
  const double denom = rr_eu + rr_uo - 1.0;
  return denom > 0 ? (rr_eu * rr_uo) / denom : 1.0;
}

SensitivityReport AnalyzeSensitivity(const EffectEstimate& estimate) {
  SensitivityReport report;
  // Standardized mean difference -> risk ratio (VanderWeele's d-to-RR
  // conversion, RR ≈ exp(0.91 d)).
  report.risk_ratio = std::exp(0.91 * std::fabs(estimate.effect));
  report.e_value = EValueForRiskRatio(report.risk_ratio);
  report.bias_bound_at_2x = ConfoundingBiasBound(2.0, 2.0);
  return report;
}

}  // namespace cdi::core
