#include "core/cdag.h"

#include <algorithm>

namespace cdi::core {

Result<ClusterDag> ClusterDag::Create(
    const std::map<std::string, std::vector<std::string>>& members,
    const std::string& exposure_cluster, const std::string& outcome_cluster) {
  ClusterDag out;
  for (const auto& [name, attrs] : members) {
    if (name.empty()) return Status::InvalidArgument("empty cluster name");
    if (attrs.empty()) {
      return Status::InvalidArgument("cluster '" + name + "' has no members");
    }
    CDI_ASSIGN_OR_RETURN(graph::NodeId id, out.graph_.AddNode(name));
    (void)id;
    for (const auto& a : attrs) {
      if (!out.attr_to_cluster_.emplace(a, name).second) {
        return Status::InvalidArgument("attribute '" + a +
                                       "' in multiple clusters");
      }
    }
  }
  auto check_singleton = [&](const std::string& c) -> Status {
    auto it = members.find(c);
    if (it == members.end()) {
      return Status::InvalidArgument("no cluster '" + c + "'");
    }
    if (it->second.size() != 1) {
      return Status::InvalidArgument("cluster '" + c +
                                     "' must be a singleton");
    }
    return Status::OK();
  };
  CDI_RETURN_IF_ERROR(check_singleton(exposure_cluster));
  CDI_RETURN_IF_ERROR(check_singleton(outcome_cluster));
  out.members_ = members;
  out.exposure_cluster_ = exposure_cluster;
  out.outcome_cluster_ = outcome_cluster;
  out.exposure_attribute_ = members.at(exposure_cluster)[0];
  out.outcome_attribute_ = members.at(outcome_cluster)[0];
  return out;
}

Result<std::vector<std::string>> ClusterDag::MembersOf(
    const std::string& cluster) const {
  auto it = members_.find(cluster);
  if (it == members_.end()) {
    return Status::NotFound("no cluster '" + cluster + "'");
  }
  return it->second;
}

Result<std::string> ClusterDag::ClusterOf(const std::string& attribute) const {
  auto it = attr_to_cluster_.find(attribute);
  if (it == attr_to_cluster_.end()) {
    return Status::NotFound("no attribute '" + attribute + "'");
  }
  return it->second;
}

std::set<std::string> ClusterDag::MediatorClusters() const {
  auto r = MediatorClustersBetween(exposure_cluster_, outcome_cluster_);
  return r.ok() ? *r : std::set<std::string>{};
}

std::set<std::string> ClusterDag::ConfounderClusters() const {
  auto r = ConfounderClustersBetween(exposure_cluster_, outcome_cluster_);
  return r.ok() ? *r : std::set<std::string>{};
}

Result<std::set<std::string>> ClusterDag::MediatorClustersBetween(
    const std::string& from, const std::string& to) const {
  CDI_ASSIGN_OR_RETURN(graph::NodeId t, graph_.NodeIdOf(from));
  CDI_ASSIGN_OR_RETURN(graph::NodeId o, graph_.NodeIdOf(to));
  if (t == o) return Status::InvalidArgument("from == to");
  std::set<std::string> out;
  for (graph::NodeId v : graph_.NodesOnDirectedPaths(t, o)) {
    out.insert(graph_.NodeName(v));
  }
  return out;
}

Result<std::set<std::string>> ClusterDag::ConfounderClustersBetween(
    const std::string& from, const std::string& to) const {
  CDI_ASSIGN_OR_RETURN(graph::NodeId t, graph_.NodeIdOf(from));
  CDI_ASSIGN_OR_RETURN(graph::NodeId o, graph_.NodeIdOf(to));
  if (t == o) return Status::InvalidArgument("from == to");
  std::set<std::string> out;
  const auto anc_t = graph_.Ancestors(t);
  const auto anc_o = graph_.Ancestors(o);
  for (graph::NodeId v : anc_t) {
    if (v != t && v != o && anc_o.count(v) > 0) {
      out.insert(graph_.NodeName(v));
    }
  }
  return out;
}

Result<std::vector<std::string>> ClusterDag::TotalEffectAdjustmentFor(
    const std::string& from, const std::string& to) const {
  CDI_ASSIGN_OR_RETURN(std::set<std::string> clusters,
                       ConfounderClustersBetween(from, to));
  std::vector<std::string> out;
  for (const auto& c : clusters) {
    auto it = members_.find(c);
    if (it == members_.end()) continue;
    for (const auto& a : it->second) out.push_back(a);
  }
  std::sort(out.begin(), out.end());
  return out;
}

Result<std::vector<std::string>> ClusterDag::DirectEffectAdjustmentFor(
    const std::string& from, const std::string& to) const {
  CDI_ASSIGN_OR_RETURN(std::set<std::string> clusters,
                       MediatorClustersBetween(from, to));
  CDI_ASSIGN_OR_RETURN(std::set<std::string> conf,
                       ConfounderClustersBetween(from, to));
  clusters.insert(conf.begin(), conf.end());
  clusters.erase(from);
  clusters.erase(to);
  std::vector<std::string> out;
  for (const auto& c : clusters) {
    auto it = members_.find(c);
    if (it == members_.end()) continue;
    for (const auto& a : it->second) out.push_back(a);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::string> ClusterDag::DirectEffectAdjustmentAttributes() const {
  std::set<std::string> clusters = MediatorClusters();
  const auto conf = ConfounderClusters();
  clusters.insert(conf.begin(), conf.end());
  clusters.erase(exposure_cluster_);
  clusters.erase(outcome_cluster_);
  std::vector<std::string> out;
  for (const auto& c : clusters) {
    auto it = members_.find(c);
    if (it == members_.end()) continue;
    for (const auto& a : it->second) out.push_back(a);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::string> ClusterDag::TotalEffectAdjustmentAttributes() const {
  std::vector<std::string> out;
  for (const auto& c : ConfounderClusters()) {
    auto it = members_.find(c);
    if (it == members_.end()) continue;
    for (const auto& a : it->second) out.push_back(a);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace cdi::core
