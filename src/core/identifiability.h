#ifndef CDI_CORE_IDENTIFIABILITY_H_
#define CDI_CORE_IDENTIFIABILITY_H_

#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/cdag.h"
#include "graph/digraph.h"

namespace cdi::core {

/// §3.3 "Identifiability" — tools for the paper's open question: when is a
/// C-DAG faithful enough to the full attribute-level DAG that adjustment
/// sets read off the C-DAG are correct?

/// The cluster-level graph *induced* by an attribute-level DAG under a
/// clustering: edge Ci -> Cj iff some attribute edge a -> b exists with
/// a in Ci, b in Cj (i != j). This is the C-DAG an omniscient builder
/// would output (Anand et al. 2022's admissible C-DAG).
Result<graph::Digraph> InduceClusterGraph(
    const graph::Digraph& attribute_dag,
    const std::map<std::string, std::vector<std::string>>& members);

/// Report of a C-DAG checked against the attribute-level ground truth.
struct CdagConsistencyReport {
  /// Induced cluster edges missing from the C-DAG (threaten completeness:
  /// a real confounding path may be invisible in the C-DAG).
  std::vector<std::pair<std::string, std::string>> missing_edges;
  /// C-DAG edges with no attribute-level support (false claims).
  std::vector<std::pair<std::string, std::string>> unsupported_edges;
  /// True when the clustering itself is admissible: the induced cluster
  /// graph is acyclic (clusters do not mix ancestors with descendants in a
  /// way that creates cluster-level cycles).
  bool clustering_admissible = false;
  /// Cluster-level d-separations asserted by the C-DAG that fail at the
  /// attribute level (each entry: "A _||_ B | {S}"): these are exactly the
  /// cases where reading an adjustment set off the C-DAG is unsafe.
  std::vector<std::string> separation_violations;

  bool fully_consistent() const {
    return missing_edges.empty() && unsupported_edges.empty() &&
           clustering_admissible && separation_violations.empty();
  }
};

/// Checks a (possibly learned) C-DAG against the true attribute DAG:
/// edge completeness/soundness, clustering admissibility, and — up to
/// `max_separation_checks` sampled queries — whether cluster-level
/// d-separations hold attribute-wise (every pair of member attributes
/// separated given all member attributes of the conditioning clusters).
Result<CdagConsistencyReport> CheckCdagConsistency(
    const graph::Digraph& attribute_dag, const ClusterDag& cdag,
    std::size_t max_separation_checks = 200);

}  // namespace cdi::core

#endif  // CDI_CORE_IDENTIFIABILITY_H_
