#include "core/pipeline.h"

#include "common/hash.h"

namespace cdi::core {

namespace {

/// Validation shared by Run: every referenced column must exist, and the
/// causal question must be well-posed. Returning a descriptive error here
/// beats the alternatives observed before this check existed — a crash in
/// the extractor or a silently empty result.
Status ValidateRunInputs(const table::Table& input,
                         const std::string& entity_column,
                         const std::string& exposure,
                         const std::string& outcome) {
  const auto describe = [&input](const std::string& role,
                                 const std::string& name) {
    std::string msg = role + " column '" + name +
                      "' not found in input table";
    if (!input.name().empty()) msg += " '" + input.name() + "'";
    msg += " (columns:";
    for (const auto& c : input.ColumnNames()) msg += " " + c;
    msg += ")";
    return Status::InvalidArgument(std::move(msg));
  };
  if (input.num_cols() == 0) {
    return Status::InvalidArgument("input table has no columns");
  }
  if (!input.HasColumn(entity_column)) {
    return describe("entity", entity_column);
  }
  if (!input.HasColumn(exposure)) return describe("exposure", exposure);
  if (!input.HasColumn(outcome)) return describe("outcome", outcome);
  if (exposure == outcome) {
    return Status::InvalidArgument(
        "exposure and outcome must be distinct columns (both '" + exposure +
        "')");
  }
  if (exposure == entity_column || outcome == entity_column) {
    return Status::InvalidArgument(
        "entity column '" + entity_column +
        "' cannot double as the exposure or outcome");
  }
  return Status::OK();
}

}  // namespace

std::uint64_t PipelineOptionsFingerprint(const PipelineOptions& options) {
  // Bump the version tag when a semantic field is added/removed/reordered
  // so stale persisted keys (if any) cannot alias new ones.
  Fnv1a h("cdi::core::PipelineOptions/v1");

  const ExtractorOptions& e = options.extractor;
  h.Mix(e.follow_kg_links)
      .Mix(e.min_containment)
      .Mix(e.relevance_alpha)
      .Mix(e.min_relevance)
      .Mix(e.nonlinear_relevance)
      .Mix(std::int64_t{e.max_attributes});

  const OrganizerOptions& o = options.organizer;
  h.Mix(o.fd_correlation_threshold)
      .Mix(o.drop_string_fds)
      .Mix(o.outlier_robust_z)
      .Mix(o.selection_bias_alpha)
      .Mix(o.enable_ipw)
      .Mix(o.max_ipw_weight);

  const CdagBuilderOptions& b = options.builder;
  h.Mix(static_cast<std::int64_t>(b.inference))
      .Mix(b.varclus.second_eigenvalue_threshold)
      .Mix(std::int64_t{b.varclus.max_clusters})
      .Mix(std::int64_t{b.varclus.min_clusters})
      .Mix(std::int64_t{b.varclus.reassign_passes})
      .Mix(b.alpha)
      .Mix(std::int64_t{b.max_cond_size})
      .Mix(b.prune_p_threshold)
      .Mix(b.augment_from_data)
      .Mix(b.augment_alpha)
      .Mix(b.prune_requires_marginal_dependence);
  // The warm-start seed is semantic: a seeded discovery run can converge
  // to a different graph than a cold one, so plans/results built from
  // different seeds must never share a cache key.
  h.Mix(static_cast<std::uint64_t>(b.warm_start_edges.size()));
  for (const auto& [from, to] : b.warm_start_edges) h.Mix(from).Mix(to);

  const discovery::DiscoveryOptions& d = b.discovery;
  h.Mix(d.alpha)
      .Mix(std::int64_t{d.max_cond_size})
      .Mix(d.ges.penalty_discount)
      .Mix(std::int64_t{d.ges.max_parents})
      .Mix(d.lingam.prune_alpha)
      .Mix(d.lingam.min_abs_coefficient);
  // Excluded on purpose: options.num_threads, b.num_threads,
  // d.num_threads, d.ges.num_threads (bitwise-deterministic parallelism)
  // and d.use_ci_cache (pure memoization). See the header comment.

  return h.Digest();
}

Result<PipelineResult> Pipeline::Run(const table::Table& input,
                                     const std::string& entity_column,
                                     const std::string& exposure,
                                     const std::string& outcome,
                                     const CancelToken* cancel) const {
  CDI_RETURN_IF_ERROR(ValidateRunInputs(input, entity_column, exposure,
                                        outcome));

  PipelineResult result;
  Stopwatch total;

  // Stage 1: Knowledge Extractor.
  CDI_RETURN_IF_ERROR(CheckCancel(cancel));
  {
    Stopwatch sw;
    KnowledgeExtractor extractor(kg_, lake_, options_.extractor);
    CDI_ASSIGN_OR_RETURN(result.extraction,
                         extractor.Extract(input, entity_column, exposure,
                                           outcome, &result.external));
    result.timings.extract_seconds = sw.ElapsedSeconds();
  }

  // Stage 2: Data Organizer.
  CDI_RETURN_IF_ERROR(CheckCancel(cancel));
  {
    Stopwatch sw;
    DataOrganizer organizer(options_.organizer);
    CDI_ASSIGN_OR_RETURN(
        result.organization,
        organizer.Organize(result.extraction.augmented, entity_column,
                           exposure, outcome));
    result.timings.organize_seconds = sw.ElapsedSeconds();
  }

  // Stage 3: C-DAG Builder.
  CDI_RETURN_IF_ERROR(CheckCancel(cancel));
  {
    Stopwatch sw;
    CdagBuilderOptions builder_options = options_.builder;
    if (options_.num_threads > 1) {
      builder_options.num_threads = options_.num_threads;
      builder_options.discovery.num_threads = options_.num_threads;
    }
    CdagBuilder builder(oracle_, topics_, builder_options);
    CDI_ASSIGN_OR_RETURN(
        result.build,
        builder.Build(result.organization.organized, entity_column, exposure,
                      outcome, result.organization.row_weights,
                      &result.external));
    result.timings.build_seconds = sw.ElapsedSeconds();
  }

  // Downstream analysis: the effect estimates the analyst reads off.
  CDI_RETURN_IF_ERROR(CheckCancel(cancel));
  {
    const auto& cdag = result.build.cdag;
    CDI_ASSIGN_OR_RETURN(
        result.direct_effect,
        EstimateEffect(result.organization.organized, exposure, outcome,
                       cdag.DirectEffectAdjustmentAttributes(),
                       result.organization.row_weights));
    CDI_ASSIGN_OR_RETURN(
        result.total_effect,
        EstimateEffect(result.organization.organized, exposure, outcome,
                       cdag.TotalEffectAdjustmentAttributes(),
                       result.organization.row_weights));
  }

  result.direct_effect_sensitivity = AnalyzeSensitivity(result.direct_effect);
  result.timings.total_seconds = total.ElapsedSeconds();
  return result;
}

}  // namespace cdi::core
