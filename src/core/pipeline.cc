#include "core/pipeline.h"

namespace cdi::core {

Result<PipelineResult> Pipeline::Run(const table::Table& input,
                                     const std::string& entity_column,
                                     const std::string& exposure,
                                     const std::string& outcome) const {
  PipelineResult result;
  Stopwatch total;

  // Stage 1: Knowledge Extractor.
  {
    Stopwatch sw;
    KnowledgeExtractor extractor(kg_, lake_, options_.extractor);
    CDI_ASSIGN_OR_RETURN(result.extraction,
                         extractor.Extract(input, entity_column, exposure,
                                           outcome, &result.external));
    result.timings.extract_seconds = sw.ElapsedSeconds();
  }

  // Stage 2: Data Organizer.
  {
    Stopwatch sw;
    DataOrganizer organizer(options_.organizer);
    CDI_ASSIGN_OR_RETURN(
        result.organization,
        organizer.Organize(result.extraction.augmented, entity_column,
                           exposure, outcome));
    result.timings.organize_seconds = sw.ElapsedSeconds();
  }

  // Stage 3: C-DAG Builder.
  {
    Stopwatch sw;
    CdagBuilderOptions builder_options = options_.builder;
    if (options_.num_threads > 1) {
      builder_options.num_threads = options_.num_threads;
      builder_options.discovery.num_threads = options_.num_threads;
    }
    CdagBuilder builder(oracle_, topics_, builder_options);
    CDI_ASSIGN_OR_RETURN(
        result.build,
        builder.Build(result.organization.organized, entity_column, exposure,
                      outcome, result.organization.row_weights,
                      &result.external));
    result.timings.build_seconds = sw.ElapsedSeconds();
  }

  // Downstream analysis: the effect estimates the analyst reads off.
  {
    const auto& cdag = result.build.cdag;
    CDI_ASSIGN_OR_RETURN(
        result.direct_effect,
        EstimateEffect(result.organization.organized, exposure, outcome,
                       cdag.DirectEffectAdjustmentAttributes(),
                       result.organization.row_weights));
    CDI_ASSIGN_OR_RETURN(
        result.total_effect,
        EstimateEffect(result.organization.organized, exposure, outcome,
                       cdag.TotalEffectAdjustmentAttributes(),
                       result.organization.row_weights));
  }

  result.direct_effect_sensitivity = AnalyzeSensitivity(result.direct_effect);
  result.timings.total_seconds = total.ElapsedSeconds();
  return result;
}

}  // namespace cdi::core
