#ifndef CDI_CORE_VARCLUS_H_
#define CDI_CORE_VARCLUS_H_

#include <string>
#include <vector>

#include "common/span.h"
#include "common/status.h"
#include "stats/matrix.h"

namespace cdi {
class ThreadPool;
}  // namespace cdi

namespace cdi::core {

struct VarClusOptions {
  /// A cluster splits while the second eigenvalue of its correlation
  /// submatrix is at least this (SAS PROC VARCLUS's MAXEIGEN criterion).
  double second_eigenvalue_threshold = 1.0;
  /// Optional upper bound on the number of clusters; -1 = unbounded.
  int max_clusters = -1;
  /// Optional lower bound: keep splitting (largest second eigenvalue
  /// first) until at least this many clusters exist, ignoring the
  /// eigenvalue threshold. -1 disables. The paper "picked our current best
  /// configurations" — benchmark harnesses use this to fix granularity.
  int min_clusters = -1;
  /// Reassignment passes after each split (the NCS phase).
  int reassign_passes = 2;
};

struct VarClusResult {
  /// Variable-name clusters, each sorted by input order.
  std::vector<std::vector<std::string>> clusters;
  /// Second eigenvalue of each final cluster (0 for singletons).
  std::vector<double> second_eigenvalues;
};

/// Divisive principal-component variable clustering in the style of SAS
/// PROC VARCLUS (Sarle 1990) — the algorithm CATER uses to group related
/// attributes (§4). Splits the cluster with the largest second eigenvalue
/// along its first two principal components, then reassigns variables to
/// whichever split-half's first component they correlate with most.
///
/// `columns` is column-major numeric data (NaN allowed; correlations use
/// complete rows pairwise through the full correlation matrix). `pool`
/// parallelizes the correlation pass (bitwise-deterministic; null =
/// serial).
Result<VarClusResult> RunVarClus(
    const std::vector<DoubleSpan>& columns,
    const std::vector<std::string>& names,
    const VarClusOptions& options = VarClusOptions(),
    ThreadPool* pool = nullptr);

/// Clustering over a precomputed correlation matrix (e.g. from a shared
/// stats::SufficientStats instance) — VARCLUS never re-reads raw rows, so
/// this is the whole algorithm; RunVarClus is this plus one correlation
/// pass. `corr` must be square with names.size() rows.
Result<VarClusResult> RunVarClusOnCorrelation(
    const stats::Matrix& corr, const std::vector<std::string>& names,
    const VarClusOptions& options = VarClusOptions());

}  // namespace cdi::core

#endif  // CDI_CORE_VARCLUS_H_
