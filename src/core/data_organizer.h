#ifndef CDI_CORE_DATA_ORGANIZER_H_
#define CDI_CORE_DATA_ORGANIZER_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/fd.h"
#include "table/table.h"

namespace cdi::core {

struct OrganizerOptions {
  /// Numeric attributes whose |correlation| with the exposure or outcome
  /// reaches this are treated as functionally dependent (they violate the
  /// strict-positivity assumption) and discarded, following Salimi et al.
  double fd_correlation_threshold = 0.995;
  /// Drop string attributes that functionally determine the exposure
  /// (each value maps to a single exposure value).
  bool drop_string_fds = true;
  /// Winsorize numeric cells whose robust z-score (median/MAD) exceeds
  /// this; <= 0 disables outlier handling.
  double outlier_robust_z = 4.0;
  /// Significance level for the missingness–exposure/outcome association
  /// test that flags selection-bias risk.
  double selection_bias_alpha = 0.05;
  /// Compute inverse-probability weights for rows when selection bias is
  /// detected.
  bool enable_ipw = true;
  /// IPW weights are clipped to [1, max_ipw_weight].
  double max_ipw_weight = 10.0;
};

/// Missingness diagnosis for one attribute.
struct MissingnessReport {
  std::string attribute;
  double missing_fraction = 0.0;
  /// p-value of association between the missingness indicator and the
  /// exposure (smaller = more worrying).
  double p_vs_exposure = 1.0;
  double p_vs_outcome = 1.0;
  bool selection_bias_risk = false;
};

struct OrganizerResult {
  /// The cleaned, augmented table.
  table::Table organized;
  /// Attributes discarded for functional dependencies.
  std::vector<std::string> dropped_fd_attributes;
  /// Attributes whose outliers were winsorized (with cell counts).
  std::map<std::string, std::size_t> winsorized_cells;
  std::vector<MissingnessReport> missingness;
  /// Approximate single-attribute FDs discovered in the organized table
  /// (diagnostic; only exact FDs with the exposure/outcome trigger drops).
  std::vector<FdCandidate> approximate_fds;
  /// Per-row IPW weights (all 1.0 when no selection bias was detected or
  /// IPW is disabled). Length == organized.num_rows().
  std::vector<double> row_weights;
  std::size_t duplicate_rows_removed = 0;
};

/// §3.2 — The Data Organizer. Takes the extractor's augmented table and
/// repairs the quality issues that would bias causal inference:
/// functional dependencies with the exposure/outcome (positivity
/// violations), duplicate rows, gross outliers, and
/// missing-not-at-random extraction (selection bias), for which it fits a
/// logistic propensity model of row completeness and emits
/// inverse-probability weights.
class DataOrganizer {
 public:
  explicit DataOrganizer(OrganizerOptions options = OrganizerOptions())
      : options_(options) {}

  Result<OrganizerResult> Organize(const table::Table& augmented,
                                   const std::string& entity_column,
                                   const std::string& exposure,
                                   const std::string& outcome) const;

 private:
  OrganizerOptions options_;
};

/// Exact functional dependency check: does every distinct value of `lhs`
/// map to at most one value of `rhs`? Null lhs values are ignored.
Result<bool> HoldsFd(const table::Table& t, const std::string& lhs,
                     const std::string& rhs);

}  // namespace cdi::core

#endif  // CDI_CORE_DATA_ORGANIZER_H_
