#include "core/varclus.h"

#include <algorithm>
#include <cmath>

#include "stats/correlation.h"
#include "stats/linalg.h"

namespace cdi::core {

namespace {

using Cluster = std::vector<std::size_t>;

/// Eigendecomposition of a cluster's correlation submatrix.
Result<stats::EigenDecomposition> ClusterEigen(const stats::Matrix& corr,
                                               const Cluster& cluster) {
  return stats::JacobiEigen(corr.Submatrix(cluster));
}

double SecondEigenvalue(const stats::Matrix& corr, const Cluster& cluster) {
  if (cluster.size() < 2) return 0.0;
  auto eig = ClusterEigen(corr, cluster);
  if (!eig.ok() || eig->values.size() < 2) return 0.0;
  return eig->values[1];
}

/// Squared correlation of variable `v` with the first principal component
/// of `cluster`: r^2 = (w . R[v, cluster])^2 / lambda1.
double SquaredPcCorrelation(const stats::Matrix& corr, const Cluster& cluster,
                            std::size_t v) {
  if (cluster.empty()) return 0.0;
  if (cluster.size() == 1) {
    const double r = corr(v, cluster[0]);
    return r * r;
  }
  auto eig = ClusterEigen(corr, cluster);
  if (!eig.ok() || eig->values.empty() || eig->values[0] <= 1e-12) return 0.0;
  double dot = 0;
  for (std::size_t k = 0; k < cluster.size(); ++k) {
    dot += eig->vectors(k, 0) * corr(v, cluster[k]);
  }
  return dot * dot / eig->values[0];
}

/// Splits a cluster along its first two principal components; returns
/// false when no meaningful split exists.
bool SplitCluster(const stats::Matrix& corr, const Cluster& cluster,
                  int reassign_passes, Cluster* a, Cluster* b) {
  if (cluster.size() < 2) return false;
  auto eig = ClusterEigen(corr, cluster);
  if (!eig.ok() || eig->values.size() < 2) return false;
  a->clear();
  b->clear();
  const double l1 = std::max(eig->values[0], 1e-12);
  const double l2 = std::max(eig->values[1], 1e-12);
  for (std::size_t k = 0; k < cluster.size(); ++k) {
    const double load1 = std::fabs(eig->vectors(k, 0)) * std::sqrt(l1);
    const double load2 = std::fabs(eig->vectors(k, 1)) * std::sqrt(l2);
    (load1 >= load2 ? a : b)->push_back(cluster[k]);
  }
  if (a->empty() || b->empty()) {
    // Degenerate loading pattern: peel off the variable dominating PC2.
    a->clear();
    b->clear();
    std::size_t peel = 0;
    double best = -1;
    for (std::size_t k = 0; k < cluster.size(); ++k) {
      const double w = std::fabs(eig->vectors(k, 1));
      if (w > best) {
        best = w;
        peel = k;
      }
    }
    for (std::size_t k = 0; k < cluster.size(); ++k) {
      (k == peel ? b : a)->push_back(cluster[k]);
    }
  }
  // NCS reassignment: move each variable to the half whose first PC it
  // correlates with most.
  for (int pass = 0; pass < reassign_passes; ++pass) {
    bool moved = false;
    Cluster all = *a;
    all.insert(all.end(), b->begin(), b->end());
    for (std::size_t v : all) {
      Cluster a_without = *a;
      Cluster b_without = *b;
      a_without.erase(std::remove(a_without.begin(), a_without.end(), v),
                      a_without.end());
      b_without.erase(std::remove(b_without.begin(), b_without.end(), v),
                      b_without.end());
      const bool in_a =
          std::find(a->begin(), a->end(), v) != a->end();
      if ((in_a && a->size() <= 1) || (!in_a && b->size() <= 1)) continue;
      const double ra = SquaredPcCorrelation(corr, a_without, v);
      const double rb = SquaredPcCorrelation(corr, b_without, v);
      const bool should_be_a = ra >= rb;
      if (should_be_a && !in_a) {
        b->erase(std::remove(b->begin(), b->end(), v), b->end());
        a->push_back(v);
        moved = true;
      } else if (!should_be_a && in_a) {
        a->erase(std::remove(a->begin(), a->end(), v), a->end());
        b->push_back(v);
        moved = true;
      }
    }
    if (!moved) break;
  }
  std::sort(a->begin(), a->end());
  std::sort(b->begin(), b->end());
  return !a->empty() && !b->empty();
}

}  // namespace

Result<VarClusResult> RunVarClus(
    const std::vector<DoubleSpan>& columns,
    const std::vector<std::string>& names, const VarClusOptions& options,
    ThreadPool* pool) {
  if (columns.size() != names.size()) {
    return Status::InvalidArgument("columns/names size mismatch");
  }
  if (columns.empty()) return Status::InvalidArgument("no variables");

  stats::NumericDataset ds;
  ds.columns = columns;
  CDI_ASSIGN_OR_RETURN(stats::Matrix corr, stats::CorrelationMatrix(ds, pool));
  return RunVarClusOnCorrelation(corr, names, options);
}

Result<VarClusResult> RunVarClusOnCorrelation(
    const stats::Matrix& corr, const std::vector<std::string>& names,
    const VarClusOptions& options) {
  if (corr.rows() != corr.cols() || corr.rows() != names.size()) {
    return Status::InvalidArgument("correlation/names size mismatch");
  }
  if (names.empty()) return Status::InvalidArgument("no variables");

  std::vector<Cluster> clusters;
  {
    Cluster all(corr.rows());
    for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
    clusters.push_back(std::move(all));
  }

  const std::size_t max_clusters =
      options.max_clusters < 0 ? corr.rows()
                               : static_cast<std::size_t>(options.max_clusters);
  const std::size_t min_clusters =
      options.min_clusters < 0 ? 1
                               : static_cast<std::size_t>(options.min_clusters);

  for (;;) {
    if (clusters.size() >= max_clusters) break;
    // Candidate: cluster with the largest second eigenvalue.
    double best_eig = -1;
    std::size_t best = 0;
    for (std::size_t c = 0; c < clusters.size(); ++c) {
      const double e = SecondEigenvalue(corr, clusters[c]);
      if (e > best_eig) {
        best_eig = e;
        best = c;
      }
    }
    const bool need_more = clusters.size() < min_clusters;
    if (!need_more && best_eig < options.second_eigenvalue_threshold) break;
    if (best_eig <= 1e-9 && !need_more) break;
    if (clusters[best].size() < 2) break;  // nothing splittable remains
    Cluster a, b;
    if (!SplitCluster(corr, clusters[best], options.reassign_passes, &a,
                      &b)) {
      break;
    }
    clusters.erase(clusters.begin() + static_cast<std::ptrdiff_t>(best));
    clusters.push_back(std::move(a));
    clusters.push_back(std::move(b));
  }

  // Global reassignment (NCS over all clusters): fix local minima of the
  // divisive phase by moving each variable to the cluster whose first
  // principal component it correlates with most. Own-cluster fit is
  // computed *excluding* the variable so a bad merge can be detected;
  // moves that would empty a cluster are skipped (the cluster count is
  // part of the requested configuration).
  for (int pass = 0; pass < 4; ++pass) {
    bool moved = false;
    for (std::size_t v = 0; v < corr.rows(); ++v) {
      std::size_t home = 0;
      for (std::size_t c = 0; c < clusters.size(); ++c) {
        if (std::find(clusters[c].begin(), clusters[c].end(), v) !=
            clusters[c].end()) {
          home = c;
        }
      }
      if (clusters[home].size() <= 1) continue;  // would empty the cluster
      Cluster home_without = clusters[home];
      home_without.erase(
          std::remove(home_without.begin(), home_without.end(), v),
          home_without.end());
      double best_r2 = SquaredPcCorrelation(corr, home_without, v);
      std::size_t best = home;
      for (std::size_t c = 0; c < clusters.size(); ++c) {
        if (c == home) continue;
        const double r2 = SquaredPcCorrelation(corr, clusters[c], v);
        if (r2 > best_r2 + 1e-9) {
          best_r2 = r2;
          best = c;
        }
      }
      if (best != home) {
        clusters[home].erase(
            std::remove(clusters[home].begin(), clusters[home].end(), v),
            clusters[home].end());
        clusters[best].push_back(v);
        std::sort(clusters[best].begin(), clusters[best].end());
        moved = true;
      }
    }
    if (!moved) break;
  }

  // Singleton repair: the divisive phase can strand two highly-correlated
  // variables in separate singleton clusters (it can split but never
  // merge). A singleton that loads at r^2 >= 0.5 on another cluster's
  // first PC joins it; the freed cluster budget re-splits the cluster
  // with the largest second eigenvalue.
  for (int round = 0; round < 3; ++round) {
    bool merged = false;
    for (std::size_t c = 0; c < clusters.size(); ++c) {
      if (clusters[c].size() != 1) continue;
      const std::size_t v = clusters[c][0];
      double best_r2 = 0.5;
      std::size_t best = c;
      for (std::size_t d = 0; d < clusters.size(); ++d) {
        if (d == c) continue;
        const double r2 = SquaredPcCorrelation(corr, clusters[d], v);
        if (r2 > best_r2) {
          best_r2 = r2;
          best = d;
        }
      }
      if (best != c) {
        clusters[best].push_back(v);
        std::sort(clusters[best].begin(), clusters[best].end());
        clusters.erase(clusters.begin() + static_cast<std::ptrdiff_t>(c));
        merged = true;
        break;
      }
    }
    if (!merged) break;
    // Restore the requested cluster count by splitting the worst cluster.
    while (clusters.size() < min_clusters) {
      double best_eig = -1;
      std::size_t best = 0;
      for (std::size_t c = 0; c < clusters.size(); ++c) {
        const double e = SecondEigenvalue(corr, clusters[c]);
        if (e > best_eig) {
          best_eig = e;
          best = c;
        }
      }
      Cluster a, b;
      if (best_eig <= 1e-9 ||
          !SplitCluster(corr, clusters[best], options.reassign_passes, &a,
                        &b)) {
        break;
      }
      clusters.erase(clusters.begin() + static_cast<std::ptrdiff_t>(best));
      clusters.push_back(std::move(a));
      clusters.push_back(std::move(b));
    }
  }

  // Deterministic output order: by smallest member index.
  std::sort(clusters.begin(), clusters.end(),
            [](const Cluster& x, const Cluster& y) { return x[0] < y[0]; });

  VarClusResult out;
  for (const auto& c : clusters) {
    std::vector<std::string> member_names;
    for (std::size_t v : c) member_names.push_back(names[v]);
    out.clusters.push_back(std::move(member_names));
    out.second_eigenvalues.push_back(SecondEigenvalue(corr, c));
  }
  return out;
}

}  // namespace cdi::core
