#ifndef CDI_CORE_CDAG_H_
#define CDI_CORE_CDAG_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "graph/digraph.h"

namespace cdi::core {

/// A cluster causal DAG (C-DAG, Anand et al. 2022): nodes are *clusters of
/// attributes* and edges are causal relationships between clusters. The
/// exposure and outcome are always singleton clusters, so cluster-level
/// identification (mediators, backdoor sets) answers the attribute-level
/// causal question.
class ClusterDag {
 public:
  ClusterDag() = default;

  /// Builds a C-DAG skeleton with the given clusters (no edges yet).
  /// Cluster names must be unique and non-empty; `exposure` / `outcome`
  /// must name singleton clusters present in `members`.
  static Result<ClusterDag> Create(
      const std::map<std::string, std::vector<std::string>>& members,
      const std::string& exposure_cluster, const std::string& outcome_cluster);

  /// Underlying directed graph over cluster names. May briefly hold cycles
  /// while a builder repairs oracle output; IsAcyclic() reports the state.
  graph::Digraph& mutable_graph() { return graph_; }
  const graph::Digraph& graph() const { return graph_; }

  const std::map<std::string, std::vector<std::string>>& members() const {
    return members_;
  }

  /// Member attributes of one cluster.
  Result<std::vector<std::string>> MembersOf(const std::string& cluster) const;

  /// The cluster containing an attribute.
  Result<std::string> ClusterOf(const std::string& attribute) const;

  const std::string& exposure_cluster() const { return exposure_cluster_; }
  const std::string& outcome_cluster() const { return outcome_cluster_; }

  /// The exposure/outcome *attributes* (sole members of their clusters).
  const std::string& exposure_attribute() const { return exposure_attribute_; }
  const std::string& outcome_attribute() const { return outcome_attribute_; }

  std::size_t num_clusters() const { return graph_.num_nodes(); }
  std::size_t num_edges() const { return graph_.num_edges(); }

  /// Mediator clusters: on a directed path exposure -> ... -> outcome.
  /// Works on cyclic claim graphs too (pure reachability).
  std::set<std::string> MediatorClusters() const;

  /// Confounder clusters: ancestors of both exposure and outcome.
  std::set<std::string> ConfounderClusters() const;

  /// Attributes of all mediator clusters plus all confounder clusters —
  /// the adjustment set CATER hands to the direct-effect estimator.
  std::vector<std::string> DirectEffectAdjustmentAttributes() const;

  /// Attributes of a valid backdoor set for the *total* effect (confounder
  /// clusters).
  std::vector<std::string> TotalEffectAdjustmentAttributes() const;

  /// Multi-query support (one of §3.3's open questions: "whether a single
  /// C-DAG is sufficient to identify the adjustment sets for multiple
  /// cause-effect estimations"): the same identification primitives
  /// between *any* ordered pair of clusters, not just the exposure and
  /// outcome the C-DAG was built for.
  Result<std::set<std::string>> MediatorClustersBetween(
      const std::string& from, const std::string& to) const;
  Result<std::set<std::string>> ConfounderClustersBetween(
      const std::string& from, const std::string& to) const;
  /// Member attributes of the confounder clusters of (from, to) — a
  /// backdoor adjustment set for that pair's total effect.
  Result<std::vector<std::string>> TotalEffectAdjustmentFor(
      const std::string& from, const std::string& to) const;
  /// Member attributes of mediators + confounders of (from, to) — the
  /// adjustment set for that pair's controlled direct effect.
  Result<std::vector<std::string>> DirectEffectAdjustmentFor(
      const std::string& from, const std::string& to) const;

 private:
  graph::Digraph graph_;
  std::map<std::string, std::vector<std::string>> members_;
  std::map<std::string, std::string> attr_to_cluster_;
  std::string exposure_cluster_;
  std::string outcome_cluster_;
  std::string exposure_attribute_;
  std::string outcome_attribute_;
};

}  // namespace cdi::core

#endif  // CDI_CORE_CDAG_H_
