#ifndef CDI_CORE_PIPELINE_H_
#define CDI_CORE_PIPELINE_H_

#include <cstdint>
#include <string>

#include "common/cancellation.h"
#include "common/status.h"
#include "common/timer.h"
#include "core/cdag_builder.h"
#include "core/data_organizer.h"
#include "core/effect.h"
#include "core/knowledge_extractor.h"
#include "core/sensitivity.h"

namespace cdi::core {

/// Options for the full 3-stage CDI pipeline.
struct PipelineOptions {
  ExtractorOptions extractor;
  OrganizerOptions organizer;
  CdagBuilderOptions builder;
  /// Worker threads for the C-DAG Builder's CI-test stages (copied into
  /// `builder.num_threads`/`builder.discovery.num_threads` by Run). All
  /// parallel stages are bitwise-deterministic, so the pipeline output is
  /// identical at any thread count.
  int num_threads = 1;
};

/// Canonical 64-bit fingerprint of every *semantic* pipeline option — the
/// fields that can change what Run computes. Execution-strategy fields
/// (`num_threads` at every level, `discovery.use_ci_cache`) are excluded:
/// all parallel stages and the CI cache are bitwise-deterministic, so two
/// configurations differing only there produce identical results and must
/// share a result-cache entry. Stable across runs and platforms (explicit
/// FNV-1a over bit patterns, not std::hash).
std::uint64_t PipelineOptionsFingerprint(const PipelineOptions& options);

/// Wall-clock seconds per stage (actual compute on this machine).
struct StageTimings {
  double extract_seconds = 0.0;
  double organize_seconds = 0.0;
  double build_seconds = 0.0;
  double total_seconds = 0.0;
};

struct PipelineResult {
  ExtractionResult extraction;
  OrganizerResult organization;
  CdagBuildResult build;
  /// Direct-effect estimate implied by the constructed C-DAG.
  EffectEstimate direct_effect;
  /// Total-effect estimate (backdoor adjustment on identified confounders).
  EffectEstimate total_effect;
  /// How robust the direct-effect estimate is to a *remaining* unobserved
  /// confounder (§5: the C-DAG may be incomplete) — E-value analysis.
  SensitivityReport direct_effect_sensitivity;
  StageTimings timings;
  /// Simulated external-service latency (LLM, KG, lake); this — not the
  /// wall clock — is what corresponds to the paper's 645 s / 304 s
  /// end-to-end runtimes, which were dominated by GPT-3/DBpedia calls.
  LatencyMeter external;
};

/// End-to-end CDI pipeline (§3): Knowledge Extractor -> Data Organizer ->
/// C-DAG Builder, plus the downstream effect estimates an analyst would
/// compute from the result.
class Pipeline {
 public:
  Pipeline(const knowledge::KnowledgeGraph* kg,
           const knowledge::DataLake* lake,
           const knowledge::TextCausalOracle* oracle,
           const knowledge::TopicModel* topics,
           PipelineOptions options = PipelineOptions())
      : kg_(kg), lake_(lake), oracle_(oracle), topics_(topics),
        options_(options) {}

  /// Runs the three stages plus downstream effect estimation.
  ///
  /// Validates up front that `entity_column`, `exposure` and `outcome`
  /// exist in `input` and that exposure != outcome, returning a
  /// descriptive kInvalidArgument instead of crashing downstream.
  ///
  /// `cancel` (optional, borrowed; may be shared across threads) makes the
  /// run cooperatively cancellable: the token is polled at each stage
  /// boundary — before extraction, organization, C-DAG build and effect
  /// estimation — and the run returns the token's kCancelled /
  /// kDeadlineExceeded status at the first expired checkpoint. Work
  /// already done inside a stage is discarded; no partial result escapes.
  Result<PipelineResult> Run(const table::Table& input,
                             const std::string& entity_column,
                             const std::string& exposure,
                             const std::string& outcome,
                             const CancelToken* cancel = nullptr) const;

 private:
  const knowledge::KnowledgeGraph* kg_;
  const knowledge::DataLake* lake_;
  const knowledge::TextCausalOracle* oracle_;
  const knowledge::TopicModel* topics_;
  PipelineOptions options_;
};

}  // namespace cdi::core

#endif  // CDI_CORE_PIPELINE_H_
