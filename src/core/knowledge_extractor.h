#ifndef CDI_CORE_KNOWLEDGE_EXTRACTOR_H_
#define CDI_CORE_KNOWLEDGE_EXTRACTOR_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "common/timer.h"
#include "knowledge/data_lake.h"
#include "knowledge/knowledge_graph.h"
#include "table/table.h"

namespace cdi::core {

struct ExtractorOptions {
  /// Follow entity-valued KG properties one hop.
  bool follow_kg_links = true;
  /// Minimum key containment for a lake table to be considered joinable.
  double min_containment = 0.6;
  /// Relevance filter (avoids the curse of dimensionality the paper warns
  /// about): an extracted numeric attribute is kept when its association
  /// with the exposure or outcome — max of |Pearson| and |Spearman|, the
  /// latter for outlier robustness — is significant at `relevance_alpha`
  /// and at least `min_relevance` in magnitude. String attributes always
  /// pass (the Data Organizer judges them).
  double relevance_alpha = 0.01;
  double min_relevance = 0.05;
  /// Also accept attributes whose *nonlinear* association (quantile-binned
  /// chi-square) with a reference is significant — catches confounders
  /// related non-monotonically, which correlation-based relevance misses.
  bool nonlinear_relevance = true;
  /// Hard cap on extracted attributes (most relevant first); -1 = none.
  int max_attributes = -1;
};

/// Provenance and relevance of one extracted attribute.
struct ExtractedAttribute {
  std::string name;
  /// "knowledge_graph" or the lake table's name.
  std::string source;
  double corr_with_exposure = 0.0;
  double corr_with_outcome = 0.0;
  bool kept = true;
  /// Why it was dropped, when !kept ("irrelevant", "duplicate-name").
  std::string drop_reason;
};

struct ExtractionResult {
  /// Input table plus all kept extracted columns (row-aligned).
  table::Table augmented;
  std::vector<ExtractedAttribute> attributes;
  std::size_t kg_columns_found = 0;
  std::size_t lake_columns_found = 0;
};

/// §3.1 — The Knowledge Extractor. Mines candidate unobserved attributes
/// for the entities of the input table from a knowledge graph (entity
/// linking + property extraction + link following) and a data lake
/// (joinability search + correlation-aware column selection), then filters
/// them for relevance to the causal question.
class KnowledgeExtractor {
 public:
  KnowledgeExtractor(const knowledge::KnowledgeGraph* kg,
                     const knowledge::DataLake* lake,
                     ExtractorOptions options = ExtractorOptions())
      : kg_(kg), lake_(lake), options_(options) {}

  /// Extracts attributes for `input`'s entities (named by `entity_column`)
  /// relevant to exposure/outcome. Charges simulated external latency to
  /// `meter` when non-null.
  Result<ExtractionResult> Extract(const table::Table& input,
                                   const std::string& entity_column,
                                   const std::string& exposure,
                                   const std::string& outcome,
                                   LatencyMeter* meter = nullptr) const;

 private:
  const knowledge::KnowledgeGraph* kg_;   // may be null (no KG source)
  const knowledge::DataLake* lake_;       // may be null (no lake source)
  ExtractorOptions options_;
};

}  // namespace cdi::core

#endif  // CDI_CORE_KNOWLEDGE_EXTRACTOR_H_
