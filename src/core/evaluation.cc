#include "core/evaluation.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "common/string_util.h"

namespace cdi::core {

namespace {

/// Maps claim edges (topic-name pairs) into the ground-truth cluster node
/// space; topics absent from the ground truth get fresh ids past the truth
/// universe so they count as false-positive presence claims without
/// affecting the absence universe.
std::vector<graph::Edge> MapClaims(
    const std::vector<std::pair<std::string, std::string>>& claims,
    const graph::Digraph& truth) {
  std::map<std::string, graph::NodeId> extra;
  auto id_of = [&](const std::string& name) -> graph::NodeId {
    auto id = truth.NodeIdOf(name);
    if (id.ok()) return *id;
    auto [it, inserted] =
        extra.emplace(name, truth.num_nodes() + extra.size());
    return it->second;
  };
  std::vector<graph::Edge> out;
  for (const auto& [from, to] : claims) {
    out.emplace_back(id_of(from), id_of(to));
  }
  return out;
}

}  // namespace

PipelineOptions DefaultEvaluationOptions(const datagen::Scenario& scenario) {
  PipelineOptions options;
  // Pin the clustering granularity to the ground truth (minus the two
  // singleton exposure/outcome clusters handled separately).
  const int k = static_cast<int>(scenario.cluster_dag.num_nodes()) - 2;
  options.builder.varclus.min_clusters = k;
  options.builder.varclus.max_clusters = k;
  options.builder.alpha = 0.05;
  options.builder.max_cond_size = 2;
  return options;
}

Result<Table3Row> EvaluateMethod(const datagen::Scenario& scenario,
                                 EdgeInference mode,
                                 const PipelineOptions& base_options) {
  PipelineOptions options = base_options;
  options.builder.inference = mode;
  Pipeline pipeline(&scenario.kg, &scenario.lake, scenario.oracle.get(),
                    &scenario.topics, options);
  CDI_ASSIGN_OR_RETURN(
      PipelineResult run,
      pipeline.Run(scenario.input_table, scenario.spec.entity_column,
                   scenario.exposure_attribute, scenario.outcome_attribute));

  Table3Row row;
  row.method = EdgeInferenceName(mode);
  row.num_edges = run.build.claims.size();
  const auto mapped = MapClaims(run.build.claims, scenario.cluster_dag);
  const auto metrics = graph::CompareEdgeSets(
      scenario.cluster_dag.num_nodes(), mapped, scenario.cluster_dag.Edges());
  row.presence = metrics.presence;
  row.absence = metrics.absence;
  row.direct_effect = run.direct_effect.abs_effect;
  const auto meds = run.build.cdag.MediatorClusters();
  row.mediators.assign(meds.begin(), meds.end());

  // Ground-truth mediator clusters.
  std::set<std::string> truth_meds;
  {
    auto t = scenario.cluster_dag.NodeIdOf(scenario.spec.exposure_cluster);
    auto o = scenario.cluster_dag.NodeIdOf(scenario.spec.outcome_cluster);
    CDI_CHECK(t.ok() && o.ok());
    for (graph::NodeId v :
         scenario.cluster_dag.NodesOnDirectedPaths(*t, *o)) {
      truth_meds.insert(scenario.cluster_dag.NodeName(v));
    }
  }
  row.mediators_match_truth =
      std::set<std::string>(meds.begin(), meds.end()) == truth_meds;
  row.external_seconds = run.external.TotalSeconds();
  row.wall_seconds = run.timings.total_seconds;
  return row;
}

Result<std::vector<Table3Row>> EvaluateAllMethods(
    const datagen::Scenario& scenario, const PipelineOptions& base_options) {
  const EdgeInference modes[] = {
      EdgeInference::kHybrid, EdgeInference::kOracleOnly,
      EdgeInference::kDataGes, EdgeInference::kDataLingam,
      EdgeInference::kDataPc, EdgeInference::kDataFci,
  };
  std::vector<Table3Row> rows;
  for (EdgeInference mode : modes) {
    CDI_ASSIGN_OR_RETURN(Table3Row row,
                         EvaluateMethod(scenario, mode, base_options));
    rows.push_back(std::move(row));
  }
  return rows;
}

std::string FormatTable3(const std::string& dataset_label,
                         const datagen::Scenario& scenario,
                         const std::vector<Table3Row>& rows) {
  std::ostringstream os;
  os << dataset_label << " (|V|=" << scenario.cluster_dag.num_nodes()
     << ", |E|=" << scenario.cluster_dag.num_edges() << ")\n";
  os << "  Method      |E|   "
        "Inclusion P/R/F1        Absence P/R/F1         DirectEff  "
        "Mediators-OK\n";
  for (const auto& r : rows) {
    char line[256];
    std::snprintf(line, sizeof(line),
                  "  %-10s %4zu   %4.2f / %4.2f / %4.2f      "
                  "%4.2f / %4.2f / %4.2f      %6.3f     %s\n",
                  r.method.c_str(), r.num_edges, r.presence.precision,
                  r.presence.recall, r.presence.f1, r.absence.precision,
                  r.absence.recall, r.absence.f1, r.direct_effect,
                  r.mediators_match_truth ? "yes" : "no");
    os << line;
  }
  return os.str();
}

}  // namespace cdi::core
