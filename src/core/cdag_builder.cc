#include "core/cdag_builder.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <memory>
#include <set>

#include "common/span.h"
#include "common/thread_pool.h"
#include "discovery/cached_ci.h"
#include "discovery/ci_test.h"
#include "discovery/subsets.h"
#include "stats/correlation.h"
#include "stats/descriptive.h"
#include "stats/independence.h"
#include "stats/sufficient_stats.h"

namespace cdi::core {

const char* EdgeInferenceName(EdgeInference mode) {
  switch (mode) {
    case EdgeInference::kHybrid:
      return "CATER";
    case EdgeInference::kOracleOnly:
      return "GPT-3 Only";
    case EdgeInference::kDataPc:
      return "PC";
    case EdgeInference::kDataFci:
      return "FCI";
    case EdgeInference::kDataGes:
      return "GES";
    case EdgeInference::kDataLingam:
      return "LiNGAM";
  }
  return "?";
}

namespace {

/// Representative series of a cluster: the sign-aligned mean of its
/// members' standardized columns — a first-principal-component proxy.
/// Members anti-correlated with the first member are flipped first, so a
/// cluster like {gdp_per_capita, poverty_rate} does not cancel itself out.
/// Pairwise-available: a row is NaN only when every member is missing.
std::vector<double> ClusterRepresentative(
    const std::vector<cdi::DoubleSpan>& member_columns) {
  CDI_CHECK(!member_columns.empty());
  const std::size_t n = member_columns[0].size();
  std::vector<std::vector<double>> z;
  z.reserve(member_columns.size());
  for (const auto& col : member_columns) z.push_back(stats::Standardize(col));
  for (std::size_t j = 1; j < z.size(); ++j) {
    if (stats::PearsonCorrelation(z[0], z[j]) < 0) {
      for (double& v : z[j]) v = -v;
    }
  }
  std::vector<double> rep(n, std::nan(""));
  for (std::size_t r = 0; r < n; ++r) {
    double sum = 0;
    std::size_t count = 0;
    for (const auto& col : z) {
      if (!std::isnan(col[r])) {
        sum += col[r];
        ++count;
      }
    }
    if (count > 0) rep[r] = sum / static_cast<double>(count);
  }
  return rep;
}

/// Finds one directed cycle; returns its edges, or empty when acyclic.
std::vector<graph::Edge> FindCycle(const graph::Digraph& g) {
  const std::size_t n = g.num_nodes();
  std::vector<int> state(n, 0);  // 0 unvisited, 1 on stack, 2 done
  std::vector<graph::NodeId> stack;
  std::vector<graph::Edge> cycle;

  std::function<bool(graph::NodeId)> dfs = [&](graph::NodeId u) -> bool {
    state[u] = 1;
    stack.push_back(u);
    for (graph::NodeId v : g.Children(u)) {
      if (state[v] == 1) {
        // Found a back edge; extract the cycle from the stack.
        auto it = std::find(stack.begin(), stack.end(), v);
        for (auto p = it; p + 1 != stack.end(); ++p) {
          cycle.emplace_back(*p, *(p + 1));
        }
        cycle.emplace_back(u, v);
        return true;
      }
      if (state[v] == 0 && dfs(v)) return true;
    }
    stack.pop_back();
    state[u] = 2;
    return false;
  };
  for (graph::NodeId u = 0; u < n; ++u) {
    if (state[u] == 0 && dfs(u)) break;
  }
  return cycle;
}

}  // namespace

Result<CdagBuildResult> CdagBuilder::Build(
    const table::Table& organized, const std::string& entity_column,
    const std::string& exposure, const std::string& outcome,
    const std::vector<double>& row_weights, LatencyMeter* meter) const {
  // ---- 1. Collect numeric attributes (exposure/outcome kept aside). ------
  std::vector<std::string> attr_names;
  std::vector<DoubleSpan> attr_columns;  // zero-copy views over `organized`
  for (const auto& name : organized.ColumnNames()) {
    if (name == entity_column || name == exposure || name == outcome) continue;
    CDI_ASSIGN_OR_RETURN(const table::Column* col, organized.GetColumn(name));
    if (!table::IsNumeric(col->type()) &&
        col->type() != table::DataType::kBool) {
      continue;
    }
    attr_names.push_back(name);
    attr_columns.push_back(col->View());
  }
  if (attr_names.empty()) {
    return Status::FailedPrecondition("no extracted numeric attributes");
  }

  // One pool serves every parallel stage below (sufficient statistics,
  // edge pruning); all of them are bitwise-deterministic in thread count.
  std::unique_ptr<ThreadPool> pool;
  if (options_.num_threads > 1) {
    pool = std::make_unique<ThreadPool>(
        static_cast<std::size_t>(options_.num_threads));
  }

  // ---- 2. VARCLUS grouping. ------------------------------------------------
  // One blocked sufficient-statistics pass over the attribute columns;
  // VARCLUS runs entirely on its correlation matrix.
  stats::NumericDataset attr_ds;
  attr_ds.columns = attr_columns;
  CDI_ASSIGN_OR_RETURN(stats::SufficientStats attr_stats,
                       stats::SufficientStats::Compute(attr_ds, pool.get()));
  CDI_ASSIGN_OR_RETURN(VarClusResult vc,
                       RunVarClusOnCorrelation(attr_stats.Correlation(),
                                               attr_names, options_.varclus));

  // ---- 3. Topic assignment (exposure/outcome are singletons). --------------
  CdagBuildResult result;
  std::vector<std::vector<std::string>> clusters = vc.clusters;
  clusters.push_back({exposure});
  clusters.push_back({outcome});

  std::vector<std::string> topics;
  std::set<std::string> used;
  for (const auto& members : clusters) {
    std::string topic = topics_ != nullptr
                            ? topics_->AssignTopic(members, meter)
                            : members[0];
    std::string unique = topic;
    int suffix = 2;
    while (!used.insert(unique).second) {
      unique = topic + "_" + std::to_string(suffix++);
    }
    topics.push_back(unique);
  }
  result.cluster_topics = topics;
  const std::string exposure_topic = topics[topics.size() - 2];
  const std::string outcome_topic = topics[topics.size() - 1];

  // ---- 4. Cluster representatives + CI test. -------------------------------
  std::map<std::string, DoubleSpan> column_of;
  for (std::size_t i = 0; i < attr_names.size(); ++i) {
    column_of[attr_names[i]] = attr_columns[i];
  }
  CDI_ASSIGN_OR_RETURN(const table::Column* tcol,
                       organized.GetColumn(exposure));
  CDI_ASSIGN_OR_RETURN(const table::Column* ocol,
                       organized.GetColumn(outcome));
  column_of[exposure] = tcol->View();
  column_of[outcome] = ocol->View();

  std::vector<std::vector<double>> reps;
  for (const auto& members : clusters) {
    std::vector<DoubleSpan> cols;
    for (const auto& m : members) cols.push_back(column_of.at(m));
    reps.push_back(ClusterRepresentative(cols));
  }

  stats::NumericDataset rep_ds;
  rep_ds.columns = cdi::SpansOf(reps);  // `reps` outlives the CI engine
  rep_ds.weights = row_weights;
  const std::size_t rep_complete = stats::CompleteRowCount(rep_ds);
  if (rep_complete < 5) {
    return Status::FailedPrecondition(
        "FisherZTest needs at least 5 complete rows, got " +
        std::to_string(rep_complete));
  }
  // The cached engine computes the correlation matrix once (from the shared
  // sufficient statistics) and memoizes every (x, y, S) query — pruning,
  // augmentation and cycle repair all revisit the same pairs.
  CDI_ASSIGN_OR_RETURN(stats::SufficientStats rep_stats,
                       stats::SufficientStats::Compute(rep_ds, pool.get()));
  CDI_ASSIGN_OR_RETURN(auto ci_test,
                       discovery::CachedCiTest::ForGaussian(rep_stats));
  const std::size_t k = clusters.size();

  // ---- 5. Edge inference. ----------------------------------------------------
  auto edge_name = [&](std::size_t u, std::size_t v) {
    return std::make_pair(topics[u], topics[v]);
  };

  graph::Digraph claim_graph(topics);
  switch (options_.inference) {
    case EdgeInference::kOracleOnly:
    case EdgeInference::kHybrid: {
      if (oracle_ == nullptr) {
        return Status::InvalidArgument("oracle required for this mode");
      }
      claim_graph = oracle_->QueryAllPairs(topics, meter);
      // QueryAllPairs asks every ordered pair exactly once. Count locally:
      // a query_count() delta on the shared oracle would also absorb the
      // queries of concurrent pipeline runs against the same scenario,
      // making this result field nondeterministic under serving load.
      result.oracle_queries = topics.size() * (topics.size() - 1);
      if (options_.inference == EdgeInference::kHybrid) {
        // PC-style redundant-edge pruning: remove a claimed edge when the
        // two clusters test conditionally independent given some subset of
        // clusters adjacent to either endpoint in the claim graph.
        const std::size_t calls_before = ci_test->calls;
        // Nonlinear marginal-dependence backstop: a quantile-binned
        // chi-square test sees (non-monotone) relations Fisher-z misses.
        auto nonlinear_dependent = [&](std::size_t u, std::size_t v) {
          const auto bu = stats::QuantileBin(reps[u], 3);
          const auto bv = stats::QuantileBin(reps[v], 3);
          auto r = stats::ChiSquareIndependence(bu, bv);
          return r.ok() && r->p_value < options_.alpha;
        };
        // Every prune decision is made against a snapshot of the oracle
        // claim graph (PC-stable style): decisions become pure functions
        // of the snapshot, independent of edge order and thread count.
        const std::vector<graph::Edge> claimed = claim_graph.Edges();
        std::vector<char> prune_edge(claimed.size(), 0);
        ParallelFor(pool.get(), claimed.size(), [&](std::size_t e) {
          const auto [u, v] = claimed[e];
          if (options_.prune_requires_marginal_dependence &&
              ci_test->Independent(u, v, {}, options_.alpha)) {
            // Fisher-z sees nothing. If the binned test also sees nothing,
            // the data positively contradicts the oracle claim — prune it.
            // If the binned test fires, the relation is real but nonlinear
            // ("not present in the data" for linear methods) — keep it.
            prune_edge[e] = nonlinear_dependent(u, v) ? 0 : 1;
            return;
          }
          // Redundancy is judged against the *claimed parents* of the two
          // endpoints: a direct edge u -> v is redundant iff u ⟂ v given
          // other causes of v (or of u). Conditioning on children would
          // both be un-causal and inflate the subset count (and with it
          // the chance of a spurious independence).
          std::vector<std::size_t> candidates;
          for (std::size_t w = 0; w < k; ++w) {
            if (w == u || w == v) continue;
            if (claim_graph.HasEdge(w, u) || claim_graph.HasEdge(w, v)) {
              candidates.push_back(w);
            }
          }
          bool pruned = false;
          const std::size_t max_level = static_cast<std::size_t>(
              std::max(0, options_.max_cond_size));
          const std::size_t min_level =
              options_.prune_requires_marginal_dependence ? 1 : 0;
          for (std::size_t level = min_level;
               level <= std::min(max_level, candidates.size()) && !pruned;
               ++level) {
            pruned = discovery::ForEachSubset<std::size_t>(
                candidates, level,
                [&](const std::vector<std::size_t>& s) {
                  return ci_test->PValue(u, v, s) >=
                         options_.prune_p_threshold;
                });
          }
          prune_edge[e] = pruned ? 1 : 0;
        });
        for (std::size_t e = 0; e < claimed.size(); ++e) {
          if (!prune_edge[e]) continue;
          claim_graph.RemoveEdge(claimed[e].first, claimed[e].second);
          result.pruned_edges.push_back(
              edge_name(claimed[e].first, claimed[e].second));
        }
        // Direction verification: for each surviving edge, re-prompt the
        // oracle for its preferred direction; a claim whose reverse the
        // oracle actually prefers gets flipped. (Catches "reversed" hits
        // from the yes/no template before they can block augmentation or
        // seed cycles.)
        for (const auto& [u, v] : claim_graph.Edges()) {
          const int pref =
              oracle_->PreferredDirection(topics[u], topics[v], meter);
          ++result.oracle_queries;
          if (pref < 0) {
            claim_graph.RemoveEdge(u, v);
            CDI_RETURN_IF_ERROR(claim_graph.AddEdge(v, u));
          }
        }
        // Data augmentation: connect cluster pairs the oracle missed when
        // they are dependent given *all* other clusters (a Markov-blanket
        // edge); the oracle's direction-preference query orients it.
        if (options_.augment_from_data) {
          for (std::size_t u = 0; u < k; ++u) {
            for (std::size_t v = u + 1; v < k; ++v) {
              if (claim_graph.Adjacent(u, v)) continue;
              std::vector<std::size_t> rest;
              for (std::size_t w = 0; w < k; ++w) {
                if (w != u && w != v) rest.push_back(w);
              }
              if (ci_test->PValue(u, v, rest) >= options_.augment_alpha) {
                continue;
              }
              const int pref =
                  oracle_->PreferredDirection(topics[u], topics[v], meter);
              ++result.oracle_queries;
              if (pref > 0) {
                CDI_RETURN_IF_ERROR(claim_graph.AddEdge(u, v));
              } else if (pref < 0) {
                CDI_RETURN_IF_ERROR(claim_graph.AddEdge(v, u));
              }
            }
          }
        }
        // Cycle repair, stage 1: resolve 2-cycles with a follow-up oracle
        // disambiguation query ("which direction is more likely?").
        for (const auto& [u, v] : claim_graph.TwoCycles()) {
          const int pref =
              oracle_->PreferredDirection(topics[u], topics[v], meter);
          ++result.oracle_queries;
          graph::Edge victim;
          if (pref > 0) {
            victim = {v, u};
          } else if (pref < 0) {
            victim = {u, v};
          } else {
            // Oracle shrugs: drop the direction with weaker data support.
            victim = ci_test->Strength(u, v, {}) >=
                             ci_test->Strength(v, u, {})
                         ? graph::Edge{v, u}
                         : graph::Edge{u, v};
          }
          claim_graph.RemoveEdge(victim.first, victim.second);
          result.cycle_repaired_edges.push_back(
              edge_name(victim.first, victim.second));
        }
        // Stage 2: drop the weakest-supported edge of each remaining
        // cycle until the graph is a DAG.
        while (true) {
          const auto cycle = FindCycle(claim_graph);
          if (cycle.empty()) break;
          double weakest = std::numeric_limits<double>::infinity();
          graph::Edge victim = cycle[0];
          for (const auto& e : cycle) {
            const double s = ci_test->Strength(e.first, e.second, {});
            if (s < weakest) {
              weakest = s;
              victim = e;
            }
          }
          claim_graph.RemoveEdge(victim.first, victim.second);
          result.cycle_repaired_edges.push_back(
              edge_name(victim.first, victim.second));
        }
        result.ci_tests = ci_test->calls - calls_before;
      }
      for (const auto& [u, v] : claim_graph.Edges()) {
        result.claims.push_back(edge_name(u, v));
      }
      result.definite = result.claims;
      break;
    }
    case EdgeInference::kDataPc:
    case EdgeInference::kDataFci:
    case EdgeInference::kDataGes:
    case EdgeInference::kDataLingam: {
      discovery::Algorithm alg = discovery::Algorithm::kPc;
      if (options_.inference == EdgeInference::kDataFci) {
        alg = discovery::Algorithm::kFci;
      } else if (options_.inference == EdgeInference::kDataGes) {
        alg = discovery::Algorithm::kGes;
      } else if (options_.inference == EdgeInference::kDataLingam) {
        alg = discovery::Algorithm::kLingam;
      }
      discovery::DiscoveryOptions dopt = options_.discovery;
      dopt.alpha = options_.alpha;
      dopt.num_threads = options_.num_threads;
      if (!options_.warm_start_edges.empty()) {
        // Map the previous epoch's topic-name edges onto this run's
        // cluster indices. Clustering is re-run per epoch, so a topic may
        // have split or vanished; unmatched names drop out of the seed.
        std::map<std::string, std::size_t> topic_index;
        for (std::size_t c = 0; c < topics.size(); ++c) {
          topic_index.emplace(topics[c], c);
        }
        dopt.warm_start = true;
        for (const auto& [from, to] : options_.warm_start_edges) {
          const auto fi = topic_index.find(from);
          const auto ti = topic_index.find(to);
          if (fi != topic_index.end() && ti != topic_index.end() &&
              fi->second != ti->second) {
            dopt.warm_edges.emplace_back(fi->second, ti->second);
          }
        }
      }
      CDI_ASSIGN_OR_RETURN(discovery::DiscoverySummary summary,
                           discovery::RunDiscovery(cdi::SpansOf(reps), topics,
                                                   alg, dopt));
      result.ci_tests = summary.ci_tests;
      for (const auto& [u, v] : summary.claims) {
        result.claims.push_back(edge_name(u, v));
      }
      for (const auto& [u, v] : summary.definite) {
        result.definite.push_back(edge_name(u, v));
        CDI_RETURN_IF_ERROR(claim_graph.AddEdge(u, v));
      }
      for (const auto& [u, v] : summary.warm_seed) {
        result.warm_seed.push_back(edge_name(u, v));
      }
      break;
    }
  }

  // Modes whose algorithm has no dedicated warm-seed shape (hybrid,
  // oracle-only) seed the next epoch with the C-DAG's definite edges.
  if (result.warm_seed.empty()) result.warm_seed = result.definite;

  // ---- 6. Assemble the ClusterDag (definite edges only). ---------------------
  std::map<std::string, std::vector<std::string>> members_by_topic;
  for (std::size_t c = 0; c < clusters.size(); ++c) {
    members_by_topic[topics[c]] = clusters[c];
  }
  CDI_ASSIGN_OR_RETURN(
      ClusterDag cdag,
      ClusterDag::Create(members_by_topic, exposure_topic, outcome_topic));
  for (const auto& [from, to] : result.definite) {
    CDI_RETURN_IF_ERROR(cdag.mutable_graph().AddEdge(from, to));
  }
  result.cdag = std::move(cdag);
  return result;
}

}  // namespace cdi::core
