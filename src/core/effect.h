#ifndef CDI_CORE_EFFECT_H_
#define CDI_CORE_EFFECT_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "stats/sufficient_stats.h"
#include "table/table.h"

namespace cdi::core {

/// Result of a regression-adjustment effect estimate on standardized data.
struct EffectEstimate {
  /// Standardized coefficient of the exposure (can be negative).
  double effect = 0.0;
  /// |effect| — what Table 3's "Direct Effect" column reports.
  double abs_effect = 0.0;
  double std_error = 0.0;
  double p_value = 1.0;
  /// Attributes actually adjusted for (requested minus unusable columns).
  std::vector<std::string> adjusted_for;
  std::size_t n_used = 0;
};

/// Estimates the effect of `exposure` on `outcome` by weighted standardized
/// OLS, adjusting for `adjustment` attributes (numeric columns of `t`;
/// string columns are skipped with a note in `adjusted_for` semantics —
/// they simply do not appear there). Empty `weights` means unweighted.
///
/// With the mediators of exposure -> outcome in the adjustment set this
/// estimates the *controlled direct effect*; with only confounders it
/// estimates the total effect (backdoor adjustment). Ground truth for both
/// scenarios: the direct effect is 0.
Result<EffectEstimate> EstimateEffect(
    const table::Table& t, const std::string& exposure,
    const std::string& outcome, const std::vector<std::string>& adjustment,
    const std::vector<double>& weights = {});

/// Standardized-OLS effect estimate computed *entirely from shared
/// sufficient statistics* — normal equations on the correlation submatrix
/// over [exposure, adjustment..., outcome], no pass over raw rows. This is
/// the serving planner's effect path: once a scenario's statistics are
/// built, every (exposure, outcome, adjustment) estimate is O(p^3) linear
/// algebra on submatrices of S.
///
/// `names` maps statistics column indices to attribute names (index i of
/// `stats` is `names[i]`). Adjustment attributes equal to the exposure or
/// outcome, or absent from `names`, are skipped — mirroring
/// EstimateEffect's column-skipping semantics.
///
/// Semantics: slopes b solve R_xx b = R_xy (tiny ridge, as FitOls);
/// rss = (W - 1)(1 - b'R_xy) on the standardized scale with W the weight
/// sum; sigma^2 = rss / (n - p - 1) with n the complete-row count; SE from
/// sigma^2 R_xx^{-1} / (W - 1). The rows entering the estimate are the
/// statistics' listwise-complete rows over *all* of its columns, so the
/// result is a deterministic function of `stats` alone — bitwise
/// reproducible across calls, threads, and processes, though not defined
/// to be bitwise-equal to the per-query FitStandardizedOls path (which
/// deletes listwise over only the involved columns).
Result<EffectEstimate> EstimateEffectFromStats(
    const stats::SufficientStats& stats,
    const std::vector<std::string>& names, const std::string& exposure,
    const std::string& outcome, const std::vector<std::string>& adjustment);

/// Batched variant for the serving planner. `corr` is the precomputed
/// correlation matrix (== stats.Correlation(); recomputed here when null)
/// and `fcache` a factor cache built over `corr` with ridge 1e-9 — the
/// same ridge SolveNormalEquations applies — so consecutive pair queries
/// whose predictor sets share or extend each other reuse Cholesky factors
/// instead of re-factorizing per query. A null or mismatched-ridge cache
/// falls back to the unbatched solve. Estimates are bitwise identical to
/// the overload above, including the stronger-ridge retry on collinear
/// predictor sets.
Result<EffectEstimate> EstimateEffectFromStats(
    const stats::SufficientStats& stats,
    const std::vector<std::string>& names, const std::string& exposure,
    const std::string& outcome, const std::vector<std::string>& adjustment,
    const stats::Matrix* corr, stats::FactorCache* fcache);

}  // namespace cdi::core

#endif  // CDI_CORE_EFFECT_H_
