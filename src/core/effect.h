#ifndef CDI_CORE_EFFECT_H_
#define CDI_CORE_EFFECT_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "table/table.h"

namespace cdi::core {

/// Result of a regression-adjustment effect estimate on standardized data.
struct EffectEstimate {
  /// Standardized coefficient of the exposure (can be negative).
  double effect = 0.0;
  /// |effect| — what Table 3's "Direct Effect" column reports.
  double abs_effect = 0.0;
  double std_error = 0.0;
  double p_value = 1.0;
  /// Attributes actually adjusted for (requested minus unusable columns).
  std::vector<std::string> adjusted_for;
  std::size_t n_used = 0;
};

/// Estimates the effect of `exposure` on `outcome` by weighted standardized
/// OLS, adjusting for `adjustment` attributes (numeric columns of `t`;
/// string columns are skipped with a note in `adjusted_for` semantics —
/// they simply do not appear there). Empty `weights` means unweighted.
///
/// With the mediators of exposure -> outcome in the adjustment set this
/// estimates the *controlled direct effect*; with only confounders it
/// estimates the total effect (backdoor adjustment). Ground truth for both
/// scenarios: the direct effect is 0.
Result<EffectEstimate> EstimateEffect(
    const table::Table& t, const std::string& exposure,
    const std::string& outcome, const std::vector<std::string>& adjustment,
    const std::vector<double>& weights = {});

}  // namespace cdi::core

#endif  // CDI_CORE_EFFECT_H_
