#include "core/data_organizer.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/span.h"
#include "stats/descriptive.h"
#include "stats/distributions.h"
#include "stats/logistic.h"

namespace cdi::core {

namespace {

/// Two-sided p-value of the point-biserial correlation between a 0/1
/// indicator and a numeric vector (t-test on the correlation).
double IndicatorAssociationPValue(cdi::DoubleSpan indicator,
                                  cdi::DoubleSpan values) {
  const double r = stats::PearsonCorrelation(indicator, values);
  if (std::isnan(r)) return 1.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < indicator.size(); ++i) {
    if (!std::isnan(indicator[i]) && !std::isnan(values[i])) ++n;
  }
  if (n < 4) return 1.0;
  const double dof = static_cast<double>(n - 2);
  const double denom = std::max(1e-12, 1.0 - r * r);
  const double t = r * std::sqrt(dof / denom);
  return stats::StudentTTwoSidedPValue(t, dof);
}

}  // namespace

Result<bool> HoldsFd(const table::Table& t, const std::string& lhs,
                     const std::string& rhs) {
  CDI_ASSIGN_OR_RETURN(const table::Column* l, t.GetColumn(lhs));
  CDI_ASSIGN_OR_RETURN(const table::Column* r, t.GetColumn(rhs));
  std::unordered_map<std::string, std::string> map;
  for (std::size_t row = 0; row < t.num_rows(); ++row) {
    if (l->IsNull(row)) continue;
    const std::string lv = l->Get(row).ToString();
    const std::string rv = r->IsNull(row) ? "\x01<null>" : r->Get(row).ToString();
    auto [it, inserted] = map.emplace(lv, rv);
    if (!inserted && it->second != rv) return false;
  }
  return true;
}

Result<OrganizerResult> DataOrganizer::Organize(
    const table::Table& augmented, const std::string& entity_column,
    const std::string& exposure, const std::string& outcome) const {
  OrganizerResult result;

  // ---- 1. Duplicate removal. ----------------------------------------------
  table::Table t = augmented.DistinctRows();
  result.duplicate_rows_removed = augmented.num_rows() - t.num_rows();

  CDI_ASSIGN_OR_RETURN(const table::Column* tcol, t.GetColumn(exposure));
  CDI_ASSIGN_OR_RETURN(const table::Column* ocol, t.GetColumn(outcome));
  // Deliberate deep copies, not views: winsorization (step 3) rewrites
  // numeric columns — including the outcome — in place, and steps 2/4 must
  // see the pre-winsorization exposure/outcome values.
  const std::vector<double> t_vals = tcol->ToDoubles();
  const std::vector<double> o_vals = ocol->ToDoubles();

  // ---- 2. Functional dependencies with exposure/outcome. --------------------
  for (const auto& name : t.ColumnNames()) {
    if (name == exposure || name == outcome || name == entity_column) continue;
    CDI_ASSIGN_OR_RETURN(const table::Column* col, t.GetColumn(name));
    bool drop = false;
    if (table::IsNumeric(col->type())) {
      // Spearman catches monotone-but-nonlinear deterministic relations
      // (e.g. a calling code that is a monotone function of the exposure).
      const cdi::DoubleSpan vals = col->View();
      auto assoc = [](cdi::DoubleSpan a, cdi::DoubleSpan b) {
        const double rp = stats::PearsonCorrelation(a, b);
        const double rs = stats::SpearmanCorrelation(a, b);
        return std::max(std::isnan(rp) ? 0.0 : std::fabs(rp),
                        std::isnan(rs) ? 0.0 : std::fabs(rs));
      };
      if (assoc(vals, t_vals) >= options_.fd_correlation_threshold ||
          assoc(vals, o_vals) >= options_.fd_correlation_threshold) {
        drop = true;
      }
    } else if (col->type() == table::DataType::kString &&
               options_.drop_string_fds) {
      // A string attribute whose values pin down the exposure violates
      // strict positivity (conditioning on it fixes T).
      CDI_ASSIGN_OR_RETURN(bool fd_to_t, HoldsFd(t, name, exposure));
      if (fd_to_t) drop = true;
    }
    if (drop) {
      result.dropped_fd_attributes.push_back(name);
    }
  }
  for (const auto& name : result.dropped_fd_attributes) {
    CDI_RETURN_IF_ERROR(t.DropColumn(name));
  }

  // ---- 3. Outlier winsorization (robust z via median/MAD). ------------------
  if (options_.outlier_robust_z > 0) {
    for (const auto& name : t.ColumnNames()) {
      if (name == entity_column || name == exposure) continue;
      CDI_ASSIGN_OR_RETURN(table::Column * col, t.MutableColumn(name));
      if (!table::IsNumeric(col->type())) continue;
      // A borrowed view is safe here: every read of row r happens before
      // the in-place Set of row r, and the median/MAD pass completes
      // before any write.
      const cdi::DoubleSpan vals = col->View();
      const double med = stats::Median(vals);
      std::vector<double> absdev;
      absdev.reserve(vals.size());
      for (double v : vals) {
        if (!std::isnan(v)) absdev.push_back(std::fabs(v - med));
      }
      const double mad = stats::Median(absdev);
      const double scale = 1.4826 * mad;  // consistent with sigma for normals
      if (!(scale > 0)) continue;
      const double fence = options_.outlier_robust_z * scale;
      std::size_t count = 0;
      for (std::size_t r = 0; r < vals.size(); ++r) {
        if (std::isnan(vals[r])) continue;
        if (vals[r] > med + fence) {
          CDI_RETURN_IF_ERROR(col->Set(r, table::Value(med + fence)));
          ++count;
        } else if (vals[r] < med - fence) {
          CDI_RETURN_IF_ERROR(col->Set(r, table::Value(med - fence)));
          ++count;
        }
      }
      if (count > 0) result.winsorized_cells[name] = count;
    }
  }

  // ---- 4. Missingness diagnosis + IPW. ---------------------------------------
  result.row_weights.assign(t.num_rows(), 1.0);
  bool any_bias = false;
  std::vector<double> complete_indicator(t.num_rows(), 1.0);
  for (const auto& name : t.ColumnNames()) {
    if (name == entity_column) continue;
    CDI_ASSIGN_OR_RETURN(const table::Column* col, t.GetColumn(name));
    const std::size_t nulls = col->NullCount();
    if (nulls == 0) continue;
    MissingnessReport report;
    report.attribute = name;
    report.missing_fraction = col->NullFraction();
    std::vector<double> indicator(t.num_rows());
    for (std::size_t r = 0; r < t.num_rows(); ++r) {
      indicator[r] = col->IsNull(r) ? 1.0 : 0.0;
      if (col->IsNull(r)) complete_indicator[r] = 0.0;
    }
    report.p_vs_exposure = IndicatorAssociationPValue(indicator, t_vals);
    report.p_vs_outcome = IndicatorAssociationPValue(indicator, o_vals);
    report.selection_bias_risk =
        report.p_vs_exposure < options_.selection_bias_alpha ||
        report.p_vs_outcome < options_.selection_bias_alpha;
    any_bias |= report.selection_bias_risk;
    result.missingness.push_back(report);
  }

  if (any_bias && options_.enable_ipw) {
    // Propensity of a row being complete, modelled on the always-observed
    // exposure and outcome; IPW weight = 1 / P(complete) for complete rows.
    auto fit = stats::FitLogistic({t_vals, o_vals}, complete_indicator);
    if (fit.ok()) {
      for (std::size_t r = 0; r < t.num_rows(); ++r) {
        if (complete_indicator[r] < 0.5) continue;  // incomplete rows keep 1.0
        if (std::isnan(t_vals[r]) || std::isnan(o_vals[r])) continue;
        const double p = fit->Predict({t_vals[r], o_vals[r]});
        const double w = 1.0 / std::max(p, 1e-3);
        result.row_weights[r] =
            std::clamp(w, 1.0, options_.max_ipw_weight);
      }
    }
  }

  // Diagnostic FD inventory over the cleaned table (never fails the run).
  auto fds = FindApproximateFds(t, /*max_error=*/0.01);
  if (fds.ok()) result.approximate_fds = std::move(*fds);

  result.organized = std::move(t);
  return result;
}

}  // namespace cdi::core
