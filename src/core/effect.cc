#include "core/effect.h"

#include <cmath>

#include "common/span.h"
#include "stats/regression.h"

namespace cdi::core {

Result<EffectEstimate> EstimateEffect(const table::Table& t,
                                      const std::string& exposure,
                                      const std::string& outcome,
                                      const std::vector<std::string>& adjustment,
                                      const std::vector<double>& weights) {
  CDI_ASSIGN_OR_RETURN(const table::Column* tcol, t.GetColumn(exposure));
  CDI_ASSIGN_OR_RETURN(const table::Column* ocol, t.GetColumn(outcome));
  if (!table::IsNumeric(tcol->type()) && tcol->type() != table::DataType::kBool) {
    return Status::InvalidArgument("exposure must be numeric");
  }
  if (!table::IsNumeric(ocol->type()) && ocol->type() != table::DataType::kBool) {
    return Status::InvalidArgument("outcome must be numeric");
  }

  // Zero-copy views over `t`, which outlives the fit below.
  std::vector<cdi::DoubleSpan> xs;
  xs.push_back(tcol->View());
  EffectEstimate est;
  for (const auto& name : adjustment) {
    if (name == exposure || name == outcome) continue;
    auto col = t.GetColumn(name);
    if (!col.ok()) continue;  // adjustment attr not materialized — skip
    if ((*col)->type() == table::DataType::kString) continue;
    xs.push_back((*col)->View());
    est.adjusted_for.push_back(name);
  }

  CDI_ASSIGN_OR_RETURN(stats::OlsFit fit,
                       stats::FitStandardizedOls(xs, ocol->View(),
                                                 weights));
  est.effect = fit.beta(0);
  est.abs_effect = std::fabs(est.effect);
  est.std_error = fit.std_errors[1];
  est.p_value = fit.p_values[1];
  est.n_used = fit.n_used;
  return est;
}

}  // namespace cdi::core
