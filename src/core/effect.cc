#include "core/effect.h"

#include <algorithm>
#include <cmath>

#include "common/span.h"
#include "stats/distributions.h"
#include "stats/factor_cache.h"
#include "stats/linalg.h"
#include "stats/regression.h"

namespace cdi::core {

Result<EffectEstimate> EstimateEffect(const table::Table& t,
                                      const std::string& exposure,
                                      const std::string& outcome,
                                      const std::vector<std::string>& adjustment,
                                      const std::vector<double>& weights) {
  CDI_ASSIGN_OR_RETURN(const table::Column* tcol, t.GetColumn(exposure));
  CDI_ASSIGN_OR_RETURN(const table::Column* ocol, t.GetColumn(outcome));
  if (!table::IsNumeric(tcol->type()) && tcol->type() != table::DataType::kBool) {
    return Status::InvalidArgument("exposure must be numeric");
  }
  if (!table::IsNumeric(ocol->type()) && ocol->type() != table::DataType::kBool) {
    return Status::InvalidArgument("outcome must be numeric");
  }

  // Zero-copy views over `t`, which outlives the fit below.
  std::vector<cdi::DoubleSpan> xs;
  xs.push_back(tcol->View());
  EffectEstimate est;
  for (const auto& name : adjustment) {
    if (name == exposure || name == outcome) continue;
    auto col = t.GetColumn(name);
    if (!col.ok()) continue;  // adjustment attr not materialized — skip
    if ((*col)->type() == table::DataType::kString) continue;
    xs.push_back((*col)->View());
    est.adjusted_for.push_back(name);
  }

  CDI_ASSIGN_OR_RETURN(stats::OlsFit fit,
                       stats::FitStandardizedOls(xs, ocol->View(),
                                                 weights));
  est.effect = fit.beta(0);
  est.abs_effect = std::fabs(est.effect);
  est.std_error = fit.std_errors[1];
  est.p_value = fit.p_values[1];
  est.n_used = fit.n_used;
  return est;
}

Result<EffectEstimate> EstimateEffectFromStats(
    const stats::SufficientStats& stats,
    const std::vector<std::string>& names, const std::string& exposure,
    const std::string& outcome, const std::vector<std::string>& adjustment) {
  return EstimateEffectFromStats(stats, names, exposure, outcome, adjustment,
                                 nullptr, nullptr);
}

Result<EffectEstimate> EstimateEffectFromStats(
    const stats::SufficientStats& stats,
    const std::vector<std::string>& names, const std::string& exposure,
    const std::string& outcome, const std::vector<std::string>& adjustment,
    const stats::Matrix* corr, stats::FactorCache* fcache) {
  if (names.size() != stats.num_vars()) {
    return Status::InvalidArgument(
        "names/statistics size mismatch: " + std::to_string(names.size()) +
        " names vs " + std::to_string(stats.num_vars()) + " variables");
  }
  const auto index_of = [&names](const std::string& name) -> std::size_t {
    const auto it = std::find(names.begin(), names.end(), name);
    return it == names.end() ? names.size()
                             : static_cast<std::size_t>(it - names.begin());
  };
  const std::size_t t_idx = index_of(exposure);
  if (t_idx == names.size()) {
    return Status::InvalidArgument("exposure '" + exposure +
                                   "' is not a statistics column");
  }
  const std::size_t o_idx = index_of(outcome);
  if (o_idx == names.size()) {
    return Status::InvalidArgument("outcome '" + outcome +
                                   "' is not a statistics column");
  }
  if (t_idx == o_idx) {
    return Status::InvalidArgument(
        "exposure and outcome must be distinct (both '" + exposure + "')");
  }

  EffectEstimate est;
  // Predictor index set: exposure first, then each usable adjustment
  // attribute (same skip rules as the table-based path).
  std::vector<std::size_t> xs{t_idx};
  for (const auto& name : adjustment) {
    if (name == exposure || name == outcome) continue;
    const std::size_t idx = index_of(name);
    if (idx == names.size()) continue;  // not materialized — skip
    xs.push_back(idx);
    est.adjusted_for.push_back(name);
  }

  const std::size_t n = stats.complete_rows();
  const std::size_t p = xs.size();
  if (n < p + 2) {
    return Status::InvalidArgument(
        "not enough complete rows (" + std::to_string(n) + ") for " +
        std::to_string(p) + " predictors");
  }

  // Standardized slopes from the correlation submatrix: R_xx b = R_xy.
  stats::Matrix local_corr;
  if (corr == nullptr) {
    local_corr = stats.Correlation();
    corr = &local_corr;
  }
  stats::Matrix rxx(p, p);
  std::vector<double> rxy(p);
  for (std::size_t i = 0; i < p; ++i) {
    for (std::size_t j = 0; j < p; ++j) rxx(i, j) = (*corr)(xs[i], xs[j]);
    rxy[i] = (*corr)(xs[i], o_idx);
  }
  std::vector<double> beta;
  if (fcache != nullptr && fcache->ridge() == 1e-9) {
    // The cached factor is Cholesky of R_xx + 1e-9 I — exactly
    // SolveNormalEquations' first attempt — so a cache solve reproduces
    // it bitwise. On failure (collinear predictors), replay its
    // stronger-ridge retry: +1e-9 then +1e-6 as two separate adds.
    auto cached = fcache->Solve(xs, rxy);
    if (cached.ok()) {
      beta = *std::move(cached);
    } else {
      stats::Matrix ridged = rxx;
      for (std::size_t d = 0; d < p; ++d) ridged(d, d) += 1e-9;
      for (std::size_t d = 0; d < p; ++d) ridged(d, d) += 1e-6;
      CDI_ASSIGN_OR_RETURN(beta, stats::CholeskySolve(ridged, rxy));
    }
  } else {
    CDI_ASSIGN_OR_RETURN(beta,
                         stats::SolveNormalEquations(rxx, rxy, 1e-9));
  }

  // rss on the standardized scale: total SS is W - 1 by construction.
  const double wsum = stats.weight_sum();
  double explained = 0.0;
  for (std::size_t i = 0; i < p; ++i) explained += beta[i] * rxy[i];
  const double rss = std::max(0.0, (wsum - 1.0) * (1.0 - explained));
  const double dof = static_cast<double>(n) - static_cast<double>(p) - 1.0;
  const double sigma2 = rss / dof;

  // Var(b) = sigma^2 R_xx^{-1} / (W - 1); mirror FitOls's diagonal guard
  // so collinear submatrices degrade to huge-but-finite standard errors.
  stats::Matrix guarded = rxx;
  for (std::size_t i = 0; i < p; ++i) guarded(i, i) += 1e-10;
  CDI_ASSIGN_OR_RETURN(stats::Matrix rxx_inv, stats::Inverse(guarded));
  const double denom = std::max(1.0, wsum - 1.0);
  const double var0 = sigma2 * rxx_inv(0, 0) / denom;
  est.std_error = var0 > 0.0 ? std::sqrt(var0) : 0.0;

  est.effect = beta[0];
  est.abs_effect = std::fabs(est.effect);
  if (est.std_error > 0.0) {
    est.p_value =
        stats::StudentTTwoSidedPValue(est.effect / est.std_error, dof);
  } else {
    est.p_value = 1.0;
  }
  est.n_used = n;
  return est;
}

}  // namespace cdi::core
