#include "core/identifiability.h"

#include <algorithm>
#include <set>

#include "graph/dsep.h"

namespace cdi::core {

Result<graph::Digraph> InduceClusterGraph(
    const graph::Digraph& attribute_dag,
    const std::map<std::string, std::vector<std::string>>& members) {
  std::vector<std::string> cluster_names;
  std::map<std::string, std::string> owner;
  for (const auto& [cluster, attrs] : members) {
    cluster_names.push_back(cluster);
    for (const auto& a : attrs) {
      if (!owner.emplace(a, cluster).second) {
        return Status::InvalidArgument("attribute '" + a +
                                       "' in multiple clusters");
      }
    }
  }
  graph::Digraph induced(cluster_names);
  for (const auto& [u, v] : attribute_dag.Edges()) {
    auto fu = owner.find(attribute_dag.NodeName(u));
    auto fv = owner.find(attribute_dag.NodeName(v));
    if (fu == owner.end() || fv == owner.end()) continue;  // unclustered
    if (fu->second == fv->second) continue;                // intra-cluster
    CDI_RETURN_IF_ERROR(induced.AddEdge(fu->second, fv->second));
  }
  return induced;
}

Result<CdagConsistencyReport> CheckCdagConsistency(
    const graph::Digraph& attribute_dag, const ClusterDag& cdag,
    std::size_t max_separation_checks) {
  if (!attribute_dag.IsAcyclic()) {
    return Status::FailedPrecondition("attribute graph must be a DAG");
  }
  CdagConsistencyReport report;
  CDI_ASSIGN_OR_RETURN(graph::Digraph induced,
                       InduceClusterGraph(attribute_dag, cdag.members()));
  report.clustering_admissible = induced.IsAcyclic();

  // Edge completeness / soundness against the induced graph.
  for (const auto& [u, v] : induced.Edges()) {
    if (!cdag.graph().HasEdge(induced.NodeName(u), induced.NodeName(v))) {
      report.missing_edges.emplace_back(induced.NodeName(u),
                                        induced.NodeName(v));
    }
  }
  for (const auto& [u, v] : cdag.graph().Edges()) {
    if (!induced.HasEdge(cdag.graph().NodeName(u),
                         cdag.graph().NodeName(v))) {
      report.unsupported_edges.emplace_back(cdag.graph().NodeName(u),
                                            cdag.graph().NodeName(v));
    }
  }

  // Separation faithfulness: cluster-level separations claimed by the
  // C-DAG must hold between every pair of member attributes given all
  // member attributes of the conditioning clusters. We enumerate
  // (A, B | S) with S drawn from single clusters and the full parent sets
  // — the shapes adjustment-set identification actually queries.
  if (!cdag.graph().IsAcyclic()) return report;  // separations undefined
  std::size_t checks = 0;
  const std::size_t k = cdag.graph().num_nodes();
  auto attr_ids = [&](const std::string& cluster)
      -> Result<std::vector<graph::NodeId>> {
    CDI_ASSIGN_OR_RETURN(std::vector<std::string> names,
                         cdag.MembersOf(cluster));
    std::vector<graph::NodeId> ids;
    for (const auto& n : names) {
      auto id = attribute_dag.NodeIdOf(n);
      if (id.ok()) ids.push_back(*id);
    }
    return ids;
  };
  for (graph::NodeId a = 0; a < k && checks < max_separation_checks; ++a) {
    for (graph::NodeId b = 0; b < k && checks < max_separation_checks; ++b) {
      if (a == b) continue;
      for (graph::NodeId s = 0; s < k && checks < max_separation_checks;
           ++s) {
        if (s == a || s == b) continue;
        std::set<graph::NodeId> given{s};
        auto cluster_sep = graph::DSeparated(cdag.graph(), a, b, given);
        if (!cluster_sep.ok() || !*cluster_sep) continue;
        ++checks;
        // The C-DAG asserts A _||_ B | S; verify attribute-wise.
        CDI_ASSIGN_OR_RETURN(auto a_ids,
                             attr_ids(cdag.graph().NodeName(a)));
        CDI_ASSIGN_OR_RETURN(auto b_ids,
                             attr_ids(cdag.graph().NodeName(b)));
        CDI_ASSIGN_OR_RETURN(auto s_ids,
                             attr_ids(cdag.graph().NodeName(s)));
        const std::set<graph::NodeId> s_set(s_ids.begin(), s_ids.end());
        bool violated = false;
        for (graph::NodeId ai : a_ids) {
          for (graph::NodeId bi : b_ids) {
            auto sep = graph::DSeparated(attribute_dag, ai, bi, s_set);
            if (sep.ok() && !*sep) {
              violated = true;
              break;
            }
          }
          if (violated) break;
        }
        if (violated) {
          report.separation_violations.push_back(
              cdag.graph().NodeName(a) + " _||_ " + cdag.graph().NodeName(b) +
              " | {" + cdag.graph().NodeName(s) + "}");
        }
      }
    }
  }
  return report;
}

}  // namespace cdi::core
