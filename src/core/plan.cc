#include "core/plan.h"

#include <utility>

#include "common/span.h"
#include "stats/correlation.h"

namespace cdi::core {

Result<CdagPlan> CdagPlan::Build(
    std::shared_ptr<const PipelineResult> artifact) {
  if (artifact == nullptr) {
    return Status::InvalidArgument("CdagPlan::Build: null artifact");
  }
  CdagPlan plan;
  plan.artifact_ = std::move(artifact);

  const table::Table& organized = plan.artifact_->organization.organized;
  stats::NumericDataset ds;
  for (std::size_t c = 0; c < organized.num_cols(); ++c) {
    const table::Column& col = organized.ColumnAt(c);
    if (col.type() == table::DataType::kString) continue;
    plan.names_.push_back(col.name());
    ds.columns.push_back(col.View());
  }
  if (plan.names_.size() < 2) {
    return Status::InvalidArgument(
        "organized panel has fewer than two numeric columns");
  }
  ds.weights = plan.artifact_->organization.row_weights;
  CDI_ASSIGN_OR_RETURN(plan.stats_, stats::SufficientStats::Compute(ds));
  // Derive the correlation matrix once and seed a factor cache over it
  // (ridge 1e-9 = SolveNormalEquations' ridge), so every AnswerPair
  // reuses one matrix and one cache instead of re-deriving per query.
  plan.corr_ =
      std::make_shared<const stats::Matrix>(plan.stats_.Correlation());
  plan.fcache_ =
      std::make_shared<stats::FactorCache>(plan.corr_.get(), 1e-9);
  return plan;
}

Result<PairAnswer> CdagPlan::AnswerPair(const std::string& exposure,
                                        const std::string& outcome) const {
  if (artifact_ == nullptr) {
    return Status::FailedPrecondition("CdagPlan is empty (not built)");
  }
  if (exposure == outcome) {
    return Status::InvalidArgument(
        "exposure and outcome must be distinct (both '" + exposure + "')");
  }
  const ClusterDag& cdag = artifact_->build.cdag;

  const auto cluster_of = [&cdag](const char* role,
                                  const std::string& attr)
      -> Result<std::string> {
    auto cluster = cdag.ClusterOf(attr);
    if (!cluster.ok()) {
      return Status::InvalidArgument(
          std::string(role) + " '" + attr +
          "' is not represented in the scenario C-DAG (non-numeric, or "
          "dropped during organization)");
    }
    return cluster;
  };
  PairAnswer answer;
  answer.exposure = exposure;
  answer.outcome = outcome;
  CDI_ASSIGN_OR_RETURN(answer.exposure_cluster,
                       cluster_of("exposure", exposure));
  CDI_ASSIGN_OR_RETURN(answer.outcome_cluster,
                       cluster_of("outcome", outcome));
  if (answer.exposure_cluster == answer.outcome_cluster) {
    return Status::InvalidArgument(
        "exposure '" + exposure + "' and outcome '" + outcome +
        "' map to the same cluster '" + answer.exposure_cluster +
        "' — cluster-level identification needs distinct clusters");
  }

  CDI_ASSIGN_OR_RETURN(
      auto mediators, cdag.MediatorClustersBetween(answer.exposure_cluster,
                                                   answer.outcome_cluster));
  CDI_ASSIGN_OR_RETURN(auto confounders,
                       cdag.ConfounderClustersBetween(
                           answer.exposure_cluster, answer.outcome_cluster));
  answer.mediator_clusters.assign(mediators.begin(), mediators.end());
  answer.confounder_clusters.assign(confounders.begin(), confounders.end());

  CDI_ASSIGN_OR_RETURN(
      auto direct_adjustment,
      cdag.DirectEffectAdjustmentFor(answer.exposure_cluster,
                                     answer.outcome_cluster));
  CDI_ASSIGN_OR_RETURN(
      auto total_adjustment,
      cdag.TotalEffectAdjustmentFor(answer.exposure_cluster,
                                    answer.outcome_cluster));

  CDI_ASSIGN_OR_RETURN(
      answer.direct_effect,
      EstimateEffectFromStats(stats_, names_, exposure, outcome,
                              direct_adjustment, corr_.get(),
                              fcache_.get()));
  CDI_ASSIGN_OR_RETURN(
      answer.total_effect,
      EstimateEffectFromStats(stats_, names_, exposure, outcome,
                              total_adjustment, corr_.get(),
                              fcache_.get()));
  return answer;
}

}  // namespace cdi::core
