#include "core/fd.h"

#include <algorithm>
#include <map>
#include <unordered_map>

namespace cdi::core {

Result<double> ApproximateFdError(const table::Table& t,
                                  const std::string& lhs,
                                  const std::string& rhs) {
  CDI_ASSIGN_OR_RETURN(const table::Column* l, t.GetColumn(lhs));
  CDI_ASSIGN_OR_RETURN(const table::Column* r, t.GetColumn(rhs));
  if (lhs == rhs) return Status::InvalidArgument("lhs == rhs");
  // For each lhs value, count rhs value frequencies.
  std::unordered_map<std::string, std::unordered_map<std::string, std::size_t>>
      groups;
  std::size_t considered = 0;
  for (std::size_t row = 0; row < t.num_rows(); ++row) {
    if (l->IsNull(row)) continue;
    const std::string lv = l->Get(row).ToString();
    const std::string rv =
        r->IsNull(row) ? "\x01<null>" : r->Get(row).ToString();
    groups[lv][rv] += 1;
    ++considered;
  }
  if (considered == 0) {
    return Status::FailedPrecondition("no non-null lhs values");
  }
  std::size_t kept = 0;
  for (const auto& [lv, counts] : groups) {
    std::size_t best = 0;
    for (const auto& [rv, c] : counts) best = std::max(best, c);
    kept += best;
  }
  return 1.0 - static_cast<double>(kept) / static_cast<double>(considered);
}

Result<std::vector<FdCandidate>> FindApproximateFds(
    const table::Table& t, double max_error,
    double max_lhs_distinct_fraction) {
  std::vector<FdCandidate> out;
  const auto names = t.ColumnNames();
  const double max_distinct =
      max_lhs_distinct_fraction * static_cast<double>(t.num_rows());
  for (const auto& lhs : names) {
    CDI_ASSIGN_OR_RETURN(const table::Column* l, t.GetColumn(lhs));
    if (static_cast<double>(l->DistinctCount()) > max_distinct) continue;
    for (const auto& rhs : names) {
      if (lhs == rhs) continue;
      auto err = ApproximateFdError(t, lhs, rhs);
      if (!err.ok()) continue;
      if (*err <= max_error) out.push_back({lhs, rhs, *err});
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const FdCandidate& a, const FdCandidate& b) {
                     return a.g3_error < b.g3_error;
                   });
  return out;
}

}  // namespace cdi::core
