#ifndef CDI_CORE_PLAN_H_
#define CDI_CORE_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/pipeline.h"
#include "stats/factor_cache.h"
#include "stats/sufficient_stats.h"

namespace cdi::core {

/// Answer to one (exposure, outcome) pair query derived from a scenario's
/// C-DAG artifact: the identification output (mediator / confounder
/// clusters and the adjustment sets they imply) plus effect estimates
/// computed from the artifact's shared sufficient statistics.
struct PairAnswer {
  std::string exposure;
  std::string outcome;
  std::string exposure_cluster;
  std::string outcome_cluster;
  /// Clusters on a directed exposure -> outcome path, sorted.
  std::vector<std::string> mediator_clusters;
  /// Common-ancestor clusters of the pair, sorted.
  std::vector<std::string> confounder_clusters;
  /// Controlled direct effect (adjusting for mediators + confounders).
  EffectEstimate direct_effect;
  /// Total effect (backdoor adjustment on confounders only).
  EffectEstimate total_effect;
};

/// A scenario's multi-query plan: one built C-DAG artifact (the full
/// PipelineResult of the scenario's canonical exposure/outcome run) plus
/// sufficient statistics over its organized panel, packaged to answer
/// *any* (exposure, outcome) pair without re-running discovery.
///
/// This operationalizes the paper's §5 open question — "whether a single
/// C-DAG is sufficient to identify adjustment sets for multiple
/// cause-effect estimations": AnswerPair reads the adjustment sets off
/// the one cached C-DAG via the ClusterDag *Between / *AdjustmentFor
/// multi-query API and estimates effects by normal equations on
/// covariance submatrices (EstimateEffectFromStats) — O(p^3) linear
/// algebra per query instead of a ~tens-of-milliseconds pipeline run.
///
/// Determinism contract: AnswerPair is a pure function of the artifact.
/// Because Pipeline::Run is bitwise-deterministic, a plan built fresh
/// from a fresh run answers every pair bitwise-identically to a cached
/// plan — which is exactly what the serving sweep tests and
/// `cdi_loadgen --sweep` verify.
class CdagPlan {
 public:
  CdagPlan() = default;

  /// Builds the plan over `artifact` (shared ownership: the statistics'
  /// column spans borrow the artifact's organized table, so the plan
  /// keeps the artifact alive). The statistics are weighted by the
  /// artifact's IPW row weights and cover every numeric column of the
  /// organized panel.
  static Result<CdagPlan> Build(
      std::shared_ptr<const PipelineResult> artifact);

  const PipelineResult& artifact() const { return *artifact_; }
  std::shared_ptr<const PipelineResult> shared_artifact() const {
    return artifact_;
  }

  /// Numeric columns of the organized panel, index-aligned with stats().
  const std::vector<std::string>& attributes() const { return names_; }
  const stats::SufficientStats& stats() const { return stats_; }

  /// Answers one pair query off the built C-DAG. kInvalidArgument when an
  /// attribute is missing from the C-DAG (dropped during organization or
  /// non-numeric) or when both map to the same cluster — cluster-level
  /// identification needs the pair in distinct clusters.
  Result<PairAnswer> AnswerPair(const std::string& exposure,
                                const std::string& outcome) const;

 private:
  std::shared_ptr<const PipelineResult> artifact_;
  std::vector<std::string> names_;
  stats::SufficientStats stats_;
  /// Correlation matrix of stats_, derived once at Build; the factor
  /// cache borrows it, so both live behind stable heap addresses — the
  /// plan stays movable (and registry entries move plans around).
  /// AnswerPair feeds them to the batched EstimateEffectFromStats:
  /// consecutive pair queries share Cholesky factors across overlapping
  /// adjustment sets. Answers are bitwise identical to the unbatched
  /// path, so the fresh-vs-cached plan equivalence contract is unchanged.
  std::shared_ptr<const stats::Matrix> corr_;
  std::shared_ptr<stats::FactorCache> fcache_;
};

}  // namespace cdi::core

#endif  // CDI_CORE_PLAN_H_
