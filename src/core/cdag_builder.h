#ifndef CDI_CORE_CDAG_BUILDER_H_
#define CDI_CORE_CDAG_BUILDER_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/timer.h"
#include "core/cdag.h"
#include "core/varclus.h"
#include "discovery/discovery.h"
#include "knowledge/text_oracle.h"
#include "knowledge/topic_model.h"
#include "table/table.h"

namespace cdi::core {

/// Edge-inference strategy of the C-DAG Builder.
enum class EdgeInference {
  kHybrid,      ///< CATER: oracle claims pruned by PC-style CI tests
  kOracleOnly,  ///< the paper's "GPT-3 Only" baseline (no pruning)
  kDataPc,      ///< PC on the cluster representatives
  kDataFci,     ///< FCI on the cluster representatives
  kDataGes,     ///< GES on the cluster representatives
  kDataLingam,  ///< DirectLiNGAM on the cluster representatives
};

/// Stable display name matching Table 3 ("CATER", "GPT-3 Only", ...).
const char* EdgeInferenceName(EdgeInference mode);

struct CdagBuilderOptions {
  EdgeInference inference = EdgeInference::kHybrid;
  VarClusOptions varclus;
  /// CI significance level for the pruning stage / data baselines.
  double alpha = 0.05;
  /// Largest conditioning-set size for the pruning stage.
  int max_cond_size = 2;
  /// Conditional pruning requires *confident* independence: an oracle edge
  /// is removed only when some conditioning set yields p >= this (plain
  /// alpha would prune weak-but-real relations wholesale).
  double prune_p_threshold = 0.40;
  /// Hybrid augmentation: when the data shows a *full-conditional*
  /// dependence (partial correlation given all other clusters) between two
  /// clusters the oracle did not connect, add the edge, oriented by the
  /// oracle's direction-preference query. This is the data half of the
  /// hybrid: text recall is imperfect, and a strong Markov-blanket edge in
  /// the data should not be dropped just because the LLM missed it.
  bool augment_from_data = true;
  double augment_alpha = 0.01;
  /// Hybrid pruning removes an oracle edge only when the data gives
  /// *positive evidence of redundancy*: the endpoints are marginally
  /// dependent (p < alpha) yet some conditioning set renders them
  /// independent (p >= alpha). Marginally independent pairs are left to
  /// the oracle — a linear CI test is blind to relations that are "not
  /// present in the data" (nonlinear/semantic), which is exactly where
  /// the paper's hybrid approach must trust the text side.
  bool prune_requires_marginal_dependence = true;
  /// Worker threads for the pruning stage's CI tests and for the data-only
  /// baselines. Prune decisions are made against a snapshot of the oracle
  /// claim graph (PC-stable style), so the result is bitwise-identical at
  /// any thread count.
  int num_threads = 1;
  discovery::DiscoveryOptions discovery;
  /// Warm-start seed for the data-driven discovery stage: edges of a
  /// previous epoch's C-DAG in cluster *topic-name* space. Mapped to the
  /// current run's cluster indices by topic name before discovery;
  /// names that no longer resolve to a cluster are dropped. Consulted by
  /// kDataPc (skeleton seed) and kDataGes (initial DAG); the other modes
  /// ignore it. Empty = cold start.
  std::vector<std::pair<std::string, std::string>> warm_start_edges;
};

struct CdagBuildResult {
  /// The constructed C-DAG. For kOracleOnly the underlying graph may be
  /// cyclic (the raw oracle output; the paper reports the same).
  ClusterDag cdag;
  /// Directed-edge claims in the C-DAG's cluster-name space, used for the
  /// Table 3 metrics. For PDAG/PAG baselines undirected/circle edges count
  /// both ways; `definite` below holds only definitely directed edges.
  std::vector<std::pair<std::string, std::string>> claims;
  /// Definitely directed edges (used for mediator identification).
  std::vector<std::pair<std::string, std::string>> definite;
  /// Edges to seed the *next* epoch's discovery with
  /// (CdagBuilderOptions::warm_start_edges), in topic-name space. Shape
  /// depends on the inference mode: kDataPc emits its full skeleton
  /// adjacencies, kDataGes its learned search-state DAG (CPDAG claims
  /// would force arbitrary orientations on the seeded run); other modes
  /// fall back to `definite`. The serving layer stashes this on the new
  /// bundle at every epoch rollover.
  std::vector<std::pair<std::string, std::string>> warm_seed;
  /// Cluster name -> assigned topic.
  std::vector<std::string> cluster_topics;
  /// Edges removed by the pruning stage (hybrid mode).
  std::vector<std::pair<std::string, std::string>> pruned_edges;
  /// Edges removed by cycle repair (hybrid mode).
  std::vector<std::pair<std::string, std::string>> cycle_repaired_edges;
  std::size_t oracle_queries = 0;
  std::size_t ci_tests = 0;
};

/// §3.3 / §4 — The C-DAG Builder. Groups the organized table's attributes
/// with VARCLUS, names the clusters with the topic model, and infers
/// cluster-level causal edges. CATER's hybrid strategy asks the text
/// oracle for candidate edges between cluster topics, then prunes
/// redundant edges with PC-style CI tests on cluster representatives
/// (the standardized mean of each cluster's members) and repairs any
/// remaining cycles by removing the edge with the weakest data support.
class CdagBuilder {
 public:
  CdagBuilder(const knowledge::TextCausalOracle* oracle,
              const knowledge::TopicModel* topics,
              CdagBuilderOptions options = CdagBuilderOptions())
      : oracle_(oracle), topics_(topics), options_(options) {}

  /// Builds the C-DAG over the numeric attributes of `organized`
  /// (excluding `entity_column`). `exposure` and `outcome` become
  /// singleton clusters. `row_weights` (optional) weight the CI tests.
  Result<CdagBuildResult> Build(const table::Table& organized,
                                const std::string& entity_column,
                                const std::string& exposure,
                                const std::string& outcome,
                                const std::vector<double>& row_weights = {},
                                LatencyMeter* meter = nullptr) const;

 private:
  const knowledge::TextCausalOracle* oracle_;  // required unless kData*
  const knowledge::TopicModel* topics_;        // may be null (fallback names)
  CdagBuilderOptions options_;
};

}  // namespace cdi::core

#endif  // CDI_CORE_CDAG_BUILDER_H_
