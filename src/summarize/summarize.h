#ifndef CDI_SUMMARIZE_SUMMARIZE_H_
#define CDI_SUMMARIZE_SUMMARIZE_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/cdag.h"
#include "graph/digraph.h"
#include "summarize/summary_dag.h"

namespace cdi::summarize {

/// Greedy CaGreS-style summarization of a causal DAG down to
/// `options.budget` nodes.
///
/// Each round scores every legal candidate pair (nodes that are adjacent
/// or share a parent or a child; if none exists, any unprotected pair)
/// by *semantic loss*: the number of marginal d-separation verdicts
/// (empty conditioning set, graph::DSeparated) that flip on a canonical
/// sampled pair set when the two nodes are contracted. The pair with
/// minimal (loss, merged-degree, lexicographic name) is contracted;
/// contractions that would create a cycle are illegal, and the exposure
/// and outcome nodes are never merged. The pass is single-threaded with
/// a total candidate order, so the output is a pure function of
/// (dag, members, exposure, outcome, options) — byte-identical across
/// thread counts, shard counts, and call sites.
///
/// `members` maps a node name to the attributes it represents (a C-DAG's
/// cluster members); names absent from the map represent themselves
/// (full-attribute DAGs pass an empty map).
///
/// Errors:
///  - kInvalidArgument: budget < 2, budget exceeds the DAG's node count
///    (message names the DAG size), unknown exposure/outcome, or
///    exposure == outcome.
///  - kFailedPrecondition: the DAG is cyclic, or no legal contraction
///    remains above the budget (the budget is below the DAG's safe
///    floor — e.g. every remaining pair is protected or would create a
///    cycle).
Result<SummaryDag> Summarize(
    const graph::Digraph& dag,
    const std::map<std::string, std::vector<std::string>>& members,
    const std::string& exposure, const std::string& outcome,
    const SummarizeOptions& options);

/// Summarizes a built C-DAG: nodes are its clusters (with member
/// attributes as provenance), exposure/outcome its exposure/outcome
/// clusters.
Result<SummaryDag> SummarizeClusterDag(const core::ClusterDag& cdag,
                                       const SummarizeOptions& options);

}  // namespace cdi::summarize

#endif  // CDI_SUMMARIZE_SUMMARIZE_H_
