#ifndef CDI_SUMMARIZE_SUMMARY_DAG_H_
#define CDI_SUMMARIZE_SUMMARY_DAG_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "graph/digraph.h"

namespace cdi::summarize {

/// Tuning knobs for the greedy CaGreS-style node-merge pass.
struct SummarizeOptions {
  /// Target node count k. The pass contracts node pairs until the graph
  /// has at most `budget` nodes. Must be >= 2 and <= the DAG's node
  /// count; exposure and outcome nodes are never merged.
  std::size_t budget = 0;
  /// Cap on the d-separation scoring pair set. When the DAG has more
  /// than `max_pairs` unordered node pairs, a canonical seeded subsample
  /// of this size is scored instead — the seed is derived from the node
  /// names, so the sample (and therefore the summary) is a pure function
  /// of the input.
  std::size_t max_pairs = 64;
};

/// One super-node of a summary: a set of original clusters merged into a
/// single node, with provenance back to the original cluster names and
/// their member attributes.
struct SummaryNode {
  /// Canonical name: the sorted original cluster names joined by '+'.
  std::string name;
  /// Original cluster names absorbed into this super-node, sorted.
  std::vector<std::string> members;
  /// Union of the member clusters' attributes, sorted.
  std::vector<std::string> attributes;
};

/// A k-node summary of a causal DAG (CaGreS-style, after "Summarized
/// Causal Explanations" / the Causal DAG Summarization follow-up to the
/// source paper): super-nodes are merged clusters, edges are the
/// contractions of the original edges, exposure and outcome survive as
/// singleton super-nodes, and the graph is acyclic by construction.
///
/// The artifact is immutable once built and fully deterministic: the
/// same input DAG and options always produce byte-identical ToDot() and
/// ToJson() renderings, regardless of thread count or call site — the
/// merge pass is single-threaded with a canonical candidate order and a
/// stable (loss, degree, name) tie-break.
class SummaryDag {
 public:
  SummaryDag() = default;

  /// Summary graph over super-node names (node order is sorted by name —
  /// canonical regardless of merge order).
  const graph::Digraph& graph() const { return graph_; }

  /// Super-nodes, index-aligned with graph() node ids.
  const std::vector<SummaryNode>& nodes() const { return nodes_; }

  /// Names of the super-nodes holding the exposure / outcome cluster
  /// (always the original cluster names: both are unmergeable).
  const std::string& exposure_node() const { return exposure_node_; }
  const std::string& outcome_node() const { return outcome_node_; }

  std::size_t num_nodes() const { return graph_.num_nodes(); }
  std::size_t num_edges() const { return graph_.num_edges(); }

  /// Size of the DAG the summary was built from.
  std::size_t original_nodes() const { return original_nodes_; }
  std::size_t original_edges() const { return original_edges_; }

  /// Number of node pairs in the d-separation scoring sample.
  std::size_t pairs_scored() const { return pairs_scored_; }
  /// Cumulative semantic loss: d-separation verdicts (empty conditioning
  /// set) flipped by the contractions that were actually applied.
  std::size_t pairs_changed() const { return pairs_changed_; }

  /// original_nodes / num_nodes (1.0 for the identity summary).
  double CompressionRatio() const {
    return graph_.num_nodes() == 0
               ? 1.0
               : static_cast<double>(original_nodes_) /
                     static_cast<double>(graph_.num_nodes());
  }

  /// The super-node an original cluster was merged into. kNotFound when
  /// the cluster was not a node of the summarized DAG.
  Result<std::string> NodeOf(const std::string& original_cluster) const;

  /// Super-nodes that are common ancestors of the exposure and outcome
  /// nodes in the summary graph — the summary-level confounders.
  std::set<std::string> ConfounderNodes() const;
  /// Super-nodes on a directed exposure -> outcome path in the summary.
  std::set<std::string> MediatorNodes() const;

  /// Original cluster names inside the confounder super-nodes, sorted —
  /// the backdoor adjustment set *read off the summary* instead of the
  /// full DAG (the quantity whose bias the k-sweep in bench_ablation
  /// measures).
  std::vector<std::string> TotalEffectAdjustmentClusters() const;
  /// Member attributes of those clusters, sorted.
  std::vector<std::string> TotalEffectAdjustmentAttributes() const;

  /// Graphviz rendering (graph/dot) with exposure/outcome highlighted.
  /// Deterministic byte-for-byte.
  std::string ToDot() const;

  /// Compact single-line JSON rendering: nodes (with member/attribute
  /// provenance), edges, exposure/outcome, original sizes, loss stats.
  /// Deterministic byte-for-byte.
  std::string ToJson() const;

  /// Canonical 64-bit fingerprint over the full artifact (nodes, members,
  /// attributes, edges, endpoints, sizes, loss stats). Two summaries
  /// fingerprint equal iff they render identically.
  std::uint64_t Fingerprint() const;

 private:
  friend class SummaryAssembler;

  graph::Digraph graph_;
  std::vector<SummaryNode> nodes_;
  std::map<std::string, std::string> cluster_to_node_;
  std::string exposure_node_;
  std::string outcome_node_;
  std::size_t original_nodes_ = 0;
  std::size_t original_edges_ = 0;
  std::size_t pairs_scored_ = 0;
  std::size_t pairs_changed_ = 0;
};

}  // namespace cdi::summarize

#endif  // CDI_SUMMARIZE_SUMMARY_DAG_H_
