#include "summarize/summary_dag.h"

#include <algorithm>
#include <cstdio>

#include "common/hash.h"
#include "graph/dot.h"

namespace cdi::summarize {

namespace {

/// JSON string escaping (control characters, quotes, backslashes). Node
/// names are attribute/cluster identifiers, but the renderer must stay
/// lossless for any input.
void AppendJsonString(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendJsonStringArray(const std::vector<std::string>& values,
                           std::string* out) {
  out->push_back('[');
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out->push_back(',');
    AppendJsonString(values[i], out);
  }
  out->push_back(']');
}

}  // namespace

Result<std::string> SummaryDag::NodeOf(
    const std::string& original_cluster) const {
  auto it = cluster_to_node_.find(original_cluster);
  if (it == cluster_to_node_.end()) {
    return Status::NotFound("cluster '" + original_cluster +
                            "' is not a node of the summarized DAG");
  }
  return it->second;
}

std::set<std::string> SummaryDag::ConfounderNodes() const {
  std::set<std::string> out;
  auto t = graph_.NodeIdOf(exposure_node_);
  auto o = graph_.NodeIdOf(outcome_node_);
  if (!t.ok() || !o.ok()) return out;
  const std::set<graph::NodeId> anc_t = graph_.Ancestors(*t);
  const std::set<graph::NodeId> anc_o = graph_.Ancestors(*o);
  for (graph::NodeId id : anc_t) {
    if (anc_o.count(id) > 0 && id != *t && id != *o) {
      out.insert(graph_.NodeName(id));
    }
  }
  return out;
}

std::set<std::string> SummaryDag::MediatorNodes() const {
  std::set<std::string> out;
  auto t = graph_.NodeIdOf(exposure_node_);
  auto o = graph_.NodeIdOf(outcome_node_);
  if (!t.ok() || !o.ok()) return out;
  for (graph::NodeId id : graph_.NodesOnDirectedPaths(*t, *o)) {
    out.insert(graph_.NodeName(id));
  }
  return out;
}

std::vector<std::string> SummaryDag::TotalEffectAdjustmentClusters() const {
  std::set<std::string> clusters;
  for (const std::string& node : ConfounderNodes()) {
    auto id = graph_.NodeIdOf(node);
    if (!id.ok()) continue;
    for (const std::string& member : nodes_[*id].members) {
      clusters.insert(member);
    }
  }
  return std::vector<std::string>(clusters.begin(), clusters.end());
}

std::vector<std::string> SummaryDag::TotalEffectAdjustmentAttributes() const {
  std::set<std::string> attrs;
  for (const std::string& node : ConfounderNodes()) {
    auto id = graph_.NodeIdOf(node);
    if (!id.ok()) continue;
    for (const std::string& attr : nodes_[*id].attributes) {
      attrs.insert(attr);
    }
  }
  return std::vector<std::string>(attrs.begin(), attrs.end());
}

std::string SummaryDag::ToDot() const {
  graph::DotOptions options;
  options.graph_name = "summary";
  options.highlighted = {exposure_node_, outcome_node_};
  return graph::ToDot(graph_, options);
}

std::string SummaryDag::ToJson() const {
  std::string out;
  out.reserve(256 + 64 * nodes_.size());
  out += "{\"nodes\":[";
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += "{\"name\":";
    AppendJsonString(nodes_[i].name, &out);
    out += ",\"members\":";
    AppendJsonStringArray(nodes_[i].members, &out);
    out += ",\"attributes\":";
    AppendJsonStringArray(nodes_[i].attributes, &out);
    out.push_back('}');
  }
  out += "],\"edges\":[";
  bool first = true;
  for (const auto& [from, to] : graph_.Edges()) {
    if (!first) out.push_back(',');
    first = false;
    out.push_back('[');
    AppendJsonString(graph_.NodeName(from), &out);
    out.push_back(',');
    AppendJsonString(graph_.NodeName(to), &out);
    out.push_back(']');
  }
  out += "],\"exposure\":";
  AppendJsonString(exposure_node_, &out);
  out += ",\"outcome\":";
  AppendJsonString(outcome_node_, &out);
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                ",\"original_nodes\":%zu,\"original_edges\":%zu,"
                "\"pairs_scored\":%zu,\"pairs_changed\":%zu}",
                original_nodes_, original_edges_, pairs_scored_,
                pairs_changed_);
  out += buf;
  return out;
}

std::uint64_t SummaryDag::Fingerprint() const {
  Fnv1a h("cdi::summarize::SummaryFingerprint/v1");
  h.Mix(static_cast<std::uint64_t>(nodes_.size()));
  for (const SummaryNode& node : nodes_) {
    h.Mix(node.name);
    h.Mix(static_cast<std::uint64_t>(node.members.size()));
    for (const auto& m : node.members) h.Mix(m);
    h.Mix(static_cast<std::uint64_t>(node.attributes.size()));
    for (const auto& a : node.attributes) h.Mix(a);
  }
  const auto edges = graph_.Edges();
  h.Mix(static_cast<std::uint64_t>(edges.size()));
  for (const auto& [from, to] : edges) {
    h.Mix(graph_.NodeName(from)).Mix(graph_.NodeName(to));
  }
  h.Mix(exposure_node_).Mix(outcome_node_);
  h.Mix(static_cast<std::uint64_t>(original_nodes_))
      .Mix(static_cast<std::uint64_t>(original_edges_))
      .Mix(static_cast<std::uint64_t>(pairs_scored_))
      .Mix(static_cast<std::uint64_t>(pairs_changed_));
  return h.Digest();
}

}  // namespace cdi::summarize
