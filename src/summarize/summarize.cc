#include "summarize/summarize.h"

#include <algorithm>
#include <cstdint>
#include <optional>
#include <set>
#include <tuple>
#include <utility>

#include "common/hash.h"
#include "common/logging.h"
#include "common/rng.h"
#include "graph/dsep.h"

namespace cdi::summarize {

namespace {

/// Working state of the merge pass: each original node belongs to exactly
/// one group; groups are identified by their canonical name (sorted
/// member names joined by '+').
struct MergeState {
  /// Group name -> original node names, sorted.
  std::map<std::string, std::vector<std::string>> groups;
  /// Original node name -> owning group name.
  std::map<std::string, std::string> owner;
};

/// The contraction of `dag` under the grouping, with `u` and `v`
/// additionally unified under `merged_name` when both are non-empty.
/// Node order is sorted group-name order (canonical), self-loops are
/// dropped, duplicate edges collapse.
graph::Digraph Contract(const graph::Digraph& dag, const MergeState& state,
                        const std::string& u, const std::string& v,
                        const std::string& merged_name) {
  std::vector<std::string> names;
  names.reserve(state.groups.size());
  for (const auto& [name, _] : state.groups) {
    if (!u.empty() && (name == u || name == v)) continue;
    names.push_back(name);
  }
  if (!u.empty()) names.push_back(merged_name);
  std::sort(names.begin(), names.end());
  graph::Digraph out(names);
  const auto project = [&](graph::NodeId id) -> const std::string& {
    const std::string& group = state.owner.at(dag.NodeName(id));
    if (!u.empty() && (group == u || group == v)) return merged_name;
    return group;
  };
  for (const auto& [from, to] : dag.Edges()) {
    const std::string& gf = project(from);
    const std::string& gt = project(to);
    if (gf == gt) continue;
    CDI_CHECK(out.AddEdge(gf, gt).ok());
  }
  return out;
}

/// Canonical scoring sample: all unordered pairs of original node names
/// when they fit in `max_pairs`, otherwise a seeded subsample whose seed
/// is a pure function of the node names — the summary must not depend on
/// anything but its inputs.
std::vector<std::pair<std::string, std::string>> SamplePairs(
    const std::vector<std::string>& sorted_names, std::size_t max_pairs) {
  std::vector<std::pair<std::string, std::string>> pairs;
  const std::size_t n = sorted_names.size();
  pairs.reserve(n * (n - 1) / 2);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      pairs.emplace_back(sorted_names[i], sorted_names[j]);
    }
  }
  if (pairs.size() <= max_pairs) return pairs;
  Fnv1a h("cdi::summarize::PairSample/v1");
  h.Mix(static_cast<std::uint64_t>(n));
  for (const auto& name : sorted_names) h.Mix(name);
  h.Mix(static_cast<std::uint64_t>(max_pairs));
  Rng rng(h.Digest());
  rng.Shuffle(&pairs);
  pairs.resize(max_pairs);
  std::sort(pairs.begin(), pairs.end());
  return pairs;
}

/// Marginal d-separation verdicts of the sampled pairs on a contracted
/// graph. nullopt when both endpoints project into the same group (the
/// question is internal to one super-node).
std::vector<std::optional<bool>> PairVerdicts(
    const graph::Digraph& g, const MergeState& state, const std::string& u,
    const std::string& v, const std::string& merged_name,
    const std::vector<std::pair<std::string, std::string>>& pairs) {
  std::vector<std::optional<bool>> verdicts(pairs.size());
  const auto project = [&](const std::string& node) -> const std::string& {
    const std::string& group = state.owner.at(node);
    if (!u.empty() && (group == u || group == v)) return merged_name;
    return group;
  };
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    const std::string& ga = project(pairs[i].first);
    const std::string& gb = project(pairs[i].second);
    if (ga == gb) continue;
    auto a = g.NodeIdOf(ga);
    auto b = g.NodeIdOf(gb);
    CDI_CHECK(a.ok() && b.ok());
    auto sep = graph::DSeparated(g, *a, *b, {});
    if (sep.ok()) verdicts[i] = *sep;
  }
  return verdicts;
}

}  // namespace

/// Grants the merge pass access to SummaryDag's private fields; the
/// artifact stays immutable to every other caller.
class SummaryAssembler {
 public:
  static SummaryDag Assemble(
      const graph::Digraph& dag, const MergeState& state,
      const std::map<std::string, std::vector<std::string>>& members,
      const std::string& exposure, const std::string& outcome,
      std::size_t pairs_scored, std::size_t pairs_changed) {
    SummaryDag out;
    out.graph_ = Contract(dag, state, "", "", "");
    out.nodes_.resize(out.graph_.num_nodes());
    for (const auto& [name, group_members] : state.groups) {
      auto id = out.graph_.NodeIdOf(name);
      CDI_CHECK(id.ok());
      SummaryNode& node = out.nodes_[*id];
      node.name = name;
      node.members = group_members;  // already sorted
      std::set<std::string> attrs;
      for (const auto& member : group_members) {
        out.cluster_to_node_[member] = name;
        auto it = members.find(member);
        if (it != members.end()) {
          attrs.insert(it->second.begin(), it->second.end());
        } else {
          attrs.insert(member);
        }
      }
      node.attributes.assign(attrs.begin(), attrs.end());
    }
    out.exposure_node_ = state.owner.at(exposure);
    out.outcome_node_ = state.owner.at(outcome);
    out.original_nodes_ = dag.num_nodes();
    out.original_edges_ = dag.num_edges();
    out.pairs_scored_ = pairs_scored;
    out.pairs_changed_ = pairs_changed;
    return out;
  }
};

Result<SummaryDag> Summarize(
    const graph::Digraph& dag,
    const std::map<std::string, std::vector<std::string>>& members,
    const std::string& exposure, const std::string& outcome,
    const SummarizeOptions& options) {
  const std::size_t n = dag.num_nodes();
  if (n == 0) {
    return Status::InvalidArgument("cannot summarize an empty DAG");
  }
  if (!dag.HasNode(exposure)) {
    return Status::InvalidArgument("exposure node '" + exposure +
                                   "' is not in the DAG");
  }
  if (!dag.HasNode(outcome)) {
    return Status::InvalidArgument("outcome node '" + outcome +
                                   "' is not in the DAG");
  }
  if (exposure == outcome) {
    return Status::InvalidArgument(
        "exposure and outcome must be distinct (both '" + exposure + "')");
  }
  if (!dag.IsAcyclic()) {
    return Status::FailedPrecondition(
        "summarization requires an acyclic DAG (the input has a cycle)");
  }
  if (options.budget < 2) {
    return Status::InvalidArgument(
        "summary budget k must be at least 2 (got " +
        std::to_string(options.budget) + ")");
  }
  if (options.budget > n) {
    return Status::InvalidArgument(
        "summary budget k=" + std::to_string(options.budget) +
        " exceeds the DAG's " + std::to_string(n) + " nodes");
  }

  MergeState state;
  std::vector<std::string> sorted_names = dag.NodeNames();
  std::sort(sorted_names.begin(), sorted_names.end());
  for (const auto& name : sorted_names) {
    state.groups.emplace(name, std::vector<std::string>{name});
    state.owner.emplace(name, name);
  }

  const std::vector<std::pair<std::string, std::string>> sample =
      SamplePairs(sorted_names, options.max_pairs);
  std::size_t pairs_changed = 0;

  graph::Digraph cur = Contract(dag, state, "", "", "");
  while (cur.num_nodes() > options.budget) {
    // Baseline verdicts for this round, computed once on the current
    // contraction.
    const std::vector<std::optional<bool>> before =
        PairVerdicts(cur, state, "", "", "", sample);

    // Candidate pairs: adjacent or sharing a parent/child in the current
    // graph — the merges CaGreS considers structurally meaningful. When
    // none is legal (e.g. disconnected islands), fall back to every
    // unprotected pair so the budget stays reachable.
    const std::string& t_group = state.owner.at(exposure);
    const std::string& o_group = state.owner.at(outcome);
    const auto protected_group = [&](const std::string& g) {
      return g == t_group || g == o_group;
    };
    std::set<std::pair<std::string, std::string>> candidates;
    const auto add_candidate = [&](graph::NodeId a, graph::NodeId b) {
      const std::string& na = cur.NodeName(a);
      const std::string& nb = cur.NodeName(b);
      if (protected_group(na) || protected_group(nb)) return;
      candidates.insert(na < nb ? std::make_pair(na, nb)
                                : std::make_pair(nb, na));
    };
    for (const auto& [from, to] : cur.Edges()) add_candidate(from, to);
    for (graph::NodeId id = 0; id < cur.num_nodes(); ++id) {
      const auto& kids = cur.Children(id);
      for (auto a = kids.begin(); a != kids.end(); ++a) {
        for (auto b = std::next(a); b != kids.end(); ++b) {
          add_candidate(*a, *b);
        }
      }
      const auto& parents = cur.Parents(id);
      for (auto a = parents.begin(); a != parents.end(); ++a) {
        for (auto b = std::next(a); b != parents.end(); ++b) {
          add_candidate(*a, *b);
        }
      }
    }
    if (candidates.empty()) {
      for (graph::NodeId a = 0; a < cur.num_nodes(); ++a) {
        for (graph::NodeId b = a + 1; b < cur.num_nodes(); ++b) {
          add_candidate(a, b);
        }
      }
    }

    // Score candidates in canonical (name, name) order; the best key is
    // (semantic loss, merged degree, names) — strictly smaller wins, so
    // the choice is a total order independent of enumeration details.
    using Key = std::tuple<std::size_t, std::size_t, std::string,
                           std::string>;
    std::optional<Key> best_key;
    std::optional<graph::Digraph> best_graph;
    std::string best_merged_name;
    for (const auto& [u, v] : candidates) {
      // Canonical super-node name: all absorbed original names, sorted.
      std::vector<std::string> merged_members;
      const auto& mu = state.groups.at(u);
      const auto& mv = state.groups.at(v);
      merged_members.reserve(mu.size() + mv.size());
      std::merge(mu.begin(), mu.end(), mv.begin(), mv.end(),
                 std::back_inserter(merged_members));
      std::string merged_name;
      for (const auto& m : merged_members) {
        if (!merged_name.empty()) merged_name += '+';
        merged_name += m;
      }

      graph::Digraph contracted = Contract(dag, state, u, v, merged_name);
      if (!contracted.IsAcyclic()) continue;  // illegal contraction

      // Cheap structural tie-break: distinct external neighbors of the
      // merged node (prefer absorbing peripheral structure).
      const auto uid = cur.NodeIdOf(u);
      const auto vid = cur.NodeIdOf(v);
      CDI_CHECK(uid.ok() && vid.ok());
      std::set<graph::NodeId> neighbors;
      for (graph::NodeId x : {*uid, *vid}) {
        neighbors.insert(cur.Parents(x).begin(), cur.Parents(x).end());
        neighbors.insert(cur.Children(x).begin(), cur.Children(x).end());
      }
      neighbors.erase(*uid);
      neighbors.erase(*vid);
      const std::size_t degree = neighbors.size();

      const std::size_t prune_loss =
          best_key.has_value() ? std::get<0>(*best_key) : sample.size() + 1;
      std::size_t loss = 0;
      const auto project = [&](const std::string& node) -> const std::string& {
        const std::string& group = state.owner.at(node);
        if (group == u || group == v) return merged_name;
        return group;
      };
      for (std::size_t i = 0; i < sample.size() && loss <= prune_loss;
           ++i) {
        if (!before[i].has_value()) continue;
        const std::string& ga = project(sample[i].first);
        const std::string& gb = project(sample[i].second);
        if (ga == gb) {
          // The pair collapsed into the merged node: a marginal
          // independence statement it carried is lost.
          if (*before[i]) ++loss;
          continue;
        }
        auto a = contracted.NodeIdOf(ga);
        auto b = contracted.NodeIdOf(gb);
        CDI_CHECK(a.ok() && b.ok());
        auto sep = graph::DSeparated(contracted, *a, *b, {});
        if (sep.ok() && *sep != *before[i]) ++loss;
      }
      if (loss > prune_loss) continue;  // pruned mid-scoring

      Key key{loss, degree, u, v};
      if (!best_key.has_value() || key < *best_key) {
        best_key = std::move(key);
        best_graph = std::move(contracted);
        best_merged_name = std::move(merged_name);
      }
    }

    if (!best_key.has_value()) {
      return Status::FailedPrecondition(
          "cannot reach summary budget k=" + std::to_string(options.budget) +
          ": " + std::to_string(cur.num_nodes()) +
          " nodes remain and no legal contraction exists (exposure/outcome "
          "are unmergeable and contractions must stay acyclic)");
    }

    // Apply the winning contraction.
    const std::string u = std::get<2>(*best_key);
    const std::string v = std::get<3>(*best_key);
    std::vector<std::string> merged_members;
    {
      const auto& mu = state.groups.at(u);
      const auto& mv = state.groups.at(v);
      std::merge(mu.begin(), mu.end(), mv.begin(), mv.end(),
                 std::back_inserter(merged_members));
    }
    for (const auto& m : merged_members) state.owner[m] = best_merged_name;
    state.groups.erase(u);
    state.groups.erase(v);
    state.groups.emplace(best_merged_name, std::move(merged_members));
    pairs_changed += std::get<0>(*best_key);
    cur = *std::move(best_graph);
    CDI_CHECK(cur.IsAcyclic()) << "contraction broke acyclicity";
  }

  return SummaryAssembler::Assemble(dag, state, members, exposure, outcome,
                                    sample.size(), pairs_changed);
}

Result<SummaryDag> SummarizeClusterDag(const core::ClusterDag& cdag,
                                       const SummarizeOptions& options) {
  return Summarize(cdag.graph(), cdag.members(), cdag.exposure_cluster(),
                   cdag.outcome_cluster(), options);
}

}  // namespace cdi::summarize
