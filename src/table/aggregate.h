#ifndef CDI_TABLE_AGGREGATE_H_
#define CDI_TABLE_AGGREGATE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "table/table.h"

namespace cdi::table {

/// Aggregation function applied within each group. Nulls are skipped; a
/// group with only nulls aggregates to null.
enum class AggKind {
  kMean,
  kSum,
  kMin,
  kMax,
  kCount,   ///< number of non-null values (int64)
  kFirst,   ///< first value in row order (any type)
  kMedian,
};

/// One requested aggregate: `column` reduced by `kind`, emitted as
/// `out_name` (defaults to "<kind>_<column>" when empty).
struct AggSpec {
  std::string column;
  AggKind kind = AggKind::kMean;
  std::string out_name;
};

/// Stable display name for an AggKind ("mean", "sum", ...).
const char* AggKindName(AggKind kind);

/// Groups `t` by the `keys` columns (null keys form their own group) and
/// computes the requested aggregates. Output has one row per distinct key
/// combination, in first-appearance order: key columns first, then one
/// column per AggSpec.
Result<Table> GroupBy(const Table& t, const std::vector<std::string>& keys,
                      const std::vector<AggSpec>& aggs);

/// Convenience: groups by `keys` and aggregates every other column — numeric
/// columns by `numeric_kind`, non-numeric by kFirst — keeping original
/// column names. This is how the Data Organizer collapses one-to-many
/// extractions into a single row per entity.
Result<Table> CollapseByKeys(const Table& t,
                             const std::vector<std::string>& keys,
                             AggKind numeric_kind = AggKind::kMean);

}  // namespace cdi::table

#endif  // CDI_TABLE_AGGREGATE_H_
