#ifndef CDI_TABLE_CSV_H_
#define CDI_TABLE_CSV_H_

#include <string>

#include "common/status.h"
#include "table/table.h"

namespace cdi::table {

/// Options for CSV parsing.
struct CsvOptions {
  char delimiter = ',';
  /// When true the first record provides column names; otherwise columns are
  /// named c0, c1, ...
  bool has_header = true;
  /// Cells equal to any of these (after trimming) parse as null, in addition
  /// to the empty cell.
  std::vector<std::string> null_tokens = {"NA", "null", "-"};
};

/// Parses CSV text into a table with per-column type inference
/// (int64 -> double -> bool -> string, the narrowest type all non-null cells
/// fit). Quoted fields with embedded delimiters/quotes are supported.
Result<Table> ReadCsvString(const std::string& text,
                            const CsvOptions& options = CsvOptions());

/// Reads a CSV file from disk.
Result<Table> ReadCsvFile(const std::string& path,
                          const CsvOptions& options = CsvOptions());

/// Serializes a table to CSV (header row included; nulls as empty cells).
std::string WriteCsvString(const Table& t, char delimiter = ',');

/// Writes a table to a CSV file.
Status WriteCsvFile(const Table& t, const std::string& path,
                    char delimiter = ',');

}  // namespace cdi::table

#endif  // CDI_TABLE_CSV_H_
