#ifndef CDI_TABLE_COLUMN_H_
#define CDI_TABLE_COLUMN_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/span.h"
#include "common/status.h"
#include "table/value.h"

namespace cdi::table {

/// A named, typed, null-aware column of values.
///
/// Storage is typed and contiguous: one dense buffer per physical type
/// (`double` / `int64_t` / `uint8_t` bool / dictionary codes for strings)
/// plus a null bitmap. Null slots hold a type-specific filler (NaN for
/// doubles, 0 for ints/bools, code -1 for strings) so numeric bulk access
/// is a straight buffer read. `View()` exposes a double column zero-copy
/// as a `DoubleSpan`; `ToDoubles()` still materializes a dense copy for
/// callers that need one. String cells are dictionary-encoded: each
/// distinct string is stored once and rows hold 32-bit codes.
/// See DESIGN.md "Physical storage layout" for buffer and view lifetime
/// rules.
class Column {
 public:
  Column(std::string name, DataType type)
      : name_(std::move(name)), type_(type) {}

  /// Builds a double column from raw values (NaN becomes null).
  static Column FromDoubles(std::string name, std::vector<double> values);
  /// Builds an int64 column from raw values.
  static Column FromInts(std::string name, std::vector<int64_t> values);
  /// Builds a string column from raw values.
  static Column FromStrings(std::string name, std::vector<std::string> values);

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }
  DataType type() const { return type_; }
  std::size_t size() const { return size_; }

  /// Pre-sizes the buffers for `n` total rows.
  void Reserve(std::size_t n);

  /// Appends a value; a null is always accepted, otherwise the value's type
  /// must match the column type (int64 is implicitly widened into a double
  /// column).
  Status Append(Value v);

  /// Typed appends — the fast paths the CSV reader and table kernels use;
  /// same typing rules as Append without boxing through Value.
  void AppendNull();
  Status AppendDouble(double v);
  Status AppendInt64(int64_t v);
  Status AppendBool(bool v);
  Status AppendString(std::string v);
  /// Appends `src`'s cell at `row` (types must be compatible as in Append).
  Status AppendFrom(const Column& src, std::size_t row);

  /// Appends all of `src`'s cells in order — the batch-ingest fast path:
  /// typed buffers are spliced wholesale (no per-row Value boxing), the
  /// null bitmap is bit-shift merged word-at-a-time, and string cells are
  /// re-interned once per distinct dictionary code rather than per row.
  /// `src` must have the same type, or be an int64 column appended into a
  /// double column (the same widening Append performs). All-or-nothing:
  /// on type mismatch the column is unchanged.
  Status AppendChunk(const Column& src);

  /// Unchecked access; reconstructs a Value from the typed buffers.
  Value Get(std::size_t row) const;

  /// Overwrites a cell in place (same typing rules as Append). Never
  /// reallocates, so live views keep observing the column.
  Status Set(std::size_t row, Value v);

  bool IsNull(std::size_t row) const {
    CDI_CHECK(row < size_);
    return NullBit(row);
  }

  /// Number of null cells. O(1): maintained incrementally.
  std::size_t NullCount() const { return null_count_; }

  /// Null bitmap words, LSB-first (bit r set = row r null), sized
  /// (size() + 63) / 64. For wiring into NumericDataset::null_words —
  /// note the null <=> NaN caveat documented there: a double column can
  /// hold non-null NaN cells, so only non-double columns (whose views
  /// materialize NaN exactly at nulls) may rely on this unconditionally.
  /// Valid until the next Append/Reserve, like View().
  const uint64_t* NullWords() const { return null_bits_.data(); }

  /// Fraction of null cells (0 for an empty column).
  double NullFraction() const;

  /// Numeric value at `row` (nulls are NaN). Requires a non-string column.
  double NumericAt(std::size_t row) const;

  /// String content at `row`; requires a non-null string cell. The
  /// reference is into the dictionary and stays valid while the column
  /// lives.
  const std::string& StringAt(std::size_t row) const;

  /// Dense numeric copy; nulls become NaN. Requires a numeric or bool
  /// column. Prefer View() on hot paths.
  std::vector<double> ToDoubles() const;

  /// Numeric view (nulls are NaN). Zero-copy for double columns; int64 and
  /// bool columns materialize a shared buffer the span owns. Requires a
  /// non-string column. Valid until the next Append/Reserve (Set writes
  /// show through); see DESIGN.md for the lifetime rules.
  DoubleSpan View() const;

  /// Distinct non-null values in first-appearance order. Distinctness is
  /// exact typed equality (bit patterns for doubles, all NaNs equal).
  std::vector<Value> DistinctValues() const;

  /// Number of distinct non-null values. O(n) via typed hash sets; never
  /// materializes the values.
  std::size_t DistinctCount() const;

  /// New column with only the given rows, in order.
  Column Take(const std::vector<std::size_t>& rows) const;

  /// Structural invariants: buffer sizes match, dictionary codes in range.
  bool TypeChecks() const;

  /// Heap bytes held by the column's buffers (typed storage, null bitmap,
  /// string dictionary contents + index). A deterministic *estimate* of
  /// resident size — capacity slack and allocator overhead are excluded
  /// so the value is a pure function of the column's contents, which is
  /// what byte-accounted caches (the scenario registry's LRU budget) need
  /// to reconcile against.
  std::size_t ByteSize() const;

  /// Appends an exact typed encoding of the cell at `row` to `out`, for
  /// composite hash keys (join / group-by / distinct). Numeric cells
  /// (double, int64) encode as the bit pattern of their double value with
  /// NaN canonicalized, so keys match exactly — never through a decimal
  /// rendering. Strings encode as length + content, or as the 32-bit
  /// dictionary code when `column_local` (valid only for keys drawn from
  /// this same column, e.g. group-by; cross-column joins must pass false).
  /// Nulls encode as a dedicated tag. Each cell's encoding is prefix-free,
  /// so concatenated composite keys are unambiguous.
  void AppendKeyBytes(std::size_t row, bool column_local,
                      std::string* out) const;

 private:
  Status CheckType(const Value& v) const;
  bool NullBit(std::size_t row) const {
    return (null_bits_[row >> 6] >> (row & 63)) & 1;
  }
  void PushBack(bool is_null);
  void SetNullBit(std::size_t row, bool is_null);
  int32_t Intern(std::string s);

  std::string name_;
  DataType type_;
  std::size_t size_ = 0;
  std::size_t null_count_ = 0;
  /// Bit r set = row r is null.
  std::vector<uint64_t> null_bits_;
  /// Exactly one of these is active, per type_; null slots hold fillers
  /// (NaN / 0 / 0 / -1) so bulk numeric reads need no bitmap probe.
  std::vector<double> doubles_;
  std::vector<int64_t> ints_;
  std::vector<uint8_t> bools_;
  std::vector<int32_t> codes_;
  /// String dictionary: dict_[code] is the content, dict_index_ its
  /// reverse map. Entries are never removed (Set may strand one).
  std::vector<std::string> dict_;
  std::unordered_map<std::string, int32_t> dict_index_;
};

}  // namespace cdi::table

#endif  // CDI_TABLE_COLUMN_H_
