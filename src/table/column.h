#ifndef CDI_TABLE_COLUMN_H_
#define CDI_TABLE_COLUMN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "table/value.h"

namespace cdi::table {

/// A named, typed, null-aware column of values.
///
/// Storage is a vector of `Value` for simplicity; numeric bulk access is
/// provided by `ToDoubles()` which materializes a dense vector (NaN for
/// nulls). For the scales CDI operates at (thousands of rows, hundreds of
/// columns) this is comfortably fast and keeps the code obvious.
class Column {
 public:
  Column(std::string name, DataType type)
      : name_(std::move(name)), type_(type) {}

  /// Builds a double column from raw values.
  static Column FromDoubles(std::string name, std::vector<double> values);
  /// Builds an int64 column from raw values.
  static Column FromInts(std::string name, std::vector<int64_t> values);
  /// Builds a string column from raw values.
  static Column FromStrings(std::string name, std::vector<std::string> values);

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }
  DataType type() const { return type_; }
  std::size_t size() const { return values_.size(); }

  /// Appends a value; a null is always accepted, otherwise the value's type
  /// must match the column type (int64 is implicitly widened into a double
  /// column).
  Status Append(Value v);

  /// Unchecked access.
  const Value& Get(std::size_t row) const {
    CDI_CHECK(row < values_.size());
    return values_[row];
  }

  /// Overwrites a cell (same typing rules as Append).
  Status Set(std::size_t row, Value v);

  bool IsNull(std::size_t row) const { return Get(row).is_null(); }

  /// Number of null cells.
  std::size_t NullCount() const;

  /// Fraction of null cells (0 for an empty column).
  double NullFraction() const;

  /// Dense numeric view; nulls become NaN. Requires a numeric or bool column.
  std::vector<double> ToDoubles() const;

  /// Distinct non-null values in first-appearance order.
  std::vector<Value> DistinctValues() const;

  /// Number of distinct non-null values.
  std::size_t DistinctCount() const { return DistinctValues().size(); }

  /// New column with only the given rows, in order.
  Column Take(const std::vector<std::size_t>& rows) const;

  /// True if every non-null cell type-checks against the column type.
  bool TypeChecks() const;

 private:
  Status CheckType(const Value& v) const;

  std::string name_;
  DataType type_;
  std::vector<Value> values_;
};

}  // namespace cdi::table

#endif  // CDI_TABLE_COLUMN_H_
