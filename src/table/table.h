#ifndef CDI_TABLE_TABLE_H_
#define CDI_TABLE_TABLE_H_

#include <functional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "table/column.h"

namespace cdi::table {

/// An in-memory relational table: a list of equally sized named columns.
///
/// `Table` is a value type (copyable); all mutating operations validate
/// their inputs and return `Status`. Row-producing operations return new
/// tables.
class Table {
 public:
  Table() = default;
  explicit Table(std::string name) : name_(std::move(name)) {}

  /// Builds a table from columns; all columns must have equal length and
  /// distinct names.
  static Result<Table> FromColumns(std::string name,
                                   std::vector<Column> columns);

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  std::size_t num_rows() const {
    return columns_.empty() ? 0 : columns_[0].size();
  }
  std::size_t num_cols() const { return columns_.size(); }

  /// Column names in schema order.
  std::vector<std::string> ColumnNames() const;

  bool HasColumn(const std::string& name) const;

  /// Index of `name` in the schema, or error.
  Result<std::size_t> ColumnIndex(const std::string& name) const;

  /// Borrowed pointer into this table (invalidated by column add/drop).
  Result<const Column*> GetColumn(const std::string& name) const;
  Result<Column*> MutableColumn(const std::string& name);

  const Column& ColumnAt(std::size_t i) const {
    CDI_CHECK(i < columns_.size());
    return columns_[i];
  }
  Column& MutableColumnAt(std::size_t i) {
    CDI_CHECK(i < columns_.size());
    return columns_[i];
  }

  /// Appends a column; its length must equal num_rows() (any length is
  /// accepted for the first column) and its name must be fresh.
  Status AddColumn(Column column);

  Status DropColumn(const std::string& name);
  Status RenameColumn(const std::string& from, const std::string& to);

  /// Cell access.
  Result<Value> GetCell(std::size_t row, const std::string& column) const;
  Status SetCell(std::size_t row, const std::string& column, Value v);

  /// Appends one row; `values` must match the schema arity and types.
  Status AppendRow(const std::vector<Value>& values);

  /// Appends every row of `batch` — the streaming-ingest fast path. The
  /// batch must carry exactly this table's columns (matched by name, any
  /// order) with compatible types (exact match, or int64 batch columns
  /// widened into double columns, as in AppendRow). Column buffers are
  /// spliced wholesale via Column::AppendChunk; no per-row Value boxing.
  /// All-or-nothing: on any schema mismatch the table is unchanged, with
  /// an error naming the offending column. Invalidates Column::View()
  /// spans, like any append.
  Status AppendRows(const Table& batch);

  /// New table with only the named columns, in the given order.
  Result<Table> SelectColumns(const std::vector<std::string>& names) const;

  /// New table with the given rows (indices may repeat / reorder).
  Table TakeRows(const std::vector<std::size_t>& rows) const;

  /// New table with rows where `pred(row_index)` is true.
  Table FilterRows(const std::function<bool(std::size_t)>& pred) const;

  /// New table with rows having no null in any column.
  Table DropNullRows() const;

  /// First `n` rows.
  Table Head(std::size_t n) const;

  /// Uniform sample of `n` distinct rows (all rows when n >= num_rows()),
  /// in original row order. Deterministic given `rng`.
  Table SampleRows(std::size_t n, Rng* rng) const;

  /// Rows sorted by `column` (nulls last). Strings sort lexicographically,
  /// numerics numerically. Stable.
  Result<Table> SortBy(const std::string& column, bool ascending = true) const;

  /// Removes exact duplicate rows (all columns equal), keeping first
  /// occurrences.
  Table DistinctRows() const;

  /// Pretty-prints up to `max_rows` rows in a fixed-width layout.
  std::string ToString(std::size_t max_rows = 20) const;

  /// Sum of Column::ByteSize over all columns — a deterministic estimate
  /// of the table's resident heap bytes, used by byte-accounted caches.
  std::size_t ByteSize() const;

 private:
  std::string name_;
  std::vector<Column> columns_;
};

}  // namespace cdi::table

#endif  // CDI_TABLE_TABLE_H_
