#include "table/column.h"

#include <cmath>
#include <unordered_set>

namespace cdi::table {

Column Column::FromDoubles(std::string name, std::vector<double> values) {
  Column c(std::move(name), DataType::kDouble);
  c.values_.reserve(values.size());
  for (double v : values) {
    if (std::isnan(v)) {
      c.values_.emplace_back();
    } else {
      c.values_.emplace_back(v);
    }
  }
  return c;
}

Column Column::FromInts(std::string name, std::vector<int64_t> values) {
  Column c(std::move(name), DataType::kInt64);
  c.values_.reserve(values.size());
  for (int64_t v : values) c.values_.emplace_back(v);
  return c;
}

Column Column::FromStrings(std::string name, std::vector<std::string> values) {
  Column c(std::move(name), DataType::kString);
  c.values_.reserve(values.size());
  for (auto& v : values) c.values_.emplace_back(std::move(v));
  return c;
}

Status Column::CheckType(const Value& v) const {
  if (v.is_null()) return Status::OK();
  switch (type_) {
    case DataType::kDouble:
      if (v.is_double() || v.is_int64()) return Status::OK();
      break;
    case DataType::kInt64:
      if (v.is_int64()) return Status::OK();
      break;
    case DataType::kString:
      if (v.is_string()) return Status::OK();
      break;
    case DataType::kBool:
      if (v.is_bool()) return Status::OK();
      break;
  }
  return Status::InvalidArgument("value does not match column '" + name_ +
                                 "' of type " + DataTypeName(type_));
}

Status Column::Append(Value v) {
  CDI_RETURN_IF_ERROR(CheckType(v));
  if (type_ == DataType::kDouble && v.is_int64()) {
    v = Value(static_cast<double>(v.as_int64()));
  }
  values_.push_back(std::move(v));
  return Status::OK();
}

Status Column::Set(std::size_t row, Value v) {
  if (row >= values_.size()) {
    return Status::OutOfRange("row " + std::to_string(row) + " out of range");
  }
  CDI_RETURN_IF_ERROR(CheckType(v));
  if (type_ == DataType::kDouble && v.is_int64()) {
    v = Value(static_cast<double>(v.as_int64()));
  }
  values_[row] = std::move(v);
  return Status::OK();
}

std::size_t Column::NullCount() const {
  std::size_t n = 0;
  for (const auto& v : values_) n += v.is_null() ? 1 : 0;
  return n;
}

double Column::NullFraction() const {
  return values_.empty()
             ? 0.0
             : static_cast<double>(NullCount()) / values_.size();
}

std::vector<double> Column::ToDoubles() const {
  CDI_CHECK(type_ != DataType::kString)
      << "ToDoubles on string column '" << name_ << "'";
  std::vector<double> out;
  out.reserve(values_.size());
  for (const auto& v : values_) {
    out.push_back(v.is_null() ? std::nan("") : v.ToNumeric());
  }
  return out;
}

std::vector<Value> Column::DistinctValues() const {
  std::vector<Value> out;
  std::unordered_set<std::string> seen;
  for (const auto& v : values_) {
    if (v.is_null()) continue;
    const std::string key = v.ToString();
    if (seen.insert(key).second) out.push_back(v);
  }
  return out;
}

Column Column::Take(const std::vector<std::size_t>& rows) const {
  Column out(name_, type_);
  out.values_.reserve(rows.size());
  for (std::size_t r : rows) {
    CDI_CHECK(r < values_.size());
    out.values_.push_back(values_[r]);
  }
  return out;
}

bool Column::TypeChecks() const {
  for (const auto& v : values_) {
    if (!CheckType(v).ok()) return false;
  }
  return true;
}

}  // namespace cdi::table
