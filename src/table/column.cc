#include "table/column.h"

#include <bit>
#include <cmath>
#include <cstring>
#include <limits>
#include <unordered_set>
#include <utility>

namespace cdi::table {

namespace {

constexpr char kKeyNull = '\x00';
constexpr char kKeyNumeric = 'n';
constexpr char kKeyBool = 'b';
constexpr char kKeyString = 's';
constexpr char kKeyCode = 'c';

/// One canonical bit pattern for every NaN, so NaN keys compare equal
/// (matching the old decimal-rendering behavior where every NaN printed
/// "nan"). +0.0 and -0.0 keep their distinct patterns, as before.
uint64_t CanonicalBits(double v) {
  if (std::isnan(v)) v = std::numeric_limits<double>::quiet_NaN();
  return std::bit_cast<uint64_t>(v);
}

void AppendRaw(std::string* out, const void* p, std::size_t n) {
  out->append(static_cast<const char*>(p), n);
}

}  // namespace

Column Column::FromDoubles(std::string name, std::vector<double> values) {
  Column c(std::move(name), DataType::kDouble);
  c.Reserve(values.size());
  for (double v : values) {
    if (std::isnan(v)) {
      c.AppendNull();
    } else {
      c.doubles_.push_back(v);
      c.PushBack(/*is_null=*/false);
    }
  }
  return c;
}

Column Column::FromInts(std::string name, std::vector<int64_t> values) {
  Column c(std::move(name), DataType::kInt64);
  c.ints_ = std::move(values);
  c.null_bits_.assign((c.ints_.size() + 63) / 64, 0);
  c.size_ = c.ints_.size();
  return c;
}

Column Column::FromStrings(std::string name, std::vector<std::string> values) {
  Column c(std::move(name), DataType::kString);
  c.Reserve(values.size());
  for (auto& v : values) {
    c.codes_.push_back(c.Intern(std::move(v)));
    c.PushBack(/*is_null=*/false);
  }
  return c;
}

void Column::Reserve(std::size_t n) {
  null_bits_.reserve((n + 63) / 64);
  switch (type_) {
    case DataType::kDouble:
      doubles_.reserve(n);
      break;
    case DataType::kInt64:
      ints_.reserve(n);
      break;
    case DataType::kString:
      codes_.reserve(n);
      break;
    case DataType::kBool:
      bools_.reserve(n);
      break;
  }
}

Status Column::CheckType(const Value& v) const {
  if (v.is_null()) return Status::OK();
  switch (type_) {
    case DataType::kDouble:
      if (v.is_double() || v.is_int64()) return Status::OK();
      break;
    case DataType::kInt64:
      if (v.is_int64()) return Status::OK();
      break;
    case DataType::kString:
      if (v.is_string()) return Status::OK();
      break;
    case DataType::kBool:
      if (v.is_bool()) return Status::OK();
      break;
  }
  return Status::InvalidArgument("value does not match column '" + name_ +
                                 "' of type " + DataTypeName(type_));
}

void Column::PushBack(bool is_null) {
  const std::size_t word = size_ >> 6;
  if (word >= null_bits_.size()) null_bits_.push_back(0);
  if (is_null) {
    null_bits_[word] |= uint64_t{1} << (size_ & 63);
    ++null_count_;
  }
  ++size_;
}

void Column::SetNullBit(std::size_t row, bool is_null) {
  const uint64_t mask = uint64_t{1} << (row & 63);
  uint64_t& word = null_bits_[row >> 6];
  const bool was_null = (word & mask) != 0;
  if (is_null == was_null) return;
  if (is_null) {
    word |= mask;
    ++null_count_;
  } else {
    word &= ~mask;
    --null_count_;
  }
}

int32_t Column::Intern(std::string s) {
  const auto it = dict_index_.find(s);
  if (it != dict_index_.end()) return it->second;
  const int32_t code = static_cast<int32_t>(dict_.size());
  dict_index_.emplace(s, code);
  dict_.push_back(std::move(s));
  return code;
}

void Column::AppendNull() {
  switch (type_) {
    case DataType::kDouble:
      doubles_.push_back(std::nan(""));
      break;
    case DataType::kInt64:
      ints_.push_back(0);
      break;
    case DataType::kString:
      codes_.push_back(-1);
      break;
    case DataType::kBool:
      bools_.push_back(0);
      break;
  }
  PushBack(/*is_null=*/true);
}

Status Column::AppendDouble(double v) {
  if (type_ != DataType::kDouble) {
    return Status::InvalidArgument("value does not match column '" + name_ +
                                   "' of type " + DataTypeName(type_));
  }
  doubles_.push_back(v);
  PushBack(/*is_null=*/false);
  return Status::OK();
}

Status Column::AppendInt64(int64_t v) {
  if (type_ == DataType::kDouble) {
    doubles_.push_back(static_cast<double>(v));
  } else if (type_ == DataType::kInt64) {
    ints_.push_back(v);
  } else {
    return Status::InvalidArgument("value does not match column '" + name_ +
                                   "' of type " + DataTypeName(type_));
  }
  PushBack(/*is_null=*/false);
  return Status::OK();
}

Status Column::AppendBool(bool v) {
  if (type_ != DataType::kBool) {
    return Status::InvalidArgument("value does not match column '" + name_ +
                                   "' of type " + DataTypeName(type_));
  }
  bools_.push_back(v ? 1 : 0);
  PushBack(/*is_null=*/false);
  return Status::OK();
}

Status Column::AppendString(std::string v) {
  if (type_ != DataType::kString) {
    return Status::InvalidArgument("value does not match column '" + name_ +
                                   "' of type " + DataTypeName(type_));
  }
  codes_.push_back(Intern(std::move(v)));
  PushBack(/*is_null=*/false);
  return Status::OK();
}

Status Column::Append(Value v) {
  if (v.is_null()) {
    AppendNull();
    return Status::OK();
  }
  if (v.is_double()) return AppendDouble(v.as_double());
  if (v.is_int64()) return AppendInt64(v.as_int64());
  if (v.is_bool()) return AppendBool(v.as_bool());
  return AppendString(v.as_string());
}

Status Column::AppendFrom(const Column& src, std::size_t row) {
  CDI_CHECK(row < src.size_);
  if (src.NullBit(row)) {
    AppendNull();
    return Status::OK();
  }
  switch (src.type_) {
    case DataType::kDouble:
      return AppendDouble(src.doubles_[row]);
    case DataType::kInt64:
      return AppendInt64(src.ints_[row]);
    case DataType::kString:
      return AppendString(src.dict_[src.codes_[row]]);
    case DataType::kBool:
      return AppendBool(src.bools_[row] != 0);
  }
  return Status::Internal("bad column type");
}

Status Column::AppendChunk(const Column& src) {
  const bool widen_ints =
      type_ == DataType::kDouble && src.type_ == DataType::kInt64;
  if (src.type_ != type_ && !widen_ints) {
    return Status::InvalidArgument(
        "cannot append " + std::string(DataTypeName(src.type_)) +
        " chunk '" + src.name_ + "' to column '" + name_ + "' of type " +
        DataTypeName(type_));
  }
  if (src.size_ == 0) return Status::OK();

  // 1. Splice the typed value buffers (null slots already hold the right
  //    fillers in `src`, except the int64 -> double widening, which must
  //    rewrite null filler 0 as NaN).
  switch (type_) {
    case DataType::kDouble:
      if (widen_ints) {
        doubles_.reserve(size_ + src.size_);
        for (std::size_t r = 0; r < src.size_; ++r) {
          doubles_.push_back(src.NullBit(r)
                                 ? std::nan("")
                                 : static_cast<double>(src.ints_[r]));
        }
      } else {
        doubles_.insert(doubles_.end(), src.doubles_.begin(),
                        src.doubles_.end());
      }
      break;
    case DataType::kInt64:
      ints_.insert(ints_.end(), src.ints_.begin(), src.ints_.end());
      break;
    case DataType::kBool:
      bools_.insert(bools_.end(), src.bools_.begin(), src.bools_.end());
      break;
    case DataType::kString: {
      // Remap dictionary codes: intern each distinct referenced string
      // once, then push remapped codes.
      std::vector<int32_t> code_map(src.dict_.size(), -1);
      codes_.reserve(size_ + src.size_);
      for (std::size_t r = 0; r < src.size_; ++r) {
        const int32_t c = src.codes_[r];
        if (c < 0) {
          codes_.push_back(-1);
          continue;
        }
        int32_t& mapped = code_map[static_cast<std::size_t>(c)];
        if (mapped < 0) mapped = Intern(src.dict_[static_cast<std::size_t>(c)]);
        codes_.push_back(mapped);
      }
      break;
    }
  }

  // 2. Merge the null bitmap: shift src's words onto our bit offset. Bits
  //    past src.size_ in its last word are zero by construction, so the
  //    shifted OR never sets stray bits.
  const std::size_t offset = size_ & 63;
  const std::size_t new_size = size_ + src.size_;
  null_bits_.resize((new_size + 63) / 64, 0);
  const std::size_t src_words = (src.size_ + 63) / 64;
  for (std::size_t w = 0; w < src_words; ++w) {
    const uint64_t bits = src.null_bits_[w];
    const std::size_t base_word = (size_ >> 6) + w;
    null_bits_[base_word] |= bits << offset;
    if (offset != 0 && base_word + 1 < null_bits_.size()) {
      null_bits_[base_word + 1] |= bits >> (64 - offset);
    }
  }

  size_ = new_size;
  null_count_ += src.null_count_;
  return Status::OK();
}

Value Column::Get(std::size_t row) const {
  CDI_CHECK(row < size_);
  if (NullBit(row)) return Value::Null();
  switch (type_) {
    case DataType::kDouble:
      return Value(doubles_[row]);
    case DataType::kInt64:
      return Value(ints_[row]);
    case DataType::kString:
      return Value(dict_[codes_[row]]);
    case DataType::kBool:
      return Value(bools_[row] != 0);
  }
  return Value::Null();
}

Status Column::Set(std::size_t row, Value v) {
  if (row >= size_) {
    return Status::OutOfRange("row " + std::to_string(row) + " out of range");
  }
  CDI_RETURN_IF_ERROR(CheckType(v));
  if (v.is_null()) {
    switch (type_) {
      case DataType::kDouble:
        doubles_[row] = std::nan("");
        break;
      case DataType::kInt64:
        ints_[row] = 0;
        break;
      case DataType::kString:
        codes_[row] = -1;
        break;
      case DataType::kBool:
        bools_[row] = 0;
        break;
    }
    SetNullBit(row, true);
    return Status::OK();
  }
  switch (type_) {
    case DataType::kDouble:
      doubles_[row] = v.is_int64() ? static_cast<double>(v.as_int64())
                                   : v.as_double();
      break;
    case DataType::kInt64:
      ints_[row] = v.as_int64();
      break;
    case DataType::kString:
      codes_[row] = Intern(v.as_string());
      break;
    case DataType::kBool:
      bools_[row] = v.as_bool() ? 1 : 0;
      break;
  }
  SetNullBit(row, false);
  return Status::OK();
}

double Column::NullFraction() const {
  return size_ == 0 ? 0.0
                    : static_cast<double>(null_count_) /
                          static_cast<double>(size_);
}

double Column::NumericAt(std::size_t row) const {
  CDI_CHECK(row < size_);
  CDI_CHECK(type_ != DataType::kString)
      << "NumericAt on string column '" << name_ << "'";
  switch (type_) {
    case DataType::kDouble:
      return doubles_[row];  // null slots already hold NaN
    case DataType::kInt64:
      return NullBit(row) ? std::nan("")
                          : static_cast<double>(ints_[row]);
    case DataType::kBool:
      return NullBit(row) ? std::nan("") : (bools_[row] ? 1.0 : 0.0);
    case DataType::kString:
      break;
  }
  return std::nan("");
}

const std::string& Column::StringAt(std::size_t row) const {
  CDI_CHECK(row < size_);
  CDI_CHECK(type_ == DataType::kString)
      << "StringAt on non-string column '" << name_ << "'";
  CDI_CHECK(!NullBit(row)) << "StringAt on null cell of '" << name_ << "'";
  return dict_[codes_[row]];
}

std::vector<double> Column::ToDoubles() const {
  CDI_CHECK(type_ != DataType::kString)
      << "ToDoubles on string column '" << name_ << "'";
  if (type_ == DataType::kDouble) return doubles_;
  std::vector<double> out;
  out.reserve(size_);
  for (std::size_t r = 0; r < size_; ++r) out.push_back(NumericAt(r));
  return out;
}

DoubleSpan Column::View() const {
  CDI_CHECK(type_ != DataType::kString)
      << "View on string column '" << name_ << "'";
  if (type_ == DataType::kDouble) {
    return DoubleSpan::Borrow(doubles_.data(), size_);
  }
  return DoubleSpan(ToDoubles());  // owning span over the widened copy
}

std::vector<Value> Column::DistinctValues() const {
  std::vector<Value> out;
  switch (type_) {
    case DataType::kDouble: {
      std::unordered_set<uint64_t> seen;
      for (std::size_t r = 0; r < size_; ++r) {
        if (NullBit(r)) continue;
        if (seen.insert(CanonicalBits(doubles_[r])).second) {
          out.emplace_back(doubles_[r]);
        }
      }
      break;
    }
    case DataType::kInt64: {
      std::unordered_set<int64_t> seen;
      for (std::size_t r = 0; r < size_; ++r) {
        if (NullBit(r)) continue;
        if (seen.insert(ints_[r]).second) out.emplace_back(ints_[r]);
      }
      break;
    }
    case DataType::kString: {
      // The dictionary may hold entries stranded by Set, so walk the rows.
      std::vector<char> seen(dict_.size(), 0);
      for (std::size_t r = 0; r < size_; ++r) {
        if (NullBit(r)) continue;
        const int32_t c = codes_[r];
        if (!seen[static_cast<std::size_t>(c)]) {
          seen[static_cast<std::size_t>(c)] = 1;
          out.emplace_back(dict_[static_cast<std::size_t>(c)]);
        }
      }
      break;
    }
    case DataType::kBool: {
      bool seen[2] = {false, false};
      for (std::size_t r = 0; r < size_; ++r) {
        if (NullBit(r)) continue;
        const int b = bools_[r] ? 1 : 0;
        if (!seen[b]) {
          seen[b] = true;
          out.emplace_back(b != 0);
        }
      }
      break;
    }
  }
  return out;
}

std::size_t Column::DistinctCount() const {
  switch (type_) {
    case DataType::kDouble: {
      std::unordered_set<uint64_t> seen;
      seen.reserve(size_ - null_count_);
      for (std::size_t r = 0; r < size_; ++r) {
        if (!NullBit(r)) seen.insert(CanonicalBits(doubles_[r]));
      }
      return seen.size();
    }
    case DataType::kInt64: {
      std::unordered_set<int64_t> seen;
      seen.reserve(size_ - null_count_);
      for (std::size_t r = 0; r < size_; ++r) {
        if (!NullBit(r)) seen.insert(ints_[r]);
      }
      return seen.size();
    }
    case DataType::kString: {
      std::vector<char> seen(dict_.size(), 0);
      std::size_t n = 0;
      for (std::size_t r = 0; r < size_; ++r) {
        if (NullBit(r)) continue;
        char& flag = seen[static_cast<std::size_t>(codes_[r])];
        n += flag ? 0 : 1;
        flag = 1;
      }
      return n;
    }
    case DataType::kBool: {
      bool seen[2] = {false, false};
      for (std::size_t r = 0; r < size_; ++r) {
        if (!NullBit(r)) seen[bools_[r] ? 1 : 0] = true;
      }
      return static_cast<std::size_t>(seen[0]) +
             static_cast<std::size_t>(seen[1]);
    }
  }
  return 0;
}

Column Column::Take(const std::vector<std::size_t>& rows) const {
  Column out(name_, type_);
  out.Reserve(rows.size());
  switch (type_) {
    case DataType::kDouble:
      for (std::size_t r : rows) {
        CDI_CHECK(r < size_);
        out.doubles_.push_back(doubles_[r]);
        out.PushBack(NullBit(r));
      }
      break;
    case DataType::kInt64:
      for (std::size_t r : rows) {
        CDI_CHECK(r < size_);
        out.ints_.push_back(ints_[r]);
        out.PushBack(NullBit(r));
      }
      break;
    case DataType::kString:
      // Codes stay valid because the whole dictionary is shared (copied);
      // stranded entries cost memory, not correctness.
      out.dict_ = dict_;
      out.dict_index_ = dict_index_;
      for (std::size_t r : rows) {
        CDI_CHECK(r < size_);
        out.codes_.push_back(codes_[r]);
        out.PushBack(NullBit(r));
      }
      break;
    case DataType::kBool:
      for (std::size_t r : rows) {
        CDI_CHECK(r < size_);
        out.bools_.push_back(bools_[r]);
        out.PushBack(NullBit(r));
      }
      break;
  }
  return out;
}

std::size_t Column::ByteSize() const {
  std::size_t bytes = null_bits_.size() * sizeof(uint64_t);
  bytes += doubles_.size() * sizeof(double);
  bytes += ints_.size() * sizeof(int64_t);
  bytes += bools_.size() * sizeof(uint8_t);
  bytes += codes_.size() * sizeof(int32_t);
  for (const std::string& s : dict_) bytes += s.size() + sizeof(std::string);
  // Each dictionary-index entry stores the string once more plus a code.
  for (const auto& [s, code] : dict_index_) {
    bytes += s.size() + sizeof(std::string) + sizeof(code);
  }
  return bytes;
}

bool Column::TypeChecks() const {
  const std::size_t active = type_ == DataType::kDouble   ? doubles_.size()
                             : type_ == DataType::kInt64  ? ints_.size()
                             : type_ == DataType::kString ? codes_.size()
                                                          : bools_.size();
  if (active != size_) return false;
  if (null_bits_.size() != (size_ + 63) / 64) return false;
  if (type_ == DataType::kString) {
    for (std::size_t r = 0; r < size_; ++r) {
      const int32_t c = codes_[r];
      if (NullBit(r) ? c != -1
                     : (c < 0 || static_cast<std::size_t>(c) >= dict_.size())) {
        return false;
      }
    }
  }
  return true;
}

void Column::AppendKeyBytes(std::size_t row, bool column_local,
                            std::string* out) const {
  CDI_CHECK(row < size_);
  if (NullBit(row)) {
    out->push_back(kKeyNull);
    return;
  }
  switch (type_) {
    case DataType::kDouble: {
      out->push_back(kKeyNumeric);
      const uint64_t bits = CanonicalBits(doubles_[row]);
      AppendRaw(out, &bits, sizeof(bits));
      break;
    }
    case DataType::kInt64: {
      // Same encoding as doubles, so int64 keys match equal-valued double
      // keys across a join (Append already widens ints into double
      // columns; this keeps the key domains consistent).
      out->push_back(kKeyNumeric);
      const uint64_t bits =
          CanonicalBits(static_cast<double>(ints_[row]));
      AppendRaw(out, &bits, sizeof(bits));
      break;
    }
    case DataType::kString: {
      if (column_local) {
        out->push_back(kKeyCode);
        const int32_t code = codes_[row];
        AppendRaw(out, &code, sizeof(code));
      } else {
        const std::string& s = dict_[codes_[row]];
        out->push_back(kKeyString);
        const uint64_t len = s.size();
        AppendRaw(out, &len, sizeof(len));
        out->append(s);
      }
      break;
    }
    case DataType::kBool: {
      out->push_back(kKeyBool);
      out->push_back(bools_[row] ? '\x01' : '\x00');
      break;
    }
  }
}

}  // namespace cdi::table
