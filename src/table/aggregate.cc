#include "table/aggregate.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace cdi::table {

const char* AggKindName(AggKind kind) {
  switch (kind) {
    case AggKind::kMean:
      return "mean";
    case AggKind::kSum:
      return "sum";
    case AggKind::kMin:
      return "min";
    case AggKind::kMax:
      return "max";
    case AggKind::kCount:
      return "count";
    case AggKind::kFirst:
      return "first";
    case AggKind::kMedian:
      return "median";
  }
  return "?";
}

namespace {

/// Reduces the non-null values of `col` at `rows`.
Value Reduce(const Column& col, const std::vector<std::size_t>& rows,
             AggKind kind) {
  if (kind == AggKind::kCount) {
    int64_t n = 0;
    for (std::size_t r : rows) n += col.IsNull(r) ? 0 : 1;
    return Value(n);
  }
  if (kind == AggKind::kFirst) {
    for (std::size_t r : rows) {
      if (!col.IsNull(r)) return col.Get(r);
    }
    return Value::Null();
  }
  // Numeric reductions.
  std::vector<double> vals;
  vals.reserve(rows.size());
  for (std::size_t r : rows) {
    if (!col.IsNull(r)) vals.push_back(col.NumericAt(r));
  }
  if (vals.empty()) return Value::Null();
  switch (kind) {
    case AggKind::kMean: {
      double s = 0;
      for (double v : vals) s += v;
      return Value(s / static_cast<double>(vals.size()));
    }
    case AggKind::kSum: {
      double s = 0;
      for (double v : vals) s += v;
      return Value(s);
    }
    case AggKind::kMin:
      return Value(*std::min_element(vals.begin(), vals.end()));
    case AggKind::kMax:
      return Value(*std::max_element(vals.begin(), vals.end()));
    case AggKind::kMedian: {
      std::sort(vals.begin(), vals.end());
      const std::size_t n = vals.size();
      return Value(n % 2 == 1 ? vals[n / 2]
                              : 0.5 * (vals[n / 2 - 1] + vals[n / 2]));
    }
    case AggKind::kCount:
    case AggKind::kFirst:
      break;  // handled above
  }
  return Value::Null();
}

DataType OutputType(const Column& col, AggKind kind) {
  if (kind == AggKind::kCount) return DataType::kInt64;
  if (kind == AggKind::kFirst) return col.type();
  return DataType::kDouble;
}

}  // namespace

Result<Table> GroupBy(const Table& t, const std::vector<std::string>& keys,
                      const std::vector<AggSpec>& aggs) {
  std::vector<const Column*> key_cols;
  for (const auto& k : keys) {
    CDI_ASSIGN_OR_RETURN(const Column* c, t.GetColumn(k));
    key_cols.push_back(c);
  }
  for (const auto& spec : aggs) {
    CDI_ASSIGN_OR_RETURN(const Column* c, t.GetColumn(spec.column));
    if (spec.kind != AggKind::kCount && spec.kind != AggKind::kFirst &&
        c->type() == DataType::kString) {
      return Status::InvalidArgument("cannot " +
                                     std::string(AggKindName(spec.kind)) +
                                     " string column '" + spec.column + "'");
    }
  }

  // Bucket rows by composite key. Keys are exact typed encodings (bit
  // patterns for numerics, dictionary codes for strings — all key columns
  // belong to `t`, so per-column codes are valid); nulls group together
  // under a dedicated tag, as before.
  std::unordered_map<std::string, std::size_t> group_of;
  std::vector<std::vector<std::size_t>> groups;
  std::vector<std::size_t> rep_row;  // representative row per group
  std::string key;
  for (std::size_t r = 0; r < t.num_rows(); ++r) {
    key.clear();
    for (const Column* c : key_cols) {
      c->AppendKeyBytes(r, /*column_local=*/true, &key);
    }
    auto [it, inserted] = group_of.emplace(key, groups.size());
    if (inserted) {
      groups.emplace_back();
      rep_row.push_back(r);
    }
    groups[it->second].push_back(r);
  }

  Table out(t.name() + "_grouped");
  for (std::size_t ki = 0; ki < keys.size(); ++ki) {
    Column kc(keys[ki], key_cols[ki]->type());
    kc.Reserve(groups.size());
    for (std::size_t g = 0; g < groups.size(); ++g) {
      CDI_RETURN_IF_ERROR(kc.AppendFrom(*key_cols[ki], rep_row[g]));
    }
    CDI_RETURN_IF_ERROR(out.AddColumn(std::move(kc)));
  }
  for (const auto& spec : aggs) {
    CDI_ASSIGN_OR_RETURN(const Column* c, t.GetColumn(spec.column));
    const std::string out_name =
        spec.out_name.empty()
            ? std::string(AggKindName(spec.kind)) + "_" + spec.column
            : spec.out_name;
    Column ac(out_name, OutputType(*c, spec.kind));
    for (const auto& rows : groups) {
      CDI_RETURN_IF_ERROR(ac.Append(Reduce(*c, rows, spec.kind)));
    }
    CDI_RETURN_IF_ERROR(out.AddColumn(std::move(ac)));
  }
  return out;
}

Result<Table> CollapseByKeys(const Table& t,
                             const std::vector<std::string>& keys,
                             AggKind numeric_kind) {
  std::vector<AggSpec> aggs;
  for (const auto& name : t.ColumnNames()) {
    if (std::find(keys.begin(), keys.end(), name) != keys.end()) continue;
    CDI_ASSIGN_OR_RETURN(const Column* c, t.GetColumn(name));
    AggSpec spec;
    spec.column = name;
    spec.kind = (c->type() == DataType::kString || c->type() == DataType::kBool)
                    ? AggKind::kFirst
                    : numeric_kind;
    spec.out_name = name;
    aggs.push_back(spec);
  }
  return GroupBy(t, keys, aggs);
}

}  // namespace cdi::table
