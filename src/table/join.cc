#include "table/join.h"

#include <unordered_map>

namespace cdi::table {

namespace {

/// Writes the composite key for row `r` into `key` (cleared first).
/// Keys are exact typed encodings — bit patterns for numerics, content for
/// strings (dictionary codes are per-column and the two sides of a join
/// have different dictionaries) — so distinct doubles never collide
/// through a decimal rendering. Returns false (and sets *has_null) when
/// any key cell is null; null keys never match.
bool RowKey(const std::vector<const Column*>& key_cols, std::size_t r,
            std::string* key, bool* has_null) {
  key->clear();
  *has_null = false;
  for (const Column* c : key_cols) {
    if (c->IsNull(r)) {
      *has_null = true;
      return false;
    }
    c->AppendKeyBytes(r, /*column_local=*/false, key);
  }
  return true;
}

}  // namespace

Result<Table> HashJoin(const Table& left, const Table& right,
                       const std::vector<std::string>& left_keys,
                       const std::vector<std::string>& right_keys,
                       const JoinOptions& options) {
  if (left_keys.size() != right_keys.size() || left_keys.empty()) {
    return Status::InvalidArgument("join key lists must be non-empty and "
                                   "of equal length");
  }

  // Under kAggregate, first collapse the right side to one row per key.
  Table right_eff = right;
  if (options.multi_match == MultiMatchPolicy::kAggregate) {
    CDI_ASSIGN_OR_RETURN(right_eff,
                         CollapseByKeys(right, right_keys,
                                        options.numeric_agg));
  }

  std::vector<const Column*> lkeys;
  for (const auto& k : left_keys) {
    CDI_ASSIGN_OR_RETURN(const Column* c, left.GetColumn(k));
    lkeys.push_back(c);
  }
  std::vector<const Column*> rkeys;
  for (const auto& k : right_keys) {
    CDI_ASSIGN_OR_RETURN(const Column* c, right_eff.GetColumn(k));
    rkeys.push_back(c);
  }

  // Right columns to carry over (non-key), with collision-safe names.
  std::vector<std::size_t> rcols;
  std::vector<std::string> rnames;
  for (std::size_t i = 0; i < right_eff.num_cols(); ++i) {
    const std::string& n = right_eff.ColumnAt(i).name();
    bool is_key = false;
    for (const auto& k : right_keys) {
      if (k == n) is_key = true;
    }
    if (is_key) continue;
    rcols.push_back(i);
    std::string out_name = n;
    while (left.HasColumn(out_name)) out_name += options.right_suffix;
    rnames.push_back(out_name);
  }

  // Build hash index over the right side.
  std::unordered_map<std::string, std::vector<std::size_t>> index;
  std::string key;
  for (std::size_t r = 0; r < right_eff.num_rows(); ++r) {
    bool has_null = false;
    if (!RowKey(rkeys, r, &key, &has_null)) continue;
    index[key].push_back(r);
  }

  // Probe.
  std::vector<std::size_t> out_left_rows;
  std::vector<std::ptrdiff_t> out_right_rows;  // -1 = no match (left join)
  for (std::size_t r = 0; r < left.num_rows(); ++r) {
    bool has_null = false;
    RowKey(lkeys, r, &key, &has_null);
    const auto it = has_null ? index.end() : index.find(key);
    if (it == index.end() || it->second.empty()) {
      if (options.type == JoinType::kLeft) {
        out_left_rows.push_back(r);
        out_right_rows.push_back(-1);
      }
      continue;
    }
    if (options.multi_match == MultiMatchPolicy::kExpand) {
      for (std::size_t rr : it->second) {
        out_left_rows.push_back(r);
        out_right_rows.push_back(static_cast<std::ptrdiff_t>(rr));
      }
    } else {
      out_left_rows.push_back(r);
      out_right_rows.push_back(static_cast<std::ptrdiff_t>(it->second[0]));
    }
  }

  Table out = left.TakeRows(out_left_rows);
  out.set_name(left.name() + "_join_" + right.name());
  for (std::size_t ci = 0; ci < rcols.size(); ++ci) {
    const Column& src = right_eff.ColumnAt(rcols[ci]);
    Column col(rnames[ci], src.type());
    col.Reserve(out_right_rows.size());
    for (std::ptrdiff_t rr : out_right_rows) {
      if (rr < 0) {
        col.AppendNull();
      } else {
        CDI_RETURN_IF_ERROR(
            col.AppendFrom(src, static_cast<std::size_t>(rr)));
      }
    }
    CDI_RETURN_IF_ERROR(out.AddColumn(std::move(col)));
  }
  return out;
}

Result<Table> HashJoin(const Table& left, const Table& right,
                       const std::string& key, const JoinOptions& options) {
  return HashJoin(left, right, {key}, {key}, options);
}

}  // namespace cdi::table
