#ifndef CDI_TABLE_VALUE_H_
#define CDI_TABLE_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "common/logging.h"

namespace cdi::table {

/// Physical type of a column.
enum class DataType {
  kDouble,
  kInt64,
  kString,
  kBool,
};

/// Stable name for a DataType ("double", "int64", "string", "bool").
const char* DataTypeName(DataType type);

/// True for kDouble / kInt64.
inline bool IsNumeric(DataType type) {
  return type == DataType::kDouble || type == DataType::kInt64;
}

/// A single nullable cell. Null is represented by std::monostate.
class Value {
 public:
  Value() : v_(std::monostate{}) {}
  /// Implicit constructors keep call sites readable: Value(3.5), Value("x").
  Value(double d) : v_(d) {}
  Value(int64_t i) : v_(i) {}
  Value(int i) : v_(static_cast<int64_t>(i)) {}
  Value(std::string s) : v_(std::move(s)) {}
  Value(const char* s) : v_(std::string(s)) {}
  Value(bool b) : v_(b) {}

  static Value Null() { return Value(); }

  bool is_null() const { return std::holds_alternative<std::monostate>(v_); }
  bool is_double() const { return std::holds_alternative<double>(v_); }
  bool is_int64() const { return std::holds_alternative<int64_t>(v_); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }
  bool is_bool() const { return std::holds_alternative<bool>(v_); }

  double as_double() const {
    CDI_CHECK(is_double()) << "Value is not a double";
    return std::get<double>(v_);
  }
  int64_t as_int64() const {
    CDI_CHECK(is_int64()) << "Value is not an int64";
    return std::get<int64_t>(v_);
  }
  const std::string& as_string() const {
    CDI_CHECK(is_string()) << "Value is not a string";
    return std::get<std::string>(v_);
  }
  bool as_bool() const {
    CDI_CHECK(is_bool()) << "Value is not a bool";
    return std::get<bool>(v_);
  }

  /// Numeric view: double as-is, int64 widened, bool as 0/1.
  /// Must not be called on null or string values.
  double ToNumeric() const {
    if (is_double()) return std::get<double>(v_);
    if (is_int64()) return static_cast<double>(std::get<int64_t>(v_));
    if (is_bool()) return std::get<bool>(v_) ? 1.0 : 0.0;
    CDI_CHECK(false) << "Value has no numeric view";
    return 0.0;
  }

  /// Render for CSV/printing; null renders as the empty string.
  std::string ToString() const;

  friend bool operator==(const Value& a, const Value& b) { return a.v_ == b.v_; }
  friend bool operator!=(const Value& a, const Value& b) { return !(a == b); }

 private:
  std::variant<std::monostate, double, int64_t, std::string, bool> v_;
};

}  // namespace cdi::table

#endif  // CDI_TABLE_VALUE_H_
