#ifndef CDI_TABLE_JOIN_H_
#define CDI_TABLE_JOIN_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "table/aggregate.h"
#include "table/table.h"

namespace cdi::table {

/// Join semantics for unmatched left rows.
enum class JoinType {
  kInner,  ///< drop left rows without a match
  kLeft,   ///< keep left rows, filling right columns with null
};

/// How multiple right matches for one left row are resolved.
enum class MultiMatchPolicy {
  kExpand,     ///< emit one output row per (left, right-match) pair
  kAggregate,  ///< pre-aggregate right rows per key (numeric: mean,
               ///< other: first), so output keeps one row per left row
  kFirst,      ///< take the first matching right row
};

struct JoinOptions {
  JoinType type = JoinType::kLeft;
  MultiMatchPolicy multi_match = MultiMatchPolicy::kAggregate;
  /// Aggregation used for numeric right columns under kAggregate.
  AggKind numeric_agg = AggKind::kMean;
  /// Suffix appended to right column names that collide with left names.
  std::string right_suffix = "_r";
};

/// Hash-joins `left` with `right` on equal values of the paired key columns
/// (`left_keys[i]` matches `right_keys[i]`; values compare by their string
/// rendering so an int64 key can match a double key). Null keys never match.
///
/// The output contains all left columns followed by the non-key right
/// columns (renamed on collision). The default options (left join +
/// per-key aggregation) are what the CDI Data Organizer uses to attach
/// extracted attributes to input rows without duplicating them.
Result<Table> HashJoin(const Table& left, const Table& right,
                       const std::vector<std::string>& left_keys,
                       const std::vector<std::string>& right_keys,
                       const JoinOptions& options = JoinOptions());

/// Convenience single-key join.
Result<Table> HashJoin(const Table& left, const Table& right,
                       const std::string& key,
                       const JoinOptions& options = JoinOptions());

}  // namespace cdi::table

#endif  // CDI_TABLE_JOIN_H_
