#include "table/value.h"

#include <cmath>
#include <cstdio>

namespace cdi::table {

const char* DataTypeName(DataType type) {
  switch (type) {
    case DataType::kDouble:
      return "double";
    case DataType::kInt64:
      return "int64";
    case DataType::kString:
      return "string";
    case DataType::kBool:
      return "bool";
  }
  return "?";
}

std::string Value::ToString() const {
  if (is_null()) return "";
  if (is_string()) return as_string();
  if (is_bool()) return as_bool() ? "true" : "false";
  if (is_int64()) return std::to_string(as_int64());
  const double d = as_double();
  if (std::isnan(d)) return "nan";
  // Shortest round-trippable-ish rendering without trailing zeros.
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", d);
  return std::string(buf);
}

}  // namespace cdi::table
