#include "table/csv.h"

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace cdi::table {

namespace {

/// Splits one CSV record honoring double-quote escaping.
std::vector<std::string> SplitRecord(const std::string& line, char delim) {
  std::vector<std::string> fields;
  std::string cur;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == delim) {
      fields.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  fields.push_back(cur);
  return fields;
}

bool ParseInt(const std::string& s, int64_t* out) {
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

bool ParseDouble(const std::string& s, double* out) {
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

bool ParseBool(const std::string& s, bool* out) {
  const std::string l = ToLower(s);
  if (l == "true" || l == "yes") {
    *out = true;
    return true;
  }
  if (l == "false" || l == "no") {
    *out = false;
    return true;
  }
  return false;
}

}  // namespace

Result<Table> ReadCsvString(const std::string& text,
                            const CsvOptions& options) {
  std::vector<std::string> lines;
  {
    std::string cur;
    for (char c : text) {
      if (c == '\n') {
        if (!cur.empty() && cur.back() == '\r') cur.pop_back();
        lines.push_back(cur);
        cur.clear();
      } else {
        cur += c;
      }
    }
    if (!cur.empty()) lines.push_back(cur);
  }
  if (lines.empty()) return Status::InvalidArgument("empty CSV input");

  std::vector<std::string> header;
  std::size_t first_data = 0;
  if (options.has_header) {
    header = SplitRecord(lines[0], options.delimiter);
    for (auto& h : header) h = Trim(h);
    first_data = 1;
  } else {
    const std::size_t n = SplitRecord(lines[0], options.delimiter).size();
    for (std::size_t i = 0; i < n; ++i) header.push_back("c" + std::to_string(i));
  }
  const std::size_t ncols = header.size();

  auto is_null_token = [&](const std::string& s) {
    if (s.empty()) return true;
    for (const auto& t : options.null_tokens) {
      if (s == t) return true;
    }
    return false;
  };

  std::vector<std::vector<std::string>> raw(ncols);
  for (std::size_t li = first_data; li < lines.size(); ++li) {
    if (lines[li].empty()) continue;
    auto fields = SplitRecord(lines[li], options.delimiter);
    if (fields.size() != ncols) {
      return Status::InvalidArgument(
          "CSV line " + std::to_string(li + 1) + " has " +
          std::to_string(fields.size()) + " fields, expected " +
          std::to_string(ncols));
    }
    for (std::size_t c = 0; c < ncols; ++c) raw[c].push_back(Trim(fields[c]));
  }

  Table t("csv");
  for (std::size_t c = 0; c < ncols; ++c) {
    bool all_int = true;
    bool all_double = true;
    bool all_bool = true;
    bool any_value = false;
    for (const auto& cell : raw[c]) {
      if (is_null_token(cell)) continue;
      any_value = true;
      int64_t iv;
      double dv;
      bool bv;
      if (!ParseInt(cell, &iv)) all_int = false;
      if (!ParseDouble(cell, &dv)) all_double = false;
      if (!ParseBool(cell, &bv)) all_bool = false;
    }
    DataType type = DataType::kString;
    if (any_value) {
      if (all_int) {
        type = DataType::kInt64;
      } else if (all_double) {
        type = DataType::kDouble;
      } else if (all_bool) {
        type = DataType::kBool;
      }
    }
    Column col(header[c], type);
    for (const auto& cell : raw[c]) {
      if (is_null_token(cell)) {
        CDI_RETURN_IF_ERROR(col.Append(Value::Null()));
        continue;
      }
      switch (type) {
        case DataType::kInt64: {
          int64_t iv = 0;
          ParseInt(cell, &iv);
          CDI_RETURN_IF_ERROR(col.Append(Value(iv)));
          break;
        }
        case DataType::kDouble: {
          double dv = 0;
          ParseDouble(cell, &dv);
          CDI_RETURN_IF_ERROR(col.Append(Value(dv)));
          break;
        }
        case DataType::kBool: {
          bool bv = false;
          ParseBool(cell, &bv);
          CDI_RETURN_IF_ERROR(col.Append(Value(bv)));
          break;
        }
        case DataType::kString:
          CDI_RETURN_IF_ERROR(col.Append(Value(cell)));
          break;
      }
    }
    CDI_RETURN_IF_ERROR(t.AddColumn(std::move(col)));
  }
  return t;
}

Result<Table> ReadCsvFile(const std::string& path, const CsvOptions& options) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return ReadCsvString(buf.str(), options);
}

std::string WriteCsvString(const Table& t, char delimiter) {
  auto quote = [&](const std::string& s) {
    if (s.find(delimiter) == std::string::npos &&
        s.find('"') == std::string::npos &&
        s.find('\n') == std::string::npos) {
      return s;
    }
    std::string out = "\"";
    for (char c : s) {
      if (c == '"') out += '"';
      out += c;
    }
    out += '"';
    return out;
  };
  std::ostringstream os;
  const auto names = t.ColumnNames();
  for (std::size_t i = 0; i < names.size(); ++i) {
    os << (i ? std::string(1, delimiter) : "") << quote(names[i]);
  }
  os << '\n';
  for (std::size_t r = 0; r < t.num_rows(); ++r) {
    for (std::size_t c = 0; c < t.num_cols(); ++c) {
      os << (c ? std::string(1, delimiter) : "")
         << quote(t.ColumnAt(c).Get(r).ToString());
    }
    os << '\n';
  }
  return os.str();
}

Status WriteCsvFile(const Table& t, const std::string& path, char delimiter) {
  std::ofstream out(path);
  if (!out) return Status::Internal("cannot write '" + path + "'");
  out << WriteCsvString(t, delimiter);
  return Status::OK();
}

}  // namespace cdi::table
