#include "table/csv.h"

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace cdi::table {

namespace {

/// One scanned field: its text plus whether any part of it was quoted.
/// Quoted fields are taken verbatim — no trimming, no null-token
/// conversion — so `""` means the empty string, not a missing value.
struct RawField {
  std::string text;
  bool quoted = false;
};

/// Scans the whole CSV text into records with one quote-aware pass.
/// Record terminators (`\n` or `\r\n`) are only recognized *outside*
/// quotes — a quoted field may contain literal newlines and carriage
/// returns. Splitting into lines first (the old approach) corrupted
/// both: embedded newlines broke a record in two, and CRLF stripping
/// ate a literal `\r` at the end of a quoted field.
std::vector<std::vector<RawField>> ScanRecords(const std::string& text,
                                               char delim) {
  std::vector<std::vector<RawField>> records;
  std::vector<RawField> fields;
  RawField cur;
  bool in_quotes = false;
  auto end_field = [&]() {
    fields.push_back(std::move(cur));
    cur = RawField();
  };
  auto end_record = [&]() {
    end_field();
    // Blank lines (a single empty unquoted field) are not data rows.
    if (fields.size() != 1 || !fields[0].text.empty() || fields[0].quoted) {
      records.push_back(std::move(fields));
    }
    fields.clear();
  };
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          cur.text += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur.text += c;  // delimiters, \n and \r are all literal here
      }
    } else if (c == '"') {
      in_quotes = true;
      cur.quoted = true;
    } else if (c == delim) {
      end_field();
    } else if (c == '\n') {
      end_record();
    } else if (c == '\r' && i + 1 < text.size() && text[i + 1] == '\n') {
      end_record();
      ++i;
    } else {
      cur.text += c;  // a lone \r outside quotes stays literal
    }
  }
  // Final record without a trailing newline (an unterminated quote is
  // treated leniently as ending at EOF).
  if (!cur.text.empty() || cur.quoted || !fields.empty()) end_record();
  return records;
}

bool ParseInt(const std::string& s, int64_t* out) {
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

bool ParseDouble(const std::string& s, double* out) {
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

bool ParseBool(const std::string& s, bool* out) {
  const std::string l = ToLower(s);
  if (l == "true" || l == "yes") {
    *out = true;
    return true;
  }
  if (l == "false" || l == "no") {
    *out = false;
    return true;
  }
  return false;
}

}  // namespace

Result<Table> ReadCsvString(const std::string& text,
                            const CsvOptions& options) {
  const auto records = ScanRecords(text, options.delimiter);
  if (records.empty()) return Status::InvalidArgument("empty CSV input");

  std::vector<std::string> header;
  std::size_t first_data = 0;
  if (options.has_header) {
    for (const auto& f : records[0]) {
      header.push_back(f.quoted ? f.text : Trim(f.text));
    }
    first_data = 1;
  } else {
    const std::size_t n = records[0].size();
    for (std::size_t i = 0; i < n; ++i) header.push_back("c" + std::to_string(i));
  }
  const std::size_t ncols = header.size();

  auto is_null_token = [&](const RawField& f) {
    if (f.quoted) return false;  // "" and "NA" are data, not missing
    if (f.text.empty()) return true;
    for (const auto& t : options.null_tokens) {
      if (f.text == t) return true;
    }
    return false;
  };

  std::vector<std::vector<RawField>> raw(ncols);
  for (std::size_t ri = first_data; ri < records.size(); ++ri) {
    const auto& fields = records[ri];
    if (fields.size() != ncols) {
      return Status::InvalidArgument(
          "CSV record " + std::to_string(ri + 1) + " has " +
          std::to_string(fields.size()) + " fields, expected " +
          std::to_string(ncols));
    }
    for (std::size_t c = 0; c < ncols; ++c) {
      RawField f = fields[c];
      if (!f.quoted) f.text = Trim(f.text);
      raw[c].push_back(std::move(f));
    }
  }

  Table t("csv");
  for (std::size_t c = 0; c < ncols; ++c) {
    bool all_int = true;
    bool all_double = true;
    bool all_bool = true;
    bool any_value = false;
    for (const auto& cell : raw[c]) {
      if (is_null_token(cell)) continue;
      any_value = true;
      int64_t iv;
      double dv;
      bool bv;
      if (!ParseInt(cell.text, &iv)) all_int = false;
      if (!ParseDouble(cell.text, &dv)) all_double = false;
      if (!ParseBool(cell.text, &bv)) all_bool = false;
    }
    DataType type = DataType::kString;
    if (any_value) {
      if (all_int) {
        type = DataType::kInt64;
      } else if (all_double) {
        type = DataType::kDouble;
      } else if (all_bool) {
        type = DataType::kBool;
      }
    }
    // Parsed cells go straight into the column's typed buffers — no Value
    // boxing on the bulk ingest path.
    Column col(header[c], type);
    col.Reserve(raw[c].size());
    for (auto& cell : raw[c]) {
      if (is_null_token(cell)) {
        col.AppendNull();
        continue;
      }
      switch (type) {
        case DataType::kInt64: {
          int64_t iv = 0;
          ParseInt(cell.text, &iv);
          CDI_RETURN_IF_ERROR(col.AppendInt64(iv));
          break;
        }
        case DataType::kDouble: {
          double dv = 0;
          ParseDouble(cell.text, &dv);
          CDI_RETURN_IF_ERROR(col.AppendDouble(dv));
          break;
        }
        case DataType::kBool: {
          bool bv = false;
          ParseBool(cell.text, &bv);
          CDI_RETURN_IF_ERROR(col.AppendBool(bv));
          break;
        }
        case DataType::kString:
          CDI_RETURN_IF_ERROR(col.AppendString(std::move(cell.text)));
          break;
      }
    }
    CDI_RETURN_IF_ERROR(t.AddColumn(std::move(col)));
  }
  return t;
}

Result<Table> ReadCsvFile(const std::string& path, const CsvOptions& options) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return ReadCsvString(buf.str(), options);
}

std::string WriteCsvString(const Table& t, char delimiter) {
  auto quote = [&](const std::string& s) {
    if (s.find(delimiter) == std::string::npos &&
        s.find('"') == std::string::npos &&
        s.find('\n') == std::string::npos &&
        s.find('\r') == std::string::npos) {
      return s;
    }
    std::string out = "\"";
    for (char c : s) {
      if (c == '"') out += '"';
      out += c;
    }
    out += '"';
    return out;
  };
  std::ostringstream os;
  const auto names = t.ColumnNames();
  for (std::size_t i = 0; i < names.size(); ++i) {
    os << (i ? std::string(1, delimiter) : "") << quote(names[i]);
  }
  os << '\n';
  for (std::size_t r = 0; r < t.num_rows(); ++r) {
    for (std::size_t c = 0; c < t.num_cols(); ++c) {
      os << (c ? std::string(1, delimiter) : "")
         << quote(t.ColumnAt(c).Get(r).ToString());
    }
    os << '\n';
  }
  return os.str();
}

Status WriteCsvFile(const Table& t, const std::string& path, char delimiter) {
  std::ofstream out(path);
  if (!out) return Status::Internal("cannot write '" + path + "'");
  out << WriteCsvString(t, delimiter);
  return Status::OK();
}

}  // namespace cdi::table
