#include "table/table.h"

#include <algorithm>
#include <numeric>
#include <sstream>
#include <unordered_set>

namespace cdi::table {

Result<Table> Table::FromColumns(std::string name,
                                 std::vector<Column> columns) {
  Table t(std::move(name));
  for (auto& c : columns) {
    CDI_RETURN_IF_ERROR(t.AddColumn(std::move(c)));
  }
  return t;
}

std::vector<std::string> Table::ColumnNames() const {
  std::vector<std::string> names;
  names.reserve(columns_.size());
  for (const auto& c : columns_) names.push_back(c.name());
  return names;
}

bool Table::HasColumn(const std::string& name) const {
  for (const auto& c : columns_) {
    if (c.name() == name) return true;
  }
  return false;
}

Result<std::size_t> Table::ColumnIndex(const std::string& name) const {
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name() == name) return i;
  }
  return Status::NotFound("no column '" + name + "' in table '" + name_ + "'");
}

Result<const Column*> Table::GetColumn(const std::string& name) const {
  CDI_ASSIGN_OR_RETURN(std::size_t i, ColumnIndex(name));
  return &columns_[i];
}

Result<Column*> Table::MutableColumn(const std::string& name) {
  CDI_ASSIGN_OR_RETURN(std::size_t i, ColumnIndex(name));
  return &columns_[i];
}

Status Table::AddColumn(Column column) {
  if (HasColumn(column.name())) {
    return Status::AlreadyExists("column '" + column.name() + "' exists");
  }
  if (!columns_.empty() && column.size() != num_rows()) {
    return Status::InvalidArgument(
        "column '" + column.name() + "' has " +
        std::to_string(column.size()) + " rows, table has " +
        std::to_string(num_rows()));
  }
  columns_.push_back(std::move(column));
  return Status::OK();
}

Status Table::DropColumn(const std::string& name) {
  CDI_ASSIGN_OR_RETURN(std::size_t i, ColumnIndex(name));
  columns_.erase(columns_.begin() + static_cast<std::ptrdiff_t>(i));
  return Status::OK();
}

Status Table::RenameColumn(const std::string& from, const std::string& to) {
  if (from != to && HasColumn(to)) {
    return Status::AlreadyExists("column '" + to + "' exists");
  }
  CDI_ASSIGN_OR_RETURN(std::size_t i, ColumnIndex(from));
  columns_[i].set_name(to);
  return Status::OK();
}

Result<Value> Table::GetCell(std::size_t row, const std::string& column) const {
  CDI_ASSIGN_OR_RETURN(std::size_t i, ColumnIndex(column));
  if (row >= num_rows()) {
    return Status::OutOfRange("row " + std::to_string(row));
  }
  return columns_[i].Get(row);
}

Status Table::SetCell(std::size_t row, const std::string& column, Value v) {
  CDI_ASSIGN_OR_RETURN(std::size_t i, ColumnIndex(column));
  return columns_[i].Set(row, std::move(v));
}

Status Table::AppendRow(const std::vector<Value>& values) {
  if (values.size() != columns_.size()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(values.size()) + " != schema arity " +
        std::to_string(columns_.size()));
  }
  // Validate all before mutating any, so a failed append leaves the table
  // rectangular.
  for (std::size_t i = 0; i < values.size(); ++i) {
    Column probe(columns_[i].name(), columns_[i].type());
    CDI_RETURN_IF_ERROR(probe.Append(values[i]));
  }
  for (std::size_t i = 0; i < values.size(); ++i) {
    CDI_RETURN_IF_ERROR(columns_[i].Append(values[i]));
  }
  return Status::OK();
}

Status Table::AppendRows(const Table& batch) {
  if (batch.num_cols() != num_cols()) {
    return Status::InvalidArgument(
        "batch arity " + std::to_string(batch.num_cols()) +
        " != schema arity " + std::to_string(num_cols()) + " (table '" +
        name_ + "' expects columns [" + [this] {
          std::string s;
          for (const auto& c : columns_) {
            if (!s.empty()) s += ", ";
            s += c.name();
          }
          return s;
        }() + "])");
  }
  // Resolve every batch column and validate types before mutating
  // anything, so a failed append leaves the table rectangular and
  // untouched.
  std::vector<const Column*> sources(columns_.size(), nullptr);
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    const auto idx = batch.ColumnIndex(columns_[i].name());
    if (!idx.ok()) {
      return Status::InvalidArgument("batch is missing column '" +
                                     columns_[i].name() + "' of table '" +
                                     name_ + "'");
    }
    const Column& src = batch.columns_[idx.value()];
    const bool widen_ints = columns_[i].type() == DataType::kDouble &&
                            src.type() == DataType::kInt64;
    if (src.type() != columns_[i].type() && !widen_ints) {
      return Status::InvalidArgument(
          "batch column '" + src.name() + "' has type " +
          DataTypeName(src.type()) + " but table '" + name_ + "' expects " +
          DataTypeName(columns_[i].type()));
    }
    sources[i] = &src;
  }
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    CDI_RETURN_IF_ERROR(columns_[i].AppendChunk(*sources[i]));
  }
  return Status::OK();
}

Result<Table> Table::SelectColumns(
    const std::vector<std::string>& names) const {
  Table out(name_);
  for (const auto& n : names) {
    CDI_ASSIGN_OR_RETURN(std::size_t i, ColumnIndex(n));
    CDI_RETURN_IF_ERROR(out.AddColumn(columns_[i]));
  }
  return out;
}

Table Table::TakeRows(const std::vector<std::size_t>& rows) const {
  Table out(name_);
  for (const auto& c : columns_) {
    Status s = out.AddColumn(c.Take(rows));
    CDI_CHECK(s.ok()) << s.ToString();
  }
  return out;
}

Table Table::FilterRows(const std::function<bool(std::size_t)>& pred) const {
  std::vector<std::size_t> keep;
  for (std::size_t r = 0; r < num_rows(); ++r) {
    if (pred(r)) keep.push_back(r);
  }
  return TakeRows(keep);
}

Table Table::DropNullRows() const {
  return FilterRows([this](std::size_t r) {
    for (const auto& c : columns_) {
      if (c.IsNull(r)) return false;
    }
    return true;
  });
}

Table Table::Head(std::size_t n) const {
  std::vector<std::size_t> rows;
  for (std::size_t r = 0; r < std::min(n, num_rows()); ++r) rows.push_back(r);
  return TakeRows(rows);
}

Table Table::SampleRows(std::size_t n, Rng* rng) const {
  std::vector<std::size_t> rows(num_rows());
  std::iota(rows.begin(), rows.end(), 0);
  if (n < rows.size()) {
    rng->Shuffle(&rows);
    rows.resize(n);
    std::sort(rows.begin(), rows.end());
  }
  return TakeRows(rows);
}

Result<Table> Table::SortBy(const std::string& column, bool ascending) const {
  CDI_ASSIGN_OR_RETURN(std::size_t ci, ColumnIndex(column));
  const Column& c = columns_[ci];
  std::vector<std::size_t> order(num_rows());
  std::iota(order.begin(), order.end(), 0);
  auto less = [&](std::size_t a, std::size_t b) {
    const bool na = c.IsNull(a);
    const bool nb = c.IsNull(b);
    if (na || nb) return nb && !na;
    if (c.type() == DataType::kString) {
      return ascending ? c.StringAt(a) < c.StringAt(b)
                       : c.StringAt(b) < c.StringAt(a);
    }
    return ascending ? c.NumericAt(a) < c.NumericAt(b)
                     : c.NumericAt(b) < c.NumericAt(a);
  };
  std::stable_sort(order.begin(), order.end(), less);
  return TakeRows(order);
}

Table Table::DistinctRows() const {
  std::unordered_set<std::string> seen;
  std::vector<std::size_t> keep;
  std::string key;
  for (std::size_t r = 0; r < num_rows(); ++r) {
    key.clear();
    for (const auto& c : columns_) {
      c.AppendKeyBytes(r, /*column_local=*/true, &key);
    }
    if (seen.insert(key).second) keep.push_back(r);
  }
  return TakeRows(keep);
}

std::size_t Table::ByteSize() const {
  std::size_t bytes = 0;
  for (const Column& c : columns_) bytes += c.ByteSize();
  return bytes;
}

std::string Table::ToString(std::size_t max_rows) const {
  const std::size_t rows = std::min(max_rows, num_rows());
  std::vector<std::size_t> widths(columns_.size());
  std::vector<std::vector<std::string>> cells(rows);
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    widths[i] = columns_[i].name().size();
  }
  for (std::size_t r = 0; r < rows; ++r) {
    cells[r].resize(columns_.size());
    for (std::size_t i = 0; i < columns_.size(); ++i) {
      cells[r][i] = columns_[i].Get(r).ToString();
      widths[i] = std::max(widths[i], cells[r][i].size());
    }
  }
  std::ostringstream os;
  if (!name_.empty()) {
    os << name_ << " (" << num_rows() << " rows x " << num_cols()
       << " cols)\n";
  }
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    os << (i ? " | " : "") << columns_[i].name()
       << std::string(widths[i] - columns_[i].name().size(), ' ');
  }
  os << '\n';
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    os << (i ? "-+-" : "") << std::string(widths[i], '-');
  }
  os << '\n';
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t i = 0; i < columns_.size(); ++i) {
      os << (i ? " | " : "") << cells[r][i]
         << std::string(widths[i] - cells[r][i].size(), ' ');
    }
    os << '\n';
  }
  if (rows < num_rows()) {
    os << "... (" << (num_rows() - rows) << " more rows)\n";
  }
  return os.str();
}

}  // namespace cdi::table
