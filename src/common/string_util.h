#ifndef CDI_COMMON_STRING_UTIL_H_
#define CDI_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace cdi {

/// Returns `s` with ASCII letters lowered.
std::string ToLower(std::string_view s);

/// Returns `s` without leading/trailing whitespace.
std::string Trim(std::string_view s);

/// Splits `s` on `delim`; keeps empty fields.
std::vector<std::string> Split(std::string_view s, char delim);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// True if `s` ends with `suffix`.
bool EndsWith(std::string_view s, std::string_view suffix);

/// True if `needle` occurs in `haystack` ignoring ASCII case.
bool ContainsIgnoreCase(std::string_view haystack, std::string_view needle);

/// Canonicalizes an entity name for matching: lower-cases, trims, collapses
/// runs of whitespace/punctuation to single underscores.
std::string NormalizeEntityName(std::string_view s);

/// Levenshtein edit distance.
std::size_t EditDistance(std::string_view a, std::string_view b);

/// Jaro-Winkler similarity in [0, 1]; 1 means equal strings.
double JaroWinkler(std::string_view a, std::string_view b);

/// Formats a double with `precision` significant decimal digits after the
/// point (fixed notation), e.g. FormatDouble(0.456789, 2) == "0.46".
std::string FormatDouble(double v, int precision);

}  // namespace cdi

#endif  // CDI_COMMON_STRING_UTIL_H_
