#include "common/histogram.h"

#include <cmath>

namespace cdi {

double HistogramSnapshot::Quantile(double q) const {
  if (total_count == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the q-th sample, 1-based; ceil so Quantile(1.0) needs every
  // sample and Quantile(0.0) needs the first.
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(total_count)));
  const std::uint64_t target = rank == 0 ? 1 : rank;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    seen += counts[i];
    if (seen >= target) return LatencyHistogram::BucketUpperBoundSeconds(i);
  }
  return LatencyHistogram::BucketUpperBoundSeconds(counts.size() - 1);
}

HistogramSnapshot HistogramSnapshot::Since(
    const HistogramSnapshot& earlier) const {
  HistogramSnapshot out;
  out.counts.resize(counts.size());
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const std::uint64_t before =
        i < earlier.counts.size() ? earlier.counts[i] : 0;
    out.counts[i] = counts[i] - before;
    out.total_count += out.counts[i];
  }
  out.total_ns = total_ns - earlier.total_ns;
  return out;
}

void LatencyHistogram::Record(double seconds) {
  if (!(seconds >= 0.0)) seconds = 0.0;  // NaN / negative -> bucket 0
  counts_[BucketFor(seconds)].fetch_add(1, std::memory_order_relaxed);
  total_ns_.fetch_add(static_cast<std::uint64_t>(seconds * 1e9),
                      std::memory_order_relaxed);
}

std::size_t LatencyHistogram::BucketFor(double seconds) {
  const double us = seconds * 1e6;
  if (!(us >= 1.0)) return 0;
  // Bucket i (i >= 1) holds [2^(i-1), 2^i) microseconds.
  const auto floor_log2 =
      static_cast<std::size_t>(std::floor(std::log2(us)));
  const std::size_t bucket = floor_log2 + 1;
  return bucket >= kNumBuckets ? kNumBuckets - 1 : bucket;
}

double LatencyHistogram::BucketUpperBoundSeconds(std::size_t i) {
  if (i == 0) return 1e-6;
  // Upper bound 2^i us; the overflow bucket reports its lower bound.
  const std::size_t exp = i >= kNumBuckets - 1 ? kNumBuckets - 2 : i;
  return std::ldexp(1e-6, static_cast<int>(exp));
}

HistogramSnapshot LatencyHistogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.counts.resize(kNumBuckets);
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    snap.counts[i] = counts_[i].load(std::memory_order_relaxed);
    snap.total_count += snap.counts[i];
  }
  snap.total_ns = total_ns_.load(std::memory_order_relaxed);
  return snap;
}

}  // namespace cdi
