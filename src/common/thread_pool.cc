#include "common/thread_pool.h"

#include <algorithm>
#include <utility>

namespace cdi {

ThreadPool::ThreadPool(std::size_t num_threads) {
  const std::size_t n = std::max<std::size_t>(1, num_threads);
  threads_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stopping_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  task_ready_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_ready_.wait(lock,
                       [this] { return stopping_ || !queue_.empty(); });
      // Drain the queue even when stopping so ~ThreadPool never abandons
      // submitted work (callers block in ParallelFor on its completion).
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

namespace {

/// Workers that can make forward progress simultaneously: a pool wider
/// than the machine only adds context-switch and wakeup overhead to these
/// fan-out helpers (an 8-thread pool on a 1-core CI runner made every
/// parallel sweep ~15% slower than running it inline), so the helpers
/// fan out to at most hardware_concurrency tasks. The pool keeps its full
/// thread count — direct Submit() is untouched, and results never depend
/// on how many workers ran the loop (per-index output slots).
std::size_t UsableWorkers(const ThreadPool& pool) {
  const std::size_t hw = std::thread::hardware_concurrency();
  return hw == 0 ? pool.size() : std::min(pool.size(), hw);
}

}  // namespace

void ParallelFor(ThreadPool* pool, std::size_t n,
                 const std::function<void(std::size_t)>& fn) {
  if (pool == nullptr || pool->size() <= 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // Dynamic scheduling: workers pull the next index from a shared counter.
  // Small loops wake only as many workers as can get a useful share of the
  // indices: CDI's parallel bodies (one cached CI query chain per edge) are
  // mostly sub-microsecond, so a worker must receive tens of indices before
  // its wakeup cost pays for itself.
  constexpr std::size_t kMinPerWorker = 64;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> live{0};
  std::mutex mu;
  std::condition_variable done;
  const std::size_t workers = std::min(
      UsableWorkers(*pool), std::max<std::size_t>(1, n / kMinPerWorker));
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  live.store(workers, std::memory_order_relaxed);
  for (std::size_t w = 0; w < workers; ++w) {
    pool->Submit([&] {
      for (std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
           i < n; i = next.fetch_add(1, std::memory_order_relaxed)) {
        fn(i);
      }
      if (live.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::unique_lock<std::mutex> lock(mu);
        done.notify_all();
      }
    });
  }
  std::unique_lock<std::mutex> lock(mu);
  done.wait(lock, [&] { return live.load(std::memory_order_acquire) == 0; });
}

void ParallelForRanges(
    ThreadPool* pool, std::size_t n, std::size_t min_grain,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  if (min_grain == 0) min_grain = 1;
  const std::size_t workers =
      pool == nullptr
          ? 1
          : std::min(UsableWorkers(*pool), (n + min_grain - 1) / min_grain);
  if (workers <= 1) {
    fn(0, n);
    return;
  }
  // ~4 chunks per worker balances pull overhead against tail imbalance.
  const std::size_t chunk =
      std::max(min_grain, (n + workers * 4 - 1) / (workers * 4));
  const std::size_t num_chunks = (n + chunk - 1) / chunk;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> live{workers};
  std::mutex mu;
  std::condition_variable done;
  for (std::size_t w = 0; w < workers; ++w) {
    pool->Submit([&] {
      for (std::size_t c = next.fetch_add(1, std::memory_order_relaxed);
           c < num_chunks; c = next.fetch_add(1, std::memory_order_relaxed)) {
        const std::size_t begin = c * chunk;
        fn(begin, std::min(begin + chunk, n));
      }
      if (live.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::unique_lock<std::mutex> lock(mu);
        done.notify_all();
      }
    });
  }
  std::unique_lock<std::mutex> lock(mu);
  done.wait(lock, [&] { return live.load(std::memory_order_acquire) == 0; });
}

}  // namespace cdi
