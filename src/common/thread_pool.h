#ifndef CDI_COMMON_THREAD_POOL_H_
#define CDI_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cdi {

/// Fixed-size pool of worker threads with a shared FIFO task queue.
///
/// There is deliberately no work stealing and no dynamic sizing: CDI's
/// parallel sections are data-parallel loops whose tasks are independent
/// and whose results are written to pre-assigned slots, so a plain queue
/// keeps the implementation small and the behaviour easy to reason about
/// under TSAN. The destructor drains the queue and joins every worker.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to at least 1).
  explicit ThreadPool(std::size_t num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains outstanding tasks, then joins all workers.
  ~ThreadPool();

  std::size_t size() const { return threads_.size(); }

  /// Enqueues a task. Tasks must not throw.
  void Submit(std::function<void()> task);

  /// Blocks until every task submitted so far has finished.
  void Wait();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;  // queued + currently running
  bool stopping_ = false;
  std::vector<std::thread> threads_;
};

/// Runs `fn(0) .. fn(n - 1)` across the pool's workers and blocks until
/// all calls return. Iterations must be independent; they are handed out
/// dynamically, so any iteration may run on any worker in any order —
/// callers that need determinism must write results to per-index slots.
/// Fans out to at most hardware_concurrency tasks regardless of pool
/// width (an oversubscribed pool only adds context-switch overhead).
/// Runs inline (plain loop) when `pool` is null, has a single worker, or
/// `n <= 1`.
void ParallelFor(ThreadPool* pool, std::size_t n,
                 const std::function<void(std::size_t)>& fn);

/// Range-chunked variant for loops whose per-index work is too small for
/// ParallelFor's one-index-per-pull scheduling but too uneven for static
/// splitting: [0, n) is cut into contiguous chunks of at least
/// `min_grain` indices (at most ~4 chunks per worker), workers pull
/// chunks dynamically, and `fn(begin, end)` runs once per chunk. Unlike
/// ParallelFor there is no minimum-work heuristic — the caller states
/// the grain, so even a 50-iteration loop fans out. Fans out to at most
/// hardware_concurrency tasks regardless of pool width. Runs inline as
/// fn(0, n) when `pool` is null, has a single worker, or everything fits
/// one chunk. Chunk boundaries are load balancing only; callers must
/// produce results independent of them (per-index output slots).
void ParallelForRanges(
    ThreadPool* pool, std::size_t n, std::size_t min_grain,
    const std::function<void(std::size_t, std::size_t)>& fn);

}  // namespace cdi

#endif  // CDI_COMMON_THREAD_POOL_H_
