#include "common/string_util.h"

#include <algorithm>
#include <cctype>
#include <cstdio>

namespace cdi {

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string Trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool ContainsIgnoreCase(std::string_view haystack, std::string_view needle) {
  if (needle.empty()) return true;
  const std::string h = ToLower(haystack);
  const std::string n = ToLower(needle);
  return h.find(n) != std::string::npos;
}

std::string NormalizeEntityName(std::string_view s) {
  const std::string lowered = ToLower(Trim(s));
  std::string out;
  out.reserve(lowered.size());
  bool pending_sep = false;
  for (unsigned char c : lowered) {
    if (std::isalnum(c)) {
      if (pending_sep && !out.empty()) out += '_';
      pending_sep = false;
      out += static_cast<char>(c);
    } else {
      pending_sep = true;
    }
  }
  return out;
}

std::size_t EditDistance(std::string_view a, std::string_view b) {
  const std::size_t n = a.size();
  const std::size_t m = b.size();
  if (n == 0) return m;
  if (m == 0) return n;
  std::vector<std::size_t> prev(m + 1);
  std::vector<std::size_t> cur(m + 1);
  for (std::size_t j = 0; j <= m; ++j) prev[j] = j;
  for (std::size_t i = 1; i <= n; ++i) {
    cur[0] = i;
    for (std::size_t j = 1; j <= m; ++j) {
      const std::size_t cost = (a[i - 1] == b[j - 1]) ? 0 : 1;
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, prev[j - 1] + cost});
    }
    std::swap(prev, cur);
  }
  return prev[m];
}

double JaroWinkler(std::string_view a, std::string_view b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  if (a == b) return 1.0;

  const std::size_t n = a.size();
  const std::size_t m = b.size();
  const std::size_t window =
      std::max<std::size_t>(1, std::max(n, m) / 2) - 1;

  std::vector<bool> a_matched(n, false);
  std::vector<bool> b_matched(m, false);
  std::size_t matches = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t lo = i > window ? i - window : 0;
    const std::size_t hi = std::min(m, i + window + 1);
    for (std::size_t j = lo; j < hi; ++j) {
      if (b_matched[j] || a[i] != b[j]) continue;
      a_matched[i] = true;
      b_matched[j] = true;
      ++matches;
      break;
    }
  }
  if (matches == 0) return 0.0;

  std::size_t transpositions = 0;
  std::size_t k = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (!a_matched[i]) continue;
    while (!b_matched[k]) ++k;
    if (a[i] != b[k]) ++transpositions;
    ++k;
  }
  const double md = static_cast<double>(matches);
  const double jaro = (md / n + md / m +
                       (md - transpositions / 2.0) / md) /
                      3.0;

  // Winkler prefix bonus (max prefix length 4, scaling 0.1).
  std::size_t prefix = 0;
  for (std::size_t i = 0; i < std::min({n, m, std::size_t{4}}); ++i) {
    if (a[i] == b[i]) {
      ++prefix;
    } else {
      break;
    }
  }
  return jaro + prefix * 0.1 * (1.0 - jaro);
}

std::string FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return std::string(buf);
}

}  // namespace cdi
