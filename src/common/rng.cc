#include "common/rng.h"

#include <cmath>

#include "common/logging.h"

namespace cdi {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) : seed_(seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  // xoshiro256++
  const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 random mantissa bits -> [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

uint64_t Rng::UniformInt(uint64_t n) {
  CDI_CHECK(n > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - n) % n;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  CDI_CHECK(lo <= hi);
  return lo + static_cast<int64_t>(
                  UniformInt(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller.
  double u1 = Uniform();
  while (u1 <= 0.0) u1 = Uniform();
  const double u2 = Uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

double Rng::Laplace(double b) {
  const double u = Uniform() - 0.5;
  return -b * std::copysign(std::log(1.0 - 2.0 * std::fabs(u)), u);
}

double Rng::UniformNoise(double a) { return Uniform(-a, a); }

double Rng::Exponential(double rate) {
  CDI_CHECK(rate > 0.0);
  double u = Uniform();
  while (u <= 0.0) u = Uniform();
  return -std::log(u) / rate;
}

std::size_t Rng::Categorical(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    CDI_CHECK(w >= 0.0);
    total += w;
  }
  CDI_CHECK(total > 0.0) << "Categorical needs a positive weight";
  double x = Uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x < 0.0) return i;
  }
  return weights.size() - 1;
}

Rng Rng::Fork(uint64_t stream_id) const {
  // Mix the original seed with the stream id through splitmix.
  uint64_t s = seed_ ^ (0xA0761D6478BD642FULL * (stream_id + 1));
  return Rng(SplitMix64(&s));
}

}  // namespace cdi
