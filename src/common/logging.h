#ifndef CDI_COMMON_LOGGING_H_
#define CDI_COMMON_LOGGING_H_

#include <cstdlib>
#include <sstream>
#include <string>

namespace cdi {

/// Severity of a log message.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the minimum severity that is actually emitted (default: kWarning,
/// so library internals stay quiet in tests and benchmarks).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_logging {

/// Accumulates one log line and emits it to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// LogMessage that aborts the process after emitting (used by CDI_CHECK).
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line, const char* condition);
  [[noreturn]] ~FatalLogMessage();

  FatalLogMessage(const FatalLogMessage&) = delete;
  FatalLogMessage& operator=(const FatalLogMessage&) = delete;

  template <typename T>
  FatalLogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

/// Turns the streamed FatalLogMessage expression into `void` so CDI_CHECK can
/// appear in a ternary. `&` binds looser than `<<`, so all streaming into the
/// message happens first.
struct Voidifier {
  void operator&(FatalLogMessage&) {}
  void operator&(FatalLogMessage&&) {}
};

}  // namespace internal_logging

#define CDI_LOG(level)                                                  \
  ::cdi::internal_logging::LogMessage(::cdi::LogLevel::k##level,        \
                                      __FILE__, __LINE__)

/// Aborts with a message when `cond` is false; extra context may be
/// streamed in: `CDI_CHECK(i < n) << "i=" << i;`. For internal invariants
/// only — recoverable conditions should return Status instead.
#define CDI_CHECK(cond)                                           \
  (cond) ? (void)0                                                \
         : ::cdi::internal_logging::Voidifier() &                 \
               ::cdi::internal_logging::FatalLogMessage(          \
                   __FILE__, __LINE__, #cond)

#define CDI_DCHECK(cond) CDI_CHECK(cond)

}  // namespace cdi

#endif  // CDI_COMMON_LOGGING_H_
