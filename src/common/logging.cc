#include "common/logging.h"

#include <atomic>
#include <cstdio>

namespace cdi {

namespace {
std::atomic<int> g_min_level{static_cast<int>(LogLevel::kWarning)};

/// Emits one complete log line with a *single* fwrite call. stdio locks
/// the stream around each call, so concurrent worker-thread logs are
/// serialized whole-line — streaming the parts separately (or a separate
/// fprintf for the trailing newline) can shear lines under concurrency.
void EmitLine(std::string line) {
  line.push_back('\n');
  std::fwrite(line.data(), 1, line.size(), stderr);
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) >=
      g_min_level.load(std::memory_order_relaxed)) {
    EmitLine(stream_.str());
  }
}

FatalLogMessage::FatalLogMessage(const char* file, int line,
                                 const char* condition) {
  stream_ << "[FATAL " << file << ":" << line << "] check failed: ("
          << condition << ") ";
}

FatalLogMessage::~FatalLogMessage() {
  EmitLine(stream_.str());
  std::abort();
}

}  // namespace internal_logging
}  // namespace cdi
