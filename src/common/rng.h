#ifndef CDI_COMMON_RNG_H_
#define CDI_COMMON_RNG_H_

#include <cstdint>
#include <vector>

namespace cdi {

/// Deterministic, platform-stable pseudo-random number generator
/// (xoshiro256++ seeded via splitmix64).
///
/// CDI never uses std:: distributions because their output differs across
/// standard-library implementations; every sampling routine here is
/// implemented from scratch so experiment results are bit-stable.
class Rng {
 public:
  /// Seeds the generator; the same seed always yields the same stream.
  explicit Rng(uint64_t seed = 42);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Standard normal deviate (Box-Muller, cached pair).
  double Normal();

  /// Normal deviate with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// Bernoulli draw with success probability p.
  bool Bernoulli(double p);

  /// Laplace(0, b) deviate — non-Gaussian noise for LiNGAM scenarios.
  double Laplace(double b);

  /// Uniform(-a, a) deviate — another non-Gaussian noise choice.
  double UniformNoise(double a);

  /// Exponential deviate with the given rate.
  double Exponential(double rate);

  /// Samples an index in [0, weights.size()) proportionally to weights.
  /// Requires at least one strictly positive weight.
  std::size_t Categorical(const std::vector<double>& weights);

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (std::size_t i = v->size() - 1; i > 0; --i) {
      std::size_t j = UniformInt(static_cast<uint64_t>(i) + 1);
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Derives an independent child generator (for reproducible parallel
  /// streams keyed by `stream_id`).
  Rng Fork(uint64_t stream_id) const;

 private:
  uint64_t state_[4];
  uint64_t seed_;
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace cdi

#endif  // CDI_COMMON_RNG_H_
