#ifndef CDI_COMMON_SPAN_H_
#define CDI_COMMON_SPAN_H_

#include <cstddef>
#include <initializer_list>
#include <memory>
#include <utility>
#include <vector>

namespace cdi {

/// A read-only view over a contiguous run of doubles (NaN = missing).
///
/// The span either *borrows* a caller-owned buffer (constructed from an
/// lvalue vector or via Borrow()) or *owns* a buffer shared across copies
/// (constructed from an rvalue vector). Owning spans let APIs that must
/// materialize data — e.g. an int64 column widened to doubles — hand the
/// result to span-typed consumers without the caller managing a side
/// buffer. Copying a span never copies the data.
///
/// Lifetime: a borrowed span is valid while the backing buffer lives and
/// is not reallocated. See DESIGN.md "Physical storage layout" for the
/// rules the table layer guarantees (in-place writes show through views;
/// appends may invalidate them).
///
/// Element access is unchecked, like a raw pointer: this is the innermost
/// loop of every estimator.
class DoubleSpan {
 public:
  DoubleSpan() = default;

  /// Borrows `v`; the caller keeps it alive and unresized.
  DoubleSpan(const std::vector<double>& v)  // NOLINT(runtime/explicit)
      : data_(v.data()), size_(v.size()) {}

  /// Adopts `v` into a shared buffer the span (and its copies) keep alive.
  DoubleSpan(std::vector<double>&& v)  // NOLINT(runtime/explicit)
      : owned_(std::make_shared<const std::vector<double>>(std::move(v))) {
    data_ = owned_->data();
    size_ = owned_->size();
  }

  /// Owning span over a braced literal, e.g. `Mean({1.0, 2.0})`.
  DoubleSpan(std::initializer_list<double> v)  // NOLINT(runtime/explicit)
      : DoubleSpan(std::vector<double>(v)) {}

  /// Borrows a raw buffer of `size` doubles.
  static DoubleSpan Borrow(const double* data, std::size_t size) {
    DoubleSpan s;
    s.data_ = data;
    s.size_ = size;
    return s;
  }

  const double* data() const { return data_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  double operator[](std::size_t i) const { return data_[i]; }
  const double* begin() const { return data_; }
  const double* end() const { return data_ + size_; }

  /// Dense copy (for callers that need to mutate or outlive the buffer).
  std::vector<double> ToVector() const {
    return std::vector<double>(data_, data_ + size_);
  }

 private:
  const double* data_ = nullptr;
  std::size_t size_ = 0;
  std::shared_ptr<const std::vector<double>> owned_;
};

/// Borrowing spans over each of `cols`; the vectors must outlive the spans.
inline std::vector<DoubleSpan> SpansOf(
    const std::vector<std::vector<double>>& cols) {
  std::vector<DoubleSpan> out;
  out.reserve(cols.size());
  for (const auto& c : cols) out.emplace_back(c);
  return out;
}

}  // namespace cdi

#endif  // CDI_COMMON_SPAN_H_
