#ifndef CDI_COMMON_TIMER_H_
#define CDI_COMMON_TIMER_H_

#include <chrono>
#include <map>
#include <string>

namespace cdi {

/// Simple monotonic stopwatch.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the watch.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction / last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accounts for latency of *simulated* external services (LLM queries,
/// knowledge-graph lookups, data-lake scans).
///
/// The paper's end-to-end runtimes (645 s FLIGHTS / 304 s COVID-19) are
/// dominated by remote GPT-3 and DBpedia calls. Our substitutes are
/// in-process, so to reproduce the runtime *shape* the pipeline charges each
/// simulated call its nominal real-world latency here, separately from the
/// actual wall clock.
class LatencyMeter {
 public:
  /// Charges one call of `service` at `seconds_per_call`.
  void Charge(const std::string& service, double seconds_per_call) {
    auto& e = entries_[service];
    e.calls += 1;
    e.seconds += seconds_per_call;
  }

  /// Total simulated seconds across all services.
  double TotalSeconds() const {
    double t = 0;
    for (const auto& [name, e] : entries_) t += e.seconds;
    return t;
  }

  /// Number of calls charged to `service` (0 if never charged).
  int64_t Calls(const std::string& service) const {
    auto it = entries_.find(service);
    return it == entries_.end() ? 0 : it->second.calls;
  }

  /// Simulated seconds charged to `service`.
  double Seconds(const std::string& service) const {
    auto it = entries_.find(service);
    return it == entries_.end() ? 0.0 : it->second.seconds;
  }

  struct Entry {
    int64_t calls = 0;
    double seconds = 0.0;
  };

  /// Per-service accounting, keyed by service name.
  const std::map<std::string, Entry>& entries() const { return entries_; }

  void Clear() { entries_.clear(); }

 private:
  std::map<std::string, Entry> entries_;
};

}  // namespace cdi

#endif  // CDI_COMMON_TIMER_H_
