#ifndef CDI_COMMON_HASH_H_
#define CDI_COMMON_HASH_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace cdi {

/// Incremental FNV-1a hasher for canonical fingerprints (cache keys,
/// options hashes). Deliberately simple and fully specified so fingerprints
/// are stable across platforms and process runs — unlike std::hash, whose
/// value is implementation-defined.
///
/// Composite keys must be *prefix-free*: variable-length fields (strings)
/// are length-prefixed by Mix(std::string_view), so ("ab","c") and
/// ("a","bc") hash differently.
class Fnv1a {
 public:
  Fnv1a() = default;
  /// Seeds the stream with a domain tag (e.g. "CdiQuery/v1") so keys from
  /// different key spaces never collide structurally.
  explicit Fnv1a(std::string_view domain_tag) { Mix(domain_tag); }

  Fnv1a& MixBytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      h_ ^= p[i];
      h_ *= 1099511628211ULL;
    }
    return *this;
  }

  Fnv1a& Mix(std::uint64_t v) { return MixBytes(&v, sizeof(v)); }
  Fnv1a& Mix(std::int64_t v) { return MixBytes(&v, sizeof(v)); }
  Fnv1a& Mix(std::int32_t v) { return Mix(static_cast<std::int64_t>(v)); }
  Fnv1a& Mix(bool v) { return Mix(static_cast<std::uint64_t>(v ? 1 : 0)); }

  /// Doubles are mixed by bit pattern (the cache key must distinguish any
  /// two option values that could change results bitwise).
  Fnv1a& Mix(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    return Mix(bits);
  }

  /// Length-prefixed, so adjacent strings cannot alias each other.
  Fnv1a& Mix(std::string_view s) {
    Mix(static_cast<std::uint64_t>(s.size()));
    return MixBytes(s.data(), s.size());
  }
  Fnv1a& Mix(const std::string& s) { return Mix(std::string_view(s)); }
  Fnv1a& Mix(const char* s) { return Mix(std::string_view(s)); }

  /// Finalized digest (splitmix-style avalanche over the running state).
  std::uint64_t Digest() const {
    std::uint64_t h = h_;
    h ^= h >> 30;
    h *= 0xBF58476D1CE4E5B9ULL;
    h ^= h >> 27;
    h *= 0x94D049BB133111EBULL;
    h ^= h >> 31;
    return h;
  }

 private:
  std::uint64_t h_ = 1469598103934665603ULL;  // FNV offset basis
};

}  // namespace cdi

#endif  // CDI_COMMON_HASH_H_
