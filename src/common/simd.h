#ifndef CDI_COMMON_SIMD_H_
#define CDI_COMMON_SIMD_H_

#include <cmath>
#include <cstddef>

/// Portable 4-lane double vector for the stats microkernels.
///
/// Backend selection is purely compile-time, per translation unit:
///   - AVX2 + FMA when the TU is compiled with -mavx2 -mfma
///   - NEON on aarch64 (baseline — FMA is architectural)
///   - scalar std::fma lanes otherwise
/// A TU can force the scalar backend by defining CDI_SIMD_FORCE_SCALAR
/// before including this header (the SIMD-vs-scalar identity tests and
/// the always-available fallback kernel do exactly that).
///
/// Determinism contract: every operation is lanewise IEEE-754, and
/// MulAdd is a *fused* multiply-add on every backend (std::fma is
/// correctly rounded by definition; vfmadd/ vfmaq are the hardware
/// equivalent). A computation expressed in V4 lanes therefore produces
/// bitwise-identical results on every backend and on the scalar
/// fallback — the property the Gram kernel's tests pin down.

#if !defined(CDI_SIMD_FORCE_SCALAR) && defined(__AVX2__) && defined(__FMA__)
#define CDI_SIMD_BACKEND_AVX2 1
#include <immintrin.h>
#elif !defined(CDI_SIMD_FORCE_SCALAR) && defined(__aarch64__)
#define CDI_SIMD_BACKEND_NEON 1
#include <arm_neon.h>
#else
#define CDI_SIMD_BACKEND_SCALAR 1
#endif

namespace cdi::simd {

constexpr std::size_t kLanes = 4;

/// Read-prefetch hint; never changes results (and never faults, even
/// past the end of an allocation). The Gram microkernels issue it a few
/// rows ahead so the packed panels stream from L2 without stalling the
/// FMA pipe.
inline void Prefetch(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, /*rw=*/0, /*locality=*/3);
#else
  (void)p;
#endif
}

#if defined(CDI_SIMD_BACKEND_AVX2)

struct V4 {
  __m256d v;
};

inline const char* BackendName() { return "avx2"; }
inline V4 Zero() { return {_mm256_setzero_pd()}; }
inline V4 Load(const double* p) { return {_mm256_loadu_pd(p)}; }
inline void Store(double* p, V4 a) { _mm256_storeu_pd(p, a.v); }
inline V4 Broadcast(double x) { return {_mm256_set1_pd(x)}; }
inline V4 Add(V4 a, V4 b) { return {_mm256_add_pd(a.v, b.v)}; }
inline V4 Mul(V4 a, V4 b) { return {_mm256_mul_pd(a.v, b.v)}; }
/// acc + a * b, fused (single rounding).
inline V4 MulAdd(V4 a, V4 b, V4 acc) {
  return {_mm256_fmadd_pd(a.v, b.v, acc.v)};
}
/// Lanewise IEEE division — correctly rounded, so bitwise identical to
/// the scalar `/` on the same operands.
inline V4 Div(V4 a, V4 b) { return {_mm256_div_pd(a.v, b.v)}; }
/// Lanewise IEEE square root — correctly rounded, matches std::sqrt.
inline V4 Sqrt(V4 a) { return {_mm256_sqrt_pd(a.v)}; }
/// std::clamp(x, -1.0, 1.0) per lane: x < -1 -> -1, 1 < x -> 1, else x
/// (NaN compares false twice and passes through, exactly like
/// std::clamp).
inline V4 ClampPm1(V4 a) {
  const __m256d lo = _mm256_set1_pd(-1.0);
  const __m256d hi = _mm256_set1_pd(1.0);
  __m256d v = a.v;
  v = _mm256_blendv_pd(v, lo, _mm256_cmp_pd(v, lo, _CMP_LT_OQ));
  v = _mm256_blendv_pd(v, hi, _mm256_cmp_pd(hi, v, _CMP_LT_OQ));
  return {v};
}
/// Lane i: guard[i] > 0 ? v[i] : +0.0 (false for NaN guards, like the
/// scalar `guard > 0` test).
inline V4 ZeroUnlessPos(V4 guard, V4 v) {
  const __m256d m = _mm256_cmp_pd(guard.v, _mm256_setzero_pd(), _CMP_GT_OQ);
  return {_mm256_and_pd(v.v, m)};
}

#elif defined(CDI_SIMD_BACKEND_NEON)

struct V4 {
  float64x2_t lo;
  float64x2_t hi;
};

inline const char* BackendName() { return "neon"; }
inline V4 Zero() { return {vdupq_n_f64(0.0), vdupq_n_f64(0.0)}; }
inline V4 Load(const double* p) { return {vld1q_f64(p), vld1q_f64(p + 2)}; }
inline void Store(double* p, V4 a) {
  vst1q_f64(p, a.lo);
  vst1q_f64(p + 2, a.hi);
}
inline V4 Broadcast(double x) { return {vdupq_n_f64(x), vdupq_n_f64(x)}; }
inline V4 Add(V4 a, V4 b) {
  return {vaddq_f64(a.lo, b.lo), vaddq_f64(a.hi, b.hi)};
}
inline V4 Mul(V4 a, V4 b) {
  return {vmulq_f64(a.lo, b.lo), vmulq_f64(a.hi, b.hi)};
}
/// acc + a * b, fused (single rounding).
inline V4 MulAdd(V4 a, V4 b, V4 acc) {
  return {vfmaq_f64(acc.lo, a.lo, b.lo), vfmaq_f64(acc.hi, a.hi, b.hi)};
}
/// Lanewise IEEE division — correctly rounded, so bitwise identical to
/// the scalar `/` on the same operands.
inline V4 Div(V4 a, V4 b) {
  return {vdivq_f64(a.lo, b.lo), vdivq_f64(a.hi, b.hi)};
}
/// Lanewise IEEE square root — correctly rounded, matches std::sqrt.
inline V4 Sqrt(V4 a) { return {vsqrtq_f64(a.lo), vsqrtq_f64(a.hi)}; }
/// std::clamp(x, -1.0, 1.0) per lane (NaN passes through).
inline V4 ClampPm1(V4 a) {
  const float64x2_t lo = vdupq_n_f64(-1.0);
  const float64x2_t hi = vdupq_n_f64(1.0);
  auto clamp2 = [&](float64x2_t v) {
    v = vbslq_f64(vcltq_f64(v, lo), lo, v);
    v = vbslq_f64(vcltq_f64(hi, v), hi, v);
    return v;
  };
  return {clamp2(a.lo), clamp2(a.hi)};
}
/// Lane i: guard[i] > 0 ? v[i] : +0.0.
inline V4 ZeroUnlessPos(V4 guard, V4 v) {
  const float64x2_t zero = vdupq_n_f64(0.0);
  return {vbslq_f64(vcgtq_f64(guard.lo, zero), v.lo, zero),
          vbslq_f64(vcgtq_f64(guard.hi, zero), v.hi, zero)};
}

#else  // scalar

struct V4 {
  double l[kLanes];
};

inline const char* BackendName() { return "scalar"; }
inline V4 Zero() { return {{0.0, 0.0, 0.0, 0.0}}; }
inline V4 Load(const double* p) { return {{p[0], p[1], p[2], p[3]}}; }
inline void Store(double* p, V4 a) {
  p[0] = a.l[0];
  p[1] = a.l[1];
  p[2] = a.l[2];
  p[3] = a.l[3];
}
inline V4 Broadcast(double x) { return {{x, x, x, x}}; }
inline V4 Add(V4 a, V4 b) {
  return {{a.l[0] + b.l[0], a.l[1] + b.l[1], a.l[2] + b.l[2],
           a.l[3] + b.l[3]}};
}
inline V4 Mul(V4 a, V4 b) {
  return {{a.l[0] * b.l[0], a.l[1] * b.l[1], a.l[2] * b.l[2],
           a.l[3] * b.l[3]}};
}
/// acc + a * b, fused (std::fma is correctly rounded, so this matches
/// the hardware FMA backends bit for bit).
inline V4 MulAdd(V4 a, V4 b, V4 acc) {
  return {{std::fma(a.l[0], b.l[0], acc.l[0]),
           std::fma(a.l[1], b.l[1], acc.l[1]),
           std::fma(a.l[2], b.l[2], acc.l[2]),
           std::fma(a.l[3], b.l[3], acc.l[3])}};
}
/// Lanewise IEEE division — the scalar `/` itself.
inline V4 Div(V4 a, V4 b) {
  return {{a.l[0] / b.l[0], a.l[1] / b.l[1], a.l[2] / b.l[2],
           a.l[3] / b.l[3]}};
}
/// Lanewise IEEE square root (std::sqrt is correctly rounded).
inline V4 Sqrt(V4 a) {
  return {{std::sqrt(a.l[0]), std::sqrt(a.l[1]), std::sqrt(a.l[2]),
           std::sqrt(a.l[3])}};
}
/// std::clamp(x, -1.0, 1.0) per lane (NaN passes through).
inline V4 ClampPm1(V4 a) {
  V4 r = a;
  for (double& x : r.l) x = x < -1.0 ? -1.0 : (1.0 < x ? 1.0 : x);
  return r;
}
/// Lane i: guard[i] > 0 ? v[i] : +0.0.
inline V4 ZeroUnlessPos(V4 guard, V4 v) {
  V4 r;
  for (std::size_t i = 0; i < kLanes; ++i) {
    r.l[i] = guard.l[i] > 0 ? v.l[i] : 0.0;
  }
  return r;
}

#endif

}  // namespace cdi::simd

#endif  // CDI_COMMON_SIMD_H_
