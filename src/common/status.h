#ifndef CDI_COMMON_STATUS_H_
#define CDI_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "common/logging.h"

namespace cdi {

/// Machine-readable category of a failure.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kUnimplemented,
  /// The request was refused for capacity reasons (e.g. a bounded
  /// admission queue is full). Retryable by the caller.
  kResourceExhausted,
  /// The request's deadline expired before the work completed.
  kDeadlineExceeded,
  /// The request was cancelled (explicitly, or by server shutdown).
  kCancelled,
  /// The operation lost a race with a concurrent mutation (e.g. a
  /// scenario was replaced while a row-batch delta was being prepared).
  /// Retryable against a fresh snapshot.
  kAborted,
};

/// Returns a stable human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// Result of an operation that can fail, in the RocksDB/Arrow idiom.
///
/// CDI does not throw exceptions across public API boundaries; fallible
/// operations return `Status` (or `Result<T>` when they also produce a
/// value). A default-constructed `Status` is OK.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type `T` or a non-OK `Status`.
///
/// Access the value only after checking `ok()`; violating that contract
/// aborts the process (it is a programming error, not a runtime condition).
template <typename T>
class Result {
 public:
  /// Implicit so functions can `return value;` / `return status;`.
  Result(T value) : data_(std::move(value)) {}
  Result(Status status) : data_(std::move(status)) {
    CDI_CHECK(!std::get<Status>(data_).ok())
        << "Result constructed from OK status carries no value";
  }

  bool ok() const { return std::holds_alternative<T>(data_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(data_);
  }

  const T& value() const& {
    CDI_CHECK(ok()) << "Result::value() on error: " << status().ToString();
    return std::get<T>(data_);
  }
  T& value() & {
    CDI_CHECK(ok()) << "Result::value() on error: " << status().ToString();
    return std::get<T>(data_);
  }
  T&& value() && {
    CDI_CHECK(ok()) << "Result::value() on error: " << status().ToString();
    return std::move(std::get<T>(data_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> data_;
};

/// Propagates a non-OK `Status` to the caller.
#define CDI_RETURN_IF_ERROR(expr)                \
  do {                                           \
    ::cdi::Status cdi_status_ = (expr);          \
    if (!cdi_status_.ok()) return cdi_status_;   \
  } while (0)

/// Evaluates `rexpr` (a Result<T>), propagating its error or binding `lhs`
/// to the value.
#define CDI_ASSIGN_OR_RETURN(lhs, rexpr)          \
  CDI_ASSIGN_OR_RETURN_IMPL(                      \
      CDI_STATUS_CONCAT(cdi_result_, __LINE__), lhs, rexpr)

#define CDI_ASSIGN_OR_RETURN_IMPL(var, lhs, rexpr) \
  auto var = (rexpr);                              \
  if (!var.ok()) return var.status();              \
  lhs = std::move(var).value()

#define CDI_STATUS_CONCAT(a, b) CDI_STATUS_CONCAT_IMPL(a, b)
#define CDI_STATUS_CONCAT_IMPL(a, b) a##b

}  // namespace cdi

#endif  // CDI_COMMON_STATUS_H_
