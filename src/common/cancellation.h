#ifndef CDI_COMMON_CANCELLATION_H_
#define CDI_COMMON_CANCELLATION_H_

#include <atomic>
#include <chrono>

#include "common/status.h"

namespace cdi {

/// Cooperative cancellation signal with an optional absolute deadline.
///
/// A CancelToken is created by the initiator of a unit of work (e.g. the
/// query server, one token per request) and passed by const pointer down
/// into long-running code, which polls `Check()` at natural stopping
/// points (stage boundaries). Cancellation is cooperative: nothing is
/// interrupted preemptively; the work notices the signal at its next
/// check and unwinds by returning the non-OK Status.
///
/// Thread-safety: `Cancel()` may be called from any thread while workers
/// poll `Check()`; the flag is a relaxed atomic (the only consequence of
/// a stale read is one extra stage of work). The deadline must be set
/// before the token is shared.
class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  CancelToken() = default;

  /// Sets an absolute deadline; after it passes, Check() returns
  /// kDeadlineExceeded. Call before sharing the token across threads.
  void set_deadline(Clock::time_point deadline) { deadline_ = deadline; }
  Clock::time_point deadline() const { return deadline_; }
  bool has_deadline() const { return deadline_ != Clock::time_point::max(); }

  /// Signals cancellation (idempotent).
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// OK while the work should keep running; kCancelled after Cancel(),
  /// kDeadlineExceeded once the deadline has passed. Null-token friendly
  /// call sites should use `CheckCancel(token)` below.
  Status Check() const {
    if (cancelled()) return Status::Cancelled("work was cancelled");
    if (has_deadline() && Clock::now() >= deadline_) {
      return Status::DeadlineExceeded("deadline expired");
    }
    return Status::OK();
  }

 private:
  std::atomic<bool> cancelled_{false};
  Clock::time_point deadline_ = Clock::time_point::max();
};

/// Check() through a possibly-null token (null = never cancelled).
inline Status CheckCancel(const CancelToken* token) {
  return token == nullptr ? Status::OK() : token->Check();
}

}  // namespace cdi

#endif  // CDI_COMMON_CANCELLATION_H_
