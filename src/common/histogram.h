#ifndef CDI_COMMON_HISTOGRAM_H_
#define CDI_COMMON_HISTOGRAM_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <vector>

namespace cdi {

/// Immutable point-in-time copy of a LatencyHistogram (plain integers;
/// safe to pass across threads, subtract, or serialize).
struct HistogramSnapshot {
  /// counts[i] = samples whose latency fell in bucket i (see
  /// LatencyHistogram for the bucket bounds).
  std::vector<std::uint64_t> counts;
  std::uint64_t total_count = 0;
  /// Sum of all recorded latencies, in nanoseconds.
  std::uint64_t total_ns = 0;

  /// Latency (seconds) at quantile `q` in [0, 1]: the upper bound of the
  /// first bucket whose cumulative count reaches q * total_count — a
  /// conservative (over-)estimate with bounded relative error given the
  /// 2x-spaced buckets. Returns 0 when empty.
  double Quantile(double q) const;

  double MeanSeconds() const {
    return total_count == 0 ? 0.0
                            : static_cast<double>(total_ns) * 1e-9 /
                                  static_cast<double>(total_count);
  }

  /// Elementwise difference `*this - earlier` (for interval metrics, e.g.
  /// "since warmup"). Snapshots must come from the same histogram.
  HistogramSnapshot Since(const HistogramSnapshot& earlier) const;
};

/// Thread-safe fixed-bucket latency histogram.
///
/// Buckets are powers of two of a microsecond: bucket i holds samples in
/// [2^(i-1) us, 2^i us) (bucket 0: anything below 1 us), with the last
/// bucket catching everything from ~2.3 hours up. Recording is one relaxed
/// atomic increment — no allocation, no lock — so it can sit on the
/// serving hot path; quantiles are computed from snapshots.
class LatencyHistogram {
 public:
  /// 44 buckets: 2^43 us ~ 2.4 hours before the overflow bucket.
  static constexpr std::size_t kNumBuckets = 44;

  LatencyHistogram() = default;

  void Record(double seconds);

  /// Bucket index a latency maps to (exposed for tests).
  static std::size_t BucketFor(double seconds);
  /// Upper latency bound (seconds) of bucket i (inclusive scan bound used
  /// by Quantile); the last bucket reports its lower bound.
  static double BucketUpperBoundSeconds(std::size_t i);

  HistogramSnapshot Snapshot() const;

 private:
  std::array<std::atomic<std::uint64_t>, kNumBuckets> counts_{};
  std::atomic<std::uint64_t> total_ns_{0};
};

}  // namespace cdi

#endif  // CDI_COMMON_HISTOGRAM_H_
