#include "serve/scenario_registry.h"

#include <algorithm>
#include <mutex>
#include <utility>

#include "common/hash.h"
#include "core/evaluation.h"
#include "table/column.h"

namespace cdi::serve {

std::size_t ScenarioBundle::NumericIndex(const std::string& attribute) const {
  for (std::size_t i = 0; i < numeric_attributes.size(); ++i) {
    if (numeric_attributes[i] == attribute) return i;
  }
  return kNotNumeric;
}

std::size_t EstimateBundleBytes(const ScenarioBundle& bundle) {
  std::size_t bytes = sizeof(ScenarioBundle) + bundle.name.size();
  if (bundle.input != nullptr) bytes += bundle.input->ByteSize();
  if (bundle.input_stats != nullptr) {
    const std::size_t p = bundle.input_stats->num_vars();
    const std::size_t n = bundle.input_stats->num_rows();
    // means + column sums + per-variable weights (p doubles each), the
    // p x p cross-product matrix, and the complete-row mask (byte/row).
    bytes += (3 * p + p * p) * sizeof(double) + n;
  }
  for (const auto& a : bundle.numeric_attributes) {
    bytes += a.size() + sizeof(std::string);
  }
  for (const auto& [from, to] : bundle.warm_start_edges) {
    bytes += from.size() + to.size() + 2 * sizeof(std::string);
  }
  return bytes;
}

ScenarioRegistry::ScenarioRegistry(RegistryOptions options)
    : options_([&options] {
        if (options.num_shards == 0) options.num_shards = 1;
        return options;
      }()),
      per_shard_budget_(
          options_.memory_budget_bytes == 0
              ? 0
              : std::max<std::size_t>(
                    1, options_.memory_budget_bytes / options_.num_shards)) {
  shards_.reserve(options_.num_shards);
  for (std::size_t i = 0; i < options_.num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

void ScenarioRegistry::SetEvictionListener(EvictionListener listener) {
  std::lock_guard<std::mutex> lock(listener_mu_);
  listener_ = std::move(listener);
}

ScenarioRegistry::Shard& ScenarioRegistry::ShardFor(
    const std::string& name) const {
  Fnv1a hasher("cdi.registry.shard");
  hasher.Mix(name);
  return *shards_[hasher.Digest() % shards_.size()];
}

Result<std::shared_ptr<const ScenarioBundle>> ScenarioRegistry::Register(
    const std::string& name,
    std::unique_ptr<const datagen::Scenario> scenario,
    std::optional<core::PipelineOptions> default_options) {
  return Insert(name, std::shared_ptr<const datagen::Scenario>(
                          std::move(scenario)),
                std::move(default_options), /*allow_replace=*/false);
}

Result<std::shared_ptr<const ScenarioBundle>> ScenarioRegistry::Register(
    const std::string& name,
    std::shared_ptr<const datagen::Scenario> scenario,
    std::optional<core::PipelineOptions> default_options) {
  return Insert(name, std::move(scenario), std::move(default_options),
                /*allow_replace=*/false);
}

Result<std::shared_ptr<const ScenarioBundle>> ScenarioRegistry::Replace(
    const std::string& name,
    std::unique_ptr<const datagen::Scenario> scenario,
    std::optional<core::PipelineOptions> default_options) {
  return Insert(name, std::shared_ptr<const datagen::Scenario>(
                          std::move(scenario)),
                std::move(default_options), /*allow_replace=*/true);
}

Result<std::shared_ptr<const ScenarioBundle>> ScenarioRegistry::Replace(
    const std::string& name,
    std::shared_ptr<const datagen::Scenario> scenario,
    std::optional<core::PipelineOptions> default_options) {
  return Insert(name, std::move(scenario), std::move(default_options),
                /*allow_replace=*/true);
}

Result<std::shared_ptr<const ScenarioBundle>> ScenarioRegistry::Insert(
    const std::string& name,
    std::shared_ptr<const datagen::Scenario> scenario,
    std::optional<core::PipelineOptions> default_options,
    bool allow_replace) {
  if (name.empty()) {
    return Status::InvalidArgument("scenario name must be non-empty");
  }
  if (scenario == nullptr) {
    return Status::InvalidArgument("scenario must be non-null");
  }

  // Build the bundle outside all locks; only the map publish is
  // serialized (and only on the owning shard).
  auto bundle = std::make_shared<ScenarioBundle>();
  bundle->name = name;
  bundle->scenario = std::move(scenario);
  // Fresh registrations serve the scenario's own table; the aliasing
  // constructor keeps the scenario alive through `input` without a copy.
  bundle->input = std::shared_ptr<const table::Table>(
      bundle->scenario, &bundle->scenario->input_table);
  bundle->default_options =
      default_options.has_value()
          ? *std::move(default_options)
          : core::DefaultEvaluationOptions(*bundle->scenario);
  bundle->default_options_fingerprint =
      core::PipelineOptionsFingerprint(bundle->default_options);

  // Shared per-dataset sufficient statistics over the input table's
  // numeric columns. Spans borrow the table's buffers; the bundle keeps
  // the scenario alive for as long as any query holds the snapshot.
  const table::Table& input = *bundle->input;
  stats::NumericDataset ds;
  for (std::size_t c = 0; c < input.num_cols(); ++c) {
    const table::Column& col = input.ColumnAt(c);
    if (col.type() == table::DataType::kString) continue;
    if (col.name() == bundle->scenario->spec.entity_column) continue;
    bundle->numeric_attributes.push_back(col.name());
    ds.columns.push_back(col.View());
  }
  if (!ds.columns.empty()) {
    auto stats = stats::SufficientStats::Compute(ds);
    if (!stats.ok()) {
      return Status(stats.status().code(),
                    "registering scenario '" + name +
                        "': " + stats.status().message());
    }
    bundle->input_stats = std::make_shared<const stats::SufficientStats>(
        *std::move(stats));
  }
  bundle->memory_bytes = EstimateBundleBytes(*bundle);

  std::shared_ptr<const ScenarioBundle> out;
  std::vector<std::pair<std::string, std::uint64_t>> evicted;
  {
    Shard& shard = ShardFor(name);
    std::lock_guard<std::mutex> lock(shard.mu);
    if (!allow_replace && shard.entries.count(name) != 0) {
      return Status::AlreadyExists("scenario '" + name +
                                   "' is already registered");
    }
    out = bundle;
    PublishLocked(shard, name, std::move(bundle), &evicted);
  }
  registered_.fetch_add(1, std::memory_order_relaxed);
  NotifyEvicted(evicted);
  return out;
}

Status ScenarioRegistry::Unregister(const std::string& name) {
  std::uint64_t eviction_epoch = 0;
  {
    Shard& shard = ShardFor(name);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.entries.find(name);
    if (it == shard.entries.end()) {
      auto reason = shard.evicted_reason.find(name);
      if (reason != shard.evicted_reason.end()) {
        return Status::NotFound("scenario '" + name + "' was " +
                                reason->second + "; nothing to unregister");
      }
      return Status::NotFound("scenario '" + name + "' is not registered");
    }
    shard.bytes -= it->second.bundle->memory_bytes;
    shard.lru.erase(it->second.lru_it);
    shard.entries.erase(it);
    shard.evicted_reason[name] = "unregistered";
    eviction_epoch = next_epoch_.fetch_add(1, std::memory_order_relaxed);
  }
  unregistered_.fetch_add(1, std::memory_order_relaxed);
  NotifyEvicted({{name, eviction_epoch}});
  return Status::OK();
}

Result<std::shared_ptr<const ScenarioBundle>> ScenarioRegistry::UpdateScenario(
    const std::string& name, const table::Table& row_batch,
    std::vector<std::pair<std::string, std::string>> warm_start_edges) {
  if (row_batch.num_rows() == 0) {
    return Status::InvalidArgument("row batch for scenario '" + name +
                                   "' has no rows");
  }
  Shard& shard = ShardFor(name);
  std::shared_ptr<const ScenarioBundle> old;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.entries.find(name);
    if (it == shard.entries.end()) {
      auto reason = shard.evicted_reason.find(name);
      if (reason != shard.evicted_reason.end()) {
        return Status::NotFound("scenario '" + name + "' was " +
                                reason->second +
                                "; re-register it before appending rows");
      }
      return Status::NotFound("scenario '" + name + "' is not registered");
    }
    old = it->second.bundle;
  }

  // Everything expensive happens outside the lock, against the snapshot.
  // Grow a private copy of the live table: the previous epoch's buffers —
  // and every span the old bundle's statistics borrowed from them — stay
  // untouched for in-flight queries holding the old snapshot.
  auto grown = std::make_shared<table::Table>(*old->input);
  if (Status s = grown->AppendRows(row_batch); !s.ok()) {
    return Status(s.code(),
                  "updating scenario '" + name + "': " + s.message());
  }

  auto bundle = std::make_shared<ScenarioBundle>();
  bundle->name = name;
  bundle->scenario = old->scenario;
  bundle->input = grown;
  bundle->default_options = old->default_options;
  bundle->default_options_fingerprint = old->default_options_fingerprint;
  bundle->numeric_attributes = old->numeric_attributes;
  bundle->warm_start_edges = std::move(warm_start_edges);
  bundle->rows_appended = row_batch.num_rows();

  if (old->input_stats != nullptr) {
    // Delta-refresh: continue the previous epoch's accumulators over the
    // appended rows instead of recomputing from scratch. The copied stats
    // adopt full-length spans into the grown table, so the new bundle is
    // self-contained.
    auto stats =
        std::make_shared<stats::SufficientStats>(*old->input_stats);
    std::vector<DoubleSpan> views;
    views.reserve(bundle->numeric_attributes.size());
    for (const auto& attr : bundle->numeric_attributes) {
      auto col = grown->GetColumn(attr);
      if (!col.ok()) return col.status();  // unreachable after AppendRows
      views.push_back((*col)->View());
    }
    if (Status s = stats->AppendRows(views, row_batch.num_rows()); !s.ok()) {
      return Status(s.code(),
                    "updating scenario '" + name + "': " + s.message());
    }
    bundle->input_stats = std::move(stats);
  }
  bundle->memory_bytes = EstimateBundleBytes(*bundle);

  std::shared_ptr<const ScenarioBundle> out;
  std::vector<std::pair<std::string, std::uint64_t>> evicted;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.entries.find(name);
    if (it == shard.entries.end()) {
      // Evicted or unregistered while the delta was being prepared.
      auto reason = shard.evicted_reason.find(name);
      const std::string why = reason != shard.evicted_reason.end()
                                  ? reason->second
                                  : "unregistered";
      return Status::NotFound("scenario '" + name + "' was " + why +
                              " while the row batch was being applied; "
                              "re-register it first");
    }
    if (it->second.bundle != old) {
      // Lost a race with Replace/another update: the delta was computed
      // against a superseded table, so publishing it would drop rows.
      return Status::Aborted("scenario '" + name +
                             "' changed while the row batch was being "
                             "applied; retry against the new snapshot");
    }
    out = bundle;
    PublishLocked(shard, name, std::move(bundle), &evicted);
  }
  NotifyEvicted(evicted);
  return out;
}

void ScenarioRegistry::PublishLocked(
    Shard& shard, const std::string& name,
    std::shared_ptr<ScenarioBundle> bundle,
    std::vector<std::pair<std::string, std::uint64_t>>* evicted) {
  // The epoch is stamped at publish time so it is monotone with respect
  // to every other publication *and* eviction across all shards.
  bundle->epoch = next_epoch_.fetch_add(1, std::memory_order_relaxed);
  auto it = shard.entries.find(name);
  if (it != shard.entries.end()) {
    shard.bytes -= it->second.bundle->memory_bytes;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_it);
    it->second.bundle = bundle;
  } else {
    shard.lru.push_front(name);
    shard.entries[name] = Shard::Entry{bundle, shard.lru.begin()};
  }
  shard.bytes += bundle->memory_bytes;
  shard.evicted_reason.erase(name);
  EnforceBudgetLocked(shard, name, evicted);
}

void ScenarioRegistry::EnforceBudgetLocked(
    Shard& shard, const std::string& keep,
    std::vector<std::pair<std::string, std::uint64_t>>* evicted) {
  if (per_shard_budget_ == 0) return;
  while (shard.bytes > per_shard_budget_ && shard.lru.size() > 1) {
    const std::string victim = shard.lru.back();
    if (victim == keep) break;  // never evict the bundle just published
    auto it = shard.entries.find(victim);
    shard.bytes -= it->second.bundle->memory_bytes;
    shard.lru.pop_back();
    shard.entries.erase(it);
    shard.evicted_reason[victim] = "evicted by the memory budget";
    evicted->emplace_back(
        victim, next_epoch_.fetch_add(1, std::memory_order_relaxed));
    evicted_.fetch_add(1, std::memory_order_relaxed);
  }
}

void ScenarioRegistry::NotifyEvicted(
    const std::vector<std::pair<std::string, std::uint64_t>>& evicted) {
  if (evicted.empty()) return;
  std::lock_guard<std::mutex> lock(listener_mu_);
  if (!listener_) return;
  for (const auto& [name, epoch] : evicted) listener_(name, epoch);
}

Result<std::shared_ptr<const ScenarioBundle>> ScenarioRegistry::Snapshot(
    const std::string& name) const {
  Shard& shard = ShardFor(name);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.entries.find(name);
  if (it == shard.entries.end()) {
    auto reason = shard.evicted_reason.find(name);
    if (reason != shard.evicted_reason.end()) {
      return Status::NotFound("scenario '" + name + "' was " +
                              reason->second + "; re-register it to serve "
                              "queries against it again");
    }
    return Status::NotFound("scenario '" + name + "' is not registered");
  }
  if (per_shard_budget_ != 0) {
    // LRU freshen; skipped without a budget so unbudgeted lookups stay a
    // pure map find.
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_it);
  }
  return it->second.bundle;
}

std::vector<std::string> ScenarioRegistry::Names() const {
  std::vector<std::string> names;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (const auto& [name, entry] : shard->entries) names.push_back(name);
  }
  std::sort(names.begin(), names.end());
  return names;
}

std::size_t ScenarioRegistry::size() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    n += shard->entries.size();
  }
  return n;
}

RegistryStats ScenarioRegistry::Stats() const {
  RegistryStats stats;
  stats.scenarios_registered = registered_.load(std::memory_order_relaxed);
  stats.scenarios_evicted = evicted_.load(std::memory_order_relaxed);
  stats.scenarios_unregistered =
      unregistered_.load(std::memory_order_relaxed);
  stats.shard_bytes.reserve(shards_.size());
  stats.shard_scenarios.reserve(shards_.size());
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    stats.shard_bytes.push_back(shard->bytes);
    stats.shard_scenarios.push_back(shard->entries.size());
    stats.registry_bytes += shard->bytes;
    stats.scenarios += shard->entries.size();
  }
  return stats;
}

}  // namespace cdi::serve
