#include "serve/scenario_registry.h"

#include <mutex>
#include <utility>

#include "core/evaluation.h"
#include "table/column.h"

namespace cdi::serve {

std::size_t ScenarioBundle::NumericIndex(const std::string& attribute) const {
  for (std::size_t i = 0; i < numeric_attributes.size(); ++i) {
    if (numeric_attributes[i] == attribute) return i;
  }
  return kNotNumeric;
}

Result<std::shared_ptr<const ScenarioBundle>> ScenarioRegistry::Register(
    const std::string& name,
    std::unique_ptr<const datagen::Scenario> scenario,
    std::optional<core::PipelineOptions> default_options) {
  return Insert(name, std::move(scenario), std::move(default_options),
                /*allow_replace=*/false);
}

Result<std::shared_ptr<const ScenarioBundle>> ScenarioRegistry::Replace(
    const std::string& name,
    std::unique_ptr<const datagen::Scenario> scenario,
    std::optional<core::PipelineOptions> default_options) {
  return Insert(name, std::move(scenario), std::move(default_options),
                /*allow_replace=*/true);
}

Result<std::shared_ptr<const ScenarioBundle>> ScenarioRegistry::Insert(
    const std::string& name,
    std::unique_ptr<const datagen::Scenario> scenario,
    std::optional<core::PipelineOptions> default_options,
    bool allow_replace) {
  if (name.empty()) {
    return Status::InvalidArgument("scenario name must be non-empty");
  }
  if (scenario == nullptr) {
    return Status::InvalidArgument("scenario must be non-null");
  }

  // Build the bundle outside the lock; only the map insert is serialized.
  auto bundle = std::make_shared<ScenarioBundle>();
  bundle->name = name;
  bundle->scenario = std::shared_ptr<const datagen::Scenario>(
      std::move(scenario));
  // Fresh registrations serve the scenario's own table; the aliasing
  // constructor keeps the scenario alive through `input` without a copy.
  bundle->input = std::shared_ptr<const table::Table>(
      bundle->scenario, &bundle->scenario->input_table);
  bundle->default_options =
      default_options.has_value()
          ? *std::move(default_options)
          : core::DefaultEvaluationOptions(*bundle->scenario);
  bundle->default_options_fingerprint =
      core::PipelineOptionsFingerprint(bundle->default_options);

  // Shared per-dataset sufficient statistics over the input table's
  // numeric columns. Spans borrow the table's buffers; the bundle keeps
  // the scenario alive for as long as any query holds the snapshot.
  const table::Table& input = *bundle->input;
  stats::NumericDataset ds;
  for (std::size_t c = 0; c < input.num_cols(); ++c) {
    const table::Column& col = input.ColumnAt(c);
    if (col.type() == table::DataType::kString) continue;
    if (col.name() == bundle->scenario->spec.entity_column) continue;
    bundle->numeric_attributes.push_back(col.name());
    ds.columns.push_back(col.View());
  }
  if (!ds.columns.empty()) {
    auto stats = stats::SufficientStats::Compute(ds);
    if (!stats.ok()) {
      return Status(stats.status().code(),
                    "registering scenario '" + name +
                        "': " + stats.status().message());
    }
    bundle->input_stats = std::make_shared<const stats::SufficientStats>(
        *std::move(stats));
  }

  std::lock_guard<std::mutex> lock(mu_);
  auto it = bundles_.find(name);
  if (it != bundles_.end() && !allow_replace) {
    return Status::AlreadyExists("scenario '" + name +
                                 "' is already registered");
  }
  bundle->epoch = next_epoch_++;
  std::shared_ptr<const ScenarioBundle> out = std::move(bundle);
  bundles_[name] = out;
  return out;
}

Result<std::shared_ptr<const ScenarioBundle>> ScenarioRegistry::UpdateScenario(
    const std::string& name, const table::Table& row_batch,
    std::vector<std::pair<std::string, std::string>> warm_start_edges) {
  if (row_batch.num_rows() == 0) {
    return Status::InvalidArgument("row batch for scenario '" + name +
                                   "' has no rows");
  }
  std::shared_ptr<const ScenarioBundle> old;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = bundles_.find(name);
    if (it == bundles_.end()) {
      return Status::NotFound("scenario '" + name + "' is not registered");
    }
    old = it->second;
  }

  // Everything expensive happens outside the lock, against the snapshot.
  // Grow a private copy of the live table: the previous epoch's buffers —
  // and every span the old bundle's statistics borrowed from them — stay
  // untouched for in-flight queries holding the old snapshot.
  auto grown = std::make_shared<table::Table>(*old->input);
  if (Status s = grown->AppendRows(row_batch); !s.ok()) {
    return Status(s.code(),
                  "updating scenario '" + name + "': " + s.message());
  }

  auto bundle = std::make_shared<ScenarioBundle>();
  bundle->name = name;
  bundle->scenario = old->scenario;
  bundle->input = grown;
  bundle->default_options = old->default_options;
  bundle->default_options_fingerprint = old->default_options_fingerprint;
  bundle->numeric_attributes = old->numeric_attributes;
  bundle->warm_start_edges = std::move(warm_start_edges);
  bundle->rows_appended = row_batch.num_rows();

  if (old->input_stats != nullptr) {
    // Delta-refresh: continue the previous epoch's accumulators over the
    // appended rows instead of recomputing from scratch. The copied stats
    // adopt full-length spans into the grown table, so the new bundle is
    // self-contained.
    auto stats =
        std::make_shared<stats::SufficientStats>(*old->input_stats);
    std::vector<DoubleSpan> views;
    views.reserve(bundle->numeric_attributes.size());
    for (const auto& attr : bundle->numeric_attributes) {
      auto col = grown->GetColumn(attr);
      if (!col.ok()) return col.status();  // unreachable after AppendRows
      views.push_back((*col)->View());
    }
    if (Status s = stats->AppendRows(views, row_batch.num_rows()); !s.ok()) {
      return Status(s.code(),
                    "updating scenario '" + name + "': " + s.message());
    }
    bundle->input_stats = std::move(stats);
  }

  std::lock_guard<std::mutex> lock(mu_);
  auto it = bundles_.find(name);
  if (it == bundles_.end() || it->second != old) {
    // Lost a race with Replace/another update: the delta was computed
    // against a superseded table, so publishing it would drop rows.
    return Status::Aborted("scenario '" + name +
                           "' changed while the row batch was being "
                           "applied; retry against the new snapshot");
  }
  bundle->epoch = next_epoch_++;
  std::shared_ptr<const ScenarioBundle> out = std::move(bundle);
  bundles_[name] = out;
  return out;
}

Result<std::shared_ptr<const ScenarioBundle>> ScenarioRegistry::Snapshot(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = bundles_.find(name);
  if (it == bundles_.end()) {
    return Status::NotFound("scenario '" + name + "' is not registered");
  }
  return it->second;
}

std::vector<std::string> ScenarioRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(bundles_.size());
  for (const auto& [name, bundle] : bundles_) names.push_back(name);
  return names;
}

std::size_t ScenarioRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bundles_.size();
}

}  // namespace cdi::serve
