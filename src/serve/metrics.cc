#include "serve/metrics.h"

#include <cstdio>

namespace cdi::serve {

MetricsSnapshot MetricsSnapshot::Since(const MetricsSnapshot& earlier) const {
  MetricsSnapshot out;
  out.submitted = submitted - earlier.submitted;
  out.served = served - earlier.served;
  out.rejected = rejected - earlier.rejected;
  out.failed = failed - earlier.failed;
  out.deadline_exceeded = deadline_exceeded - earlier.deadline_exceeded;
  out.cancelled = cancelled - earlier.cancelled;
  out.cache_hits = cache_hits - earlier.cache_hits;
  out.coalesced = coalesced - earlier.coalesced;
  out.executions = executions - earlier.executions;
  out.plan_builds = plan_builds - earlier.plan_builds;
  out.summary_builds = summary_builds - earlier.summary_builds;
  out.evicted_stale = evicted_stale - earlier.evicted_stale;
  out.epoch_rollovers = epoch_rollovers - earlier.epoch_rollovers;
  out.rows_appended = rows_appended - earlier.rows_appended;
  out.warm_start_hits = warm_start_hits - earlier.warm_start_hits;
  out.scenarios_registered = scenarios_registered - earlier.scenarios_registered;
  out.scenarios_evicted = scenarios_evicted - earlier.scenarios_evicted;
  out.scenarios_unregistered =
      scenarios_unregistered - earlier.scenarios_unregistered;
  out.queue_depth_high_water = queue_depth_high_water;
  out.result_cache_entries = result_cache_entries;
  out.plan_cache_entries = plan_cache_entries;
  out.summary_cache_entries = summary_cache_entries;
  out.registry_bytes = registry_bytes;
  out.registry_scenarios = registry_scenarios;
  out.shard_bytes = shard_bytes;
  out.latency = latency.Since(earlier.latency);
  out.update_latency = update_latency.Since(earlier.update_latency);
  out.summary_latency = summary_latency.Since(earlier.summary_latency);
  return out;
}

std::string MetricsSnapshot::ToLine() const {
  char buf[2048];
  std::snprintf(
      buf, sizeof(buf),
      "submitted=%llu served=%llu rejected=%llu failed=%llu "
      "deadline_exceeded=%llu cancelled=%llu cache_hits=%llu coalesced=%llu "
      "executions=%llu plan_builds=%llu summary_builds=%llu "
      "evicted_stale=%llu "
      "epoch_rollovers=%llu rows_appended=%llu warm_start_hits=%llu "
      "scenarios_registered=%llu scenarios_evicted=%llu "
      "scenarios_unregistered=%llu registry_bytes=%llu "
      "registry_scenarios=%llu "
      "result_cache=%llu plan_cache=%llu summary_cache=%llu queue_hwm=%llu "
      "hit_rate=%.4f "
      "p50_us=%.0f p95_us=%.0f p99_us=%.0f mean_us=%.0f "
      "update_p50_us=%.0f update_p99_us=%.0f summary_p50_us=%.0f "
      "summary_p99_us=%.0f",
      static_cast<unsigned long long>(submitted),
      static_cast<unsigned long long>(served),
      static_cast<unsigned long long>(rejected),
      static_cast<unsigned long long>(failed),
      static_cast<unsigned long long>(deadline_exceeded),
      static_cast<unsigned long long>(cancelled),
      static_cast<unsigned long long>(cache_hits),
      static_cast<unsigned long long>(coalesced),
      static_cast<unsigned long long>(executions),
      static_cast<unsigned long long>(plan_builds),
      static_cast<unsigned long long>(summary_builds),
      static_cast<unsigned long long>(evicted_stale),
      static_cast<unsigned long long>(epoch_rollovers),
      static_cast<unsigned long long>(rows_appended),
      static_cast<unsigned long long>(warm_start_hits),
      static_cast<unsigned long long>(scenarios_registered),
      static_cast<unsigned long long>(scenarios_evicted),
      static_cast<unsigned long long>(scenarios_unregistered),
      static_cast<unsigned long long>(registry_bytes),
      static_cast<unsigned long long>(registry_scenarios),
      static_cast<unsigned long long>(result_cache_entries),
      static_cast<unsigned long long>(plan_cache_entries),
      static_cast<unsigned long long>(summary_cache_entries),
      static_cast<unsigned long long>(queue_depth_high_water),
      CacheHitRate(), latency.Quantile(0.50) * 1e6,
      latency.Quantile(0.95) * 1e6, latency.Quantile(0.99) * 1e6,
      latency.MeanSeconds() * 1e6, update_latency.Quantile(0.50) * 1e6,
      update_latency.Quantile(0.99) * 1e6,
      summary_latency.Quantile(0.50) * 1e6,
      summary_latency.Quantile(0.99) * 1e6);
  std::string line = buf;
  // Per-shard byte gauges, appended only when sharding is in play so the
  // single-registry line format stays stable.
  for (std::size_t i = 0; i < shard_bytes.size(); ++i) {
    std::snprintf(buf, sizeof(buf), " shard%zu_bytes=%llu", i,
                  static_cast<unsigned long long>(shard_bytes[i]));
    line += buf;
  }
  return line;
}

void ServerMetrics::ObserveQueueDepth(std::uint64_t depth) {
  std::uint64_t cur =
      queue_depth_high_water.load(std::memory_order_relaxed);
  while (cur < depth && !queue_depth_high_water.compare_exchange_weak(
                            cur, depth, std::memory_order_relaxed)) {
  }
}

MetricsSnapshot ServerMetrics::Snapshot() const {
  MetricsSnapshot snap;
  snap.submitted = submitted.load(std::memory_order_relaxed);
  snap.served = served.load(std::memory_order_relaxed);
  snap.rejected = rejected.load(std::memory_order_relaxed);
  snap.failed = failed.load(std::memory_order_relaxed);
  snap.deadline_exceeded = deadline_exceeded.load(std::memory_order_relaxed);
  snap.cancelled = cancelled.load(std::memory_order_relaxed);
  snap.cache_hits = cache_hits.load(std::memory_order_relaxed);
  snap.coalesced = coalesced.load(std::memory_order_relaxed);
  snap.executions = executions.load(std::memory_order_relaxed);
  snap.plan_builds = plan_builds.load(std::memory_order_relaxed);
  snap.summary_builds = summary_builds.load(std::memory_order_relaxed);
  snap.evicted_stale = evicted_stale.load(std::memory_order_relaxed);
  snap.epoch_rollovers = epoch_rollovers.load(std::memory_order_relaxed);
  snap.rows_appended = rows_appended.load(std::memory_order_relaxed);
  snap.warm_start_hits = warm_start_hits.load(std::memory_order_relaxed);
  snap.queue_depth_high_water =
      queue_depth_high_water.load(std::memory_order_relaxed);
  snap.latency = latency.Snapshot();
  snap.update_latency = update_latency.Snapshot();
  snap.summary_latency = summary_latency.Snapshot();
  return snap;
}

}  // namespace cdi::serve
