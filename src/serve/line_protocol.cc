#include "serve/line_protocol.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <vector>

#include "common/hash.h"
#include "common/string_util.h"

namespace cdi::serve {

const char* ResponseSourceName(ResponseSource source) {
  switch (source) {
    case ResponseSource::kError:
      return "error";
    case ResponseSource::kExecuted:
      return "executed";
    case ResponseSource::kCacheHit:
      return "hit";
    case ResponseSource::kCoalesced:
      return "coalesced";
  }
  return "?";
}

namespace {

void MixEffect(Fnv1a& h, const core::EffectEstimate& e) {
  h.Mix(e.effect).Mix(e.abs_effect).Mix(e.std_error).Mix(e.p_value);
  h.Mix(static_cast<std::uint64_t>(e.n_used));
  h.Mix(static_cast<std::uint64_t>(e.adjusted_for.size()));
  for (const auto& a : e.adjusted_for) h.Mix(a);
}

void MixEdges(Fnv1a& h,
              const std::vector<std::pair<std::string, std::string>>& edges) {
  h.Mix(static_cast<std::uint64_t>(edges.size()));
  for (const auto& [from, to] : edges) h.Mix(from).Mix(to);
}

}  // namespace

std::uint64_t ResultFingerprint(const core::PipelineResult& result) {
  Fnv1a h("cdi::serve::ResultFingerprint/v1");

  const core::ExtractionResult& ex = result.extraction;
  h.Mix(static_cast<std::uint64_t>(ex.augmented.num_rows()))
      .Mix(static_cast<std::uint64_t>(ex.augmented.num_cols()))
      .Mix(static_cast<std::uint64_t>(ex.kg_columns_found))
      .Mix(static_cast<std::uint64_t>(ex.lake_columns_found))
      .Mix(static_cast<std::uint64_t>(ex.attributes.size()));
  for (const auto& a : ex.attributes) {
    h.Mix(a.name)
        .Mix(a.source)
        .Mix(a.corr_with_exposure)
        .Mix(a.corr_with_outcome)
        .Mix(a.kept)
        .Mix(a.drop_reason);
  }

  const core::OrganizerResult& org = result.organization;
  h.Mix(static_cast<std::uint64_t>(org.organized.num_rows()))
      .Mix(static_cast<std::uint64_t>(org.organized.num_cols()));
  for (const auto& name : org.organized.ColumnNames()) h.Mix(name);
  h.Mix(static_cast<std::uint64_t>(org.dropped_fd_attributes.size()));
  for (const auto& d : org.dropped_fd_attributes) h.Mix(d);
  h.Mix(static_cast<std::uint64_t>(org.winsorized_cells.size()));
  for (const auto& [attr, cells] : org.winsorized_cells) {
    h.Mix(attr).Mix(static_cast<std::uint64_t>(cells));
  }
  h.Mix(static_cast<std::uint64_t>(org.missingness.size()));
  for (const auto& m : org.missingness) {
    h.Mix(m.attribute)
        .Mix(m.missing_fraction)
        .Mix(m.p_vs_exposure)
        .Mix(m.p_vs_outcome)
        .Mix(m.selection_bias_risk);
  }
  h.Mix(static_cast<std::uint64_t>(org.row_weights.size()));
  for (double w : org.row_weights) h.Mix(w);
  h.Mix(static_cast<std::uint64_t>(org.duplicate_rows_removed));

  const core::CdagBuildResult& build = result.build;
  h.Mix(static_cast<std::uint64_t>(build.cdag.num_clusters()));
  MixEdges(h, build.claims);
  MixEdges(h, build.definite);
  MixEdges(h, build.pruned_edges);
  MixEdges(h, build.cycle_repaired_edges);
  h.Mix(static_cast<std::uint64_t>(build.cluster_topics.size()));
  for (const auto& t : build.cluster_topics) h.Mix(t);
  h.Mix(static_cast<std::uint64_t>(build.oracle_queries))
      .Mix(static_cast<std::uint64_t>(build.ci_tests));

  MixEffect(h, result.direct_effect);
  MixEffect(h, result.total_effect);
  h.Mix(result.direct_effect_sensitivity.risk_ratio)
      .Mix(result.direct_effect_sensitivity.e_value)
      .Mix(result.direct_effect_sensitivity.bias_bound_at_2x);

  // Simulated external latency is deterministic (unlike wall clock).
  h.Mix(static_cast<std::uint64_t>(result.external.entries().size()));
  for (const auto& [service, entry] : result.external.entries()) {
    h.Mix(service)
        .Mix(static_cast<std::int64_t>(entry.calls))
        .Mix(entry.seconds);
  }

  return h.Digest();
}

std::uint64_t PairAnswerFingerprint(const core::PairAnswer& answer) {
  Fnv1a h("cdi::serve::PairAnswerFingerprint/v1");
  h.Mix(answer.exposure)
      .Mix(answer.outcome)
      .Mix(answer.exposure_cluster)
      .Mix(answer.outcome_cluster);
  h.Mix(static_cast<std::uint64_t>(answer.mediator_clusters.size()));
  for (const auto& c : answer.mediator_clusters) h.Mix(c);
  h.Mix(static_cast<std::uint64_t>(answer.confounder_clusters.size()));
  for (const auto& c : answer.confounder_clusters) h.Mix(c);
  MixEffect(h, answer.direct_effect);
  MixEffect(h, answer.total_effect);
  return h.Digest();
}

std::string FormatPairAnswerPayload(const core::PairAnswer& answer) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "direct=%.17g direct_p=%.17g total=%.17g total_p=%.17g "
      "mediators=%zu confounders=%zu adj_direct=%zu adj_total=%zu n=%zu "
      "fingerprint=%016llx",
      answer.direct_effect.effect, answer.direct_effect.p_value,
      answer.total_effect.effect, answer.total_effect.p_value,
      answer.mediator_clusters.size(), answer.confounder_clusters.size(),
      answer.direct_effect.adjusted_for.size(),
      answer.total_effect.adjusted_for.size(), answer.direct_effect.n_used,
      static_cast<unsigned long long>(PairAnswerFingerprint(answer)));
  return buf;
}

std::uint64_t SummaryFingerprint(const SummaryArtifact& artifact) {
  Fnv1a h("cdi::serve::SummaryFingerprint/v1");
  h.Mix(artifact.summary != nullptr ? artifact.summary->Fingerprint()
                                    : std::uint64_t{0});
  h.Mix(artifact.dot).Mix(artifact.json);
  return h.Digest();
}

namespace {

/// Escapes a rendering for the one-line protocol: backslashes, quotes,
/// newlines, CRs and tabs become two-character escapes, so the payload
/// is a single quoted token that round-trips losslessly.
std::string EscapePayload(const std::string& payload) {
  std::string out;
  out.reserve(payload.size() + 16);
  for (char c : payload) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

}  // namespace

std::string FormatSummaryPayload(const SummaryArtifact& artifact,
                                 const std::string& format) {
  const summarize::SummaryDag& summary = *artifact.summary;
  char buf[320];
  std::snprintf(
      buf, sizeof(buf),
      "nodes=%zu edges=%zu original_nodes=%zu original_edges=%zu "
      "compression=%.17g pairs_scored=%zu pairs_changed=%zu "
      "fingerprint=%016llx payload=\"",
      summary.num_nodes(), summary.num_edges(), summary.original_nodes(),
      summary.original_edges(), summary.CompressionRatio(),
      summary.pairs_scored(), summary.pairs_changed(),
      static_cast<unsigned long long>(SummaryFingerprint(artifact)));
  std::string out = buf;
  out += EscapePayload(format == "json" ? artifact.json : artifact.dot);
  out.push_back('"');
  return out;
}

std::string FormatResultPayload(const core::PipelineResult& result) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "direct=%.17g direct_p=%.17g total=%.17g total_p=%.17g "
      "e_value=%.17g clusters=%zu edges=%zu n=%zu fingerprint=%016llx",
      result.direct_effect.effect, result.direct_effect.p_value,
      result.total_effect.effect, result.total_effect.p_value,
      result.direct_effect_sensitivity.e_value,
      result.build.cdag.num_clusters(), result.build.claims.size(),
      result.direct_effect.n_used,
      static_cast<unsigned long long>(ResultFingerprint(result)));
  return buf;
}

namespace {

/// Error messages are folded onto one line and double quotes are
/// replaced so the response always parses as a single line of
/// space-separated key=value fields plus one quoted message.
std::string SanitizeMessage(std::string msg) {
  for (char& c : msg) {
    if (c == '\n' || c == '\r') c = ' ';
    if (c == '"') c = '\'';
  }
  return msg;
}

}  // namespace

std::string FormatResponseLine(const CdiQuery& query,
                               const QueryResponse& response) {
  std::ostringstream out;
  const bool summarize = query.mode == QueryMode::kSummarize;
  if (response.status.ok()) {
    out << "ok scenario=" << query.scenario;
    if (summarize) {
      out << " mode=summarize k=" << query.summarize_k
          << " format=" << query.summarize_format;
    } else {
      out << " T=" << query.exposure << " O=" << query.outcome;
      if (response.planned != nullptr) out << " mode=planned";
    }
    out << " source=" << ResponseSourceName(response.source) << " ";
    if (response.summary != nullptr) {
      out << FormatSummaryPayload(*response.summary, query.summarize_format);
    } else if (response.planned != nullptr) {
      out << FormatPairAnswerPayload(*response.planned);
    } else {
      out << FormatResultPayload(*response.result);
    }
    char tail[96];
    std::snprintf(tail, sizeof(tail), " latency_us=%.1f",
                  response.latency_seconds * 1e6);
    out << tail;
  } else {
    out << "error scenario=" << query.scenario;
    if (summarize) {
      out << " mode=summarize k=" << query.summarize_k
          << " format=" << query.summarize_format;
    } else {
      out << " T=" << query.exposure << " O=" << query.outcome;
    }
    out << " code=" << StatusCodeName(response.status.code())
        << " message=\"" << SanitizeMessage(response.status.message())
        << "\"";
  }
  return out.str();
}

Result<ServerCommand> ParseCommandLine(const std::string& line) {
  const std::string trimmed = Trim(line);
  if (trimmed.empty() || trimmed[0] == '#') {
    return Status::InvalidArgument("");
  }
  std::istringstream in(trimmed);
  std::string verb;
  in >> verb;
  ServerCommand cmd;
  if (verb == "metrics") {
    cmd.kind = ServerCommand::Kind::kMetrics;
    return cmd;
  }
  if (verb == "scenarios") {
    cmd.kind = ServerCommand::Kind::kScenarios;
    return cmd;
  }
  if (verb == "quit" || verb == "exit") {
    cmd.kind = ServerCommand::Kind::kQuit;
    return cmd;
  }
  if (verb == "update") {
    cmd.kind = ServerCommand::Kind::kUpdate;
    in >> cmd.update_scenario;
    std::string arg;
    while (in >> arg) {
      if (arg.rfind("rows=", 0) == 0) {
        cmd.update_rows_path = arg.substr(5);
      } else {
        return Status::InvalidArgument("unknown update argument '" + arg +
                                       "'");
      }
    }
    if (cmd.update_scenario.empty() || cmd.update_rows_path.empty()) {
      return Status::InvalidArgument(
          "usage: update <scenario> rows=<csv-path>");
    }
    return cmd;
  }
  if (verb == "unregister") {
    cmd.kind = ServerCommand::Kind::kUnregister;
    in >> cmd.target;
    std::string extra;
    if (cmd.target.empty() || (in >> extra)) {
      return Status::InvalidArgument("usage: unregister <scenario>");
    }
    return cmd;
  }
  if (verb == "register") {
    cmd.kind = ServerCommand::Kind::kRegister;
    in >> cmd.target;
    std::string arg;
    while (in >> arg) {
      if (arg.rfind("input=", 0) == 0) {
        cmd.register_input = arg.substr(6);
      } else if (arg.rfind("entity=", 0) == 0) {
        cmd.register_entity = arg.substr(7);
      } else if (arg.rfind("kg=", 0) == 0) {
        cmd.register_kg.push_back(arg.substr(3));
      } else if (arg.rfind("lake=", 0) == 0) {
        cmd.register_lake.push_back(arg.substr(5));
      } else if (arg.rfind("knowledge=", 0) == 0) {
        cmd.register_knowledge = arg.substr(10);
      } else if (arg.rfind("exposure=", 0) == 0) {
        cmd.register_exposure = arg.substr(9);
      } else if (arg.rfind("outcome=", 0) == 0) {
        cmd.register_outcome = arg.substr(8);
      } else if (arg == "replace") {
        cmd.replace = true;
      } else {
        return Status::InvalidArgument("unknown register argument '" + arg +
                                       "'");
      }
    }
    if (cmd.target.empty() || cmd.register_input.empty() ||
        cmd.register_entity.empty()) {
      return Status::InvalidArgument(
          "usage: register <name> input=<csv> entity=<col> [kg=<csv>]... "
          "[lake=<csv>]... [knowledge=<file>] [exposure=<attr>] "
          "[outcome=<attr>] [replace]");
    }
    return cmd;
  }
  if (verb == "generate") {
    cmd.kind = ServerCommand::Kind::kGenerate;
    in >> cmd.target;
    std::string arg;
    while (in >> arg) {
      if (arg.rfind("grid=", 0) == 0) {
        cmd.grid_cell = arg.substr(5);
      } else if (arg.rfind("entities=", 0) == 0 ||
                 arg.rfind("seed=", 0) == 0) {
        const bool is_seed = arg[0] == 's';
        const std::string value = arg.substr(is_seed ? 5 : 9);
        char* end = nullptr;
        const unsigned long long v = std::strtoull(value.c_str(), &end, 10);
        if (end == nullptr || *end != '\0' || value.empty()) {
          return Status::InvalidArgument("bad " +
                                         std::string(is_seed ? "seed"
                                                             : "entities") +
                                         " value '" + value + "'");
        }
        if (is_seed) {
          cmd.generate_seed = v;
        } else {
          cmd.generate_entities = static_cast<std::size_t>(v);
        }
      } else if (arg == "replace") {
        cmd.replace = true;
      } else {
        return Status::InvalidArgument("unknown generate argument '" + arg +
                                       "'");
      }
    }
    if (cmd.target.empty() || cmd.grid_cell.empty()) {
      return Status::InvalidArgument(
          "usage: generate <name> grid=<cell> [entities=<n>] [seed=<s>] "
          "[replace]");
    }
    return cmd;
  }
  if (verb == "summarize") {
    cmd.kind = ServerCommand::Kind::kSummarize;
    cmd.query.mode = QueryMode::kSummarize;
    in >> cmd.query.scenario;
    bool have_k = false;
    std::string arg;
    while (in >> arg) {
      if (arg.rfind("k=", 0) == 0) {
        const std::string value = arg.substr(2);
        // Strict non-negative integer: strtoull would silently accept
        // "-3" (wrapping) and "4.5" would need the end-pointer check, so
        // require every character to be a digit up front.
        bool digits = !value.empty();
        for (char c : value) digits = digits && c >= '0' && c <= '9';
        if (!digits) {
          return Status::InvalidArgument(
              "bad k value '" + value +
              "' (expected a non-negative integer)");
        }
        char* end = nullptr;
        const unsigned long long v = std::strtoull(value.c_str(), &end, 10);
        if (end == nullptr || *end != '\0') {
          return Status::InvalidArgument("bad k value '" + value + "'");
        }
        if (v < 2) {
          return Status::InvalidArgument(
              "summary budget k must be at least 2 (got " + value + ")");
        }
        cmd.query.summarize_k = static_cast<std::size_t>(v);
        have_k = true;
      } else if (arg.rfind("format=", 0) == 0) {
        const std::string value = arg.substr(7);
        if (value != "dot" && value != "json") {
          return Status::InvalidArgument("bad format value '" + value +
                                         "' (expected dot|json)");
        }
        cmd.query.summarize_format = value;
      } else if (arg.rfind("timeout=", 0) == 0) {
        char* end = nullptr;
        const std::string value = arg.substr(8);
        const double seconds = std::strtod(value.c_str(), &end);
        if (end == nullptr || *end != '\0' || value.empty()) {
          return Status::InvalidArgument("bad timeout value '" + value +
                                         "'");
        }
        if (!std::isfinite(seconds) || seconds < 0.0) {
          return Status::InvalidArgument(
              "timeout must be a finite non-negative number of seconds, "
              "got '" + value + "'");
        }
        cmd.query.timeout_seconds = seconds;
      } else {
        return Status::InvalidArgument("unknown summarize argument '" + arg +
                                       "'");
      }
    }
    if (cmd.query.scenario.empty() || !have_k) {
      return Status::InvalidArgument(
          "usage: summarize <scenario> k=<n> [format=dot|json] "
          "[timeout=<seconds>]");
    }
    return cmd;
  }
  if (verb != "query") {
    return Status::InvalidArgument("unknown command '" + verb +
                                   "' (expected query|summarize|update|"
                                   "register|generate|unregister|metrics|"
                                   "scenarios|quit)");
  }
  cmd.kind = ServerCommand::Kind::kQuery;
  in >> cmd.query.scenario >> cmd.query.exposure >> cmd.query.outcome;
  if (cmd.query.scenario.empty() || cmd.query.exposure.empty() ||
      cmd.query.outcome.empty()) {
    return Status::InvalidArgument(
        "usage: query <scenario> <exposure> <outcome> [timeout=<seconds>] "
        "[mode=planned|full]");
  }
  std::string extra;
  while (in >> extra) {
    if (extra.rfind("timeout=", 0) == 0) {
      char* end = nullptr;
      const std::string value = extra.substr(8);
      const double seconds = std::strtod(value.c_str(), &end);
      if (end == nullptr || *end != '\0' || value.empty()) {
        return Status::InvalidArgument("bad timeout value '" + value + "'");
      }
      // strtod happily parses "-5", "nan", "inf" — all of which would
      // silently mean "no deadline" downstream. Reject them here.
      if (!std::isfinite(seconds) || seconds < 0.0) {
        return Status::InvalidArgument(
            "timeout must be a finite non-negative number of seconds, "
            "got '" + value + "'");
      }
      cmd.query.timeout_seconds = seconds;
    } else if (extra.rfind("mode=", 0) == 0) {
      const std::string value = extra.substr(5);
      if (value == "planned") {
        cmd.query.mode = QueryMode::kPlanned;
      } else if (value == "full") {
        cmd.query.mode = QueryMode::kFull;
      } else {
        return Status::InvalidArgument(
            "bad mode value '" + value + "' (expected planned|full)");
      }
    } else {
      return Status::InvalidArgument("unknown query argument '" + extra +
                                     "'");
    }
  }
  return cmd;
}

}  // namespace cdi::serve
