#ifndef CDI_SERVE_LINE_PROTOCOL_H_
#define CDI_SERVE_LINE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/pipeline.h"
#include "core/plan.h"
#include "serve/query_server.h"

namespace cdi::serve {

/// Stable display name for a response source ("executed", "hit",
/// "coalesced", "error").
const char* ResponseSourceName(ResponseSource source);

/// Canonical 64-bit fingerprint of everything a served PipelineResult
/// answers with: extraction attributes, organization repairs and weights,
/// C-DAG claims/topics, both effect estimates (bit patterns), the
/// sensitivity report, and the simulated external-latency accounting.
/// Wall-clock timings are excluded — they are the only fields that vary
/// between otherwise bitwise-identical runs. Two results fingerprint
/// equal iff the pipeline produced the same answer bit for bit.
std::uint64_t ResultFingerprint(const core::PipelineResult& result);

/// Deterministic response payload, identical for every service of the
/// same result (doubles as %.17g round-trip exactly):
///   `direct=... direct_p=... total=... total_p=... e_value=...
///    clusters=N edges=M n=K fingerprint=<16 hex>`
/// The load generator compares served payloads byte-for-byte against a
/// direct Pipeline::Run to prove served == computed with zero torn
/// responses.
std::string FormatResultPayload(const core::PipelineResult& result);

/// Canonical 64-bit fingerprint of a planned pair answer: both endpoints,
/// their clusters, the mediator/confounder cluster lists, both adjustment
/// sets, and both effect estimates (bit patterns). Two answers
/// fingerprint equal iff the planner produced the same answer bit for
/// bit — the sweep verifier's equality witness.
std::uint64_t PairAnswerFingerprint(const core::PairAnswer& answer);

/// Deterministic payload of a planned pair answer (%.17g, like
/// FormatResultPayload):
///   `direct=... direct_p=... total=... total_p=... mediators=N
///    confounders=M adj_direct=A adj_total=B n=K fingerprint=<16 hex>`
std::string FormatPairAnswerPayload(const core::PairAnswer& answer);

/// Canonical 64-bit fingerprint of a served summary artifact: the
/// SummaryDag's own structural fingerprint plus both rendered payload
/// strings. Two artifacts fingerprint equal iff every byte a client
/// could receive (DOT or JSON) is identical — the summarize-mix
/// verifier's equality witness.
std::uint64_t SummaryFingerprint(const SummaryArtifact& artifact);

/// Deterministic payload of a served summary (one line; the rendering is
/// escaped so embedded newlines/quotes survive the line protocol):
///   `nodes=N edges=M original_nodes=P original_edges=Q compression=...
///    pairs_scored=S pairs_changed=C fingerprint=<16 hex>
///    payload="<escaped dot or json>"`
/// `format` selects which pre-rendered string goes into payload=
/// ("dot" or "json"; anything else falls back to "dot").
std::string FormatSummaryPayload(const SummaryArtifact& artifact,
                                 const std::string& format);

/// Full single-line response for the cdi_serve stdout protocol:
///   `ok scenario=S T=... O=... source=hit <payload> latency_us=...`
///   `ok scenario=S T=... O=... mode=planned source=hit <payload> ...`
///   `ok scenario=S mode=summarize k=6 format=dot source=hit <payload> ...`
///   `error scenario=S T=... O=... code=DeadlineExceeded message="..."`
/// Never contains embedded newlines. Planned responses (response.planned
/// set) carry the pair-answer payload; summarize responses
/// (response.summary set) the summary payload; full responses the
/// pipeline one.
std::string FormatResponseLine(const CdiQuery& query,
                               const QueryResponse& response);

/// One parsed cdi_serve stdin command.
struct ServerCommand {
  enum class Kind {
    kQuery,
    kSummarize,
    kMetrics,
    kScenarios,
    kUpdate,
    kRegister,
    kGenerate,
    kUnregister,
    kQuit,
  };
  Kind kind = Kind::kQuery;
  /// Meaningful when kind == kQuery or kSummarize (a summarize command
  /// fills query.scenario / summarize_k / summarize_format /
  /// timeout_seconds and sets query.mode = QueryMode::kSummarize).
  CdiQuery query;
  /// kUpdate: target scenario and the CSV file holding the row batch
  /// (header row; schema must match the scenario's input table).
  std::string update_scenario;
  std::string update_rows_path;
  /// kRegister / kGenerate / kUnregister: the scenario name.
  std::string target;
  /// kRegister / kGenerate: overwrite an existing registration.
  bool replace = false;
  /// kRegister: file inputs (mirrors cdi_cli's flags).
  std::string register_input;            // input=<csv>, required
  std::string register_entity;           // entity=<column>, required
  std::vector<std::string> register_kg;  // kg=<triples-csv>, repeatable
  std::vector<std::string> register_lake;  // lake=<csv>, repeatable
  std::string register_knowledge;        // knowledge=<domain-file>
  std::string register_exposure;         // exposure=<attr> (optional)
  std::string register_outcome;          // outcome=<attr> (optional)
  /// kGenerate: grid cell to materialize (datagen::ParseGridCellName).
  std::string grid_cell;
  std::size_t generate_entities = 120;
  std::uint64_t generate_seed = 9001;
};

/// Parses one protocol line:
///   `query <scenario> <exposure> <outcome> [timeout=<seconds>]
///    [mode=planned|full]`
///   `summarize <scenario> k=<n> [format=dot|json] [timeout=<seconds>]`
///   `update <scenario> rows=<csv-path>`
///   `register <name> input=<csv> entity=<col> [kg=<csv>]... [lake=<csv>]...
///    [knowledge=<file>] [exposure=<attr>] [outcome=<attr>] [replace]`
///   `generate <name> grid=<cell> [entities=<n>] [seed=<s>] [replace]`
///   `unregister <name>`
///   `metrics` | `scenarios` | `quit`
/// `timeout` must be a finite, non-negative number of seconds — negative,
/// NaN and infinite values are rejected here with a descriptive error
/// instead of silently meaning "no deadline" downstream. `k` must be a
/// plain non-negative integer >= 2 (non-integer, negative, and
/// malformed values are rejected at parse; k above the C-DAG's node
/// count is rejected at execution with an error naming the DAG size),
/// and `format` must be `dot` or `json`. Blank lines and `#` comments
/// return kInvalidArgument with an empty message (callers skip those
/// silently).
Result<ServerCommand> ParseCommandLine(const std::string& line);

}  // namespace cdi::serve

#endif  // CDI_SERVE_LINE_PROTOCOL_H_
