#ifndef CDI_SERVE_SCENARIO_REGISTRY_H_
#define CDI_SERVE_SCENARIO_REGISTRY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/pipeline.h"
#include "datagen/scenario.h"
#include "stats/sufficient_stats.h"

namespace cdi::serve {

/// One registered, fully materialized scenario: the analyst-facing input
/// table plus every knowledge source the pipeline consults, preloaded once
/// and shared read-only by all queries against it.
///
/// A bundle is immutable after registration — the query server hands
/// `shared_ptr<const ScenarioBundle>` snapshots to requests, so a bundle
/// that is replaced in the registry stays alive (and consistent) for every
/// in-flight query that already resolved it.
struct ScenarioBundle {
  std::string name;
  /// Monotonic registration stamp, unique across the registry's lifetime.
  /// The result cache keys on it, so replacing a scenario under the same
  /// name implicitly invalidates every cached result for the old data
  /// (old entries simply stop being reachable).
  std::uint64_t epoch = 0;
  /// The immutable scenario data (input table, KG, lake, oracle, topics).
  /// Declared before the members below that borrow from it: C++ destroys
  /// in reverse declaration order, so borrowers die first.
  std::unique_ptr<const datagen::Scenario> scenario;
  /// Options applied to queries that do not carry their own (defaults to
  /// core::DefaultEvaluationOptions for the scenario).
  core::PipelineOptions default_options;
  /// Fingerprint of `default_options` (precomputed; on the cache-hit path
  /// the key must not cost a full options walk).
  std::uint64_t default_options_fingerprint = 0;
  /// Shared sufficient statistics (means / covariance / complete-row mask)
  /// over the input table's numeric columns — computed once per dataset at
  /// registration. Serving uses it for admission-time query validation
  /// (exposure/outcome must be numeric with nonzero variance) without
  /// touching a worker; it is also the natural seed for future
  /// statistics reuse across requests. Spans borrow from `scenario`.
  std::shared_ptr<const stats::SufficientStats> input_stats;
  /// Input-table numeric columns (query exposure/outcome candidates), in
  /// schema order, paired with their index into `input_stats`.
  std::vector<std::string> numeric_attributes;

  /// Index of `attribute` in `numeric_attributes` / `input_stats`, or
  /// npos when the column is missing or non-numeric.
  static constexpr std::size_t kNotNumeric = static_cast<std::size_t>(-1);
  std::size_t NumericIndex(const std::string& attribute) const;
};

/// Thread-safe name -> bundle map with snapshot semantics.
///
/// Readers (`Snapshot`) and writers (`Register` / `Replace`) synchronize
/// on one mutex held only for the map operation itself — bundle
/// construction (scenario materialization + sufficient statistics) happens
/// outside the lock, and lookups return a shared_ptr copy, so the serving
/// hot path never blocks behind a registration.
class ScenarioRegistry {
 public:
  ScenarioRegistry() = default;

  ScenarioRegistry(const ScenarioRegistry&) = delete;
  ScenarioRegistry& operator=(const ScenarioRegistry&) = delete;

  /// Registers `scenario` under `name`. kAlreadyExists when the name is
  /// taken (use Replace to swap). `default_options` falls back to
  /// core::DefaultEvaluationOptions(*scenario).
  Result<std::shared_ptr<const ScenarioBundle>> Register(
      const std::string& name,
      std::unique_ptr<const datagen::Scenario> scenario,
      std::optional<core::PipelineOptions> default_options = std::nullopt);

  /// Like Register but allowed to overwrite; the new bundle gets a fresh
  /// epoch, so cached results for the old bundle can never be served for
  /// the new one. In-flight queries holding the old snapshot finish
  /// against the old data.
  Result<std::shared_ptr<const ScenarioBundle>> Replace(
      const std::string& name,
      std::unique_ptr<const datagen::Scenario> scenario,
      std::optional<core::PipelineOptions> default_options = std::nullopt);

  /// Current bundle for `name` (kNotFound when unregistered).
  Result<std::shared_ptr<const ScenarioBundle>> Snapshot(
      const std::string& name) const;

  /// Registered names, sorted.
  std::vector<std::string> Names() const;

  std::size_t size() const;

 private:
  Result<std::shared_ptr<const ScenarioBundle>> Insert(
      const std::string& name,
      std::unique_ptr<const datagen::Scenario> scenario,
      std::optional<core::PipelineOptions> default_options,
      bool allow_replace);

  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<const ScenarioBundle>> bundles_;
  std::uint64_t next_epoch_ = 1;
};

}  // namespace cdi::serve

#endif  // CDI_SERVE_SCENARIO_REGISTRY_H_
