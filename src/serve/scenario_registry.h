#ifndef CDI_SERVE_SCENARIO_REGISTRY_H_
#define CDI_SERVE_SCENARIO_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/pipeline.h"
#include "datagen/scenario.h"
#include "stats/sufficient_stats.h"

namespace cdi::serve {

/// One registered, fully materialized scenario: the analyst-facing input
/// table plus every knowledge source the pipeline consults, preloaded once
/// and shared read-only by all queries against it.
///
/// A bundle is immutable after registration — the query server hands
/// `shared_ptr<const ScenarioBundle>` snapshots to requests, so a bundle
/// that is replaced in (or evicted from) the registry stays alive (and
/// consistent) for every in-flight query that already resolved it.
struct ScenarioBundle {
  std::string name;
  /// Monotonic registration stamp, unique across the registry's lifetime.
  /// The result cache keys on it, so replacing a scenario under the same
  /// name implicitly invalidates every cached result for the old data
  /// (old entries simply stop being reachable).
  std::uint64_t epoch = 0;
  /// The immutable scenario assets (KG, lake, oracle, topics — plus the
  /// *original* input table). Shared across epochs: UpdateScenario bundles
  /// reuse the same scenario object and only replace `input`. Declared
  /// before the members below that borrow from it: C++ destroys in
  /// reverse declaration order, so borrowers die first.
  std::shared_ptr<const datagen::Scenario> scenario;
  /// The live input table of *this epoch* — what queries run against.
  /// Freshly registered bundles alias `scenario->input_table`; bundles
  /// published by UpdateScenario own a grown copy (the previous epoch's
  /// table, and every span borrowed from it, stays untouched for
  /// in-flight queries). Never null after registration.
  std::shared_ptr<const table::Table> input;
  /// Options applied to queries that do not carry their own (defaults to
  /// core::DefaultEvaluationOptions for the scenario).
  core::PipelineOptions default_options;
  /// Fingerprint of `default_options` (precomputed; on the cache-hit path
  /// the key must not cost a full options walk).
  std::uint64_t default_options_fingerprint = 0;
  /// Shared sufficient statistics (means / covariance / complete-row mask)
  /// over the input table's numeric columns — computed once per dataset at
  /// registration. Serving uses it for admission-time query validation
  /// (exposure/outcome must be numeric with nonzero variance) without
  /// touching a worker; it is also the natural seed for future
  /// statistics reuse across requests. Spans borrow from `scenario`.
  std::shared_ptr<const stats::SufficientStats> input_stats;
  /// Input-table numeric columns (query exposure/outcome candidates), in
  /// schema order, paired with their index into `input_stats`.
  std::vector<std::string> numeric_attributes;
  /// Warm-start seed for this epoch's discovery runs: the previous
  /// epoch's C-DAG edges in cluster-topic space, stashed by
  /// UpdateScenario when the caller has one (typically the superseded
  /// epoch's built plan). Empty = cold. Consumed opt-in by the query
  /// server's plan builds (QueryServerOptions::warm_start_plans).
  std::vector<std::pair<std::string, std::string>> warm_start_edges;
  /// Rows appended by the UpdateScenario that published this bundle
  /// (0 for Register/Replace bundles).
  std::size_t rows_appended = 0;
  /// Deterministic resident-byte estimate of this bundle (see
  /// EstimateBundleBytes), fixed at publication. The registry's memory
  /// budget charges exactly this number, so the accounting invariant
  /// `registry_bytes == sum of live bundles' memory_bytes` is testable.
  std::size_t memory_bytes = 0;

  /// Index of `attribute` in `numeric_attributes` / `input_stats`, or
  /// npos when the column is missing or non-numeric.
  static constexpr std::size_t kNotNumeric = static_cast<std::size_t>(-1);
  std::size_t NumericIndex(const std::string& attribute) const;
};

/// Deterministic estimate of a bundle's resident heap bytes: the live
/// input table's buffers (Table::ByteSize — content-based, no capacity
/// slack) plus the sufficient-statistics accumulators and the attribute
/// name list. Knowledge assets (KG / lake / oracle) are shared across
/// epochs of a scenario and are charged with the table they ride in on.
std::size_t EstimateBundleBytes(const ScenarioBundle& bundle);

struct RegistryOptions {
  /// Shards (>= 1); names map to shards by hash. More shards means less
  /// mutex contention for concurrent lookups of different scenarios.
  std::size_t num_shards = 8;
  /// Total memory budget over all shards, in bytes; 0 = unlimited. Each
  /// shard enforces budget/num_shards with LRU eviction: registering or
  /// growing a bundle past the budget evicts the shard's least recently
  /// used scenarios (never the one just published). Evicted scenarios
  /// answer Snapshot with a descriptive kNotFound until re-registered.
  std::size_t memory_budget_bytes = 0;
};

/// Aggregate registry counters and gauges (see ScenarioRegistry::Stats).
struct RegistryStats {
  /// Successful Register / Replace / re-register publications.
  std::uint64_t scenarios_registered = 0;
  /// Scenarios dropped by the memory budget.
  std::uint64_t scenarios_evicted = 0;
  /// Scenarios removed by Unregister.
  std::uint64_t scenarios_unregistered = 0;
  /// Live byte charge / scenario count, total and per shard.
  std::size_t registry_bytes = 0;
  std::size_t scenarios = 0;
  std::vector<std::size_t> shard_bytes;
  std::vector<std::size_t> shard_scenarios;
};

/// Thread-safe name -> bundle map with snapshot semantics, sharded by
/// name hash with an optional byte-accounted LRU memory budget.
///
/// Readers (`Snapshot`) and writers (`Register` / `Replace` /
/// `Unregister`) synchronize on the owning shard's mutex, held only for
/// the map operation itself — bundle construction (scenario
/// materialization + sufficient statistics) happens outside any lock, and
/// lookups return a shared_ptr copy, so the serving hot path never blocks
/// behind a registration, and lookups of scenarios on different shards
/// never contend at all.
///
/// Removal (eviction or unregistration) stamps a fresh epoch — the
/// "eviction epoch" — strictly above every epoch the scenario ever
/// published, and reports it through the eviction listener. Layered
/// caches keyed on (scenario, epoch) retire everything below it, and a
/// later re-registration gets a higher epoch still, so stale entries can
/// never be served across an evict/re-register cycle.
class ScenarioRegistry {
 public:
  /// Fired on every eviction or unregistration, outside all shard locks:
  /// (scenario name, eviction epoch). Serialized: listener calls never
  /// overlap. The query server uses it to sweep result/plan cache
  /// entries for the departed scenario.
  using EvictionListener =
      std::function<void(const std::string& name, std::uint64_t epoch)>;

  explicit ScenarioRegistry(RegistryOptions options = {});

  ScenarioRegistry(const ScenarioRegistry&) = delete;
  ScenarioRegistry& operator=(const ScenarioRegistry&) = delete;

  /// Installs (or, with nullptr, clears) the eviction listener. The
  /// caller must clear the listener before destroying whatever it
  /// captures; SetEvictionListener(nullptr) returns only after any
  /// in-flight listener call has finished.
  void SetEvictionListener(EvictionListener listener);

  /// Registers `scenario` under `name`. kAlreadyExists when the name is
  /// taken (use Replace to swap). `default_options` falls back to
  /// core::DefaultEvaluationOptions(*scenario). The shared_ptr overloads
  /// allow one materialized scenario to back many names (the bundle only
  /// ever reads it).
  Result<std::shared_ptr<const ScenarioBundle>> Register(
      const std::string& name,
      std::unique_ptr<const datagen::Scenario> scenario,
      std::optional<core::PipelineOptions> default_options = std::nullopt);
  Result<std::shared_ptr<const ScenarioBundle>> Register(
      const std::string& name,
      std::shared_ptr<const datagen::Scenario> scenario,
      std::optional<core::PipelineOptions> default_options = std::nullopt);

  /// Like Register but allowed to overwrite; the new bundle gets a fresh
  /// epoch, so cached results for the old bundle can never be served for
  /// the new one. In-flight queries holding the old snapshot finish
  /// against the old data.
  Result<std::shared_ptr<const ScenarioBundle>> Replace(
      const std::string& name,
      std::unique_ptr<const datagen::Scenario> scenario,
      std::optional<core::PipelineOptions> default_options = std::nullopt);
  Result<std::shared_ptr<const ScenarioBundle>> Replace(
      const std::string& name,
      std::shared_ptr<const datagen::Scenario> scenario,
      std::optional<core::PipelineOptions> default_options = std::nullopt);

  /// Removes `name`, stamping an eviction epoch and firing the listener.
  /// In-flight queries holding the bundle finish on their snapshots; a
  /// subsequent Snapshot reports kNotFound ("unregistered") until the
  /// name is registered again. kNotFound when not currently registered.
  Status Unregister(const std::string& name);

  /// Streaming row ingest: appends `row_batch` (schema must match the
  /// scenario's input table — see Table::AppendRows) to the scenario's
  /// live input table and republishes it under a fresh epoch. The new
  /// bundle shares the immutable scenario assets with the previous epoch
  /// and owns the grown table copy; its sufficient statistics are
  /// delta-refreshed via SufficientStats::AppendRows (bitwise what a
  /// fresh Compute over the grown table yields) instead of recomputed
  /// from scratch. In-flight queries holding the old snapshot keep
  /// observing the old table and statistics; the epoch bump makes the
  /// query server's stale-epoch eviction retire superseded cache
  /// entries, exactly as for Replace. `warm_start_edges` (optional) is
  /// stashed on the new bundle for warm-started discovery.
  ///
  /// kNotFound when unregistered (or evicted meanwhile); kInvalidArgument
  /// on schema mismatch or an empty batch; kAborted when the scenario was
  /// concurrently replaced while the delta was being prepared (retry with
  /// a fresh snapshot).
  Result<std::shared_ptr<const ScenarioBundle>> UpdateScenario(
      const std::string& name, const table::Table& row_batch,
      std::vector<std::pair<std::string, std::string>> warm_start_edges = {});

  /// Current bundle for `name`. kNotFound when unregistered, with a
  /// message that says *why* the name is gone when it used to be live
  /// ("evicted by the memory budget" vs "unregistered"). Under a memory
  /// budget a hit also freshens the scenario's LRU position.
  Result<std::shared_ptr<const ScenarioBundle>> Snapshot(
      const std::string& name) const;

  /// Registered names, sorted — deterministic for any shard count.
  std::vector<std::string> Names() const;

  std::size_t size() const;

  /// Point-in-time counters and byte gauges (per shard and total).
  RegistryStats Stats() const;

  const RegistryOptions& options() const { return options_; }

 private:
  struct Shard {
    struct Entry {
      std::shared_ptr<const ScenarioBundle> bundle;
      /// Position in `lru` (stable across list splices).
      std::list<std::string>::iterator lru_it;
    };
    mutable std::mutex mu;
    std::map<std::string, Entry> entries;
    /// Front = most recently used. Maintained only under a memory budget.
    mutable std::list<std::string> lru;
    std::size_t bytes = 0;
    /// Why a formerly live name is gone (cleared on re-register).
    std::map<std::string, std::string> evicted_reason;
  };

  Shard& ShardFor(const std::string& name) const;

  Result<std::shared_ptr<const ScenarioBundle>> Insert(
      const std::string& name,
      std::shared_ptr<const datagen::Scenario> scenario,
      std::optional<core::PipelineOptions> default_options,
      bool allow_replace);

  /// Publishes `bundle` into `shard` under its lock: stamps the epoch,
  /// adjusts the byte charge, freshens LRU, enforces the budget (never
  /// evicting `bundle` itself), and appends evictions to `evicted`.
  void PublishLocked(Shard& shard, const std::string& name,
                     std::shared_ptr<ScenarioBundle> bundle,
                     std::vector<std::pair<std::string, std::uint64_t>>*
                         evicted);

  /// Drops LRU-tail scenarios while the shard is over its budget slice,
  /// skipping `keep` (the entry just published).
  void EnforceBudgetLocked(Shard& shard, const std::string& keep,
                           std::vector<std::pair<std::string, std::uint64_t>>*
                               evicted);

  /// Runs the listener for each (name, eviction epoch), outside shard
  /// locks but under listener_mu_ (serialized with SetEvictionListener).
  void NotifyEvicted(
      const std::vector<std::pair<std::string, std::uint64_t>>& evicted);

  const RegistryOptions options_;
  const std::size_t per_shard_budget_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::uint64_t> next_epoch_{1};

  std::atomic<std::uint64_t> registered_{0};
  std::atomic<std::uint64_t> evicted_{0};
  std::atomic<std::uint64_t> unregistered_{0};

  mutable std::mutex listener_mu_;
  EvictionListener listener_;
};

}  // namespace cdi::serve

#endif  // CDI_SERVE_SCENARIO_REGISTRY_H_
