#ifndef CDI_SERVE_SCENARIO_REGISTRY_H_
#define CDI_SERVE_SCENARIO_REGISTRY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/pipeline.h"
#include "datagen/scenario.h"
#include "stats/sufficient_stats.h"

namespace cdi::serve {

/// One registered, fully materialized scenario: the analyst-facing input
/// table plus every knowledge source the pipeline consults, preloaded once
/// and shared read-only by all queries against it.
///
/// A bundle is immutable after registration — the query server hands
/// `shared_ptr<const ScenarioBundle>` snapshots to requests, so a bundle
/// that is replaced in the registry stays alive (and consistent) for every
/// in-flight query that already resolved it.
struct ScenarioBundle {
  std::string name;
  /// Monotonic registration stamp, unique across the registry's lifetime.
  /// The result cache keys on it, so replacing a scenario under the same
  /// name implicitly invalidates every cached result for the old data
  /// (old entries simply stop being reachable).
  std::uint64_t epoch = 0;
  /// The immutable scenario assets (KG, lake, oracle, topics — plus the
  /// *original* input table). Shared across epochs: UpdateScenario bundles
  /// reuse the same scenario object and only replace `input`. Declared
  /// before the members below that borrow from it: C++ destroys in
  /// reverse declaration order, so borrowers die first.
  std::shared_ptr<const datagen::Scenario> scenario;
  /// The live input table of *this epoch* — what queries run against.
  /// Freshly registered bundles alias `scenario->input_table`; bundles
  /// published by UpdateScenario own a grown copy (the previous epoch's
  /// table, and every span borrowed from it, stays untouched for
  /// in-flight queries). Never null after registration.
  std::shared_ptr<const table::Table> input;
  /// Options applied to queries that do not carry their own (defaults to
  /// core::DefaultEvaluationOptions for the scenario).
  core::PipelineOptions default_options;
  /// Fingerprint of `default_options` (precomputed; on the cache-hit path
  /// the key must not cost a full options walk).
  std::uint64_t default_options_fingerprint = 0;
  /// Shared sufficient statistics (means / covariance / complete-row mask)
  /// over the input table's numeric columns — computed once per dataset at
  /// registration. Serving uses it for admission-time query validation
  /// (exposure/outcome must be numeric with nonzero variance) without
  /// touching a worker; it is also the natural seed for future
  /// statistics reuse across requests. Spans borrow from `scenario`.
  std::shared_ptr<const stats::SufficientStats> input_stats;
  /// Input-table numeric columns (query exposure/outcome candidates), in
  /// schema order, paired with their index into `input_stats`.
  std::vector<std::string> numeric_attributes;
  /// Warm-start seed for this epoch's discovery runs: the previous
  /// epoch's C-DAG edges in cluster-topic space, stashed by
  /// UpdateScenario when the caller has one (typically the superseded
  /// epoch's built plan). Empty = cold. Consumed opt-in by the query
  /// server's plan builds (QueryServerOptions::warm_start_plans).
  std::vector<std::pair<std::string, std::string>> warm_start_edges;
  /// Rows appended by the UpdateScenario that published this bundle
  /// (0 for Register/Replace bundles).
  std::size_t rows_appended = 0;

  /// Index of `attribute` in `numeric_attributes` / `input_stats`, or
  /// npos when the column is missing or non-numeric.
  static constexpr std::size_t kNotNumeric = static_cast<std::size_t>(-1);
  std::size_t NumericIndex(const std::string& attribute) const;
};

/// Thread-safe name -> bundle map with snapshot semantics.
///
/// Readers (`Snapshot`) and writers (`Register` / `Replace`) synchronize
/// on one mutex held only for the map operation itself — bundle
/// construction (scenario materialization + sufficient statistics) happens
/// outside the lock, and lookups return a shared_ptr copy, so the serving
/// hot path never blocks behind a registration.
class ScenarioRegistry {
 public:
  ScenarioRegistry() = default;

  ScenarioRegistry(const ScenarioRegistry&) = delete;
  ScenarioRegistry& operator=(const ScenarioRegistry&) = delete;

  /// Registers `scenario` under `name`. kAlreadyExists when the name is
  /// taken (use Replace to swap). `default_options` falls back to
  /// core::DefaultEvaluationOptions(*scenario).
  Result<std::shared_ptr<const ScenarioBundle>> Register(
      const std::string& name,
      std::unique_ptr<const datagen::Scenario> scenario,
      std::optional<core::PipelineOptions> default_options = std::nullopt);

  /// Like Register but allowed to overwrite; the new bundle gets a fresh
  /// epoch, so cached results for the old bundle can never be served for
  /// the new one. In-flight queries holding the old snapshot finish
  /// against the old data.
  Result<std::shared_ptr<const ScenarioBundle>> Replace(
      const std::string& name,
      std::unique_ptr<const datagen::Scenario> scenario,
      std::optional<core::PipelineOptions> default_options = std::nullopt);

  /// Streaming row ingest: appends `row_batch` (schema must match the
  /// scenario's input table — see Table::AppendRows) to the scenario's
  /// live input table and republishes it under a fresh epoch. The new
  /// bundle shares the immutable scenario assets with the previous epoch
  /// and owns the grown table copy; its sufficient statistics are
  /// delta-refreshed via SufficientStats::AppendRows (bitwise what a
  /// fresh Compute over the grown table yields) instead of recomputed
  /// from scratch. In-flight queries holding the old snapshot keep
  /// observing the old table and statistics; the epoch bump makes the
  /// query server's stale-epoch eviction retire superseded cache
  /// entries, exactly as for Replace. `warm_start_edges` (optional) is
  /// stashed on the new bundle for warm-started discovery.
  ///
  /// kNotFound when unregistered; kInvalidArgument on schema mismatch or
  /// an empty batch; kAborted when the scenario was concurrently
  /// replaced while the delta was being prepared (retry with a fresh
  /// snapshot).
  Result<std::shared_ptr<const ScenarioBundle>> UpdateScenario(
      const std::string& name, const table::Table& row_batch,
      std::vector<std::pair<std::string, std::string>> warm_start_edges = {});

  /// Current bundle for `name` (kNotFound when unregistered).
  Result<std::shared_ptr<const ScenarioBundle>> Snapshot(
      const std::string& name) const;

  /// Registered names, sorted.
  std::vector<std::string> Names() const;

  std::size_t size() const;

 private:
  Result<std::shared_ptr<const ScenarioBundle>> Insert(
      const std::string& name,
      std::unique_ptr<const datagen::Scenario> scenario,
      std::optional<core::PipelineOptions> default_options,
      bool allow_replace);

  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<const ScenarioBundle>> bundles_;
  std::uint64_t next_epoch_ = 1;
};

}  // namespace cdi::serve

#endif  // CDI_SERVE_SCENARIO_REGISTRY_H_
