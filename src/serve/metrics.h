#ifndef CDI_SERVE_METRICS_H_
#define CDI_SERVE_METRICS_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/histogram.h"

namespace cdi::serve {

/// Point-in-time copy of the query server's counters. Plain integers —
/// copyable, subtractable (for interval windows), serializable.
///
/// Counter relationships (in a quiesced server):
///   submitted = served + rejected + failed
///   served    = executions + cache_hits + coalesced   (every OK response)
///   failed    counts error responses, of which deadline_exceeded and
///             cancelled are also tallied separately by cause.
struct MetricsSnapshot {
  std::uint64_t submitted = 0;
  /// OK responses delivered (leader executions + cache hits + coalesced).
  std::uint64_t served = 0;
  /// Admission-queue-full rejections (kResourceExhausted).
  std::uint64_t rejected = 0;
  /// Error responses (validation failures, deadline, cancellation, ...).
  std::uint64_t failed = 0;
  std::uint64_t deadline_exceeded = 0;
  std::uint64_t cancelled = 0;
  /// Requests that found a completed cache entry (no queue slot used).
  std::uint64_t cache_hits = 0;
  /// Requests coalesced onto an identical in-flight computation
  /// (single-flight dedup; no queue slot used).
  std::uint64_t coalesced = 0;
  /// Actual pipeline executions (cache misses that ran).
  std::uint64_t executions = 0;
  /// C-DAG plan artifacts built (planned-mode cache misses that ran the
  /// full pipeline; single-flight keeps this at one per scenario epoch).
  std::uint64_t plan_builds = 0;
  /// Summary artifacts built (summarize-mode cache misses that ran the
  /// greedy merge pass; single-flight keeps this at one per
  /// (scenario, epoch, k, options)).
  std::uint64_t summary_builds = 0;
  /// Cache entries evicted because their scenario epoch was superseded by
  /// a registry Replace (the stale-epoch leak fix).
  std::uint64_t evicted_stale = 0;
  /// Successful UpdateScenario epoch bumps (streaming row-batch ingests
  /// that republished a scenario under a fresh epoch).
  std::uint64_t epoch_rollovers = 0;
  /// Total rows appended across all successful UpdateScenario calls.
  std::uint64_t rows_appended = 0;
  /// Plan builds seeded from a previous epoch's C-DAG edges (warm-start
  /// discovery; only when QueryServerOptions::warm_start_plans is on).
  std::uint64_t warm_start_hits = 0;
  /// Scenario registrations published (Register / Replace / re-register
  /// after eviction; counter, sourced from the registry by
  /// QueryServer::Metrics — zero on a bare ServerMetrics::Snapshot).
  std::uint64_t scenarios_registered = 0;
  /// Scenarios dropped by the registry's memory budget (counter, sourced
  /// from the registry as above).
  std::uint64_t scenarios_evicted = 0;
  /// Scenarios removed via unregister (counter, sourced as above).
  std::uint64_t scenarios_unregistered = 0;
  /// Highest admission-queue depth observed since start.
  std::uint64_t queue_depth_high_water = 0;
  /// Current result-cache entry count (gauge, filled by
  /// QueryServer::Metrics; not a counter — Since() copies it from the
  /// later snapshot).
  std::uint64_t result_cache_entries = 0;
  /// Current plan-cache entry count (gauge, as above).
  std::uint64_t plan_cache_entries = 0;
  /// Summarize-mode entries currently in the result cache (gauge, as
  /// above; a subset of result_cache_entries).
  std::uint64_t summary_cache_entries = 0;
  /// Live registry byte charge and scenario count (gauges, as above).
  std::uint64_t registry_bytes = 0;
  std::uint64_t registry_scenarios = 0;
  /// Per-shard live byte charge (gauge vector; empty on a bare
  /// ServerMetrics::Snapshot). Index = shard number.
  std::vector<std::uint64_t> shard_bytes;
  /// Submit-to-response latency of OK responses.
  HistogramSnapshot latency;
  /// End-to-end latency of successful UpdateScenario calls (table copy +
  /// delta stats refresh + publish) — the delta-refresh cost the epoch
  /// rollover pays instead of a full re-ingest.
  HistogramSnapshot update_latency;
  /// Cold summary-build latency (merge pass + DOT/JSON rendering; the
  /// plan build it may trigger is accounted under `latency`). Cache hits
  /// do not touch this histogram.
  HistogramSnapshot summary_latency;

  /// cache_hits / served (0 when nothing served). Coalesced responses are
  /// not counted as hits: they did wait on a computation.
  double CacheHitRate() const {
    return served == 0
               ? 0.0
               : static_cast<double>(cache_hits) /
                     static_cast<double>(served);
  }

  double LatencyQuantileSeconds(double q) const {
    return latency.Quantile(q);
  }

  /// Counter-wise difference `*this - earlier` (queue high-water is taken
  /// from `*this`; it is a running maximum, not a rate).
  MetricsSnapshot Since(const MetricsSnapshot& earlier) const;

  /// Single-line summary, e.g. for the cdi_serve `metrics` command:
  /// `served=128 rejected=0 ... p50_us=12 p95_us=900 p99_us=51000`.
  std::string ToLine() const;
};

/// Lock-free counter block the server updates on the hot path; every
/// counter is a relaxed atomic (metrics never synchronize anything).
class ServerMetrics {
 public:
  std::atomic<std::uint64_t> submitted{0};
  std::atomic<std::uint64_t> served{0};
  std::atomic<std::uint64_t> rejected{0};
  std::atomic<std::uint64_t> failed{0};
  std::atomic<std::uint64_t> deadline_exceeded{0};
  std::atomic<std::uint64_t> cancelled{0};
  std::atomic<std::uint64_t> cache_hits{0};
  std::atomic<std::uint64_t> coalesced{0};
  std::atomic<std::uint64_t> executions{0};
  std::atomic<std::uint64_t> plan_builds{0};
  std::atomic<std::uint64_t> summary_builds{0};
  std::atomic<std::uint64_t> evicted_stale{0};
  std::atomic<std::uint64_t> epoch_rollovers{0};
  std::atomic<std::uint64_t> rows_appended{0};
  std::atomic<std::uint64_t> warm_start_hits{0};
  std::atomic<std::uint64_t> queue_depth_high_water{0};
  LatencyHistogram latency;
  LatencyHistogram update_latency;
  LatencyHistogram summary_latency;

  /// Raises the high-water mark to at least `depth`.
  void ObserveQueueDepth(std::uint64_t depth);

  MetricsSnapshot Snapshot() const;
};

}  // namespace cdi::serve

#endif  // CDI_SERVE_METRICS_H_
